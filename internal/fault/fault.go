// Package fault is a deterministic, seed-driven fault injector for the
// modeled communication runtime (internal/comm) and the VM's remote
// spawns. A Spec — parsed from a compact string such as
//
//	loss=0.01,dup=0.005,delay=3xCommLatency,locale-slow=2:4x,locale-fail=3@tick500
//
// — describes message loss, duplication, delay, per-locale slowdown and
// unrecoverable locale failure. The injector draws from a self-contained
// splitmix64 PRNG, so a fixed seed reproduces the exact same fault
// schedule on every run regardless of Go version or platform.
//
// Faults never change program output: the runtime always delivers the
// canonical data in the end. Loss triggers bounded retransmission with
// exponential backoff; exhausting the retry budget declares a timeout
// whose modeled cost is charged and the transfer still completes (the
// comm model is cost-only). A failed locale is the one unrecoverable
// fault: messages touching it time out immediately, and the schedulers
// degrade gracefully by running its chunks on the spawning locale
// (FailedLocaleFallbacks counts those).
//
// All latencies are expressed in integer CommLatency units so the
// injector needs no knowledge of the VM's absolute cycle costs; the VM
// multiplies by its own CommLatency when charging.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Bounds on parsed magnitudes: large enough for any plausible experiment,
// small enough that modeled costs cannot overflow the VM's cycle math.
const (
	maxMult   = 1 << 20 // delay multipliers and slow factors
	maxLocale = 1 << 20 // locale indices
)

// Spec is one parsed fault specification. The zero value (with
// FailLocale -1) injects nothing.
type Spec struct {
	// Loss is the per-message drop probability in [0, 1]; each drop costs
	// a retry (or, past the retry budget, a timeout).
	Loss float64
	// Dup is the per-message duplication probability in [0, 1]; the
	// redundant copy is suppressed at the receiver for one latency unit.
	Dup float64
	// DelayProb/DelayMult delay a message by DelayMult extra CommLatency
	// units with probability DelayProb (1.0 when the spec omits it).
	DelayProb float64
	DelayMult int64
	// SlowLocale multiplies the latency of every message touching a
	// locale: factor m charges m-1 extra units.
	SlowLocale map[int]int64
	// HasFail arms locale failure: locale FailLocale dies once the
	// injector's tick reaches FailTick (ticks advance one per examined
	// message). The zero value keeps every locale alive.
	HasFail    bool
	FailLocale int
	FailTick   uint64
}

// Zero reports whether the spec injects no faults at all.
func (s Spec) Zero() bool {
	return s.Loss == 0 && s.Dup == 0 && (s.DelayMult == 0 || s.DelayProb == 0) &&
		len(s.SlowLocale) == 0 && !s.HasFail
}

// ParseSpec parses the comma-separated fault grammar:
//
//	loss=P                 per-message drop probability
//	dup=P                  per-message duplication probability
//	delay=[P:]NxCommLatency  delay by N latency units (probability P, default 1)
//	locale-slow=L:Mx       every message touching locale L is M times slower
//	locale-fail=L[@tickT]  locale L dies at injector tick T (default 0)
//
// An empty string yields the zero (fault-free) spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return spec, fmt.Errorf("fault: %q: want key=value", part)
		}
		switch key {
		case "loss":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("fault: loss: %w", err)
			}
			spec.Loss = p
		case "dup":
			p, err := parseProb(val)
			if err != nil {
				return spec, fmt.Errorf("fault: dup: %w", err)
			}
			spec.Dup = p
		case "delay":
			prob, mult, err := parseDelay(val)
			if err != nil {
				return spec, fmt.Errorf("fault: delay: %w", err)
			}
			spec.DelayProb, spec.DelayMult = prob, mult
		case "locale-slow":
			loc, factor, err := parseSlow(val)
			if err != nil {
				return spec, fmt.Errorf("fault: locale-slow: %w", err)
			}
			if factor > 1 { // factor 1 is a no-op
				if spec.SlowLocale == nil {
					spec.SlowLocale = make(map[int]int64)
				}
				spec.SlowLocale[loc] = factor
			}
		case "locale-fail":
			loc, tick, err := parseFail(val)
			if err != nil {
				return spec, fmt.Errorf("fault: locale-fail: %w", err)
			}
			spec.HasFail, spec.FailLocale, spec.FailTick = true, loc, tick
		default:
			return spec, fmt.Errorf("fault: unknown key %q", key)
		}
	}
	return spec, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a probability", v)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q outside [0, 1]", v)
	}
	return p, nil
}

// parseDelay accepts "NxCommLatency" and "P:NxCommLatency".
func parseDelay(v string) (prob float64, mult int64, err error) {
	prob = 1
	if pre, rest, ok := strings.Cut(v, ":"); ok {
		if prob, err = parseProb(pre); err != nil {
			return 0, 0, err
		}
		v = rest
	}
	num, ok := strings.CutSuffix(v, "xCommLatency")
	if !ok {
		return 0, 0, fmt.Errorf("%q: want NxCommLatency", v)
	}
	mult, err = strconv.ParseInt(num, 10, 64)
	if err != nil || mult < 1 || mult > maxMult {
		return 0, 0, fmt.Errorf("multiplier %q outside [1, %d]", num, maxMult)
	}
	return prob, mult, nil
}

// parseSlow accepts "L:Mx".
func parseSlow(v string) (loc int, factor int64, err error) {
	l, rest, ok := strings.Cut(v, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q: want locale:Nx", v)
	}
	loc, err = strconv.Atoi(l)
	if err != nil || loc < 0 || loc > maxLocale {
		return 0, 0, fmt.Errorf("locale %q outside [0, %d]", l, maxLocale)
	}
	num, ok := strings.CutSuffix(rest, "x")
	if !ok {
		return 0, 0, fmt.Errorf("%q: want locale:Nx", v)
	}
	factor, err = strconv.ParseInt(num, 10, 64)
	if err != nil || factor < 1 || factor > maxMult {
		return 0, 0, fmt.Errorf("factor %q outside [1, %d]", num, maxMult)
	}
	return loc, factor, nil
}

// parseFail accepts "L" and "L@tickT".
func parseFail(v string) (loc int, tick uint64, err error) {
	l, rest, has := strings.Cut(v, "@")
	loc, err = strconv.Atoi(l)
	if err != nil || loc < 0 || loc > maxLocale {
		return 0, 0, fmt.Errorf("locale %q outside [0, %d]", l, maxLocale)
	}
	if has {
		num, ok := strings.CutPrefix(rest, "tick")
		if !ok {
			return 0, 0, fmt.Errorf("%q: want locale@tickN", v)
		}
		tick, err = strconv.ParseUint(num, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("tick %q is not a number", rest)
		}
	}
	return loc, tick, nil
}

// String renders the canonical form of the spec: active faults only, in
// fixed key order, with minimal float formatting — ParseSpec(s.String())
// round-trips (the fuzzer pins this).
func (s Spec) String() string {
	var parts []string
	f := func(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }
	if s.Loss > 0 {
		parts = append(parts, "loss="+f(s.Loss))
	}
	if s.Dup > 0 {
		parts = append(parts, "dup="+f(s.Dup))
	}
	if s.DelayMult > 0 && s.DelayProb > 0 {
		if s.DelayProb >= 1 {
			parts = append(parts, fmt.Sprintf("delay=%dxCommLatency", s.DelayMult))
		} else {
			parts = append(parts, fmt.Sprintf("delay=%s:%dxCommLatency", f(s.DelayProb), s.DelayMult))
		}
	}
	locs := make([]int, 0, len(s.SlowLocale))
	for l := range s.SlowLocale {
		locs = append(locs, l)
	}
	sort.Ints(locs)
	for _, l := range locs {
		parts = append(parts, fmt.Sprintf("locale-slow=%d:%dx", l, s.SlowLocale[l]))
	}
	if s.HasFail {
		parts = append(parts, fmt.Sprintf("locale-fail=%d@tick%d", s.FailLocale, s.FailTick))
	}
	return strings.Join(parts, ",")
}

// RetryPolicy bounds the retransmission loop the comm runtime runs when
// the injector drops a message. All latencies are in CommLatency units.
type RetryPolicy struct {
	// MaxRetries bounds retransmissions per message; one more drop after
	// the budget declares a timeout.
	MaxRetries int
	// BackoffBase is the first backoff wait; it doubles per retry up to
	// BackoffCap (bounded exponential backoff).
	BackoffBase int64
	BackoffCap  int64
	// TimeoutUnits is the modeled cost of a declared timeout.
	TimeoutUnits int64
}

// DefaultRetry returns the default policy: 6 retries, backoff 1 -> 16,
// timeout cost 32 latency units.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxRetries: 6, BackoffBase: 1, BackoffCap: 16, TimeoutUnits: 32}
}

// Normalized fills zero (or negative) fields from the defaults and
// returns the completed policy. Exported so process-level supervisors
// (internal/super) can reuse the same bounded-exponential-backoff
// semantics the modeled network applies per message.
func (p RetryPolicy) Normalized() RetryPolicy {
	d := DefaultRetry()
	if p.MaxRetries <= 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = d.BackoffCap
	}
	if p.TimeoutUnits <= 0 {
		p.TimeoutUnits = d.TimeoutUnits
	}
	return p
}

// Stats accumulates what the injector did. One Stats instance serves a
// whole run: comm.Stats and vm.Stats both point at it.
type Stats struct {
	Sends                 int64 // messages examined
	Retries               int64 // retransmissions after a drop
	Timeouts              int64 // retry budget exhausted (or dead locale)
	DroppedMsgs           int64 // individual dropped transmissions
	DuplicatesSuppressed  int64 // redundant deliveries discarded
	DelayedMsgs           int64
	SlowedMsgs            int64 // messages touching a slow locale
	FailedLocaleFallbacks int64 // chunks rerouted off a dead locale
	ExtraLatUnits         int64 // total injected latency (CommLatency units)
}

// Render returns the canonical one-block text form (deterministic).
func (s *Stats) Render() string {
	return fmt.Sprintf("faults: sends %d retries %d timeouts %d dropped %d dup-suppressed %d delayed %d slowed %d fallbacks %d extra-latency %d units\n",
		s.Sends, s.Retries, s.Timeouts, s.DroppedMsgs, s.DuplicatesSuppressed,
		s.DelayedMsgs, s.SlowedMsgs, s.FailedLocaleFallbacks, s.ExtraLatUnits)
}

// Outcome is the injector's verdict for one message.
type Outcome struct {
	// ExtraLat is the injected latency in CommLatency units (retries,
	// backoff waits, delays, slow locales, timeouts). The data is always
	// delivered; only the modeled cost grows.
	ExtraLat int64
	// Retries is the number of retransmissions this message needed.
	Retries int64
	// Timeout reports that the retry budget was exhausted (or a dead
	// locale was involved) and the timeout cost was charged.
	Timeout bool
	// Duplicated reports a suppressed duplicate delivery.
	Duplicated bool
}

// splitmix64 is the PRNG state: stable across Go versions, one uint64.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one uniform float in [0, 1) and compares against p.
// p <= 0 and p >= 1 short-circuit without consuming randomness, so fully
// deterministic specs (delay=NxCommLatency) stay seed-independent.
func (r *splitmix64) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}

// Injector applies one Spec with one seed. Not safe for concurrent use;
// the VM's discrete-event scheduler serializes all calls.
type Injector struct {
	spec  Spec
	pol   RetryPolicy
	rng   splitmix64
	tick  uint64
	stats Stats
}

// NewInjector builds an injector with the default retry policy.
func NewInjector(spec Spec, seed uint64) *Injector {
	return &Injector{spec: spec, pol: DefaultRetry(), rng: splitmix64{s: seed}}
}

// SetRetry overrides the retry policy (zero fields keep their defaults).
func (i *Injector) SetRetry(p RetryPolicy) {
	if i == nil {
		return
	}
	i.pol = p.Normalized()
}

// Spec returns the injector's fault specification.
func (i *Injector) Spec() Spec { return i.spec }

// Stats returns the shared accumulator (live, not a snapshot).
func (i *Injector) Stats() *Stats {
	if i == nil {
		return nil
	}
	return &i.stats
}

// Tick returns the number of messages examined so far.
func (i *Injector) Tick() uint64 {
	if i == nil {
		return 0
	}
	return i.tick
}

// LocaleDead reports whether loc has failed. Read-only: it does not
// advance the tick or consume randomness, so schedulers may poll it.
func (i *Injector) LocaleDead(loc int) bool {
	if i == nil {
		return false
	}
	return i.dead(loc)
}

func (i *Injector) dead(loc int) bool {
	return i.spec.HasFail && loc == i.spec.FailLocale && i.tick >= i.spec.FailTick
}

// NoteFallback records one chunk rerouted off a dead locale.
func (i *Injector) NoteFallback() {
	if i == nil {
		return
	}
	i.stats.FailedLocaleFallbacks++
}

// Send examines one message from locale `from` to locale `to` and
// returns the injected outcome. Every call advances the tick by one.
func (i *Injector) Send(from, to int) Outcome {
	var out Outcome
	if i == nil {
		return out
	}
	// The failure tick is compared against the pre-increment counter so
	// that the send which *reaches* FailTick still succeeds; the locale is
	// dead for every send after it.
	dead := i.dead(from) || i.dead(to)
	i.tick++
	i.stats.Sends++
	if dead {
		// A dead endpoint: the sender retransmits into the void and times
		// out immediately (no backoff loop — the failure detector already
		// knows). The model still delivers the canonical data.
		i.stats.DroppedMsgs++
		i.stats.Timeouts++
		out.Timeout = true
		out.ExtraLat += i.pol.TimeoutUnits
		i.stats.ExtraLatUnits += out.ExtraLat
		return out
	}
	if m := i.slowFactor(from, to); m > 1 {
		out.ExtraLat += m - 1
		i.stats.SlowedMsgs++
	}
	if i.spec.DelayMult > 0 && i.rng.chance(i.spec.DelayProb) {
		out.ExtraLat += i.spec.DelayMult
		i.stats.DelayedMsgs++
	}
	if i.spec.Dup > 0 && i.rng.chance(i.spec.Dup) {
		// The receiver pays one unit to receive and discard the copy.
		out.Duplicated = true
		out.ExtraLat++
		i.stats.DuplicatesSuppressed++
	}
	if i.spec.Loss > 0 {
		backoff := i.pol.BackoffBase
		for attempt := 0; i.rng.chance(i.spec.Loss); attempt++ {
			i.stats.DroppedMsgs++
			if attempt >= i.pol.MaxRetries {
				i.stats.Timeouts++
				out.Timeout = true
				out.ExtraLat += i.pol.TimeoutUnits
				break
			}
			i.stats.Retries++
			out.Retries++
			// Wait out the backoff, then pay the retransmission latency.
			out.ExtraLat += backoff + 1
			backoff *= 2
			if backoff > i.pol.BackoffCap {
				backoff = i.pol.BackoffCap
			}
		}
	}
	i.stats.ExtraLatUnits += out.ExtraLat
	return out
}

// slowFactor returns the largest slow multiplier among the endpoints.
func (i *Injector) slowFactor(from, to int) int64 {
	if len(i.spec.SlowLocale) == 0 {
		return 1
	}
	m := int64(1)
	if f := i.spec.SlowLocale[from]; f > m {
		m = f
	}
	if f := i.spec.SlowLocale[to]; f > m {
		m = f
	}
	return m
}
