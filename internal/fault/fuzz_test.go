package fault

import "testing"

// FuzzFaultSpec checks that any accepted spec string has a stable
// canonical form (parse → String → parse is a fixed point) and that a
// parsed spec can drive an injector without panicking or violating the
// basic outcome invariants.
func FuzzFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"loss=0.01",
		"loss=0.01,dup=0.005,delay=3xCommLatency,locale-slow=2:4x,locale-fail=3@tick500",
		"delay=0.25:2xCommLatency",
		"locale-slow=0:2x,locale-slow=3:8x",
		"locale-fail=1@tick0",
		"loss=1,dup=1",
		"loss=2",
		"delay=xCommLatency",
		"locale-fail=@tick",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q rejected: %v", canon, in, err)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("canonical form not stable: %q -> %q", canon, got)
		}
		inj := NewInjector(s, 1)
		for i := 0; i < 64; i++ {
			out := inj.Send(i%4, (i+1)%4)
			if out.ExtraLat < 0 || out.Retries < 0 {
				t.Fatalf("negative outcome %+v for spec %q", out, in)
			}
		}
		st := inj.Stats()
		if st.Sends != 64 || st.ExtraLatUnits < 0 {
			t.Fatalf("stats invariant broken: %+v", st)
		}
	})
}
