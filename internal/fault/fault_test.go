package fault

import (
	"strings"
	"testing"
)

func TestParseSpecFull(t *testing.T) {
	s, err := ParseSpec("loss=0.01,dup=0.005,delay=3xCommLatency,locale-slow=2:4x,locale-fail=3@tick500")
	if err != nil {
		t.Fatal(err)
	}
	if s.Loss != 0.01 || s.Dup != 0.005 {
		t.Errorf("loss/dup = %v/%v", s.Loss, s.Dup)
	}
	if s.DelayProb != 1 || s.DelayMult != 3 {
		t.Errorf("delay = %v:%v", s.DelayProb, s.DelayMult)
	}
	if s.SlowLocale[2] != 4 {
		t.Errorf("slow = %v", s.SlowLocale)
	}
	if !s.HasFail || s.FailLocale != 3 || s.FailTick != 500 {
		t.Errorf("fail = %v/%d@%d", s.HasFail, s.FailLocale, s.FailTick)
	}
}

func TestParseSpecVariants(t *testing.T) {
	// Probabilistic delay, bare locale-fail (tick 0), spaces, trailing comma.
	s, err := ParseSpec(" delay=0.5:2xCommLatency , locale-fail=1 ,")
	if err != nil {
		t.Fatal(err)
	}
	if s.DelayProb != 0.5 || s.DelayMult != 2 {
		t.Errorf("delay = %v:%v", s.DelayProb, s.DelayMult)
	}
	if !s.HasFail || s.FailLocale != 1 || s.FailTick != 0 {
		t.Errorf("fail = %v/%d@%d", s.HasFail, s.FailLocale, s.FailTick)
	}
	// Empty spec is fault-free; a slow factor of 1 is a no-op.
	if s, err := ParseSpec(""); err != nil || !s.Zero() {
		t.Errorf("empty spec: %v, %v", s, err)
	}
	if s, err := ParseSpec("locale-slow=2:1x"); err != nil || !s.Zero() {
		t.Errorf("factor-1 slow should be a no-op: %v, %v", s, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"loss", "loss=2", "loss=-0.1", "loss=NaN", "dup=x",
		"delay=3x", "delay=0xCommLatency", "delay=2:3xCommLatency",
		"locale-slow=2", "locale-slow=-1:2x", "locale-slow=2:0x",
		"locale-fail=-1", "locale-fail=2@5", "locale-fail=x",
		"bogus=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"",
		"loss=0.01",
		"loss=0.01,dup=0.005,delay=3xCommLatency,locale-slow=2:4x,locale-fail=3@tick500",
		"delay=0.5:2xCommLatency",
		"locale-slow=0:2x,locale-slow=3:8x",
		"locale-fail=1",
	} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", canon, in, err)
		}
		if got := s2.String(); got != canon {
			t.Errorf("String not stable: %q -> %q", canon, got)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	spec, err := ParseSpec("loss=0.3,dup=0.2,delay=0.4:3xCommLatency")
	if err != nil {
		t.Fatal(err)
	}
	a := NewInjector(spec, 42)
	b := NewInjector(spec, 42)
	other := NewInjector(spec, 43)
	diverged := false
	for i := 0; i < 500; i++ {
		oa, ob := a.Send(0, 1), b.Send(0, 1)
		if oa != ob {
			t.Fatalf("send %d: same seed diverged: %+v vs %+v", i, oa, ob)
		}
		if oa != other.Send(0, 1) {
			diverged = true
		}
	}
	if *a.Stats() != *b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if !diverged {
		t.Error("a different seed produced the identical fault schedule")
	}
	if a.Stats().Retries == 0 || a.Stats().DelayedMsgs == 0 || a.Stats().DuplicatesSuppressed == 0 {
		t.Errorf("loss/delay/dup spec produced no faults over 500 sends: %+v", a.Stats())
	}
}

// Total loss exercises the whole retry ladder deterministically: every
// transmission drops, so each message burns the full budget then times
// out, with bounded exponential backoff summed into ExtraLat.
func TestRetryPolicyBackoff(t *testing.T) {
	spec, err := ParseSpec("loss=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec, 1)
	inj.SetRetry(RetryPolicy{MaxRetries: 2, BackoffBase: 1, BackoffCap: 4, TimeoutUnits: 8})
	out := inj.Send(0, 1)
	// Retry 1: backoff 1 + 1 resend; retry 2: backoff 2 + 1 resend; then
	// the third drop exhausts the budget: timeout (+8).
	if out.Retries != 2 || !out.Timeout || out.ExtraLat != 2+3+8 {
		t.Errorf("outcome = %+v, want 2 retries, timeout, 13 extra units", out)
	}
	st := inj.Stats()
	if st.Retries != 2 || st.Timeouts != 1 || st.DroppedMsgs != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Zero fields of a custom policy fall back to defaults.
	inj.SetRetry(RetryPolicy{MaxRetries: 1})
	if inj.pol.TimeoutUnits != DefaultRetry().TimeoutUnits {
		t.Errorf("normalize lost the default timeout: %+v", inj.pol)
	}
}

func TestLocaleFailure(t *testing.T) {
	spec, err := ParseSpec("locale-fail=2@tick3")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec, 7)
	if inj.LocaleDead(2) {
		t.Error("locale 2 dead before tick 3")
	}
	for k := 0; k < 3; k++ {
		if out := inj.Send(0, 2); out.Timeout {
			t.Errorf("send %d timed out before the failure tick", k)
		}
	}
	if !inj.LocaleDead(2) || inj.LocaleDead(1) {
		t.Errorf("death state wrong at tick %d", inj.Tick())
	}
	out := inj.Send(0, 2)
	if !out.Timeout || out.ExtraLat != DefaultRetry().TimeoutUnits {
		t.Errorf("send to dead locale: %+v", out)
	}
	inj.NoteFallback()
	if st := inj.Stats(); st.Timeouts != 1 || st.FailedLocaleFallbacks != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSlowLocale(t *testing.T) {
	spec, err := ParseSpec("locale-slow=1:4x")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec, 1)
	if out := inj.Send(0, 1); out.ExtraLat != 3 {
		t.Errorf("message to 4x-slow locale: %+v, want 3 extra units", out)
	}
	if out := inj.Send(2, 3); out.ExtraLat != 0 {
		t.Errorf("message avoiding the slow locale: %+v, want 0 extra units", out)
	}
}

// A nil injector must be inert: the comm runtime and VM call through
// without nil checks at every site.
func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if out := inj.Send(0, 1); out != (Outcome{}) {
		t.Errorf("nil Send = %+v", out)
	}
	if inj.LocaleDead(0) || inj.Stats() != nil || inj.Tick() != 0 {
		t.Error("nil injector not inert")
	}
	inj.NoteFallback()
	inj.SetRetry(RetryPolicy{})
}

func TestStatsRenderDeterministic(t *testing.T) {
	s := &Stats{Sends: 10, Retries: 2, Timeouts: 1, ExtraLatUnits: 40}
	if s.Render() != s.Render() || !strings.Contains(s.Render(), "retries 2") {
		t.Errorf("render: %q", s.Render())
	}
}
