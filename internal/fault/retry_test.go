package fault

import (
	"sync"
	"testing"
)

// TestNormalizedPartialZero: every zero (or negative) field is filled
// from DefaultRetry while explicitly-set fields survive, one field at a
// time and in combinations.
func TestNormalizedPartialZero(t *testing.T) {
	d := DefaultRetry()
	cases := []struct {
		name string
		in   RetryPolicy
		want RetryPolicy
	}{
		{"all-zero", RetryPolicy{}, d},
		{"all-set", RetryPolicy{MaxRetries: 2, BackoffBase: 3, BackoffCap: 7, TimeoutUnits: 11},
			RetryPolicy{MaxRetries: 2, BackoffBase: 3, BackoffCap: 7, TimeoutUnits: 11}},
		{"only-retries", RetryPolicy{MaxRetries: 9},
			RetryPolicy{MaxRetries: 9, BackoffBase: d.BackoffBase, BackoffCap: d.BackoffCap, TimeoutUnits: d.TimeoutUnits}},
		{"only-base", RetryPolicy{BackoffBase: 5},
			RetryPolicy{MaxRetries: d.MaxRetries, BackoffBase: 5, BackoffCap: d.BackoffCap, TimeoutUnits: d.TimeoutUnits}},
		{"only-cap", RetryPolicy{BackoffCap: 64},
			RetryPolicy{MaxRetries: d.MaxRetries, BackoffBase: d.BackoffBase, BackoffCap: 64, TimeoutUnits: d.TimeoutUnits}},
		{"only-timeout", RetryPolicy{TimeoutUnits: 100},
			RetryPolicy{MaxRetries: d.MaxRetries, BackoffBase: d.BackoffBase, BackoffCap: d.BackoffCap, TimeoutUnits: 100}},
		{"negative-fields", RetryPolicy{MaxRetries: -1, BackoffBase: -2, BackoffCap: -3, TimeoutUnits: -4}, d},
		{"mixed", RetryPolicy{MaxRetries: 1, BackoffCap: 2},
			RetryPolicy{MaxRetries: 1, BackoffBase: d.BackoffBase, BackoffCap: 2, TimeoutUnits: d.TimeoutUnits}},
	}
	for _, tc := range cases {
		if got := tc.in.Normalized(); got != tc.want {
			t.Errorf("%s: Normalized() = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestNormalizedIdempotent: normalizing a normalized policy is a no-op.
func TestNormalizedIdempotent(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3}.Normalized()
	if again := p.Normalized(); again != p {
		t.Fatalf("Normalized not idempotent: %+v -> %+v", p, again)
	}
}

// TestTimeoutExhaustionCharging pins the cost accounting on the
// retry-exhaustion path: with loss=1 every transmission drops, so the
// injector retries MaxRetries times (charging backoff+1 each, backoff
// doubling up to the cap) and then declares a timeout charging exactly
// TimeoutUnits more.
func TestTimeoutExhaustionCharging(t *testing.T) {
	spec, err := ParseSpec("loss=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec, 7)
	pol := RetryPolicy{MaxRetries: 3, BackoffBase: 2, BackoffCap: 5, TimeoutUnits: 40}
	inj.SetRetry(pol)

	out := inj.Send(0, 1)
	if !out.Timeout {
		t.Fatal("loss=1 send did not time out")
	}
	if out.Retries != int64(pol.MaxRetries) {
		t.Fatalf("retries = %d, want %d", out.Retries, pol.MaxRetries)
	}
	// Backoff waits: 2, 4, 5 (doubled then capped), +1 retransmission
	// latency each, then the timeout cost.
	wantLat := int64((2 + 1) + (4 + 1) + (5 + 1) + 40)
	if out.ExtraLat != wantLat {
		t.Fatalf("ExtraLat = %d, want %d", out.ExtraLat, wantLat)
	}

	st := inj.Stats()
	if st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
	if st.Retries != int64(pol.MaxRetries) {
		t.Fatalf("stats retries = %d, want %d", st.Retries, pol.MaxRetries)
	}
	// MaxRetries retransmissions dropped plus the final drop that
	// exhausted the budget.
	if st.DroppedMsgs != int64(pol.MaxRetries)+1 {
		t.Fatalf("DroppedMsgs = %d, want %d", st.DroppedMsgs, pol.MaxRetries+1)
	}
	if st.ExtraLatUnits != wantLat {
		t.Fatalf("ExtraLatUnits = %d, want %d", st.ExtraLatUnits, wantLat)
	}
}

// TestDeadEndpointChargesTimeoutUnits: a send touching a dead locale
// charges exactly TimeoutUnits (no backoff loop — the failure detector
// already knows) and counts one drop and one timeout.
func TestDeadEndpointChargesTimeoutUnits(t *testing.T) {
	spec, err := ParseSpec("locale-fail=1@tick0")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec, 1)
	inj.SetRetry(RetryPolicy{TimeoutUnits: 17})

	out := inj.Send(0, 1)
	if !out.Timeout {
		t.Fatal("send to dead locale did not time out")
	}
	if out.ExtraLat != 17 {
		t.Fatalf("ExtraLat = %d, want 17", out.ExtraLat)
	}
	if out.Retries != 0 {
		t.Fatalf("dead-endpoint path retried %d times, want 0", out.Retries)
	}
	st := inj.Stats()
	if st.DroppedMsgs != 1 || st.Timeouts != 1 {
		t.Fatalf("dropped=%d timeouts=%d, want 1/1", st.DroppedMsgs, st.Timeouts)
	}
}

// TestSetRetryConcurrentInjectors: distinct injectors with their own
// policies running on separate goroutines must not interfere (each
// injector is single-goroutine by contract, but injectors are created
// and configured concurrently across sessions in the serving path).
// Run under -race.
func TestSetRetryConcurrentInjectors(t *testing.T) {
	spec, err := ParseSpec("loss=0.5")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([]int64, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inj := NewInjector(spec, uint64(g+1))
			inj.SetRetry(RetryPolicy{MaxRetries: g%4 + 1, TimeoutUnits: int64(g + 1)})
			for k := 0; k < 200; k++ {
				inj.Send(0, 1)
			}
			results[g] = inj.Stats().Sends
		}(g)
	}
	wg.Wait()
	for g, sends := range results {
		if sends != 200 {
			t.Fatalf("injector %d examined %d sends, want 200", g, sends)
		}
	}

	// Same-seed injectors configured concurrently must stay
	// deterministic: identical policy + seed => identical stats.
	var wg2 sync.WaitGroup
	stats := make([]Stats, 4)
	for g := range stats {
		wg2.Add(1)
		go func(g int) {
			defer wg2.Done()
			inj := NewInjector(spec, 42)
			inj.SetRetry(RetryPolicy{MaxRetries: 2})
			for k := 0; k < 100; k++ {
				inj.Send(0, 1)
			}
			stats[g] = *inj.Stats()
		}(g)
	}
	wg2.Wait()
	for g := 1; g < len(stats); g++ {
		if stats[g] != stats[0] {
			t.Fatalf("same-seed injector %d diverged: %+v vs %+v", g, stats[g], stats[0])
		}
	}

	// SetRetry on a nil injector must stay a safe no-op.
	var nilInj *Injector
	nilInj.SetRetry(RetryPolicy{MaxRetries: 1})
}
