package pmu

import (
	"testing"
	"testing/quick"
)

func TestCounterBasicOverflow(t *testing.T) {
	c := NewCounter(TotalCycles, 100)
	if n := c.Add(99); n != 0 {
		t.Fatalf("no overflow expected, got %d", n)
	}
	if n := c.Add(1); n != 1 {
		t.Fatalf("overflow expected, got %d", n)
	}
	if c.Value() != 0 {
		t.Fatalf("residual = %d, want 0", c.Value())
	}
	if c.Overflows() != 1 {
		t.Fatalf("overflows = %d", c.Overflows())
	}
}

func TestCounterMultipleOverflowsInOneAdd(t *testing.T) {
	c := NewCounter(TotalCycles, 10)
	if n := c.Add(35); n != 3 {
		t.Fatalf("got %d overflows, want 3", n)
	}
	if c.Value() != 5 {
		t.Fatalf("residual = %d, want 5", c.Value())
	}
}

func TestCounterZeroThresholdDisabled(t *testing.T) {
	c := NewCounter(TotalCycles, 0)
	if n := c.Add(1 << 30); n != 0 {
		t.Fatalf("disabled counter overflowed: %d", n)
	}
	if c.Value() != 1<<30 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter(TotalCycles, 10)
	c.Add(25)
	c.Reset()
	if c.Value() != 0 || c.Overflows() != 0 {
		t.Fatal("reset incomplete")
	}
	if c.Threshold() != 10 || c.Event() != TotalCycles {
		t.Fatal("reset lost programming")
	}
}

// Property: total overflows equal total cycles / threshold regardless of
// how the cycles are chunked into Add calls.
func TestCounterChunkingInvariant(t *testing.T) {
	check := func(chunks []uint16, thresholdSeed uint16) bool {
		threshold := uint64(thresholdSeed%997) + 3
		c := NewCounter(TotalCycles, threshold)
		var total, overflows uint64
		for _, ch := range chunks {
			total += uint64(ch)
			overflows += uint64(c.Add(uint64(ch)))
		}
		return overflows == total/threshold && c.Value() == total%threshold
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSkidQueueDelaysDelivery(t *testing.T) {
	q := &SkidQueue{Skid: 2}
	q.Push(1)
	if n := q.Retire(); n != 0 {
		t.Fatalf("delivered too early: %d", n)
	}
	if n := q.Retire(); n != 0 {
		t.Fatalf("delivered too early: %d", n)
	}
	if n := q.Retire(); n != 1 {
		t.Fatalf("not delivered after skid: %d", n)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending = %d", q.Pending())
	}
}

func TestSkidQueueMultiple(t *testing.T) {
	q := &SkidQueue{Skid: 1}
	q.Push(2)
	if n := q.Retire(); n != 0 {
		t.Fatalf("first retire: %d", n)
	}
	if n := q.Retire(); n != 2 {
		t.Fatalf("second retire: %d", n)
	}
}

// Property: nothing is lost — pushed interrupts all eventually deliver.
func TestSkidConservation(t *testing.T) {
	check := func(pushes []uint8, skidSeed uint8) bool {
		q := &SkidQueue{Skid: int(skidSeed % 8)}
		var pushed, delivered int
		for _, p := range pushes {
			n := int(p % 4)
			q.Push(n)
			pushed += n
			delivered += q.Retire()
		}
		for i := 0; i < 16; i++ {
			delivered += q.Retire()
		}
		return delivered == pushed && q.Pending() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefaultThresholdIsTheLargePrime(t *testing.T) {
	if DefaultThreshold != 608_888_809 {
		t.Fatalf("DefaultThreshold = %d", DefaultThreshold)
	}
}
