// Package pmu simulates a performance monitoring unit programmed through
// a PAPI-like interface: a cycle counter with an overflow threshold that
// raises a signal each time the count crosses the threshold (paper §IV.B,
// which programs PAPI_TOT_CYC with the large prime 608,888,809).
//
// Skid — the distance between the event and the instruction the interrupt
// reports (§IV.B cites ProfileMe) — can be injected for robustness
// experiments: a positive skid delays sample delivery by that many
// subsequent instructions.
package pmu

// Event names a countable hardware event.
type Event string

// Supported events.
const (
	TotalCycles Event = "PAPI_TOT_CYC"
)

// DefaultThreshold is the paper's sampling threshold, a large prime.
const DefaultThreshold = 608_888_809

// Counter is one programmed PMU counter.
type Counter struct {
	event     Event
	threshold uint64
	value     uint64
	overflows uint64
}

// NewCounter programs a counter for event with the given overflow
// threshold. A zero threshold disables overflow generation.
func NewCounter(event Event, threshold uint64) *Counter {
	return &Counter{event: event, threshold: threshold}
}

// Event returns the programmed event.
func (c *Counter) Event() Event { return c.event }

// Threshold returns the programmed overflow threshold.
func (c *Counter) Threshold() uint64 { return c.threshold }

// Value returns the current residual count (since the last overflow).
func (c *Counter) Value() uint64 { return c.value }

// Overflows returns the total number of overflows so far.
func (c *Counter) Overflows() uint64 { return c.overflows }

// Add advances the counter and returns how many overflow interrupts fire
// (0 almost always; >1 if a single addition spans several thresholds).
func (c *Counter) Add(cycles uint64) int {
	if c.threshold == 0 {
		c.value += cycles
		return 0
	}
	c.value += cycles
	n := 0
	for c.value >= c.threshold {
		c.value -= c.threshold
		c.overflows++
		n++
	}
	return n
}

// Reset clears the counter state, keeping the programming.
func (c *Counter) Reset() {
	c.value = 0
	c.overflows = 0
}

// SkidQueue models interrupt skid: overflows pushed in are delivered
// after Skid subsequent instructions have retired.
type SkidQueue struct {
	Skid    int
	pending []int // remaining instruction distances
}

// Push enqueues n overflow interrupts.
func (q *SkidQueue) Push(n int) {
	for i := 0; i < n; i++ {
		q.pending = append(q.pending, q.Skid)
	}
}

// Retire advances one instruction and returns how many interrupts deliver
// on this instruction.
func (q *SkidQueue) Retire() int {
	if len(q.pending) == 0 {
		return 0
	}
	delivered := 0
	kept := q.pending[:0]
	for _, d := range q.pending {
		if d <= 0 {
			delivered++
		} else {
			kept = append(kept, d-1)
		}
	}
	q.pending = kept
	return delivered
}

// Pending returns the number of undelivered interrupts.
func (q *SkidQueue) Pending() int { return len(q.pending) }
