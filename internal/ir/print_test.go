package ir_test

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/token"
	"repro/internal/types"
)

// TestInstrStringEveryOp is the table-driven node-kind coverage test:
// one synthetic instruction per Op, checking the rendered mnemonic and
// every operand position the renderer can emit. Several of these kinds
// (zipsetup, yield, nop, slice, dmethod) are only reachable indirectly
// through full compiles, so they get explicit rows here.
func TestInstrStringEveryOp(t *testing.T) {
	v := func(name string) *ir.Var { return &ir.Var{Name: name} }
	blk0 := &ir.Block{ID: 0}
	blk1 := &ir.Block{ID: 1}
	callee := &ir.Func{Name: "body"}

	cases := []struct {
		op   ir.Op
		in   ir.Instr
		want string
	}{
		{ir.OpConst, ir.Instr{Dst: v("x"), Lit: &ir.Lit{T: types.IntType, I: 7}}, "x = const 7"},
		{ir.OpMove, ir.Instr{Dst: v("x"), A: v("y")}, "x = move y"},
		{ir.OpBin, ir.Instr{Dst: v("x"), A: v("a"), B: v("b"), BinOp: token.PLUS}, "x = bin + a b"},
		{ir.OpUn, ir.Instr{Dst: v("x"), A: v("a"), BinOp: token.MINUS}, "x = un - a"},
		{ir.OpMakeTuple, ir.Instr{Dst: v("t"), Args: []*ir.Var{v("a"), v("b")}}, "t = mktuple a b"},
		{ir.OpTupleGet, ir.Instr{Dst: v("x"), A: v("t")}, "x = tget t"},
		{ir.OpTupleSet, ir.Instr{Dst: v("t"), A: v("x")}, "t = tset x"},
		{ir.OpField, ir.Instr{Dst: v("x"), A: v("r")}, "x = field r"},
		{ir.OpFieldStore, ir.Instr{Dst: v("r"), A: v("x")}, "r = fstore x"},
		{ir.OpIndex, ir.Instr{Dst: v("x"), A: v("arr"), Args: []*ir.Var{v("i")}}, "x = index arr i"},
		{ir.OpIndexStore, ir.Instr{Dst: v("arr"), A: v("x"), Args: []*ir.Var{v("i")}}, "arr = istore x i"},
		{ir.OpSlice, ir.Instr{Dst: v("s"), A: v("arr"), B: v("d")}, "s = slice arr d"},
		{ir.OpRefElem, ir.Instr{Dst: v("r"), A: v("arr"), Args: []*ir.Var{v("i")}}, "r = refelem arr i"},
		{ir.OpRefField, ir.Instr{Dst: v("r"), A: v("obj")}, "r = reffield obj"},
		{ir.OpMakeRange, ir.Instr{Dst: v("rg"), A: v("lo"), B: v("hi")}, "rg = mkrange lo hi"},
		{ir.OpMakeDomain, ir.Instr{Dst: v("d"), Args: []*ir.Var{v("rg")}}, "d = mkdom rg"},
		{ir.OpDomMethod, ir.Instr{Dst: v("d2"), A: v("d"), Method: "expand", Args: []*ir.Var{v("k")}}, "d2 = dmethod d k .expand"},
		{ir.OpQuery, ir.Instr{Dst: v("n"), A: v("d"), Method: "size"}, "n = query d .size"},
		{ir.OpAllocArray, ir.Instr{Dst: v("arr"), A: v("d")}, "arr = allocarr d"},
		{ir.OpAllocRec, ir.Instr{Dst: v("obj")}, "obj = allocrec"},
		{ir.OpCall, ir.Instr{Dst: v("x"), Callee: callee, Args: []*ir.Var{v("a")}}, "x = call a @body"},
		{ir.OpBuiltin, ir.Instr{Dst: v("x"), Method: "sqrt", Args: []*ir.Var{v("a")}}, "x = builtin a .sqrt"},
		{ir.OpRet, ir.Instr{A: v("x")}, "ret x"},
		{ir.OpJmp, ir.Instr{Targets: [2]*ir.Block{blk0, nil}}, "jmp b0"},
		{ir.OpBr, ir.Instr{A: v("c"), Targets: [2]*ir.Block{blk0, blk1}}, "br c b0 b1"},
		{ir.OpSpawn, ir.Instr{Callee: callee, Args: []*ir.Var{v("cap")}}, "spawn cap @body"},
		{ir.OpZipSetup, ir.Instr{Dst: v("f"), A: v("arr")}, "f = zipsetup arr"},
		{ir.OpZipAdvance, ir.Instr{Dst: v("f")}, "f = zipadv"},
		{ir.OpYield, ir.Instr{}, "yield"},
		{ir.OpNop, ir.Instr{}, "nop"},
	}
	covered := map[ir.Op]bool{}
	for _, c := range cases {
		c.in.Op = c.op
		if got := c.in.String(); got != c.want {
			t.Errorf("%v: String() = %q, want %q", c.op, got, c.want)
		}
		covered[c.op] = true
	}
	// The table must stay exhaustive as ops are added: every named op
	// between OpInvalid and OpNop needs a row.
	for op := ir.OpConst; op <= ir.OpNop; op++ {
		if !covered[op] {
			t.Errorf("no String test row for op %v", op)
		}
	}
	if ir.OpInvalid.String() != "op(0)" {
		t.Errorf("unnamed op renders %q, want op(0)", ir.OpInvalid.String())
	}
}

// TestLitString covers every literal type plus the unknown fallback.
func TestLitString(t *testing.T) {
	cases := []struct {
		lit  ir.Lit
		want string
	}{
		{ir.Lit{T: types.IntType, I: -3}, "-3"},
		{ir.Lit{T: types.RealType, F: 2.5}, "2.5"},
		{ir.Lit{T: types.BoolType, B: true}, "true"},
		{ir.Lit{T: types.StringType, S: "hi\n"}, `"hi\n"`},
		{ir.Lit{T: types.VoidType}, "?"},
	}
	for _, c := range cases {
		if got := c.lit.String(); got != c.want {
			t.Errorf("Lit{%v}.String() = %q, want %q", c.lit.T, got, c.want)
		}
	}
}

// TestDumpStructure checks the function-level renderer: params (with the
// ref marker), return type, the outlined/runtime attribute block, block
// predecessor comments, and source-line comments.
func TestDumpStructure(t *testing.T) {
	p := build(t, `
proc inc(ref x: int, delta: int): int {
  x = x + delta;
  return x;
}
proc main() {
  var v = 1;
  if v > 0 {
    v = inc(v, 2);
  }
  forall i in 1..4 {
    v = v;
  }
}
`)
	out := p.Dump()
	for _, want := range []string{
		"func inc(ref x: int, delta: int): int {",
		"[outlined]", // the forall body function
		"[runtime]",  // the scheduler's synthetic functions
		"; preds [",  // CFG comment on joined blocks
		"; line ",    // source-position comments
		"br ",        // the if lowers to a branch
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q\n%s", want, out)
		}
	}
	// Every non-runtime function appears with its header.
	for _, f := range p.Funcs {
		if f.IsRuntime && len(f.Blocks) == 0 {
			continue
		}
		if !strings.Contains(out, "func "+f.Name+"(") {
			t.Errorf("dump missing function %s", f.Name)
		}
	}
}

// TestValidateTable drives every Validate error path with minimal
// hand-built programs.
func TestValidateTable(t *testing.T) {
	mk := func(mutate func(f *ir.Func)) *ir.Program {
		p := ir.NewProgram(source.NewFileSet(), "v.mchpl")
		f := p.NewFunc("f", nil, source.Pos{})
		b := f.NewBlock()
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
		mutate(f)
		return p
	}
	cases := []struct {
		name   string
		mutate func(f *ir.Func)
		want   string
	}{
		{"ok", func(f *ir.Func) {}, ""},
		{"no blocks", func(f *ir.Func) { f.Blocks = nil }, "no blocks"},
		{"wrong owner", func(f *ir.Func) { f.Blocks[0].Func = nil }, "wrong owner"},
		{"empty block", func(f *ir.Func) { f.Blocks[0].Instrs = nil }, "is empty"},
		{"no terminator", func(f *ir.Func) {
			f.Blocks[0].Instrs = []*ir.Instr{{Op: ir.OpNop}}
		}, "does not end in a terminator"},
		{"mid-block terminator", func(f *ir.Func) {
			f.Blocks[0].Instrs = []*ir.Instr{{Op: ir.OpRet}, {Op: ir.OpRet}}
		}, "mid-block"},
		{"malformed br", func(f *ir.Func) {
			f.Blocks[0].Instrs = []*ir.Instr{{Op: ir.OpBr}}
		}, "malformed br"},
		{"malformed jmp", func(f *ir.Func) {
			f.Blocks[0].Instrs = []*ir.Instr{{Op: ir.OpJmp}}
		}, "malformed jmp"},
		{"call without callee", func(f *ir.Func) {
			f.Blocks[0].Instrs = []*ir.Instr{{Op: ir.OpCall}, {Op: ir.OpRet}}
		}, "without callee"},
		{"malformed const", func(f *ir.Func) {
			f.Blocks[0].Instrs = []*ir.Instr{{Op: ir.OpConst}, {Op: ir.OpRet}}
		}, "malformed const"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := mk(c.mutate).Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid program rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
	// Runtime funcs are allowed to be bodiless.
	p := ir.NewProgram(source.NewFileSet(), "v.mchpl")
	f := p.NewFunc("sched", nil, source.Pos{})
	f.IsRuntime = true
	if err := p.Validate(); err != nil {
		t.Errorf("bodiless runtime func rejected: %v", err)
	}
}

// TestIRRoundTripInvariant is the round-trip invariant: compiling a
// program, printing its AST with ast.Print, and compiling the printed
// form must produce identical IR modulo source positions (ast.Print
// reformats, so line numbers may shift — everything else must be byte
// identical: instructions, operands, addresses, CFG). This is the
// property the backend-diff fuzzer builds on — the printed program is
// the same program.
// stripLines removes the `; line N` position comments from a dump.
func stripLines(dump string) string {
	return lineComment.ReplaceAllString(dump, "")
}

var lineComment = regexp.MustCompile(`  ; line \d+`)

func TestIRRoundTripInvariant(t *testing.T) {
	srcs := map[string]string{
		"scalar": `
config const n = 10;
proc main() {
  var s = 0.0;
  for i in 1..n {
    s += i * 0.5;
  }
  writeln(s);
}
`,
		"aggregate": `
var D: domain(1) = {0..#8};
var A: [D] real;
record pt { var x: real; var y: real; }
proc main() {
  var p: pt;
  p.x = 1.5;
  var t = (1.0, 2.0, 3.0);
  forall i in D {
    A[i] = p.x + t(2);
  }
  writeln(A[3]);
}
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog, err := parser.ParseFile(source.NewFileSet(), name+".mchpl", src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			printed := ast.Print(prog)
			d1 := stripLines(build(t, src).Dump())
			d2 := stripLines(build(t, printed).Dump())
			if d1 != d2 {
				t.Errorf("IR changed across ast.Print round-trip:\n--- direct ---\n%s\n--- round-tripped ---\n%s", d1, d2)
			}
		})
	}
}
