package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the whole program as text (for tests and debugging).
func (p *Program) Dump() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		b.WriteString(f.Dump())
		b.WriteByte('\n')
	}
	return b.String()
}

// Dump renders one function.
func (f *Func) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, q := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if q.IsRef {
			b.WriteString("ref ")
		}
		fmt.Fprintf(&b, "%s: %s", q.Name, q.Type)
	}
	b.WriteString(")")
	if f.RetVar != nil {
		fmt.Fprintf(&b, ": %s", f.RetVar.Type)
	}
	var attrs []string
	if f.Outlined {
		attrs = append(attrs, "outlined")
	}
	if f.IsRuntime {
		attrs = append(attrs, "runtime")
	}
	if len(attrs) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(attrs, ","))
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:", blk.ID)
		if len(blk.Preds) > 0 {
			ids := make([]int, len(blk.Preds))
			for i, p := range blk.Preds {
				ids[i] = p.ID
			}
			sort.Ints(ids)
			fmt.Fprintf(&b, " ; preds %v", ids)
		}
		b.WriteByte('\n')
		for _, ins := range blk.Instrs {
			fmt.Fprintf(&b, "  %s", ins)
			if ins.Pos.IsValid() {
				fmt.Fprintf(&b, "  ; line %d", ins.Pos.Line)
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Validate checks structural invariants; it returns the first problem
// found, or nil. Used by tests and the compiler driver.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			if f.IsRuntime {
				continue
			}
			return fmt.Errorf("func %s has no blocks", f.Name)
		}
		for _, blk := range f.Blocks {
			if blk.Func != f {
				return fmt.Errorf("func %s block b%d has wrong owner", f.Name, blk.ID)
			}
			n := len(blk.Instrs)
			if n == 0 {
				return fmt.Errorf("func %s block b%d is empty", f.Name, blk.ID)
			}
			for k, ins := range blk.Instrs {
				isTerm := ins.Op == OpRet || ins.Op == OpJmp || ins.Op == OpBr
				if k == n-1 && !isTerm {
					return fmt.Errorf("func %s block b%d does not end in a terminator (%s)", f.Name, blk.ID, ins)
				}
				if k < n-1 && isTerm {
					return fmt.Errorf("func %s block b%d has terminator %s mid-block", f.Name, blk.ID, ins)
				}
				switch ins.Op {
				case OpBr:
					if ins.A == nil || ins.Targets[0] == nil || ins.Targets[1] == nil {
						return fmt.Errorf("func %s: malformed br", f.Name)
					}
				case OpJmp:
					if ins.Targets[0] == nil {
						return fmt.Errorf("func %s: malformed jmp", f.Name)
					}
				case OpCall, OpSpawn:
					if ins.Callee == nil {
						return fmt.Errorf("func %s: %s without callee", f.Name, ins.Op)
					}
				case OpConst:
					if ins.Lit == nil || ins.Dst == nil {
						return fmt.Errorf("func %s: malformed const", f.Name)
					}
				}
			}
		}
	}
	return nil
}
