// Package ir defines the typed three-address intermediate representation
// MiniChapel programs are compiled to. It plays the role LLVM bitcode +
// DWARF debug information play in the paper's pipeline: every instruction
// carries a source position and a unique address, every operand is a
// variable (source variables and flagged compiler temporaries), and
// parallel loop bodies are outlined into `forall_fn`/`coforall_fn`
// functions exactly as the Chapel compiler outlines them — which is what
// makes spawn-tag stack gluing (paper §IV.B/C) necessary and possible.
package ir

import (
	"fmt"

	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/token"
	"repro/internal/types"
)

// Op enumerates IR operations.
type Op int

// IR operations.
const (
	OpInvalid Op = iota

	// Data movement and arithmetic.
	OpConst // Dst = Lit
	OpMove  // Dst = A (big types copy elementwise — costed)
	OpBin   // Dst = A BinOp B
	OpUn    // Dst = BinOp A (MINUS/NOT)

	// Aggregates.
	OpMakeTuple  // Dst = (Args...)          — tuple construction (costed)
	OpTupleGet   // Dst = A(FieldIx) or A(B) — tuple element read
	OpTupleSet   // Dst(FieldIx)/Dst(B) = A  — tuple element write
	OpField      // Dst = A.FieldIx
	OpFieldStore // Dst.FieldIx = A
	OpIndex      // Dst = A[Args...]         — array element read
	OpIndexStore // Dst[Args...] = A         — array element write
	OpSlice      // Dst = A[B]               — array view over domain/range (aliases A)
	OpRefElem    // Dst = ref A[Args...]     — element alias (zip/loop binding)
	OpRefField   // Dst = ref A.FieldIx      — field alias (lvalue chains)

	// Ranges and domains.
	OpMakeRange  // Dst = A..B (or counted: A..#B) by C(Args[0] optional)
	OpMakeDomain // Dst = {Args...} (ranges)
	OpDomMethod  // Dst = A.Method(Args...)  — expand/translate/dim/interior...
	OpQuery      // Dst = A.Method           — size/low/high/domain...

	// Allocation.
	OpAllocArray // Dst = alloc array over domain A (elem domain B for nested)
	OpAllocRec   // Dst = new Class(...)

	// Calls.
	OpCall    // Dst = Callee(Args...)
	OpBuiltin // Dst = Builtin(Args...)

	// Control flow (block terminators).
	OpRet // return A (A may be nil)
	OpJmp // goto Targets[0]
	OpBr  // if A goto Targets[0] else Targets[1]

	// Parallelism (terminator-like but falls through; VM handles joins).
	OpSpawn // launch Callee over iteration space; Args = captures

	// Zippered-iteration overhead markers (emitted in outlined bodies'
	// prologues; Dst is the follower ref var so blame reaches the arrays).
	OpZipSetup   // per-loop-start per-iterand iterator construction
	OpZipAdvance // per-iteration follower advance

	// Runtime-internal (only in IsRuntime functions).
	OpYield // scheduler yield / idle spin quantum
	OpNop
)

var opNames = map[Op]string{
	OpConst: "const", OpMove: "move", OpBin: "bin", OpUn: "un",
	OpMakeTuple: "mktuple", OpTupleGet: "tget", OpTupleSet: "tset",
	OpField: "field", OpFieldStore: "fstore", OpIndex: "index",
	OpIndexStore: "istore", OpSlice: "slice", OpRefElem: "refelem", OpRefField: "reffield",
	OpMakeRange: "mkrange", OpMakeDomain: "mkdom", OpDomMethod: "dmethod",
	OpQuery: "query", OpAllocArray: "allocarr", OpAllocRec: "allocrec",
	OpCall: "call", OpBuiltin: "builtin", OpRet: "ret", OpJmp: "jmp",
	OpBr: "br", OpSpawn: "spawn", OpZipSetup: "zipsetup",
	OpZipAdvance: "zipadv", OpYield: "yield", OpNop: "nop",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// SpawnKind distinguishes parallel constructs.
type SpawnKind int

// Spawn kinds.
const (
	SpawnForall SpawnKind = iota
	SpawnCoforall
	SpawnBegin
	SpawnCobegin
	SpawnOn
)

func (k SpawnKind) String() string {
	switch k {
	case SpawnForall:
		return "forall"
	case SpawnCoforall:
		return "coforall"
	case SpawnBegin:
		return "begin"
	case SpawnCobegin:
		return "cobegin"
	case SpawnOn:
		return "on"
	}
	return "?"
}

// Lit is a literal constant operand.
type Lit struct {
	T types.Type
	I int64
	F float64
	B bool
	S string
}

func (l *Lit) String() string {
	switch l.T.Kind() {
	case types.Int:
		return fmt.Sprintf("%d", l.I)
	case types.Real:
		return fmt.Sprintf("%g", l.F)
	case types.Bool:
		return fmt.Sprintf("%t", l.B)
	case types.String:
		return fmt.Sprintf("%q", l.S)
	}
	return "?"
}

// Var is an IR variable: a source variable, formal parameter, global, or a
// flagged compiler temporary (temporaries are tracked through the blame
// analysis but hidden in user-facing views, per the paper §IV.A).
type Var struct {
	Name string
	Sym  *sem.Symbol // nil for temps and synthetic vars
	Type types.Type

	IsTemp   bool
	IsGlobal bool
	IsParam  bool
	// IsRef marks ref formals and ref-alias locals: writes through them
	// alias storage owned elsewhere.
	IsRef bool
	// Slot is the frame (or global-area) slot index.
	Slot int
	// Func owns locals/params; nil for globals.
	Func *Func
}

func (v *Var) String() string { return v.Name }

// Display reports whether the variable should appear in user-facing views.
func (v *Var) Display() bool { return !v.IsTemp && v.Sym != nil }

// Instr is one IR instruction.
type Instr struct {
	Op    Op
	Dst   *Var
	A, B  *Var
	Args  []*Var
	Lit   *Lit
	BinOp token.Kind
	// FieldIx is the constant field/tuple index (-1 when dynamic via B).
	FieldIx int
	// Method is the domain/array method or builtin name.
	Method string
	// Callee is the target for OpCall/OpSpawn.
	Callee *Func
	// Rebind marks an OpMove that (re)binds a ref variable to its
	// initializer's storage (`ref r = x`) rather than assigning through
	// it. Distinguishing the two in the IR lets the race pass reason
	// about writes through local refs instead of skipping them.
	Rebind bool
	// Spawn describes OpSpawn iteration.
	Spawn *SpawnInfo
	// Targets are the successor blocks for OpJmp (1) and OpBr (2).
	Targets [2]*Block

	Pos  source.Pos
	Addr uint64 // unique program-wide instruction address
	// Block and Index locate the instruction after Finalize.
	Block *Block
	Index int
}

// SpawnInfo describes the iteration space of an OpSpawn.
type SpawnInfo struct {
	Kind SpawnKind
	// Iter is the iteration source: a range, domain, or array var.
	// nil for begin/cobegin/on.
	Iter *Var
	// NumIdx is how many index parameters the outlined body takes.
	NumIdx int
	// Followers are zip-follower vars (arrays/ranges beyond the leader).
	Followers []*Var
	// Extra holds the remaining cobegin bodies (Callee is the first).
	Extra []*Func
	// ExtraArgs holds per-body capture args for Extra.
	ExtraArgs [][]*Var
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []*Instr
	Func   *Func

	// Preds/Succs are filled by Finalize.
	Preds, Succs []*Block
}

// Terminator returns the final instruction, or nil if the block is empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	switch t.Op {
	case OpRet, OpJmp, OpBr:
		return t
	}
	return nil
}

// Func is an IR function.
type Func struct {
	ID   int
	Name string
	Sym  *sem.Symbol
	Pos  source.Pos

	Params []*Var
	// RetVar is the return-value exit variable (nil for void).
	RetVar *Var
	Locals []*Var // all locals and temps (excluding params)
	Blocks []*Block

	// Outlined marks forall/coforall/begin body functions.
	Outlined bool
	// OutlinedFrom names the user function the body was outlined from.
	OutlinedFrom *Func
	// IsRuntime marks synthetic runtime-library functions (sched_yield,
	// task layer) — trimmed from blame call paths, visible to the
	// code-centric baseline (paper Fig. 4).
	IsRuntime bool
	// Parent is the lexically enclosing function for nested procs.
	Parent *Func

	Program *Program
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AllVars returns params, return var and locals.
func (f *Func) AllVars() []*Var {
	out := make([]*Var, 0, len(f.Params)+len(f.Locals)+1)
	out = append(out, f.Params...)
	if f.RetVar != nil {
		out = append(out, f.RetVar)
	}
	out = append(out, f.Locals...)
	return out
}

// Program is a compiled IR module.
type Program struct {
	FileSet *source.FileSet
	Name    string

	Funcs   []*Func
	Globals []*Var

	Main       *Func
	ModuleInit *Func

	// Records lists record/class types with the domains their array
	// fields are allocated over (global domain vars), so the VM can
	// default-initialize instances.
	FieldDomains map[*types.RecordType]map[int]*Var

	// ConfigConsts maps config-const names to their global vars.
	ConfigConsts map[string]*Var

	// Instrs indexes every instruction by address after Finalize.
	Instrs []*Instr

	// Optimized records that the --fast pipeline ran (affects the VM cost
	// model the way -O3 codegen affects real cycle counts, and degrades
	// temp debug fidelity as described in paper §V).
	Optimized bool
	// NoChecks elides array bounds checks (--no-checks).
	NoChecks bool

	nextFuncID int
}

// NewProgram creates an empty program.
func NewProgram(fset *source.FileSet, name string) *Program {
	return &Program{
		FileSet:      fset,
		Name:         name,
		FieldDomains: make(map[*types.RecordType]map[int]*Var),
		ConfigConsts: make(map[string]*Var),
	}
}

// NewFunc appends a new function.
func (p *Program) NewFunc(name string, sym *sem.Symbol, pos source.Pos) *Func {
	f := &Func{ID: p.nextFuncID, Name: name, Sym: sym, Pos: pos, Program: p}
	p.nextFuncID++
	p.Funcs = append(p.Funcs, f)
	return f
}

// FuncByName returns the first function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// InstrAt resolves an instruction address (the "IP" of a sample).
func (p *Program) InstrAt(addr uint64) *Instr {
	i := int(addr)
	if i < 0 || i >= len(p.Instrs) {
		return nil
	}
	return p.Instrs[i]
}

// Finalize assigns instruction addresses and block indices and computes the
// CFG edges. Must be called once after construction.
func (p *Program) Finalize() {
	p.Instrs = p.Instrs[:0]
	var addr uint64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.Preds = b.Preds[:0]
			b.Succs = b.Succs[:0]
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i, ins := range b.Instrs {
				ins.Block = b
				ins.Index = i
				ins.Addr = addr
				addr++
				p.Instrs = append(p.Instrs, ins)
			}
			if t := b.Terminator(); t != nil {
				switch t.Op {
				case OpJmp:
					link(b, t.Targets[0])
				case OpBr:
					link(b, t.Targets[0])
					link(b, t.Targets[1])
				}
			}
		}
	}
}

func link(from, to *Block) {
	if to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ---------------------------------------------------------- use/def info

// Def returns the variable this instruction writes (the blame target of a
// direct write), or nil. Note OpIndexStore/OpFieldStore/OpTupleSet write
// *through* Dst: the write still blames Dst (and its aliases).
func (i *Instr) Def() *Var {
	switch i.Op {
	case OpRet, OpJmp, OpBr, OpNop, OpYield:
		return nil
	}
	return i.Dst
}

// IsStoreThrough reports whether the instruction writes through Dst into
// storage Dst references (element/field stores) rather than replacing
// Dst's own value.
func (i *Instr) IsStoreThrough() bool {
	switch i.Op {
	case OpIndexStore, OpFieldStore, OpTupleSet:
		return true
	}
	return false
}

// IsAliasDef reports whether the instruction makes Dst an alias of A
// (slices, element refs, and ref rebinds) — the alias edges the paper's
// blame definition includes in W.
func (i *Instr) IsAliasDef() bool {
	switch i.Op {
	case OpSlice, OpRefElem, OpRefField:
		return true
	case OpMove:
		return i.Rebind
	}
	return false
}

// Uses returns the variables this instruction reads.
func (i *Instr) Uses() []*Var {
	var out []*Var
	add := func(v *Var) {
		if v != nil {
			out = append(out, v)
		}
	}
	add(i.A)
	add(i.B)
	for _, a := range i.Args {
		add(a)
	}
	if i.IsStoreThrough() {
		// The base is read to compute the location.
		add(i.Dst)
	}
	if i.Spawn != nil {
		add(i.Spawn.Iter)
		for _, f := range i.Spawn.Followers {
			add(f)
		}
	}
	return out
}

// WritesRefArgs returns, for OpCall/OpSpawn, the argument vars passed to
// ref formals (potentially written by the callee).
func (i *Instr) WritesRefArgs() []*Var {
	if i.Op != OpCall && i.Op != OpSpawn {
		return nil
	}
	if i.Callee == nil {
		return nil
	}
	// Spawn bodies take their index parameters first; the spawn's Args
	// align with the params after them.
	skip := 0
	if i.Op == OpSpawn && i.Spawn != nil {
		skip = i.Spawn.NumIdx
	}
	var out []*Var
	for k, p := range i.Callee.Params {
		if k < skip {
			continue
		}
		if p.IsRef && k-skip < len(i.Args) {
			out = append(out, i.Args[k-skip])
		}
	}
	return out
}

func (i *Instr) String() string {
	s := i.Op.String()
	if i.Dst != nil {
		s = i.Dst.Name + " = " + s
	}
	if i.Lit != nil {
		s += " " + i.Lit.String()
	}
	if i.BinOp != 0 {
		s += " " + i.BinOp.String()
	}
	if i.A != nil {
		s += " " + i.A.Name
	}
	if i.B != nil {
		s += " " + i.B.Name
	}
	for _, a := range i.Args {
		s += " " + a.Name
	}
	if i.Method != "" {
		s += " ." + i.Method
	}
	if i.Callee != nil {
		s += " @" + i.Callee.Name
	}
	if i.Op == OpJmp {
		s += fmt.Sprintf(" b%d", i.Targets[0].ID)
	}
	if i.Op == OpBr {
		s += fmt.Sprintf(" b%d b%d", i.Targets[0].ID, i.Targets[1].ID)
	}
	return s
}
