package ir_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/ir"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Prog
}

func TestFinalizeIdempotent(t *testing.T) {
	p := build(t, `
proc f(): int { return 42; }
proc main() { var x = f(); }
`)
	n1 := len(p.Instrs)
	p.Finalize()
	if len(p.Instrs) != n1 {
		t.Errorf("finalize changed instr count: %d vs %d", len(p.Instrs), n1)
	}
	// Addresses stay dense and CFG edges are not duplicated.
	for i, in := range p.Instrs {
		if int(in.Addr) != i {
			t.Fatalf("addr %d at index %d", in.Addr, i)
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			seen := map[int]int{}
			for _, s := range b.Succs {
				seen[s.ID]++
			}
			for id, n := range seen {
				// Two edges to the same block are only legal for a
				// branch with equal targets, which irgen never emits.
				if n > 1 {
					t.Errorf("%s b%d has %d edges to b%d", f.Name, b.ID, n, id)
				}
			}
		}
	}
}

func TestUsesAndDefs(t *testing.T) {
	p := build(t, `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  var x = 1.0;
  A[0] = x + 2.0;
}
`)
	f := p.FuncByName("main")
	var store *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpIndexStore {
				store = in
			}
		}
	}
	if store == nil {
		t.Fatal("no index store")
	}
	if store.Def() == nil || store.Def().Name != "A" {
		t.Errorf("store def = %v, want A", store.Def())
	}
	if !store.IsStoreThrough() {
		t.Error("index store is a store-through")
	}
	// Uses include the stored value, the index and the base.
	foundBase := false
	for _, u := range store.Uses() {
		if u.Name == "A" {
			foundBase = true
		}
	}
	if !foundBase {
		t.Error("store uses must include the base")
	}
}

func TestDumpRendersProgram(t *testing.T) {
	p := build(t, `
proc sq(x: real): real { return x * x; }
proc main() { var y = sq(2.0); }
`)
	out := p.Dump()
	for _, want := range []string{"func sq", "func main", "call", "@sq", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestVarDisplay(t *testing.T) {
	p := build(t, `proc main() { var user = 1 + 2; }`)
	f := p.FuncByName("main")
	var userVar, tempVar *ir.Var
	for _, v := range f.AllVars() {
		if v.Name == "user" {
			userVar = v
		}
		if v.IsTemp && tempVar == nil {
			tempVar = v
		}
	}
	if userVar == nil || !userVar.Display() {
		t.Error("user var must display")
	}
	if tempVar == nil || tempVar.Display() {
		t.Error("temps must not display")
	}
}

func TestWritesRefArgsAlignment(t *testing.T) {
	p := build(t, `
config const n = 8;
var D: domain(1) = {0..#n};
proc main() {
  var A: [D] real;
  var B: [D] real;
  forall i in D {
    A[i] = B[i] + 1.0;
  }
}
`)
	f := p.FuncByName("main")
	var spawn *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSpawn {
				spawn = in
			}
		}
	}
	if spawn == nil {
		t.Fatal("no spawn")
	}
	names := map[string]bool{}
	for _, v := range spawn.WritesRefArgs() {
		names[v.Name] = true
	}
	if !names["A"] {
		t.Errorf("A must be a written ref arg: %v", names)
	}
}

func TestValidateRejectsDanglingBr(t *testing.T) {
	p := build(t, `proc main() { var x = 1; }`)
	f := p.FuncByName("main")
	last := f.Blocks[len(f.Blocks)-1]
	last.Instrs = append(last.Instrs[:len(last.Instrs)-1],
		&ir.Instr{Op: ir.OpBr})
	if err := p.Validate(); err == nil {
		t.Error("Validate must reject br without cond/targets")
	}
}

func TestInstrStringStable(t *testing.T) {
	p := build(t, `proc main() { var a = 1; var b = a + 2; }`)
	for _, in := range p.Instrs {
		if in.String() == "" {
			t.Fatalf("empty instr string for %v", in.Op)
		}
	}
}

func TestSpawnKindStrings(t *testing.T) {
	cases := map[ir.SpawnKind]string{
		ir.SpawnForall:   "forall",
		ir.SpawnCoforall: "coforall",
		ir.SpawnBegin:    "begin",
		ir.SpawnCobegin:  "cobegin",
		ir.SpawnOn:       "on",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}
