package parser_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/benchprog"
	"repro/internal/parser"
	"repro/internal/source"
)

// corpusSeeds returns the .mchpl example corpus plus the embedded
// benchmark sources — every real program the repo ships.
func corpusSeeds(t testing.TB) []string {
	var seeds []string
	matches, err := filepath.Glob("../../examples/*/*.mchpl")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, string(b))
	}
	if len(seeds) == 0 {
		t.Fatal("no .mchpl examples found for the seed corpus")
	}
	seeds = append(seeds,
		benchprog.HaloSource,
		benchprog.WavefrontSource,
		benchprog.GatherSource,
		benchprog.SpMVSource,
		benchprog.Fig1Example,
	)
	for _, p := range []benchprog.Program{
		benchprog.MiniMD(false), benchprog.MiniMD(true),
		benchprog.CLOMP(false), benchprog.CLOMP(true),
		benchprog.LULESH(benchprog.LuleshOriginal), benchprog.LULESH(benchprog.LuleshBest),
	} {
		seeds = append(seeds, p.Source)
	}
	return seeds
}

// FuzzParse asserts the frontend never panics on arbitrary input, and
// that for input that parses cleanly the printer round-trips: the
// printed form reparses, and print∘parse is idempotent from the first
// reprint on.
func FuzzParse(f *testing.F) {
	for _, s := range corpusSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := source.NewFileSet()
		prog, err := parser.ParseFile(fset, "fuzz.mchpl", src)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		p1 := ast.Print(prog)
		prog2, err := parser.ParseFile(source.NewFileSet(), "fuzz2.mchpl", p1)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n--- printed ---\n%s", err, p1)
		}
		p2 := ast.Print(prog2)
		prog3, err := parser.ParseFile(source.NewFileSet(), "fuzz3.mchpl", p2)
		if err != nil {
			t.Fatalf("reprinted program does not reparse: %v\n--- printed ---\n%s", err, p2)
		}
		if p3 := ast.Print(prog3); p2 != p3 {
			t.Fatalf("print/parse did not reach a fixed point:\n--- second ---\n%s\n--- third ---\n%s", p2, p3)
		}
	})
}

// TestPrintRoundTripCorpus runs the round-trip property over the whole
// seed corpus directly, so `go test` exercises it without -fuzz.
func TestPrintRoundTripCorpus(t *testing.T) {
	for i, src := range corpusSeeds(t) {
		fset := source.NewFileSet()
		prog, err := parser.ParseFile(fset, "corpus.mchpl", src)
		if err != nil {
			t.Fatalf("seed %d does not parse: %v", i, err)
		}
		p1 := ast.Print(prog)
		prog2, err := parser.ParseFile(source.NewFileSet(), "corpus2.mchpl", p1)
		if err != nil {
			t.Fatalf("seed %d: printed form does not reparse: %v\n%s", i, err, p1)
		}
		if p2 := ast.Print(prog2); p1 != p2 {
			t.Fatalf("seed %d: print∘parse not idempotent:\n--- first ---\n%s\n--- second ---\n%s", i, p1, p2)
		}
	}
}

// TestParseDepthBound pins the recursion guard: pathological nesting
// must produce a syntax error, not a stack overflow.
func TestParseDepthBound(t *testing.T) {
	deep := "var x = " + strings.Repeat("(", 100000) + "1" + strings.Repeat(")", 100000) + ";"
	if _, err := parser.ParseFile(source.NewFileSet(), "deep.mchpl", deep); err == nil {
		t.Error("100k-deep nesting parsed without error; expected the depth bound to trip")
	}
}
