// Package parser implements a recursive-descent parser for MiniChapel.
package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos source.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("syntax error at line %d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
}

// ErrorList is a collection of parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	if len(l) == 1 {
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Parser parses one file.
type Parser struct {
	lex  *lexer.Lexer
	tok  lexer.Token // current token
	next lexer.Token // one-token lookahead
	errs ErrorList

	// depth counts live stmt/expr/type recursion; beyond maxParseDepth
	// the parser errors out instead of overflowing the goroutine stack
	// on adversarial inputs like "((((((..." (found by FuzzParse).
	depth int

	fileName string
}

// maxParseDepth bounds recursive-descent nesting. Real programs stay in
// the tens; the bound only exists so pathological inputs degrade into a
// syntax error.
const maxParseDepth = 512

// enter guards one recursion level; callers that receive false must
// return a placeholder without recursing further.
func (p *Parser) enter() bool {
	p.depth++
	if p.depth > maxParseDepth {
		p.errorf(p.tok.Pos, "nesting too deep (more than %d levels)", maxParseDepth)
		return false
	}
	return true
}

func (p *Parser) leave() { p.depth-- }

// New returns a parser over the given registered file.
func New(f *source.File) *Parser {
	p := &Parser{lex: lexer.New(f), fileName: f.Name}
	p.tok = p.lex.Next()
	p.next = p.lex.Next()
	return p
}

// ParseFile registers src under name in fset and parses it.
func ParseFile(fset *source.FileSet, name, src string) (*ast.Program, error) {
	f := fset.Add(name, src)
	p := New(f)
	prog := p.Program()
	for _, e := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: e.Pos, Msg: e.Msg})
	}
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

func (p *Parser) advance() {
	p.tok = p.next
	p.next = p.lex.Next()
}

func (p *Parser) errorf(pos source.Pos, format string, args ...any) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *Parser) expect(k token.Kind) lexer.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: let the caller's loop structure recover.
		if t.Kind == token.EOF {
			return t
		}
	}
	p.advance()
	return t
}

func (p *Parser) got(k token.Kind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

// Program parses the whole file.
func (p *Parser) Program() *ast.Program {
	prog := &ast.Program{FileName: p.fileName}
	for p.tok.Kind != token.EOF {
		before := p.tok
		switch p.tok.Kind {
		case token.PROC, token.ITER:
			prog.Decls = append(prog.Decls, p.procDecl())
		case token.RECORD, token.CLASS:
			prog.Decls = append(prog.Decls, p.recordDecl())
		case token.TYPE:
			prog.Decls = append(prog.Decls, p.typeAliasDecl())
		case token.USE:
			// `use X;` is accepted and ignored (single-module programs).
			p.advance()
			p.expect(token.IDENT)
			p.expect(token.SEMI)
		case token.VAR, token.CONST, token.PARAM, token.CONFIG, token.REF:
			prog.Decls = append(prog.Decls, &ast.GlobalVarDecl{V: p.varDecl()})
		default:
			prog.TopStmts = append(prog.TopStmts, p.stmt())
		}
		if p.tok == before && p.tok.Kind != token.EOF {
			// No progress: skip a token to avoid an infinite loop.
			p.errorf(p.tok.Pos, "unexpected %s", p.tok)
			p.advance()
		}
	}
	return prog
}

// ------------------------------------------------------------ declarations

func (p *Parser) procDecl() *ast.ProcDecl {
	d := &ast.ProcDecl{ProcPos: p.tok.Pos, IsIter: p.tok.Kind == token.ITER}
	p.advance()
	d.Name = p.ident()
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		d.Params = append(d.Params, p.param())
		if !p.got(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	if p.got(token.COLON) {
		d.RetType = p.typeExpr()
	}
	d.Body = p.block()
	return d
}

func (p *Parser) param() ast.Param {
	q := ast.Param{ParamPos: p.tok.Pos}
	switch p.tok.Kind {
	case token.REF:
		q.Intent = ast.IntentRef
		p.advance()
	case token.IN:
		q.Intent = ast.IntentIn
		p.advance()
	case token.OUT:
		q.Intent = ast.IntentOut
		p.advance()
	case token.INOUT:
		q.Intent = ast.IntentInout
		p.advance()
	case token.PARAM:
		q.Intent = ast.IntentParam
		p.advance()
	case token.CONST:
		q.Intent = ast.IntentIn
		p.advance()
	}
	q.Name = p.ident()
	if p.got(token.COLON) {
		q.Type = p.typeExpr()
	}
	return q
}

func (p *Parser) recordDecl() *ast.RecordDecl {
	d := &ast.RecordDecl{RecPos: p.tok.Pos, IsClass: p.tok.Kind == token.CLASS}
	p.advance()
	d.Name = p.ident()
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.VAR, token.CONST:
			pos := p.tok.Pos
			p.advance()
			// One or more comma-separated names sharing a type.
			names := []*ast.Ident{p.ident()}
			for p.got(token.COMMA) {
				names = append(names, p.ident())
			}
			var ty ast.TypeExpr
			if p.got(token.COLON) {
				ty = p.typeExpr()
			}
			var init ast.Expr
			if p.got(token.ASSIGN) {
				init = p.expr()
			}
			p.expect(token.SEMI)
			for _, n := range names {
				d.Fields = append(d.Fields, ast.FieldDecl{FieldPos: pos, Name: n, Type: ty, Init: init})
			}
		case token.PROC, token.ITER:
			d.Methods = append(d.Methods, p.procDecl())
		default:
			p.errorf(p.tok.Pos, "expected field or method in %s body, found %s", d.Name.Name, p.tok)
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return d
}

func (p *Parser) typeAliasDecl() *ast.TypeAliasDecl {
	d := &ast.TypeAliasDecl{TypePos: p.tok.Pos}
	p.expect(token.TYPE)
	d.Name = p.ident()
	p.expect(token.ASSIGN)
	d.Target = p.typeExpr()
	p.expect(token.SEMI)
	return d
}

// varDecl parses `[config] (var|const|param) names [: type] [= init];`
// and `ref name = expr;` alias declarations.
func (p *Parser) varDecl() *ast.VarDecl {
	d := &ast.VarDecl{DeclPos: p.tok.Pos}
	if p.tok.Kind == token.REF {
		d.IsRef = true
		d.Kind = ast.VarVar
		p.advance()
	} else {
		if p.got(token.CONFIG) {
			if p.tok.Kind == token.CONST || p.tok.Kind == token.VAR || p.tok.Kind == token.PARAM {
				p.advance()
			}
			d.Kind = ast.VarConfigConst
		} else {
			switch p.tok.Kind {
			case token.VAR:
				d.Kind = ast.VarVar
			case token.CONST:
				d.Kind = ast.VarConst
			case token.PARAM:
				d.Kind = ast.VarParam
			}
			p.advance()
		}
	}
	d.Names = append(d.Names, p.ident())
	for p.got(token.COMMA) {
		d.Names = append(d.Names, p.ident())
	}
	if p.got(token.COLON) {
		d.Type = p.typeExpr()
	}
	if p.got(token.ASSIGN) {
		d.Init = p.expr()
	}
	p.expect(token.SEMI)
	return d
}

func (p *Parser) ident() *ast.Ident {
	t := p.tok
	if t.Kind != token.IDENT {
		// Allow a few keywords as identifiers in field position (e.g. a
		// record field named "value" is fine since those aren't keywords,
		// but "in" etc. are not allowed).
		p.errorf(t.Pos, "expected identifier, found %s", t)
		return &ast.Ident{NamePos: t.Pos, Name: "_error_"}
	}
	p.advance()
	return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
}

// ------------------------------------------------------------------- types

func (p *Parser) typeExpr() ast.TypeExpr {
	if !p.enter() {
		p.leave()
		return &ast.NamedType{NamePos: p.tok.Pos, Name: "_error_"}
	}
	defer p.leave()
	switch p.tok.Kind {
	case token.LPAREN:
		// Parenthesized type: 8*(4*real).
		p.advance()
		t := p.typeExpr()
		p.expect(token.RPAREN)
		return t
	case token.LBRACK:
		// [D] T or [0..n, 0..m] T
		lb := p.tok.Pos
		p.advance()
		var dims []ast.Expr
		for p.tok.Kind != token.RBRACK && p.tok.Kind != token.EOF {
			dims = append(dims, p.expr())
			if !p.got(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACK)
		return &ast.ArrayType{Lbrack: lb, Dom: dims, Elem: p.typeExpr()}
	case token.DOMAIN:
		pos := p.tok.Pos
		p.advance()
		p.expect(token.LPAREN)
		rank := p.expr()
		p.expect(token.RPAREN)
		dt := &ast.DomainType{DomPos: pos, Rank: rank}
		// `domain(1) dmapped Block` — block distribution across locales.
		if p.tok.Kind == token.IDENT && p.tok.Lit == "dmapped" {
			p.advance()
			dist := p.ident()
			dt.Dist = dist.Name
		}
		return dt
	case token.RANGE:
		pos := p.tok.Pos
		p.advance()
		return &ast.RangeType{RangePos: pos}
	case token.INT:
		// Tuple type: 3*real.
		pos := p.tok.Pos
		cnt := &ast.IntLit{LitPos: pos, Value: parseInt(p.tok.Lit)}
		p.advance()
		p.expect(token.STAR)
		return &ast.TupleType{CountPos: pos, Count: cnt, Elem: p.typeExpr()}
	case token.IDENT:
		pos := p.tok.Pos
		name := p.tok.Lit
		if name == "atomic" {
			p.advance()
			return &ast.AtomicType{AtomicPos: pos, Elem: p.typeExpr()}
		}
		// `k*T` with a param count.
		if p.next.Kind == token.STAR {
			cnt := &ast.Ident{NamePos: pos, Name: name}
			p.advance()
			p.advance()
			return &ast.TupleType{CountPos: pos, Count: cnt, Elem: p.typeExpr()}
		}
		p.advance()
		nt := &ast.NamedType{NamePos: pos, Name: name}
		// int(32), real(64) style widths.
		if (name == "int" || name == "real" || name == "uint") && p.tok.Kind == token.LPAREN {
			p.advance()
			w := p.expect(token.INT)
			nt.Width = int(parseInt(w.Lit))
			p.expect(token.RPAREN)
		}
		return nt
	case token.LOCALE:
		pos := p.tok.Pos
		p.advance()
		return &ast.NamedType{NamePos: pos, Name: "locale"}
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	pos := p.tok.Pos
	p.advance()
	return &ast.NamedType{NamePos: pos, Name: "_error_"}
}

func parseInt(lit string) int64 {
	var v int64
	for i := 0; i < len(lit); i++ {
		v = v*10 + int64(lit[i]-'0')
	}
	return v
}

// -------------------------------------------------------------- statements

func (p *Parser) block() *ast.BlockStmt {
	b := &ast.BlockStmt{Lbrace: p.tok.Pos}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		b.Stmts = append(b.Stmts, p.stmt())
		if p.tok == before {
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return b
}

// blockOrDo parses either `{ ... }` or `do stmt;` bodies.
func (p *Parser) blockOrDo() *ast.BlockStmt {
	if p.tok.Kind == token.DO {
		pos := p.tok.Pos
		p.advance()
		return &ast.BlockStmt{Lbrace: pos, Stmts: []ast.Stmt{p.stmt()}}
	}
	return p.block()
}

func (p *Parser) stmt() ast.Stmt {
	if !p.enter() {
		p.leave()
		if p.tok.Kind != token.EOF {
			p.advance()
		}
		return &ast.BlockStmt{Lbrace: p.tok.Pos}
	}
	defer p.leave()
	switch p.tok.Kind {
	case token.VAR, token.CONST, token.PARAM, token.CONFIG, token.REF:
		return p.varDecl()
	case token.PROC, token.ITER:
		return &ast.DeclStmt{D: p.procDecl()}
	case token.RECORD, token.CLASS:
		return &ast.DeclStmt{D: p.recordDecl()}
	case token.TYPE:
		return &ast.DeclStmt{D: p.typeAliasDecl()}
	case token.LBRACE:
		return p.block()
	case token.IF:
		return p.ifStmt()
	case token.WHILE:
		pos := p.tok.Pos
		p.advance()
		cond := p.expr()
		body := p.blockOrDo()
		return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: body}
	case token.DO:
		pos := p.tok.Pos
		p.advance()
		body := p.block()
		p.expect(token.WHILE)
		cond := p.expr()
		p.expect(token.SEMI)
		return &ast.DoWhileStmt{DoPos: pos, Body: body, Cond: cond}
	case token.FOR:
		return p.forStmt(ast.LoopFor)
	case token.FORALL:
		return p.forStmt(ast.LoopForall)
	case token.COFORALL:
		return p.forStmt(ast.LoopCoforall)
	case token.SELECT:
		return p.selectStmt()
	case token.RETURN:
		pos := p.tok.Pos
		p.advance()
		var x ast.Expr
		if p.tok.Kind != token.SEMI {
			x = p.expr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{RetPos: pos, X: x}
	case token.YIELD:
		pos := p.tok.Pos
		p.advance()
		x := p.expr()
		p.expect(token.SEMI)
		return &ast.YieldStmt{YieldPos: pos, X: x}
	case token.BREAK:
		pos := p.tok.Pos
		p.advance()
		p.expect(token.SEMI)
		return &ast.BreakStmt{BrkPos: pos}
	case token.CONTINUE:
		pos := p.tok.Pos
		p.advance()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{ContPos: pos}
	case token.ON:
		pos := p.tok.Pos
		p.advance()
		target := p.expr()
		body := p.blockOrDo()
		return &ast.OnStmt{OnPos: pos, Target: target, Body: body}
	case token.BEGIN:
		pos := p.tok.Pos
		p.advance()
		return &ast.BeginStmt{BeginPos: pos, Body: p.blockOrDo()}
	case token.COBEGIN:
		pos := p.tok.Pos
		p.advance()
		return &ast.CobeginStmt{CoPos: pos, Body: p.block()}
	case token.SYNC:
		pos := p.tok.Pos
		p.advance()
		return &ast.SyncStmt{SyncPos: pos, Body: p.blockOrDo()}
	}
	// Expression or assignment statement.
	lhs := p.expr()
	if p.tok.Kind.IsAssignOp() {
		op := p.tok.Kind
		p.advance()
		rhs := p.expr()
		p.expect(token.SEMI)
		return &ast.AssignStmt{Lhs: lhs, Op: op, Rhs: rhs}
	}
	p.expect(token.SEMI)
	return &ast.ExprStmt{X: lhs}
}

func (p *Parser) ifStmt() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.IF)
	cond := p.expr()
	var then *ast.BlockStmt
	if p.got(token.THEN) {
		then = &ast.BlockStmt{Lbrace: p.tok.Pos, Stmts: []ast.Stmt{p.stmt()}}
	} else {
		then = p.block()
	}
	var els ast.Stmt
	if p.got(token.ELSE) {
		switch p.tok.Kind {
		case token.IF:
			els = p.ifStmt()
		case token.LBRACE:
			els = p.block()
		default:
			els = &ast.BlockStmt{Lbrace: p.tok.Pos, Stmts: []ast.Stmt{p.stmt()}}
		}
	}
	return &ast.IfStmt{IfPos: pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) forStmt(kind ast.LoopKind) ast.Stmt {
	pos := p.tok.Pos
	p.advance()
	if kind == ast.LoopFor && p.got(token.PARAM) {
		kind = ast.LoopParamFor
	}
	s := &ast.ForStmt{ForPos: pos, Kind: kind}
	// Index variables: `i` or `(a, b)`.
	if p.got(token.LPAREN) {
		s.Idx = append(s.Idx, p.ident())
		for p.got(token.COMMA) {
			s.Idx = append(s.Idx, p.ident())
		}
		p.expect(token.RPAREN)
	} else {
		s.Idx = append(s.Idx, p.ident())
	}
	p.expect(token.IN)
	if p.tok.Kind == token.ZIP {
		zp := p.tok.Pos
		p.advance()
		p.expect(token.LPAREN)
		z := &ast.ZipExpr{ZipPos: zp}
		for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
			z.Args = append(z.Args, p.expr())
			if !p.got(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		s.Iter = z
	} else {
		s.Iter = p.expr()
	}
	s.Body = p.blockOrDo()
	return s
}

func (p *Parser) selectStmt() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.SELECT)
	subj := p.expr()
	p.expect(token.LBRACE)
	s := &ast.SelectStmt{SelPos: pos, Subject: subj}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.WHEN:
			w := ast.WhenClause{WhenPos: p.tok.Pos}
			p.advance()
			w.Values = append(w.Values, p.expr())
			for p.got(token.COMMA) {
				w.Values = append(w.Values, p.expr())
			}
			w.Body = p.blockOrDo()
			s.Whens = append(s.Whens, w)
		case token.OTHERWISE:
			p.advance()
			s.Otherwise = p.blockOrDo()
		default:
			p.errorf(p.tok.Pos, "expected when/otherwise, found %s", p.tok)
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return s
}

// ------------------------------------------------------------- expressions

func (p *Parser) expr() ast.Expr {
	if !p.enter() {
		p.leave()
		return &ast.IntLit{LitPos: p.tok.Pos}
	}
	defer p.leave()
	if p.tok.Kind == token.IF {
		pos := p.tok.Pos
		p.advance()
		cond := p.expr()
		p.expect(token.THEN)
		a := p.expr()
		p.expect(token.ELSE)
		b := p.expr()
		return &ast.IfExpr{IfPos: pos, Cond: cond, Then: a, Else: b}
	}
	return p.binaryExpr(1)
}

func (p *Parser) binaryExpr(minPrec int) ast.Expr {
	x := p.unaryExpr()
	for {
		op := p.tok.Kind
		prec := op.Precedence()
		if prec < minPrec {
			// `by` binds to a completed range: `0..n by 2`.
			if op == token.BY {
				if r, ok := x.(*ast.RangeExpr); ok {
					p.advance()
					r.By = p.binaryExpr(5)
					continue
				}
			}
			return x
		}
		pos := p.tok.Pos
		p.advance()
		if op == token.DOTDOT {
			r := &ast.RangeExpr{Lo: x, RangePos: pos}
			if p.got(token.HASH) {
				r.Count = p.binaryExpr(prec + 1)
			} else {
				r.Hi = p.binaryExpr(prec + 1)
			}
			x = r
			continue
		}
		y := p.binaryExpr(prec + 1)
		x = &ast.BinaryExpr{X: x, Op: op, Y: y}
	}
}

func (p *Parser) unaryExpr() ast.Expr {
	if !p.enter() {
		p.leave()
		return &ast.IntLit{LitPos: p.tok.Pos}
	}
	defer p.leave()
	switch p.tok.Kind {
	case token.MINUS, token.NOT:
		pos := p.tok.Pos
		op := p.tok.Kind
		// `+ reduce A` / `* reduce A` style reductions.
		p.advance()
		return &ast.UnaryExpr{OpPos: pos, Op: op, X: p.unaryExpr()}
	case token.PLUS, token.STAR:
		if p.next.Kind == token.REDUCE {
			pos := p.tok.Pos
			op := p.tok.Kind
			p.advance()
			p.advance()
			return &ast.ReduceExpr{OpPos: pos, Op: op, X: p.unaryExpr()}
		}
	}
	// `max reduce A` / `min reduce A`.
	if p.tok.Kind == token.IDENT && (p.tok.Lit == "max" || p.tok.Lit == "min") && p.next.Kind == token.REDUCE {
		pos := p.tok.Pos
		op := token.GT
		if p.tok.Lit == "min" {
			op = token.LT
		}
		p.advance()
		p.advance()
		return &ast.ReduceExpr{OpPos: pos, Op: op, X: p.unaryExpr()}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() ast.Expr {
	x := p.primaryExpr()
	for {
		switch p.tok.Kind {
		case token.LPAREN:
			lp := p.tok.Pos
			p.advance()
			call := &ast.CallExpr{Fun: x, Lparen: lp}
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				call.Args = append(call.Args, p.expr())
				if !p.got(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			x = call
		case token.LBRACK:
			lb := p.tok.Pos
			p.advance()
			idx := &ast.IndexExpr{X: x, Lbrack: lb}
			for p.tok.Kind != token.RBRACK && p.tok.Kind != token.EOF {
				idx.Index = append(idx.Index, p.expr())
				if !p.got(token.COMMA) {
					break
				}
			}
			p.expect(token.RBRACK)
			x = idx
		case token.DOT:
			p.advance()
			name := p.fieldName()
			x = &ast.FieldExpr{X: x, Name: name}
		default:
			return x
		}
	}
}

// fieldName accepts identifiers plus keywords that double as method names
// (e.g. `.domain`, `.locale`).
func (p *Parser) fieldName() *ast.Ident {
	t := p.tok
	switch t.Kind {
	case token.IDENT:
		p.advance()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.DOMAIN, token.LOCALE, token.RANGE, token.TYPE:
		p.advance()
		return &ast.Ident{NamePos: t.Pos, Name: t.Kind.String()}
	}
	p.errorf(t.Pos, "expected field name, found %s", t)
	return &ast.Ident{NamePos: t.Pos, Name: "_error_"}
}

func (p *Parser) primaryExpr() ast.Expr {
	t := p.tok
	switch t.Kind {
	case token.IDENT:
		p.advance()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.HERE:
		p.advance()
		return &ast.Ident{NamePos: t.Pos, Name: "here"}
	case token.INT:
		p.advance()
		return &ast.IntLit{LitPos: t.Pos, Value: parseInt(t.Lit)}
	case token.REAL:
		p.advance()
		return &ast.RealLit{LitPos: t.Pos, Value: parseFloat(t.Lit)}
	case token.STRING:
		p.advance()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.TRUE:
		p.advance()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.FALSE:
		p.advance()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.NIL:
		p.advance()
		return &ast.Ident{NamePos: t.Pos, Name: "nil"}
	case token.NEW:
		p.advance()
		ty := p.typeExpr()
		ne := &ast.NewExpr{NewPos: t.Pos, Type: ty}
		if p.got(token.LPAREN) {
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				ne.Args = append(ne.Args, p.expr())
				if !p.got(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		return ne
	case token.LPAREN:
		p.advance()
		first := p.expr()
		if p.got(token.COMMA) {
			tup := &ast.TupleExpr{Lparen: t.Pos, Elems: []ast.Expr{first}}
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				tup.Elems = append(tup.Elems, p.expr())
				if !p.got(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			return tup
		}
		p.expect(token.RPAREN)
		return first
	case token.LBRACE:
		p.advance()
		dl := &ast.DomainLit{Lbrace: t.Pos}
		for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
			dl.Dims = append(dl.Dims, p.expr())
			if !p.got(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACE)
		return dl
	case token.ZIP:
		p.advance()
		p.expect(token.LPAREN)
		z := &ast.ZipExpr{ZipPos: t.Pos}
		for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
			z.Args = append(z.Args, p.expr())
			if !p.got(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		return z
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.advance()
	return &ast.IntLit{LitPos: t.Pos, Value: 0}
}

func parseFloat(lit string) float64 {
	var v float64
	var err error
	_, err = fmt.Sscanf(lit, "%g", &v)
	if err != nil {
		return 0
	}
	return v
}
