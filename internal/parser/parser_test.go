package parser

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/token"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	fset := source.NewFileSet()
	prog, err := ParseFile(fset, "t.mchpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func parseStmt(t *testing.T, src string) ast.Stmt {
	t.Helper()
	prog := parse(t, src)
	if len(prog.TopStmts) == 0 {
		t.Fatalf("no top statements in %q", src)
	}
	return prog.TopStmts[0]
}

func TestVarDeclForms(t *testing.T) {
	prog := parse(t, `
var x: int;
var y = 1.5;
const z: real = 2.0;
param k = 4;
config const n = 10;
var a, b: int;
ref R = A[D];
`)
	if len(prog.Decls) != 7 {
		t.Fatalf("got %d decls", len(prog.Decls))
	}
	v0 := prog.Decls[0].(*ast.GlobalVarDecl).V
	if v0.Kind != ast.VarVar || v0.Names[0].Name != "x" || v0.Type == nil || v0.Init != nil {
		t.Errorf("decl 0 wrong: %+v", v0)
	}
	v1 := prog.Decls[1].(*ast.GlobalVarDecl).V
	if v1.Type != nil || v1.Init == nil {
		t.Errorf("decl 1 should be inferred with init")
	}
	v3 := prog.Decls[3].(*ast.GlobalVarDecl).V
	if v3.Kind != ast.VarParam {
		t.Errorf("decl 3 should be param")
	}
	v4 := prog.Decls[4].(*ast.GlobalVarDecl).V
	if v4.Kind != ast.VarConfigConst {
		t.Errorf("decl 4 should be config const")
	}
	v5 := prog.Decls[5].(*ast.GlobalVarDecl).V
	if len(v5.Names) != 2 {
		t.Errorf("decl 5 should declare 2 names")
	}
	v6 := prog.Decls[6].(*ast.GlobalVarDecl).V
	if !v6.IsRef {
		t.Errorf("decl 6 should be a ref alias")
	}
}

func TestProcDecl(t *testing.T) {
	prog := parse(t, `
proc foo(a: int, ref b: real, param k: int): real {
  return a + b;
}
`)
	d := prog.Decls[0].(*ast.ProcDecl)
	if d.Name.Name != "foo" || len(d.Params) != 3 {
		t.Fatalf("bad proc: %+v", d)
	}
	if d.Params[0].Intent != ast.IntentDefault {
		t.Errorf("param a intent")
	}
	if d.Params[1].Intent != ast.IntentRef {
		t.Errorf("param b intent")
	}
	if d.Params[2].Intent != ast.IntentParam {
		t.Errorf("param k intent")
	}
	if d.RetType == nil {
		t.Errorf("missing return type")
	}
	if len(d.Body.Stmts) != 1 {
		t.Errorf("body stmts = %d", len(d.Body.Stmts))
	}
}

func TestRecordDecl(t *testing.T) {
	prog := parse(t, `
record atom {
  var v: v3;
  var f: v3;
  var nCount: int(32);
  proc reset() { nCount = 0; }
}
`)
	d := prog.Decls[0].(*ast.RecordDecl)
	if d.IsClass {
		t.Error("should be record, not class")
	}
	if len(d.Fields) != 3 || len(d.Methods) != 1 {
		t.Fatalf("fields=%d methods=%d", len(d.Fields), len(d.Methods))
	}
	if nt, ok := d.Fields[2].Type.(*ast.NamedType); !ok || nt.Width != 32 {
		t.Errorf("int(32) width not parsed: %+v", d.Fields[2].Type)
	}
}

func TestTypeAlias(t *testing.T) {
	prog := parse(t, `type v3 = 3*real;`)
	d := prog.Decls[0].(*ast.TypeAliasDecl)
	tt, ok := d.Target.(*ast.TupleType)
	if !ok {
		t.Fatalf("target = %T", d.Target)
	}
	if c, ok := tt.Count.(*ast.IntLit); !ok || c.Value != 3 {
		t.Errorf("count: %+v", tt.Count)
	}
}

func TestArrayAndDomainTypes(t *testing.T) {
	prog := parse(t, `
var D: domain(2);
var A: [D] real;
var B: [0..9] int;
var C: [DistSpace] [perBinSpace] v3;
`)
	a := prog.Decls[1].(*ast.GlobalVarDecl).V
	at, ok := a.Type.(*ast.ArrayType)
	if !ok || len(at.Dom) != 1 {
		t.Fatalf("A type: %+v", a.Type)
	}
	c := prog.Decls[3].(*ast.GlobalVarDecl).V
	outer := c.Type.(*ast.ArrayType)
	if _, ok := outer.Elem.(*ast.ArrayType); !ok {
		t.Errorf("nested array type not parsed: %T", outer.Elem)
	}
}

func TestForallAndZip(t *testing.T) {
	s := parseStmt(t, `forall (b, p) in zip(Bins, Pos) { b = p; }`)
	f := s.(*ast.ForStmt)
	if f.Kind != ast.LoopForall {
		t.Errorf("kind = %v", f.Kind)
	}
	if len(f.Idx) != 2 {
		t.Errorf("idx count = %d", len(f.Idx))
	}
	z, ok := f.Iter.(*ast.ZipExpr)
	if !ok || len(z.Args) != 2 {
		t.Fatalf("iterand: %+v", f.Iter)
	}
}

func TestForParamLoop(t *testing.T) {
	s := parseStmt(t, `for param i in 1..4 { x += i; }`)
	f := s.(*ast.ForStmt)
	if f.Kind != ast.LoopParamFor {
		t.Errorf("kind = %v, want param for", f.Kind)
	}
	r, ok := f.Iter.(*ast.RangeExpr)
	if !ok || r.Hi == nil {
		t.Fatalf("iter: %+v", f.Iter)
	}
}

func TestCountedRangeAndBy(t *testing.T) {
	s := parseStmt(t, `for i in 0..#n by 2 { }`)
	f := s.(*ast.ForStmt)
	r := f.Iter.(*ast.RangeExpr)
	if r.Count == nil || r.Hi != nil {
		t.Errorf("want counted range, got %+v", r)
	}
	if r.By == nil {
		t.Errorf("missing stride")
	}
}

func TestCoforall(t *testing.T) {
	s := parseStmt(t, `coforall t in 0..#nTasks { work(t); }`)
	f := s.(*ast.ForStmt)
	if f.Kind != ast.LoopCoforall {
		t.Errorf("kind = %v", f.Kind)
	}
}

func TestIfForms(t *testing.T) {
	s := parseStmt(t, `if a < b { x = 1; } else if a > b { x = 2; } else { x = 3; }`)
	f := s.(*ast.IfStmt)
	if f.Else == nil {
		t.Fatal("missing else")
	}
	if _, ok := f.Else.(*ast.IfStmt); !ok {
		t.Errorf("else-if chain: %T", f.Else)
	}
	// then-form
	s2 := parseStmt(t, `if a < b then x = 1; else x = 2;`)
	f2 := s2.(*ast.IfStmt)
	if len(f2.Then.Stmts) != 1 || f2.Else == nil {
		t.Errorf("then form broken")
	}
}

func TestIfExpr(t *testing.T) {
	s := parseStmt(t, `x = if c then 1 else 2;`)
	a := s.(*ast.AssignStmt)
	if _, ok := a.Rhs.(*ast.IfExpr); !ok {
		t.Errorf("rhs = %T", a.Rhs)
	}
}

func TestSelectWhen(t *testing.T) {
	s := parseStmt(t, `
select x {
  when 1 { y = 1; }
  when 2, 3 { y = 2; }
  otherwise { y = 0; }
}`)
	sel := s.(*ast.SelectStmt)
	if len(sel.Whens) != 2 || sel.Otherwise == nil {
		t.Fatalf("select: %d whens, otherwise=%v", len(sel.Whens), sel.Otherwise != nil)
	}
	if len(sel.Whens[1].Values) != 2 {
		t.Errorf("when 2,3 values = %d", len(sel.Whens[1].Values))
	}
}

func TestDomainLiteralAndSlice(t *testing.T) {
	s := parseStmt(t, `D = {0..#nx, 0..#ny};`)
	a := s.(*ast.AssignStmt)
	dl, ok := a.Rhs.(*ast.DomainLit)
	if !ok || len(dl.Dims) != 2 {
		t.Fatalf("rhs = %+v", a.Rhs)
	}
	s2 := parseStmt(t, `R = Pos[binSpace];`)
	a2 := s2.(*ast.AssignStmt)
	ix, ok := a2.Rhs.(*ast.IndexExpr)
	if !ok || len(ix.Index) != 1 {
		t.Fatalf("slice rhs: %+v", a2.Rhs)
	}
}

func TestPrecedence(t *testing.T) {
	s := parseStmt(t, `x = a + b * c ** d;`)
	a := s.(*ast.AssignStmt)
	add := a.Rhs.(*ast.BinaryExpr)
	if add.Op != token.PLUS {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.Y.(*ast.BinaryExpr)
	if mul.Op != token.STAR {
		t.Fatalf("mul op = %v", mul.Op)
	}
	pow := mul.Y.(*ast.BinaryExpr)
	if pow.Op != token.POW {
		t.Fatalf("pow op = %v", pow.Op)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	s := parseStmt(t, `ok = a < b && c > d || e == f;`)
	or := s.(*ast.AssignStmt).Rhs.(*ast.BinaryExpr)
	if or.Op != token.OR {
		t.Fatalf("top = %v, want ||", or.Op)
	}
	and := or.X.(*ast.BinaryExpr)
	if and.Op != token.AND {
		t.Fatalf("left = %v, want &&", and.Op)
	}
}

func TestCompoundAssignAndSwap(t *testing.T) {
	if s := parseStmt(t, `x += 2;`).(*ast.AssignStmt); s.Op != token.PLUS_ASSIGN {
		t.Errorf("op = %v", s.Op)
	}
	if s := parseStmt(t, `a <=> b;`).(*ast.AssignStmt); s.Op != token.SWAP {
		t.Errorf("op = %v", s.Op)
	}
}

func TestMethodCallChain(t *testing.T) {
	s := parseStmt(t, `x = binSpace.expand(1).size;`)
	f, ok := s.(*ast.AssignStmt).Rhs.(*ast.FieldExpr)
	if !ok || f.Name.Name != "size" {
		t.Fatalf("rhs: %+v", s.(*ast.AssignStmt).Rhs)
	}
	call, ok := f.X.(*ast.CallExpr)
	if !ok {
		t.Fatalf("inner: %T", f.X)
	}
	if _, ok := call.Fun.(*ast.FieldExpr); !ok {
		t.Fatalf("call fun: %T", call.Fun)
	}
}

func TestTupleExprAndIndex(t *testing.T) {
	s := parseStmt(t, `p = (1.0, 2.0, 3.0);`)
	tup, ok := s.(*ast.AssignStmt).Rhs.(*ast.TupleExpr)
	if !ok || len(tup.Elems) != 3 {
		t.Fatalf("tuple: %+v", s)
	}
	// t(1) parses as a call; sem resolves it to tuple indexing.
	s2 := parseStmt(t, `x = t(1);`)
	if _, ok := s2.(*ast.AssignStmt).Rhs.(*ast.CallExpr); !ok {
		t.Fatalf("t(1): %T", s2.(*ast.AssignStmt).Rhs)
	}
}

func TestReduceExpr(t *testing.T) {
	s := parseStmt(t, `total = + reduce A;`)
	r, ok := s.(*ast.AssignStmt).Rhs.(*ast.ReduceExpr)
	if !ok || r.Op != token.PLUS {
		t.Fatalf("reduce: %+v", s.(*ast.AssignStmt).Rhs)
	}
	s2 := parseStmt(t, `m = max reduce A;`)
	if _, ok := s2.(*ast.AssignStmt).Rhs.(*ast.ReduceExpr); !ok {
		t.Fatalf("max reduce: %T", s2.(*ast.AssignStmt).Rhs)
	}
}

func TestOnBeginCobeginSync(t *testing.T) {
	parseStmt(t, `on Locales[1] { work(); }`)
	parseStmt(t, `begin { work(); }`)
	parseStmt(t, `cobegin { a(); b(); }`)
	parseStmt(t, `sync { begin { w(); } }`)
}

func TestNestedProcInBody(t *testing.T) {
	prog := parse(t, `
proc outer() {
  proc inner(x: real): real { return x * 2.0; }
  var y = inner(3.0);
}
`)
	outer := prog.Decls[0].(*ast.ProcDecl)
	ds, ok := outer.Body.Stmts[0].(*ast.DeclStmt)
	if !ok {
		t.Fatalf("first stmt: %T", outer.Body.Stmts[0])
	}
	if _, ok := ds.D.(*ast.ProcDecl); !ok {
		t.Fatalf("nested decl: %T", ds.D)
	}
}

func TestNewExpr(t *testing.T) {
	s := parseStmt(t, `p = new Part(3);`)
	ne, ok := s.(*ast.AssignStmt).Rhs.(*ast.NewExpr)
	if !ok || len(ne.Args) != 1 {
		t.Fatalf("new: %+v", s.(*ast.AssignStmt).Rhs)
	}
}

func TestWhileAndDoWhile(t *testing.T) {
	parseStmt(t, `while x < 10 { x += 1; }`)
	s := parseStmt(t, `do { x += 1; } while x < 10;`)
	if _, ok := s.(*ast.DoWhileStmt); !ok {
		t.Fatalf("do-while: %T", s)
	}
}

func TestSyntaxErrorReported(t *testing.T) {
	fset := source.NewFileSet()
	_, err := ParseFile(fset, "bad", "var = ;")
	if err == nil {
		t.Fatal("expected syntax error")
	}
}

func TestParserNoInfiniteLoopOnGarbage(t *testing.T) {
	fset := source.NewFileSet()
	// Must terminate even on unparseable soup.
	_, err := ParseFile(fset, "bad", "} ] ) when otherwise ..")
	if err == nil {
		t.Fatal("expected errors")
	}
}

func TestUseIgnored(t *testing.T) {
	prog := parse(t, "use Time;\nvar x = 1;")
	if len(prog.Decls) != 1 {
		t.Fatalf("use should be skipped, decls=%d", len(prog.Decls))
	}
}

func TestWalkVisitsAll(t *testing.T) {
	prog := parse(t, `
proc f(a: int): int {
  var s = 0;
  for i in 1..a { s += i; }
  return s;
}
var g = f(10);
`)
	var idents int
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.Ident); ok {
			idents++
		}
		return true
	})
	if idents < 5 {
		t.Errorf("Walk found only %d idents", idents)
	}
}

func TestYieldStatement(t *testing.T) {
	prog := parse(t, `
iter countTo(n: int): int {
  var i = 1;
  while i <= n {
    yield i;
    i += 1;
  }
}
`)
	d := prog.Decls[0].(*ast.ProcDecl)
	if !d.IsIter {
		t.Fatal("iter not flagged")
	}
	found := false
	ast.Walk(d.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.YieldStmt); ok {
			found = true
		}
		return true
	})
	if !found {
		t.Error("yield statement not parsed")
	}
}

func TestAtomicTypeParsing(t *testing.T) {
	prog := parse(t, `
var c: atomic int;
var F: [0..#8] atomic real;
`)
	v0 := prog.Decls[0].(*ast.GlobalVarDecl).V
	if _, ok := v0.Type.(*ast.AtomicType); !ok {
		t.Fatalf("c type = %T", v0.Type)
	}
	v1 := prog.Decls[1].(*ast.GlobalVarDecl).V
	arr := v1.Type.(*ast.ArrayType)
	if _, ok := arr.Elem.(*ast.AtomicType); !ok {
		t.Fatalf("F elem type = %T", arr.Elem)
	}
}

func TestDmappedDomainParsing(t *testing.T) {
	prog := parse(t, `var D: domain(1) dmapped Block = {0..#8};`)
	v := prog.Decls[0].(*ast.GlobalVarDecl).V
	dt := v.Type.(*ast.DomainType)
	if dt.Dist != "Block" {
		t.Fatalf("dist = %q", dt.Dist)
	}
	// Without dmapped, Dist stays empty.
	prog2 := parse(t, `var E: domain(1) = {0..#8};`)
	dt2 := prog2.Decls[0].(*ast.GlobalVarDecl).V.Type.(*ast.DomainType)
	if dt2.Dist != "" {
		t.Fatalf("dist = %q, want empty", dt2.Dist)
	}
}

func TestParenthesizedTupleType(t *testing.T) {
	prog := parse(t, `var h: 8*(4*real);`)
	v := prog.Decls[0].(*ast.GlobalVarDecl).V
	outer := v.Type.(*ast.TupleType)
	if _, ok := outer.Elem.(*ast.TupleType); !ok {
		t.Fatalf("inner type = %T", outer.Elem)
	}
}
