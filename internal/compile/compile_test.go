package compile_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/vm"
)

func TestSourceReportsParseErrors(t *testing.T) {
	_, err := compile.Source("bad.mchpl", "proc main() { var = ; }", compile.Options{})
	if err == nil || !strings.Contains(err.Error(), "syntax error") {
		t.Fatalf("err = %v", err)
	}
}

func TestSourceReportsSemErrors(t *testing.T) {
	_, err := compile.Source("bad.mchpl", "proc main() { x = 1; }", compile.Options{})
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("err = %v", err)
	}
}

func TestMustSourcePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSource should panic on bad source")
		}
	}()
	compile.MustSource("bad", "proc main() { x = ; }", compile.Options{})
}

func TestFastMarksProgram(t *testing.T) {
	res, err := compile.Source("t", "proc main() { }", compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Prog.Optimized || !res.Prog.NoChecks {
		t.Error("fast program not flagged")
	}
	res2, _ := compile.Source("t", "proc main() { }", compile.Options{})
	if res2.Prog.Optimized {
		t.Error("default build must not be optimized")
	}
}

func countOp(p *ir.Program, op ir.Op) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestConstantFoldingCollapsesChains(t *testing.T) {
	src := `
proc main() {
  var x = 1 + 2 * 3 - 4;
  writeln(x);
}
`
	slow, _ := compile.Source("t", src, compile.Options{})
	fast, _ := compile.Source("t", src, compile.Options{Fast: true})
	if countOp(fast.Prog, ir.OpBin) >= countOp(slow.Prog, ir.OpBin) {
		t.Errorf("folding did not remove bin ops: %d vs %d",
			countOp(fast.Prog, ir.OpBin), countOp(slow.Prog, ir.OpBin))
	}
}

func TestDCEKeepsObservableBehavior(t *testing.T) {
	src := `
proc main() {
  var unused1 = 3 * 7;
  var unused2 = unused1 + 1;
  var live = 2;
  writeln(live);
}
`
	fast, err := compile.Source("t", src, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	// The writeln argument chain must survive.
	found := false
	for _, in := range fast.Prog.Instrs {
		if in.Op == ir.OpBuiltin && in.Method == "writeln" {
			found = true
		}
	}
	if !found {
		t.Error("writeln eliminated")
	}
	if err := fast.Prog.Validate(); err != nil {
		t.Errorf("fast program invalid: %v", err)
	}
}

func TestDCENeverRemovesStores(t *testing.T) {
	src := `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  A[0] = 1.0;
}
`
	fast, err := compile.Source("t", src, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if countOp(fast.Prog, ir.OpIndexStore) != 1 {
		t.Error("store eliminated by DCE")
	}
}

func TestFastKeepsUserVariables(t *testing.T) {
	// --fast degrades temp debug info but named variables survive.
	src := `
proc main() {
  var named = 2 + 3;
  writeln(named);
}
`
	fast, err := compile.Source("t", src, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fast.Prog.Funcs {
		for _, v := range f.AllVars() {
			if v.Name == "named" {
				found = true
			}
		}
	}
	if !found {
		t.Error("named variable removed by --fast")
	}
}

func TestFastInlinesSmallLeafFunctions(t *testing.T) {
	src := `
proc sq(x: real): real { return x * x; }
proc main() {
  var total = 0.0;
  for i in 1..50 {
    total += sq(i * 1.0);
  }
  writeln(total > 0.0);
}
`
	fast, err := compile.Source("t", src, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	// sq is inlined and then dropped ("functions removed by --fast").
	if fast.Prog.FuncByName("sq") != nil {
		t.Error("sq should be removed after inlining")
	}
	if countOp(fast.Prog, ir.OpCall) != 0 {
		t.Errorf("calls remain: %d", countOp(fast.Prog, ir.OpCall))
	}
	slow, _ := compile.Source("t", src, compile.Options{})
	if slow.Prog.FuncByName("sq") == nil {
		t.Error("sq must exist without --fast")
	}
}

func TestFastInlinePreservesSemantics(t *testing.T) {
	src := `
proc clampAdd(ref acc: real, v: real): real {
  var c = v;
  if c > 10.0 {
    c = 10.0;
  }
  acc += c;
  return c;
}
proc main() {
  var acc = 0.0;
  var last = 0.0;
  for i in 1..20 {
    last = clampAdd(acc, i * 1.0);
  }
  writeln(acc, " ", last);
}
`
	runOut := func(fast bool) string {
		res, err := compile.Source("t", src, compile.Options{Fast: fast})
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		cfg := vm.DefaultConfig()
		cfg.Stdout = &out
		if _, err := vm.New(res.Prog, cfg).Run(); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	slow := runOut(false)
	fastOut := runOut(true)
	if slow != fastOut {
		t.Errorf("inlining changed semantics: %q vs %q", slow, fastOut)
	}
	if slow != "155.0 10.0\n" {
		t.Errorf("unexpected result: %q", slow)
	}
}

func TestFastInlineSkipsRecursionAndBigFunctions(t *testing.T) {
	src := `
proc fib(n: int): int {
  if n < 2 { return n; }
  return fib(n - 1) + fib(n - 2);
}
proc main() { writeln(fib(10)); }
`
	fast, err := compile.Source("t", src, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Prog.FuncByName("fib") == nil {
		t.Error("recursive fib must survive")
	}
	var out strings.Builder
	cfg := vm.DefaultConfig()
	cfg.Stdout = &out
	if _, err := vm.New(fast.Prog, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "55\n" {
		t.Errorf("fib(10) = %q", out.String())
	}
}
