package compile

import (
	"crypto/sha256"
	"sync"
)

// The experiment harness and the benchmark suite compile the same handful
// of embedded programs (LULESH variants, CLOMP, MiniMD, the PGAS
// stencils) dozens of times per run. Compilation is deterministic — the
// same (source, Options) pair always produces the same IR — and the
// Result is immutable once built (the VM keeps all run state in its own
// globals/frames), so results can be shared freely across callers and
// goroutines.

type sourceKey struct {
	name string
	hash [sha256.Size]byte
	opts Options
}

type sourceEntry struct {
	once sync.Once
	res  *Result
	err  error
}

var (
	sourceMu    sync.Mutex
	sourceCache = make(map[sourceKey]*sourceEntry)
)

// SourceCached compiles like Source but memoizes the result keyed by
// (name, hash of src, opts). Cache hits return the identical *Result;
// concurrent lookups of the same key compile exactly once (the losers
// block until the winner finishes). Errors are cached too: a source that
// failed to compile keeps failing without re-parsing.
func SourceCached(name, src string, opts Options) (*Result, error) {
	k := sourceKey{name: name, hash: sha256.Sum256([]byte(src)), opts: opts}
	sourceMu.Lock()
	e, ok := sourceCache[k]
	if !ok {
		e = &sourceEntry{}
		sourceCache[k] = e
	}
	sourceMu.Unlock()
	e.once.Do(func() { e.res, e.err = Source(name, src, opts) })
	return e.res, e.err
}

// ResetCache drops all memoized compilations (tests).
func ResetCache() {
	sourceMu.Lock()
	sourceCache = make(map[sourceKey]*sourceEntry)
	sourceMu.Unlock()
}
