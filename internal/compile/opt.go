package compile

import (
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
)

// optimize runs the --fast pipeline: local constant folding and dead-code
// elimination over temporaries. Real --fast (LLVM -O3) also reorders and
// inlines aggressively; we model the remaining codegen-quality gap in the
// VM cost model (vm.CostModel.FastFactor), which DESIGN.md documents as a
// substitution. The paper notes --fast makes IR→source variable mapping
// "nearly impossible"; correspondingly the temps deleted here disappear
// from the debug tables.
func optimize(res *Result) {
	p := res.Prog
	p.Optimized = true
	p.NoChecks = true
	for _, f := range p.Funcs {
		foldConstants(f)
	}
	for _, f := range p.Funcs {
		for eliminateDead(f) {
		}
	}
	inlineSmallFuncs(p)
	for _, f := range p.Funcs {
		for eliminateDead(f) {
		}
	}
	p.Finalize()
}

// foldConstants performs per-block constant propagation/folding over
// temporaries.
func foldConstants(f *ir.Func) {
	for _, b := range f.Blocks {
		consts := make(map[*ir.Var]*ir.Lit)
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpConst:
				if in.Dst.IsTemp {
					consts[in.Dst] = in.Lit
				}
			case ir.OpBin:
				la, aok := consts[in.A]
				lb, bok := consts[in.B]
				if aok && bok && in.Dst != nil && in.Dst.IsTemp {
					if lit := foldBin(in.BinOp, la, lb); lit != nil {
						in.Op = ir.OpConst
						in.Lit = lit
						in.A, in.B = nil, nil
						in.BinOp = 0
						consts[in.Dst] = lit
						continue
					}
				}
				delete(consts, in.Dst)
			case ir.OpUn:
				if la, ok := consts[in.A]; ok && in.Dst != nil && in.Dst.IsTemp {
					if lit := foldUn(in.BinOp, la); lit != nil {
						in.Op = ir.OpConst
						in.Lit = lit
						in.A = nil
						in.BinOp = 0
						consts[in.Dst] = lit
						continue
					}
				}
				delete(consts, in.Dst)
			default:
				if d := in.Def(); d != nil {
					delete(consts, d)
				}
			}
		}
	}
}

func isInt(l *ir.Lit) bool  { return l.T != nil && l.T.Kind() == types.Int }
func isReal(l *ir.Lit) bool { return l.T != nil && l.T.Kind() == types.Real }
func asF(l *ir.Lit) float64 {
	if isReal(l) {
		return l.F
	}
	return float64(l.I)
}

func foldBin(op token.Kind, a, b *ir.Lit) *ir.Lit {
	if !(isInt(a) || isReal(a)) || !(isInt(b) || isReal(b)) {
		return nil
	}
	if isInt(a) && isInt(b) {
		switch op {
		case token.PLUS:
			return &ir.Lit{T: types.IntType, I: a.I + b.I}
		case token.MINUS:
			return &ir.Lit{T: types.IntType, I: a.I - b.I}
		case token.STAR:
			return &ir.Lit{T: types.IntType, I: a.I * b.I}
		case token.SLASH:
			if b.I == 0 {
				return nil
			}
			return &ir.Lit{T: types.IntType, I: a.I / b.I}
		case token.PERCENT:
			if b.I == 0 {
				return nil
			}
			return &ir.Lit{T: types.IntType, I: a.I % b.I}
		case token.LE:
			return &ir.Lit{T: types.BoolType, B: a.I <= b.I}
		case token.LT:
			return &ir.Lit{T: types.BoolType, B: a.I < b.I}
		case token.GE:
			return &ir.Lit{T: types.BoolType, B: a.I >= b.I}
		case token.GT:
			return &ir.Lit{T: types.BoolType, B: a.I > b.I}
		case token.EQ:
			return &ir.Lit{T: types.BoolType, B: a.I == b.I}
		case token.NEQ:
			return &ir.Lit{T: types.BoolType, B: a.I != b.I}
		}
		return nil
	}
	x, y := asF(a), asF(b)
	switch op {
	case token.PLUS:
		return &ir.Lit{T: types.RealType, F: x + y}
	case token.MINUS:
		return &ir.Lit{T: types.RealType, F: x - y}
	case token.STAR:
		return &ir.Lit{T: types.RealType, F: x * y}
	case token.SLASH:
		if y == 0 {
			return nil
		}
		return &ir.Lit{T: types.RealType, F: x / y}
	}
	return nil
}

func foldUn(op token.Kind, a *ir.Lit) *ir.Lit {
	switch op {
	case token.MINUS:
		if isInt(a) {
			return &ir.Lit{T: types.IntType, I: -a.I}
		}
		if isReal(a) {
			return &ir.Lit{T: types.RealType, F: -a.F}
		}
	case token.NOT:
		if a.T != nil && a.T.Kind() == types.Bool {
			return &ir.Lit{T: types.BoolType, B: !a.B}
		}
	}
	return nil
}

// eliminateDead removes pure instructions whose temp destinations are never
// read; returns true if anything was removed (callers iterate to fixpoint).
func eliminateDead(f *ir.Func) bool {
	used := make(map[*ir.Var]bool)
	mark := func(v *ir.Var) {
		if v != nil {
			used[v] = true
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				mark(u)
			}
			// Store-through and alias targets stay live.
			if in.IsStoreThrough() || in.IsAliasDef() {
				mark(in.Dst)
			}
			switch in.Op {
			case ir.OpRet:
				mark(in.A)
			case ir.OpBr:
				mark(in.A)
			case ir.OpCall, ir.OpSpawn, ir.OpBuiltin:
				for _, a := range in.Args {
					mark(a)
				}
			}
		}
	}
	removed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if isPure(in.Op) && in.Dst != nil && in.Dst.IsTemp && !used[in.Dst] {
				removed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	if removed {
		// Keep blocks structurally valid.
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpNop})
			}
			last := b.Instrs[len(b.Instrs)-1]
			switch last.Op {
			case ir.OpRet, ir.OpJmp, ir.OpBr:
			default:
				b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet, A: f.RetVar})
			}
		}
	}
	return removed
}

func isPure(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpBin, ir.OpUn, ir.OpMove, ir.OpMakeTuple,
		ir.OpTupleGet, ir.OpField, ir.OpQuery, ir.OpMakeRange:
		return true
	}
	return false
}
