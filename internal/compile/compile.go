// Package compile is the driver that runs the full MiniChapel pipeline:
// parse → semantic analysis → IR generation → (optionally) the --fast
// optimization pipeline. It corresponds to invoking the Chapel compiler
// with "--llvm [--fast] -g" in the paper's experiments.
package compile

import (
	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// Options controls compilation.
type Options struct {
	// Fast enables the optimization pipeline (constant folding, dead-code
	// elimination, bounds-check elision, small-function inlining). Like
	// Chapel's --fast, it also degrades the variable debug fidelity the
	// blame analysis depends on (paper §V): optimized-out temporaries
	// lose their source mapping.
	Fast bool
	// NoChecks elides bounds checks without the rest of --fast
	// (the paper compiles with "--no-checks -g").
	NoChecks bool
}

// Result bundles the compilation products.
type Result struct {
	FileSet *source.FileSet
	AST     *ast.Program
	Info    *sem.Info
	Prog    *ir.Program
	Opts    Options
}

// Source compiles MiniChapel source text.
func Source(name, src string, opts Options) (*Result, error) {
	fset := source.NewFileSet()
	prog, err := parser.ParseFile(fset, name, src)
	if err != nil {
		return nil, err
	}
	info, err := sem.Check(fset, prog)
	if err != nil {
		return nil, err
	}
	irProg, err := irgen.Generate(info, prog)
	if err != nil {
		return nil, err
	}
	res := &Result{FileSet: fset, AST: prog, Info: info, Prog: irProg, Opts: opts}
	if opts.Fast {
		optimize(res)
	}
	return res, nil
}

// MustSource compiles or panics; for tests and embedded benchmarks whose
// sources are compiled-in constants.
func MustSource(name, src string, opts Options) *Result {
	r, err := Source(name, src, opts)
	if err != nil {
		panic(err)
	}
	return r
}
