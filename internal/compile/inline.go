package compile

import (
	"repro/internal/ir"
)

// inlineSmallFuncs performs the --fast inlining pass: calls to small leaf
// procedures are spliced into their callers, and procedures left without
// callers are dropped from the program — reproducing the paper's §V
// observation that --fast yields an IR "with too many functions removed
// or renamed" for reliable variable mapping (inlined callees' variables
// survive as caller-frame locals, but their functions disappear).
const inlineMaxInstrs = 28

func inlineSmallFuncs(p *ir.Program) {
	inlinable := make(map[*ir.Func]bool)
	for _, f := range p.Funcs {
		if isInlinable(f) {
			inlinable[f] = true
		}
	}
	for _, f := range p.Funcs {
		if f.IsRuntime {
			continue
		}
		inlineInto(f, inlinable)
		reassignSlots(f)
	}
	dropDeadFuncs(p)
}

// reassignSlots renumbers the frame after new locals were spliced in.
func reassignSlots(f *ir.Func) {
	slot := 0
	for _, v := range f.Params {
		v.Slot = slot
		slot++
	}
	if f.RetVar != nil {
		f.RetVar.Slot = slot
		slot++
	}
	for _, v := range f.Locals {
		v.Slot = slot
		slot++
	}
}

// isInlinable: small, leaf (no calls/spawns), single-purpose procedures.
func isInlinable(f *ir.Func) bool {
	if f.IsRuntime || f.Outlined || f.Sym == nil {
		return false
	}
	n := 0
	rets := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			n++
			switch in.Op {
			case ir.OpCall, ir.OpSpawn, ir.OpBuiltin:
				return false
			case ir.OpRet:
				rets++
			}
		}
	}
	// Single return point keeps the splice simple.
	return n <= inlineMaxInstrs && rets == 1
}

// inlineInto replaces calls to inlinable callees inside f.
func inlineInto(f *ir.Func, inlinable map[*ir.Func]bool) {
	for changed := true; changed; {
		changed = false
		for bi := 0; bi < len(f.Blocks); bi++ {
			b := f.Blocks[bi]
			for ii, in := range b.Instrs {
				if in.Op != ir.OpCall || !inlinable[in.Callee] || in.Callee == f {
					continue
				}
				spliceCall(f, b, ii, in)
				changed = true
				break
			}
			if changed {
				break
			}
		}
	}
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// spliceCall inlines one call site: block b splits at instruction index
// ci; the callee's blocks are cloned in between with variables remapped.
func spliceCall(f *ir.Func, b *ir.Block, ci int, call *ir.Instr) {
	callee := call.Callee

	// Variable remapping: params bind to arguments (ref params alias the
	// argument var directly; value params copy into a fresh local), the
	// return slot feeds the call's destination, locals become fresh
	// caller locals (keeping their symbols for debug fidelity).
	remap := make(map[*ir.Var]*ir.Var)
	var prologue []*ir.Instr
	for k, p := range callee.Params {
		if k >= len(call.Args) {
			break
		}
		arg := call.Args[k]
		if p.IsRef {
			remap[p] = arg
			continue
		}
		local := &ir.Var{Name: p.Name, Sym: p.Sym, Type: p.Type, Func: f}
		f.Locals = append(f.Locals, local)
		remap[p] = local
		prologue = append(prologue, &ir.Instr{Op: ir.OpMove, Dst: local, A: arg, Pos: call.Pos})
	}
	var retLocal *ir.Var
	if callee.RetVar != nil {
		retLocal = &ir.Var{Name: callee.RetVar.Name, Type: callee.RetVar.Type, Func: f, IsTemp: true}
		f.Locals = append(f.Locals, retLocal)
		remap[callee.RetVar] = retLocal
	}
	for _, l := range callee.Locals {
		nl := &ir.Var{Name: l.Name, Sym: l.Sym, Type: l.Type, Func: f, IsTemp: l.IsTemp, IsRef: l.IsRef}
		f.Locals = append(f.Locals, nl)
		remap[l] = nl
	}
	mapVar := func(v *ir.Var) *ir.Var {
		if v == nil {
			return nil
		}
		if nv, ok := remap[v]; ok {
			return nv
		}
		return v
	}

	// Continuation block: the instructions after the call.
	cont := &ir.Block{Func: f}
	cont.Instrs = append(cont.Instrs, b.Instrs[ci+1:]...)
	b.Instrs = b.Instrs[:ci]
	b.Instrs = append(b.Instrs, prologue...)

	// Clone callee blocks.
	clones := make(map[*ir.Block]*ir.Block)
	var newBlocks []*ir.Block
	for _, cb := range callee.Blocks {
		nb := &ir.Block{Func: f}
		clones[cb] = nb
		newBlocks = append(newBlocks, nb)
	}
	for _, cb := range callee.Blocks {
		nb := clones[cb]
		for _, cin := range cb.Instrs {
			ni := &ir.Instr{
				Op: cin.Op, BinOp: cin.BinOp, FieldIx: cin.FieldIx,
				Method: cin.Method, Callee: cin.Callee, Lit: cin.Lit,
				Rebind: cin.Rebind, Pos: cin.Pos,
			}
			ni.Dst = mapVar(cin.Dst)
			ni.A = mapVar(cin.A)
			ni.B = mapVar(cin.B)
			for _, a := range cin.Args {
				ni.Args = append(ni.Args, mapVar(a))
			}
			if cin.Op == ir.OpRet {
				// Deliver the return value and continue after the call.
				if call.Dst != nil && cin.A != nil {
					nb.Instrs = append(nb.Instrs, &ir.Instr{Op: ir.OpMove, Dst: call.Dst, A: mapVar(cin.A), Pos: cin.Pos})
				}
				nb.Instrs = append(nb.Instrs, &ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{cont}, Pos: cin.Pos})
				continue
			}
			ni.Targets[0] = clones[cin.Targets[0]]
			ni.Targets[1] = clones[cin.Targets[1]]
			nb.Instrs = append(nb.Instrs, ni)
		}
	}

	// Wire: b → callee entry; insert clones + cont after b.
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{clones[callee.Entry()]}, Pos: call.Pos})
	insertAt := indexOfBlock(f, b) + 1
	rest := append([]*ir.Block{}, f.Blocks[insertAt:]...)
	f.Blocks = append(f.Blocks[:insertAt], append(append(newBlocks, cont), rest...)...)
}

func indexOfBlock(f *ir.Func, b *ir.Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	return len(f.Blocks) - 1
}

// dropDeadFuncs removes procedures no remaining call or spawn references —
// the "functions removed by --fast" effect.
func dropDeadFuncs(p *ir.Program) {
	used := make(map[*ir.Func]bool)
	used[p.Main] = true
	used[p.ModuleInit] = true
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			if !used[f] {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Callee != nil && !used[in.Callee] {
						used[in.Callee] = true
						changed = true
					}
					if in.Spawn != nil {
						for _, x := range in.Spawn.Extra {
							if !used[x] {
								used[x] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}
	kept := p.Funcs[:0]
	for _, f := range p.Funcs {
		if used[f] || f.IsRuntime {
			kept = append(kept, f)
		}
	}
	p.Funcs = kept
}
