package compile_test

import (
	"sync"
	"testing"

	"repro/internal/compile"
)

const cacheSrc = `
config const n = 4;
var total: int;
for i in 1..n {
  total = total + i;
}
writeln(total);
`

// TestSourceCachedHitIsIdentical pins the memoization contract: the same
// (name, source, options) returns the identical *Result pointer, so every
// consumer shares one immutable IR.
func TestSourceCachedHitIsIdentical(t *testing.T) {
	compile.ResetCache()
	a, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cache hit returned a different *Result: %p vs %p", a, b)
	}
}

// TestSourceCachedOptionsMiss: differing Options must not share results —
// --fast changes the IR.
func TestSourceCachedOptionsMiss(t *testing.T) {
	compile.ResetCache()
	plain, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain == fast {
		t.Fatal("Options{Fast} shared a cache entry with Options{}")
	}
	noChecks, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{NoChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if noChecks == plain || noChecks == fast {
		t.Fatal("Options{NoChecks} shared a cache entry with a different option set")
	}
}

// TestSourceCachedSourceMiss: same name, different source bytes, must
// recompile (the key hashes the source, not just the name).
func TestSourceCachedSourceMiss(t *testing.T) {
	compile.ResetCache()
	a, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := compile.SourceCached("cache.mchpl", cacheSrc+"\nwriteln(0);\n", compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different source shared a cache entry")
	}
}

// TestSourceCachedErrorsCached: a failing source keeps failing without
// recompiling, and does not poison other keys.
func TestSourceCachedErrorsCached(t *testing.T) {
	compile.ResetCache()
	if _, err := compile.SourceCached("bad.mchpl", "var x = ;", compile.Options{}); err == nil {
		t.Fatal("expected a compile error")
	}
	if _, err := compile.SourceCached("bad.mchpl", "var x = ;", compile.Options{}); err == nil {
		t.Fatal("expected the cached compile error")
	}
	if _, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{}); err != nil {
		t.Fatalf("good source after bad one: %v", err)
	}
}

// TestSourceCachedConcurrent hammers one key from many goroutines (run
// under -race in CI): all callers must observe the same pointer.
func TestSourceCachedConcurrent(t *testing.T) {
	compile.ResetCache()
	const goroutines = 16
	results := make([]*compile.Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := compile.SourceCached("cache.mchpl", cacheSrc, compile.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw a different *Result", g)
		}
	}
}

// TestSourceCachedConcurrentMixedOptions interleaves callers with
// different Options over the same source (run under -race in CI): every
// caller must get the pointer for its own option set, and no two option
// sets may ever alias one entry.
func TestSourceCachedConcurrentMixedOptions(t *testing.T) {
	compile.ResetCache()
	optSets := []compile.Options{
		{},
		{Fast: true},
		{NoChecks: true},
		{Fast: true, NoChecks: true},
	}
	const rounds = 8
	results := make([][]*compile.Result, len(optSets))
	for i := range results {
		results[i] = make([]*compile.Result, rounds)
	}
	var wg sync.WaitGroup
	for i, opts := range optSets {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(i, r int, opts compile.Options) {
				defer wg.Done()
				res, err := compile.SourceCached("cache.mchpl", cacheSrc, opts)
				if err != nil {
					t.Error(err)
					return
				}
				results[i][r] = res
			}(i, r, opts)
		}
	}
	wg.Wait()
	for i := range optSets {
		for r := 1; r < rounds; r++ {
			if results[i][r] != results[i][0] {
				t.Fatalf("option set %d: round %d saw a different *Result", i, r)
			}
		}
		for j := 0; j < i; j++ {
			if results[i][0] == results[j][0] {
				t.Fatalf("option sets %d and %d aliased one cache entry", i, j)
			}
		}
	}
}
