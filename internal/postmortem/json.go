package postmortem

import (
	"encoding/json"
	"io"

	"repro/internal/vm"
)

// profileJSON is the stable on-disk form of a profile (instances and IR
// pointers are runtime-only and excluded).
type profileJSON struct {
	TotalSamples int                  `json:"total_samples"`
	Threshold    uint64               `json:"threshold"`
	DataCentric  []varRowJSON         `json:"data_centric"`
	CodeCentric  []FuncRow            `json:"code_centric"`
	Stats        vm.Stats             `json:"stats"`
	PerLocale    map[int]*profileJSON `json:"per_locale,omitempty"`
}

type varRowJSON struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	Context string  `json:"context"`
	Samples int     `json:"samples"`
	Blame   float64 `json:"blame"`
	IsPath  bool    `json:"is_path,omitempty"`
}

func toJSON(p *Profile) *profileJSON {
	out := &profileJSON{
		TotalSamples: p.TotalSamples,
		Threshold:    p.Threshold,
		CodeCentric:  p.CodeCentric,
		Stats:        p.Stats,
	}
	for _, r := range p.DataCentric {
		out.DataCentric = append(out.DataCentric, varRowJSON{
			Name: r.Name, Type: r.Type, Context: r.Context,
			Samples: r.Samples, Blame: r.Blame, IsPath: r.IsPath,
		})
	}
	if p.PerLocale != nil {
		out.PerLocale = make(map[int]*profileJSON)
		for loc, sub := range p.PerLocale {
			out.PerLocale[loc] = toJSON(sub)
		}
	}
	return out
}

func fromJSON(in *profileJSON) *Profile {
	p := &Profile{
		TotalSamples: in.TotalSamples,
		Threshold:    in.Threshold,
		CodeCentric:  in.CodeCentric,
		Stats:        in.Stats,
	}
	for _, r := range in.DataCentric {
		p.DataCentric = append(p.DataCentric, VarRow{
			Name: r.Name, Type: r.Type, Context: r.Context,
			Samples: r.Samples, Blame: r.Blame, IsPath: r.IsPath,
		})
	}
	if in.PerLocale != nil {
		p.PerLocale = make(map[int]*Profile)
		for loc, sub := range in.PerLocale {
			p.PerLocale[loc] = fromJSON(sub)
		}
	}
	return p
}

// WriteJSON serializes the profile (rows, stats; not instances).
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSON(p))
}

// ReadJSON loads a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var in profileJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	return fromJSON(&in), nil
}
