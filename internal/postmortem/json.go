package postmortem

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/vm"
)

// profileJSON is the stable on-disk form of a profile (instances and IR
// pointers are runtime-only and excluded).
type profileJSON struct {
	TotalSamples int                  `json:"total_samples"`
	Threshold    uint64               `json:"threshold"`
	Dropped      uint64               `json:"dropped,omitempty"`
	DataCentric  []varRowJSON         `json:"data_centric"`
	CodeCentric  []FuncRow            `json:"code_centric"`
	Stats        vm.Stats             `json:"stats"`
	PerLocale    map[int]*profileJSON `json:"per_locale,omitempty"`
}

type varRowJSON struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	Context string  `json:"context"`
	Samples int     `json:"samples"`
	Blame   float64 `json:"blame"`
	IsPath  bool    `json:"is_path,omitempty"`
}

func toJSON(p *Profile) *profileJSON {
	out := &profileJSON{
		TotalSamples: p.TotalSamples,
		Threshold:    p.Threshold,
		Dropped:      p.Dropped,
		CodeCentric:  p.CodeCentric,
		Stats:        p.Stats,
	}
	for _, r := range p.DataCentric {
		out.DataCentric = append(out.DataCentric, varRowJSON{
			Name: r.Name, Type: r.Type, Context: r.Context,
			Samples: r.Samples, Blame: r.Blame, IsPath: r.IsPath,
		})
	}
	if p.PerLocale != nil {
		out.PerLocale = make(map[int]*profileJSON)
		for loc, sub := range p.PerLocale {
			out.PerLocale[loc] = toJSON(sub)
		}
	}
	return out
}

func fromJSON(in *profileJSON) *Profile {
	p := &Profile{
		TotalSamples: in.TotalSamples,
		Threshold:    in.Threshold,
		Dropped:      in.Dropped,
		CodeCentric:  in.CodeCentric,
		Stats:        in.Stats,
	}
	for _, r := range in.DataCentric {
		p.DataCentric = append(p.DataCentric, VarRow{
			Name: r.Name, Type: r.Type, Context: r.Context,
			Samples: r.Samples, Blame: r.Blame, IsPath: r.IsPath,
		})
	}
	if in.PerLocale != nil {
		p.PerLocale = make(map[int]*Profile)
		for loc, sub := range in.PerLocale {
			p.PerLocale[loc] = fromJSON(sub)
		}
	}
	return p
}

// validate rejects profiles whose numbers cannot have come from a real
// run: negative counts, non-finite blame. Unvalidated input would
// otherwise flow into the views and averages unchecked.
func (in *profileJSON) validate(path string) error {
	if in.TotalSamples < 0 {
		return fmt.Errorf("%s: negative total_samples (%d)", path, in.TotalSamples)
	}
	for i, r := range in.DataCentric {
		if r.Samples < 0 {
			return fmt.Errorf("%s: data_centric[%d] (%s): negative samples (%d)", path, i, r.Name, r.Samples)
		}
		if math.IsNaN(r.Blame) || math.IsInf(r.Blame, 0) {
			return fmt.Errorf("%s: data_centric[%d] (%s): non-finite blame", path, i, r.Name)
		}
	}
	for i, r := range in.CodeCentric {
		if r.Flat < 0 || r.Cum < 0 {
			return fmt.Errorf("%s: code_centric[%d] (%s): negative sample counts", path, i, r.Name)
		}
	}
	for loc, sub := range in.PerLocale {
		if loc < 0 {
			return fmt.Errorf("%s: negative locale key (%d)", path, loc)
		}
		if sub == nil {
			return fmt.Errorf("%s: per_locale[%d] is null", path, loc)
		}
		if err := sub.validate(fmt.Sprintf("%s.per_locale[%d]", path, loc)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON serializes the profile (rows, stats; not instances).
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSON(p))
}

// ReadJSON loads a profile written by WriteJSON. Malformed input returns
// a wrapped error carrying the byte offset where decoding stopped;
// structurally valid JSON with impossible values (negative counts,
// non-finite blame) is rejected by validation.
func ReadJSON(r io.Reader) (*Profile, error) {
	dec := json.NewDecoder(r)
	var in profileJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("profile json: decode failed at byte %d: %w", dec.InputOffset(), err)
	}
	if err := in.validate("profile"); err != nil {
		return nil, fmt.Errorf("profile json: %w", err)
	}
	return fromJSON(&in), nil
}
