// Package postmortem implements step 3 of the paper's pipeline: it takes
// the raw context-sensitive samples (address vectors), converts addresses
// to functions/files/lines via the program's debug information, glues
// worker-thread post-spawn stacks to their recorded pre-spawn stacks via
// spawn tags, trims runtime-library frames, builds per-sample
// "instances", and runs the blame attribution (transfer-function
// bubbling) to produce the final data-centric profile. It also derives
// the classic code-centric profile from the same samples (the paper
// notes this comes "with almost no overhead").
package postmortem

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sampler"
	"repro/internal/sem"
	"repro/internal/vm"
)

// Instance is the paper's per-sample abstraction: the complete, cleaned
// call path of one sample (module/file/line context per frame).
type Instance struct {
	// Frames is the glued call path, innermost first, runtime frames
	// trimmed.
	Frames []core.Frame
	// RuntimeFunc is set for samples that landed in runtime code.
	RuntimeFunc string
	// Tags lists the spawn tags glued through (outermost last).
	Tags []uint64
	// Locale is the node the sample came from.
	Locale int
}

// Location renders one frame as file:line for reports.
func (p *Processor) Location(fr core.Frame) string {
	if fr.Instr == nil || !fr.Instr.Pos.IsValid() {
		return fr.Fn.Name
	}
	return fmt.Sprintf("%s:%s", fr.Fn.Name, p.prog.FileSet.Position(fr.Instr.Pos))
}

// VarRow is one row of the flat data-centric view (paper Tables II/IV/VI).
type VarRow struct {
	// Name is the variable name or access path.
	Name string
	// Type is the display type ("[DistSpace] v3", "8*real", ...).
	Type string
	// Context is the defining procedure ("main" for globals).
	Context string
	// Samples is the number of samples blamed.
	Samples int
	// Blame is Samples / TotalSamples (§III BlamePercentage).
	Blame float64
	// IsPath marks field/element access-path rows.
	IsPath bool
	// Sym is the underlying symbol (nil for paths).
	Sym *sem.Symbol
}

// FuncRow is one row of the code-centric view (paper Fig. 4).
type FuncRow struct {
	Name    string
	Flat    int     // samples with this function innermost
	FlatPct float64 // share of total
	Cum     int     // samples with this function anywhere on the path
	CumPct  float64
}

// Profile is the final result of post-mortem processing.
type Profile struct {
	TotalSamples int
	DataCentric  []VarRow
	CodeCentric  []FuncRow
	Instances    []Instance
	Threshold    uint64
	Stats        vm.Stats
	// Dropped counts profile records lost upstream (sampler ring-buffer
	// overrun, truncated/corrupt dataset records): the profile below is a
	// partial view and the renderers say so.
	Dropped uint64
	// PerLocale holds per-node profiles for multi-locale runs (step 3 is
	// "embarrassingly parallel" per node; step 4 aggregates).
	PerLocale map[int]*Profile
}

// Row returns the data-centric row for a variable name, if present.
func (p *Profile) Row(name string) (VarRow, bool) {
	for _, r := range p.DataCentric {
		if r.Name == name {
			return r, true
		}
	}
	return VarRow{}, false
}

// Processor converts raw samples into a Profile.
type Processor struct {
	prog     *ir.Program
	analysis *core.Analysis
	spawns   map[uint64]sampler.SpawnRecord
}

// New creates a processor.
func New(prog *ir.Program, analysis *core.Analysis, spawns map[uint64]sampler.SpawnRecord) *Processor {
	return &Processor{prog: prog, analysis: analysis, spawns: spawns}
}

// ProcessDataset runs attribution over a dataset read back from disk,
// carrying the dataset's drop count (truncated or corrupt records) into
// the profile so the rendered views disclose the partial coverage.
func (p *Processor) ProcessDataset(ds *sampler.Dataset, stats vm.Stats) *Profile {
	prof := p.Process(ds.Samples, ds.Threshold, stats)
	prof.Dropped += ds.Dropped
	return prof
}

// Glue builds the full, trimmed call path of one raw sample: address →
// instruction resolution, pre/post-spawn gluing via tags, runtime-frame
// trimming.
func (p *Processor) Glue(s sampler.RawSample) Instance {
	inst := Instance{RuntimeFunc: s.RuntimeFunc, Locale: s.Locale}
	appendAddrs := func(addrs []uint64) {
		for _, a := range addrs {
			in := p.prog.InstrAt(a)
			if in == nil || in.Block == nil {
				continue
			}
			fn := in.Block.Func
			if fn.IsRuntime {
				continue // trim runtime frames
			}
			// Trim redundant adjacent duplicates (the paper trims
			// redundant stack info when gluing).
			if n := len(inst.Frames); n > 0 && inst.Frames[n-1].Instr == in {
				continue
			}
			inst.Frames = append(inst.Frames, core.Frame{Fn: fn, Instr: in})
		}
	}
	appendAddrs(s.Stack)
	// Glue pre-spawn traces by walking the tag chain.
	tag := s.Tag
	for tag != 0 {
		rec, ok := p.spawns[tag]
		if !ok {
			break
		}
		inst.Tags = append(inst.Tags, tag)
		appendAddrs(rec.Stack)
		tag = rec.ParentTag
	}
	return inst
}

// Process runs attribution and aggregation over all samples.
func (p *Processor) Process(samples []sampler.RawSample, threshold uint64, stats vm.Stats) *Profile {
	prof := &Profile{Threshold: threshold, Stats: stats}
	varRows := make(map[*sem.Symbol]*VarRow)
	pathRows := make(map[string]*VarRow)
	flat := make(map[string]int)
	cum := make(map[string]int)

	for _, s := range samples {
		inst := p.Glue(s)
		prof.Instances = append(prof.Instances, inst)
		prof.TotalSamples++

		// Code-centric attribution (untrimmed view keeps runtime names).
		innermost := s.RuntimeFunc
		if innermost == "" {
			if in := p.prog.InstrAt(s.Addr); in != nil {
				innermost = in.Block.Func.Name
			}
		}
		if innermost != "" {
			flat[innermost]++
		}
		seenFn := map[string]bool{}
		if s.RuntimeFunc != "" {
			seenFn[s.RuntimeFunc] = true
		}
		for _, fr := range inst.Frames {
			seenFn[fr.Fn.Name] = true
		}
		for name := range seenFn {
			cum[name]++
		}

		// Data-centric attribution.
		for _, b := range p.analysis.AttributeSample(inst.Frames) {
			if b.Path != "" {
				r, ok := pathRows[b.Path]
				if !ok {
					ctx := "main"
					if b.Root.Sym != nil {
						ctx = b.Root.Sym.Context()
					}
					ty := ""
					if b.Root.Type != nil {
						// The path's leaf type is not tracked statically;
						// report the root element type region.
						ty = b.Root.Type.String()
					}
					r = &VarRow{Name: b.Path, Type: ty, Context: ctx, IsPath: true}
					pathRows[b.Path] = r
				}
				r.Samples++
				continue
			}
			r, ok := varRows[b.Sym]
			if !ok {
				ty := ""
				if b.Sym.Type != nil {
					ty = b.Sym.Type.String()
				}
				r = &VarRow{Name: b.Sym.Name, Type: ty, Context: b.Sym.Context(), Sym: b.Sym}
				varRows[b.Sym] = r
			}
			r.Samples++
		}
	}

	total := prof.TotalSamples
	if total == 0 {
		total = 1
	}
	for _, r := range varRows {
		r.Blame = float64(r.Samples) / float64(total)
		prof.DataCentric = append(prof.DataCentric, *r)
	}
	for _, r := range pathRows {
		r.Blame = float64(r.Samples) / float64(total)
		prof.DataCentric = append(prof.DataCentric, *r)
	}
	sort.Slice(prof.DataCentric, func(i, j int) bool {
		a, b := prof.DataCentric[i], prof.DataCentric[j]
		if a.Samples != b.Samples {
			return a.Samples > b.Samples
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		// Same-named variables in different scopes (loop indices, ...)
		// must order deterministically too: rows come off map iteration,
		// so any tie left to the unstable sort varies across processes —
		// which the backend differential harness flags as a divergence.
		if a.Context != b.Context {
			return a.Context < b.Context
		}
		return !a.IsPath && b.IsPath
	})

	for name, n := range cum {
		prof.CodeCentric = append(prof.CodeCentric, FuncRow{
			Name: name,
			Flat: flat[name], FlatPct: float64(flat[name]) / float64(total),
			Cum: n, CumPct: float64(n) / float64(total),
		})
	}
	sort.Slice(prof.CodeCentric, func(i, j int) bool {
		a, b := prof.CodeCentric[i], prof.CodeCentric[j]
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		return a.Name < b.Name
	})
	return prof
}

// ProcessPerLocale splits samples by locale, processes each node
// independently (embarrassingly parallel in the paper), then aggregates —
// the multi-locale extension of §VI.
func (p *Processor) ProcessPerLocale(samples []sampler.RawSample, threshold uint64, stats vm.Stats) *Profile {
	byLoc := make(map[int][]sampler.RawSample)
	for _, s := range samples {
		byLoc[s.Locale] = append(byLoc[s.Locale], s)
	}
	agg := p.Process(samples, threshold, stats)
	agg.PerLocale = make(map[int]*Profile)
	for loc, ss := range byLoc {
		agg.PerLocale[loc] = p.Process(ss, threshold, stats)
	}
	return agg
}
