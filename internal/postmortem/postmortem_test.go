package postmortem_test

import (
	"bytes"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/postmortem"
	"repro/internal/sampler"
	"repro/internal/vm"
)

// buildRun compiles src and runs it under a sampler, returning everything
// post-mortem processing needs.
func buildRun(t *testing.T, src string, threshold uint64) (*compile.Result, *sampler.Sampler, vm.Stats) {
	t.Helper()
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sampler.New(res.Prog, threshold)
	cfg := vm.DefaultConfig()
	cfg.Listener = s
	cfg.MaxCycles = 200_000_000
	stats, err := vm.New(res.Prog, cfg).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, s, stats
}

const gluSrc = `
config const n = 120;
var D: domain(1) = {0..#n};
var A: [D] real;
proc inner(i: int): real {
  return i * 2.0 + 1.0;
}
proc outer() {
  forall i in D { A[i] = inner(i); }
}
proc main() {
  for rep in 1..15 { outer(); }
}
`

func TestGlueProducesFullPaths(t *testing.T) {
	res, s, _ := buildRun(t, gluSrc, 503)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	proc := postmortem.New(res.Prog, an, s.Spawns)
	sawDeep := false
	for _, smp := range s.Samples {
		inst := proc.Glue(smp)
		if smp.Tag == 0 {
			continue
		}
		// Worker samples: glued path must end in main (through outer).
		names := map[string]bool{}
		for _, fr := range inst.Frames {
			names[fr.Fn.Name] = true
		}
		if names["inner"] && names["outer"] && names["main"] {
			sawDeep = true
		}
		if len(inst.Frames) > 0 && !names["main"] {
			t.Fatalf("worker sample not glued to main: %v", names)
		}
	}
	if !sawDeep {
		t.Error("no fully glued inner→outer→main path observed")
	}
}

func TestGlueTrimsRuntimeFrames(t *testing.T) {
	res, s, _ := buildRun(t, gluSrc, 503)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	proc := postmortem.New(res.Prog, an, s.Spawns)
	for _, smp := range s.Samples {
		inst := proc.Glue(smp)
		for _, fr := range inst.Frames {
			if fr.Fn.IsRuntime {
				t.Fatalf("runtime frame %s not trimmed", fr.Fn.Name)
			}
		}
	}
}

func TestSpinSamplesResolveToSpawnSite(t *testing.T) {
	res, s, stats := buildRun(t, gluSrc, 503)
	_ = stats
	an := core.Analyze(res.Prog, core.DefaultOptions())
	proc := postmortem.New(res.Prog, an, s.Spawns)
	resolved := 0
	spin := 0
	for _, smp := range s.Samples {
		if smp.RuntimeFunc == "" {
			continue
		}
		spin++
		inst := proc.Glue(smp)
		if len(inst.Frames) > 0 {
			resolved++
		}
	}
	if spin == 0 {
		t.Skip("no runtime samples in this run")
	}
	if resolved < spin/2 {
		t.Errorf("only %d/%d runtime samples resolved to user code", resolved, spin)
	}
}

func TestProcessTotals(t *testing.T) {
	res, s, stats := buildRun(t, gluSrc, 503)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	prof := postmortem.New(res.Prog, an, s.Spawns).Process(s.Samples, 503, stats)
	if prof.TotalSamples != len(s.Samples) {
		t.Errorf("TotalSamples %d != %d", prof.TotalSamples, len(s.Samples))
	}
	// Blame fractions are Samples/Total.
	for _, r := range prof.DataCentric {
		want := float64(r.Samples) / float64(prof.TotalSamples)
		if r.Blame != want {
			t.Errorf("%s blame %.4f != %.4f", r.Name, r.Blame, want)
		}
	}
	// Code-centric flat sums to total.
	flatSum := 0
	for _, r := range prof.CodeCentric {
		flatSum += r.Flat
	}
	if flatSum != prof.TotalSamples {
		t.Errorf("flat sum %d != total %d", flatSum, prof.TotalSamples)
	}
}

func TestRowsSortedByBlame(t *testing.T) {
	res, s, stats := buildRun(t, gluSrc, 503)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	prof := postmortem.New(res.Prog, an, s.Spawns).Process(s.Samples, 503, stats)
	for i := 1; i < len(prof.DataCentric); i++ {
		if prof.DataCentric[i].Samples > prof.DataCentric[i-1].Samples {
			t.Fatal("data-centric rows not sorted")
		}
	}
	for i := 1; i < len(prof.CodeCentric); i++ {
		if prof.CodeCentric[i].Flat > prof.CodeCentric[i-1].Flat {
			t.Fatal("code-centric rows not sorted")
		}
	}
}

func TestInstanceTagsRecorded(t *testing.T) {
	res, s, stats := buildRun(t, gluSrc, 503)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	prof := postmortem.New(res.Prog, an, s.Spawns).Process(s.Samples, 503, stats)
	tagged := 0
	for _, inst := range prof.Instances {
		if len(inst.Tags) > 0 {
			tagged++
		}
	}
	if tagged == 0 {
		t.Error("no instances carry spawn tags")
	}
}

func TestRowLookup(t *testing.T) {
	res, s, stats := buildRun(t, gluSrc, 503)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	prof := postmortem.New(res.Prog, an, s.Spawns).Process(s.Samples, 503, stats)
	if _, ok := prof.Row("A"); !ok {
		t.Error("Row(A) not found")
	}
	if _, ok := prof.Row("no_such_var"); ok {
		t.Error("Row should miss unknown names")
	}
}

func TestEmptyProcess(t *testing.T) {
	res, _, stats := buildRun(t, gluSrc, 1<<40)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	prof := postmortem.New(res.Prog, an, nil).Process(nil, 1<<40, stats)
	if prof.TotalSamples != 0 || len(prof.DataCentric) != 0 {
		t.Errorf("empty profile: %+v", prof)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res, s, stats := buildRun(t, gluSrc, 503)
	an := core.Analyze(res.Prog, core.DefaultOptions())
	prof := postmortem.New(res.Prog, an, s.Spawns).Process(s.Samples, 503, stats)

	var buf bytes.Buffer
	if err := prof.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := postmortem.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalSamples != prof.TotalSamples || back.Threshold != prof.Threshold {
		t.Error("header fields lost")
	}
	if len(back.DataCentric) != len(prof.DataCentric) {
		t.Fatalf("row count: %d vs %d", len(back.DataCentric), len(prof.DataCentric))
	}
	for i := range prof.DataCentric {
		a, b := prof.DataCentric[i], back.DataCentric[i]
		if a.Name != b.Name || a.Samples != b.Samples || a.Blame != b.Blame ||
			a.Type != b.Type || a.Context != b.Context || a.IsPath != b.IsPath {
			t.Errorf("row %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(back.CodeCentric) != len(prof.CodeCentric) {
		t.Error("code-centric rows lost")
	}
	if back.Stats.TotalCycles != prof.Stats.TotalCycles {
		t.Error("stats lost")
	}
}

func TestCommBlameAggregation(t *testing.T) {
	v := &ir.Var{Name: "Grid"}
	recs := []sampler.CommRecord{
		{Bytes: 100, From: 0, To: 1, Var: v},
		{Bytes: 200, From: 0, To: 2, Var: v},
		{Bytes: 300, From: 1, To: 0, Var: nil},
	}
	p := postmortem.CommBlame(recs)
	if p.TotalBytes != 600 || p.TotalMsgs != 3 {
		t.Errorf("totals: %+v", p)
	}
	if p.Rows[0].Name != "Grid" && p.Rows[0].Name != "(anonymous)" {
		t.Errorf("rows: %+v", p.Rows)
	}
	var grid postmortem.CommRow
	for _, r := range p.Rows {
		if r.Name == "Grid" {
			grid = r
		}
	}
	if grid.Bytes != 300 || grid.Messages != 2 || grid.Share != 0.5 {
		t.Errorf("Grid row: %+v", grid)
	}
	if p.Matrix[0][1] != 100 || p.Matrix[0][2] != 200 || p.Matrix[1][0] != 300 {
		t.Errorf("matrix: %+v", p.Matrix)
	}
}
