package postmortem

import (
	"sort"

	"repro/internal/comm"
	"repro/internal/sampler"
)

// CommRow attributes communication volume to one variable — the paper's
// §VI extension: "blame communication cost back to key data structures".
type CommRow struct {
	// Name is the owning variable (or "(anonymous)" for unnamed blocks).
	Name string
	// Context is the owning variable's defining procedure.
	Context  string
	Messages int
	Bytes    int64
	// Share is this variable's fraction of all communicated bytes.
	Share float64
	// Pairs counts this variable's messages per (home, accessor) locale
	// pair — the per-variable slice of the locale matrix.
	Pairs map[comm.Pair]int
}

// CommProfile aggregates inter-locale traffic.
type CommProfile struct {
	Rows       []CommRow
	TotalBytes int64
	TotalMsgs  int
	// Matrix[from][to] is the byte volume per locale pair.
	Matrix map[int]map[int]int64
	// Agg carries the modeled aggregation runtime's statistics when the
	// run executed with communication aggregation enabled (nil otherwise).
	Agg *comm.Stats
	// Owner-computes scheduling counters (from vm.Stats): chunks placed
	// on their owning locale, chunks launched remotely, and element
	// accesses at statically owner-computes sites that still went remote
	// (0 under owner-aligned scheduling).
	OwnerChunks     uint64
	RemoteSpawns    uint64
	OwnerSiteRemote uint64
	Scheduled       bool // true when the run carried scheduling counters
}

// CommBlame aggregates the monitor's raw communication records into a
// per-variable communication profile.
func CommBlame(comms []sampler.CommRecord) *CommProfile {
	p := &CommProfile{Matrix: make(map[int]map[int]int64)}
	rows := make(map[string]*CommRow)
	for _, c := range comms {
		p.TotalBytes += c.Bytes
		p.TotalMsgs++
		if p.Matrix[c.From] == nil {
			p.Matrix[c.From] = make(map[int]int64)
		}
		p.Matrix[c.From][c.To] += c.Bytes

		name, ctx := "(anonymous)", "-"
		if c.Var != nil {
			name = c.Var.Name
			if c.Var.Sym != nil {
				ctx = c.Var.Sym.Context()
			}
		}
		r, ok := rows[name]
		if !ok {
			r = &CommRow{Name: name, Context: ctx, Pairs: make(map[comm.Pair]int)}
			rows[name] = r
		}
		r.Messages++
		r.Bytes += c.Bytes
		r.Pairs[comm.Pair{From: c.From, To: c.To}]++
	}
	total := p.TotalBytes
	if total == 0 {
		total = 1
	}
	for _, r := range rows {
		r.Share = float64(r.Bytes) / float64(total)
		p.Rows = append(p.Rows, *r)
	}
	sort.Slice(p.Rows, func(i, j int) bool {
		if p.Rows[i].Bytes != p.Rows[j].Bytes {
			return p.Rows[i].Bytes > p.Rows[j].Bytes
		}
		return p.Rows[i].Name < p.Rows[j].Name
	})
	return p
}
