package postmortem_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/postmortem"
)

// Corrupt profile JSON must come back as a wrapped error naming the byte
// offset (truncation, syntax damage) or the offending field (impossible
// values) — never a panic, never a silently-zero profile.
func TestReadJSONCorruptInputs(t *testing.T) {
	valid := `{"total_samples": 10, "threshold": 101,
		"data_centric": [{"name":"A","type":"[domain(1)] real","context":"main","samples":7,"blame":0.7}],
		"code_centric": [{"Name":"main","Flat":10,"FlatPct":100,"Cum":10,"CumPct":100}],
		"stats": {}}`
	if _, err := postmortem.ReadJSON(strings.NewReader(valid)); err != nil {
		t.Fatalf("fixture rejected: %v", err)
	}

	cases := []struct {
		name, in, want string
	}{
		{"truncated", valid[:60], "decode failed at byte"},
		{"empty", "", "decode failed"},
		{"nan blame", strings.Replace(valid, `"blame":0.7`, `"blame":NaN`, 1), "decode failed at byte"},
		{"inf blame", strings.Replace(valid, `"blame":0.7`, `"blame":1e999`, 1), "decode failed at byte"},
		{"negative samples", strings.Replace(valid, `"samples":7`, `"samples":-7`, 1), "negative samples"},
		{"negative totals", strings.Replace(valid, `"total_samples": 10`, `"total_samples": -10`, 1), "negative total_samples"},
		{"negative flat", strings.Replace(valid, `"Flat":10`, `"Flat":-10`, 1), "negative sample counts"},
		{"negative locale", `{"total_samples":1,"per_locale":{"-3":{"total_samples":0}}}`, "negative locale key"},
		{"null locale", `{"total_samples":1,"per_locale":{"0":null}}`, "is null"},
		{"nested bad", `{"total_samples":1,"per_locale":{"0":{"total_samples":-1}}}`, "per_locale[0]"},
	}
	for _, c := range cases {
		_, err := postmortem.ReadJSON(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestJSONRoundTripKeepsDropped(t *testing.T) {
	p := &postmortem.Profile{TotalSamples: 5, Dropped: 3}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := postmortem.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", got.Dropped)
	}
}
