package postmortem

import (
	"math"
	"sort"
)

// DiffRow is one variable's blame delta between two profiles — the
// cross-run comparison of "Automated Programmatic Performance Analysis"
// (PAPERS.md): which data structures gained or lost blame share between
// run A and run B.
type DiffRow struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Context string `json:"context"`
	// BlameA/BlameB are the blame shares in each run (0 when absent).
	BlameA float64 `json:"blame_a"`
	BlameB float64 `json:"blame_b"`
	// Delta is BlameB - BlameA.
	Delta    float64 `json:"delta"`
	SamplesA int     `json:"samples_a"`
	SamplesB int     `json:"samples_b"`
	// Status is "both", "only-a" or "only-b".
	Status string `json:"status"`
}

// Diff matches the data-centric rows of two profiles by name and
// returns the per-variable blame deltas, largest absolute delta first
// (name as the deterministic tiebreak). Rows present in only one run
// keep their full blame as the delta magnitude — a variable that
// disappeared is exactly as interesting as one that doubled.
func Diff(a, b *Profile) []DiffRow {
	index := make(map[string]*DiffRow)
	order := make([]string, 0, len(a.DataCentric)+len(b.DataCentric))
	for _, r := range a.DataCentric {
		if _, ok := index[r.Name]; ok {
			continue
		}
		index[r.Name] = &DiffRow{
			Name: r.Name, Type: r.Type, Context: r.Context,
			BlameA: r.Blame, SamplesA: r.Samples, Status: "only-a",
		}
		order = append(order, r.Name)
	}
	for _, r := range b.DataCentric {
		d, ok := index[r.Name]
		if !ok {
			index[r.Name] = &DiffRow{
				Name: r.Name, Type: r.Type, Context: r.Context,
				BlameB: r.Blame, SamplesB: r.Samples, Status: "only-b",
			}
			order = append(order, r.Name)
			continue
		}
		d.BlameB = r.Blame
		d.SamplesB = r.Samples
		d.Status = "both"
	}
	out := make([]DiffRow, 0, len(order))
	for _, name := range order {
		d := index[name]
		d.Delta = d.BlameB - d.BlameA
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Delta), math.Abs(out[j].Delta)
		if ai != aj {
			return ai > aj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
