package lexer_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// seedCorpus returns the .mchpl example corpus plus a few adversarial
// inputs that have historically tripped hand-written scanners.
func seedCorpus(t testing.TB) []string {
	var seeds []string
	matches, err := filepath.Glob("../../examples/*/*.mchpl")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, string(b))
	}
	if len(seeds) == 0 {
		t.Fatal("no .mchpl examples found for the seed corpus")
	}
	seeds = append(seeds,
		"",
		"\"unterminated",
		"\"trailing backslash\\",
		"1.2e",
		"0..#10 by 2",
		"/* unterminated block comment",
		"// line comment with no newline",
		"\x00\xff binary junk \x80",
		"a..b..c...d",
	)
	return seeds
}

// scanBounded drives the lexer by hand and fails the test if EOF does
// not arrive within a budget proportional to the input size. Every Next
// call must consume at least one byte (ILLEGAL bytes included), so
// len(src)+1 calls always suffice for a terminating scanner.
func scanBounded(t *testing.T, src string) []lexer.Token {
	file := source.NewFileSet().Add("fuzz.mchpl", src)
	l := lexer.New(file)
	budget := len(src) + 2
	var toks []lexer.Token
	for i := 0; i < budget; i++ {
		tok := l.Next()
		if tok.Kind == token.EOF {
			return toks
		}
		toks = append(toks, tok)
	}
	t.Fatalf("lexer did not reach EOF within %d tokens on a %d-byte input", budget, len(src))
	return nil
}

// FuzzLex asserts the scanner never panics and always terminates: every
// input, however malformed, must lex to a finite token stream ending in
// EOF, with every token carrying a valid position inside the file.
func FuzzLex(f *testing.F) {
	for _, s := range seedCorpus(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, tok := range scanBounded(t, src) {
			if tok.Kind == token.EOF {
				t.Fatal("EOF token before end of stream")
			}
			if !tok.Pos.IsValid() {
				t.Fatalf("token %v carries an invalid position", tok)
			}
		}
	})
}

// TestLexCorpus runs the FuzzLex property over the seed corpus directly,
// so plain `go test` exercises it without -fuzz.
func TestLexCorpus(t *testing.T) {
	for i, src := range seedCorpus(t) {
		toks := scanBounded(t, src)
		for _, tok := range toks {
			if !tok.Pos.IsValid() {
				t.Fatalf("seed %d: token %v carries an invalid position", i, tok)
			}
		}
	}
}

// TestLexLongRuns pins termination on degenerate long runs that stress
// the scanner's inner loops.
func TestLexLongRuns(t *testing.T) {
	for _, src := range []string{
		strings.Repeat("=", 100000),
		strings.Repeat("\"a\" ", 50000),
		strings.Repeat("1 ", 100000),
		strings.Repeat("..", 50000),
	} {
		scanBounded(t, src)
	}
}
