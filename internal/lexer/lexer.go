// Package lexer implements the MiniChapel scanner.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/source"
	"repro/internal/token"
)

// Token is a scanned token with its position and literal text.
type Token struct {
	Kind token.Kind
	Lit  string
	Pos  source.Pos
}

func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Error is a lexical error with a position.
type Error struct {
	Pos source.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("lex error at line %d: %s", e.Pos.Line, e.Msg) }

// Lexer scans one file.
type Lexer struct {
	file *source.File
	src  string
	off  int

	errs []*Error
}

// New returns a Lexer over f.
func New(f *source.File) *Lexer {
	return &Lexer{file: f, src: f.Src}
}

// Errors returns the lexical errors found so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(off int, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: l.file.PosFor(off), Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(k int) byte {
	if l.off+k < len(l.src) {
		return l.src[l.off+k]
	}
	return 0
}

// skipSpace advances past whitespace and comments.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.off++
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.off
			l.off += 2
			depth := 1
			for l.off < len(l.src) && depth > 0 {
				if l.src[l.off] == '/' && l.peekAt(1) == '*' {
					depth++
					l.off += 2
				} else if l.src[l.off] == '*' && l.peekAt(1) == '/' {
					depth--
					l.off += 2
				} else {
					l.off++
				}
			}
			if depth > 0 {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next scans and returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpace()
	start := l.off
	pos := l.file.PosFor(start)
	if l.off >= len(l.src) {
		return Token{Kind: token.EOF, Pos: pos}
	}
	c := l.src[l.off]

	switch {
	case isLetter(c):
		for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		lit := l.src[start:l.off]
		return Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}

	case isDigit(c):
		return l.scanNumber(pos)

	case c == '"':
		return l.scanString(pos)
	}

	l.off++
	two := func(k token.Kind) Token { l.off++; return Token{Kind: k, Lit: l.src[start:l.off], Pos: pos} }

	switch c {
	case '+':
		if l.peek() == '=' {
			return two(token.PLUS_ASSIGN)
		}
		return Token{Kind: token.PLUS, Lit: "+", Pos: pos}
	case '-':
		if l.peek() == '=' {
			return two(token.MINUS_ASSIGN)
		}
		return Token{Kind: token.MINUS, Lit: "-", Pos: pos}
	case '*':
		if l.peek() == '*' {
			return two(token.POW)
		}
		if l.peek() == '=' {
			return two(token.STAR_ASSIGN)
		}
		return Token{Kind: token.STAR, Lit: "*", Pos: pos}
	case '/':
		if l.peek() == '=' {
			return two(token.SLASH_ASSIGN)
		}
		return Token{Kind: token.SLASH, Lit: "/", Pos: pos}
	case '%':
		return Token{Kind: token.PERCENT, Lit: "%", Pos: pos}
	case '=':
		if l.peek() == '=' {
			return two(token.EQ)
		}
		if l.peek() == '>' {
			return two(token.ARROW)
		}
		return Token{Kind: token.ASSIGN, Lit: "=", Pos: pos}
	case '!':
		if l.peek() == '=' {
			return two(token.NEQ)
		}
		return Token{Kind: token.NOT, Lit: "!", Pos: pos}
	case '<':
		if l.peek() == '=' && l.peekAt(1) == '>' {
			l.off += 2
			return Token{Kind: token.SWAP, Lit: "<=>", Pos: pos}
		}
		if l.peek() == '=' {
			return two(token.LE)
		}
		return Token{Kind: token.LT, Lit: "<", Pos: pos}
	case '>':
		if l.peek() == '=' {
			return two(token.GE)
		}
		return Token{Kind: token.GT, Lit: ">", Pos: pos}
	case '&':
		if l.peek() == '&' {
			return two(token.AND)
		}
	case '|':
		if l.peek() == '|' {
			return two(token.OR)
		}
	case '(':
		return Token{Kind: token.LPAREN, Lit: "(", Pos: pos}
	case ')':
		return Token{Kind: token.RPAREN, Lit: ")", Pos: pos}
	case '[':
		return Token{Kind: token.LBRACK, Lit: "[", Pos: pos}
	case ']':
		return Token{Kind: token.RBRACK, Lit: "]", Pos: pos}
	case '{':
		return Token{Kind: token.LBRACE, Lit: "{", Pos: pos}
	case '}':
		return Token{Kind: token.RBRACE, Lit: "}", Pos: pos}
	case ',':
		return Token{Kind: token.COMMA, Lit: ",", Pos: pos}
	case ';':
		return Token{Kind: token.SEMI, Lit: ";", Pos: pos}
	case ':':
		return Token{Kind: token.COLON, Lit: ":", Pos: pos}
	case '#':
		return Token{Kind: token.HASH, Lit: "#", Pos: pos}
	case '.':
		if l.peek() == '.' {
			return two(token.DOTDOT)
		}
		return Token{Kind: token.DOT, Lit: ".", Pos: pos}
	}
	l.errorf(start, "illegal character %q", string(c))
	return Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// scanNumber scans an INT or REAL literal.
func (l *Lexer) scanNumber(pos source.Pos) Token {
	start := l.off
	for l.off < len(l.src) && (isDigit(l.src[l.off]) || l.src[l.off] == '_') {
		l.off++
	}
	isReal := false
	// A '.' followed by a digit is a fraction; ".." is a range operator.
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		isReal = true
		l.off++
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		next := l.peekAt(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
			isReal = true
			l.off++
			if l.peek() == '+' || l.peek() == '-' {
				l.off++
			}
			for l.off < len(l.src) && isDigit(l.src[l.off]) {
				l.off++
			}
		}
	}
	lit := strings.ReplaceAll(l.src[start:l.off], "_", "")
	k := token.INT
	if isReal {
		k = token.REAL
	}
	return Token{Kind: k, Lit: lit, Pos: pos}
}

// scanString scans a double-quoted string with simple escapes.
func (l *Lexer) scanString(pos source.Pos) Token {
	start := l.off
	l.off++ // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '"' {
			l.off++
			return Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
		}
		if c == '\n' {
			break
		}
		if c == '\\' {
			l.off++
			switch l.peek() {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				l.errorf(l.off, "unknown escape \\%c", l.peek())
			}
			l.off++
			continue
		}
		b.WriteByte(c)
		l.off++
	}
	l.errorf(start, "unterminated string literal")
	return Token{Kind: token.ILLEGAL, Lit: b.String(), Pos: pos}
}

// ScanAll tokenizes the whole file (excluding EOF).
func ScanAll(f *source.File) ([]Token, []*Error) {
	l := New(f)
	var toks []Token
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, l.Errors()
}
