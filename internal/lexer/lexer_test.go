package lexer

import (
	"testing"

	"repro/internal/source"
	"repro/internal/token"
)

func scan(t *testing.T, src string) []Token {
	t.Helper()
	fs := source.NewFileSet()
	f := fs.Add("t.mchpl", src)
	toks, errs := ScanAll(f)
	if len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs[0])
	}
	return toks
}

func kinds(toks []Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(scan(t, src))
	if len(got) != len(want) {
		t.Fatalf("%q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d = %s, want %s", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / % **",
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT, token.POW)
	expectKinds(t, "= += -= *= /= <=>",
		token.ASSIGN, token.PLUS_ASSIGN, token.MINUS_ASSIGN, token.STAR_ASSIGN, token.SLASH_ASSIGN, token.SWAP)
	expectKinds(t, "== != < <= > >=",
		token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE)
	expectKinds(t, "&& || !", token.AND, token.OR, token.NOT)
	expectKinds(t, "( ) [ ] { } , ; : . .. # =>",
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK, token.LBRACE,
		token.RBRACE, token.COMMA, token.SEMI, token.COLON, token.DOT,
		token.DOTDOT, token.HASH, token.ARROW)
}

func TestKeywordsVsIdents(t *testing.T) {
	toks := scan(t, "var forall foo coforall zip param")
	want := []token.Kind{token.VAR, token.FORALL, token.IDENT, token.COFORALL, token.ZIP, token.PARAM}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[2].Lit != "foo" {
		t.Errorf("ident lit = %q", toks[2].Lit)
	}
}

func TestNumbers(t *testing.T) {
	toks := scan(t, "42 3.14 1e9 2.5e-3 1_000_000 7.")
	if toks[0].Kind != token.INT || toks[0].Lit != "42" {
		t.Errorf("int: %v", toks[0])
	}
	if toks[1].Kind != token.REAL || toks[1].Lit != "3.14" {
		t.Errorf("real: %v", toks[1])
	}
	if toks[2].Kind != token.REAL || toks[2].Lit != "1e9" {
		t.Errorf("exp: %v", toks[2])
	}
	if toks[3].Kind != token.REAL || toks[3].Lit != "2.5e-3" {
		t.Errorf("negexp: %v", toks[3])
	}
	if toks[4].Kind != token.INT || toks[4].Lit != "1000000" {
		t.Errorf("underscores: %v", toks[4])
	}
	// "7." followed by nothing: 7 then DOT (since '.' not followed by digit).
	if toks[5].Kind != token.INT || toks[6].Kind != token.DOT {
		t.Errorf("trailing dot: %v %v", toks[5], toks[6])
	}
}

func TestRangeVsFraction(t *testing.T) {
	// "0..9" must lex as INT DOTDOT INT, not REAL.
	expectKinds(t, "0..9", token.INT, token.DOTDOT, token.INT)
	expectKinds(t, "0..#n", token.INT, token.DOTDOT, token.HASH, token.IDENT)
	expectKinds(t, "1.5..2.5", token.REAL, token.DOTDOT, token.REAL)
}

func TestStrings(t *testing.T) {
	toks := scan(t, `"hello" "a\nb" "q\"q"`)
	if toks[0].Lit != "hello" {
		t.Errorf("lit 0 = %q", toks[0].Lit)
	}
	if toks[1].Lit != "a\nb" {
		t.Errorf("lit 1 = %q", toks[1].Lit)
	}
	if toks[2].Lit != `q"q` {
		t.Errorf("lit 2 = %q", toks[2].Lit)
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\nb", token.IDENT, token.IDENT)
	expectKinds(t, "a /* block */ b", token.IDENT, token.IDENT)
	expectKinds(t, "a /* nested /* inner */ still */ b", token.IDENT, token.IDENT)
}

func TestPositions(t *testing.T) {
	toks := scan(t, "a = 2;\nb = 3;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[4].Pos.Line != 2 || toks[4].Pos.Col != 1 {
		t.Errorf("b at %v", toks[4].Pos)
	}
	if toks[6].Pos.Line != 2 || toks[6].Pos.Col != 5 {
		t.Errorf("3 at %v", toks[6].Pos)
	}
}

func TestUnterminatedString(t *testing.T) {
	fs := source.NewFileSet()
	f := fs.Add("t", `"abc`)
	_, errs := ScanAll(f)
	if len(errs) == 0 {
		t.Fatal("expected error for unterminated string")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	fs := source.NewFileSet()
	f := fs.Add("t", "/* never closed")
	_, errs := ScanAll(f)
	if len(errs) == 0 {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestIllegalChar(t *testing.T) {
	fs := source.NewFileSet()
	f := fs.Add("t", "a @ b")
	toks, errs := ScanAll(f)
	if len(errs) == 0 {
		t.Fatal("expected error for illegal char")
	}
	if len(toks) != 3 || toks[1].Kind != token.ILLEGAL {
		t.Fatalf("tokens: %v", toks)
	}
}

func TestSwapVsLessEqual(t *testing.T) {
	expectKinds(t, "a <=> b", token.IDENT, token.SWAP, token.IDENT)
	expectKinds(t, "a <= b", token.IDENT, token.LE, token.IDENT)
	expectKinds(t, "a < = b", token.IDENT, token.LT, token.ASSIGN, token.IDENT)
}

func TestEOFStable(t *testing.T) {
	fs := source.NewFileSet()
	f := fs.Add("t", "x")
	l := New(f)
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tok)
		}
	}
}
