package sem

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/types"
)

func check(t *testing.T, src string) *Info {
	t.Helper()
	fset := source.NewFileSet()
	prog, err := parser.ParseFile(fset, "t.mchpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(fset, prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	fset := source.NewFileSet()
	prog, perr := parser.ParseFile(fset, "t.mchpl", src)
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	_, err := Check(fset, prog)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

func globalSym(info *Info, name string) *Symbol {
	for _, g := range info.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func TestInferScalarTypes(t *testing.T) {
	info := check(t, `
var a = 1;
var b = 2.5;
var c = true;
var d = "s";
var e: int(32);
`)
	cases := map[string]types.Kind{"a": types.Int, "b": types.Real, "c": types.Bool, "d": types.String, "e": types.Int}
	for name, k := range cases {
		s := globalSym(info, name)
		if s == nil || s.Type == nil || s.Type.Kind() != k {
			t.Errorf("%s: got %v, want kind %v", name, s.Type, k)
		}
	}
	if s := globalSym(info, "e"); s.Type.String() != "int(32)" {
		t.Errorf("e display = %q, want int(32)", s.Type.String())
	}
}

func TestTupleTypeAlias(t *testing.T) {
	info := check(t, `
type v3 = 3*real;
var p: v3;
var q = (1.0, 2.0, 3.0);
proc main() { p = q; }
`)
	p := globalSym(info, "p")
	tt, ok := p.Type.(*types.TupleType)
	if !ok || tt.Count != 3 {
		t.Fatalf("p type = %v", p.Type)
	}
	if tt.String() != "v3" {
		t.Errorf("alias display = %q", tt.String())
	}
}

func TestDomainAndArrayTypes(t *testing.T) {
	info := check(t, `
config const n = 8;
var binSpace: domain(1) = {0..#n};
var space2: domain(2) = {0..#n, 0..#n};
var Pos: [binSpace] real;
var Grid: [space2] int;
proc main() {
  Pos[0] = 1.5;
  Grid[1, 2] = 3;
}
`)
	bs := globalSym(info, "binSpace")
	if dt, ok := bs.Type.(*types.DomainType); !ok || dt.Rank != 1 {
		t.Fatalf("binSpace: %v", bs.Type)
	}
	g := globalSym(info, "Grid")
	if at, ok := g.Type.(*types.ArrayType); !ok || at.Rank != 2 {
		t.Fatalf("Grid: %v", g.Type)
	}
	p := globalSym(info, "Pos")
	if p.Type.String() != "[binSpace] real" {
		t.Errorf("Pos display = %q", p.Type.String())
	}
}

func TestNestedArrayType(t *testing.T) {
	info := check(t, `
config const n = 4;
var DistSpace: domain(1) = {0..#n};
var perBinSpace: domain(1) = {0..#8};
type v3 = 3*real;
var Pos: [DistSpace] [perBinSpace] v3;
proc main() {
  Pos[0][1] = (0.0, 0.0, 0.0);
}
`)
	p := globalSym(info, "Pos")
	want := "[DistSpace] [perBinSpace] v3"
	if p.Type.String() != want {
		t.Errorf("Pos display = %q, want %q", p.Type.String(), want)
	}
}

func TestRefAliasSlice(t *testing.T) {
	info := check(t, `
config const n = 8;
var D: domain(1) = {0..#n};
var inner: domain(1) = {1..6};
var A: [D] real;
ref R = A[inner];
proc main() { R[2] = 1.0; }
`)
	r := globalSym(info, "R")
	if r == nil || !r.IsRefAlias {
		t.Fatal("R should be a ref alias")
	}
	if at, ok := r.Type.(*types.ArrayType); !ok || at.Elem.Kind() != types.Real {
		t.Fatalf("R type: %v", r.Type)
	}
}

func TestProcCallChecks(t *testing.T) {
	check(t, `
proc add(a: int, b: int): int { return a + b; }
proc main() { var x = add(1, 2); }
`)
	checkErr(t, `
proc add(a: int, b: int): int { return a + b; }
proc main() { var x = add(1); }
`, "takes 2 arguments")
	checkErr(t, `
proc f(): int { return 1; }
proc main() { var s: string = f(); }
`, "cannot initialize")
}

func TestRefParamIsExitVariable(t *testing.T) {
	info := check(t, `
proc bump(ref x: real) { x += 1.0; }
proc main() { var v = 0.0; bump(v); }
`)
	var bump *Symbol
	for _, p := range info.Procs {
		if p.Name == "bump" {
			bump = p
		}
	}
	pt := bump.Type.(*types.ProcType)
	if !pt.Params[0].IsRef {
		t.Error("ref param not marked IsRef")
	}
}

func TestArraysPassByRefByDefault(t *testing.T) {
	info := check(t, `
config const n = 4;
var D: domain(1) = {0..#n};
proc fill(A: [D] real) { A[0] = 1.0; }
var G: [D] real;
proc main() { fill(G); }
`)
	var fill *Symbol
	for _, p := range info.Procs {
		if p.Name == "fill" {
			fill = p
		}
	}
	if !fill.Type.(*types.ProcType).Params[0].IsRef {
		t.Error("array param should default to ref intent")
	}
}

func TestRecordFieldsAndMethods(t *testing.T) {
	check(t, `
record atom {
  var x: real;
  var ncount: int;
  proc bump() { ncount += 1; }
}
var a: atom;
proc main() {
  a.x = 2.0;
  a.bump();
  var y = a.x + 1.0;
}
`)
	checkErr(t, `
record atom { var x: real; }
var a: atom;
proc main() { a.y = 1.0; }
`, "no field y")
}

func TestClassNewAndNil(t *testing.T) {
	check(t, `
class Node { var v: int; }
var head: Node;
proc main() {
  head = new Node();
  if head != nil { head.v = 3; }
}
`)
}

func TestTupleIndexingCallSyntax(t *testing.T) {
	info := check(t, `
type v3 = 3*real;
var p: v3;
proc main() {
  p(1) = 2.0;
  var s = p(1) + p(2) + p(3);
}
`)
	found := false
	for _, ci := range info.Calls {
		if ci.TupleIndex {
			found = true
		}
	}
	if !found {
		t.Error("no tuple-index call recorded")
	}
}

func TestZipLoopTypes(t *testing.T) {
	info := check(t, `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] real;
var B: [D] real;
proc main() {
  forall (a, b) in zip(A, B) { a = b * 2.0; }
}
`)
	// Loop var over array must be a writable ref alias.
	var loopVarA *Symbol
	for id, sym := range info.Defs {
		if id.Name == "a" && sym.IsRefAlias {
			loopVarA = sym
		}
	}
	if loopVarA == nil {
		t.Fatal("zip loop var over array should be a ref alias")
	}
	if loopVarA.Type.Kind() != types.Real {
		t.Errorf("loop var type = %v", loopVarA.Type)
	}
}

func TestDomainDestructuring(t *testing.T) {
	check(t, `
config const n = 4;
var D2: domain(2) = {0..#n, 0..#n};
var G: [D2] real;
proc main() {
  forall (i, j) in D2 { G[i, j] = 1.0; }
}
`)
}

func TestParamForRequiresConstBounds(t *testing.T) {
	check(t, `
proc main() {
  var s = 0;
  for param i in 1..4 { s += i; }
}
`)
	checkErr(t, `
proc main() {
  var n = 4;
  for param i in 1..n { }
}
`, "compile-time constants")
}

func TestParamDeclFolding(t *testing.T) {
	info := check(t, `
param k = 2 * 3 + 1;
var t: k*real;
proc main() { }
`)
	s := globalSym(info, "t")
	tt, ok := s.Type.(*types.TupleType)
	if !ok || tt.Count != 7 {
		t.Fatalf("t type = %v, want 7*real", s.Type)
	}
}

func TestConfigConstRegistered(t *testing.T) {
	info := check(t, `
config const CLOMP_numParts = 64;
proc main() { }
`)
	s, ok := info.ConfigConsts["CLOMP_numParts"]
	if !ok || s.ConstVal == nil || s.ConstVal.Int() != 64 {
		t.Fatalf("config const not registered: %+v", s)
	}
}

func TestConstNotAssignable(t *testing.T) {
	checkErr(t, `
const c = 1;
proc main() { c = 2; }
`, "not assignable")
	checkErr(t, `
proc main() {
  for i in 1..4 { i = 2; }
}
`, "not assignable")
}

func TestUndefined(t *testing.T) {
	checkErr(t, `proc main() { x = 1; }`, "undefined: x")
	checkErr(t, `proc main() { var y = nothere(1); }`, "undefined: nothere")
}

func TestConditionMustBeBool(t *testing.T) {
	checkErr(t, `proc main() { if 1 { } }`, "must be bool")
	checkErr(t, `proc main() { while 2.0 { } }`, "must be bool")
}

func TestBreakOutsideLoop(t *testing.T) {
	checkErr(t, `proc main() { break; }`, "outside loop")
}

func TestSelectTyping(t *testing.T) {
	check(t, `
proc main() {
  var x = 2;
  var y = 0;
  select x {
    when 1 { y = 1; }
    when 2, 3 { y = 2; }
    otherwise { y = 9; }
  }
}
`)
	checkErr(t, `
proc main() {
  var x = 2;
  select x { when "s" { } }
}
`, "does not match")
}

func TestNestedProcCaptures(t *testing.T) {
	info := check(t, `
proc CalcElemNodeNormals(ref bx: 8*real) {
  var tmp = 0.0;
  proc ElemFaceNormal(a: int) {
    tmp += 1.0;
    bx(1) = tmp;
  }
  ElemFaceNormal(1);
}
proc main() { var b: 8*real; CalcElemNodeNormals(b); }
`)
	var nested *Symbol
	for _, p := range info.Procs {
		if p.Name == "ElemFaceNormal" {
			nested = p
		}
	}
	if nested == nil {
		t.Fatal("nested proc not collected")
	}
	caps := info.Captures[nested]
	names := map[string]bool{}
	for _, s := range caps {
		names[s.Name] = true
	}
	if !names["tmp"] || !names["bx"] {
		t.Errorf("captures = %v, want tmp and bx", names)
	}
}

func TestExprContextOfSymbols(t *testing.T) {
	info := check(t, `
var g = 1.0;
proc f() { var loc = 2.0; loc += g; }
proc main() { f(); }
`)
	g := globalSym(info, "g")
	if g.Context() != "main" {
		t.Errorf("global context = %q, want main", g.Context())
	}
	var loc *Symbol
	for _, s := range info.AllSyms {
		if s.Name == "loc" {
			loc = s
		}
	}
	if loc.Context() != "f" {
		t.Errorf("local context = %q, want f", loc.Context())
	}
}

func TestMainDetected(t *testing.T) {
	info := check(t, `proc main() { }`)
	if info.Main == nil {
		t.Fatal("main not detected")
	}
}

func TestBuiltinCalls(t *testing.T) {
	info := check(t, `
proc main() {
  var r = sqrt(2.0);
  var m = max(1, 2, 3);
  var a = abs(-1.5);
  writeln("x = ", r, m, a);
}
`)
	_ = info
	checkErr(t, `proc main() { var x = sqrt("s"); }`, "numeric")
	checkErr(t, `proc main() { var x = sqrt(1.0, 2.0); }`, "takes 1 argument")
}

func TestDomainMethods(t *testing.T) {
	check(t, `
config const n = 4;
var binSpace: domain(1) = {0..#n};
var DistSpace: domain(1) = binSpace.expand(1);
proc main() {
  var s = binSpace.size;
  var r = binSpace.dim(1);
  var lo = binSpace.low;
}
`)
}

func TestArrayPromotionOps(t *testing.T) {
	check(t, `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] real;
var B: [D] real;
proc main() {
  A = 0.0;
  B = A * 2.0 + 1.0;
  var s = + reduce B;
  var m = max reduce A;
}
`)
}

func TestTupleArith(t *testing.T) {
	check(t, `
type v3 = 3*real;
proc main() {
  var a: v3;
  var b: v3;
  var c = a + b;
  var d = a * 0.5;
  var e = -a;
}
`)
	checkErr(t, `
proc main() {
  var a: 3*real;
  var b: 4*real;
  var c = a + b;
}
`, "size mismatch")
}

func TestSwapOperands(t *testing.T) {
	check(t, `proc main() { var a = 1; var b = 2; a <=> b; }`)
	checkErr(t, `proc main() { var a = 1; var b = 2.0; a <=> b; }`, "identical types")
}

func TestModuleInitOwnsTopStmts(t *testing.T) {
	info := check(t, `
var x = 0;
x = 3;
proc main() { }
`)
	if info.ModuleInit == nil {
		t.Fatal("module init missing")
	}
}

func TestMethodOnWrongType(t *testing.T) {
	checkErr(t, `proc main() { var x = 1; var y = x.expand(1); }`, "no method")
}

func TestRedeclaration(t *testing.T) {
	checkErr(t, `
proc main() {
  var x = 1;
  var x = 2;
}
`, "redeclared")
}

func TestWalkableInfoComplete(t *testing.T) {
	// Every expression that survives checking gets a type.
	fset := source.NewFileSet()
	src := `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  forall i in D { A[i] = i * 2.0; }
  var s = + reduce A;
  writeln(s);
}
`
	prog, _ := parser.ParseFile(fset, "t", src)
	info, err := Check(fset, prog)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	ast.Walk(prog, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if _, isZip := e.(*ast.ZipExpr); isZip {
				return true
			}
			if info.TypeOf(e) == nil {
				missing++
			}
		}
		return true
	})
	if missing > 0 {
		t.Errorf("%d expressions missing types", missing)
	}
}
