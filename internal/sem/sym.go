// Package sem implements semantic analysis for MiniChapel: name
// resolution, type inference and checking, and compile-time (param)
// evaluation. Its output (Info) drives IR generation and carries the
// variable identity information the blame profiler attributes samples to.
package sem

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	SymVar SymKind = iota
	SymProc
	SymType
	SymBuiltin
)

// Storage classifies where a variable lives — the distinction the paper's
// data-centric views surface (heap/static/local; HPCToolkit-like baselines
// only see the first two).
type Storage int

// Storage classes.
const (
	StorageGlobal Storage = iota // module-level (Chapel "global space")
	StorageLocal                 // procedure local
	StorageParam                 // formal parameter
	StorageField                 // record/class field
)

func (s Storage) String() string {
	switch s {
	case StorageGlobal:
		return "global"
	case StorageLocal:
		return "local"
	case StorageParam:
		return "param"
	case StorageField:
		return "field"
	}
	return "?"
}

// Symbol is a named program entity.
type Symbol struct {
	Name    string
	Kind    SymKind
	Type    types.Type
	Pos     source.Pos
	Storage Storage

	// VarKind is the declaration kind for SymVar (var/const/param/config).
	VarKind ast.VarKind
	// IsRefAlias marks `ref R = expr;` alias declarations (array slices
	// that alias their parent — RealPos/RealCount in MiniMD).
	IsRefAlias bool
	// RefParam marks formals with ref/inout/out intent (exit variables).
	RefParam bool
	// ConstVal holds the compile-time value for param symbols.
	ConstVal *ConstValue

	// Proc links a SymProc to its declaration.
	Proc *ast.ProcDecl
	// Owner is the enclosing procedure symbol for locals/params (nil for
	// globals); used to build the "Context" column of the blame tables.
	Owner *Symbol
	// Recv is the receiver record type for methods.
	Recv *types.RecordType

	// ID is a dense per-program index assigned in declaration order.
	ID int
}

func (s *Symbol) String() string { return s.Name }

// FullName returns Name qualified by its defining context, e.g.
// "CalcElemFBHourglassForce.shx" for locals and "main.Pos" style globals.
func (s *Symbol) FullName() string {
	if s.Owner != nil {
		return s.Owner.Name + "." + s.Name
	}
	return s.Name
}

// Context returns the paper's "Context" column value: the procedure the
// variable is defined in, or "main" for module-level globals.
func (s *Symbol) Context() string {
	if s.Owner != nil {
		return s.Owner.Name
	}
	return "main"
}

// ConstValue is a compile-time constant (param) value.
type ConstValue struct {
	T types.Type
	I int64
	F float64
	B bool
	S string
}

// Int returns the value as an int64.
func (v *ConstValue) Int() int64 {
	if v.T.Kind() == types.Real {
		return int64(v.F)
	}
	return v.I
}

// Float returns the value as a float64.
func (v *ConstValue) Float() float64 {
	if v.T.Kind() == types.Real {
		return v.F
	}
	return float64(v.I)
}

func (v *ConstValue) String() string {
	switch v.T.Kind() {
	case types.Int:
		return fmt.Sprintf("%d", v.I)
	case types.Real:
		return fmt.Sprintf("%g", v.F)
	case types.Bool:
		return fmt.Sprintf("%t", v.B)
	case types.String:
		return v.S
	}
	return "?"
}

// IntConst makes an int ConstValue.
func IntConst(i int64) *ConstValue { return &ConstValue{T: types.IntType, I: i} }

// RealConst makes a real ConstValue.
func RealConst(f float64) *ConstValue { return &ConstValue{T: types.RealType, F: f} }

// BoolConst makes a bool ConstValue.
func BoolConst(b bool) *ConstValue { return &ConstValue{T: types.BoolType, B: b} }

// Scope is a lexical scope.
type Scope struct {
	parent *Scope
	names  map[string]*Symbol
}

// NewScope returns a child scope of parent (parent may be nil).
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent, names: make(map[string]*Symbol)}
}

// Insert declares sym in s, returning the previous symbol with that name
// in this exact scope, if any.
func (s *Scope) Insert(sym *Symbol) *Symbol {
	prev := s.names[sym.Name]
	s.names[sym.Name] = sym
	return prev
}

// Lookup resolves name through the scope chain.
func (s *Scope) Lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}

// LookupLocal resolves name in this scope only.
func (s *Scope) LookupLocal(name string) *Symbol {
	return s.names[name]
}
