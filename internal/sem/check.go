package sem

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

// Error is a semantic error.
type Error struct {
	Pos source.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("error at line %d: %s", e.Pos.Line, e.Msg)
}

// ErrorList collects semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	if len(l) == 1 {
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// checker holds per-run state.
type checker struct {
	info *Info
	errs ErrorList

	universe *Scope
	global   *Scope

	// curProc is the procedure being checked (nil at module level).
	curProc *Symbol
	// curIterYield is the yield type when checking an iterator body.
	curIterYield types.Type
	// iterandCall marks the call node allowed to target an iterator
	// (the loop iterand being checked).
	iterandCall *ast.CallExpr
	// fieldSyms maps record types to their field symbols, for bringing
	// fields into method scope (implicit this.field access).
	fieldSyms map[*types.RecordType][]*Symbol
	// curScope is the active lexical scope.
	curScope *Scope
	// loopDepth tracks nesting for break/continue validation.
	loopDepth int
	nextID    int
}

// Check analyzes prog and returns the semantic Info. All errors are
// accumulated; Info is usable only when err is nil.
func Check(fset *source.FileSet, prog *ast.Program) (*Info, error) {
	c := &checker{info: newInfo(fset), fieldSyms: make(map[*types.RecordType][]*Symbol)}
	c.universe = NewScope(nil)
	c.declareBuiltins()
	c.global = NewScope(c.universe)
	c.curScope = c.global

	c.collectTypes(prog)
	c.collectProcsAndGlobals(prog)
	c.resolveRecordFields(prog)
	c.checkGlobalInits(prog)
	c.checkProcBodies(prog)
	c.checkTopStmts(prog)

	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	if len(c.errs) < 50 {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) newSymbol(name string, kind SymKind, pos source.Pos) *Symbol {
	s := &Symbol{Name: name, Kind: kind, Pos: pos, ID: c.nextID}
	c.nextID++
	c.info.AllSyms = append(c.info.AllSyms, s)
	return s
}

func (c *checker) declare(sc *Scope, sym *Symbol) {
	if prev := sc.LookupLocal(sym.Name); prev != nil {
		c.errorf(sym.Pos, "%s redeclared (previous declaration at line %d)", sym.Name, prev.Pos.Line)
	}
	sc.Insert(sym)
}

// ------------------------------------------------------------- builtins

var builtinFuncs = []string{
	"writeln", "write", "sqrt", "cbrt", "abs", "min", "max", "exp", "log",
	"sin", "cos", "floor", "ceil", "getCurrentTime", "assert", "exit",
	"halt", "sgn",
}

func (c *checker) declareBuiltins() {
	for _, name := range builtinFuncs {
		s := c.newSymbol(name, SymBuiltin, source.NoPos)
		c.universe.Insert(s)
	}
	// Predeclared values.
	numLoc := c.newSymbol("numLocales", SymVar, source.NoPos)
	numLoc.Type = types.IntType
	numLoc.VarKind = ast.VarConst
	numLoc.Storage = StorageGlobal
	c.universe.Insert(numLoc)

	here := c.newSymbol("here", SymVar, source.NoPos)
	here.Type = types.LocaleType
	here.VarKind = ast.VarConst
	here.Storage = StorageGlobal
	c.universe.Insert(here)

	locales := c.newSymbol("Locales", SymVar, source.NoPos)
	locales.Type = &types.ArrayType{Rank: 1, Elem: types.LocaleType, DomName: "LocaleSpace"}
	locales.VarKind = ast.VarConst
	locales.Storage = StorageGlobal
	c.universe.Insert(locales)

	nilSym := c.newSymbol("nil", SymVar, source.NoPos)
	nilSym.Type = types.NilType
	nilSym.VarKind = ast.VarConst
	c.universe.Insert(nilSym)

	// Built-in type names resolve through resolveType; no symbols needed.
}

// --------------------------------------------------------- declarations

// collectTypes declares type aliases and record types (two passes so that
// records can reference each other and aliases).
func (c *checker) collectTypes(prog *ast.Program) {
	// Shells first.
	for _, d := range prog.Decls {
		switch dd := d.(type) {
		case *ast.RecordDecl:
			rt := &types.RecordType{Name: dd.Name.Name, IsClass: dd.IsClass}
			c.info.Records[dd.Name.Name] = rt
			s := c.newSymbol(dd.Name.Name, SymType, dd.Name.NamePos)
			s.Type = rt
			c.declare(c.global, s)
			c.info.Defs[dd.Name] = s
		case *ast.TypeAliasDecl:
			s := c.newSymbol(dd.Name.Name, SymType, dd.Name.NamePos)
			c.declare(c.global, s)
			c.info.Defs[dd.Name] = s
		}
	}
	// Resolve alias targets (record fields wait until globals exist, since
	// field array types may reference global domains).
	for _, d := range prog.Decls {
		if dd, ok := d.(*ast.TypeAliasDecl); ok {
			t := c.resolveType(dd.Target)
			if tt, ok := t.(*types.TupleType); ok && tt.Alias == "" {
				// Clone so the alias name shows in display ("v3").
				t = &types.TupleType{Count: tt.Count, Elem: tt.Elem, Alias: dd.Name.Name}
			}
			if s := c.global.LookupLocal(dd.Name.Name); s != nil {
				s.Type = t
			}
		}
	}
}

// resolveRecordFields fills in record/class field types; runs after global
// declarations so field array types can reference global domains
// (CLOMP's `var zoneArray: [zoneSpace] Zone`).
func (c *checker) resolveRecordFields(prog *ast.Program) {
	for _, d := range prog.Decls {
		dd, ok := d.(*ast.RecordDecl)
		if !ok {
			continue
		}
		rt := c.info.Records[dd.Name.Name]
		for _, f := range dd.Fields {
			ft := c.resolveType(f.Type)
			rt.Fields = append(rt.Fields, types.Field{Name: f.Name.Name, Type: ft})
			fsym := c.newSymbol(f.Name.Name, SymVar, f.Name.NamePos)
			fsym.Type = ft
			fsym.Storage = StorageField
			c.info.Defs[f.Name] = fsym
			c.fieldSyms[rt] = append(c.fieldSyms[rt], fsym)
		}
	}
}

// collectProcsAndGlobals declares global variables (in source order, so
// that later declarations may use earlier params and domains) and then
// procedure signatures (which may reference global domains).
func (c *checker) collectProcsAndGlobals(prog *ast.Program) {
	for _, d := range prog.Decls {
		if g, ok := d.(*ast.GlobalVarDecl); ok {
			syms := c.declareVars(g.V, StorageGlobal)
			// Fold compile-time values eagerly so that following global
			// type expressions (k*real, domain sizes) can use them.
			if g.V.Init != nil {
				switch g.V.Kind {
				case ast.VarParam, ast.VarConst, ast.VarConfigConst:
					if v := c.evalConst(g.V.Init); v != nil {
						for _, s := range syms {
							s.ConstVal = v
							if s.Type == nil {
								s.Type = v.T
							}
						}
					}
				}
			}
		}
	}
	for _, d := range prog.Decls {
		switch dd := d.(type) {
		case *ast.ProcDecl:
			c.declareProc(c.global, dd, nil)
		case *ast.RecordDecl:
			rt := c.info.Records[dd.Name.Name]
			for _, m := range dd.Methods {
				c.declareProc(nil, m, rt)
			}
		}
	}
	// The synthetic owner for top-level statements.
	mi := c.newSymbol("__module_init__", SymProc, source.NoPos)
	mi.Type = &types.ProcType{Ret: types.VoidType}
	c.info.ModuleInit = mi
	c.info.Procs = append(c.info.Procs, mi)
}

func (c *checker) declareProc(sc *Scope, d *ast.ProcDecl, recv *types.RecordType) *Symbol {
	s := c.newSymbol(d.Name.Name, SymProc, d.Name.NamePos)
	s.Proc = d
	s.Recv = recv
	pt := &types.ProcType{}
	for _, q := range d.Params {
		var qt types.Type = types.IntType
		if q.Type != nil {
			qt = c.resolveType(q.Type)
		} else if q.Intent != ast.IntentParam {
			c.errorf(q.ParamPos, "parameter %s of %s needs a type annotation", q.Name.Name, d.Name.Name)
		}
		isRef := q.Intent == ast.IntentRef || q.Intent == ast.IntentInout || q.Intent == ast.IntentOut
		// Chapel default intent for arrays and domains acts like ref.
		if q.Intent == ast.IntentDefault {
			switch qt.Kind() {
			case types.Array, types.Domain:
				isRef = true
			}
		}
		pt.Params = append(pt.Params, types.ParamInfo{Name: q.Name.Name, Type: qt, IsRef: isRef})
	}
	pt.Ret = types.VoidType
	if d.RetType != nil {
		pt.Ret = c.resolveType(d.RetType)
	}
	s.Type = pt
	if sc != nil {
		c.declare(sc, s)
	}
	c.info.Defs[d.Name] = s
	c.info.Procs = append(c.info.Procs, s)
	if d.Name.Name == "main" && recv == nil && sc == c.global {
		c.info.Main = s
	}
	return s
}

// declareVars declares the symbols for a VarDecl in the current scope and
// returns them. Types are resolved here; initializer checking happens in
// the statement walk.
func (c *checker) declareVars(d *ast.VarDecl, storage Storage) []*Symbol {
	var declared []*Symbol
	var t types.Type
	if d.Type != nil {
		t = c.resolveType(d.Type)
	}
	sc := c.curScope
	if storage == StorageGlobal {
		sc = c.global
	}
	for _, name := range d.Names {
		s := c.newSymbol(name.Name, SymVar, name.NamePos)
		s.Type = t // may be nil until init inference
		s.Storage = storage
		s.VarKind = d.Kind
		s.IsRefAlias = d.IsRef
		s.Owner = c.curProc
		c.declare(sc, s)
		c.info.Defs[name] = s
		declared = append(declared, s)
		if storage == StorageGlobal {
			c.info.Globals = append(c.info.Globals, s)
		}
		if d.Kind == ast.VarConfigConst {
			c.info.ConfigConsts[name.Name] = s
		}
	}
	return declared
}

// checkGlobalInits type-checks global initializers in declaration order.
func (c *checker) checkGlobalInits(prog *ast.Program) {
	for _, d := range prog.Decls {
		g, ok := d.(*ast.GlobalVarDecl)
		if !ok {
			continue
		}
		c.checkVarInit(g.V)
	}
}

// checkVarInit infers/checks the initializer of an already-declared decl.
func (c *checker) checkVarInit(d *ast.VarDecl) {
	var declared []*Symbol
	for _, name := range d.Names {
		if s := c.info.Defs[name]; s != nil {
			declared = append(declared, s)
		}
	}
	var initT types.Type
	if d.Init != nil {
		initT = c.expr(d.Init)
	}
	for _, s := range declared {
		if s.Type == nil {
			if initT == nil {
				c.errorf(s.Pos, "cannot infer type of %s without initializer", s.Name)
				s.Type = types.IntType
			} else {
				s.Type = initT
			}
		} else if initT != nil && !types.AssignableTo(initT, s.Type) {
			c.errorf(d.Init.Pos(), "cannot initialize %s (type %s) with %s", s.Name, s.Type, initT)
		}
		if d.Kind == ast.VarParam {
			if v := c.evalConst(d.Init); v != nil {
				s.ConstVal = v
			} else {
				c.errorf(s.Pos, "param %s requires a compile-time constant initializer", s.Name)
			}
		}
		if d.Kind == ast.VarConst && d.Init != nil {
			// Fold const values when possible (helps param contexts).
			s.ConstVal = c.evalConst(d.Init)
		}
		if d.Kind == ast.VarConfigConst && d.Init != nil {
			s.ConstVal = c.evalConst(d.Init) // default value, overridable
		}
		if d.IsRef {
			if d.Init == nil {
				c.errorf(s.Pos, "ref declaration %s requires an initializer", s.Name)
			}
		}
	}
}

func (c *checker) checkProcBodies(prog *ast.Program) {
	for _, d := range prog.Decls {
		switch dd := d.(type) {
		case *ast.ProcDecl:
			c.checkProcBody(c.info.Defs[dd.Name], dd)
		case *ast.RecordDecl:
			for _, m := range dd.Methods {
				c.checkProcBody(c.info.Defs[m.Name], m)
			}
		}
	}
}

func (c *checker) checkProcBody(sym *Symbol, d *ast.ProcDecl) {
	if sym == nil {
		return
	}
	outerProc, outerScope, outerYield := c.curProc, c.curScope, c.curIterYield
	c.curProc = sym
	c.curScope = NewScope(outerScope)
	c.curIterYield = nil
	if d.IsIter {
		pt := sym.Type.(*types.ProcType)
		if pt.Ret == nil || pt.Ret.Kind() == types.Void {
			c.errorf(d.ProcPos, "iterator %s needs a yield type annotation", d.Name.Name)
			c.curIterYield = types.IntType
		} else {
			c.curIterYield = pt.Ret
		}
		for _, q := range d.Params {
			if q.Intent == ast.IntentRef || q.Intent == ast.IntentOut || q.Intent == ast.IntentInout {
				c.errorf(q.ParamPos, "iterator %s: ref-intent parameters are not supported", d.Name.Name)
			}
		}
	}
	defer func() { c.curProc, c.curScope, c.curIterYield = outerProc, outerScope, outerYield }()

	pt := sym.Type.(*types.ProcType)
	// Implicit receiver and direct field access in methods.
	if sym.Recv != nil {
		this := c.newSymbol("this", SymVar, d.ProcPos)
		this.Type = sym.Recv
		this.Storage = StorageParam
		this.RefParam = true
		this.Owner = sym
		c.curScope.Insert(this)
		for _, f := range c.fieldSyms[sym.Recv] {
			c.curScope.Insert(f)
		}
	}
	for i, q := range d.Params {
		ps := c.newSymbol(q.Name.Name, SymVar, q.Name.NamePos)
		ps.Type = pt.Params[i].Type
		ps.Storage = StorageParam
		ps.RefParam = pt.Params[i].IsRef
		ps.Owner = sym
		if q.Intent == ast.IntentParam {
			ps.VarKind = ast.VarParam
		}
		c.declare(c.curScope, ps)
		c.info.Defs[q.Name] = ps
	}
	c.block(d.Body)
}

func (c *checker) checkTopStmts(prog *ast.Program) {
	outerProc, outerScope := c.curProc, c.curScope
	c.curProc = c.info.ModuleInit
	c.curScope = NewScope(c.global)
	defer func() { c.curProc, c.curScope = outerProc, outerScope }()
	for _, s := range prog.TopStmts {
		c.stmt(s)
	}
}

// ---------------------------------------------------------------- stmts

func (c *checker) block(b *ast.BlockStmt) {
	outer := c.curScope
	c.curScope = NewScope(outer)
	for _, s := range b.Stmts {
		c.stmt(s)
	}
	c.curScope = outer
}

func (c *checker) stmt(s ast.Stmt) {
	switch ss := s.(type) {
	case *ast.VarDecl:
		c.declareVars(ss, StorageLocal)
		c.checkVarInit(ss)
	case *ast.DeclStmt:
		switch dd := ss.D.(type) {
		case *ast.ProcDecl:
			ps := c.declareProc(c.curScope, dd, nil)
			ps.Owner = c.curProc
			c.checkProcBody(ps, dd)
		case *ast.TypeAliasDecl:
			t := c.resolveType(dd.Target)
			sym := c.newSymbol(dd.Name.Name, SymType, dd.Name.NamePos)
			sym.Type = t
			c.declare(c.curScope, sym)
			c.info.Defs[dd.Name] = sym
		case *ast.RecordDecl:
			c.errorf(dd.RecPos, "record declarations must be at module level")
		}
	case *ast.AssignStmt:
		c.assign(ss)
	case *ast.ExprStmt:
		c.expr(ss.X)
	case *ast.BlockStmt:
		c.block(ss)
	case *ast.IfStmt:
		ct := c.expr(ss.Cond)
		if ct != nil && ct.Kind() != types.Bool {
			c.errorf(ss.Cond.Pos(), "if condition must be bool, got %s", ct)
		}
		c.block(ss.Then)
		if ss.Else != nil {
			c.stmt(ss.Else)
		}
	case *ast.WhileStmt:
		ct := c.expr(ss.Cond)
		if ct != nil && ct.Kind() != types.Bool {
			c.errorf(ss.Cond.Pos(), "while condition must be bool, got %s", ct)
		}
		c.loopDepth++
		c.block(ss.Body)
		c.loopDepth--
	case *ast.DoWhileStmt:
		c.loopDepth++
		c.block(ss.Body)
		c.loopDepth--
		ct := c.expr(ss.Cond)
		if ct != nil && ct.Kind() != types.Bool {
			c.errorf(ss.Cond.Pos(), "do-while condition must be bool, got %s", ct)
		}
	case *ast.ForStmt:
		c.forStmt(ss)
	case *ast.SelectStmt:
		st := c.expr(ss.Subject)
		for _, w := range ss.Whens {
			for _, v := range w.Values {
				vt := c.expr(v)
				if st != nil && vt != nil && !types.AssignableTo(vt, st) && !types.AssignableTo(st, vt) {
					c.errorf(v.Pos(), "when value type %s does not match select subject type %s", vt, st)
				}
			}
			c.block(w.Body)
		}
		if ss.Otherwise != nil {
			c.block(ss.Otherwise)
		}
	case *ast.ReturnStmt:
		c.returnStmt(ss)
	case *ast.YieldStmt:
		if c.curIterYield == nil {
			c.errorf(ss.YieldPos, "yield outside an iterator")
			c.expr(ss.X)
			break
		}
		yt := c.expr(ss.X)
		if yt != nil && !types.AssignableTo(yt, c.curIterYield) {
			c.errorf(ss.X.Pos(), "cannot yield %s from an iterator of %s", yt, c.curIterYield)
		}
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(ss.BrkPos, "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(ss.ContPos, "continue outside loop")
		}
	case *ast.OnStmt:
		tt := c.expr(ss.Target)
		if tt != nil && tt.Kind() != types.LocaleK {
			c.errorf(ss.Target.Pos(), "on target must be a locale, got %s", tt)
		}
		c.block(ss.Body)
	case *ast.BeginStmt:
		c.block(ss.Body)
	case *ast.CobeginStmt:
		c.block(ss.Body)
	case *ast.SyncStmt:
		c.block(ss.Body)
	}
}

func (c *checker) assign(s *ast.AssignStmt) {
	lt := c.expr(s.Lhs)
	rt := c.expr(s.Rhs)
	if !c.isLvalue(s.Lhs) {
		c.errorf(s.Lhs.Pos(), "left side of assignment is not assignable")
	}
	if lt == nil || rt == nil {
		return
	}
	if s.Op.String() == "<=>" {
		if !types.Identical(lt, rt) {
			c.errorf(s.Lhs.Pos(), "swap operands must have identical types (%s vs %s)", lt, rt)
		}
		if !c.isLvalue(s.Rhs) {
			c.errorf(s.Rhs.Pos(), "right side of swap is not assignable")
		}
		return
	}
	if !types.AssignableTo(rt, lt) {
		c.errorf(s.Rhs.Pos(), "cannot assign %s to %s", rt, lt)
	}
}

// isLvalue reports whether e denotes a storage location.
func (c *checker) isLvalue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		sym := c.info.SymOf(x)
		if sym == nil {
			return false
		}
		if sym.Kind != SymVar {
			return false
		}
		switch sym.VarKind {
		case ast.VarConst, ast.VarParam, ast.VarConfigConst:
			// Const globals are not assignable; but loop vars and ref
			// params may carry VarVar. Allow out/inout params.
			return sym.RefParam
		}
		return true
	case *ast.IndexExpr:
		return true
	case *ast.FieldExpr:
		return true
	case *ast.CallExpr:
		// Tuple indexing t(1) is assignable.
		if ci := c.info.Calls[x]; ci != nil && ci.TupleIndex {
			return true
		}
		return false
	}
	return false
}

func (c *checker) returnStmt(s *ast.ReturnStmt) {
	if c.curProc == nil || c.curProc == c.info.ModuleInit {
		if s.X != nil {
			c.errorf(s.RetPos, "return with value outside procedure")
		}
		return
	}
	pt, _ := c.curProc.Type.(*types.ProcType)
	if pt == nil {
		return
	}
	if c.curIterYield != nil {
		if s.X != nil {
			c.errorf(s.RetPos, "iterators return values via yield, not return")
		}
		return
	}
	if s.X == nil {
		if pt.Ret != nil && pt.Ret.Kind() != types.Void {
			c.errorf(s.RetPos, "missing return value in %s", c.curProc.Name)
		}
		return
	}
	rt := c.expr(s.X)
	if pt.Ret == nil || pt.Ret.Kind() == types.Void {
		c.errorf(s.RetPos, "%s has no return type but returns a value", c.curProc.Name)
		return
	}
	if rt != nil && !types.AssignableTo(rt, pt.Ret) {
		c.errorf(s.X.Pos(), "cannot return %s from %s (want %s)", rt, c.curProc.Name, pt.Ret)
	}
}

func (c *checker) forStmt(s *ast.ForStmt) {
	// Type the iterand first (indices are not in scope there).
	var iterT types.Type
	var zipTs []types.Type
	isIterCall := false
	if z, ok := s.Iter.(*ast.ZipExpr); ok {
		for _, a := range z.Args {
			zipTs = append(zipTs, c.expr(a))
		}
		c.info.Types[z] = types.VoidType
	} else {
		if call, ok := s.Iter.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if sym := c.curScope.Lookup(id.Name); sym != nil && sym.Kind == SymProc && sym.Proc != nil && sym.Proc.IsIter {
					isIterCall = true
					c.iterandCall = call
				}
			}
		}
		iterT = c.expr(s.Iter)
		c.iterandCall = nil
		if isIterCall && (s.Kind == ast.LoopForall || s.Kind == ast.LoopCoforall) {
			c.errorf(s.ForPos, "parallel iteration over a serial iterator is not supported")
		}
	}

	outer := c.curScope
	c.curScope = NewScope(outer)
	defer func() { c.curScope = outer }()

	declareIdx := func(id *ast.Ident, t types.Type, isRefElem bool) {
		sym := c.newSymbol(id.Name, SymVar, id.NamePos)
		sym.Type = t
		sym.Storage = StorageLocal
		sym.Owner = c.curProc
		sym.VarKind = ast.VarVar
		if isRefElem {
			sym.IsRefAlias = true
			sym.RefParam = true // writable through the alias
		} else if s.Kind == ast.LoopParamFor {
			sym.VarKind = ast.VarParam
		} else {
			// Plain loop indices are not assignable in Chapel.
			sym.VarKind = ast.VarConst
		}
		c.declare(c.curScope, sym)
		c.info.Defs[id] = sym
	}

	idxType := func(t types.Type) (types.Type, bool) {
		if t == nil {
			return types.IntType, false
		}
		if isIterCall {
			// The loop variable takes the iterator's yield type.
			return t, false
		}
		switch tt := t.(type) {
		case *types.RangeType:
			return types.IntType, false
		case *types.DomainType:
			if tt.Rank == 1 {
				return types.IntType, false
			}
			return &types.TupleType{Count: tt.Rank, Elem: types.IntType}, false
		case *types.ArrayType:
			return tt.Elem, true
		}
		c.errorf(s.Iter.Pos(), "cannot iterate over %s", t)
		return types.IntType, false
	}

	if zipTs != nil {
		if len(s.Idx) != len(zipTs) {
			c.errorf(s.ForPos, "zip arity %d does not match %d index variables", len(zipTs), len(s.Idx))
		}
		for i, id := range s.Idx {
			var t types.Type = types.IntType
			isRef := false
			if i < len(zipTs) {
				t, isRef = idxType(zipTs[i])
			}
			declareIdx(id, t, isRef)
		}
	} else {
		t, isRef := idxType(iterT)
		if len(s.Idx) == 1 {
			declareIdx(s.Idx[0], t, isRef)
		} else {
			// Destructuring: (i, j) over a rank-n domain or tuple elements.
			if tt, ok := t.(*types.TupleType); ok && tt.Count == len(s.Idx) {
				for _, id := range s.Idx {
					declareIdx(id, tt.Elem, false)
				}
			} else {
				c.errorf(s.ForPos, "cannot destructure %s into %d variables", t, len(s.Idx))
				for _, id := range s.Idx {
					declareIdx(id, types.IntType, false)
				}
			}
		}
	}

	if s.Kind == ast.LoopParamFor {
		r, ok := s.Iter.(*ast.RangeExpr)
		if !ok {
			c.errorf(s.Iter.Pos(), "param for requires a literal range")
		} else {
			lo := c.evalConst(r.Lo)
			var hi *ConstValue
			if r.Hi != nil {
				hi = c.evalConst(r.Hi)
			} else if r.Count != nil {
				if cnt := c.evalConst(r.Count); cnt != nil && lo != nil {
					hi = IntConst(lo.Int() + cnt.Int() - 1)
				}
			}
			if lo == nil || hi == nil {
				c.errorf(s.Iter.Pos(), "param for bounds must be compile-time constants")
			} else {
				c.info.Consts[r] = &ConstValue{T: types.IntType, I: hi.Int() - lo.Int() + 1}
				c.info.Consts[r.Lo] = lo
				if r.Hi != nil {
					c.info.Consts[r.Hi] = hi
				}
			}
		}
	}

	c.loopDepth++
	c.block(s.Body)
	c.loopDepth--
}
