package sem

import (
	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

// CallInfo describes how a CallExpr resolved.
type CallInfo struct {
	// Target is the resolved procedure symbol (nil for builtins and
	// tuple indexing).
	Target *Symbol
	// Builtin is the builtin function name, if any.
	Builtin string
	// TupleIndex is true when f(i) is tuple element access.
	TupleIndex bool
	// TypeMethod is the name of a domain/array/range/locale method
	// (e.g. "expand", "size") when the call is such a method.
	TypeMethod string
	// Iterator is true when the call invokes a user-defined iterator
	// (legal only as a serial loop iterand).
	Iterator bool
	// Method is true for record/class method calls (Target is the method).
	Method bool
}

// Info is the semantic analysis result consumed by IR generation and the
// blame analyses.
type Info struct {
	FileSet *source.FileSet

	// Types records the type of every expression.
	Types map[ast.Expr]types.Type
	// Uses maps identifier uses to their symbols.
	Uses map[*ast.Ident]*Symbol
	// Defs maps declaring identifiers to the symbols they introduce.
	Defs map[*ast.Ident]*Symbol
	// Calls records call resolution.
	Calls map[*ast.CallExpr]*CallInfo
	// Consts records compile-time values for param-evaluated expressions.
	Consts map[ast.Expr]*ConstValue

	// Procs lists every procedure symbol (including nested and methods) in
	// declaration order.
	Procs []*Symbol
	// Globals lists module-level variables in declaration order.
	Globals []*Symbol
	// ConfigConsts maps names of `config const` symbols.
	ConfigConsts map[string]*Symbol
	// Records maps record/class names to their types.
	Records map[string]*types.RecordType
	// Captures maps nested procedures to enclosing-procedure locals they
	// reference (captured by reference, Chapel-style).
	Captures map[*Symbol][]*Symbol
	// Main is the entry procedure symbol (proc main), if present.
	Main *Symbol
	// ModuleInit is the synthetic symbol owning top-level statements.
	ModuleInit *Symbol
	// AllSyms is every symbol in ID order.
	AllSyms []*Symbol
}

// TypeOf returns the recorded type of e (nil if unknown).
func (in *Info) TypeOf(e ast.Expr) types.Type { return in.Types[e] }

// SymOf returns the symbol an identifier use or def resolves to.
func (in *Info) SymOf(id *ast.Ident) *Symbol {
	if s, ok := in.Uses[id]; ok {
		return s
	}
	return in.Defs[id]
}

// ConstOf returns the compile-time value of e, or nil.
func (in *Info) ConstOf(e ast.Expr) *ConstValue { return in.Consts[e] }

func newInfo(fset *source.FileSet) *Info {
	return &Info{
		FileSet:      fset,
		Types:        make(map[ast.Expr]types.Type),
		Uses:         make(map[*ast.Ident]*Symbol),
		Defs:         make(map[*ast.Ident]*Symbol),
		Calls:        make(map[*ast.CallExpr]*CallInfo),
		Consts:       make(map[ast.Expr]*ConstValue),
		ConfigConsts: make(map[string]*Symbol),
		Records:      make(map[string]*types.RecordType),
		Captures:     make(map[*Symbol][]*Symbol),
	}
}
