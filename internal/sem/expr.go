package sem

import (
	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
)

// expr type-checks e and records/returns its type (nil on error).
func (c *checker) expr(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if t, ok := c.info.Types[e]; ok {
		return t
	}
	t := c.exprInternal(e)
	if t != nil {
		c.info.Types[e] = t
	}
	return t
}

func (c *checker) exprInternal(e ast.Expr) types.Type {
	switch x := e.(type) {
	case *ast.IntLit:
		c.info.Consts[x] = IntConst(x.Value)
		return types.IntType
	case *ast.RealLit:
		c.info.Consts[x] = RealConst(x.Value)
		return types.RealType
	case *ast.BoolLit:
		c.info.Consts[x] = BoolConst(x.Value)
		return types.BoolType
	case *ast.StringLit:
		return types.StringType
	case *ast.Ident:
		return c.identExpr(x)
	case *ast.BinaryExpr:
		return c.binaryExpr(x)
	case *ast.UnaryExpr:
		return c.unaryExpr(x)
	case *ast.RangeExpr:
		return c.rangeExpr(x)
	case *ast.TupleExpr:
		return c.tupleExpr(x)
	case *ast.DomainLit:
		for _, d := range x.Dims {
			dt := c.expr(d)
			if dt != nil && dt.Kind() != types.Range {
				c.errorf(d.Pos(), "domain literal dimension must be a range, got %s", dt)
			}
		}
		return &types.DomainType{Rank: len(x.Dims)}
	case *ast.IndexExpr:
		return c.indexExpr(x)
	case *ast.FieldExpr:
		return c.fieldExpr(x)
	case *ast.CallExpr:
		return c.callExpr(x)
	case *ast.IfExpr:
		ct := c.expr(x.Cond)
		if ct != nil && ct.Kind() != types.Bool {
			c.errorf(x.Cond.Pos(), "if-expression condition must be bool")
		}
		at := c.expr(x.Then)
		bt := c.expr(x.Else)
		if at == nil || bt == nil {
			return at
		}
		if types.Identical(at, bt) {
			return at
		}
		if types.IsNumeric(at) && types.IsNumeric(bt) {
			return types.Common(at, bt)
		}
		c.errorf(x.IfPos, "if-expression branches have mismatched types %s and %s", at, bt)
		return at
	case *ast.NewExpr:
		t := c.resolveType(x.Type)
		rt, ok := t.(*types.RecordType)
		if !ok || !rt.IsClass {
			c.errorf(x.NewPos, "new requires a class type, got %s", t)
			return t
		}
		for _, a := range x.Args {
			c.expr(a)
		}
		return rt
	case *ast.ReduceExpr:
		// `+ reduce f()` folds a user-defined iterator's stream.
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if sym := c.curScope.Lookup(id.Name); sym != nil && sym.Kind == SymProc && sym.Proc != nil && sym.Proc.IsIter {
					prev := c.iterandCall
					c.iterandCall = call
					xt := c.expr(call)
					c.iterandCall = prev
					if xt != nil && !types.IsNumeric(xt) {
						c.errorf(x.OpPos, "reduce over an iterator requires numeric yields, got %s", xt)
					}
					return xt
				}
			}
		}
		xt := c.expr(x.X)
		if at, ok := xt.(*types.ArrayType); ok {
			return at.Elem
		}
		if xt != nil && types.IsNumeric(xt) {
			return xt
		}
		c.errorf(x.OpPos, "reduce requires an array operand, got %s", xt)
		return types.RealType
	case *ast.ZipExpr:
		c.errorf(x.ZipPos, "zip may only appear as a loop iterand")
		return types.VoidType
	}
	return nil
}

func (c *checker) identExpr(x *ast.Ident) types.Type {
	sym := c.curScope.Lookup(x.Name)
	if sym == nil {
		c.errorf(x.NamePos, "undefined: %s", x.Name)
		return nil
	}
	c.info.Uses[x] = sym
	switch sym.Kind {
	case SymProc, SymBuiltin:
		// Allowed as call targets only; callExpr handles them.
		return &types.ProcType{Ret: types.VoidType}
	case SymType:
		return sym.Type
	}
	// Capture tracking: a local/param of an enclosing procedure referenced
	// inside a nested procedure is captured by reference.
	if sym.Owner != nil && c.curProc != nil && sym.Owner != c.curProc {
		c.addCapture(c.curProc, sym)
	}
	if sym.ConstVal != nil && sym.VarKind == ast.VarParam {
		c.info.Consts[x] = sym.ConstVal
	}
	return sym.Type
}

func (c *checker) addCapture(proc, sym *Symbol) {
	for _, s := range c.info.Captures[proc] {
		if s == sym {
			return
		}
	}
	c.info.Captures[proc] = append(c.info.Captures[proc], sym)
}

func (c *checker) binaryExpr(x *ast.BinaryExpr) types.Type {
	lt := c.expr(x.X)
	rt := c.expr(x.Y)
	if lt == nil || rt == nil {
		return nil
	}
	// Constant folding for param contexts.
	if lv, rv := c.info.Consts[x.X], c.info.Consts[x.Y]; lv != nil && rv != nil {
		if v := foldBinary(x.Op, lv, rv); v != nil {
			c.info.Consts[x] = v
		}
	}
	switch x.Op {
	case token.AND, token.OR:
		if lt.Kind() != types.Bool || rt.Kind() != types.Bool {
			c.errorf(x.X.Pos(), "%s requires bool operands, got %s and %s", x.Op, lt, rt)
		}
		return types.BoolType
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		if types.IsNumeric(lt) && types.IsNumeric(rt) {
			return types.BoolType
		}
		if types.Identical(lt, rt) {
			return types.BoolType
		}
		if (lt.Kind() == types.Nil && rt.Kind() == types.Class) || (rt.Kind() == types.Nil && lt.Kind() == types.Class) {
			return types.BoolType
		}
		c.errorf(x.X.Pos(), "cannot compare %s and %s", lt, rt)
		return types.BoolType
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT, token.POW:
		return c.arith(x, lt, rt)
	}
	c.errorf(x.X.Pos(), "invalid binary operator %s", x.Op)
	return nil
}

// arith types arithmetic with Chapel-style promotion over tuples/arrays.
func (c *checker) arith(x *ast.BinaryExpr, lt, rt types.Type) types.Type {
	if types.IsNumeric(lt) && types.IsNumeric(rt) {
		if x.Op == token.PERCENT && (lt.Kind() != types.Int || rt.Kind() != types.Int) {
			c.errorf(x.X.Pos(), "%% requires integer operands")
		}
		if x.Op == token.SLASH && lt.Kind() == types.Int && rt.Kind() == types.Int {
			return types.IntType
		}
		return types.Common(lt, rt)
	}
	// Tuple ± tuple, tuple * scalar, scalar * tuple (elementwise).
	ltup, lok := lt.(*types.TupleType)
	rtup, rok := rt.(*types.TupleType)
	switch {
	case lok && rok:
		if ltup.Count != rtup.Count {
			c.errorf(x.X.Pos(), "tuple size mismatch: %s vs %s", lt, rt)
		}
		return ltup
	case lok && types.IsNumeric(rt):
		return ltup
	case rok && types.IsNumeric(lt):
		return rtup
	}
	// Array promotion: elementwise whole-array ops.
	larr, laok := lt.(*types.ArrayType)
	rarr, raok := rt.(*types.ArrayType)
	switch {
	case laok && raok:
		if larr.Rank != rarr.Rank {
			c.errorf(x.X.Pos(), "array rank mismatch: %s vs %s", lt, rt)
		}
		return larr
	case laok && types.IsNumeric(rt):
		return larr
	case raok && types.IsNumeric(lt):
		return rarr
	}
	// String concatenation.
	if lt.Kind() == types.String && rt.Kind() == types.String && x.Op == token.PLUS {
		return types.StringType
	}
	c.errorf(x.X.Pos(), "invalid operands for %s: %s and %s", x.Op, lt, rt)
	return nil
}

func (c *checker) unaryExpr(x *ast.UnaryExpr) types.Type {
	xt := c.expr(x.X)
	if xt == nil {
		return nil
	}
	if v := c.info.Consts[x.X]; v != nil {
		if f := foldUnary(x.Op, v); f != nil {
			c.info.Consts[x] = f
		}
	}
	switch x.Op {
	case token.MINUS:
		if types.IsNumeric(xt) {
			return xt
		}
		if _, ok := xt.(*types.TupleType); ok {
			return xt
		}
		if _, ok := xt.(*types.ArrayType); ok {
			return xt
		}
		c.errorf(x.OpPos, "cannot negate %s", xt)
		return nil
	case token.NOT:
		if xt.Kind() != types.Bool {
			c.errorf(x.OpPos, "! requires bool, got %s", xt)
		}
		return types.BoolType
	}
	return nil
}

func (c *checker) rangeExpr(x *ast.RangeExpr) types.Type {
	check := func(e ast.Expr) {
		if e == nil {
			return
		}
		t := c.expr(e)
		if t != nil && t.Kind() != types.Int {
			c.errorf(e.Pos(), "range bound must be int, got %s", t)
		}
	}
	check(x.Lo)
	check(x.Hi)
	check(x.Count)
	check(x.By)
	return types.RangeVal
}

func (c *checker) tupleExpr(x *ast.TupleExpr) types.Type {
	if len(x.Elems) == 0 {
		c.errorf(x.Lparen, "empty tuple")
		return nil
	}
	var elem types.Type
	for _, e := range x.Elems {
		t := c.expr(e)
		if t == nil {
			continue
		}
		if elem == nil {
			elem = t
		} else if !types.Identical(elem, t) {
			if types.IsNumeric(elem) && types.IsNumeric(t) {
				elem = types.Common(elem, t)
			} else {
				c.errorf(e.Pos(), "tuple elements must share a type (%s vs %s)", elem, t)
			}
		}
	}
	if elem == nil {
		return nil
	}
	return &types.TupleType{Count: len(x.Elems), Elem: elem}
}

func (c *checker) indexExpr(x *ast.IndexExpr) types.Type {
	bt := c.expr(x.X)
	var idxTs []types.Type
	for _, i := range x.Index {
		idxTs = append(idxTs, c.expr(i))
	}
	if bt == nil {
		return nil
	}
	switch b := bt.(type) {
	case *types.ArrayType:
		// A[i], A[i,j]: element access; A[range] / A[domain]: slice view.
		if len(idxTs) == 1 && idxTs[0] != nil {
			switch idxTs[0].Kind() {
			case types.Range:
				return &types.ArrayType{Rank: 1, Elem: b.Elem, DomName: b.DomName}
			case types.Domain:
				dr := idxTs[0].(*types.DomainType).Rank
				if dr != b.Rank {
					c.errorf(x.Lbrack, "slice domain rank %d does not match array rank %d", dr, b.Rank)
				}
				return &types.ArrayType{Rank: b.Rank, Elem: b.Elem, DomName: b.DomName}
			case types.Tuple:
				// A[(i,j)] full-rank tuple index.
				tt := idxTs[0].(*types.TupleType)
				if tt.Count != b.Rank {
					c.errorf(x.Lbrack, "index tuple size %d does not match array rank %d", tt.Count, b.Rank)
				}
				return b.Elem
			}
		}
		if len(idxTs) != b.Rank {
			c.errorf(x.Lbrack, "array of rank %d indexed with %d subscripts", b.Rank, len(idxTs))
		}
		for k, it := range idxTs {
			if it != nil && it.Kind() != types.Int {
				c.errorf(x.Index[k].Pos(), "array index must be int, got %s", it)
			}
		}
		return b.Elem
	case *types.TupleType:
		if len(idxTs) != 1 || (idxTs[0] != nil && idxTs[0].Kind() != types.Int) {
			c.errorf(x.Lbrack, "tuple index must be a single int")
		}
		return b.Elem
	case *types.DomainType:
		c.errorf(x.Lbrack, "cannot index a domain")
		return nil
	}
	c.errorf(x.Lbrack, "cannot index %s", bt)
	return nil
}

func (c *checker) fieldExpr(x *ast.FieldExpr) types.Type {
	bt := c.expr(x.X)
	if bt == nil {
		return nil
	}
	name := x.Name.Name
	switch b := bt.(type) {
	case *types.RecordType:
		if i := b.FieldIndex(name); i >= 0 {
			return b.Fields[i].Type
		}
		// Zero-arg method access is only valid as a call; callExpr handles it.
		for _, m := range c.methodsOf(b) {
			if m.Name == name {
				return m.Type
			}
		}
		c.errorf(x.Name.NamePos, "%s has no field %s", b.Name, name)
		return nil
	case *types.DomainType:
		switch name {
		case "size", "numIndices":
			return types.IntType
		case "low", "high", "first", "last":
			if b.Rank == 1 {
				return types.IntType
			}
			return &types.TupleType{Count: b.Rank, Elem: types.IntType}
		}
		c.errorf(x.Name.NamePos, "domain has no member %s", name)
		return nil
	case *types.RangeType:
		switch name {
		case "size", "length", "low", "high", "first", "last":
			return types.IntType
		}
		c.errorf(x.Name.NamePos, "range has no member %s", name)
		return nil
	case *types.ArrayType:
		switch name {
		case "size", "numElements":
			return types.IntType
		case "domain":
			return &types.DomainType{Rank: b.Rank}
		}
		c.errorf(x.Name.NamePos, "array has no member %s", name)
		return nil
	case *types.TupleType:
		if name == "size" {
			c.info.Consts[x] = IntConst(int64(b.Count))
			return types.IntType
		}
		c.errorf(x.Name.NamePos, "tuple has no member %s", name)
		return nil
	case *types.Basic:
		if b.K == types.LocaleK {
			switch name {
			case "id":
				return types.IntType
			case "name":
				return types.StringType
			case "maxTaskPar", "numCores":
				return types.IntType
			}
		}
	}
	c.errorf(x.Name.NamePos, "%s has no member %s", bt, name)
	return nil
}

// methodsOf returns the method symbols of a record type.
func (c *checker) methodsOf(rt *types.RecordType) []*Symbol {
	var out []*Symbol
	for _, p := range c.info.Procs {
		if p.Recv == rt {
			out = append(out, p)
		}
	}
	return out
}

func (c *checker) callExpr(x *ast.CallExpr) types.Type {
	// Method call or type-method: fun is a FieldExpr.
	if fe, ok := x.Fun.(*ast.FieldExpr); ok {
		return c.methodCall(x, fe)
	}

	id, ok := x.Fun.(*ast.Ident)
	if !ok {
		// Call syntax on a general expression: tuple indexing
		// (Pos[i][j](1)) or array call-indexing (A(i)).
		ft := c.expr(x.Fun)
		if tt, isTuple := ft.(*types.TupleType); isTuple {
			if len(x.Args) != 1 {
				c.errorf(x.Lparen, "tuple index takes one argument")
			} else if at := c.expr(x.Args[0]); at != nil && at.Kind() != types.Int {
				c.errorf(x.Args[0].Pos(), "tuple index must be int")
			}
			c.info.Calls[x] = &CallInfo{TupleIndex: true}
			return tt.Elem
		}
		if _, isArr := ft.(*types.ArrayType); isArr {
			ix := &ast.IndexExpr{X: x.Fun, Lbrack: x.Lparen, Index: x.Args}
			t := c.indexExpr(ix)
			c.info.Calls[x] = &CallInfo{TypeMethod: "index"}
			return t
		}
		c.errorf(x.Fun.Pos(), "cannot call this expression")
		return nil
	}
	sym := c.curScope.Lookup(id.Name)
	if sym == nil {
		c.errorf(id.NamePos, "undefined: %s", id.Name)
		return nil
	}
	c.info.Uses[id] = sym
	if sym.Type != nil {
		c.info.Types[id] = sym.Type
	} else {
		c.info.Types[id] = &types.ProcType{Ret: types.VoidType}
	}

	switch sym.Kind {
	case SymBuiltin:
		return c.builtinCall(x, sym)
	case SymProc:
		return c.procCall(x, sym)
	case SymVar:
		// Tuple indexing: t(1).
		if tt, ok := sym.Type.(*types.TupleType); ok {
			if len(x.Args) != 1 {
				c.errorf(x.Lparen, "tuple index takes one argument")
			} else if at := c.expr(x.Args[0]); at != nil && at.Kind() != types.Int {
				c.errorf(x.Args[0].Pos(), "tuple index must be int")
			}
			if sym.Owner != nil && c.curProc != nil && sym.Owner != c.curProc {
				c.addCapture(c.curProc, sym)
			}
			c.info.Calls[x] = &CallInfo{TupleIndex: true}
			c.info.Types[x.Fun] = tt
			return tt.Elem
		}
		// Array "call" syntax A(i) is also legal Chapel.
		if _, ok := sym.Type.(*types.ArrayType); ok {
			ix := &ast.IndexExpr{X: x.Fun, Lbrack: x.Lparen, Index: x.Args}
			t := c.indexExpr(ix)
			c.info.Calls[x] = &CallInfo{TypeMethod: "index"}
			return t
		}
		c.errorf(id.NamePos, "cannot call %s of type %s", id.Name, sym.Type)
		return nil
	case SymType:
		c.errorf(id.NamePos, "type %s is not callable; use new for classes", id.Name)
		return nil
	}
	return nil
}

func (c *checker) procCall(x *ast.CallExpr, sym *Symbol) types.Type {
	pt := sym.Type.(*types.ProcType)
	isIter := sym.Proc != nil && sym.Proc.IsIter
	if isIter && x != c.iterandCall {
		c.errorf(x.Lparen, "iterator %s can only be invoked as a serial loop iterand", sym.Name)
	}
	if len(x.Args) != len(pt.Params) {
		c.errorf(x.Lparen, "%s takes %d arguments, got %d", sym.Name, len(pt.Params), len(x.Args))
	}
	for i, a := range x.Args {
		at := c.expr(a)
		if i < len(pt.Params) && at != nil {
			p := pt.Params[i]
			if !types.AssignableTo(at, p.Type) {
				c.errorf(a.Pos(), "argument %d of %s: cannot pass %s as %s", i+1, sym.Name, at, p.Type)
			}
			if p.IsRef && !c.isLvalue(a) && at.Kind() != types.Array && at.Kind() != types.Domain {
				c.errorf(a.Pos(), "argument %d of %s must be assignable (ref intent)", i+1, sym.Name)
			}
		}
	}
	c.info.Calls[x] = &CallInfo{Target: sym, Iterator: isIter}
	return pt.Ret
}

func (c *checker) methodCall(x *ast.CallExpr, fe *ast.FieldExpr) types.Type {
	bt := c.expr(fe.X)
	if bt == nil {
		return nil
	}
	name := fe.Name.Name
	// Record/class methods.
	if rt, ok := bt.(*types.RecordType); ok {
		for _, m := range c.methodsOf(rt) {
			if m.Name == name {
				mt := m.Type.(*types.ProcType)
				if len(x.Args) != len(mt.Params) {
					c.errorf(x.Lparen, "%s.%s takes %d arguments, got %d", rt.Name, name, len(mt.Params), len(x.Args))
				}
				for i, a := range x.Args {
					at := c.expr(a)
					if i < len(mt.Params) && at != nil && !types.AssignableTo(at, mt.Params[i].Type) {
						c.errorf(a.Pos(), "argument %d of %s: cannot pass %s as %s", i+1, name, at, mt.Params[i].Type)
					}
				}
				c.info.Calls[x] = &CallInfo{Target: m, Method: true}
				c.info.Types[fe] = mt
				return mt.Ret
			}
		}
		c.errorf(fe.Name.NamePos, "%s has no method %s", rt.Name, name)
		return nil
	}
	// Built-in type methods.
	for _, a := range x.Args {
		c.expr(a)
	}
	record := func(t types.Type) types.Type {
		c.info.Calls[x] = &CallInfo{TypeMethod: name}
		c.info.Types[fe] = t
		return t
	}
	switch b := bt.(type) {
	case *types.AtomicType:
		need := func(n int) {
			if len(x.Args) != n {
				c.errorf(x.Lparen, "%s takes %d argument(s)", name, n)
			}
		}
		switch name {
		case "read":
			need(0)
			c.info.Calls[x] = &CallInfo{TypeMethod: "atomic:read"}
			return b.Elem
		case "write":
			need(1)
			c.info.Calls[x] = &CallInfo{TypeMethod: "atomic:write"}
			return types.VoidType
		case "add", "sub":
			need(1)
			c.info.Calls[x] = &CallInfo{TypeMethod: "atomic:" + name}
			return types.VoidType
		case "fetchAdd":
			need(1)
			c.info.Calls[x] = &CallInfo{TypeMethod: "atomic:fetchAdd"}
			return b.Elem
		}
		c.errorf(fe.Name.NamePos, "atomic has no method %s", name)
		return nil
	case *types.DomainType:
		switch name {
		case "expand", "translate", "interior", "exterior":
			return record(b)
		case "dim":
			return record(types.RangeVal)
		case "size":
			return record(types.IntType)
		}
	case *types.ArrayType:
		switch name {
		case "size":
			return record(types.IntType)
		case "reindex":
			return record(b)
		}
	case *types.RangeType:
		switch name {
		case "size", "length":
			return record(types.IntType)
		}
	}
	c.errorf(fe.Name.NamePos, "%s has no method %s", bt, name)
	return nil
}

func (c *checker) builtinCall(x *ast.CallExpr, sym *Symbol) types.Type {
	var argTs []types.Type
	for _, a := range x.Args {
		argTs = append(argTs, c.expr(a))
	}
	c.info.Calls[x] = &CallInfo{Builtin: sym.Name}
	need := func(n int) bool {
		if len(x.Args) != n {
			c.errorf(x.Lparen, "%s takes %d argument(s), got %d", sym.Name, n, len(x.Args))
			return false
		}
		return true
	}
	numeric1 := func() types.Type {
		if !need(1) || argTs[0] == nil {
			return types.RealType
		}
		if !types.IsNumeric(argTs[0]) {
			c.errorf(x.Args[0].Pos(), "%s requires a numeric argument, got %s", sym.Name, argTs[0])
		}
		return argTs[0]
	}
	switch sym.Name {
	case "writeln", "write":
		return types.VoidType
	case "sqrt", "cbrt", "exp", "log", "sin", "cos", "floor", "ceil":
		if need(1) && argTs[0] != nil && !types.IsNumeric(argTs[0]) {
			c.errorf(x.Args[0].Pos(), "%s requires a numeric argument", sym.Name)
		}
		return types.RealType
	case "abs", "sgn":
		return numeric1()
	case "min", "max":
		if len(x.Args) < 2 {
			c.errorf(x.Lparen, "%s takes at least 2 arguments", sym.Name)
			return types.IntType
		}
		t := argTs[0]
		for _, at := range argTs[1:] {
			if t != nil && at != nil {
				t = types.Common(t, at)
			}
		}
		return t
	case "getCurrentTime":
		return types.RealType
	case "assert":
		if need(1) && argTs[0] != nil && argTs[0].Kind() != types.Bool {
			c.errorf(x.Args[0].Pos(), "assert requires a bool")
		}
		return types.VoidType
	case "exit", "halt":
		return types.VoidType
	}
	return types.VoidType
}

// ------------------------------------------------------- type resolution

func (c *checker) resolveType(te ast.TypeExpr) types.Type {
	switch t := te.(type) {
	case *ast.NamedType:
		switch t.Name {
		case "int", "uint":
			if t.Width == 32 {
				return types.Int32Type
			}
			return types.IntType
		case "real":
			if t.Width == 32 {
				return types.Real32Type
			}
			return types.RealType
		case "bool":
			return types.BoolType
		case "string":
			return types.StringType
		case "void":
			return types.VoidType
		case "locale":
			return types.LocaleType
		}
		if sym := c.curScope.Lookup(t.Name); sym != nil && sym.Kind == SymType {
			return sym.Type
		}
		if rt, ok := c.info.Records[t.Name]; ok {
			return rt
		}
		c.errorf(t.NamePos, "undefined type %s", t.Name)
		return types.IntType
	case *ast.TupleType:
		cnt := c.evalConst(t.Count)
		n := 0
		if cnt == nil {
			c.errorf(t.CountPos, "tuple size must be a compile-time constant")
			n = 1
		} else {
			n = int(cnt.Int())
			if n < 1 {
				c.errorf(t.CountPos, "tuple size must be positive, got %d", n)
				n = 1
			}
		}
		return &types.TupleType{Count: n, Elem: c.resolveType(t.Elem)}
	case *ast.DomainType:
		r := c.evalConst(t.Rank)
		rank := 1
		if r == nil {
			c.errorf(t.DomPos, "domain rank must be a compile-time constant")
		} else {
			rank = int(r.Int())
			if rank < 1 || rank > 3 {
				c.errorf(t.DomPos, "domain rank must be 1..3, got %d", rank)
				rank = 1
			}
		}
		if t.Dist != "" && t.Dist != "Block" {
			c.errorf(t.DomPos, "unsupported distribution %q (only Block)", t.Dist)
		}
		return &types.DomainType{Rank: rank, Dist: t.Dist}
	case *ast.ArrayType:
		elem := c.resolveType(t.Elem)
		rank := len(t.Dom)
		domName := ""
		if len(t.Dom) == 1 {
			dt := c.expr(t.Dom[0])
			if dt != nil {
				switch d := dt.(type) {
				case *types.DomainType:
					rank = d.Rank
				case *types.RangeType:
					rank = 1
				default:
					c.errorf(t.Dom[0].Pos(), "array domain must be a domain or range, got %s", dt)
				}
			}
			if id, ok := t.Dom[0].(*ast.Ident); ok {
				domName = id.Name
			}
		} else {
			for _, d := range t.Dom {
				dt := c.expr(d)
				if dt != nil && dt.Kind() != types.Range {
					c.errorf(d.Pos(), "array dimension must be a range, got %s", dt)
				}
			}
		}
		return &types.ArrayType{Rank: rank, Elem: elem, DomName: domName}
	case *ast.RangeType:
		return types.RangeVal
	case *ast.AtomicType:
		elem := c.resolveType(t.Elem)
		if !types.IsNumeric(elem) && elem.Kind() != types.Bool {
			c.errorf(t.AtomicPos, "atomic requires a numeric or bool element, got %s", elem)
			elem = types.IntType
		}
		return &types.AtomicType{Elem: elem}
	}
	return types.IntType
}

// --------------------------------------------------------- const folding

// evalConst evaluates e as a compile-time constant (param context).
func (c *checker) evalConst(e ast.Expr) *ConstValue {
	if e == nil {
		return nil
	}
	if v, ok := c.info.Consts[e]; ok {
		return v
	}
	switch x := e.(type) {
	case *ast.IntLit:
		return IntConst(x.Value)
	case *ast.RealLit:
		return RealConst(x.Value)
	case *ast.BoolLit:
		return BoolConst(x.Value)
	case *ast.StringLit:
		return &ConstValue{T: types.StringType, S: x.Value}
	case *ast.Ident:
		sym := c.info.SymOf(x)
		if sym == nil {
			sym = c.curScope.Lookup(x.Name)
		}
		if sym != nil && sym.ConstVal != nil {
			return sym.ConstVal
		}
		return nil
	case *ast.UnaryExpr:
		v := c.evalConst(x.X)
		if v == nil {
			return nil
		}
		return foldUnary(x.Op, v)
	case *ast.BinaryExpr:
		l := c.evalConst(x.X)
		r := c.evalConst(x.Y)
		if l == nil || r == nil {
			return nil
		}
		return foldBinary(x.Op, l, r)
	}
	return nil
}

func foldUnary(op token.Kind, v *ConstValue) *ConstValue {
	switch op {
	case token.MINUS:
		switch v.T.Kind() {
		case types.Int:
			return IntConst(-v.I)
		case types.Real:
			return RealConst(-v.F)
		}
	case token.NOT:
		if v.T.Kind() == types.Bool {
			return BoolConst(!v.B)
		}
	}
	return nil
}

func foldBinary(op token.Kind, l, r *ConstValue) *ConstValue {
	lk, rk := l.T.Kind(), r.T.Kind()
	bothInt := lk == types.Int && rk == types.Int
	numeric := (lk == types.Int || lk == types.Real) && (rk == types.Int || rk == types.Real)
	switch op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT, token.POW:
		if !numeric {
			return nil
		}
		if bothInt {
			a, b := l.I, r.I
			switch op {
			case token.PLUS:
				return IntConst(a + b)
			case token.MINUS:
				return IntConst(a - b)
			case token.STAR:
				return IntConst(a * b)
			case token.SLASH:
				if b == 0 {
					return nil
				}
				return IntConst(a / b)
			case token.PERCENT:
				if b == 0 {
					return nil
				}
				return IntConst(a % b)
			case token.POW:
				v := int64(1)
				for i := int64(0); i < b; i++ {
					v *= a
				}
				return IntConst(v)
			}
		}
		a, b := l.Float(), r.Float()
		switch op {
		case token.PLUS:
			return RealConst(a + b)
		case token.MINUS:
			return RealConst(a - b)
		case token.STAR:
			return RealConst(a * b)
		case token.SLASH:
			if b == 0 {
				return nil
			}
			return RealConst(a / b)
		case token.POW:
			v := 1.0
			for i := 0; i < int(b); i++ {
				v *= a
			}
			return RealConst(v)
		}
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		if !numeric {
			return nil
		}
		a, b := l.Float(), r.Float()
		switch op {
		case token.EQ:
			return BoolConst(a == b)
		case token.NEQ:
			return BoolConst(a != b)
		case token.LT:
			return BoolConst(a < b)
		case token.LE:
			return BoolConst(a <= b)
		case token.GT:
			return BoolConst(a > b)
		case token.GE:
			return BoolConst(a >= b)
		}
	case token.AND:
		if lk == types.Bool && rk == types.Bool {
			return BoolConst(l.B && r.B)
		}
	case token.OR:
		if lk == types.Bool && rk == types.Bool {
			return BoolConst(l.B || r.B)
		}
	}
	return nil
}
