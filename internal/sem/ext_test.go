package sem

import (
	"testing"

	"repro/internal/types"
)

// Direct semantic tests for the extension features (iterators, atomics,
// distributed domains); end-to-end behavior is covered in internal/vm.

func TestIteratorSignatureChecks(t *testing.T) {
	info := check(t, `
iter countTo(n: int): int {
  var i = 1;
  while i <= n {
    yield i;
    i += 1;
  }
}
proc main() {
  var s = 0;
  for x in countTo(5) { s += x; }
}
`)
	var iterSym *Symbol
	for _, p := range info.Procs {
		if p.Name == "countTo" {
			iterSym = p
		}
	}
	if iterSym == nil || iterSym.Proc == nil || !iterSym.Proc.IsIter {
		t.Fatal("iterator symbol not collected")
	}
	// The loop call is flagged as an iterator invocation.
	found := false
	for _, ci := range info.Calls {
		if ci.Iterator && ci.Target == iterSym {
			found = true
		}
	}
	if !found {
		t.Error("iterator call not flagged")
	}
	// The loop variable takes the yield type.
	for id, sym := range info.Defs {
		if id.Name == "x" && sym.Owner != nil && sym.Owner.Name == "main" {
			if sym.Type.Kind() != types.Int {
				t.Errorf("loop var type = %v", sym.Type)
			}
		}
	}
}

func TestIteratorNeedsYieldType(t *testing.T) {
	checkErr(t, `
iter f() { yield 1; }
proc main() { for x in f() { } }
`, "yield type")
}

func TestIteratorCompositionTypes(t *testing.T) {
	check(t, `
iter inner(n: int): real {
  for i in 1..n { yield i * 0.5; }
}
iter outer2(n: int): real {
  for v in inner(n) { yield v * 2.0; }
}
proc main() {
  var s = 0.0;
  for x in outer2(3) { s += x; }
}
`)
}

func TestAtomicTypeResolution(t *testing.T) {
	info := check(t, `
var c: atomic int;
var F: [0..#4] atomic real;
proc main() {
  c.add(1);
  var v = c.read();
  F[0].write(1.5);
  var w = F[0].read();
  writeln(v, w);
}
`)
	c := globalSym(info, "c")
	at, ok := c.Type.(*types.AtomicType)
	if !ok || at.Elem.Kind() != types.Int {
		t.Fatalf("c type = %v", c.Type)
	}
	if at.String() != "atomic int" {
		t.Errorf("display = %q", at.String())
	}
	// read() yields the element type.
	for _, ci := range info.Calls {
		if ci.TypeMethod == "atomic:read" {
			return
		}
	}
	t.Error("atomic:read not resolved")
}

func TestDmappedDomainResolution(t *testing.T) {
	info := check(t, `
var D: domain(1) dmapped Block = {0..#8};
var A: [D] real;
proc main() { A[0] = 1.0; }
`)
	d := globalSym(info, "D")
	dt, ok := d.Type.(*types.DomainType)
	if !ok || dt.Dist != "Block" {
		t.Fatalf("D type = %v", d.Type)
	}
	checkErr(t, `
var D: domain(1) dmapped Cyclic = {0..#8};
proc main() { }
`, "unsupported distribution")
}
