package benchprog

import (
	"fmt"
	"strings"
)

// LuleshVariant selects the optimization points of paper §V.C.
type LuleshVariant struct {
	// P1..P3 keep the `param` keyword at the three loop positions of the
	// Fig. 5 hot loop in CalcFBHourglassForceForElems (compile-time
	// unrolling). The paper's "Original" has all three.
	P1, P2, P3 bool
	// U2/U3 manually unroll loops 2/3 in the source (overrides P2/P3).
	U2, U3 bool
	// VG applies Variable Globalization: determ/sigxx/dvdx/x8n... move
	// from per-call locals (heap-allocated every call) to module scope.
	VG bool
	// CENN rewrites CalcElemNodeNormals to assign intermediate results
	// directly into the passed-in tuples instead of building and adding
	// temporary tuples.
	CENN bool
}

// LuleshOriginal is the benchmark as distributed (params at all three
// positions, no manual optimizations).
var LuleshOriginal = LuleshVariant{P1: true, P2: true, P3: true}

// LuleshBest is the paper's best case: P1 + VG + CENN.
var LuleshBest = LuleshVariant{P1: true, VG: true, CENN: true}

// Tag renders the paper's variant tag ("P 1", "P1+U2", "VG", ...).
func (v LuleshVariant) Tag() string {
	var parts []string
	if v.P1 {
		parts = append(parts, "P1")
	}
	if v.U2 {
		parts = append(parts, "U2")
	} else if v.P2 {
		parts = append(parts, "P2")
	}
	if v.U3 {
		parts = append(parts, "U3")
	} else if v.P3 {
		parts = append(parts, "P3")
	}
	if v.VG {
		parts = append(parts, "VG")
	}
	if v.CENN {
		parts = append(parts, "CENN")
	}
	if len(parts) == 0 {
		return "0 params"
	}
	return strings.Join(parts, "+")
}

// LuleshConfig is the scaled problem size (paper: 15 elements per edge;
// we run a 1-D element space of comparable element count scaled down).
type LuleshConfig struct {
	NumElems int
	NSteps   int
}

// DefaultLulesh is the scaled default.
var DefaultLulesh = LuleshConfig{NumElems: 64, NSteps: 3}

// Configs returns the config-const override map.
func (c LuleshConfig) Configs() map[string]string {
	return map[string]string{
		"numElems": fmt.Sprint(c.NumElems),
		"nSteps":   fmt.Sprint(c.NSteps),
	}
}

// LULESHSource generates the MiniChapel LULESH port for a variant.
func LULESHSource(v LuleshVariant) string {
	var b strings.Builder
	b.WriteString(luleshHeader)

	// Variable Globalization: hoist the per-call local arrays.
	if v.VG {
		b.WriteString(`
// VG: hoisted locals (no dynamic allocation per call).
var determ: [Elems] real;
var sigxx: [Elems] real;
var dvdx: [Elems] 8*real;
var dvdy: [Elems] 8*real;
var dvdz: [Elems] 8*real;
var x8n: [Elems] 8*real;
var y8n: [Elems] 8*real;
var z8n: [Elems] 8*real;

proc CalcVolumeForceForElems() {
`)
	} else {
		b.WriteString(`
proc CalcVolumeForceForElems() {
  // Local arrays with domains dynamically allocated on the heap every
  // time the function is called (paper §V.C, the determ/dvdx rows).
  var determ: [Elems] real;
  var sigxx: [Elems] real;
`)
	}
	b.WriteString(`  forall e in Elems {
    sigxx[e] = 0.0 - pressure[e];
    determ[e] = volo[e];
  }
  IntegrateStressForElems(sigxx, determ);
  CalcHourglassControlForElems(determ);
}
`)

	b.WriteString(`
proc IntegrateStressForElems(sigxx: [Elems] real, determ: [Elems] real) {
  forall e in Elems {
    var b_x: 8*real;
    var b_y: 8*real;
    var b_z: 8*real;
    CalcElemNodeNormals(b_x, b_y, b_z, e);
    determ[e] = volo[e] * (1.0 + 0.01 * sigxx[e]);
    SumElemStressesToNodeForces(b_x, b_y, b_z, e);
  }
}

proc SumElemStressesToNodeForces(ref bx: 8*real, ref by2: 8*real, ref bz: 8*real, e: int) {
  var fxe = 0.0;
  var fye = 0.0;
  var fze = 0.0;
  for param k in 1..8 {
    fxe += bx(k) * 0.125;
    fye += by2(k) * 0.125;
    fze += bz(k) * 0.125;
  }
  fx[e].add(fxe);
  fy[e].add(fye);
  fz[e].add(fze);
}
`)

	// CalcElemNodeNormals: original vs CENN-rewritten.
	if v.CENN {
		b.WriteString(`
// CENN: partial results assigned directly into the passed-in tuples —
// no temporary tuple constructions/destructions in the hot loop.
proc CalcElemNodeNormals(ref bx: 8*real, ref by2: 8*real, ref bz: 8*real, e: int) {
  proc ElemFaceNormal(n1: int, n2: int, n3: int, n4: int, ref dest: 8*real) {
    var ax = (x[e] + n1 * 0.03125) * 0.25;
    var ay = (y[e] + n2 * 0.03125) * 0.25;
    var az = (z[e] + n3 * 0.03125) * 0.25;
    var bx2 = (x[e] - n2 * 0.015625) * 0.25;
    var by3 = (y[e] - n4 * 0.015625) * 0.25;
    var bz3 = (z[e] - n1 * 0.015625) * 0.25;
    var cx = ay * bz3 - az * by3;
    var cy = az * bx2 - ax * bz3;
    var cz = ax * by3 - ay * bx2;
    var area = cx * 0.5 + cy * 0.5 + cz * 0.5 + n4 * 0.002;
    dest(n1) += area;
    dest(n2) += area;
    dest(n3) += area;
    dest(n4) += area;
  }
  ElemFaceNormal(1, 2, 3, 4, bx);
  ElemFaceNormal(5, 6, 7, 8, bx);
  ElemFaceNormal(1, 2, 5, 6, bx);
  ElemFaceNormal(3, 4, 7, 8, by2);
  ElemFaceNormal(1, 4, 5, 8, by2);
  ElemFaceNormal(2, 3, 6, 7, by2);
  ElemFaceNormal(2, 4, 6, 8, bz);
  ElemFaceNormal(1, 3, 5, 7, bz);
  ElemFaceNormal(1, 2, 7, 8, bz);
  ElemFaceNormal(3, 4, 5, 6, bz);
  ElemFaceNormal(1, 4, 6, 7, bx);
  ElemFaceNormal(2, 3, 5, 8, by2);
}
`)
	} else {
		b.WriteString(`
proc CalcElemNodeNormals(ref bx: 8*real, ref by2: 8*real, ref bz: 8*real, e: int) {
  // Partial results are computed into temporary tuples by the nested
  // function, then added up through tuple addition — tuple
  // constructions and destructions nested deep inside a big loop.
  proc ElemFaceNormal(n1: int, n2: int, n3: int, n4: int): 8*real {
    var partial: 8*real;
    var ax = (x[e] + n1 * 0.03125) * 0.25;
    var ay = (y[e] + n2 * 0.03125) * 0.25;
    var az = (z[e] + n3 * 0.03125) * 0.25;
    var bx2 = (x[e] - n2 * 0.015625) * 0.25;
    var by3 = (y[e] - n4 * 0.015625) * 0.25;
    var bz3 = (z[e] - n1 * 0.015625) * 0.25;
    var cx = ay * bz3 - az * by3;
    var cy = az * bx2 - ax * bz3;
    var cz = ax * by3 - ay * bx2;
    var area = cx * 0.5 + cy * 0.5 + cz * 0.5 + n4 * 0.002;
    partial(n1) = area;
    partial(n2) = area;
    partial(n3) = area;
    partial(n4) = area;
    return partial;
  }
  bx = bx + ElemFaceNormal(1, 2, 3, 4);
  bx = bx + ElemFaceNormal(5, 6, 7, 8);
  bx = bx + ElemFaceNormal(1, 2, 5, 6);
  by2 = by2 + ElemFaceNormal(3, 4, 7, 8);
  by2 = by2 + ElemFaceNormal(1, 4, 5, 8);
  by2 = by2 + ElemFaceNormal(2, 3, 6, 7);
  bz = bz + ElemFaceNormal(2, 4, 6, 8);
  bz = bz + ElemFaceNormal(1, 3, 5, 7);
  bz = bz + ElemFaceNormal(1, 2, 7, 8);
  bz = bz + ElemFaceNormal(3, 4, 5, 6);
  bx = bx + ElemFaceNormal(1, 4, 6, 7);
  by2 = by2 + ElemFaceNormal(2, 3, 5, 8);
}
`)
	}

	// CalcHourglassControlForElems.
	if v.VG {
		b.WriteString(`
proc CalcHourglassControlForElems(determ0: [Elems] real) {
`)
	} else {
		b.WriteString(`
proc CalcHourglassControlForElems(determ0: [Elems] real) {
  var dvdx: [Elems] 8*real;
  var dvdy: [Elems] 8*real;
  var dvdz: [Elems] 8*real;
  var x8n: [Elems] 8*real;
  var y8n: [Elems] 8*real;
  var z8n: [Elems] 8*real;
`)
	}
	b.WriteString(`  forall e in Elems {
    for param k in 1..8 {
      x8n[e](k) = x[e] * 0.1 + k * 0.01;
      y8n[e](k) = y[e] * 0.1 + k * 0.02;
      z8n[e](k) = z[e] * 0.1 + k * 0.03;
      dvdx[e](k) = x8n[e](k) * 0.25 + 0.05;
      dvdy[e](k) = y8n[e](k) * 0.25 + 0.05;
      dvdz[e](k) = z8n[e](k) * 0.25 + 0.05;
    }
  }
  CalcFBHourglassForceForElems(determ0, dvdx, dvdy, dvdz, x8n, y8n, z8n);
}
`)

	// CalcFBHourglassForceForElems — the Fig. 5 hot loop with the three
	// variant loop positions.
	b.WriteString(`
proc CalcFBHourglassForceForElems(determ0: [Elems] real,
    dvdx0: [Elems] 8*real, dvdy0: [Elems] 8*real, dvdz0: [Elems] 8*real,
    x8n0: [Elems] 8*real, y8n0: [Elems] 8*real, z8n0: [Elems] 8*real) {
  forall e in Elems {
    var hgfx: 8*real;
    var hgfy: 8*real;
    var hgfz: 8*real;
    var hourgam: 8*(4*real);
    var volinv = 1.0 / (determ0[e] + 0.5);
`)
	b.WriteString(fig5Loop(v))
	b.WriteString(`    var coefficient = 0.01 * elemMass[e] * volinv;
    CalcElemFBHourglassForce(hourgam, coefficient, e, hgfx, hgfy, hgfz);
    fx[e].add(hgfx(1) + hgfx(5));
    fy[e].add(hgfy(2) + hgfy(6));
    fz[e].add(hgfz(3) + hgfz(7));
  }
}
`)

	b.WriteString(luleshTail)
	return b.String()
}

// LuleshKernelSource generates the Table VII workload in isolation: the
// Fig. 5 hourglass loop nest from CalcFBHourglassForceForElems, run
// serially over the element space so that the measured work is the loop
// nest itself (the quantity Table VII's param/unroll study varies)
// rather than tasking overhead. The same LuleshVariant P/U switches
// select the loop forms.
//
// The data layout is the original C LULESH one — flat rank-1 real
// arrays indexed x8n[8*e + k] (CalcFBHourglassForceForElems uses
// x8n[i3+k]) — rather than the Chapel port's arrays-of-8-tuples. The
// per-element body lives in its own proc so the unrolled variants
// inflate that function, not main.
func LuleshKernelSource(v LuleshVariant) string {
	var b strings.Builder
	b.WriteString(`// LULESH hourglass kernel — the Fig. 5 loop nest in isolation (Table VII).
config const numElems = 64;
config const nSteps = 2;

var Elems: domain(1) = {0..#numElems};
var EIdx: domain(1) = {0..#(8 * numElems)};
var GIdx: domain(1) = {0..#32};
var gamma: [GIdx] real;
var determ0: [Elems] real;
var x8n0: [EIdx] real;
var y8n0: [EIdx] real;
var z8n0: [EIdx] real;
var dvdx0: [EIdx] real;
var dvdy0: [EIdx] real;
var dvdz0: [EIdx] real;
var hourgam: [GIdx] real;
var hgsum: [Elems] real;

proc hgElem(e: int) {
  var base = 8 * e;
  var volinv = 1.0 / (determ0[e] + 0.5);
`)
	b.WriteString(fig5FlatLoop(v))
	b.WriteString(`  var s = 0.0;
  for i in 1..4 {
    for j in 1..8 {
      s += hourgam[8 * (i - 1) + j - 1];
    }
  }
  hgsum[e] = hgsum[e] * 0.5 + s;
}

proc main() {
  for i in 1..4 {
    for j in 1..8 {
      gamma[8 * (i - 1) + j - 1] = (i * 2 - 5) * 0.125 * (j - 4.5) * 0.25;
    }
  }
  for e in Elems {
    determ0[e] = 1.0 + e * 0.001;
    for k in 1..8 {
      x8n0[8 * e + k - 1] = e * 0.1 + k * 0.01;
      y8n0[8 * e + k - 1] = e * 0.1 + k * 0.02;
      z8n0[8 * e + k - 1] = e * 0.1 + k * 0.03;
      dvdx0[8 * e + k - 1] = x8n0[8 * e + k - 1] * 0.25 + 0.05;
      dvdy0[8 * e + k - 1] = y8n0[8 * e + k - 1] * 0.25 + 0.05;
      dvdz0[8 * e + k - 1] = z8n0[8 * e + k - 1] * 0.25 + 0.05;
    }
  }
  for step in 1..nSteps {
    for e in Elems {
      hgElem(e);
    }
  }
  var tot = 0.0;
  for e in Elems {
    tot += hgsum[e];
  }
  writeln("hg kernel checksum ", tot);
}
`)
	return b.String()
}

// fig5FlatLoop renders the Fig. 5 nest over the flat kernel layout with
// the requested param/serial/manually-unrolled form at each position
// (indent matches the proc body of LuleshKernelSource).
func fig5FlatLoop(v LuleshVariant) string {
	var b strings.Builder
	loop1 := "for i in 1..4 {"
	if v.P1 {
		loop1 = "for param i in 1..4 {"
	}
	fmt.Fprintf(&b, "  %s\n", loop1)
	b.WriteString("    var gbase = 8 * (i - 1);\n")
	b.WriteString("    var hourmodx = 0.0;\n")
	b.WriteString("    var hourmody = 0.0;\n")
	b.WriteString("    var hourmodz = 0.0;\n")

	// jx renders the flat offsets for iteration j: runtime loops index
	// with the loop variable, unrolled bodies get the literal offset.
	body2 := func(ej, gj string) []string {
		return []string{
			fmt.Sprintf("hourmodx += x8n0[%s] * gamma[%s];", ej, gj),
			fmt.Sprintf("hourmody += y8n0[%s] * gamma[%s];", ej, gj),
			fmt.Sprintf("hourmodz += z8n0[%s] * gamma[%s];", ej, gj),
		}
	}
	body3 := func(ej, gj string) []string {
		return []string{
			fmt.Sprintf("hourgam[%s] = gamma[%s] - volinv * (dvdx0[%s] * hourmodx + dvdy0[%s] * hourmody + dvdz0[%s] * hourmodz);", gj, gj, ej, ej, ej),
		}
	}
	emitLoop := func(param, unroll bool, body func(ej, gj string) []string) {
		if unroll {
			for j := 1; j <= 8; j++ {
				ej := fmt.Sprintf("base + %d", j-1)
				gj := fmt.Sprintf("gbase + %d", j-1)
				for _, line := range body(ej, gj) {
					fmt.Fprintf(&b, "    %s\n", line)
				}
			}
			return
		}
		kw := "for j in 1..8 {"
		if param {
			kw = "for param j in 1..8 {"
		}
		fmt.Fprintf(&b, "    %s\n", kw)
		for _, line := range body("base + j - 1", "gbase + j - 1") {
			fmt.Fprintf(&b, "      %s\n", line)
		}
		b.WriteString("    }\n")
	}
	emitLoop(v.P2, v.U2, body2)
	emitLoop(v.P3, v.U3, body3)
	b.WriteString("  }\n")
	return b.String()
}

// LULESHKernel wraps LuleshKernelSource as a runnable Program.
func LULESHKernel(v LuleshVariant) Program {
	return Program{Name: "lulesh_hg_" + sanitize(v.Tag()), Source: LuleshKernelSource(v), Optimized: v != LuleshOriginal}
}

// fig5Loop renders the paper's Fig. 5 loop nest with the requested
// param/serial/manually-unrolled form at each position.
func fig5Loop(v LuleshVariant) string {
	var b strings.Builder
	loop1 := "for i in 1..4 {"
	if v.P1 {
		loop1 = "for param i in 1..4 {"
	}
	fmt.Fprintf(&b, "    %s\n", loop1)
	b.WriteString("      var hourmodx = 0.0;\n")
	b.WriteString("      var hourmody = 0.0;\n")
	b.WriteString("      var hourmodz = 0.0;\n")

	body2 := func(j string) []string {
		return []string{
			fmt.Sprintf("hourmodx += x8n0[e](%s) * gamma[i, %s];", j, j),
			fmt.Sprintf("hourmody += y8n0[e](%s) * gamma[i, %s];", j, j),
			fmt.Sprintf("hourmodz += z8n0[e](%s) * gamma[i, %s];", j, j),
		}
	}
	body3 := func(j string) []string {
		return []string{
			fmt.Sprintf("hourgam(%s)(i) = gamma[i, %s] - volinv * (dvdx0[e](%s) * hourmodx + dvdy0[e](%s) * hourmody + dvdz0[e](%s) * hourmodz);", j, j, j, j, j),
		}
	}
	emitLoop := func(param, unroll bool, body func(string) []string) {
		if unroll {
			for j := 1; j <= 8; j++ {
				for _, line := range body(fmt.Sprint(j)) {
					fmt.Fprintf(&b, "      %s\n", line)
				}
			}
			return
		}
		kw := "for j in 1..8 {"
		if param {
			kw = "for param j in 1..8 {"
		}
		fmt.Fprintf(&b, "      %s\n", kw)
		for _, line := range body("j") {
			fmt.Fprintf(&b, "        %s\n", line)
		}
		b.WriteString("      }\n")
	}
	emitLoop(v.P2, v.U2, body2)
	emitLoop(v.P3, v.U3, body3)
	b.WriteString("    }\n")
	return b.String()
}

const luleshHeader = `// LULESH — shock hydrodynamics proxy app, MiniChapel port.
config const numElems = 64;
config const nSteps = 2;

var Elems: domain(1) = {0..#numElems};
var Nodes: domain(1) = {0..#(numElems + 1)};
var gammaSpace: domain(2) = {1..4, 1..8};

var x: [Nodes] real;
var y: [Nodes] real;
var z: [Nodes] real;
var xd: [Nodes] real;
var yd: [Nodes] real;
var zd: [Nodes] real;
var fx: [Nodes] atomic real;
var fy: [Nodes] atomic real;
var fz: [Nodes] atomic real;
var nodalMass: [Nodes] real;

var xdd: [Nodes] real;
var ydd: [Nodes] real;
var zdd: [Nodes] real;
var volo: [Elems] real;
var elemMass: [Elems] real;
var pressure: [Elems] real;
var q: [Elems] real;
var gamma: [gammaSpace] real;
`

const luleshTail = `
proc CalcElemFBHourglassForce(hourgam: 8*(4*real), coefficient: real, e: int,
    ref hgfx: 8*real, ref hgfy: 8*real, ref hgfz: 8*real) {
  var hx: 4*real;
  var hy: 4*real;
  var hz: 4*real;
  for param i in 1..4 {
    var sx = 0.0;
    var sy = 0.0;
    var sz = 0.0;
    for param j in 1..8 {
      sx += hourgam(j)(i) * xd[e] * (0.1 * j);
      sy += hourgam(j)(i) * yd[e] * (0.1 * j);
      sz += hourgam(j)(i) * zd[e] * (0.1 * j);
    }
    hx(i) = sx;
    hy(i) = sy;
    hz(i) = sz;
  }
  for param i in 1..8 {
    var shx = coefficient * (hourgam(i)(1) * hx(1) + hourgam(i)(2) * hx(2) + hourgam(i)(3) * hx(3) + hourgam(i)(4) * hx(4));
    var shy = coefficient * (hourgam(i)(1) * hy(1) + hourgam(i)(2) * hy(2) + hourgam(i)(3) * hy(3) + hourgam(i)(4) * hy(4));
    var shz = coefficient * (hourgam(i)(1) * hz(1) + hourgam(i)(2) * hz(2) + hourgam(i)(3) * hz(3) + hourgam(i)(4) * hz(4));
    hgfx(i) = shx;
    hgfy(i) = shy;
    hgfz(i) = shz;
  }
}

proc CalcForceForNodes() {
  forall n in Nodes {
    fx[n].write(0.0);
    fy[n].write(0.0);
    fz[n].write(0.0);
  }
  CalcVolumeForceForElems();
}

proc CalcAccelerationForNodes() {
  forall n in Nodes {
    xdd[n] = fx[n].read() / nodalMass[n];
    ydd[n] = fy[n].read() / nodalMass[n];
    zdd[n] = fz[n].read() / nodalMass[n];
  }
}

proc CalcVelocityForNodes() {
  forall n in Nodes {
    xd[n] = xd[n] + xdd[n] * 0.001;
    yd[n] = yd[n] + ydd[n] * 0.001;
    zd[n] = zd[n] + zdd[n] * 0.001;
  }
}

proc CalcPositionForNodes() {
  forall n in Nodes {
    x[n] = x[n] + xd[n] * 0.01;
    y[n] = y[n] + yd[n] * 0.01;
    z[n] = z[n] + zd[n] * 0.01;
  }
}

proc ApplyBoundaryConditions() {
  forall n in Nodes {
    if n == 0 {
      xd[n] = 0.0;
      yd[n] = 0.0;
      zd[n] = 0.0;
    }
  }
}

proc LagrangeNodal() {
  CalcForceForNodes();
  CalcAccelerationForNodes();
  ApplyBoundaryConditions();
  CalcVelocityForNodes();
  CalcPositionForNodes();
}

proc CalcLagrangeElements() {
  forall e in Elems {
    volo[e] = volo[e] * 0.999 + 0.001;
  }
}

proc CalcQForElems() {
  forall e in Elems {
    q[e] = abs(volo[e] - 1.0) * 0.2;
  }
}

proc ApplyMaterialPropertiesForElems() {
  forall e in Elems {
    var c = sqrt(abs(volo[e]) + 0.1);
    pressure[e] = c * 0.05 + pressure[e] * 0.5 + q[e] * 0.1;
  }
}

proc LagrangeElements() {
  CalcLagrangeElements();
  CalcQForElems();
  ApplyMaterialPropertiesForElems();
}

proc LagrangeLeapFrog() {
  LagrangeNodal();
  LagrangeElements();
}

proc initMesh() {
  forall e in Elems {
    volo[e] = 1.0 + e * 0.001;
    elemMass[e] = 1.0;
    pressure[e] = 0.1;
  }
  forall n in Nodes {
    x[n] = n * 0.01;
    y[n] = n * 0.02;
    z[n] = n * 0.015;
    xd[n] = 0.1;
    yd[n] = 0.1;
    zd[n] = 0.1;
    nodalMass[n] = 1.0;
  }
  for (i, j) in gammaSpace {
    gamma[i, j] = (i * 2 - 5) * 0.125 * (j - 4.5) * 0.25;
  }
}

proc main() {
  initMesh();
  for step in 1..nSteps {
    LagrangeLeapFrog();
  }
  var tot = 0.0;
  for n in Nodes {
    tot += x[n];
  }
  writeln("LULESH checksum ok ", tot >= 0.0 || tot < 0.0);
}
`
