package benchprog

import "fmt"

// CLOMPConfig holds the benchmark's command-line parameters (paper §V.B:
// "the number of parts and the number of zones per part are determined on
// the command line").
type CLOMPConfig struct {
	NumParts     int
	ZonesPerPart int
	FlopScale    int
	TimeScale    int // outer cycles through parallel_cycle
}

// Configs returns the VM config-const override map.
func (c CLOMPConfig) Configs() map[string]string {
	return map[string]string{
		"CLOMP_numParts":     fmt.Sprint(c.NumParts),
		"CLOMP_zonesPerPart": fmt.Sprint(c.ZonesPerPart),
		"CLOMP_flopScale":    fmt.Sprint(c.FlopScale),
		"CLOMP_timeScale":    fmt.Sprint(c.TimeScale),
	}
}

// CLOMPSizePoints are the four problem sizes of paper Table V
// (1024/64,000 · 65536/10 · 12/640,000 · 65536/6400), scaled by ~1/64 for
// the simulated substrate while preserving each point's parts:zones
// character (that ratio drives where the flat-array rewrite pays off).
var CLOMPSizePoints = []CLOMPConfig{
	{NumParts: 64, ZonesPerPart: 500, FlopScale: 1, TimeScale: 2},
	{NumParts: 4096, ZonesPerPart: 2, FlopScale: 1, TimeScale: 2},
	{NumParts: 12, ZonesPerPart: 3000, FlopScale: 1, TimeScale: 2},
	{NumParts: 1024, ZonesPerPart: 60, FlopScale: 1, TimeScale: 2},
}

// CLOMPSizeLabels names the size points with the paper's original sizes.
var CLOMPSizeLabels = []string{
	"1024/64,000", "65536/10", "12/640,000", "65536/6400",
}

// CLOMPSource returns the MiniChapel port of CLOMP (the C version of the
// Livermore OpenMP benchmark, ported to Chapel per paper §V.B).
//
// The original keeps the data in nested structures: a partArray of Part
// class instances, each holding a zoneArray of Zone records. The
// optimized version (Johnson & Hollingsworth) replaces the nested
// structures with one flat 2-D array: "Accessing elements in one big
// array is much faster than through nested structures."
func CLOMPSource(optimized bool) string {
	if optimized {
		return clompOptimized
	}
	return clompOriginal
}

const clompHeader = `// CLOMP — Livermore OpenMP benchmark, MiniChapel port.
config const CLOMP_numParts = 16;
config const CLOMP_zonesPerPart = 64;
config const CLOMP_flopScale = 1;
config const CLOMP_timeScale = 4;

var partSpace: domain(1) = {0..#CLOMP_numParts};
var zoneSpace: domain(1) = {0..#CLOMP_zonesPerPart};
`

const clompOriginal = clompHeader + `
record Zone {
  var value: real;
}

class Part {
  var zoneArray: [zoneSpace] Zone;
  var residue: real;
  var deposit: real;
}

var partArray: [partSpace] Part;

proc update_part(pi: int, deposit0: real) {
  var p = partArray[pi];
  var remaining_deposit = deposit0;
  for z in zoneSpace {
    var deposit = remaining_deposit * 0.2 * CLOMP_flopScale;
    p.zoneArray[z].value = p.zoneArray[z].value * 0.99 + deposit;
    remaining_deposit = remaining_deposit - deposit;
  }
  p.residue = remaining_deposit;
}

proc calc_deposit(): real {
  var residue_total = 0.0;
  for i in partSpace {
    residue_total += partArray[i].residue;
  }
  return residue_total * 0.5 / CLOMP_numParts + 1.0;
}

proc parallel_module1() {
  var deposit0 = calc_deposit();
  forall i in partSpace {
    partArray[i].deposit = deposit0;
    update_part(i, deposit0);
  }
}

proc parallel_module2() {
  for l in 1..2 {
    var deposit0 = calc_deposit();
    forall i in partSpace {
      partArray[i].deposit = deposit0;
      update_part(i, deposit0);
    }
  }
}

proc parallel_module3() {
  for l in 1..3 {
    var deposit0 = calc_deposit();
    forall i in partSpace {
      partArray[i].deposit = deposit0;
      update_part(i, deposit0);
    }
  }
}

proc parallel_module4() {
  for l in 1..4 {
    var deposit0 = calc_deposit();
    forall i in partSpace {
      partArray[i].deposit = deposit0;
      update_part(i, deposit0);
    }
  }
}

proc parallel_cycle() {
  parallel_module1();
  parallel_module2();
  parallel_module3();
  parallel_module4();
}

proc do_parallel_version() {
  for cycle in 1..CLOMP_timeScale {
    parallel_cycle();
  }
}

proc reinitialize() {
  forall i in partSpace {
    for z in zoneSpace {
      partArray[i].zoneArray[z].value = 0.0;
    }
    partArray[i].residue = 1.0;
    partArray[i].deposit = 0.0;
  }
}

proc main() {
  for i in partSpace {
    partArray[i] = new Part();
  }
  reinitialize();
  do_parallel_version();
  var check = calc_deposit();
  writeln("CLOMP checksum ", check > 0.0);
}
`

const clompOptimized = clompHeader + `
// Optimized (Johnson & Hollingsworth): one large flat 2-D array holds the
// zone values; the Part objects remain for per-part bookkeeping.
record Zone {
  var value: real;
}

class Part {
  var residue: real;
  var deposit: real;
}

var partArray: [partSpace] Part;
var flatSpace: domain(2) = {0..#CLOMP_numParts, 0..#CLOMP_zonesPerPart};
var zoneValues: [flatSpace] real;

proc update_part(pi: int, deposit0: real) {
  var p = partArray[pi];
  var remaining_deposit = deposit0;
  for z in zoneSpace {
    var deposit = remaining_deposit * 0.2 * CLOMP_flopScale;
    zoneValues[pi, z] = zoneValues[pi, z] * 0.99 + deposit;
    remaining_deposit = remaining_deposit - deposit;
  }
  p.residue = remaining_deposit;
}

proc calc_deposit(): real {
  var residue_total = 0.0;
  for i in partSpace {
    residue_total += partArray[i].residue;
  }
  return residue_total * 0.5 / CLOMP_numParts + 1.0;
}

proc parallel_module1() {
  var deposit0 = calc_deposit();
  forall i in partSpace {
    partArray[i].deposit = deposit0;
    update_part(i, deposit0);
  }
}

proc parallel_module2() {
  for l in 1..2 {
    var deposit0 = calc_deposit();
    forall i in partSpace {
      partArray[i].deposit = deposit0;
      update_part(i, deposit0);
    }
  }
}

proc parallel_module3() {
  for l in 1..3 {
    var deposit0 = calc_deposit();
    forall i in partSpace {
      partArray[i].deposit = deposit0;
      update_part(i, deposit0);
    }
  }
}

proc parallel_module4() {
  for l in 1..4 {
    var deposit0 = calc_deposit();
    forall i in partSpace {
      partArray[i].deposit = deposit0;
      update_part(i, deposit0);
    }
  }
}

proc parallel_cycle() {
  parallel_module1();
  parallel_module2();
  parallel_module3();
  parallel_module4();
}

proc do_parallel_version() {
  for cycle in 1..CLOMP_timeScale {
    parallel_cycle();
  }
}

proc reinitialize() {
  forall i in partSpace {
    for z in zoneSpace {
      zoneValues[i, z] = 0.0;
    }
    partArray[i].residue = 1.0;
    partArray[i].deposit = 0.0;
  }
}

proc main() {
  for i in partSpace {
    partArray[i] = new Part();
  }
  reinitialize();
  do_parallel_version();
  var check = calc_deposit();
  writeln("CLOMP checksum ", check > 0.0);
}
`
