package benchprog_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/vm"
)

// commMode is one setting of the communication-runtime knobs.
type commMode struct {
	name      string
	aggregate bool
	cacheCap  int // 0 = default, -1 = cache disabled
	inspector bool
}

var commModes = []commMode{
	{name: "direct"},
	{name: "comm-aggregate", aggregate: true},
	{name: "comm-aggregate/no-cache", aggregate: true, cacheCap: -1},
	{name: "comm-inspector", aggregate: true, inspector: true},
}

// TestHaloDeterminism runs the halo benchmark twice with an identical
// configuration and asserts the runs are indistinguishable: same output,
// same VM counters, and — the regression this test pins — identical
// comm.Stats renderings. The rendering goes through sorted keys
// (VarNames/SortedPairs); a formatter ranging over the PerVar/Pairs maps
// directly would flake here.
func TestHaloDeterminism(t *testing.T) {
	run := func() (string, vm.Stats) {
		res, err := benchprog.Halo().Compile(compile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		cfg := vm.DefaultConfig()
		cfg.Stdout = &out
		cfg.Configs = benchprog.DefaultHalo.Configs()
		cfg.NumLocales = 4
		cfg.MaxCycles = 3_000_000_000
		cfg.CommAggregate = true
		cfg.CommPlan = analyze.CommPlan(res.Prog)
		stats, err := vm.New(res.Prog, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), stats
	}
	out1, s1 := run()
	out2, s2 := run()
	if out1 != out2 {
		t.Errorf("program output differs between identical runs:\n run 1: %q\n run 2: %q", out1, out2)
	}
	if s1.Agg == nil || s2.Agg == nil {
		t.Fatal("aggregated runs carry no comm runtime stats")
	}
	r1, r2 := s1.Agg.Render(), s2.Agg.Render()
	if r1 != r2 {
		t.Errorf("comm.Stats renderings differ between identical runs:\n run 1:\n%s\n run 2:\n%s", r1, r2)
	}
	if s1.WallCycles != s2.WallCycles || s1.CommMessages != s2.CommMessages {
		t.Errorf("VM counters differ between identical runs: cycles %d vs %d, messages %d vs %d",
			s1.WallCycles, s2.WallCycles, s1.CommMessages, s2.CommMessages)
	}
}

// TestCrossLocaleDifferential is the cross-locale differential harness:
// every embedded benchmark, at 1/2/4 locales, under every comm-runtime
// mode, must print bit-identical output. Owner-computes scheduling and
// the modeled aggregation runtime move work and messages around — they
// must never change what the program computes. Each benchmark is also
// checked for zero remote accesses at statically owner-computes sites
// (the scheduling is owner-aligned by construction).
func TestCrossLocaleDifferential(t *testing.T) {
	cases := []struct {
		prog benchprog.Program
		cfgs map[string]string
	}{
		{benchprog.Halo(), benchprog.HaloConfig{N: 256, Reps: 4}.Configs()},
		{benchprog.Wavefront(), benchprog.DefaultWavefront.Configs()},
		{benchprog.CLOMP(false), benchprog.CLOMPConfig{NumParts: 8, ZonesPerPart: 16, FlopScale: 1, TimeScale: 1}.Configs()},
		{benchprog.MiniMD(false), benchprog.MiniMDConfig{NBins: 12, AtomsPerBin: 2, NSteps: 2}.Configs()},
		{benchprog.LULESH(benchprog.LuleshOriginal), benchprog.LuleshConfig{NumElems: 24, NSteps: 2}.Configs()},
		{benchprog.Gather(), benchprog.GatherConfig{N: 256, Reps: 3}.Configs()},
		{benchprog.SpMV(), benchprog.SpMVConfig{N: 64, NnzPerRow: 4, Reps: 3}.Configs()},
	}
	locales := []int{1, 2, 4}

	for _, c := range cases {
		c := c
		t.Run(c.prog.Name, func(t *testing.T) {
			res, err := c.prog.Compile(compile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			plan := analyze.CommPlan(res.Prog)

			var ref string
			var refCell string
			for _, nl := range locales {
				for _, mode := range commModes {
					cell := fmt.Sprintf("%d locales/%s", nl, mode.name)
					var out strings.Builder
					cfg := vm.DefaultConfig()
					cfg.Stdout = &out
					cfg.Configs = c.cfgs
					cfg.NumLocales = nl
					cfg.MaxCycles = 3_000_000_000
					cfg.CommAggregate = mode.aggregate
					cfg.CommCacheCap = mode.cacheCap
					cfg.CommInspector = mode.inspector
					cfg.CommPlan = plan
					stats, err := vm.New(res.Prog, cfg).Run()
					if err != nil {
						t.Fatalf("%s: %v", cell, err)
					}
					if out.Len() == 0 {
						t.Fatalf("%s: benchmark printed nothing", cell)
					}
					if refCell == "" {
						ref, refCell = out.String(), cell
					} else if out.String() != ref {
						t.Errorf("output diverged:\n %s: %q\n %s: %q",
							refCell, ref, cell, out.String())
					}
					if stats.OwnerSiteRemote != 0 {
						t.Errorf("%s: %d remote accesses at statically owner-computes sites, want 0",
							cell, stats.OwnerSiteRemote)
					}
				}
			}
		})
	}
}
