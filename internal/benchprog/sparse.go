package benchprog

import "fmt"

// This file holds the two irregular-access workloads behind the
// inspector–executor study (README / EXPERIMENTS "sparse" table): a
// gather/scatter kernel driven by a permutation index array, and a
// CSR-style sparse matrix–vector product. Both subscript one
// distributed array with elements loaded from another (A[B[i]],
// x[colidx[j]]), the pattern the analyzer classifies SiteIrregular and
// the comm runtime's inspector coalesces.

// GatherSource is the A[B[i]] gather/scatter kernel. B is a fixed
// permutation (7 is coprime to the power-of-two n), so every sweep
// touches each element of A exactly once, scattered across all
// locales; B[i] itself is affine and owner-local, so A carries all the
// remote traffic. Each rep gathers through B into Y, then scatters
// back into A. A still replicates: because B is a bijection, element
// A[B[i]] is read and written only by the locale owning i, so a
// scatter write invalidates that element only in replicas that never
// read it — each locale's own copy stays whole and the steady state is
// schedule replays plus write-back flushes.
const GatherSource = `config const n = 2048;
config const reps = 8;
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
var B: [D] int;
var Y: [D] real;

proc main() {
  forall i in D {
    A[i] = 1.0 + i * 0.5;
    B[i] = (i * 7 + 3) % n;
    Y[i] = 0.0;
  }
  for r in 1..reps {
    forall i in D {
      Y[i] = Y[i] + A[B[i]];
    }
    forall i in D {
      A[B[i]] = A[B[i]] + Y[i] * 0.001;
    }
  }
  writeln("checksum positive: ", + reduce Y > 0.0);
}
`

// Gather returns the gather/scatter kernel.
func Gather() Program {
	return Program{Name: "gather", Source: GatherSource}
}

// GatherConfig sizes the gather/scatter kernel.
type GatherConfig struct {
	N    int // index space (power of two; 7 must stay coprime)
	Reps int // gather+scatter sweeps
}

// DefaultGather is the experiment/CI configuration: at 4 locales the
// permutation makes ~3/4 of the accesses remote, so per-element
// fetching pays thousands of messages per sweep while the inspector
// pays a handful of bulk gathers and flushes. N is sized so each
// locale's own remote reads per sweep (~3N/16) cross the per-locale
// replication threshold (comm.DefaultReplicaMinReads) in the first
// repetition.
var DefaultGather = GatherConfig{N: 2048, Reps: 8}

// Configs renders the config-const overrides for the VM.
func (c GatherConfig) Configs() map[string]string {
	return map[string]string{
		"n":    fmt.Sprint(c.N),
		"reps": fmt.Sprint(c.Reps),
	}
}

// SpMVSource is a CSR-style sparse matrix–vector product y += M*x. The
// matrix is synthetic fixed-degree CSR: row i owns nnzPerRow entries at
// rowptr[i] = i*nnzPerRow, with column indices striding 13 mod n. The
// row sweep is owner-aligned (rowptr, vals and colidx blocks land on
// the row's locale), so the only remote traffic is the x[colidx[j]]
// gather — the canonical inspector–executor workload. x is never
// written inside the rep loop, so it is read-mostly and replicates.
const SpMVSource = `config const n = 512;
config const nnzPerRow = 4;
config const reps = 8;
var D: domain(1) dmapped Block = {0..#n};
var NZ: domain(1) dmapped Block = {0..#(n * nnzPerRow)};
var X: [D] real;
var Yv: [D] real;
var Rowptr: [D] int;
var Colidx: [NZ] int;
var Vals: [NZ] real;

proc main() {
  forall i in D {
    X[i] = 1.0 + i * 0.001;
    Yv[i] = 0.0;
    Rowptr[i] = i * nnzPerRow;
  }
  forall k in NZ {
    Colidx[k] = (k * 13 + 5) % n;
    Vals[k] = 0.5 + (k % 7) * 0.125;
  }
  for r in 1..reps {
    forall i in D {
      var sum = 0.0;
      for j in Rowptr[i]..Rowptr[i] + nnzPerRow - 1 {
        sum = sum + Vals[j] * X[Colidx[j]];
      }
      Yv[i] = Yv[i] + sum;
    }
  }
  writeln("checksum positive: ", + reduce Yv > 0.0);
}
`

// SpMV returns the CSR sparse matrix–vector product.
func SpMV() Program {
	return Program{Name: "spmv", Source: SpMVSource}
}

// SpMVConfig sizes the SpMV benchmark.
type SpMVConfig struct {
	N         int // rows (and columns)
	NnzPerRow int // fixed row degree
	Reps      int // y += M*x sweeps
}

// DefaultSpMV is the experiment/CI configuration. N is sized so each
// locale's remote reads of X per sweep (~3·N·nnzPerRow/16) cross the
// per-locale replication threshold (comm.DefaultReplicaMinReads) in
// the first repetition.
var DefaultSpMV = SpMVConfig{N: 512, NnzPerRow: 4, Reps: 8}

// Configs renders the config-const overrides for the VM.
func (c SpMVConfig) Configs() map[string]string {
	return map[string]string{
		"n":         fmt.Sprint(c.N),
		"nnzPerRow": fmt.Sprint(c.NnzPerRow),
		"reps":      fmt.Sprint(c.Reps),
	}
}
