package benchprog

import "fmt"

// WavefrontSource is the multi-locale wavefront/strided/blocked sweep
// mix — the workload that exercises every statically classified access
// shape (owner-computes, wavefront via D.translate, strided, blocked).
// It is kept byte-identical to examples/multilocale/wavefront.mchpl (a
// test asserts the sync) so the CLI walkthroughs, the experiment
// harness, and the multi-locale goldens all exercise the same program.
const WavefrontSource = `config const n = 64;
// Wavefront, strided, and blocked sweeps over Block-distributed arrays:
// the comm-pattern pass classifies each access shape statically, and the
// modeled communication runtime (-comm-aggregate) exploits the exported
// plan to coalesce the matching remote transfers.
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
var H: [D] real;
var S: [D] real;
var C: [D] real;

proc main() {
  forall i in D { A[i] = i * 1.0; }

  // Wavefront: iterate D translated by +2, so an owner-aligned index
  // lands two elements into the neighbor's block.
  forall i in D.translate(2) {
    var up = if i < n then A[i - 2] else 0.0;
    if i > 2 {
      H[i - 3] = up;
    }
  }

  // Strided: every second element — fixed-stride runs in each block.
  forall i in 0..#(n / 2) {
    S[i * 2] = A[i] + 1.0;
  }

  // Blocked: consecutive iterations revisit one contiguous chunk.
  forall i in 0..#n {
    C[i] = S[i / 4] + H[i / 4];
  }

  writeln("sum positive: ", + reduce C > 0.0);
}
`

// Wavefront returns the wavefront sweep-mix program.
func Wavefront() Program {
	return Program{Name: "wavefront", Source: WavefrontSource}
}

// WavefrontConfig sizes the wavefront benchmark.
type WavefrontConfig struct {
	N int // array size
}

// DefaultWavefront is the experiment/golden configuration.
var DefaultWavefront = WavefrontConfig{N: 256}

// Configs renders the config-const overrides for the VM.
func (c WavefrontConfig) Configs() map[string]string {
	return map[string]string{"n": fmt.Sprint(c.N)}
}
