package benchprog_test

import (
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/benchprog"
	"repro/internal/comm"
	"repro/internal/compile"
	"repro/internal/vm"
)

// sparseCases are the irregular-access workloads (issue: inspector–
// executor study).
func sparseCases() []struct {
	prog benchprog.Program
	cfgs map[string]string
} {
	return []struct {
		prog benchprog.Program
		cfgs map[string]string
	}{
		{benchprog.Gather(), benchprog.DefaultGather.Configs()},
		{benchprog.SpMV(), benchprog.DefaultSpMV.Configs()},
	}
}

// TestSparseIrregularClassification pins that the analyzer actually
// classifies the data-dependent subscripts (A[B[i]], X[Colidx[j]]) as
// irregular plan sites — the inspector only engages on SiteIrregular,
// so without this the smoke below would "pass" by never inspecting.
func TestSparseIrregularClassification(t *testing.T) {
	for _, c := range sparseCases() {
		res, err := c.prog.Compile(compile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plan := analyze.CommPlan(res.Prog)
		irregular := 0
		for _, site := range plan.Sites {
			if site.Class == comm.SiteIrregular {
				irregular++
			}
		}
		if irregular == 0 {
			t.Errorf("%s: comm plan has no irregular sites", c.prog.Name)
		}
	}
}

// TestSparseInspectorSmoke is the headline acceptance gate: on both
// sparse benchmarks at 4 locales the inspector–executor path must cut
// total comm messages by >=5x against the per-element aggregated
// baseline while printing bit-identical output.
func TestSparseInspectorSmoke(t *testing.T) {
	for _, c := range sparseCases() {
		c := c
		t.Run(c.prog.Name, func(t *testing.T) {
			res, err := c.prog.Compile(compile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			plan := analyze.CommPlan(res.Prog)
			run := func(inspector bool) (string, vm.Stats) {
				var out strings.Builder
				cfg := vm.DefaultConfig()
				cfg.Stdout = &out
				cfg.Configs = c.cfgs
				cfg.NumLocales = 4
				cfg.MaxCycles = 3_000_000_000
				cfg.CommAggregate = true
				cfg.CommInspector = inspector
				cfg.CommPlan = plan
				stats, err := vm.New(res.Prog, cfg).Run()
				if err != nil {
					t.Fatal(err)
				}
				return out.String(), stats
			}
			outBase, base := run(false)
			outInsp, insp := run(true)
			if outBase != outInsp {
				t.Errorf("output diverged:\n baseline:  %q\n inspector: %q", outBase, outInsp)
			}
			if insp.CommMessages == 0 {
				t.Fatal("inspector run sent no messages at 4 locales")
			}
			ratio := float64(base.CommMessages) / float64(insp.CommMessages)
			t.Logf("messages: baseline %d, inspector %d (%.1fx)", base.CommMessages, insp.CommMessages, ratio)
			if ratio < 5 {
				t.Errorf("message reduction %.2fx, want >= 5x (baseline %d, inspector %d)",
					ratio, base.CommMessages, insp.CommMessages)
			}
			if insp.Agg == nil || insp.Agg.InspectorBuilds == 0 {
				t.Error("inspector run built no schedules (classification or plumbing broken)")
			}
		})
	}
}
