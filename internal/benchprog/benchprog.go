// Package benchprog holds the MiniChapel ports of the paper's three case
// studies — MiniMD, CLOMP and LULESH (§V) — in their original and
// optimized forms, plus the small Fig. 1 worked example. Sources are
// generated/embedded Go strings so the experiment harness and tests can
// compile any variant deterministically.
package benchprog

import (
	"repro/internal/compile"
)

// Fig1Example is the five-line example of paper Fig. 1 (lines 16-20 in
// the paper; here the statements sit on lines 16-20 too, via padding).
const Fig1Example = `proc main() {
  var a = 0;
  var b = 0;
  var c = 0;
  //
  //
  //
  //
  //
  //
  //
  //
  //
  //
  //
  a = 2;
  b = 3;
  if a < b {
    a = b + 1; }
  c = a + b;
  writeln(c);
}
`

// Program identifies one compiled benchmark variant.
type Program struct {
	Name      string
	Source    string
	Optimized bool // benchmark-level optimization (not --fast)
}

// Compile builds the program with the given compiler options. Benchmark
// sources are compile-time constants, so results are memoized: repeated
// compiles of the same variant share one immutable *compile.Result
// across tables, benchmarks and goroutines.
func (p Program) Compile(opts compile.Options) (*compile.Result, error) {
	return compile.SourceCached(p.Name+".mchpl", p.Source, opts)
}

// MustCompile builds or panics (benchmark sources are compile-time
// constants; failure is a bug).
func (p Program) MustCompile(opts compile.Options) *compile.Result {
	r, err := p.Compile(opts)
	if err != nil {
		panic(err)
	}
	return r
}

// MiniMD returns the MiniMD program (original or optimized).
func MiniMD(optimized bool) Program {
	name := "minimd"
	if optimized {
		name = "minimd_opt"
	}
	return Program{Name: name, Source: MiniMDSource(optimized), Optimized: optimized}
}

// CLOMP returns the CLOMP program (original or flat-array optimized).
func CLOMP(optimized bool) Program {
	name := "clomp"
	if optimized {
		name = "clomp_opt"
	}
	return Program{Name: name, Source: CLOMPSource(optimized), Optimized: optimized}
}

// LULESH returns the LULESH program for a variant.
func LULESH(v LuleshVariant) Program {
	return Program{Name: "lulesh_" + sanitize(v.Tag()), Source: LULESHSource(v), Optimized: v != LuleshOriginal}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// All returns every benchmark program (for smoke tests).
func All() []Program {
	return []Program{
		MiniMD(false), MiniMD(true),
		CLOMP(false), CLOMP(true),
		LULESH(LuleshOriginal), LULESH(LuleshBest),
		Gather(), SpMV(),
		{Name: "fig1", Source: Fig1Example},
	}
}
