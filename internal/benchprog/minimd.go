package benchprog

import "fmt"

// MiniMDConfig holds the scaled problem size. The paper runs 16×16×16
// unit cells (16,384 atoms); the simulated substrate runs a 1-D binning
// of the same structure, scaled down (DESIGN.md documents the scaling).
type MiniMDConfig struct {
	NBins       int
	AtomsPerBin int
	NSteps      int
}

// DefaultMiniMD is the scaled default problem.
var DefaultMiniMD = MiniMDConfig{NBins: 48, AtomsPerBin: 4, NSteps: 3}

// Configs returns the config-const override map.
func (c MiniMDConfig) Configs() map[string]string {
	return map[string]string{
		"nBins":       fmt.Sprint(c.NBins),
		"atomsPerBin": fmt.Sprint(c.AtomsPerBin),
		"nSteps":      fmt.Sprint(c.NSteps),
	}
}

// MiniMDSource returns the MiniChapel port of Sandia's MiniMD proxy app
// (paper §V.A).
//
// The original uses Chapel's succinct zippered iteration over remapped
// slices (zip(Count[binSpace], Pos[binSpace], ...)) and re-slices
// Pos[DistSpace] inside the nested force loop — the domain-remapping
// overhead the paper's blame profile exposes through Pos/Bins. The
// optimized version applies Johnson's transformations: direct indexed
// loops and hoisted element references.
func MiniMDSource(optimized bool) string {
	if optimized {
		return minimdOptimized
	}
	return minimdOriginal
}

const minimdHeader = `// MiniMD — molecular dynamics proxy app, MiniChapel port.
config const nBins = 48;
config const atomsPerBin = 4;
config const nSteps = 3;
const dt = 0.005;
const dtforce = 0.0025;

type v3 = 3*real;

var binSpace: domain(1) = {0..#nBins};
var DistSpace: domain(1) = binSpace.expand(1);
var perBinSpace: domain(1) = {0..#atomsPerBin};

record atom {
  var v: v3;
  var f: v3;
  var neighCount: int(32);
}

var Pos: [DistSpace] [perBinSpace] v3;
var Bins: [DistSpace] [perBinSpace] atom;
var Count: [DistSpace] int(32);
ref RealPos = Pos[binSpace];
ref RealCount = Count[binSpace];

proc setup() {
  forall b in DistSpace {
    Count[b] = atomsPerBin;
    for i in perBinSpace {
      Pos[b][i] = (b * 0.1 + i * 0.01, b * 0.05 + i * 0.02, i * 0.03 + 0.01);
      Bins[b][i].v = (0.0, 0.0, 0.0);
      Bins[b][i].f = (0.0, 0.0, 0.0);
      Bins[b][i].neighCount = 0;
    }
  }
}

proc updateFluff() {
  // Update ghost information of Pos and Bins (periodic images).
  var lo = DistSpace.low;
  var hi = DistSpace.high;
  Pos[lo] = Pos[hi - 1];
  Pos[hi] = Pos[lo + 1];
  Bins[lo] = Bins[hi - 1];
  Bins[hi] = Bins[lo + 1];
  Count[lo] = Count[hi - 1];
  Count[hi] = Count[lo + 1];
}

proc checksum(): real {
  var tot = 0.0;
  for b in binSpace {
    for i in perBinSpace {
      tot += RealPos[b][i](1) + RealPos[b][i](2);
    }
  }
  return tot;
}
`

const minimdOriginal = minimdHeader + `
// --- original: zippered iteration over remapped slices ---

proc buildNeighbors() {
  // Put atoms into bins and rebuild neighbor lists: zippered iteration
  // over remapped slices, with a fresh Pos[DistSpace] remap per atom.
  forall (b, c, ps, bs) in zip(binSpace, RealCount, RealPos, Bins[binSpace]) {
    c = atomsPerBin;
    for (p, a) in zip(ps, bs) {
      var ncount = 0;
      for nb in b-1..b+1 {
        ref npos = Pos[DistSpace];
        for j in perBinSpace {
          var dx = p(1) - npos[nb][j](1);
          var dy = p(2) - npos[nb][j](2);
          var dz = p(3) - npos[nb][j](3);
          var rsq = dx*dx + dy*dy + dz*dz;
          if rsq < 2.5 {
            ncount += 1;
          }
        }
      }
      a.neighCount = ncount;
      p(1) = p(1) * 0.995 + 0.001;
      p(2) = p(2) * 0.995 + 0.002;
      p(3) = p(3) * 0.995 + 0.003;
    }
  }
}

proc computeForce() {
  forall (bp, b) in zip(Pos[binSpace], binSpace) {
    for i in 0..#atomsPerBin {
      var fsum: v3 = (0.0, 0.0, 0.0);
      // The force write also goes through a remapped view.
      ref nbins2 = Bins[DistSpace];
      for nb in b-1..b+1 {
        // Domain remapping inside the nested loop: fresh slice
        // descriptors per neighbor-bin visit ("several domain remapping
        // operations", paper §V.A).
        ref npos = Pos[DistSpace];
        ref nbins = Bins[DistSpace];
        var ghostTouch = nbins[nb][0].neighCount;
        for j in 0..#atomsPerBin {
          var dx = npos[b][i](1) - npos[nb][j](1);
          var dy = npos[b][i](2) - npos[nb][j](2);
          var dz = npos[b][i](3) - npos[nb][j](3);
          var rsq = dx*dx + dy*dy + dz*dz + 0.25;
          var sr2 = 1.0 / rsq;
          var sr6 = sr2 * sr2 * sr2;
          var fpair = 48.0 * sr6 * (sr6 - 0.5) * sr2;
          fsum(1) += dx * fpair;
          fsum(2) += dy * fpair;
          fsum(3) += dz * fpair;
        }
      }
      nbins2[b][i].f = fsum;
    }
  }
}

proc integrate() {
  forall (ps, bs) in zip(RealPos, Bins[binSpace]) {
    for (p, a) in zip(ps, bs) {
      a.v = a.v + a.f * dtforce;
      p = p + a.v * dt;
    }
  }
}

proc run() {
  for step in 1..nSteps {
    buildNeighbors();
    updateFluff();
    computeForce();
    integrate();
  }
}

proc main() {
  setup();
  run();
  var tot = checksum();
  writeln("MiniMD checksum ok ", tot >= 0.0 || tot < 0.0);
}
`

const minimdOptimized = minimdHeader + `
// --- optimized (Johnson): direct indexed loops, hoisted element refs ---

proc buildNeighbors() {
  forall b in binSpace {
    RealCount[b] = atomsPerBin;
    ref ps = RealPos[b];
    ref bs = Bins[b];
    for i in perBinSpace {
      var ncount = 0;
      for nb in b-1..b+1 {
        ref np = Pos[nb];
        for j in perBinSpace {
          var dx = ps[i](1) - np[j](1);
          var dy = ps[i](2) - np[j](2);
          var dz = ps[i](3) - np[j](3);
          var rsq = dx*dx + dy*dy + dz*dz;
          if rsq < 2.5 {
            ncount += 1;
          }
        }
      }
      bs[i].neighCount = ncount;
      ps[i](1) = ps[i](1) * 0.995 + 0.001;
      ps[i](2) = ps[i](2) * 0.995 + 0.002;
      ps[i](3) = ps[i](3) * 0.995 + 0.003;
    }
  }
}

proc computeForce() {
  forall b in binSpace {
    ref bp = Pos[b];
    for i in 0..#atomsPerBin {
      var fsum: v3 = (0.0, 0.0, 0.0);
      for nb in b-1..b+1 {
        ref np = Pos[nb];
        for j in 0..#atomsPerBin {
          var dx = bp[i](1) - np[j](1);
          var dy = bp[i](2) - np[j](2);
          var dz = bp[i](3) - np[j](3);
          var rsq = dx*dx + dy*dy + dz*dz + 0.25;
          var sr2 = 1.0 / rsq;
          var sr6 = sr2 * sr2 * sr2;
          var fpair = 48.0 * sr6 * (sr6 - 0.5) * sr2;
          fsum(1) += dx * fpair;
          fsum(2) += dy * fpair;
          fsum(3) += dz * fpair;
        }
      }
      Bins[b][i].f = fsum;
    }
  }
}

proc integrate() {
  forall b in binSpace {
    ref ps = RealPos[b];
    ref bs = Bins[b];
    for i in perBinSpace {
      bs[i].v = bs[i].v + bs[i].f * dtforce;
      ps[i] = ps[i] + bs[i].v * dt;
    }
  }
}

proc run() {
  for step in 1..nSteps {
    buildNeighbors();
    updateFluff();
    computeForce();
    integrate();
  }
}

proc main() {
  setup();
  run();
  var tot = checksum();
  writeln("MiniMD checksum ok ", tot >= 0.0 || tot < 0.0);
}
`
