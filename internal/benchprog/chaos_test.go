package benchprog_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/benchprog"
	"repro/internal/comm"
	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vm"
)

// chaosSeed fixes the fault schedule across every chaos run in this file;
// the injector is a pure function of (spec, seed, send sequence), so a
// fixed seed makes the whole harness deterministic.
const chaosSeed = 7

var chaosSpecs = []string{
	"loss=0.2",
	"loss=0.05,dup=0.05,delay=0.3:3xCommLatency",
	"locale-slow=1:4x",
}

func mustInjector(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	s, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return fault.NewInjector(s, chaosSeed)
}

// chaosRun executes one benchmark configuration, optionally under a fault
// spec, and returns its printed output and stats.
func chaosRun(t *testing.T, prog *ir.Program, plan *comm.Plan, cfgs map[string]string, nl int, aggregate bool, spec string) (string, vm.Stats) {
	t.Helper()
	var out strings.Builder
	cfg := vm.DefaultConfig()
	cfg.Stdout = &out
	cfg.Configs = cfgs
	cfg.NumLocales = nl
	cfg.MaxCycles = 3_000_000_000
	cfg.CommAggregate = aggregate
	cfg.CommPlan = plan
	if spec != "" {
		cfg.Fault = mustInjector(t, spec)
	}
	stats, err := vm.New(prog, cfg).Run()
	if err != nil {
		t.Fatalf("%d locales, spec %q: %v", nl, spec, err)
	}
	return out.String(), stats
}

// TestChaosDifferential is the chaos differential harness: every embedded
// benchmark × {1,2,4} locales × every fault spec must print bit-identical
// output to the fault-free run. The comm model retransmits losses and
// suppresses duplicates, so faults may only move the fault counters and
// the modeled clock — never what the program computes. Monotonicity is
// checked too: a faulty run never models fewer cycles than its fault-free
// twin, and loss specs actually exercise the retry path on runs with
// meaningful cross-locale traffic.
func TestChaosDifferential(t *testing.T) {
	cases := []struct {
		prog benchprog.Program
		cfgs map[string]string
	}{
		{benchprog.Halo(), benchprog.HaloConfig{N: 256, Reps: 4}.Configs()},
		{benchprog.Wavefront(), benchprog.DefaultWavefront.Configs()},
		{benchprog.CLOMP(false), benchprog.CLOMPConfig{NumParts: 8, ZonesPerPart: 16, FlopScale: 1, TimeScale: 1}.Configs()},
		{benchprog.MiniMD(false), benchprog.MiniMDConfig{NBins: 12, AtomsPerBin: 2, NSteps: 2}.Configs()},
		{benchprog.LULESH(benchprog.LuleshOriginal), benchprog.LuleshConfig{NumElems: 24, NSteps: 2}.Configs()},
		{benchprog.Gather(), benchprog.GatherConfig{N: 256, Reps: 3}.Configs()},
		{benchprog.SpMV(), benchprog.SpMVConfig{N: 64, NnzPerRow: 4, Reps: 3}.Configs()},
	}
	locales := []int{1, 2, 4}

	for _, c := range cases {
		c := c
		t.Run(c.prog.Name, func(t *testing.T) {
			res, err := c.prog.Compile(compile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			plan := analyze.CommPlan(res.Prog)

			for _, nl := range locales {
				ref, base := chaosRun(t, res.Prog, plan, c.cfgs, nl, true, "")
				if ref == "" {
					t.Fatalf("%d locales: benchmark printed nothing", nl)
				}
				for _, spec := range chaosSpecs {
					cell := fmt.Sprintf("%d locales/%s", nl, spec)
					out, stats := chaosRun(t, res.Prog, plan, c.cfgs, nl, true, spec)
					if out != ref {
						t.Errorf("%s: output diverged from fault-free run:\n fault-free: %q\n faulty:     %q",
							cell, ref, out)
					}
					if stats.WallCycles < base.WallCycles {
						t.Errorf("%s: faulty run modeled fewer cycles (%d) than fault-free (%d)",
							cell, stats.WallCycles, base.WallCycles)
					}
					f := stats.Fault
					if f == nil {
						t.Fatalf("%s: run carried an injector but no fault stats", cell)
					}
					if strings.Contains(spec, "loss=0.2") && nl > 1 && base.CommMessages >= 20 && f.Retries == 0 {
						t.Errorf("%s: %d messages under 20%% loss produced no retries", cell, base.CommMessages)
					}
				}
			}
		})
	}
}

// TestChaosDeterminism pins the acceptance criterion that a fixed fault
// seed yields deterministic stats: two identical faulty runs match in
// output, fault counters, and modeled cycles.
func TestChaosDeterminism(t *testing.T) {
	res, err := benchprog.Halo().Compile(compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := analyze.CommPlan(res.Prog)
	cfgs := benchprog.HaloConfig{N: 256, Reps: 4}.Configs()
	spec := chaosSpecs[1]

	out1, s1 := chaosRun(t, res.Prog, plan, cfgs, 4, true, spec)
	out2, s2 := chaosRun(t, res.Prog, plan, cfgs, 4, true, spec)
	if out1 != out2 {
		t.Errorf("output differs between identical faulty runs:\n run 1: %q\n run 2: %q", out1, out2)
	}
	if s1.WallCycles != s2.WallCycles || s1.CommMessages != s2.CommMessages {
		t.Errorf("counters differ between identical faulty runs: cycles %d vs %d, messages %d vs %d",
			s1.WallCycles, s2.WallCycles, s1.CommMessages, s2.CommMessages)
	}
	if s1.Fault == nil || s2.Fault == nil {
		t.Fatal("faulty runs carry no fault stats")
	}
	if r1, r2 := s1.Fault.Render(), s2.Fault.Render(); r1 != r2 {
		t.Errorf("fault stats differ between identical faulty runs:\n run 1: %s\n run 2: %s", r1, r2)
	}
	if s1.Fault.Retries == 0 && s1.Fault.DelayedMsgs == 0 && s1.Fault.DuplicatesSuppressed == 0 {
		t.Error("chaos spec injected nothing: the determinism check is vacuous")
	}
}

// TestHaloLocaleFailure is the graceful-degradation acceptance test: a
// locale declared dead early in the halo run must not panic or corrupt
// the output — owner-computes chunks destined for the dead locale fall
// back to spawn-locale execution, sends to it time out, and the program
// still prints exactly what the fault-free run prints. Note the
// owner-site invariant from TestCrossLocaleDifferential is deliberately
// NOT asserted here: fallback chunks legitimately access elements they
// no longer own.
func TestHaloLocaleFailure(t *testing.T) {
	res, err := benchprog.Halo().Compile(compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := analyze.CommPlan(res.Prog)
	cfgs := benchprog.HaloConfig{N: 256, Reps: 4}.Configs()

	for _, aggregate := range []bool{true, false} {
		name := "direct"
		if aggregate {
			name = "comm-aggregate"
		}
		t.Run(name, func(t *testing.T) {
			ref, _ := chaosRun(t, res.Prog, plan, cfgs, 4, aggregate, "")
			out, stats := chaosRun(t, res.Prog, plan, cfgs, 4, aggregate, "locale-fail=3@tick5")
			if out != ref {
				t.Errorf("output diverged under locale failure:\n fault-free: %q\n failed:     %q", ref, out)
			}
			f := stats.Fault
			if f == nil {
				t.Fatal("run carried an injector but no fault stats")
			}
			if f.FailedLocaleFallbacks == 0 {
				t.Error("no owner-computes chunk fell back off the dead locale")
			}
			if f.Timeouts == 0 {
				t.Error("no send to the dead locale timed out")
			}
		})
	}
}

// TestSparseInspectorLocaleFailure pins graceful degradation of the
// inspector–executor path: a locale that dies mid-run (including during
// inspection) may only move the fault counters and the modeled clock.
// The surviving locales' chunks re-inspect under the fallback
// scheduling, schedules still build, and the printed output is exactly
// the fault-free run's.
func TestSparseInspectorLocaleFailure(t *testing.T) {
	for _, c := range sparseCases() {
		c := c
		t.Run(c.prog.Name, func(t *testing.T) {
			res, err := c.prog.Compile(compile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			plan := analyze.CommPlan(res.Prog)
			run := func(spec string) (string, vm.Stats) {
				var out strings.Builder
				cfg := vm.DefaultConfig()
				cfg.Stdout = &out
				cfg.Configs = c.cfgs
				cfg.NumLocales = 4
				cfg.MaxCycles = 3_000_000_000
				cfg.CommAggregate = true
				cfg.CommInspector = true
				cfg.CommPlan = plan
				if spec != "" {
					cfg.Fault = mustInjector(t, spec)
				}
				stats, err := vm.New(res.Prog, cfg).Run()
				if err != nil {
					t.Fatalf("spec %q: %v", spec, err)
				}
				return out.String(), stats
			}
			ref, base := run("")
			out, stats := run("locale-fail=3@tick5")
			if out != ref {
				t.Errorf("output diverged under locale failure:\n fault-free: %q\n failed:     %q", ref, out)
			}
			f := stats.Fault
			if f == nil {
				t.Fatal("run carried an injector but no fault stats")
			}
			if f.FailedLocaleFallbacks == 0 {
				t.Error("no chunk fell back off the dead locale")
			}
			if stats.Agg == nil || stats.Agg.InspectorBuilds == 0 {
				t.Error("faulty run built no inspector schedules")
			}
			if base.Agg == nil || base.Agg.InspectorBuilds == 0 {
				t.Error("fault-free run built no inspector schedules")
			}
			if stats.WallCycles < base.WallCycles {
				t.Errorf("faulty run modeled fewer cycles (%d) than fault-free (%d)",
					stats.WallCycles, base.WallCycles)
			}
		})
	}
}
