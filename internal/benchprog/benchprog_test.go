package benchprog_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/vm"
)

func runProgram(t *testing.T, p benchprog.Program, fast bool, cfgs map[string]string) (string, vm.Stats) {
	t.Helper()
	res, err := p.Compile(compile.Options{Fast: fast})
	if err != nil {
		t.Fatalf("%s: compile: %v", p.Name, err)
	}
	var out strings.Builder
	cfg := vm.DefaultConfig()
	cfg.Stdout = &out
	cfg.Configs = cfgs
	cfg.MaxCycles = 3_000_000_000
	stats, err := vm.New(res.Prog, cfg).Run()
	if err != nil {
		t.Fatalf("%s: run: %v", p.Name, err)
	}
	return out.String(), stats
}

func TestAllProgramsCompileAndRun(t *testing.T) {
	for _, p := range benchprog.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			out, stats := runProgram(t, p, false, nil)
			if stats.WallCycles == 0 {
				t.Error("no cycles")
			}
			if p.Name != "fig1" && !strings.Contains(out, "ok") && !strings.Contains(out, "checksum") {
				t.Errorf("unexpected output: %q", out)
			}
		})
	}
}

func TestAllProgramsCompileAndRunFast(t *testing.T) {
	for _, p := range benchprog.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			out, _ := runProgram(t, p, true, nil)
			_ = out
		})
	}
}

func TestFig1Output(t *testing.T) {
	out, _ := runProgram(t, benchprog.Program{Name: "fig1", Source: benchprog.Fig1Example}, false, nil)
	if out != "7\n" {
		t.Errorf("fig1 output = %q, want 7", out)
	}
}

func TestMiniMDVariantsAgree(t *testing.T) {
	// Original and optimized must compute the same physics. The checksum
	// line is identical; compare full output.
	o1, _ := runProgram(t, benchprog.MiniMD(false), false, nil)
	o2, _ := runProgram(t, benchprog.MiniMD(true), false, nil)
	if o1 != o2 {
		t.Errorf("MiniMD outputs differ:\n%q\n%q", o1, o2)
	}
}

func TestCLOMPVariantsAgree(t *testing.T) {
	o1, _ := runProgram(t, benchprog.CLOMP(false), false, nil)
	o2, _ := runProgram(t, benchprog.CLOMP(true), false, nil)
	if o1 != o2 {
		t.Errorf("CLOMP outputs differ:\n%q\n%q", o1, o2)
	}
}

func TestLULESHVariantsAgree(t *testing.T) {
	base, _ := runProgram(t, benchprog.LULESH(benchprog.LuleshOriginal), false, nil)
	for _, v := range []benchprog.LuleshVariant{
		{},
		{P1: true},
		{P1: true, U2: true},
		{P1: true, U2: true, U3: true},
		benchprog.LuleshBest,
	} {
		out, _ := runProgram(t, benchprog.LULESH(v), false, nil)
		if out != base {
			t.Errorf("LULESH %s output differs:\n%q\n%q", v.Tag(), out, base)
		}
	}
}

func TestMiniMDOptimizedIsFaster(t *testing.T) {
	_, s1 := runProgram(t, benchprog.MiniMD(false), false, nil)
	_, s2 := runProgram(t, benchprog.MiniMD(true), false, nil)
	speedup := float64(s1.WallCycles) / float64(s2.WallCycles)
	t.Logf("MiniMD speedup: %.2f", speedup)
	if speedup < 1.3 {
		t.Errorf("MiniMD optimization speedup %.2f, want >= 1.3 (paper: 2.26)", speedup)
	}
}

func TestCLOMPOptimizedIsFaster(t *testing.T) {
	cfg := benchprog.CLOMPSizePoints[2] // 12 parts / many zones: best case
	_, s1 := runProgram(t, benchprog.CLOMP(false), false, cfg.Configs())
	_, s2 := runProgram(t, benchprog.CLOMP(true), false, cfg.Configs())
	speedup := float64(s1.WallCycles) / float64(s2.WallCycles)
	t.Logf("CLOMP speedup: %.2f", speedup)
	if speedup < 1.3 {
		t.Errorf("CLOMP flat-array speedup %.2f, want >= 1.3 (paper: 2.13)", speedup)
	}
}

func TestLULESHBestIsFaster(t *testing.T) {
	_, s1 := runProgram(t, benchprog.LULESH(benchprog.LuleshOriginal), false, nil)
	_, s2 := runProgram(t, benchprog.LULESH(benchprog.LuleshBest), false, nil)
	speedup := float64(s1.WallCycles) / float64(s2.WallCycles)
	t.Logf("LULESH best-case speedup: %.2f", speedup)
	if speedup < 1.15 {
		t.Errorf("LULESH best speedup %.2f, want >= 1.15 (paper: 1.38)", speedup)
	}
}

func TestLuleshVariantTags(t *testing.T) {
	cases := map[string]benchprog.LuleshVariant{
		"0 params":   {},
		"P1":         {P1: true},
		"P1+P2+P3":   benchprog.LuleshOriginal,
		"P1+U2":      {P1: true, U2: true},
		"P1+U2+U3":   {P1: true, U2: true, U3: true},
		"P1+VG+CENN": benchprog.LuleshBest,
	}
	for want, v := range cases {
		if got := v.Tag(); got != want {
			t.Errorf("Tag(%+v) = %q, want %q", v, got, want)
		}
	}
}

func TestLULESHSourceVariantsDiffer(t *testing.T) {
	orig := benchprog.LULESHSource(benchprog.LuleshOriginal)
	noParams := benchprog.LULESHSource(benchprog.LuleshVariant{})
	if orig == noParams {
		t.Error("param removal did not change the source")
	}
	// The Fig. 5 nest has 3 variant positions; all other param loops are
	// fixed across variants.
	if d := strings.Count(orig, "for param") - strings.Count(noParams, "for param"); d != 3 {
		t.Errorf("param-loop count delta = %d, want 3", d)
	}
	u2 := benchprog.LULESHSource(benchprog.LuleshVariant{P1: true, U2: true})
	if !strings.Contains(u2, "x8n0[e](8) * gamma[i, 8]") {
		t.Error("U2 variant not manually unrolled")
	}
	vg := benchprog.LULESHSource(benchprog.LuleshVariant{P1: true, VG: true})
	if !strings.Contains(vg, "// VG: hoisted locals") {
		t.Error("VG variant missing hoisted globals")
	}
}

// The embedded halo benchmark must stay byte-identical to the example
// file the README walks through.
func TestHaloSourceMatchesExample(t *testing.T) {
	b, err := os.ReadFile("../../examples/multilocale/halo.mchpl")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != benchprog.HaloSource {
		t.Error("internal/benchprog/halo.go and examples/multilocale/halo.mchpl diverged")
	}
}

// Likewise for the embedded wavefront benchmark.
func TestWavefrontSourceMatchesExample(t *testing.T) {
	b, err := os.ReadFile("../../examples/multilocale/wavefront.mchpl")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != benchprog.WavefrontSource {
		t.Error("internal/benchprog/wavefront.go and examples/multilocale/wavefront.mchpl diverged")
	}
}

// runHalo executes the halo benchmark at 4 locales with or without the
// modeled aggregation runtime.
func runHalo(t *testing.T, aggregate, ownerComputes bool) (string, vm.Stats) {
	t.Helper()
	res, err := benchprog.Halo().Compile(compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	cfg := vm.DefaultConfig()
	cfg.Stdout = &out
	cfg.Configs = benchprog.DefaultHalo.Configs()
	cfg.NumLocales = 4
	cfg.MaxCycles = 3_000_000_000
	cfg.CommAggregate = aggregate
	cfg.NoOwnerComputes = !ownerComputes
	cfg.CommPlan = analyze.CommPlan(res.Prog)
	stats, err := vm.New(res.Prog, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	return out.String(), stats
}

// TestHaloAggregationSmoke is the CI benchmark smoke for the modeled
// communication runtime: on the spawn-locale baseline (owner-computes
// off) -comm-aggregate must send at least 10x fewer messages while
// printing bit-identical output.
func TestHaloAggregationSmoke(t *testing.T) {
	direct, ds := runHalo(t, false, false)
	agg, as := runHalo(t, true, false)
	if direct != agg {
		t.Fatalf("aggregation changed program output:\n direct: %q\n agg:    %q", direct, agg)
	}
	if !strings.Contains(direct, "sum positive: true") {
		t.Errorf("unexpected halo output: %q", direct)
	}
	if ds.CommMessages == 0 || as.CommMessages == 0 {
		t.Fatalf("no communication recorded: direct=%d agg=%d", ds.CommMessages, as.CommMessages)
	}
	reduction := float64(ds.CommMessages) / float64(as.CommMessages)
	t.Logf("halo messages: %d direct, %d aggregated (%.1fx)", ds.CommMessages, as.CommMessages, reduction)
	if reduction < 10 {
		t.Errorf("aggregation reduced messages only %.1fx (%d -> %d), want >= 10x",
			reduction, ds.CommMessages, as.CommMessages)
	}
	if as.Agg == nil {
		t.Fatal("aggregated run carries no comm runtime stats")
	}
	if as.Agg.Hits == 0 {
		t.Error("aggregated run recorded no cache hits")
	}
}

// TestHaloOwnerComputesSmoke is the CI benchmark smoke for owner-computes
// forall scheduling: the halo benchmark at 4 locales with owner-computes +
// aggregation must beat the spawn-locale aggregation baseline (71
// messages when this smoke was pinned), produce the same output, and
// leave every statically owner-computes site communication-free.
func TestHaloOwnerComputesSmoke(t *testing.T) {
	// The ceiling: what PR 2's aggregation achieved with every forall
	// chunk pinned to the spawning locale.
	const baselineCeiling = 71

	base, bs := runHalo(t, true, false)
	own, os := runHalo(t, true, true)
	if base != own {
		t.Fatalf("owner-computes scheduling changed program output:\n baseline: %q\n owner:    %q", base, own)
	}
	t.Logf("halo messages: %d baseline (agg), %d owner-computes (agg); owner-site violations: %d baseline, %d owner",
		bs.CommMessages, os.CommMessages, bs.OwnerSiteRemote, os.OwnerSiteRemote)
	if bs.CommMessages > baselineCeiling {
		t.Errorf("spawn-locale aggregation baseline regressed: %d messages, ceiling %d", bs.CommMessages, baselineCeiling)
	}
	if os.CommMessages >= bs.CommMessages {
		t.Errorf("owner-computes (%d msgs) should beat the spawn-locale baseline (%d msgs)",
			os.CommMessages, bs.CommMessages)
	}
	if os.OwnerSiteRemote != 0 {
		t.Errorf("owner-computes run still made %d remote accesses at statically owner-computes sites, want 0",
			os.OwnerSiteRemote)
	}
	if os.OwnerChunks == 0 || os.RemoteSpawns == 0 {
		t.Errorf("owner-computes run spawned no distributed chunks (owner=%d remote=%d)",
			os.OwnerChunks, os.RemoteSpawns)
	}
	if bs.OwnerSiteRemote == 0 {
		t.Error("spawn-locale baseline should record owner-site violations (that is what it pays for)")
	}
}

func TestCLOMPScalesWithConfig(t *testing.T) {
	small := benchprog.CLOMPConfig{NumParts: 4, ZonesPerPart: 8, FlopScale: 1, TimeScale: 1}
	big := benchprog.CLOMPConfig{NumParts: 16, ZonesPerPart: 64, FlopScale: 1, TimeScale: 1}
	_, s1 := runProgram(t, benchprog.CLOMP(false), false, small.Configs())
	_, s2 := runProgram(t, benchprog.CLOMP(false), false, big.Configs())
	if s2.WallCycles <= s1.WallCycles {
		t.Errorf("bigger problem not slower: %d vs %d", s2.WallCycles, s1.WallCycles)
	}
}
