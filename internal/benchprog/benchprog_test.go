package benchprog_test

import (
	"strings"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/vm"
)

func runProgram(t *testing.T, p benchprog.Program, fast bool, cfgs map[string]string) (string, vm.Stats) {
	t.Helper()
	res, err := p.Compile(compile.Options{Fast: fast})
	if err != nil {
		t.Fatalf("%s: compile: %v", p.Name, err)
	}
	var out strings.Builder
	cfg := vm.DefaultConfig()
	cfg.Stdout = &out
	cfg.Configs = cfgs
	cfg.MaxCycles = 3_000_000_000
	stats, err := vm.New(res.Prog, cfg).Run()
	if err != nil {
		t.Fatalf("%s: run: %v", p.Name, err)
	}
	return out.String(), stats
}

func TestAllProgramsCompileAndRun(t *testing.T) {
	for _, p := range benchprog.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			out, stats := runProgram(t, p, false, nil)
			if stats.WallCycles == 0 {
				t.Error("no cycles")
			}
			if p.Name != "fig1" && !strings.Contains(out, "ok") && !strings.Contains(out, "checksum") {
				t.Errorf("unexpected output: %q", out)
			}
		})
	}
}

func TestAllProgramsCompileAndRunFast(t *testing.T) {
	for _, p := range benchprog.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			out, _ := runProgram(t, p, true, nil)
			_ = out
		})
	}
}

func TestFig1Output(t *testing.T) {
	out, _ := runProgram(t, benchprog.Program{Name: "fig1", Source: benchprog.Fig1Example}, false, nil)
	if out != "7\n" {
		t.Errorf("fig1 output = %q, want 7", out)
	}
}

func TestMiniMDVariantsAgree(t *testing.T) {
	// Original and optimized must compute the same physics. The checksum
	// line is identical; compare full output.
	o1, _ := runProgram(t, benchprog.MiniMD(false), false, nil)
	o2, _ := runProgram(t, benchprog.MiniMD(true), false, nil)
	if o1 != o2 {
		t.Errorf("MiniMD outputs differ:\n%q\n%q", o1, o2)
	}
}

func TestCLOMPVariantsAgree(t *testing.T) {
	o1, _ := runProgram(t, benchprog.CLOMP(false), false, nil)
	o2, _ := runProgram(t, benchprog.CLOMP(true), false, nil)
	if o1 != o2 {
		t.Errorf("CLOMP outputs differ:\n%q\n%q", o1, o2)
	}
}

func TestLULESHVariantsAgree(t *testing.T) {
	base, _ := runProgram(t, benchprog.LULESH(benchprog.LuleshOriginal), false, nil)
	for _, v := range []benchprog.LuleshVariant{
		{},
		{P1: true},
		{P1: true, U2: true},
		{P1: true, U2: true, U3: true},
		benchprog.LuleshBest,
	} {
		out, _ := runProgram(t, benchprog.LULESH(v), false, nil)
		if out != base {
			t.Errorf("LULESH %s output differs:\n%q\n%q", v.Tag(), out, base)
		}
	}
}

func TestMiniMDOptimizedIsFaster(t *testing.T) {
	_, s1 := runProgram(t, benchprog.MiniMD(false), false, nil)
	_, s2 := runProgram(t, benchprog.MiniMD(true), false, nil)
	speedup := float64(s1.WallCycles) / float64(s2.WallCycles)
	t.Logf("MiniMD speedup: %.2f", speedup)
	if speedup < 1.3 {
		t.Errorf("MiniMD optimization speedup %.2f, want >= 1.3 (paper: 2.26)", speedup)
	}
}

func TestCLOMPOptimizedIsFaster(t *testing.T) {
	cfg := benchprog.CLOMPSizePoints[2] // 12 parts / many zones: best case
	_, s1 := runProgram(t, benchprog.CLOMP(false), false, cfg.Configs())
	_, s2 := runProgram(t, benchprog.CLOMP(true), false, cfg.Configs())
	speedup := float64(s1.WallCycles) / float64(s2.WallCycles)
	t.Logf("CLOMP speedup: %.2f", speedup)
	if speedup < 1.3 {
		t.Errorf("CLOMP flat-array speedup %.2f, want >= 1.3 (paper: 2.13)", speedup)
	}
}

func TestLULESHBestIsFaster(t *testing.T) {
	_, s1 := runProgram(t, benchprog.LULESH(benchprog.LuleshOriginal), false, nil)
	_, s2 := runProgram(t, benchprog.LULESH(benchprog.LuleshBest), false, nil)
	speedup := float64(s1.WallCycles) / float64(s2.WallCycles)
	t.Logf("LULESH best-case speedup: %.2f", speedup)
	if speedup < 1.15 {
		t.Errorf("LULESH best speedup %.2f, want >= 1.15 (paper: 1.38)", speedup)
	}
}

func TestLuleshVariantTags(t *testing.T) {
	cases := map[string]benchprog.LuleshVariant{
		"0 params":   {},
		"P1":         {P1: true},
		"P1+P2+P3":   benchprog.LuleshOriginal,
		"P1+U2":      {P1: true, U2: true},
		"P1+U2+U3":   {P1: true, U2: true, U3: true},
		"P1+VG+CENN": benchprog.LuleshBest,
	}
	for want, v := range cases {
		if got := v.Tag(); got != want {
			t.Errorf("Tag(%+v) = %q, want %q", v, got, want)
		}
	}
}

func TestLULESHSourceVariantsDiffer(t *testing.T) {
	orig := benchprog.LULESHSource(benchprog.LuleshOriginal)
	noParams := benchprog.LULESHSource(benchprog.LuleshVariant{})
	if orig == noParams {
		t.Error("param removal did not change the source")
	}
	// The Fig. 5 nest has 3 variant positions; all other param loops are
	// fixed across variants.
	if d := strings.Count(orig, "for param") - strings.Count(noParams, "for param"); d != 3 {
		t.Errorf("param-loop count delta = %d, want 3", d)
	}
	u2 := benchprog.LULESHSource(benchprog.LuleshVariant{P1: true, U2: true})
	if !strings.Contains(u2, "x8n0[e](8) * gamma[i, 8]") {
		t.Error("U2 variant not manually unrolled")
	}
	vg := benchprog.LULESHSource(benchprog.LuleshVariant{P1: true, VG: true})
	if !strings.Contains(vg, "// VG: hoisted locals") {
		t.Error("VG variant missing hoisted globals")
	}
}

func TestCLOMPScalesWithConfig(t *testing.T) {
	small := benchprog.CLOMPConfig{NumParts: 4, ZonesPerPart: 8, FlopScale: 1, TimeScale: 1}
	big := benchprog.CLOMPConfig{NumParts: 16, ZonesPerPart: 64, FlopScale: 1, TimeScale: 1}
	_, s1 := runProgram(t, benchprog.CLOMP(false), false, small.Configs())
	_, s2 := runProgram(t, benchprog.CLOMP(false), false, big.Configs())
	if s2.WallCycles <= s1.WallCycles {
		t.Errorf("bigger problem not slower: %d vs %d", s2.WallCycles, s1.WallCycles)
	}
}
