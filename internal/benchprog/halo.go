package benchprog

import "fmt"

// HaloSource is the multi-locale halo-exchange stencil — the canonical
// workload for the modeled communication runtime (internal/comm). It is
// kept byte-identical to examples/multilocale/halo.mchpl (a test asserts
// the sync) so the CLI walkthroughs, the experiment harness, and the CI
// benchmark smoke all exercise the same program.
const HaloSource = `config const n = 256;
config const reps = 10;
// Block-distributed: each locale owns a contiguous block of Grid.
var D: domain(1) dmapped Block = {0..#n};
var Grid: [D] real;
var Halo: [D] real;

proc relax(lo: int, hi: int) {
  forall i in lo..hi {
    // Interior accesses are local; the block-edge neighbors are remote
    // (halo exchange).
    var left = if i > 0 then Grid[i-1] else 0.0;
    var right = if i < n-1 then Grid[i+1] else 0.0;
    Halo[i] = (left + Grid[i] + right) / 3.0;
    Grid[i] = Halo[i];
  }
}

proc main() {
  forall i in D { Grid[i] = i * 1.0; }
  for r in 1..reps {
    for l in 0..#numLocales {
      on Locales[l] {
        relax(l * (n / numLocales), (l + 1) * (n / numLocales) - 1);
      }
    }
  }
  writeln("sum positive: ", + reduce Grid > 0.0);
}
`

// Halo returns the halo-exchange stencil program.
func Halo() Program {
	return Program{Name: "halo", Source: HaloSource}
}

// HaloConfig sizes the halo benchmark.
type HaloConfig struct {
	N    int // grid size
	Reps int // relaxation sweeps
}

// DefaultHalo is the experiment/CI configuration: large enough that the
// per-sweep halo prefetch amortizes into a >=10x message reduction at
// 4 locales (n=256 leaves too few interior accesses per block).
var DefaultHalo = HaloConfig{N: 1024, Reps: 10}

// Configs renders the config-const overrides for the VM.
func (c HaloConfig) Configs() map[string]string {
	return map[string]string{
		"n":    fmt.Sprint(c.N),
		"reps": fmt.Sprint(c.Reps),
	}
}
