package vm

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/source"
)

// Listener observes execution. The sampling profiler, the code-centric
// baseline and the HPCToolkit-like baseline are all Listeners.
type Listener interface {
	// Exec is called for every executed instruction with its cycle cost.
	// acc is the array allocation touched by element accesses (nil
	// otherwise) — the address information PEBS-style sampling exposes.
	Exec(cycles uint64, t *Task, in *ir.Instr, acc *ArrayVal)
	// Spin reports idle-spin cycles attributed to a runtime function
	// (worker threads waiting for work or for a barrier).
	Spin(cycles uint64, t *Task, fn *ir.Func)
	// PreSpawn fires in the tasking layer right before tasks are created;
	// the monitoring process records the parent's stack walk under tag
	// (paper §IV.B: "record the stack trace before the spawn operation").
	PreSpawn(parent *Task, tag uint64, site *ir.Instr)
	// Alloc reports a heap allocation (arrays, class instances).
	Alloc(addr uint64, size int64, v *ir.Var, site *ir.Instr)
	// Comm reports a remote (inter-locale) data access: bytes moved
	// between locales on behalf of the variable owning the accessed
	// allocation — the paper's §VI plan to "blame communication cost
	// back to key data structures".
	Comm(bytes int64, from, to int, owner *ir.Var, t *Task, in *ir.Instr)
	// CommAgg reports an aggregation-runtime event (hits, prefetches,
	// flushes, invalidations...) when the modeled communication runtime
	// is enabled. Message events are additionally reported through Comm.
	CommAgg(ev comm.Event, t *Task)
}

// nopListener is used when no profiler is attached.
type nopListener struct{}

func (nopListener) Exec(uint64, *Task, *ir.Instr, *ArrayVal)        {}
func (nopListener) Spin(uint64, *Task, *ir.Func)                    {}
func (nopListener) PreSpawn(*Task, uint64, *ir.Instr)               {}
func (nopListener) Alloc(uint64, int64, *ir.Var, *ir.Instr)         {}
func (nopListener) Comm(int64, int, int, *ir.Var, *Task, *ir.Instr) {}
func (nopListener) CommAgg(comm.Event, *Task)                       {}

// Config parameterizes a run.
type Config struct {
	// NumCores is the number of simulated cores per locale (paper: 12).
	NumCores int
	// NumLocales simulates the PGAS node count (paper experiments: 1).
	NumLocales int
	// DataParTasksPerLocale bounds forall task counts (Chapel's
	// dataParTasksPerLocale); defaults to NumCores.
	DataParTasksPerLocale int
	// Configs overrides `config const` values, like ./prog --name=value.
	Configs map[string]string
	// Stdout receives writeln output.
	Stdout io.Writer
	// Listener observes execution (nil = none).
	Listener Listener
	// MaxCycles aborts runaway programs (0 = no limit).
	MaxCycles uint64
	// ClockHz converts cycles to seconds for reports (paper: 2.53 GHz).
	ClockHz float64
	// Costs is the cycle cost model.
	Costs CostModel
	// Quantum is the instructions-per-scheduling-slice (determinism knob).
	Quantum int
	// CommAggregate enables the modeled communication runtime
	// (internal/comm): halo ghost-window prefetch, run-length coalescing
	// of sequential/strided remote reads, and a per-locale software cache
	// with write-back flushing. Program output is unchanged; only the
	// message accounting (and thus cycles) differs.
	CommAggregate bool
	// CommCacheCap is the per-locale software-cache capacity in elements
	// (0 selects comm.DefaultCacheCap, negative disables caching). Only
	// meaningful with CommAggregate.
	CommCacheCap int
	// CommInspector enables the inspector–executor path for irregular
	// (data-dependent subscript) sites: remote index sets are recorded
	// once per task, gathered in bulk per owner, memoized per sweep
	// window, and read-mostly arrays are selectively replicated. Only
	// meaningful with CommAggregate and a CommPlan that classifies
	// SiteIrregular sites.
	CommInspector bool
	// CommPlan is the static comm-pattern plan (analyze.CommPlan) the
	// aggregation runtime keys halo prefetches on. Optional.
	CommPlan *comm.Plan
	// NoOwnerComputes disables owner-computes forall scheduling: chunks
	// of a forall over a Block-dmapped space then inherit the spawning
	// task's locale (the pre-owner-computes baseline), paying remote
	// messages for every non-local element. Used by the before/after
	// studies in internal/exp; leave false for Chapel-faithful runs.
	NoOwnerComputes bool
	// Fault, when non-nil, injects deterministic comm faults (loss with
	// retries, duplicates, delays, slow/failed locales) into every remote
	// access and remote spawn. Output is unchanged — chunks owned by a
	// dead locale fall back to the spawner's locale, lost messages are
	// retransmitted — only cycles and Stats.Fault counters move.
	Fault *fault.Injector
	// CommRetry overrides the fault injector's retry policy when any
	// field is non-zero.
	CommRetry fault.RetryPolicy
	// Cancel, when non-nil, aborts the run at the next scheduling quantum
	// once set. The check sits in the scheduler loop, outside the
	// instruction hot path, so long-running programs become
	// interruptible (profiling sessions with deadlines, server-side
	// cancellation) without perturbing determinism: a run that is never
	// cancelled executes exactly as if the knob were nil.
	Cancel *atomic.Bool
}

// ErrCancelled is the message carried by the RuntimeError a cancelled
// run returns.
const ErrCancelled = "run cancelled"

// DefaultConfig mirrors the paper's testbed: a single locale with 12
// cores at 2.53 GHz.
func DefaultConfig() Config {
	return Config{
		NumCores:   12,
		NumLocales: 1,
		Stdout:     io.Discard,
		MaxCycles:  0,
		ClockHz:    2.53e9,
		Costs:      DefaultCosts(),
		Quantum:    64,
	}
}

// RuntimeError is an execution failure with source context.
type RuntimeError struct {
	Pos   source.Pos
	Msg   string
	Stack []string
}

func (e *RuntimeError) Error() string {
	s := fmt.Sprintf("runtime error at line %d: %s", e.Pos.Line, e.Msg)
	if len(e.Stack) > 0 {
		s += "\n  in " + strings.Join(e.Stack, "\n  in ")
	}
	return s
}

// Activation is one call-stack frame.
type Activation struct {
	F     *ir.Func
	Block *ir.Block
	Idx   int
	Slots []Value
	// RetDst receives the callee's return value (cell in the caller).
	RetDst *Value
	// CallSite is the instruction that created this frame (nil for task
	// roots); the stack walker reports it.
	CallSite *ir.Instr
}

// maxActFree bounds the activation free list (frames beyond this go back
// to the garbage collector).
const maxActFree = 256

// iterState drives a forall/coforall chunk: the task repeatedly invokes
// the outlined body for each index in [pos, end). start records the
// chunk's first position so the comm runtime can see the whole sweep.
// idxBuf/argBuf are per-chunk scratch reused across iterations (pushFrame
// copies argument values into the frame, so the backing arrays are free
// to be overwritten by the next index).
type iterState struct {
	body     *ir.Func
	captures []Value
	space    DomainVal
	pos, end int64
	start    int64
	site     *ir.Instr
	idxBuf   [3]int64
	argBuf   []Value
}

// joinGroup tracks outstanding child tasks for a blocking construct.
type joinGroup struct {
	pending       int
	waiter        *Task
	completeClock uint64
	barrierSite   *ir.Instr
}

// Task is a Chapel task (master or worker).
type Task struct {
	ID     int
	Tag    uint64 // spawn tag (0 for the master)
	Parent *Task
	Frames []*Activation
	Core   int
	Locale int

	iter      *iterState
	join      *joinGroup // group to signal at completion
	blockedOn *joinGroup
	syncStack []*joinGroup
	done      bool
}

// Top returns the innermost activation, or nil.
func (t *Task) Top() *Activation {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// StackAddrs walks the task's stack, innermost first, returning the
// current instruction address of each frame — exactly what a Dyninst
// stack walk yields. Suspended caller frames hold the *return* address
// (the instruction after the call); like real stack walkers, we report
// the call site itself (the return-address-minus-one adjustment).
func (t *Task) StackAddrs() []uint64 {
	out := make([]uint64, 0, len(t.Frames))
	for i := len(t.Frames) - 1; i >= 0; i-- {
		a := t.Frames[i]
		if a.Block == nil {
			continue
		}
		idx := a.Idx
		if i < len(t.Frames)-1 && idx > 0 {
			idx-- // suspended at the instruction after its call
		}
		if idx >= len(a.Block.Instrs) {
			idx = len(a.Block.Instrs) - 1
		}
		if idx < 0 {
			continue
		}
		out = append(out, a.Block.Instrs[idx].Addr)
	}
	return out
}

// runnable reports whether the task can execute now.
func (t *Task) runnable() bool { return !t.done && t.blockedOn == nil }

type core struct {
	clock uint64
	queue []*Task
	// lastTask is the most recent task that ran here; idle spin between
	// assignments is attributed to its context (persistent worker
	// threads keep their previous spawn tag while waiting for work).
	lastTask *Task
}

// VM executes one IR program.
type VM struct {
	Prog *ir.Program
	Cfg  Config

	globals []Value
	cores   []core
	lis     Listener

	totalCycles uint64
	nextAddr    uint64
	nextTaskID  int
	nextTag     uint64
	spawnRR     int // round-robin core cursor

	hereVar *ir.Var
	halted  bool
	err     *RuntimeError
	// comm is the modeled communication runtime (nil unless
	// Config.CommAggregate).
	comm *comm.Runtime
	// fault is the deterministic fault injector (nil unless Config.Fault);
	// nil receivers are inert, so call sites skip nil checks.
	fault *fault.Injector

	// noLis short-circuits all Listener calls when no profiler is
	// attached, so unsampled runs skip per-instruction monitor
	// bookkeeping entirely.
	noLis bool
	// costTab is the precomputed per-instruction cost (indexed by the
	// dense Instr.Addr), with --fast scaling and i-cache surcharges folded
	// in; shared across VMs of the same (program, cost model).
	costTab []uint64
	// rtFns resolves the runtime functions the tasking layer charges
	// against, precomputed to avoid linear FuncByName scans per spawn and
	// per iteration.
	rtFns        map[string]*ir.Func
	fnSchedYield *ir.Func
	// actFree recycles popped activations (and their slot arrays).
	// Disabled (poolOff) for programs using non-blocking `begin`, whose
	// captured references may outlive the spawning frame.
	actFree []*Activation
	poolOff bool
	// defSlots caches each function's precomputed local default
	// initializers, replacing a per-frame type walk.
	defSlots map[*ir.Func][]defSlot
	// hereTmp backs readPtr's resolution of the `here` pseudo-variable;
	// idxScratch backs elemCell's resolved index (rank <= 3).
	hereTmp    Value
	idxScratch [3]int64
	// sliceFn, when non-nil, replaces the interpreter's slice loop with a
	// compiled backend's dispatch (see backend.go). Resolved once at VM
	// construction from the per-program registry.
	sliceFn SliceFn

	// Stats accumulates run statistics.
	Stats Stats
}

// Stats summarizes a run.
type Stats struct {
	TotalCycles  uint64 // sum over cores (PAPI_TOT_CYC-like, incl. spin)
	WallCycles   uint64 // max core clock (elapsed time)
	SpinCycles   uint64 // idle-spin portion of TotalCycles
	Instructions uint64
	TasksSpawned uint64
	Allocations  uint64
	AllocBytes   int64
	CommMessages uint64 // remote gets/puts (multi-locale)
	CommBytes    int64
	// Owner-computes scheduling counters (multi-locale foralls over
	// Block-dmapped spaces).
	OwnerChunks     uint64 // forall chunks placed on their owning locale
	RemoteSpawns    uint64 // chunks launched on a locale != the spawner's
	OwnerSiteRemote uint64 // element accesses at statically owner-computes sites that still went remote (should be 0)
	// Agg holds the aggregation runtime's statistics (nil unless
	// Config.CommAggregate).
	Agg *comm.Stats
	// Fault holds the fault injector's counters (nil unless Config.Fault).
	Fault *fault.Stats `json:",omitempty"`
	// TaskPanics records tasks whose execution panicked and was recovered
	// into a diagnostic instead of killing the run.
	TaskPanics []TaskPanic `json:",omitempty"`
}

// TaskPanic is one recovered task panic (graceful degradation: the task
// is abandoned, its joins released, and the run continues).
type TaskPanic struct {
	TaskID int
	Tag    uint64
	Fn     string // innermost frame at the point of panic
	Msg    string
}

// Seconds converts wall cycles to seconds at the configured clock.
func (s Stats) Seconds(hz float64) float64 { return float64(s.WallCycles) / hz }

// New creates a VM for prog.
func New(prog *ir.Program, cfg Config) *VM {
	if cfg.NumCores <= 0 {
		cfg.NumCores = 1
	}
	if cfg.NumLocales <= 0 {
		cfg.NumLocales = 1
	}
	if cfg.DataParTasksPerLocale <= 0 {
		cfg.DataParTasksPerLocale = cfg.NumCores
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 64
	}
	if cfg.ClockHz == 0 {
		cfg.ClockHz = 2.53e9
	}
	m := &VM{
		Prog:     prog,
		Cfg:      cfg,
		globals:  make([]Value, len(prog.Globals)),
		cores:    make([]core, cfg.NumCores*cfg.NumLocales),
		lis:      cfg.Listener,
		nextAddr: 0x10000,
	}
	if m.lis == nil {
		m.lis = nopListener{}
		m.noLis = true
	}
	if cfg.CommAggregate {
		m.comm = comm.New(comm.Config{
			Locales:   cfg.NumLocales,
			CacheCap:  cfg.CommCacheCap,
			Fault:     cfg.Fault,
			Retry:     cfg.CommRetry,
			Inspector: cfg.CommInspector,
		}, cfg.CommPlan)
	} else if cfg.Fault != nil && cfg.CommRetry != (fault.RetryPolicy{}) {
		// Direct (unaggregated) path: apply the retry override here since
		// no comm runtime will.
		cfg.Fault.SetRetry(cfg.CommRetry)
	}
	m.fault = cfg.Fault
	m.Stats.Fault = m.fault.Stats()
	// Per-instruction static costs (with --fast scaling and i-cache
	// surcharges folded in), shared across VMs of the same program.
	m.costTab = costTable(prog, cfg.Costs)
	// Resolve the tasking-layer runtime functions once (rtCharge/spinTo
	// attribute cycles to them on every spawn, barrier and iteration).
	m.rtFns = make(map[string]*ir.Func, 4)
	for _, name := range []string{"chpl_task_spawn", "chpl_task_barrier",
		"chpl_task_callTaskFunction", "__sched_yield"} {
		m.rtFns[name] = prog.FuncByName(name)
	}
	m.fnSchedYield = m.rtFns["__sched_yield"]
	m.defSlots = make(map[*ir.Func][]defSlot)
	// `begin` children don't block their parent, so captured references
	// may still point into frames that have returned; recycling those
	// frames would alias live refs. Blocking constructs (forall, coforall,
	// cobegin, on) keep the parent frame pinned, so pooling stays on.
	for _, in := range prog.Instrs {
		if in.Op == ir.OpSpawn && in.Spawn != nil && in.Spawn.Kind == ir.SpawnBegin {
			m.poolOff = true
			break
		}
	}
	// Zero-initialize declared globals by type (record array fields are
	// re-initialized by the definit marker in module init once their
	// domains have values).
	for _, g := range prog.Globals {
		if g.Sym != nil && g.Sym.Owner == nil && g.Type != nil {
			m.globals[g.Slot] = m.defaultValue(g.Type)
		}
	}
	m.initPredeclared()
	m.sliceFn = CompiledFor(prog)
	return m
}

// initPredeclared sets up Locales, numLocales, here and nil globals.
func (m *VM) initPredeclared() {
	for _, g := range m.Prog.Globals {
		switch g.Name {
		case "numLocales":
			if g.Sym != nil && g.Sym.Owner == nil {
				m.globals[g.Slot] = IntVal(int64(m.Cfg.NumLocales))
			}
		case "Locales":
			if g.Sym != nil && g.Sym.Owner == nil {
				arr := &ArrayVal{
					Dom:    DomainVal{Rank: 1, Dims: [3]RangeVal{{0, int64(m.Cfg.NumLocales - 1), 1}}},
					Layout: DomainVal{Rank: 1, Dims: [3]RangeVal{{0, int64(m.Cfg.NumLocales - 1), 1}}},
					ElemT:  nil,
				}
				arr.Data = make([]Value, m.Cfg.NumLocales)
				for i := range arr.Data {
					arr.Data[i] = Value{K: KLocale, I: int64(i)}
				}
				m.globals[g.Slot] = Value{K: KArray, Arr: arr}
			}
		case "here":
			if g.Sym != nil && g.Sym.Owner == nil {
				m.hereVar = g
			}
		case "nil":
			m.globals[g.Slot] = Value{K: KNil}
		}
	}
}

// coreOf returns the core a task runs on.
func (m *VM) coreOf(t *Task) *core { return &m.cores[t.Core] }

// Run executes module init then main to completion.
func (m *VM) Run() (Stats, error) {
	if m.Prog.ModuleInit != nil {
		if err := m.runRoot(m.Prog.ModuleInit); err != nil {
			return m.finishStats(), err
		}
	}
	if m.Prog.Main == nil {
		return m.finishStats(), fmt.Errorf("vm: program has no main")
	}
	if err := m.runRoot(m.Prog.Main); err != nil {
		return m.finishStats(), err
	}
	return m.finishStats(), nil
}

func (m *VM) finishStats() Stats {
	if m.comm != nil {
		// Residual dirty entries (tasks flush at completion, so normally
		// none) surface in the aggregation statistics.
		m.comm.Drain()
		m.Stats.Agg = m.comm.Stats()
	}
	m.Stats.TotalCycles = m.totalCycles
	var maxClock uint64
	for i := range m.cores {
		if m.cores[i].clock > maxClock {
			maxClock = m.cores[i].clock
		}
	}
	m.Stats.WallCycles = maxClock
	return m.Stats
}

// runRoot runs fn as a fresh root task through the scheduler.
func (m *VM) runRoot(fn *ir.Func) error {
	t := &Task{ID: m.nextTaskID, Core: 0, Locale: 0}
	m.nextTaskID++
	m.pushFrame(t, fn, nil, nil)
	m.cores[0].queue = append(m.cores[0].queue, t)
	return m.schedule()
}

// newActivation allocates (or recycles) a frame with n zeroed slots.
func (m *VM) newActivation(fn *ir.Func, n int) *Activation {
	if k := len(m.actFree); k > 0 {
		act := m.actFree[k-1]
		m.actFree[k-1] = nil
		m.actFree = m.actFree[:k-1]
		act.F = fn
		act.Idx = 0
		act.RetDst = nil
		act.CallSite = nil
		act.Block = nil
		if cap(act.Slots) >= n {
			s := act.Slots[:n]
			for i := range s {
				s[i] = Value{}
			}
			act.Slots = s
		} else {
			act.Slots = make([]Value, n)
		}
		return act
	}
	return &Activation{F: fn, Slots: make([]Value, n)}
}

// freeActivation returns a popped frame to the pool. Callers must not
// retain act afterwards.
func (m *VM) freeActivation(act *Activation) {
	if m.poolOff || len(m.actFree) >= maxActFree {
		return
	}
	m.actFree = append(m.actFree, act)
}

// frameSlots returns the slot count of a frame for fn.
func frameSlots(fn *ir.Func) int {
	n := len(fn.Params) + len(fn.Locals)
	if fn.RetVar != nil {
		n++
	}
	return n
}

// pushFrame enters fn on task t. args are pre-bound parameter values
// (may be nil for zero-arg roots).
func (m *VM) pushFrame(t *Task, fn *ir.Func, args []Value, retDst *Value) *Activation {
	act := m.newActivation(fn, frameSlots(fn))
	if len(fn.Blocks) > 0 {
		act.Block = fn.Blocks[0]
	}
	act.RetDst = retDst
	for i, p := range fn.Params {
		if i < len(args) {
			act.Slots[p.Slot] = args[i]
		}
	}
	// Default-initialize locals by declared type (globals are zeroed the
	// same way at startup). The per-function defSlot list skips locals
	// whose default is the zero Value and precomputes the rest. Indexed
	// iteration: a defSlot embeds a 216-byte Value, so a range copy per
	// default would dominate this loop.
	defs := m.defaultsFor(fn)
	for i := range defs {
		d := &defs[i]
		if act.Slots[d.slot].K != KNil {
			continue // parameter-aliased slot already bound
		}
		switch d.mode {
		case defDirect:
			act.Slots[d.slot] = d.v
		case defCopy:
			copyValueInto(&act.Slots[d.slot], &d.v)
		default:
			act.Slots[d.slot] = m.defaultValue(d.typ)
		}
	}
	t.Frames = append(t.Frames, act)
	return act
}

// schedule is the discrete-event core scheduler: repeatedly pick the
// runnable task whose core clock is lowest and execute one quantum.
func (m *VM) schedule() error {
	for {
		if m.err != nil {
			return m.err
		}
		if m.halted {
			return nil
		}
		ci := -1
		for i := range m.cores {
			c := &m.cores[i]
			if !hasRunnable(c) {
				continue
			}
			if ci < 0 || c.clock < m.cores[ci].clock {
				ci = i
			}
		}
		if ci < 0 {
			// No runnable tasks: either everything finished, or deadlock.
			total := 0
			for i := range m.cores {
				total += len(m.cores[i].queue)
			}
			if total == 0 {
				return nil
			}
			return &RuntimeError{Msg: "deadlock: all tasks blocked"}
		}
		m.runQuantum(&m.cores[ci])
		if m.Cfg.MaxCycles > 0 && m.totalCycles > m.Cfg.MaxCycles {
			return &RuntimeError{Msg: fmt.Sprintf("cycle budget exceeded (%d)", m.Cfg.MaxCycles)}
		}
		if m.Cfg.Cancel != nil && m.Cfg.Cancel.Load() {
			return &RuntimeError{Msg: ErrCancelled}
		}
	}
}

func hasRunnable(c *core) bool {
	for _, t := range c.queue {
		if t.runnable() {
			return true
		}
	}
	return false
}

// runQuantum executes up to Quantum instructions from the first runnable
// task on c, then rotates the queue.
func (m *VM) runQuantum(c *core) {
	// Find first runnable; rotate it to the front.
	k := -1
	for i, t := range c.queue {
		if t.runnable() {
			k = i
			break
		}
	}
	if k < 0 {
		return
	}
	t := c.queue[k]
	c.lastTask = t
	m.runSlice(t)
	// Rotate: move t to the back for round-robin fairness.
	if len(c.queue) > 1 {
		c.queue = append(append(c.queue[:k:k], c.queue[k+1:]...), t)
	}
	m.reap(c)
}

// runSlice executes up to Quantum instructions from t, recovering a task
// panic into a per-task diagnostic (Stats.TaskPanics): the task is
// abandoned, its join group released, and the run continues degraded
// rather than crashing the whole simulation.
func (m *VM) runSlice(t *Task) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		p := TaskPanic{TaskID: t.ID, Tag: t.Tag, Msg: fmt.Sprint(r)}
		if a := t.Top(); a != nil && a.F != nil {
			p.Fn = a.F.Name
		}
		m.Stats.TaskPanics = append(m.Stats.TaskPanics, p)
		t.Frames = t.Frames[:0]
		t.iter = nil
		t.blockedOn = nil
		if !t.done {
			m.taskFinished(t)
		}
	}()
	if m.sliceFn != nil {
		m.sliceFn(m, t, m.Cfg.Quantum)
		return
	}
	for i := 0; i < m.Cfg.Quantum; i++ {
		if m.err != nil || m.halted || !t.runnable() {
			break
		}
		if !m.step(t) {
			break
		}
	}
}

// reap removes finished tasks from the queue.
func (m *VM) reap(c *core) {
	kept := c.queue[:0]
	for _, t := range c.queue {
		if !t.done {
			kept = append(kept, t)
		}
	}
	c.queue = kept
}

// charge accounts cycles for t's instruction execution.
func (m *VM) charge(t *Task, cycles uint64) {
	m.coreOf(t).clock += cycles
	m.totalCycles += cycles
}

// rtCharge accounts tasking-layer cycles under a named runtime function,
// so the PMU sees them (they surface under runtime frames in the
// code-centric view, exactly as qthreads internals do).
func (m *VM) rtCharge(t *Task, cycles uint64, fnName string) {
	m.charge(t, cycles)
	if m.noLis {
		return
	}
	if f := m.rtFunc(fnName); f != nil {
		m.lis.Spin(cycles, t, f)
	}
}

// rtFunc resolves a runtime function by name, memoizing the linear
// FuncByName scan (negative results included).
func (m *VM) rtFunc(name string) *ir.Func {
	f, ok := m.rtFns[name]
	if !ok {
		f = m.Prog.FuncByName(name)
		m.rtFns[name] = f
	}
	return f
}

// spinTo advances a core's clock to target, attributing the gap as
// idle-spin in the scheduler (__sched_yield), as qthreads worker threads
// do while waiting for work — the Fig. 4 signature.
func (m *VM) spinTo(t *Task, target uint64) {
	c := m.coreOf(t)
	if target <= c.clock {
		return
	}
	gap := target - c.clock
	c.clock = target
	m.totalCycles += gap
	m.Stats.SpinCycles += gap
	if !m.noLis && m.fnSchedYield != nil {
		m.lis.Spin(gap, t, m.fnSchedYield)
	}
}

// taskFinished handles task completion bookkeeping.
func (m *VM) taskFinished(t *Task) {
	if m.comm != nil {
		// Write-back: flush the task's dirty remote elements as coalesced
		// runs, charging the messages to the finishing task.
		for _, ev := range m.comm.TaskEnd(t.ID, t.Locale) {
			if ev.Message() {
				m.Stats.CommMessages++
				m.Stats.CommBytes += ev.Bytes
				m.lis.Comm(ev.Bytes, ev.From, ev.To, ev.Var, t, nil)
				m.charge(t, m.cost(m.Cfg.Costs.CommLatency*uint64(1+ev.ExtraLat)+uint64(ev.Bytes)*m.Cfg.Costs.CommPerByte))
			}
			m.lis.CommAgg(ev, t)
		}
	}
	t.done = true
	finish := m.coreOf(t).clock
	if g := t.join; g != nil {
		g.pending--
		if finish > g.completeClock {
			g.completeClock = finish
		}
		if g.pending == 0 && g.waiter != nil && g.waiter.blockedOn == g {
			w := g.waiter
			w.blockedOn = nil
			// The waiter spun at the barrier until the last child arrived.
			m.spinTo(w, g.completeClock)
			m.rtCharge(w, m.cost(m.Cfg.Costs.Barrier), "chpl_task_barrier")
			if m.comm != nil {
				// Barrier-time inspector work: selective replication of
				// arrays that turned read-mostly during the sweep, charged
				// to the waiter.
				for _, ev := range m.comm.SweepEnd() {
					if ev.Message() {
						m.Stats.CommMessages++
						m.Stats.CommBytes += ev.Bytes
						m.lis.Comm(ev.Bytes, ev.From, ev.To, ev.Var, w, nil)
						m.charge(w, m.cost(m.Cfg.Costs.CommLatency*uint64(1+ev.ExtraLat)+uint64(ev.Bytes)*m.Cfg.Costs.CommPerByte))
					}
					m.lis.CommAgg(ev, w)
				}
			}
			// Step past the spawn instruction the waiter blocked on.
			if a := w.Top(); a != nil && a.Block != nil && a.Idx < len(a.Block.Instrs) {
				if a.Block.Instrs[a.Idx].Op == ir.OpSpawn {
					a.Idx++
				}
			}
		}
	}
}

// cost applies the --fast scale factor.
func (m *VM) cost(c uint64) uint64 {
	return m.Cfg.Costs.scale(m.Prog.Optimized, c)
}

// fail records a runtime error with a stack trace.
func (m *VM) fail(t *Task, in *ir.Instr, format string, args ...any) {
	if m.err != nil {
		return
	}
	e := &RuntimeError{Msg: fmt.Sprintf(format, args...)}
	if in != nil {
		e.Pos = in.Pos
	}
	for i := len(t.Frames) - 1; i >= 0; i-- {
		e.Stack = append(e.Stack, t.Frames[i].F.Name)
	}
	m.err = e
}

// TotalCycles returns cumulative cycles so far (PMU view).
func (m *VM) TotalCycles() uint64 { return m.totalCycles }

// Globals exposes global storage (tests and views).
func (m *VM) Globals() []Value { return m.globals }

// GlobalByName returns the value of a named global, for tests.
func (m *VM) GlobalByName(name string) (Value, bool) {
	for _, g := range m.Prog.Globals {
		if g.Name == name {
			return m.globals[g.Slot], true
		}
	}
	return Value{}, false
}
