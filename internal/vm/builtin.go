package vm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// query implements OpQuery (size/low/high/domain/... pseudo-fields).
func (m *VM) query(t *Task, in *ir.Instr) (Value, bool) {
	v := m.readVal(t, in.A)
	switch in.Method {
	case "size", "length", "numIndices", "numElements":
		switch v.K {
		case KRange:
			return IntVal(v.Rng.Size()), true
		case KDomain:
			return IntVal(v.Dom.Size()), true
		case KArray:
			return IntVal(v.Arr.Dom.Size()), true
		case KTuple:
			return IntVal(int64(len(v.Elems))), true
		}
	case "low", "first":
		switch v.K {
		case KRange:
			return IntVal(v.Rng.Lo), true
		case KDomain:
			if v.Dom.Rank == 1 {
				return IntVal(v.Dom.Dims[0].Lo), true
			}
			out := Value{K: KTuple, Elems: make([]Value, v.Dom.Rank)}
			for i := 0; i < v.Dom.Rank; i++ {
				out.Elems[i] = IntVal(v.Dom.Dims[i].Lo)
			}
			return out, true
		}
	case "high", "last":
		switch v.K {
		case KRange:
			return IntVal(v.Rng.Hi), true
		case KDomain:
			if v.Dom.Rank == 1 {
				return IntVal(v.Dom.Dims[0].Hi), true
			}
			out := Value{K: KTuple, Elems: make([]Value, v.Dom.Rank)}
			for i := 0; i < v.Dom.Rank; i++ {
				out.Elems[i] = IntVal(v.Dom.Dims[i].Hi)
			}
			return out, true
		}
	case "domain":
		if v.K == KArray {
			return Value{K: KDomain, Dom: v.Arr.Dom}, true
		}
	case "dimlow":
		d, ok := asDomain(v)
		if ok && in.FieldIx < d.Rank {
			return IntVal(d.Dims[in.FieldIx].Lo), true
		}
	case "dimhigh":
		d, ok := asDomain(v)
		if ok && in.FieldIx < d.Rank {
			return IntVal(d.Dims[in.FieldIx].Hi), true
		}
	case "ziplow":
		switch v.K {
		case KRange:
			return IntVal(v.Rng.Lo), true
		case KDomain:
			return IntVal(v.Dom.Dims[0].Lo), true
		case KArray:
			return IntVal(v.Arr.Dom.Dims[0].Lo), true
		}
	case "id":
		if v.K == KLocale {
			return IntVal(v.I), true
		}
	case "name":
		if v.K == KLocale {
			return StrVal(fmt.Sprintf("locale%d", v.I)), true
		}
	case "maxTaskPar", "numCores":
		if v.K == KLocale {
			return IntVal(int64(m.Cfg.NumCores)), true
		}
	}
	m.fail(t, in, "query .%s on %s", in.Method, v)
	return Value{}, false
}

func asDomain(v Value) (DomainVal, bool) {
	switch v.K {
	case KDomain:
		return v.Dom, true
	case KArray:
		return v.Arr.Dom, true
	case KRange:
		return DomainVal{Rank: 1, Dims: [3]RangeVal{v.Rng}}, true
	}
	return DomainVal{}, false
}

// domMethod implements OpDomMethod (expand/translate/dim/interior/...).
func (m *VM) domMethod(t *Task, in *ir.Instr) (Value, bool) {
	v := m.readVal(t, in.A)
	argInt := func(i int) int64 {
		if i < len(in.Args) {
			return m.readVal(t, in.Args[i]).AsInt()
		}
		return 0
	}
	switch in.Method {
	case "expand":
		if v.K == KDomain {
			return Value{K: KDomain, Dom: v.Dom.Expand(argInt(0))}, true
		}
	case "translate":
		if v.K == KDomain {
			return Value{K: KDomain, Dom: v.Dom.Translate(argInt(0))}, true
		}
	case "interior", "exterior":
		if v.K == KDomain {
			// Simplified: interior(k) shrinks by |k| on the high side.
			d := v.Dom
			k := argInt(0)
			if k < 0 {
				k = -k
			}
			for i := 0; i < d.Rank; i++ {
				d.Dims[i].Hi -= k
			}
			return Value{K: KDomain, Dom: d}, true
		}
	case "dim":
		d, ok := asDomain(v)
		if ok {
			i := argInt(0) - 1 // Chapel dims are 1-based
			if i >= 0 && int(i) < d.Rank {
				return Value{K: KRange, Rng: d.Dims[i]}, true
			}
		}
	case "size":
		d, ok := asDomain(v)
		if ok {
			return IntVal(d.Size()), true
		}
	case "reindex":
		if v.K == KArray {
			return v, true
		}
	}
	m.fail(t, in, "method .%s on %s", in.Method, v)
	return Value{}, false
}

// doBuiltin executes OpBuiltin; returns extra cycles.
func (m *VM) doBuiltin(t *Task, in *ir.Instr) (uint64, bool) {
	name := in.Method
	if strings.HasPrefix(name, "config:") {
		return m.configBuiltin(t, in, strings.TrimPrefix(name, "config:"))
	}
	if strings.HasPrefix(name, "reduce:") {
		return m.reduceBuiltin(t, in, strings.TrimPrefix(name, "reduce:"))
	}
	if strings.HasPrefix(name, "atomic:") {
		return m.atomicBuiltin(t, in, strings.TrimPrefix(name, "atomic:"))
	}
	argV := func(i int) Value {
		if i < len(in.Args) {
			return m.readVal(t, in.Args[i])
		}
		return Value{}
	}
	switch name {
	case "writeln", "write":
		var b strings.Builder
		for _, a := range in.Args {
			b.WriteString(m.readVal(t, a).String())
		}
		if name == "writeln" {
			b.WriteByte('\n')
		}
		fmt.Fprint(m.Cfg.Stdout, b.String())
		return m.cost(m.Cfg.Costs.WriteBuiltin), true
	case "sqrt":
		m.assignVarV(t, in.Dst, RealVal(math.Sqrt(argV(0).AsReal())), in)
	case "cbrt":
		m.assignVarV(t, in.Dst, RealVal(math.Cbrt(argV(0).AsReal())), in)
	case "exp":
		m.assignVarV(t, in.Dst, RealVal(math.Exp(argV(0).AsReal())), in)
	case "log":
		m.assignVarV(t, in.Dst, RealVal(math.Log(argV(0).AsReal())), in)
	case "sin":
		m.assignVarV(t, in.Dst, RealVal(math.Sin(argV(0).AsReal())), in)
	case "cos":
		m.assignVarV(t, in.Dst, RealVal(math.Cos(argV(0).AsReal())), in)
	case "floor":
		m.assignVarV(t, in.Dst, RealVal(math.Floor(argV(0).AsReal())), in)
	case "ceil":
		m.assignVarV(t, in.Dst, RealVal(math.Ceil(argV(0).AsReal())), in)
	case "abs":
		v := argV(0)
		if v.K == KInt {
			if v.I < 0 {
				v.I = -v.I
			}
			m.assignVarV(t, in.Dst, v, in)
		} else {
			m.assignVarV(t, in.Dst, RealVal(math.Abs(v.AsReal())), in)
		}
	case "sgn":
		x := argV(0).AsReal()
		s := int64(0)
		if x > 0 {
			s = 1
		} else if x < 0 {
			s = -1
		}
		m.assignVarV(t, in.Dst, IntVal(s), in)
	case "min", "max":
		best := argV(0)
		isInt := best.K == KInt
		for i := 1; i < len(in.Args); i++ {
			v := argV(i)
			if v.K != KInt {
				isInt = false
			}
			if (name == "min" && v.AsReal() < best.AsReal()) ||
				(name == "max" && v.AsReal() > best.AsReal()) {
				best = v
			}
		}
		if !isInt && best.K == KInt {
			best = RealVal(best.AsReal())
		}
		m.assignVarV(t, in.Dst, best, in)
	case "getCurrentTime":
		secs := float64(m.coreOf(t).clock) / m.Cfg.ClockHz
		m.assignVarV(t, in.Dst, RealVal(secs), in)
	case "assert":
		v := argV(0)
		if v.K != KBool || !v.B {
			m.fail(t, in, "assertion failed")
			return 0, false
		}
	case "exit", "halt":
		m.halted = true
	case "distribute:block":
		cell := m.cellOf(t, in.A).Deref()
		if cell.K == KDomain {
			v := *cell
			v.Dom.Dist = true
			m.bindCell(t, in.Dst, v)
		}
	case "stride_check":
		if argV(0).AsInt() <= 0 {
			m.fail(t, in, "range stride must be positive")
			return 0, false
		}
	case "definit":
		if in.Dst != nil && in.Dst.Type != nil {
			m.bindCell(t, in.Dst, m.defaultValue(in.Dst.Type))
		}
	case "sync_begin":
		t.syncStack = append(t.syncStack, &joinGroup{})
	case "sync_end":
		n := len(t.syncStack)
		if n == 0 {
			m.fail(t, in, "sync_end without sync_begin")
			return 0, false
		}
		g := t.syncStack[n-1]
		t.syncStack = t.syncStack[:n-1]
		if g.pending > 0 {
			g.waiter = t
			t.blockedOn = g
		}
	default:
		m.fail(t, in, "unknown builtin %s", name)
		return 0, false
	}
	// Math builtin cost.
	switch name {
	case "sqrt", "cbrt", "exp", "log", "sin", "cos", "floor", "ceil":
		return m.cost(m.Cfg.Costs.MathBuiltin), true
	}
	return 0, true
}

// atomicBuiltin implements atomic read/write/add/sub/fetchAdd. The
// deterministic scheduler makes them trivially race-free; the cost and
// code-centric attribution model a LOCK-prefixed RMW (the
// atomic_fetch_add_explicit__real64 row in paper Fig. 4).
func (m *VM) atomicBuiltin(t *Task, in *ir.Instr, op string) (uint64, bool) {
	cell := m.cellOf(t, in.A).Deref()
	argV := func(i int) Value {
		if i < len(in.Args) {
			return m.readVal(t, in.Args[i])
		}
		return Value{}
	}
	switch op {
	case "read":
		m.assignVarV(t, in.Dst, *cell, in)
	case "write":
		*cell = argV(0).Copy()
	case "add", "sub", "fetchAdd":
		old := *cell
		delta := argV(0)
		var next Value
		switch cell.K {
		case KReal:
			d := delta.AsReal()
			if op == "sub" {
				d = -d
			}
			next = RealVal(cell.F + d)
		default:
			d := delta.AsInt()
			if op == "sub" {
				d = -d
			}
			next = IntVal(cell.AsInt() + d)
		}
		*cell = next
		if op == "fetchAdd" {
			m.assignVarV(t, in.Dst, old, in)
		}
	default:
		m.fail(t, in, "unknown atomic op %s", op)
		return 0, false
	}
	// RMW cost, attributed to the runtime's atomic implementation.
	m.rtCharge(t, m.cost(m.Cfg.Costs.AtomicOp), "atomic_fetch_add_explicit__real64")
	return 0, true
}

// configBuiltin resolves a `config const` value: command-line override or
// the compiled default.
func (m *VM) configBuiltin(t *Task, in *ir.Instr, name string) (uint64, bool) {
	def := m.readVal(t, in.Args[0])
	if raw, ok := m.Cfg.Configs[name]; ok {
		switch def.K {
		case KInt:
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				m.fail(t, in, "config %s: bad int %q", name, raw)
				return 0, false
			}
			m.assignVarV(t, in.Dst, IntVal(n), in)
		case KReal:
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				m.fail(t, in, "config %s: bad real %q", name, raw)
				return 0, false
			}
			m.assignVarV(t, in.Dst, RealVal(f), in)
		case KBool:
			m.assignVarV(t, in.Dst, BoolVal(raw == "true" || raw == "1"), in)
		case KString:
			m.assignVarV(t, in.Dst, StrVal(raw), in)
		default:
			m.fail(t, in, "config %s: unsupported type", name)
			return 0, false
		}
		return 0, true
	}
	m.assignVarV(t, in.Dst, def, in)
	return 0, true
}

// reduceBuiltin folds an array with +, *, min (<) or max (>).
func (m *VM) reduceBuiltin(t *Task, in *ir.Instr, op string) (uint64, bool) {
	v := m.readVal(t, in.Args[0])
	if v.K != KArray {
		m.fail(t, in, "reduce over non-array %s", v)
		return 0, false
	}
	arr := v.Arr
	n := arr.Dom.Size()
	idx := make([]int64, arr.Dom.Rank)
	var accF float64
	var accI int64
	isInt := true
	first := true
	if op == "*" {
		accF, accI = 1, 1
	}
	for p := int64(0); p < n; p++ {
		arr.Dom.Unlinear(p, idx)
		c := arr.Cell(idx)
		if c == nil {
			continue
		}
		e := c.Deref()
		if e.K != KInt {
			isInt = false
		}
		x := e.AsReal()
		xi := e.AsInt()
		switch op {
		case "+":
			accF += x
			accI += xi
		case "*":
			accF *= x
			accI *= xi
		case "<": // min reduce
			if first || x < accF {
				accF, accI = x, xi
			}
		case ">": // max reduce
			if first || x > accF {
				accF, accI = x, xi
			}
		}
		first = false
	}
	if isInt {
		m.assignVarV(t, in.Dst, IntVal(accI), in)
	} else {
		m.assignVarV(t, in.Dst, RealVal(accF), in)
	}
	return uint64(n) * m.cost(m.Cfg.Costs.PerElem), true
}
