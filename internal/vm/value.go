// Package vm implements the MiniChapel runtime: a deterministic
// interpreter over the IR with a cycle-accurate cost model, a tasking
// layer (forall/coforall worker tasks with spawn tags), simulated
// multi-core scheduling, locales, and the monitoring hooks (per-segment
// execution events, allocation events, spawn events) that the sampling
// profiler (internal/sampler) attaches to.
//
// The VM substitutes for the paper's 12-core Xeon + PAPI PMU + Dyninst
// stack: cycle counts are exact and reproducible, so blame percentages
// are deterministic for a given program, input and sampling threshold.
package vm

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/types"
)

// Kind tags runtime values.
type Kind uint8

// Value kinds.
const (
	KNil Kind = iota
	KInt
	KReal
	KBool
	KString
	KTuple  // homogeneous tuple (Elems)
	KRecord // record by value (Elems are fields)
	KArray  // array descriptor (possibly a view)
	KDomain
	KRange
	KRef    // reference to a storage cell
	KClass  // class instance handle
	KLocale // locale id in I
)

// Value is a runtime value. Records and tuples store their elements in
// Elems; assignment deep-copies them (value semantics), while arrays and
// class instances are reference descriptors.
type Value struct {
	K     Kind
	I     int64
	F     float64
	B     bool
	S     string
	Elems []Value
	RT    *types.RecordType // for KRecord
	Arr   *ArrayVal
	Dom   DomainVal
	Rng   RangeVal
	Ref   *Value
	Obj   *Instance
}

// Copy returns a deep copy with value semantics (tuples/records copied,
// arrays/instances shared by reference).
func (v Value) Copy() Value {
	switch v.K {
	case KTuple, KRecord:
		out := v
		out.Elems = cloneTree(v.Elems)
		return out
	}
	return v
}

// copyValueInto deep-copies *src into *dst with the same semantics as
// Copy, but without passing the ~200-byte Value through parameters and
// return slots (the interpreter's hottest copy path). It tolerates
// aliasing — dst == src, or src pointing into dst's element storage —
// because the source element slice is captured before dst's header is
// overwritten.
func copyValueInto(dst, src *Value) {
	if src.K == KTuple || src.K == KRecord {
		elems := src.Elems
		*dst = *src
		dst.Elems = cloneTree(elems)
		return
	}
	*dst = *src
}

// cloneTree deep-copies a tuple/record element tree into one backing
// allocation (instead of one per nesting level): countTree sizes it
// exactly, so the appends in cloneInto never reallocate and every
// interior slice stays valid.
func cloneTree(elems []Value) []Value {
	buf := make([]Value, 0, countTree(elems))
	out, _ := cloneInto(elems, buf)
	return out
}

// countTree returns the total element count across all nesting levels.
func countTree(elems []Value) int {
	n := len(elems)
	for i := range elems {
		if k := elems[i].K; k == KTuple || k == KRecord {
			n += countTree(elems[i].Elems)
		}
	}
	return n
}

// cloneInto appends a deep copy of src to buf and returns the copied
// level (capped so it cannot grow over its successors) plus the
// extended buffer.
func cloneInto(src, buf []Value) ([]Value, []Value) {
	off := len(buf)
	buf = append(buf, src...)
	out := buf[off : off+len(src) : off+len(src)]
	for i := range out {
		if k := out[i].K; k == KTuple || k == KRecord {
			out[i].Elems, buf = cloneInto(out[i].Elems, buf)
		}
	}
	return out, buf
}

// FlatSize returns the number of scalar elements copied when assigning v
// (drives the cost model for tuple/record moves).
func (v Value) FlatSize() int {
	switch v.K {
	case KTuple, KRecord:
		n := 0
		for i := range v.Elems {
			n += v.Elems[i].FlatSize()
		}
		return n
	}
	return 1
}

// Deref follows a reference chain to the target cell.
func (v *Value) Deref() *Value {
	x := v
	for x.K == KRef {
		x = x.Ref
	}
	return x
}

func (v Value) String() string {
	switch v.K {
	case KNil:
		return "nil"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KReal:
		return formatReal(v.F)
	case KBool:
		return fmt.Sprintf("%t", v.B)
	case KString:
		return v.S
	case KTuple, KRecord:
		var b strings.Builder
		b.WriteByte('(')
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
		return b.String()
	case KArray:
		return v.Arr.String()
	case KDomain:
		return v.Dom.String()
	case KRange:
		return v.Rng.String()
	case KRef:
		return v.Deref().String()
	case KClass:
		if v.Obj == nil {
			return "nil"
		}
		return "{" + v.Obj.String() + "}"
	case KLocale:
		return fmt.Sprintf("LOCALE%d", v.I)
	}
	return "?"
}

// formatReal matches Chapel's writeln float formatting closely enough for
// golden tests: integral values print with a trailing ".0".
func formatReal(f float64) string {
	s := fmt.Sprintf("%g", f)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// AsInt coerces numeric values to int64.
func (v Value) AsInt() int64 {
	switch v.K {
	case KInt:
		return v.I
	case KReal:
		return int64(v.F)
	case KBool:
		if v.B {
			return 1
		}
		return 0
	case KRef:
		return v.Deref().AsInt()
	}
	return 0
}

// AsReal coerces numeric values to float64.
func (v Value) AsReal() float64 {
	switch v.K {
	case KInt:
		return float64(v.I)
	case KReal:
		return v.F
	case KRef:
		return v.Deref().AsReal()
	}
	return 0
}

// IntVal makes a KInt value.
func IntVal(i int64) Value { return Value{K: KInt, I: i} }

// RealVal makes a KReal value.
func RealVal(f float64) Value { return Value{K: KReal, F: f} }

// BoolVal makes a KBool value.
func BoolVal(b bool) Value { return Value{K: KBool, B: b} }

// StrVal makes a KString value.
func StrVal(s string) Value { return Value{K: KString, S: s} }

// ------------------------------------------------------------------ range

// RangeVal is lo..hi with a stride.
type RangeVal struct {
	Lo, Hi, Stride int64
}

// Size returns the number of indices.
func (r RangeVal) Size() int64 {
	if r.Stride == 0 {
		r.Stride = 1
	}
	if r.Hi < r.Lo {
		return 0
	}
	return (r.Hi-r.Lo)/r.Stride + 1
}

func (r RangeVal) String() string {
	s := fmt.Sprintf("%d..%d", r.Lo, r.Hi)
	if r.Stride > 1 {
		s += fmt.Sprintf(" by %d", r.Stride)
	}
	return s
}

// ----------------------------------------------------------------- domain

// DomainVal is a rectangular index set of rank 1..3.
type DomainVal struct {
	Rank int
	Dims [3]RangeVal
	// Dist marks a Block-distributed domain: arrays allocated over it
	// partition their elements block-wise across locales (dim 0).
	Dist bool
}

// Size returns the total number of indices.
func (d DomainVal) Size() int64 {
	if d.Rank == 0 {
		return 0
	}
	n := int64(1)
	for i := 0; i < d.Rank; i++ {
		n *= d.Dims[i].Size()
	}
	return n
}

// Contains reports whether idx (len == Rank) is inside the domain.
func (d DomainVal) Contains(idx []int64) bool {
	for i := 0; i < d.Rank; i++ {
		r := d.Dims[i]
		if idx[i] < r.Lo || idx[i] > r.Hi {
			return false
		}
	}
	return true
}

// Linear maps a multi-index to a row-major position within the domain.
func (d DomainVal) Linear(idx []int64) int64 {
	var pos int64
	for i := 0; i < d.Rank; i++ {
		r := d.Dims[i]
		pos = pos*r.Size() + (idx[i] - r.Lo)
	}
	return pos
}

// Unlinear maps a row-major position back to a multi-index.
func (d DomainVal) Unlinear(pos int64, idx []int64) {
	for i := d.Rank - 1; i >= 0; i-- {
		r := d.Dims[i]
		n := r.Size()
		idx[i] = r.Lo + pos%n
		pos /= n
	}
}

// Expand grows (or shrinks, for negative k) every dimension by k on both
// sides — Chapel's D.expand(k).
func (d DomainVal) Expand(k int64) DomainVal {
	out := d
	for i := 0; i < d.Rank; i++ {
		out.Dims[i].Lo -= k
		out.Dims[i].Hi += k
	}
	return out
}

// Translate shifts every dimension by k.
func (d DomainVal) Translate(k int64) DomainVal {
	out := d
	for i := 0; i < d.Rank; i++ {
		out.Dims[i].Lo += k
		out.Dims[i].Hi += k
	}
	return out
}

func (d DomainVal) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < d.Rank; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Dims[i].String())
	}
	b.WriteByte('}')
	return b.String()
}

// ------------------------------------------------------------------ array

// ArrayVal is an array descriptor. Views (slices) share Data and Layout
// with their parent; Dom restricts the visible index set. Element storage
// is row-major over Layout.
type ArrayVal struct {
	Dom    DomainVal // visible index set
	Layout DomainVal // allocation layout (== Dom for owners)
	Data   []Value
	ElemT  types.Type

	// View links a slice to the array it aliases (nil for owners). The
	// paper's blame definition includes writes through aliases.
	View *ArrayVal

	// Allocation metadata for the data-centric baselines.
	Addr      uint64
	SizeBytes int64
	OwnerVar  *ir.Var
	LocaleID  int
	// DistBlock partitions element homes block-wise over dim 0 across
	// NumLoc locales (Block-dmapped arrays).
	DistBlock bool
	NumLoc    int
}

// ElemHome returns the locale owning the element at idx.
func (a *ArrayVal) ElemHome(idx []int64) int {
	o := a.Owner()
	if !o.DistBlock || o.NumLoc <= 1 {
		return o.LocaleID
	}
	d := o.Layout.Dims[0]
	n := d.Size()
	if n <= 0 {
		return o.LocaleID
	}
	pos := idx[0] - d.Lo
	if pos < 0 {
		pos = 0
	}
	if pos >= n {
		pos = n - 1
	}
	home := int(pos * int64(o.NumLoc) / n)
	if home >= o.NumLoc {
		home = o.NumLoc - 1
	}
	return home
}

// Owner follows view links to the owning allocation.
func (a *ArrayVal) Owner() *ArrayVal {
	x := a
	for x.View != nil {
		x = x.View
	}
	return x
}

// Cell returns a pointer to the element cell for idx, or nil if out of
// the layout.
func (a *ArrayVal) Cell(idx []int64) *Value {
	if !a.Layout.Contains(idx) {
		return nil
	}
	return &a.Data[a.Layout.Linear(idx)]
}

func (a *ArrayVal) String() string {
	if a == nil {
		return "<nil array>"
	}
	n := a.Dom.Size()
	if n > 16 {
		return fmt.Sprintf("[%s array of %d %s]", a.Dom, n, a.ElemT)
	}
	var b strings.Builder
	first := true
	idx := make([]int64, a.Dom.Rank)
	for p := int64(0); p < n; p++ {
		a.Dom.Unlinear(p, idx)
		if !first {
			b.WriteByte(' ')
		}
		first = false
		c := a.Cell(idx)
		if c != nil {
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// --------------------------------------------------------------- instance

// Instance is a class object.
type Instance struct {
	Type      *types.RecordType
	Fields    []Value
	Addr      uint64
	SizeBytes int64
	OwnerVar  *ir.Var
	LocaleID  int
}

func (o *Instance) String() string {
	var b strings.Builder
	for i, f := range o.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", o.Type.Fields[i].Name, f.String())
	}
	return b.String()
}
