package vm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
)

// This file is the backend seam: everything an alternative execution
// engine needs to drive the VM's cost model, tasking layer, comm runtime
// and sampler hooks without reimplementing them. The interpreter is the
// default backend; a compiled backend replaces only the instruction
// dispatch loop (SliceFn) and inherits the rest — scheduler, spawns,
// joins, comm accounting, fault injection, cancellation — so its
// accounting is identical by construction.

// SliceFn executes up to quantum slice steps of task t, exactly as the
// interpreter's slice loop would: one step is one retired instruction,
// one iteration-driver advance, or one frame pop. Implementations must
// stop early when SliceStop reports true or when StepOne returns false
// (task blocked or finished), and must preserve the interpreter's
// charge/listener ordering for every instruction they retire (see
// Retire).
type SliceFn func(m *VM, t *Task, quantum int)

// compiledReg maps a compiled program to its registered SliceFn. Keyed by
// the *ir.Program pointer: the compile memo layer (compile.SourceCached)
// returns the identical pointer for identical (name, source, options), so
// a runner that registers its generated code right after compiling sees
// every later VM over that program pick it up.
var compiledReg sync.Map // *ir.Program -> SliceFn

// RegisterCompiled installs fn as the execution engine for prog. Every VM
// created for prog afterwards dispatches through fn instead of the
// interpreter loop.
func RegisterCompiled(prog *ir.Program, fn SliceFn) {
	compiledReg.Store(prog, fn)
}

// CompiledFor returns the SliceFn registered for prog, or nil.
func CompiledFor(prog *ir.Program) SliceFn {
	if fn, ok := compiledReg.Load(prog); ok {
		return fn.(SliceFn)
	}
	return nil
}

// StepOne executes exactly one interpreter step of t — the compiled
// backend's fallback for instructions it does not inline. Returns false
// when the task blocked or finished (the slice must end).
func (m *VM) StepOne(t *Task) bool { return m.step(t) }

// SliceStop reports whether the current slice must stop before another
// step: a runtime error, an explicit halt, or the task no longer being
// runnable (blocked at a join or done).
func (m *VM) SliceStop(t *Task) bool {
	return m.err != nil || m.halted || !t.runnable()
}

// Retire accounts one compiled-backend instruction exactly as the
// interpreter's step tail does: instruction count, static cycle charge
// from the precomputed cost table, and the listener callback with the
// accessed array (nil for non-memory ops). Callers must invoke it after
// the instruction's effect but before advancing Activation.Idx, so a
// sampler stack walk taken inside the callback sees the retiring
// instruction as the innermost frame's current instruction.
func (m *VM) Retire(t *Task, addr uint64, acc *ArrayVal) {
	m.Stats.Instructions++
	cycles := m.costTab[addr]
	m.coreOf(t).clock += cycles
	m.totalCycles += cycles
	if !m.noLis {
		m.lis.Exec(cycles, t, m.Prog.Instrs[addr], acc)
	}
}

// IPow exposes the interpreter's integer exponentiation to compiled
// backends (OpBin POW on int operands must match bit-for-bit).
func IPow(a, b int64) int64 { return ipow(a, b) }

// CostTab exposes the precomputed per-instruction static cost table
// (indexed by dense instruction address) so compiled code can charge
// inline instead of through a Retire call per instruction.
func (m *VM) CostTab() []uint64 { return m.costTab }

// NoLis reports whether no listener is attached. When true, compiled
// code may batch instruction/cycle accounting between observation
// points (any fallback step, slice exit, or comm/fault hook) with
// Bump, because nothing can observe intermediate counter states inside
// a slice. When false, every retirement must go through Retire so the
// listener sees per-instruction events in order.
func (m *VM) NoLis() bool { return m.noLis }

// Bump applies a batched accounting delta: n retired instructions
// costing a total of cycles. Only valid when NoLis() is true and no
// observation point was crossed since the first batched instruction.
func (m *VM) Bump(t *Task, n int, cycles uint64) {
	m.Stats.Instructions += uint64(n)
	m.coreOf(t).clock += cycles
	m.totalCycles += cycles
}

// ------------------------------------------------------------- backends

// Backend is one execution engine for compiled IR programs. Both
// backends share the cost model (Config.Costs), the tasking layer, the
// comm runtime hooks and the sampler interface; they differ only in how
// instructions are dispatched.
type Backend interface {
	// Name is the -backend flag value selecting this engine.
	Name() string
	// Run executes prog under cfg and returns the run statistics.
	Run(prog *ir.Program, cfg Config) (Stats, error)
}

var (
	backendMu  sync.Mutex
	backendReg = map[string]Backend{}
)

// RegisterBackend installs a backend under its name. The interpreter
// registers itself as "interp"; internal/gobe registers "go".
func RegisterBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backendReg[b.Name()] = b
}

// LookupBackend resolves a -backend flag value. Unknown names return an
// error listing the registered backends.
func LookupBackend(name string) (Backend, error) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if b, ok := backendReg[name]; ok {
		return b, nil
	}
	names := make([]string, 0, len(backendReg))
	for n := range backendReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("unknown backend %q (have %v)", name, names)
}

// Interp is the interpreter backend: the default engine, and the
// reference implementation every other backend is differential-tested
// against.
type Interp struct{}

// Name implements Backend.
func (Interp) Name() string { return "interp" }

// Run implements Backend.
func (Interp) Run(prog *ir.Program, cfg Config) (Stats, error) {
	return New(prog, cfg).Run()
}

func init() { RegisterBackend(Interp{}) }
