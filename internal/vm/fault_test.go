package vm_test

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vm"
)

const faultSrc = `
config const n = 40;
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
proc main() {
  forall i in D { A[i] = i * 1.0; }
  var s = 0.0;
  for i in 0..#n { s += A[i]; }
  writeln(s);
}
`

// Faults on the direct (unaggregated) comm path never change output —
// only latency and the fault counters.
func TestDirectPathFaultsPreserveOutput(t *testing.T) {
	base, baseStats := run(t, faultSrc, func(c *vm.Config) {
		c.NumLocales = 4
		c.NumCores = 4
	})
	spec, err := fault.ParseSpec("loss=0.3,dup=0.2,delay=0.5:3xCommLatency")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(spec, 42)
	out, stats := run(t, faultSrc, func(c *vm.Config) {
		c.NumLocales = 4
		c.NumCores = 4
		c.Fault = inj
	})
	if out != base {
		t.Errorf("faulty output %q != fault-free %q", out, base)
	}
	if stats.CommMessages != baseStats.CommMessages {
		t.Errorf("message count changed: %d vs %d", stats.CommMessages, baseStats.CommMessages)
	}
	st := stats.Fault
	if st == nil || st.Sends == 0 {
		t.Fatalf("no sends recorded: %+v", st)
	}
	if st.Retries == 0 {
		t.Errorf("loss=0.3 over %d sends produced no retries: %+v", st.Sends, st)
	}
	if stats.WallCycles < baseStats.WallCycles {
		t.Errorf("faulty run finished earlier: %d < %d", stats.WallCycles, baseStats.WallCycles)
	}
}

// A locale failing mid-run on the aggregated path: remote spawns fall
// back to the spawner's locale, messages to the dead locale time out,
// and the program still completes with correct output.
func TestLocaleFailureFallsBack(t *testing.T) {
	base, _ := run(t, faultSrc, func(c *vm.Config) {
		c.NumLocales = 4
		c.NumCores = 4
	})
	spec, err := fault.ParseSpec("locale-fail=3@tick0")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(spec, 1)
	out, stats := run(t, faultSrc, func(c *vm.Config) {
		c.NumLocales = 4
		c.NumCores = 4
		c.Fault = inj
	})
	if out != base {
		t.Errorf("output after locale failure %q != fault-free %q", out, base)
	}
	st := stats.Fault
	if st == nil || st.FailedLocaleFallbacks == 0 {
		t.Fatalf("no fallbacks recorded: %+v", st)
	}
	if st.Timeouts == 0 {
		t.Errorf("reads of the dead locale's block should time out: %+v", st)
	}
}

// panicAfter is a Listener that panics on its nth Exec call, standing in
// for a buggy monitor: the VM must recover it into a per-task diagnostic
// and keep the run alive.
type panicAfter struct {
	left int
}

func (p *panicAfter) Exec(uint64, *vm.Task, *ir.Instr, *vm.ArrayVal) {
	p.left--
	if p.left == 0 {
		panic("monitor exploded")
	}
}
func (p *panicAfter) Spin(uint64, *vm.Task, *ir.Func)                    {}
func (p *panicAfter) PreSpawn(*vm.Task, uint64, *ir.Instr)               {}
func (p *panicAfter) Alloc(uint64, int64, *ir.Var, *ir.Instr)            {}
func (p *panicAfter) Comm(int64, int, int, *ir.Var, *vm.Task, *ir.Instr) {}
func (p *panicAfter) CommAgg(comm.Event, *vm.Task)                       {}

func TestTaskPanicRecoveredIntoDiagnostics(t *testing.T) {
	src := `
var D: domain(1) = {0..#64};
var A: [D] int;
proc main() {
  forall i in D { A[i] = i; }
  writeln("done");
}
`
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	cfg := vm.DefaultConfig()
	cfg.Stdout = &out
	cfg.MaxCycles = 500_000_000
	cfg.Listener = &panicAfter{left: 100}
	stats, err := vm.New(res.Prog, cfg).Run()
	if err != nil {
		t.Fatalf("run died instead of degrading: %v", err)
	}
	if len(stats.TaskPanics) == 0 {
		t.Fatal("panic was not recorded")
	}
	p := stats.TaskPanics[0]
	if !strings.Contains(p.Msg, "monitor exploded") || p.Fn == "" {
		t.Errorf("diagnostic incomplete: %+v", p)
	}
}
