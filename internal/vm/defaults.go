package vm

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// defSlot precomputes the default initializer of one local slot, so frame
// entry replaces a per-local type walk with a table scan.
type defSlot struct {
	slot int
	mode defMode
	v    Value
	typ  types.Type
}

type defMode uint8

const (
	// defDirect assigns v as-is (self-contained values: scalars, strings,
	// ranges, domains, locales — no shared backing storage).
	defDirect defMode = iota
	// defCopy assigns v.Copy() (tuples/records whose element storage must
	// be private per frame).
	defCopy
	// defDynamic re-evaluates defaultValue at every frame entry (records
	// with array fields allocate over the registered field-domain globals,
	// whose values can change between calls).
	defDynamic
)

// typeNeedsDynamic reports whether t's default value depends on VM state
// and must be rebuilt per frame rather than precomputed once.
func typeNeedsDynamic(t types.Type) bool {
	switch tt := t.(type) {
	case *types.TupleType:
		return typeNeedsDynamic(tt.Elem)
	case *types.RecordType:
		if tt.IsClass {
			return false
		}
		for _, f := range tt.Fields {
			if _, ok := f.Type.(*types.ArrayType); ok {
				return true
			}
			if typeNeedsDynamic(f.Type) {
				return true
			}
		}
		return false
	case *types.AtomicType:
		return typeNeedsDynamic(tt.Elem)
	}
	return false
}

// defaultsFor returns fn's precomputed local default initializers. Locals
// whose default is the zero Value are skipped outright: fresh slot arrays
// are already zeroed.
func (m *VM) defaultsFor(fn *ir.Func) []defSlot {
	if d, ok := m.defSlots[fn]; ok {
		return d
	}
	var out []defSlot
	for _, l := range fn.Locals {
		if l.Type == nil {
			continue
		}
		if typeNeedsDynamic(l.Type) {
			out = append(out, defSlot{slot: l.Slot, mode: defDynamic, typ: l.Type})
			continue
		}
		v := m.defaultValue(l.Type)
		if v.K == KNil {
			continue
		}
		mode := defDirect
		if v.K == KTuple || v.K == KRecord {
			mode = defCopy
		}
		out = append(out, defSlot{slot: l.Slot, mode: mode, v: v})
	}
	m.defSlots[fn] = out
	return out
}
