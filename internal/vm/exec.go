package vm

import (
	"math"

	"repro/internal/comm"
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
)

// step executes one instruction (or advances the task's iteration driver).
// Returns false when the task blocked or finished.
func (m *VM) step(t *Task) bool {
	act := t.Top()
	if act == nil {
		if t.iter != nil && t.iter.pos < t.iter.end {
			m.startIterCall(t)
			return true
		}
		m.taskFinished(t)
		return false
	}
	if act.Block == nil || act.Idx >= len(act.Block.Instrs) {
		m.popFrame(t, nil)
		return true
	}
	in := act.Block.Instrs[act.Idx]
	m.Stats.Instructions++

	// Static cost (with --fast scaling and i-cache surcharge) comes from
	// the precomputed per-instruction table.
	cycles := m.costTab[in.Addr]
	var acc *ArrayVal

	advance := true
	switch in.Op {
	case ir.OpNop, ir.OpYield, ir.OpZipSetup, ir.OpZipAdvance:
		// cost-only markers

	case ir.OpConst:
		m.bindCell(t, in.Dst, litValue(in.Lit))

	case ir.OpMove:
		if in.Rebind && in.A != m.hereVar {
			// `ref r = x`: bind r to x's storage instead of copying, so
			// writes through r reach x (and the blame edge is an alias).
			m.bindCell(t, in.Dst, makeRef(m.cellOf(t, in.A)))
			break
		}
		src := m.readPtr(t, in.A)
		cycles += m.assignVar(t, in.Dst, src, in)

	case ir.OpBin:
		a := m.readPtr(t, in.A)
		b := m.readPtr(t, in.B)
		// Fast path: int/real/bool operands into a non-composite cell
		// write the result in place (assignVar would reduce to a plain
		// scalar store anyway), skipping two ~200-byte Value copies.
		if in.Dst != nil {
			dst := m.cellOf(t, in.Dst)
			if dst.K == KRef {
				dst = dst.Deref()
			}
			if dst.K != KArray && dst.K != KTuple && dst.K != KRecord {
				if handled, ok := binScalarInto(in.BinOp, a, b, dst); handled {
					if !ok {
						m.fail(t, in, "invalid operands for %s: %s and %s", in.BinOp, a, b)
						return false
					}
					break
				}
			}
		}
		v, extra, ok := m.evalBin(in.BinOp, a, b)
		if !ok {
			m.fail(t, in, "invalid operands for %s: %s and %s", in.BinOp, a, b)
			return false
		}
		cycles += extra
		m.assignVar(t, in.Dst, &v, in)

	case ir.OpUn:
		a := m.readPtr(t, in.A)
		v, ok := evalUn(in.BinOp, a)
		if !ok {
			m.fail(t, in, "invalid operand for unary %s: %s", in.BinOp, a)
			return false
		}
		m.assignVar(t, in.Dst, &v, in)

	case ir.OpMakeTuple:
		// Elements are not copied here: assignVar deep-copies composites
		// when it stores the tuple, and the intermediate is never aliased.
		elems := make([]Value, len(in.Args))
		for i, a := range in.Args {
			elems[i] = *m.readPtr(t, a)
		}
		v := Value{K: KTuple, Elems: elems}
		m.assignVar(t, in.Dst, &v, in)

	case ir.OpTupleGet:
		base := m.readCellChecked(t, in.A, in)
		if base == nil {
			return false
		}
		ix := m.tupleIndex(t, in, base)
		if ix < 0 {
			return false
		}
		m.assignVar(t, in.Dst, &base.Elems[ix], in)

	case ir.OpTupleSet:
		base := m.cellOf(t, in.Dst).Deref()
		if base.K != KTuple && base.K != KRecord {
			m.fail(t, in, "tuple store into non-tuple %s", base)
			return false
		}
		ix := m.tupleIndex(t, in, base)
		if ix < 0 {
			return false
		}
		src := m.readPtr(t, in.A)
		copyValueInto(&base.Elems[ix], src)

	case ir.OpField:
		cycles += m.classDerefCost(t, in.A)
		cell, arr := m.fieldCell(t, in, in.A, in.FieldIx)
		if cell == nil {
			return false
		}
		acc = arr
		cycles += uint64(cell.FlatSize()-1) * m.cost(m.Cfg.Costs.PerElem)
		m.assignVar(t, in.Dst, cell, in)

	case ir.OpFieldStore:
		cycles += m.classDerefCost(t, in.Dst)
		cell, arr := m.fieldCell(t, in, in.Dst, in.FieldIx)
		if cell == nil {
			return false
		}
		acc = arr
		src := m.readPtr(t, in.A)
		cycles += m.assignInto(cell, src)

	case ir.OpRefField:
		cycles += m.classDerefCost(t, in.A)
		cell, arr := m.refFieldCell(t, in)
		if cell == nil {
			return false
		}
		acc = arr
		m.bindCell(t, in.Dst, makeRef(cell))

	case ir.OpIndex:
		cell, arr, idx, ok := m.elemCell(t, in, in.A)
		if !ok {
			return false
		}
		acc = arr
		fs := cell.FlatSize()
		cycles += uint64(fs-1) * m.cost(m.Cfg.Costs.PerElem)
		cycles += m.commCost(t, arr, idx, int64(fs)*8, false)
		m.assignVar(t, in.Dst, cell, in)

	case ir.OpIndexStore:
		cell, arr, idx, ok := m.elemCell(t, in, in.Dst)
		if !ok {
			return false
		}
		acc = arr
		src := m.readPtr(t, in.A)
		fs := int64(src.FlatSize())
		cycles += m.assignInto(cell, src)
		cycles += m.commCost(t, arr, idx, fs*8, true)

	case ir.OpRefElem:
		cell, arr, idx, ok := m.elemCell(t, in, in.A)
		if !ok {
			return false
		}
		acc = arr
		cycles += m.commCost(t, arr, idx, 8, false)
		m.bindCell(t, in.Dst, makeRef(cell))

	case ir.OpSlice:
		base := m.readCellChecked(t, in.A, in)
		if base == nil || base.K != KArray {
			m.fail(t, in, "slicing a non-array")
			return false
		}
		idx := m.readVal(t, in.B)
		view, err := sliceArray(base.Arr, idx)
		if err != "" {
			m.fail(t, in, "%s", err)
			return false
		}
		acc = base.Arr.Owner()
		m.bindCell(t, in.Dst, Value{K: KArray, Arr: view})

	case ir.OpMakeRange:
		lo := m.readVal(t, in.A).AsInt()
		hiOrN := m.readVal(t, in.B).AsInt()
		r := RangeVal{Lo: lo, Hi: hiOrN, Stride: 1}
		if in.Method == "counted" {
			r.Hi = lo + hiOrN - 1
		}
		if len(in.Args) > 0 {
			r.Stride = m.readVal(t, in.Args[0]).AsInt()
			if r.Stride <= 0 {
				m.fail(t, in, "range stride must be positive")
				return false
			}
		}
		rv := Value{K: KRange, Rng: r}
		m.assignVar(t, in.Dst, &rv, in)

	case ir.OpMakeDomain:
		d := DomainVal{Rank: len(in.Args)}
		for i, a := range in.Args {
			rv := m.readVal(t, a)
			if rv.K != KRange {
				m.fail(t, in, "domain dimension %d is not a range", i+1)
				return false
			}
			d.Dims[i] = rv.Rng
		}
		dv := Value{K: KDomain, Dom: d}
		m.assignVar(t, in.Dst, &dv, in)

	case ir.OpDomMethod:
		v, ok := m.domMethod(t, in)
		if !ok {
			return false
		}
		m.assignVar(t, in.Dst, &v, in)

	case ir.OpQuery:
		v, ok := m.query(t, in)
		if !ok {
			return false
		}
		m.assignVar(t, in.Dst, &v, in)

	case ir.OpAllocArray:
		dv := m.readVal(t, in.A)
		if dv.K != KDomain {
			m.fail(t, in, "array allocation over non-domain %s", dv)
			return false
		}
		var inner *DomainVal
		if in.B != nil {
			bv := m.readVal(t, in.B)
			if bv.K == KDomain {
				d := bv.Dom
				inner = &d
			}
		}
		at, _ := in.Dst.Type.(*types.ArrayType)
		var elemT types.Type = types.RealType
		if at != nil {
			elemT = at.Elem
		}
		arr, extra := m.allocArray(t, elemT, dv.Dom, inner, in.Dst, in)
		cycles += extra
		m.bindCell(t, in.Dst, Value{K: KArray, Arr: arr})

	case ir.OpAllocRec:
		rt, _ := in.Dst.Type.(*types.RecordType)
		if rt == nil {
			m.fail(t, in, "new on non-class type")
			return false
		}
		obj, extra := m.allocInstance(t, rt, in.Dst, in)
		cycles += extra
		ov := Value{K: KClass, Obj: obj}
		m.assignVar(t, in.Dst, &ov, in)

	case ir.OpCall:
		m.charge(t, cycles)
		if !m.noLis {
			m.lis.Exec(cycles, t, in, nil)
		}
		m.doCall(t, in)
		return true // doCall manages Idx

	case ir.OpBuiltin:
		extra, ok := m.doBuiltin(t, in)
		if !ok {
			return false
		}
		cycles += extra
		if in.Method == "sync_end" && t.blockedOn != nil {
			// Blocked waiting for begin-tasks: charge and pause without
			// advancing (re-check on resume is unnecessary: sync_end
			// completes when unblocked).
			m.charge(t, cycles)
			if !m.noLis {
				m.lis.Exec(cycles, t, in, nil)
			}
			act.Idx++
			return false
		}

	case ir.OpSpawn:
		m.charge(t, cycles)
		if !m.noLis {
			m.lis.Exec(cycles, t, in, nil)
		}
		m.doSpawn(t, in)
		if t.blockedOn == nil {
			// Non-blocking (begin) or empty iteration: continue past.
			act.Idx++
			return true
		}
		// Blocked at the join barrier: the IP stays on the spawn
		// instruction (stack walks of the blocked master resolve to the
		// forall statement); taskFinished advances it on resume.
		return false

	case ir.OpJmp:
		m.charge(t, cycles)
		if !m.noLis {
			m.lis.Exec(cycles, t, in, nil)
		}
		act.Block = in.Targets[0]
		act.Idx = 0
		return true

	case ir.OpBr:
		cond := m.readPtr(t, in.A)
		m.charge(t, cycles)
		if !m.noLis {
			m.lis.Exec(cycles, t, in, nil)
		}
		if cond.K != KBool {
			m.fail(t, in, "branch on non-bool %s", cond)
			return false
		}
		if cond.B {
			act.Block = in.Targets[0]
		} else {
			act.Block = in.Targets[1]
		}
		act.Idx = 0
		return true

	case ir.OpRet:
		var rv *Value
		if in.A != nil {
			rv = m.readPtr(t, in.A)
		}
		m.charge(t, cycles)
		if !m.noLis {
			m.lis.Exec(cycles, t, in, nil)
		}
		m.popFrame(t, rv)
		return true

	default:
		m.fail(t, in, "unimplemented op %s", in.Op)
		return false
	}

	if m.err != nil {
		return false
	}
	m.charge(t, cycles)
	if !m.noLis {
		m.lis.Exec(cycles, t, in, acc)
	}
	if advance {
		act.Idx++
	}
	return true
}

// ------------------------------------------------------------- operands

func litValue(l *ir.Lit) Value {
	switch l.T.Kind() {
	case types.Int:
		return IntVal(l.I)
	case types.Real:
		return RealVal(l.F)
	case types.Bool:
		return BoolVal(l.B)
	case types.String:
		return StrVal(l.S)
	}
	return Value{}
}

// cellOf returns the raw storage cell of v in t's context.
func (m *VM) cellOf(t *Task, v *ir.Var) *Value {
	if v.IsGlobal {
		return &m.globals[v.Slot]
	}
	act := t.Top()
	return &act.Slots[v.Slot]
}

// readVal reads v's value through references.
func (m *VM) readVal(t *Task, v *ir.Var) Value {
	if v == m.hereVar {
		return Value{K: KLocale, I: int64(t.Locale)}
	}
	return *m.cellOf(t, v).Deref()
}

// readPtr returns a pointer to v's dereferenced storage without copying
// the Value. Callers must treat the result as read-only and consume it
// before executing another instruction (`here` resolves to a scratch cell
// that the next readPtr of `here` overwrites).
func (m *VM) readPtr(t *Task, v *ir.Var) *Value {
	if v == m.hereVar {
		m.hereTmp = Value{K: KLocale, I: int64(t.Locale)}
		return &m.hereTmp
	}
	return m.cellOf(t, v).Deref()
}

// readCellChecked reads v's dereferenced cell, failing on nil frames.
func (m *VM) readCellChecked(t *Task, v *ir.Var, in *ir.Instr) *Value {
	return m.cellOf(t, v).Deref()
}

// bindCell replaces v's cell outright (alias binding, const, alloc).
func (m *VM) bindCell(t *Task, v *ir.Var, val Value) {
	if v == nil {
		return
	}
	*m.cellOf(t, v) = val
}

// makeRef wraps a cell as a reference, collapsing ref-to-ref.
func makeRef(cell *Value) Value {
	if cell.K == KRef {
		return *cell
	}
	return Value{K: KRef, Ref: cell}
}

// assignVar assigns through refs with array-aware semantics; returns
// extra cycles for bulk copies. src is a pointer to avoid copying the
// Value through the call (see copyValueInto for the aliasing argument).
func (m *VM) assignVar(t *Task, v *ir.Var, src *Value, in *ir.Instr) uint64 {
	if v == nil {
		return 0
	}
	cell := m.cellOf(t, v)
	if cell.K == KRef {
		cell = cell.Deref()
	}
	return m.assignInto(cell, src)
}

// assignVarV is assignVar for call sites with non-addressable sources
// (builtin results); the extra copy is fine off the hot path.
func (m *VM) assignVarV(t *Task, v *ir.Var, src Value, in *ir.Instr) uint64 {
	return m.assignVar(t, v, &src, in)
}

// assignInto implements MiniChapel assignment semantics into a cell:
// arrays assign elementwise (views write through to their parents),
// scalars broadcast over arrays and tuples, everything else deep-copies.
func (m *VM) assignInto(cell *Value, src *Value) uint64 {
	src = src.Deref()
	if cell.K == KArray && cell.Arr != nil {
		dst := cell.Arr
		switch src.K {
		case KArray:
			return m.copyArray(dst, src.Arr)
		default:
			// Broadcast scalar.
			n := dst.Dom.Size()
			idx := make([]int64, dst.Dom.Rank)
			for p := int64(0); p < n; p++ {
				dst.Dom.Unlinear(p, idx)
				if c := dst.Cell(idx); c != nil {
					copyValueInto(c, src)
				}
			}
			return uint64(n) * m.cost(m.Cfg.Costs.PerElem)
		}
	}
	if cell.K == KNil && src.K == KArray && src.Arr != nil {
		// Fresh array binding from an initializer: clone.
		clone, extra := m.cloneArray(src.Arr)
		*cell = Value{K: KArray, Arr: clone}
		return extra
	}
	if (cell.K == KTuple || cell.K == KRecord) && src.K != cell.K {
		// Scalar broadcast over tuple.
		for i := range cell.Elems {
			copyValueInto(&cell.Elems[i], src)
		}
		return uint64(len(cell.Elems)) * m.cost(m.Cfg.Costs.PerElem)
	}
	n := src.FlatSize()
	copyValueInto(cell, src)
	if n > 1 {
		return uint64(n-1) * m.cost(m.Cfg.Costs.PerElem)
	}
	return 0
}

// copyArray copies src's visible elements into dst's visible elements.
func (m *VM) copyArray(dst, src *ArrayVal) uint64 {
	n := dst.Dom.Size()
	if src.Dom.Size() != n {
		// Size-mismatched array assignment: copy the overlap.
		if src.Dom.Size() < n {
			n = src.Dom.Size()
		}
	}
	di := make([]int64, dst.Dom.Rank)
	si := make([]int64, src.Dom.Rank)
	for p := int64(0); p < n; p++ {
		dst.Dom.Unlinear(p, di)
		src.Dom.Unlinear(p, si)
		dc, sc := dst.Cell(di), src.Cell(si)
		if dc != nil && sc != nil {
			*dc = sc.Copy()
		}
	}
	return uint64(n) * m.cost(m.Cfg.Costs.PerElem)
}

// cloneArray duplicates an array (value-semantics initialization).
func (m *VM) cloneArray(src *ArrayVal) (*ArrayVal, uint64) {
	out := &ArrayVal{
		Dom: src.Dom, Layout: src.Dom, ElemT: src.ElemT,
		Data: make([]Value, src.Dom.Size()), LocaleID: src.LocaleID,
	}
	m.registerAlloc(out, nil, nil)
	si := make([]int64, src.Dom.Rank)
	for p := int64(0); p < src.Dom.Size(); p++ {
		src.Dom.Unlinear(p, si)
		if c := src.Cell(si); c != nil {
			out.Data[p] = c.Copy()
		}
	}
	return out, m.cost(m.Cfg.Costs.AllocBase) + uint64(len(out.Data))*m.cost(m.Cfg.Costs.PerElem)
}

// classDerefCost charges the heap pointer chase when a field access goes
// through a class handle (nested-structure access, paper §V.B).
func (m *VM) classDerefCost(t *Task, base *ir.Var) uint64 {
	if base == nil {
		return 0
	}
	if m.cellOf(t, base).Deref().K == KClass {
		return m.cost(m.Cfg.Costs.ClassDeref)
	}
	return 0
}

// tupleIndex resolves a 1-based tuple index from in.B or in.FieldIx.
func (m *VM) tupleIndex(t *Task, in *ir.Instr, base *Value) int {
	var ix int64
	if in.FieldIx >= 0 {
		ix = int64(in.FieldIx)
	} else {
		ix = m.readVal(t, in.B).AsInt()
	}
	if base.K == KTuple {
		ix-- // Chapel tuples are 1-based
	}
	if ix < 0 || int(ix) >= len(base.Elems) {
		m.fail(t, in, "tuple index %d out of bounds (size %d)", ix+1, len(base.Elems))
		return -1
	}
	return int(ix)
}

// fieldCell resolves base.FieldIx to a storage cell. Returns the owning
// array for address attribution when the base is an element ref.
func (m *VM) fieldCell(t *Task, in *ir.Instr, baseVar *ir.Var, fieldIx int) (*Value, *ArrayVal) {
	base := m.cellOf(t, baseVar).Deref()
	switch base.K {
	case KRecord, KTuple:
		if fieldIx < 0 || fieldIx >= len(base.Elems) {
			m.fail(t, in, "field index %d out of range", fieldIx)
			return nil, nil
		}
		return &base.Elems[fieldIx], nil
	case KClass:
		if base.Obj == nil {
			m.fail(t, in, "field access on nil class instance")
			return nil, nil
		}
		if fieldIx < 0 || fieldIx >= len(base.Obj.Fields) {
			m.fail(t, in, "field index %d out of range", fieldIx)
			return nil, nil
		}
		return &base.Obj.Fields[fieldIx], nil
	}
	m.fail(t, in, "field access on %s", base)
	return nil, nil
}

// refFieldCell resolves OpRefField (static or dynamic index).
func (m *VM) refFieldCell(t *Task, in *ir.Instr) (*Value, *ArrayVal) {
	base := m.cellOf(t, in.A).Deref()
	switch base.K {
	case KTuple, KRecord:
		ix := m.tupleIndex(t, in, base)
		if ix < 0 {
			return nil, nil
		}
		return &base.Elems[ix], nil
	case KClass:
		if base.Obj == nil {
			m.fail(t, in, "field access on nil class instance")
			return nil, nil
		}
		ix := in.FieldIx
		if ix < 0 {
			ix = int(m.readVal(t, in.B).AsInt())
		}
		if ix < 0 || ix >= len(base.Obj.Fields) {
			m.fail(t, in, "field index out of range")
			return nil, nil
		}
		return &base.Obj.Fields[ix], nil
	}
	m.fail(t, in, "ref-field on %s", base)
	return nil, nil
}

// elemCell resolves an array element access to its storage cell,
// returning the owning allocation and the resolved index.
func (m *VM) elemCell(t *Task, in *ir.Instr, baseVar *ir.Var) (*Value, *ArrayVal, []int64, bool) {
	base := m.cellOf(t, baseVar).Deref()
	if base.K != KArray || base.Arr == nil {
		m.fail(t, in, "indexing non-array value %s (var %s)", base, baseVar.Name)
		return nil, nil, nil, false
	}
	arr := base.Arr
	// Resolved indices live in a VM scratch buffer: element accesses
	// dominate hot loops and the indices never outlive the instruction.
	idx := m.idxScratch[:0]
	if len(in.Args) == 1 {
		iv := m.readVal(t, in.Args[0])
		if iv.K == KTuple {
			for _, e := range iv.Elems {
				idx = append(idx, e.AsInt())
			}
		} else {
			idx = append(idx, iv.AsInt())
		}
	} else {
		for _, a := range in.Args {
			idx = append(idx, m.readVal(t, a).AsInt())
		}
	}
	if len(idx) != arr.Dom.Rank {
		m.fail(t, in, "rank-%d array indexed with %d subscripts", arr.Dom.Rank, len(idx))
		return nil, nil, nil, false
	}
	if !arr.Dom.Contains(idx) {
		m.fail(t, in, "index %v out of bounds %s of array %s", idx, arr.Dom, baseVar.Name)
		return nil, nil, nil, false
	}
	cell := arr.Cell(idx)
	if cell == nil {
		m.fail(t, in, "index %v outside array layout %s", idx, arr.Layout)
		return nil, nil, nil, false
	}
	return cell, arr.Owner(), idx, true
}

// sliceArray builds a view over base restricted by a domain or range.
func sliceArray(base *ArrayVal, idx Value) (*ArrayVal, string) {
	var d DomainVal
	switch idx.K {
	case KDomain:
		d = idx.Dom
	case KRange:
		d = DomainVal{Rank: 1, Dims: [3]RangeVal{idx.Rng}}
	default:
		return nil, "slice index must be a domain or range"
	}
	if d.Rank != base.Dom.Rank {
		return nil, "slice rank mismatch"
	}
	owner := base.Owner()
	return &ArrayVal{
		Dom:      d,
		Layout:   base.Layout,
		Data:     base.Data,
		ElemT:    base.ElemT,
		View:     owner,
		Addr:     owner.Addr,
		OwnerVar: owner.OwnerVar,
		LocaleID: owner.LocaleID,
	}, ""
}

// commCost models remote access for multi-locale runs and reports the
// transfer to the monitor (communication blame, paper §VI). For
// Block-distributed arrays the element's home locale decides locality.
// With Config.CommAggregate, Block-distributed accesses route through the
// modeled communication runtime (internal/comm) instead of paying one
// message per element.
func (m *VM) commCost(t *Task, arr *ArrayVal, idx []int64, bytes int64, write bool) uint64 {
	if arr == nil {
		return 0
	}
	home := arr.LocaleID
	if arr.DistBlock && idx != nil {
		home = arr.ElemHome(idx)
	}
	if m.comm != nil && arr.DistBlock && arr.NumLoc > 1 && idx != nil {
		return m.commAccess(t, arr, idx, bytes, home, write)
	}
	if home == t.Locale {
		return 0
	}
	m.noteOwnerRemote(t)
	m.Stats.CommMessages++
	m.Stats.CommBytes += bytes
	in := m.currentInstr(t)
	m.lis.Comm(bytes, home, t.Locale, arr.OwnerVar, t, in)
	lat := m.Cfg.Costs.CommLatency
	if out := m.fault.Send(home, t.Locale); out.ExtraLat > 0 {
		lat += uint64(out.ExtraLat) * m.Cfg.Costs.CommLatency
	}
	return m.cost(lat + uint64(bytes)*m.Cfg.Costs.CommPerByte)
}

// noteOwnerRemote records a scheduling violation: an element access at a
// site the static plan proved owner-computes (SiteOwner) that still
// targeted a remote locale. Under owner-aligned forall scheduling this
// counter stays 0; the CI smoke and goldens pin that.
func (m *VM) noteOwnerRemote(t *Task) {
	plan := m.Cfg.CommPlan
	if plan == nil {
		return
	}
	if in := m.currentInstr(t); in != nil && plan.Sites[in.Addr].Class == comm.SiteOwner {
		m.Stats.OwnerSiteRemote++
	}
}

// currentInstr returns the instruction t is executing, or nil.
func (m *VM) currentInstr(t *Task) *ir.Instr {
	if act := t.Top(); act != nil && act.Block != nil && act.Idx < len(act.Block.Instrs) {
		return act.Block.Instrs[act.Idx]
	}
	return nil
}

// commAccess delegates one Block-distributed element access to the
// aggregation runtime and charges the messages it decides on.
func (m *VM) commAccess(t *Task, arr *ArrayVal, idx []int64, bytes int64, home int, write bool) uint64 {
	elem := arr.Layout.Linear(idx)
	in := m.currentInstr(t)
	if home == t.Locale {
		// Local access: writes must still invalidate the other locales'
		// cached copies of this element.
		if write {
			var site uint64
			if in != nil {
				site = in.Addr
			}
			for _, ev := range m.comm.LocalWrite(arr.OwnerVar, site, arr.Addr, elem, t.Locale) {
				m.lis.CommAgg(ev, t)
			}
		}
		return 0
	}
	m.noteOwnerRemote(t)
	a := comm.Access{
		Arr: arr.Addr, Var: arr.OwnerVar, Elem: elem, Bytes: bytes,
		Home: home, Loc: t.Locale, Task: t.ID, Write: write,
		LayoutLen: arr.Layout.Size(),
	}
	if in != nil {
		a.Site = in.Addr
	}
	if it := t.iter; it != nil && it.space.Rank == 1 && arr.Layout.Rank == 1 {
		// The task is driving a rank-1 forall chunk: expose the sweep
		// window in layout-linear element space for halo prefetching.
		d := it.space.Dims[0]
		st := d.Stride
		if st <= 0 {
			st = 1
		}
		base := arr.Layout.Dims[0].Lo
		a.InSweep = true
		a.SweepLo = d.Lo + it.start*st - base
		a.SweepHi = d.Lo + (it.end-1)*st - base
	}
	a.HomeOf = func(e int64) int {
		var buf [3]int64
		ix := buf[:arr.Layout.Rank]
		arr.Layout.Unlinear(e, ix)
		return arr.ElemHome(ix)
	}
	var cycles uint64
	for _, ev := range m.comm.Access(a) {
		if ev.Message() {
			m.Stats.CommMessages++
			m.Stats.CommBytes += ev.Bytes
			owner := ev.Var
			if owner == nil {
				owner = arr.OwnerVar
			}
			m.lis.Comm(ev.Bytes, ev.From, ev.To, owner, t, in)
			cycles += m.cost(m.Cfg.Costs.CommLatency*uint64(1+ev.ExtraLat) + uint64(ev.Bytes)*m.Cfg.Costs.CommPerByte)
		}
		m.lis.CommAgg(ev, t)
	}
	return cycles
}

// ------------------------------------------------------------ arithmetic

// evalBin computes a binary operation with promotion over tuples and
// arrays. Returns extra cycles for elementwise work. Operands are passed
// by pointer (and only read): binary ops run on every hot-loop iteration
// and Value is too large to copy per call.
func (m *VM) evalBin(op token.Kind, a, b *Value) (Value, uint64, bool) {
	a = a.Deref()
	b = b.Deref()
	// Array promotion.
	if a.K == KArray || b.K == KArray {
		return m.evalArrayBin(op, a, b)
	}
	// Tuple elementwise.
	if a.K == KTuple || b.K == KTuple {
		return m.evalTupleBin(op, a, b)
	}
	switch op {
	case token.AND:
		return BoolVal(a.B && b.B), 0, a.K == KBool && b.K == KBool
	case token.OR:
		return BoolVal(a.B || b.B), 0, a.K == KBool && b.K == KBool
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		return compare(op, a, b)
	}
	// Numeric.
	if a.K == KInt && b.K == KInt {
		switch op {
		case token.PLUS:
			return IntVal(a.I + b.I), 0, true
		case token.MINUS:
			return IntVal(a.I - b.I), 0, true
		case token.STAR:
			return IntVal(a.I * b.I), 0, true
		case token.SLASH:
			if b.I == 0 {
				return Value{}, 0, false
			}
			return IntVal(a.I / b.I), 0, true
		case token.PERCENT:
			if b.I == 0 {
				return Value{}, 0, false
			}
			return IntVal(a.I % b.I), 0, true
		case token.POW:
			return IntVal(ipow(a.I, b.I)), 0, true
		}
	}
	if (a.K == KInt || a.K == KReal) && (b.K == KInt || b.K == KReal) {
		x, y := a.AsReal(), b.AsReal()
		switch op {
		case token.PLUS:
			return RealVal(x + y), 0, true
		case token.MINUS:
			return RealVal(x - y), 0, true
		case token.STAR:
			return RealVal(x * y), 0, true
		case token.SLASH:
			return RealVal(x / y), 0, true
		case token.POW:
			return RealVal(math.Pow(x, y)), 0, true
		}
	}
	if a.K == KString && b.K == KString && op == token.PLUS {
		return StrVal(a.S + b.S), 0, true
	}
	return Value{}, 0, false
}

// binScalarInto is the hot-path form of evalBin for int/real/bool
// operands, writing the result straight into out (the caller guarantees
// out is not an array/tuple/record cell, where assignment broadcasts).
// handled=false means "not a case this covers — use evalBin"; when
// handled, ok mirrors evalBin's ok exactly (e.g. division by zero).
// out is only written on success, and only after both operands are
// read, so out may alias a or b.
func binScalarInto(op token.Kind, a, b, out *Value) (handled, ok bool) {
	if a.K == KInt && b.K == KInt {
		var n int64
		switch op {
		case token.PLUS:
			n = a.I + b.I
		case token.MINUS:
			n = a.I - b.I
		case token.STAR:
			n = a.I * b.I
		case token.SLASH:
			if b.I == 0 {
				return true, false
			}
			n = a.I / b.I
		case token.PERCENT:
			if b.I == 0 {
				return true, false
			}
			n = a.I % b.I
		case token.POW:
			n = ipow(a.I, b.I)
		case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
			return true, cmpRealInto(op, a.AsReal(), b.AsReal(), out)
		default:
			return false, false
		}
		*out = Value{K: KInt, I: n}
		return true, true
	}
	if (a.K == KInt || a.K == KReal) && (b.K == KInt || b.K == KReal) {
		x, y := a.AsReal(), b.AsReal()
		var f float64
		switch op {
		case token.PLUS:
			f = x + y
		case token.MINUS:
			f = x - y
		case token.STAR:
			f = x * y
		case token.SLASH:
			f = x / y
		case token.POW:
			f = math.Pow(x, y)
		case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
			return true, cmpRealInto(op, x, y, out)
		default:
			return false, false
		}
		*out = Value{K: KReal, F: f}
		return true, true
	}
	if a.K == KBool && b.K == KBool {
		var r bool
		switch op {
		case token.AND:
			r = a.B && b.B
		case token.OR:
			r = a.B || b.B
		case token.EQ:
			r = a.B == b.B
		case token.NEQ:
			r = a.B != b.B
		default:
			return false, false
		}
		*out = Value{K: KBool, B: r}
		return true, true
	}
	return false, false
}

// cmpRealInto writes the six-way numeric comparison (the same AsReal
// semantics compare uses for non-string scalars) into out.
func cmpRealInto(op token.Kind, x, y float64, out *Value) bool {
	var r bool
	switch op {
	case token.EQ:
		r = x == y
	case token.NEQ:
		r = x != y
	case token.LT:
		r = x < y
	case token.LE:
		r = x <= y
	case token.GT:
		r = x > y
	case token.GE:
		r = x >= y
	}
	*out = Value{K: KBool, B: r}
	return true
}

func compare(op token.Kind, a, b *Value) (Value, uint64, bool) {
	// Class/nil comparisons.
	if a.K == KClass || b.K == KClass || a.K == KNil || b.K == KNil {
		var ap, bp *Instance
		if a.K == KClass {
			ap = a.Obj
		}
		if b.K == KClass {
			bp = b.Obj
		}
		switch op {
		case token.EQ:
			return BoolVal(ap == bp), 0, true
		case token.NEQ:
			return BoolVal(ap != bp), 0, true
		}
		return Value{}, 0, false
	}
	if a.K == KString && b.K == KString {
		switch op {
		case token.EQ:
			return BoolVal(a.S == b.S), 0, true
		case token.NEQ:
			return BoolVal(a.S != b.S), 0, true
		}
	}
	if a.K == KBool && b.K == KBool {
		switch op {
		case token.EQ:
			return BoolVal(a.B == b.B), 0, true
		case token.NEQ:
			return BoolVal(a.B != b.B), 0, true
		}
	}
	x, y := a.AsReal(), b.AsReal()
	switch op {
	case token.EQ:
		return BoolVal(x == y), 0, true
	case token.NEQ:
		return BoolVal(x != y), 0, true
	case token.LT:
		return BoolVal(x < y), 0, true
	case token.LE:
		return BoolVal(x <= y), 0, true
	case token.GT:
		return BoolVal(x > y), 0, true
	case token.GE:
		return BoolVal(x >= y), 0, true
	}
	return Value{}, 0, false
}

func (m *VM) evalTupleBin(op token.Kind, a, b *Value) (Value, uint64, bool) {
	var n int
	if a.K == KTuple {
		n = len(a.Elems)
	} else {
		n = len(b.Elems)
	}
	if a.K == KTuple && b.K == KTuple && len(a.Elems) != len(b.Elems) {
		return Value{}, 0, false
	}
	out := Value{K: KTuple, Elems: make([]Value, n)}
	var extra uint64
	for i := 0; i < n; i++ {
		ea, eb := a, b
		if a.K == KTuple {
			ea = &a.Elems[i]
		}
		if b.K == KTuple {
			eb = &b.Elems[i]
		}
		v, e, ok := m.evalBin(op, ea, eb)
		if !ok {
			return Value{}, 0, false
		}
		out.Elems[i] = v
		extra += e + m.cost(m.Cfg.Costs.PerElem)
	}
	// Tuple arithmetic constructs a fresh result tuple (Chapel tuple ops
	// are not in-place) — the construction/destruction overhead the CENN
	// rewrite eliminates (paper §V.C).
	extra += m.cost(m.Cfg.Costs.TupleBase + uint64(n)*m.Cfg.Costs.TuplePerEl)
	return out, extra, true
}

func (m *VM) evalArrayBin(op token.Kind, a, b *Value) (Value, uint64, bool) {
	var src *ArrayVal
	if a.K == KArray {
		src = a.Arr
	} else {
		src = b.Arr
	}
	out := &ArrayVal{Dom: src.Dom, Layout: src.Dom, ElemT: src.ElemT, Data: make([]Value, src.Dom.Size()), LocaleID: src.LocaleID}
	var extra uint64
	ia := make([]int64, src.Dom.Rank)
	for p := int64(0); p < src.Dom.Size(); p++ {
		src.Dom.Unlinear(p, ia)
		ea, eb := a, b
		if a.K == KArray {
			c := a.Arr.Cell(ia)
			if c == nil {
				return Value{}, 0, false
			}
			ea = c
		}
		if b.K == KArray {
			c := b.Arr.Cell(ia)
			if c == nil {
				return Value{}, 0, false
			}
			eb = c
		}
		v, e, ok := m.evalBin(op, ea, eb)
		if !ok {
			return Value{}, 0, false
		}
		out.Data[p] = v
		extra += e + m.cost(m.Cfg.Costs.PerElem)
	}
	return Value{K: KArray, Arr: out}, extra, true
}

func evalUn(op token.Kind, a *Value) (Value, bool) {
	a = a.Deref()
	switch op {
	case token.MINUS:
		switch a.K {
		case KInt:
			return IntVal(-a.I), true
		case KReal:
			return RealVal(-a.F), true
		case KTuple:
			out := Value{K: KTuple, Elems: make([]Value, len(a.Elems))}
			for i := range a.Elems {
				v, ok := evalUn(op, &a.Elems[i])
				if !ok {
					return Value{}, false
				}
				out.Elems[i] = v
			}
			return out, true
		}
	case token.NOT:
		if a.K == KBool {
			return BoolVal(!a.B), true
		}
	}
	return Value{}, false
}

func ipow(a, b int64) int64 {
	if b < 0 {
		return 0
	}
	v := int64(1)
	for i := int64(0); i < b; i++ {
		v *= a
	}
	return v
}

// ---------------------------------------------------------------- memory

// defaultValue builds the zero value of a type (arrays inside records use
// the registered field domains).
func (m *VM) defaultValue(t types.Type) Value {
	switch tt := t.(type) {
	case *types.Basic:
		switch tt.K {
		case types.Int:
			return IntVal(0)
		case types.Real:
			return RealVal(0)
		case types.Bool:
			return BoolVal(false)
		case types.String:
			return StrVal("")
		case types.LocaleK:
			return Value{K: KLocale}
		}
		return Value{}
	case *types.TupleType:
		out := Value{K: KTuple, Elems: make([]Value, tt.Count)}
		for i := range out.Elems {
			out.Elems[i] = m.defaultValue(tt.Elem)
		}
		return out
	case *types.RecordType:
		if tt.IsClass {
			return Value{K: KNil}
		}
		return m.defaultRecord(tt, nil, nil)
	case *types.AtomicType:
		return m.defaultValue(tt.Elem)
	case *types.RangeType:
		return Value{K: KRange, Rng: RangeVal{Lo: 0, Hi: -1, Stride: 1}}
	case *types.DomainType:
		return Value{K: KDomain, Dom: DomainVal{Rank: tt.Rank}}
	case *types.ArrayType:
		// Unallocated array slot: filled by OpAllocArray or cloning.
		return Value{}
	}
	return Value{}
}

// defaultRecord builds a record value, allocating array fields over their
// registered global domains.
func (m *VM) defaultRecord(rt *types.RecordType, ownerVar *ir.Var, site *ir.Instr) Value {
	out := Value{K: KRecord, RT: rt, Elems: make([]Value, len(rt.Fields))}
	for i, f := range rt.Fields {
		if at, ok := f.Type.(*types.ArrayType); ok {
			if dv, ok2 := m.fieldDomainValue(rt, i); ok2 {
				arr, _ := m.allocArray(nil, at.Elem, dv, nil, ownerVar, site)
				out.Elems[i] = Value{K: KArray, Arr: arr}
				continue
			}
		}
		out.Elems[i] = m.defaultValue(f.Type)
	}
	return out
}

// fieldDomainValue reads the registered domain global for record field i.
func (m *VM) fieldDomainValue(rt *types.RecordType, i int) (DomainVal, bool) {
	fd := m.Prog.FieldDomains[rt]
	if fd == nil {
		return DomainVal{}, false
	}
	gv, ok := fd[i]
	if !ok {
		return DomainVal{}, false
	}
	v := m.globals[gv.Slot]
	if v.K != KDomain {
		return DomainVal{}, false
	}
	return v.Dom, true
}

// allocArray creates an array over dom; nested element arrays are
// allocated over inner. Returns the descriptor and extra cycles.
func (m *VM) allocArray(t *Task, elemT types.Type, dom DomainVal, inner *DomainVal, ownerVar *ir.Var, site *ir.Instr) (*ArrayVal, uint64) {
	n := dom.Size()
	arr := &ArrayVal{Dom: dom, Layout: dom, ElemT: elemT, Data: make([]Value, n)}
	if t != nil {
		arr.LocaleID = t.Locale
	}
	if dom.Dist {
		arr.DistBlock = true
		arr.NumLoc = m.Cfg.NumLocales
	}
	// Initialization cost scales with the element footprint (an
	// [Elems] 8*real costs 8x an [Elems] real — the VG optimization's
	// savings, paper §V.C).
	elemWords := uint64(1)
	if elemT != nil && elemT.Size() > 8 {
		elemWords = uint64(elemT.Size() / 8)
	}
	extra := m.cost(m.Cfg.Costs.AllocBase) + uint64(n)*elemWords*m.cost(m.Cfg.Costs.AllocPerEl)
	switch et := elemT.(type) {
	case *types.ArrayType:
		for i := range arr.Data {
			var d DomainVal
			if inner != nil {
				d = *inner
			}
			sub, e := m.allocArray(t, et.Elem, d, nil, ownerVar, site)
			arr.Data[i] = Value{K: KArray, Arr: sub}
			extra += e
		}
	case *types.RecordType:
		if et.IsClass {
			for i := range arr.Data {
				arr.Data[i] = Value{K: KNil}
			}
		} else {
			for i := range arr.Data {
				arr.Data[i] = m.defaultRecord(et, ownerVar, site)
			}
		}
	default:
		dv := m.defaultValue(elemT)
		for i := range arr.Data {
			arr.Data[i] = dv.Copy()
		}
	}
	m.registerAlloc(arr, ownerVar, site)
	return arr, extra
}

// registerAlloc assigns an address range and reports the allocation.
func (m *VM) registerAlloc(arr *ArrayVal, ownerVar *ir.Var, site *ir.Instr) {
	elemSize := int64(8)
	if arr.ElemT != nil {
		elemSize = arr.ElemT.Size()
	}
	arr.SizeBytes = arr.Dom.Size() * elemSize
	arr.Addr = m.nextAddr
	m.nextAddr += uint64(arr.SizeBytes) + 64
	arr.OwnerVar = ownerVar
	m.Stats.Allocations++
	m.Stats.AllocBytes += arr.SizeBytes
	m.lis.Alloc(arr.Addr, arr.SizeBytes, ownerVar, site)
}

// allocInstance creates a class instance.
func (m *VM) allocInstance(t *Task, rt *types.RecordType, ownerVar *ir.Var, site *ir.Instr) (*Instance, uint64) {
	obj := &Instance{Type: rt, Fields: make([]Value, len(rt.Fields))}
	extra := m.cost(m.Cfg.Costs.ClassAlloc)
	for i, f := range rt.Fields {
		if at, ok := f.Type.(*types.ArrayType); ok {
			if dv, ok2 := m.fieldDomainValue(rt, i); ok2 {
				arr, e := m.allocArray(t, at.Elem, dv, nil, ownerVar, site)
				obj.Fields[i] = Value{K: KArray, Arr: arr}
				extra += e
				continue
			}
		}
		obj.Fields[i] = m.defaultValue(f.Type)
	}
	obj.SizeBytes = rt.InstanceSize()
	obj.Addr = m.nextAddr
	m.nextAddr += uint64(obj.SizeBytes) + 64
	obj.OwnerVar = ownerVar
	if t != nil {
		obj.LocaleID = t.Locale
	}
	m.Stats.Allocations++
	m.Stats.AllocBytes += obj.SizeBytes
	m.lis.Alloc(obj.Addr, obj.SizeBytes, ownerVar, site)
	return obj, extra
}

// ------------------------------------------------------------ calls/ret

// doCall pushes the callee frame, binding arguments directly into the
// callee's slots (no intermediate args slice; composites are deep-copied,
// scalars moved).
func (m *VM) doCall(t *Task, in *ir.Instr) {
	callee := in.Callee
	act := t.Top()
	na := m.newActivation(callee, frameSlots(callee))
	if len(callee.Blocks) > 0 {
		na.Block = callee.Blocks[0]
	}
	var extra uint64
	for i, p := range callee.Params {
		if i >= len(in.Args) {
			break
		}
		av := in.Args[i]
		if p.IsRef {
			if av == m.hereVar {
				na.Slots[p.Slot] = Value{K: KLocale, I: int64(t.Locale)}
			} else {
				na.Slots[p.Slot] = makeRef(m.cellOf(t, av))
			}
		} else {
			v := m.readPtr(t, av)
			if n := v.FlatSize(); n > 1 {
				extra += uint64(n-1) * m.cost(m.Cfg.Costs.PerElem)
			}
			copyValueInto(&na.Slots[p.Slot], v)
		}
	}
	if extra > 0 {
		m.charge(t, extra)
		if !m.noLis {
			m.lis.Exec(extra, t, in, nil)
		}
	}
	defs := m.defaultsFor(callee)
	for i := range defs {
		d := &defs[i]
		if na.Slots[d.slot].K != KNil {
			continue
		}
		switch d.mode {
		case defDirect:
			na.Slots[d.slot] = d.v
		case defCopy:
			copyValueInto(&na.Slots[d.slot], &d.v)
		default:
			na.Slots[d.slot] = m.defaultValue(d.typ)
		}
	}
	if in.Dst != nil {
		na.RetDst = m.cellOf(t, in.Dst)
	}
	na.CallSite = in
	act.Idx++ // resume after the call
	t.Frames = append(t.Frames, na)
}

// popFrame leaves the current frame, delivering rv (nil for a bare
// return) to the caller. rv may point into the popped frame's slots:
// the value is deep-copied into RetDst before the frame is recycled.
func (m *VM) popFrame(t *Task, rv *Value) {
	n := len(t.Frames)
	act := t.Frames[n-1]
	t.Frames[n-1] = nil
	t.Frames = t.Frames[:n-1]
	if act.RetDst != nil {
		if rv == nil {
			rv = &Value{}
		}
		m.assignInto(act.RetDst, rv)
	}
	m.freeActivation(act)
	if len(t.Frames) == 0 && t.iter == nil {
		m.taskFinished(t)
	}
}
