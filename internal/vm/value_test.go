package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestRangeSize(t *testing.T) {
	cases := []struct {
		r    RangeVal
		want int64
	}{
		{RangeVal{0, 9, 1}, 10},
		{RangeVal{5, 5, 1}, 1},
		{RangeVal{5, 4, 1}, 0},
		{RangeVal{0, 9, 2}, 5},
		{RangeVal{0, 10, 2}, 6},
		{RangeVal{-3, 3, 1}, 7},
	}
	for _, c := range cases {
		if got := c.r.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.r, got, c.want)
		}
	}
}

// Property: Linear/Unlinear round-trip for every index of any small domain.
func TestDomainLinearRoundTrip(t *testing.T) {
	check := func(lo1, n1, lo2, n2, lo3, n3 int8) bool {
		d := DomainVal{Rank: 3}
		dims := [][2]int64{
			{int64(lo1), int64(n1%5) + 1},
			{int64(lo2), int64(n2%5) + 1},
			{int64(lo3), int64(n3%5) + 1},
		}
		for i, dm := range dims {
			d.Dims[i] = RangeVal{Lo: dm[0], Hi: dm[0] + dm[1] - 1, Stride: 1}
		}
		idx := make([]int64, 3)
		back := make([]int64, 3)
		for p := int64(0); p < d.Size(); p++ {
			d.Unlinear(p, idx)
			if !d.Contains(idx) {
				return false
			}
			if d.Linear(idx) != p {
				return false
			}
			copy(back, idx)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Linear is a bijection (all positions distinct) over rank-2
// domains.
func TestDomainLinearBijection(t *testing.T) {
	check := func(lo1, lo2 int8, n1, n2 uint8) bool {
		d := DomainVal{Rank: 2}
		d.Dims[0] = RangeVal{Lo: int64(lo1), Hi: int64(lo1) + int64(n1%6), Stride: 1}
		d.Dims[1] = RangeVal{Lo: int64(lo2), Hi: int64(lo2) + int64(n2%6), Stride: 1}
		seen := make(map[int64]bool)
		for i := d.Dims[0].Lo; i <= d.Dims[0].Hi; i++ {
			for j := d.Dims[1].Lo; j <= d.Dims[1].Hi; j++ {
				p := d.Linear([]int64{i, j})
				if p < 0 || p >= d.Size() || seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return int64(len(seen)) == d.Size()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDomainExpandTranslate(t *testing.T) {
	d := DomainVal{Rank: 1, Dims: [3]RangeVal{{0, 9, 1}}}
	e := d.Expand(2)
	if e.Dims[0].Lo != -2 || e.Dims[0].Hi != 11 {
		t.Errorf("expand: %v", e)
	}
	if d.Dims[0].Lo != 0 {
		t.Error("expand mutated the receiver")
	}
	tr := d.Translate(5)
	if tr.Dims[0].Lo != 5 || tr.Dims[0].Hi != 14 {
		t.Errorf("translate: %v", tr)
	}
	if e.Size() != 14 || tr.Size() != 10 {
		t.Errorf("sizes: %d %d", e.Size(), tr.Size())
	}
}

func TestValueCopyIsDeep(t *testing.T) {
	v := Value{K: KTuple, Elems: []Value{
		IntVal(1),
		{K: KTuple, Elems: []Value{RealVal(2.5), RealVal(3.5)}},
	}}
	c := v.Copy()
	c.Elems[0].I = 99
	c.Elems[1].Elems[0].F = -1
	if v.Elems[0].I != 1 || v.Elems[1].Elems[0].F != 2.5 {
		t.Error("Copy is shallow")
	}
}

func TestValueCopySharesArrays(t *testing.T) {
	arr := &ArrayVal{Dom: DomainVal{Rank: 1, Dims: [3]RangeVal{{0, 3, 1}}}}
	arr.Layout = arr.Dom
	arr.Data = make([]Value, 4)
	v := Value{K: KArray, Arr: arr}
	c := v.Copy()
	if c.Arr != arr {
		t.Error("array descriptors must be shared by Copy (reference semantics)")
	}
}

func TestFlatSize(t *testing.T) {
	if IntVal(1).FlatSize() != 1 {
		t.Error("scalar flat size")
	}
	tup := Value{K: KTuple, Elems: []Value{IntVal(1), IntVal(2), IntVal(3)}}
	if tup.FlatSize() != 3 {
		t.Error("tuple flat size")
	}
	nested := Value{K: KTuple, Elems: []Value{tup, tup}}
	if nested.FlatSize() != 6 {
		t.Error("nested flat size")
	}
}

func TestDerefChains(t *testing.T) {
	target := IntVal(42)
	r1 := Value{K: KRef, Ref: &target}
	r2 := Value{K: KRef, Ref: &r1}
	if r2.Deref().I != 42 {
		t.Error("deref chain broken")
	}
	// makeRef collapses ref-of-ref.
	mr := makeRef(&r1)
	if mr.Ref != &target {
		t.Error("makeRef must collapse to the ultimate cell")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"42":     IntVal(42),
		"1.5":    RealVal(1.5),
		"2.0":    RealVal(2),
		"true":   BoolVal(true),
		"(1, 2)": {K: KTuple, Elems: []Value{IntVal(1), IntVal(2)}},
		"nil":    {K: KNil},
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestArrayCellOutOfLayout(t *testing.T) {
	arr := &ArrayVal{
		Dom:    DomainVal{Rank: 1, Dims: [3]RangeVal{{0, 3, 1}}},
		Layout: DomainVal{Rank: 1, Dims: [3]RangeVal{{0, 3, 1}}},
		Data:   make([]Value, 4),
		ElemT:  types.RealType,
	}
	if arr.Cell([]int64{4}) != nil {
		t.Error("out-of-layout cell must be nil")
	}
	if arr.Cell([]int64{2}) == nil {
		t.Error("in-layout cell must resolve")
	}
}

func TestSliceArrayViews(t *testing.T) {
	owner := &ArrayVal{
		Dom:    DomainVal{Rank: 1, Dims: [3]RangeVal{{0, 9, 1}}},
		Layout: DomainVal{Rank: 1, Dims: [3]RangeVal{{0, 9, 1}}},
		Data:   make([]Value, 10),
		ElemT:  types.RealType,
	}
	view, errs := sliceArray(owner, Value{K: KRange, Rng: RangeVal{2, 5, 1}})
	if errs != "" {
		t.Fatal(errs)
	}
	if view.Owner() != owner {
		t.Error("view must chain to owner")
	}
	// Writing through the view hits the owner's storage.
	*view.Cell([]int64{3}) = RealVal(7)
	if owner.Data[3].F != 7 {
		t.Error("view write did not alias owner storage")
	}
	// Sub-slicing a view still chains to the root owner.
	sub, _ := sliceArray(view, Value{K: KRange, Rng: RangeVal{3, 4, 1}})
	if sub.Owner() != owner {
		t.Error("sub-view owner chain broken")
	}
	if _, e := sliceArray(owner, IntVal(3)); e == "" {
		t.Error("slicing by a scalar must fail")
	}
}

func TestCostModelScale(t *testing.T) {
	c := DefaultCosts()
	if c.scale(false, 100) != 100 {
		t.Error("no scaling without fast")
	}
	s := c.scale(true, 100)
	if s >= 100 || s == 0 {
		t.Errorf("fast scale = %d", s)
	}
	if c.scale(true, 1) == 0 {
		t.Error("fast scale must not zero out nonzero costs")
	}
}
