package vm_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/vm"
)

// run compiles and executes src, returning stdout and stats.
func run(t *testing.T, src string, cfgMut ...func(*vm.Config)) (string, vm.Stats) {
	t.Helper()
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out strings.Builder
	cfg := vm.DefaultConfig()
	cfg.Stdout = &out
	cfg.MaxCycles = 500_000_000
	for _, f := range cfgMut {
		f(&cfg)
	}
	m := vm.New(res.Prog, cfg)
	stats, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\noutput so far: %s", err, out.String())
	}
	return out.String(), stats
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := vm.DefaultConfig()
	cfg.MaxCycles = 100_000_000
	m := vm.New(res.Prog, cfg)
	_, err = m.Run()
	if err == nil {
		t.Fatal("expected runtime error")
	}
	return err
}

func TestHelloArithmetic(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var a = 2;
  var b = 3;
  var c = 0;
  if a < b {
    a = b + 1;
  }
  c = a + b;
  writeln("c = ", c);
}
`)
	if out != "c = 7\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRealFormatting(t *testing.T) {
	out, _ := run(t, `
proc main() {
  writeln(1.5, " ", 2.0, " ", -0.25);
}
`)
	if out != "1.5 2.0 -0.25\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIntegerDivisionAndMod(t *testing.T) {
	out, _ := run(t, `
proc main() {
  writeln(7 / 2, " ", 7 % 3, " ", 2 ** 10);
}
`)
	if out != "3 1 1024\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSerialForLoop(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var s = 0;
  for i in 1..10 { s += i; }
  writeln(s);
}
`)
	if out != "55\n" {
		t.Errorf("out = %q", out)
	}
}

func TestStridedAndCountedRanges(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var s = 0;
  for i in 0..10 by 2 { s += i; }   // 0+2+4+6+8+10 = 30
  var c = 0;
  for i in 5..#4 { c += i; }        // 5+6+7+8 = 26
  writeln(s, " ", c);
}
`)
	if out != "30 26\n" {
		t.Errorf("out = %q", out)
	}
}

func TestWhileDoWhileBreakContinue(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var i = 0;
  var n = 0;
  while true {
    i += 1;
    if i > 10 { break; }
    if i % 2 == 0 { continue; }
    n += i;   // 1+3+5+7+9 = 25
  }
  var j = 0;
  do { j += 1; } while j < 3;
  writeln(n, " ", j);
}
`)
	if out != "25 3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestProcCallsAndRecursion(t *testing.T) {
	out, _ := run(t, `
proc fib(n: int): int {
  if n < 2 { return n; }
  return fib(n - 1) + fib(n - 2);
}
proc main() { writeln(fib(12)); }
`)
	if out != "144\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRefParams(t *testing.T) {
	out, _ := run(t, `
proc bump(ref x: int, amt: int) { x += amt; }
proc main() {
  var v = 10;
  bump(v, 5);
  bump(v, 7);
  writeln(v);
}
`)
	if out != "22\n" {
		t.Errorf("out = %q", out)
	}
}

func TestArraysAndDomains(t *testing.T) {
	out, _ := run(t, `
config const n = 5;
var D: domain(1) = {0..#n};
var A: [D] int;
proc main() {
  for i in D { A[i] = i * i; }
  var s = 0;
  for i in D { s += A[i]; }
  writeln(s, " size=", D.size);
}
`)
	if out != "30 size=5\n" {
		t.Errorf("out = %q", out)
	}
}

func Test2DArrays(t *testing.T) {
	out, _ := run(t, `
config const n = 3;
var D2: domain(2) = {0..#n, 0..#n};
var G: [D2] int;
proc main() {
  for (i, j) in D2 { G[i, j] = i * 10 + j; }
  writeln(G[2, 1], " ", G[0, 2]);
}
`)
	if out != "21 2\n" {
		t.Errorf("out = %q", out)
	}
}

func TestArraySliceAliases(t *testing.T) {
	// Slices alias the parent (paper: "array slices alias the data in
	// arrays rather than copying it" — RealPos/RealCount in MiniMD).
	out, _ := run(t, `
config const n = 8;
var D: domain(1) = {0..#n};
var inner: domain(1) = {2..5};
var A: [D] int;
ref R = A[inner];
proc main() {
  A = 1;
  R[3] = 99;
  writeln(A[3], " ", A[2]);
  A[4] = 7;
  writeln(R[4]);
}
`)
	if out != "99 1\n7\n" {
		t.Errorf("out = %q", out)
	}
}

func TestWholeArrayOpsAndReduce(t *testing.T) {
	out, _ := run(t, `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] real;
var B: [D] real;
proc main() {
  A = 2.0;
  B = A * 3.0 + 1.0;
  var s = + reduce B;     // 4 * 7 = 28
  var mx = max reduce B;
  writeln(s, " ", mx);
}
`)
	if out != "28.0 7.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestTuples(t *testing.T) {
	out, _ := run(t, `
type v3 = 3*real;
proc main() {
  var p: v3 = (1.0, 2.0, 3.0);
  var q: v3 = (0.5, 0.5, 0.5);
  var r = p + q;
  r(1) = r(1) * 10.0;
  writeln(r(1), " ", r(2), " ", r(3));
}
`)
	if out != "15.0 2.5 3.5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRecordsAndMethods(t *testing.T) {
	out, _ := run(t, `
record counter {
  var n: int;
  var total: real;
  proc add(x: real) {
    n += 1;
    total += x;
  }
}
var c: counter;
proc main() {
  c.add(1.5);
  c.add(2.5);
  writeln(c.n, " ", c.total);
}
`)
	if out != "2 4.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRecordValueSemantics(t *testing.T) {
	out, _ := run(t, `
record point { var x: int; var y: int; }
proc main() {
  var a: point;
  a.x = 1;
  var b = a;   // copy
  b.x = 99;
  writeln(a.x, " ", b.x);
}
`)
	if out != "1 99\n" {
		t.Errorf("out = %q", out)
	}
}

func TestClassReferenceSemantics(t *testing.T) {
	out, _ := run(t, `
class Node { var v: int; }
proc main() {
  var a = new Node();
  var b = a;   // same instance
  b.v = 42;
  writeln(a.v);
  if a == b { writeln("same"); }
}
`)
	if out != "42\nsame\n" {
		t.Errorf("out = %q", out)
	}
}

func TestClassWithArrayField(t *testing.T) {
	// The CLOMP shape: class with an array field allocated over a global
	// domain at instance creation.
	out, _ := run(t, `
config const nz = 4;
var zoneSpace: domain(1) = {0..#nz};
record Zone { var value: real; }
class Part {
  var zoneArray: [zoneSpace] Zone;
  var residue: real;
}
proc main() {
  var p = new Part();
  p.zoneArray[2].value = 3.5;
  p.residue = 0.5;
  writeln(p.zoneArray[2].value, " ", p.zoneArray[1].value, " ", p.residue);
}
`)
	if out != "3.5 0.0 0.5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestNestedArrays(t *testing.T) {
	out, _ := run(t, `
config const nb = 3;
var DistSpace: domain(1) = {0..#nb};
var perBinSpace: domain(1) = {0..#4};
type v3 = 3*real;
var Pos: [DistSpace] [perBinSpace] v3;
proc main() {
  Pos[1][2] = (1.0, 2.0, 3.0);
  var p = Pos[1][2];
  writeln(p(2));
  writeln(Pos[0][0](1));
}
`)
	if out != "2.0\n0.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSelectWhen(t *testing.T) {
	out, _ := run(t, `
proc classify(x: int): int {
  var r = 0;
  select x {
    when 1 { r = 100; }
    when 2, 3 { r = 200; }
    otherwise { r = 300; }
  }
  return r;
}
proc main() {
  writeln(classify(1), " ", classify(3), " ", classify(9));
}
`)
	if out != "100 200 300\n" {
		t.Errorf("out = %q", out)
	}
}

func TestForallComputesCorrectly(t *testing.T) {
	out, _ := run(t, `
config const n = 100;
var D: domain(1) = {0..#n};
var A: [D] int;
proc main() {
  forall i in D { A[i] = i * 2; }
  var s = + reduce A;   // 2 * (99*100/2) = 9900
  writeln(s);
}
`)
	if out != "9900\n" {
		t.Errorf("out = %q", out)
	}
}

func TestForallSpawnsTasks(t *testing.T) {
	_, stats := run(t, `
config const n = 100;
var D: domain(1) = {0..#n};
var A: [D] int;
proc main() {
  forall i in D { A[i] = i; }
}
`)
	if stats.TasksSpawned != 12 {
		t.Errorf("tasks spawned = %d, want 12 (cores)", stats.TasksSpawned)
	}
}

func TestCoforallOneTaskPerIndex(t *testing.T) {
	_, stats := run(t, `
config const nt = 7;
var done: [0..#nt] int;
proc main() {
  coforall tid in 0..#nt { done[tid] = 1; }
}
`)
	if stats.TasksSpawned != 7 {
		t.Errorf("tasks = %d, want 7", stats.TasksSpawned)
	}
}

func TestZipIteration(t *testing.T) {
	out, _ := run(t, `
config const n = 6;
var D: domain(1) = {0..#n};
var A: [D] int;
var B: [D] int;
proc main() {
  for i in D { B[i] = i; }
  forall (a, b) in zip(A, B) { a = b * 10; }
  writeln(A[5], " ", A[0]);
  // zip with a range
  for (x, i) in zip(A, 0..#n) { x = i; }
  writeln(A[3]);
}
`)
	if out != "50 0\n3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestParamForUnrolledExecution(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var s = 0;
  for param i in 1..4 { s += i * i; }   // 1+4+9+16
  writeln(s);
}
`)
	if out != "30\n" {
		t.Errorf("out = %q", out)
	}
}

func TestBeginSync(t *testing.T) {
	out, _ := run(t, `
var total = 0;
proc main() {
  sync {
    begin { total += 1; }
    begin { total += 2; }
  }
  writeln(total);
}
`)
	if out != "3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCobegin(t *testing.T) {
	out, _ := run(t, `
var a = 0;
var b = 0;
proc main() {
  cobegin {
    a = 1;
    b = 2;
  }
  writeln(a + b);
}
`)
	if out != "3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestConfigConstOverride(t *testing.T) {
	src := `
config const n = 4;
proc main() { writeln(n * 2); }
`
	out, _ := run(t, src)
	if out != "8\n" {
		t.Errorf("default: %q", out)
	}
	out2, _ := run(t, src, func(c *vm.Config) {
		c.Configs = map[string]string{"n": "21"}
	})
	if out2 != "42\n" {
		t.Errorf("override: %q", out2)
	}
}

func TestBuiltins(t *testing.T) {
	out, _ := run(t, `
proc main() {
  writeln(sqrt(16.0), " ", abs(-3), " ", max(2, 7, 5), " ", min(2.0, 0.5));
}
`)
	if out != "4.0 3 7 0.5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestNestedProcWithCaptures(t *testing.T) {
	out, _ := run(t, `
proc outer(): real {
  var acc = 0.0;
  proc add(x: real) { acc += x; }
  add(1.5);
  add(2.5);
  return acc;
}
proc main() { writeln(outer()); }
`)
	if out != "4.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDomainMethods(t *testing.T) {
	out, _ := run(t, `
config const n = 4;
var binSpace: domain(1) = {0..#n};
var DistSpace: domain(1) = binSpace.expand(1);
proc main() {
  writeln(binSpace.size, " ", DistSpace.size, " ", DistSpace.low, " ", DistSpace.high);
}
`)
	if out != "4 6 -1 4\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSwapStatement(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var a = 1;
  var b = 2;
  a <=> b;
  writeln(a, " ", b);
}
`)
	if out != "2 1\n" {
		t.Errorf("out = %q", out)
	}
}

func TestGetCurrentTimeAdvances(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var t0 = getCurrentTime();
  var s = 0;
  for i in 1..10000 { s += i; }
  var t1 = getCurrentTime();
  if t1 > t0 { writeln("time advanced"); }
  writeln(s);
}
`)
	if !strings.HasPrefix(out, "time advanced\n") {
		t.Errorf("out = %q", out)
	}
}

func TestOutOfBoundsCaught(t *testing.T) {
	err := runErr(t, `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] int;
proc main() { A[9] = 1; }
`)
	if !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("err = %v", err)
	}
}

func TestNilDerefCaught(t *testing.T) {
	err := runErr(t, `
class Node { var v: int; }
var head: Node;
proc main() { head.v = 1; }
`)
	if !strings.Contains(err.Error(), "nil") {
		t.Errorf("err = %v", err)
	}
}

func TestDivideByZeroCaught(t *testing.T) {
	err := runErr(t, `
proc main() {
  var z = 0;
  var x = 10 / z;
}
`)
	if !strings.Contains(err.Error(), "invalid operands") {
		t.Errorf("err = %v", err)
	}
}

func TestAssertFailure(t *testing.T) {
	err := runErr(t, `proc main() { assert(1 == 2); }`)
	if !strings.Contains(err.Error(), "assertion") {
		t.Errorf("err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	_, stats := run(t, `
config const n = 50;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  forall i in D { A[i] = i * 1.0; }
}
`)
	if stats.TotalCycles == 0 || stats.WallCycles == 0 {
		t.Error("no cycles accounted")
	}
	if stats.WallCycles > stats.TotalCycles {
		t.Error("wall cycles exceed total cycles")
	}
	if stats.Allocations == 0 {
		t.Error("array allocation not recorded")
	}
	if stats.Instructions == 0 {
		t.Error("instructions not counted")
	}
}

func TestParallelismReducesWallTime(t *testing.T) {
	src := `
config const n = 2000;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  forall i in D {
    var acc = 0.0;
    for k in 1..20 { acc += k * 0.5; }
    A[i] = acc;
  }
}
`
	_, seq := run(t, src, func(c *vm.Config) { c.NumCores = 1 })
	_, par := run(t, src, func(c *vm.Config) { c.NumCores = 12 })
	speedup := float64(seq.WallCycles) / float64(par.WallCycles)
	if speedup < 4 {
		t.Errorf("12-core speedup = %.2f, want >= 4", speedup)
	}
}

func TestFastBuildIsFaster(t *testing.T) {
	src := `
config const n = 300;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  for i in D {
    A[i] = sqrt(i * 1.0) + 2.0 * 3.0;
  }
}
`
	slow, err := compile.Source("t", src, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := compile.Source("t", src, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	s1, err := vm.New(slow.Prog, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := vm.New(fast.Prog, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if s2.WallCycles >= s1.WallCycles {
		t.Errorf("--fast not faster: %d vs %d", s2.WallCycles, s1.WallCycles)
	}
}

func TestSpinAccountedDuringSerialSections(t *testing.T) {
	// A serial section between foralls leaves 11 cores spinning.
	_, stats := run(t, `
config const n = 600;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  forall i in D { A[i] = i * 1.0; }
  var s = 0.0;
  for i in D { s += A[i]; }   // serial
  forall i in D { A[i] = s - A[i]; }
}
`)
	if stats.SpinCycles == 0 {
		t.Error("no spin cycles recorded for serial sections")
	}
}

func TestMultiLocaleOnStatement(t *testing.T) {
	out, stats := run(t, `
var hits: [0..#4] int;
proc main() {
  for l in 0..#4 {
    on Locales[l] {
      hits[l] = here.id + 1;
    }
  }
  writeln(hits[0], " ", hits[1], " ", hits[2], " ", hits[3]);
}
`, func(c *vm.Config) { c.NumLocales = 4 })
	if out != "1 2 3 4\n" {
		t.Errorf("out = %q", out)
	}
	if stats.CommMessages == 0 {
		t.Error("remote writes should generate comm traffic")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// sync with a begin that blocks forever is hard to express; instead
	// verify MaxCycles guards runaway loops.
	res, err := compile.Source("t", `proc main() { while true { } }`, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.MaxCycles = 100000
	_, err = vm.New(res.Prog, cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "cycle budget") {
		t.Errorf("err = %v", err)
	}
}

func TestModuleLevelStatements(t *testing.T) {
	out, _ := run(t, `
var x = 1;
x = x + 41;
proc main() { writeln(x); }
`)
	if out != "42\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDeterministicCycles(t *testing.T) {
	src := `
config const n = 200;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  forall i in D { A[i] = sqrt(i * 1.0); }
  var s = + reduce A;
  writeln(s > 0.0);
}
`
	_, s1 := run(t, src)
	_, s2 := run(t, src)
	if s1.TotalCycles != s2.TotalCycles || s1.WallCycles != s2.WallCycles {
		t.Errorf("nondeterministic: %+v vs %+v", s1, s2)
	}
}
