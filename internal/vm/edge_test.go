package vm_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/vm"
)

// Edge-case and failure-injection tests for the runtime.

func TestEmptyDomainLoops(t *testing.T) {
	out, _ := run(t, `
config const n = 0;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() {
  var hits = 0;
  for i in D { hits += 1; }
  forall i in D { A[i] = 1.0; }
  writeln(hits, " ", D.size);
}
`)
	if out != "0 0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestEmptyRangeLoop(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var hits = 0;
  for i in 5..4 { hits += 1; }
  writeln(hits);
}
`)
	if out != "0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSingleElementForall(t *testing.T) {
	out, stats := run(t, `
var A: [0..#1] real;
proc main() {
  forall i in 0..#1 { A[i] = 7.0; }
  writeln(A[0]);
}
`)
	if out != "7.0\n" {
		t.Errorf("out = %q", out)
	}
	if stats.TasksSpawned != 1 {
		t.Errorf("tasks = %d, want 1", stats.TasksSpawned)
	}
}

func TestDeepRecursion(t *testing.T) {
	out, _ := run(t, `
proc depth(n: int): int {
  if n == 0 { return 0; }
  return depth(n - 1) + 1;
}
proc main() { writeln(depth(500)); }
`)
	if out != "500\n" {
		t.Errorf("out = %q", out)
	}
}

func TestRealDivisionByZeroIsInf(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var z = 0.0;
  var x = 1.0 / z;
  writeln(x > 1.0e30);
}
`)
	if out != "true\n" {
		t.Errorf("out = %q", out)
	}
}

func TestNegativeStrideRejected(t *testing.T) {
	err := runErr(t, `
proc main() {
  for i in 0..10 by 0 { }
}
`)
	if !strings.Contains(err.Error(), "stride") {
		t.Errorf("err = %v", err)
	}
}

func TestBoundsCheckStillGuardsUnderNoChecks(t *testing.T) {
	// --no-checks elides the modeled check *cost*; the simulator still
	// traps the access (memory safety of the host).
	res, err := compile.Source("t", `
var A: [0..#4] real;
proc main() { A[9] = 1.0; }
`, compile.Options{NoChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = vm.New(res.Prog, vm.DefaultConfig()).Run()
	if err == nil {
		t.Fatal("expected out-of-bounds trap")
	}
}

func TestGhostRegionIndexing(t *testing.T) {
	// expand() domains allow negative indices (MiniMD's DistSpace).
	out, _ := run(t, `
config const n = 4;
var binSpace: domain(1) = {0..#n};
var DistSpace: domain(1) = binSpace.expand(1);
var A: [DistSpace] real;
proc main() {
  A[-1] = 1.5;
  A[n] = 2.5;
  writeln(A[-1] + A[n]);
}
`)
	if out != "4.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSliceOfSlice(t *testing.T) {
	out, _ := run(t, `
var A: [0..#10] real;
ref S1 = A[2..8];
ref S2 = S1[4..6];
proc main() {
  S2[5] = 9.0;
  writeln(A[5]);
}
`)
	if out != "9.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestWriteThroughMultipleViews(t *testing.T) {
	out, _ := run(t, `
var A: [0..#6] real;
ref V1 = A[0..5];
ref V2 = A[0..5];
proc main() {
  V1[3] = 1.0;
  V2[3] = V2[3] + 2.0;
  writeln(A[3]);
}
`)
	if out != "3.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSelectNoMatchNoOtherwise(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var x = 9;
  var y = 1;
  select x {
    when 1 { y = 10; }
    when 2 { y = 20; }
  }
  writeln(y);
}
`)
	if out != "1\n" {
		t.Errorf("out = %q", out)
	}
}

func TestNestedForallRejectedGracefully(t *testing.T) {
	// Nested foralls (forall inside forall body) are legal: inner spawns
	// more tasks from the worker.
	out, _ := run(t, `
config const n = 4;
var G: [0..#n, 0..#n] real;
proc main() {
  forall i in 0..#n {
    forall j in 0..#n {
      G[i, j] = i * 10.0 + j;
    }
  }
  writeln(G[3, 2]);
}
`)
	if out != "32.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestStringConcatAndCompare(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var a = "foo";
  var b = a + "bar";
  writeln(b, " ", b == "foobar", " ", b != a);
}
`)
	if out != "foobar true true\n" {
		t.Errorf("out = %q", out)
	}
}

func TestTupleSwap(t *testing.T) {
	out, _ := run(t, `
type v2 = 2*real;
proc main() {
  var a: v2 = (1.0, 2.0);
  var b: v2 = (3.0, 4.0);
  a <=> b;
  writeln(a(1), " ", b(2));
}
`)
	if out != "3.0 2.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestWhileWithComplexCondition(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var i = 0;
  var j = 100;
  while i < 10 && j > 90 {
    i += 2;
    j -= 1;
  }
  writeln(i, " ", j);
}
`)
	if out != "10 95\n" {
		t.Errorf("out = %q", out)
	}
}

func TestConfigBadValueRejected(t *testing.T) {
	res, err := compile.Source("t", `
config const n = 4;
proc main() { writeln(n); }
`, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.Configs = map[string]string{"n": "not-a-number"}
	_, err = vm.New(res.Prog, cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "bad int") {
		t.Errorf("err = %v", err)
	}
}

func TestManyTasksOnFewCores(t *testing.T) {
	// Coforall with more tasks than cores must still complete correctly.
	out, _ := run(t, `
config const nt = 40;
var done: [0..#nt] int;
proc main() {
  coforall tid in 0..#nt { done[tid] = tid; }
  var s = + reduce done;
  writeln(s);
}
`, func(c *vm.Config) { c.NumCores = 3 })
	if out != "780\n" {
		t.Errorf("out = %q", out)
	}
}

func TestReduceEmptyArray(t *testing.T) {
	out, _ := run(t, `
config const n = 0;
var A: [0..#n] real;
proc main() {
  writeln(+ reduce A);
}
`)
	if out != "0.0\n" && out != "0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestModuloNegativeOperands(t *testing.T) {
	out, _ := run(t, `
proc main() {
  writeln(-7 % 3, " ", 7 % -3);
}
`)
	// Go semantics: -7%3 == -1, 7%-3 == 1.
	if out != "-1 1\n" {
		t.Errorf("out = %q", out)
	}
}

func TestLargeTupleOperations(t *testing.T) {
	out, _ := run(t, `
proc main() {
  var a: 8*real;
  for param i in 1..8 { a(i) = i * 1.0; }
  var b = a + a;
  var s = 0.0;
  for param i in 1..8 { s += b(i); }
  writeln(s);
}
`)
	if out != "72.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestAtomicVariables(t *testing.T) {
	out, _ := run(t, `
var counter: atomic int;
var total: atomic real;
proc main() {
  counter.write(10);
  counter.add(5);
  counter.sub(3);
  var prev = counter.fetchAdd(1);
  total.write(1.5);
  total.add(2.5);
  writeln(counter.read(), " ", prev, " ", total.read());
}
`)
	if out != "13 12 4.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestAtomicArrayAccumulation(t *testing.T) {
	// The real LULESH pattern: concurrent force accumulation into an
	// array of atomics.
	out, _ := run(t, `
config const n = 64;
var F: [0..#n] atomic real;
proc main() {
  forall i in 0..#n {
    F[i % 8].add(1.0);
  }
  var s = 0.0;
  for i in 0..#8 { s += F[i].read(); }
  writeln(s);
}
`)
	if out != "64.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestAtomicErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`var a: atomic string; proc main() { }`, "numeric or bool"},
		{`var a: atomic int; proc main() { a = 3; }`, "cannot assign"},
		{`var a: atomic int; proc main() { a.frob(1); }`, "no method"},
		{`var a: atomic int; proc main() { a.write(); }`, "takes 1"},
	}
	for _, c := range cases {
		_, err := compile.Source("t", c.src, compile.Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestBlockDistributedArray(t *testing.T) {
	// Block-dmapped domains partition element homes across locales
	// (paper §VI: "track the data mapping to different locales").
	out, stats := run(t, `
config const n = 40;
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
proc main() {
  // Owner-computes: each locale writes its own block.
  forall i in D { A[i] = i * 1.0; }
  // Each locale updates its own block: no communication.
  for l in 0..#2 {
    on Locales[l] {
      forall i in l*(n/2)..#(n/2) {
        A[i] = A[i] + 1.0;
      }
    }
  }
  writeln(A[0], " ", A[39]);
}
`, func(c *vm.Config) { c.NumLocales = 2; c.NumCores = 4 })
	if out != "1.0 40.0\n" {
		t.Errorf("out = %q", out)
	}
	// The only remote element access left is locale 0 printing A[39],
	// which lives in locale 1's block.
	if stats.CommMessages == 0 {
		t.Error("reading the remote block's element should generate communication")
	}
	if stats.OwnerChunks == 0 {
		t.Error("distributed forall should schedule owner-computes chunks")
	}
}

func TestBlockDistributionLocality(t *testing.T) {
	// Three ways to sweep a Block-distributed array:
	//  - explicit on-blocks, each locale walking its own range: local;
	//  - forall over the distributed domain itself: the VM's
	//    owner-computes scheduling places every chunk on its owning
	//    locale, so this is local too (the ROADMAP's stated goal);
	//  - forall over a plain range: no distribution to follow, all
	//    chunks run on the spawning locale and the remote blocks cost
	//    one message per element.
	local := `
config const n = 64;
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
proc main() {
  for l in 0..#4 {
    on Locales[l] {
      forall i in l*(n/4)..#(n/4) { A[i] = i * 1.0; }
    }
  }
}
`
	owner := `
config const n = 64;
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
proc main() {
  forall i in D { A[i] = i * 1.0; }
}
`
	central := `
config const n = 64;
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
proc main() {
  forall i in 0..#n { A[i] = i * 1.0; }
}
`
	_, sl := run(t, local, func(c *vm.Config) { c.NumLocales = 4; c.NumCores = 3 })
	_, so := run(t, owner, func(c *vm.Config) { c.NumLocales = 4; c.NumCores = 3 })
	_, sc := run(t, central, func(c *vm.Config) { c.NumLocales = 4; c.NumCores = 3 })
	if sl.CommMessages != 0 {
		t.Errorf("on-block sweep moved %d messages", sl.CommMessages)
	}
	if so.CommMessages != 0 {
		t.Errorf("owner-computes sweep moved %d messages", so.CommMessages)
	}
	if so.RemoteSpawns == 0 {
		t.Error("distributed forall should launch chunks on remote locales")
	}
	if sc.CommMessages == 0 {
		t.Error("centralized range sweep over a distributed array must communicate")
	}
	if sc.CommMessages <= sl.CommMessages || sc.CommMessages <= so.CommMessages {
		t.Errorf("centralized sweep (%d msgs) should cost more than local (%d) or owner-computes (%d)",
			sc.CommMessages, sl.CommMessages, so.CommMessages)
	}
}
