package vm_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
)

// Iterator tests: the paper lists iterator support as future work (§VI);
// the reproduction implements serial user-defined iterators via inline
// expansion, like the Chapel compiler.

func TestIteratorBasic(t *testing.T) {
	out, _ := run(t, `
iter countTo(n: int): int {
  var i = 1;
  while i <= n {
    yield i;
    i += 1;
  }
}
proc main() {
  var s = 0;
  for x in countTo(10) { s += x; }
  writeln(s);
}
`)
	if out != "55\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorMultipleYields(t *testing.T) {
	out, _ := run(t, `
iter corners(): int {
  yield 1;
  yield 10;
  yield 100;
}
proc main() {
  var s = 0;
  for c in corners() { s += c; }
  writeln(s);
}
`)
	if out != "111\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorFibonacci(t *testing.T) {
	out, _ := run(t, `
iter fib(n: int): int {
  var a = 0;
  var b = 1;
  for i in 1..n {
    yield a;
    var c = a + b;
    a = b;
    b = c;
  }
}
proc main() {
  var last = 0;
  for f in fib(10) { last = f; }
  writeln(last);
}
`)
	if out != "34\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorConditionalYieldAndReturn(t *testing.T) {
	out, _ := run(t, `
iter evensUpTo(n: int): int {
  for i in 0..n {
    if i > 6 {
      return;
    }
    if i % 2 == 0 {
      yield i;
    }
  }
}
proc main() {
  var s = 0;
  for e in evensUpTo(100) { s += e; }   // 0+2+4+6
  writeln(s);
}
`)
	if out != "12\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorConsumerBreakContinue(t *testing.T) {
	out, _ := run(t, `
iter nats(): int {
  var i = 0;
  while true {
    yield i;
    i += 1;
  }
}
proc main() {
  var s = 0;
  for x in nats() {
    if x % 2 == 1 { continue; }
    if x > 8 { break; }
    s += x;   // 0+2+4+6+8
  }
  writeln(s);
}
`)
	if out != "20\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorComposition(t *testing.T) {
	out, _ := run(t, `
iter base(n: int): int {
  for i in 1..n { yield i; }
}
iter doubled(n: int): int {
  for x in base(n) {
    yield x * 2;
  }
}
proc main() {
  var s = 0;
  for d in doubled(4) { s += d; }   // 2+4+6+8
  writeln(s);
}
`)
	if out != "20\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorYieldingReals(t *testing.T) {
	out, _ := run(t, `
iter halves(n: int): real {
  for i in 1..n { yield i * 0.5; }
}
proc main() {
  var s = 0.0;
  for h in halves(4) { s += h; }
  writeln(s);
}
`)
	if out != "5.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorOverArrayElements(t *testing.T) {
	out, _ := run(t, `
config const n = 6;
var D: domain(1) = {0..#n};
var A: [D] real;
iter positives(): real {
  for i in D {
    if A[i] > 0.0 {
      yield A[i];
    }
  }
}
proc main() {
  A[1] = 2.5;
  A[4] = 1.5;
  A[5] = -3.0;
  var s = 0.0;
  for v in positives() { s += v; }
  writeln(s);
}
`)
	if out != "4.0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestIteratorErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`proc main() { yield 1; }`, "yield outside"},
		{`iter f(): int { yield 1; }
proc main() { var x = f(); }`, "loop iterand"},
		{`iter f() { yield 1; }
proc main() { for x in f() { } }`, "yield type"},
		{`iter f(): int { yield 1; }
proc main() { forall x in f() { } }`, "parallel iteration"},
		{`iter f(ref a: int): int { yield a; }
proc main() { var v = 1; for x in f(v) { } }`, "ref-intent"},
		{`iter f(): int { return 7; }
proc main() { for x in f() { } }`, "yield, not return"},
		{`iter f(): int { yield "s"; }
proc main() { for x in f() { } }`, "cannot yield"},
	}
	for _, c := range cases {
		_, err := compile.Source("t.mchpl", c.src, compile.Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestRecursiveIteratorRejected(t *testing.T) {
	_, err := compile.Source("t.mchpl", `
iter f(n: int): int {
  for x in f(n - 1) { yield x; }
}
proc main() { for x in f(3) { } }
`, compile.Options{})
	if err == nil || !strings.Contains(err.Error(), "recursive iterator") {
		t.Errorf("err = %v", err)
	}
}

func TestReduceOverIterator(t *testing.T) {
	out, _ := run(t, `
iter squares(n: int): int {
  for i in 1..n { yield i * i; }
}
proc main() {
  var s = + reduce squares(4);     // 1+4+9+16
  var p = * reduce squares(3);     // 1*4*9
  var m = max reduce squares(5);   // 25
  var lo = min reduce squares(5);  // 1
  writeln(s, " ", p, " ", m, " ", lo);
}
`)
	if out != "30 36 25 1\n" {
		t.Errorf("out = %q", out)
	}
}

func TestReduceOverRealIterator(t *testing.T) {
	out, _ := run(t, `
iter halves(n: int): real {
  for i in 1..n { yield i * 0.5; }
}
proc main() {
  writeln(+ reduce halves(4));
}
`)
	if out != "5.0\n" {
		t.Errorf("out = %q", out)
	}
}
