package vm

import (
	"repro/internal/ir"
)

// doSpawn implements the tasking layer: forall/coforall/begin/cobegin/on.
// It mirrors the instrumented Chapel tasking layer of paper §IV.B: a
// unique spawn tag is minted, the monitoring process records the parent's
// pre-spawn stack under that tag, worker tasks carry the tag, and blocking
// constructs leave the parent spinning at a join barrier.
func (m *VM) doSpawn(t *Task, in *ir.Instr) {
	sp := in.Spawn
	m.nextTag++
	tag := m.nextTag
	if !m.noLis {
		m.lis.PreSpawn(t, tag, in)
	}

	// Evaluate captures as references into the parent frame.
	captures := make([]Value, len(in.Args))
	for i, av := range in.Args {
		if av == m.hereVar {
			captures[i] = Value{K: KLocale, I: int64(t.Locale)}
		} else {
			captures[i] = makeRef(m.cellOf(t, av))
		}
	}

	switch sp.Kind {
	case ir.SpawnForall, ir.SpawnCoforall:
		m.spawnLoop(t, in, tag, captures)
	case ir.SpawnBegin:
		child := m.newTask(t, tag, t.Locale)
		m.pushFrame(child, in.Callee, captures, nil)
		// begin joins the innermost sync group, if any.
		if n := len(t.syncStack); n > 0 {
			g := t.syncStack[n-1]
			g.pending++
			child.join = g
		}
		m.enqueue(child, t)
		m.rtCharge(t, m.cost(m.Cfg.Costs.SpawnPerTask), "chpl_task_spawn")
	case ir.SpawnCobegin:
		bodies := append([]*ir.Func{in.Callee}, sp.Extra...)
		g := &joinGroup{pending: len(bodies), waiter: t, barrierSite: in}
		for i, bf := range bodies {
			child := m.newTask(t, tag, t.Locale)
			bodyArgs := captures
			if i > 0 {
				extra := sp.ExtraArgs[i-1]
				bodyArgs = make([]Value, len(extra))
				for k, av := range extra {
					bodyArgs[k] = makeRef(m.cellOf(t, av))
				}
			}
			m.pushFrame(child, bf, bodyArgs, nil)
			child.join = g
			m.enqueue(child, t)
		}
		t.blockedOn = g
		m.rtCharge(t, uint64(len(bodies))*m.cost(m.Cfg.Costs.SpawnPerTask), "chpl_task_spawn")
	case ir.SpawnOn:
		locale := t.Locale
		if sp.Iter != nil {
			lv := m.readVal(t, sp.Iter)
			if lv.K == KLocale {
				locale = int(lv.I)
			}
		}
		if locale < 0 || locale >= m.Cfg.NumLocales {
			m.fail(t, in, "on-statement targets locale %d of %d", locale, m.Cfg.NumLocales)
			return
		}
		// The launch message always pays SpawnPerTask + CommLatency (even
		// same-locale `on`, matching Chapel's active-message path). Fault
		// handling applies only to genuinely remote launches: a dead target
		// degrades to spawn-locale execution, a faulty link adds latency.
		launch := m.Cfg.Costs.SpawnPerTask + m.Cfg.Costs.CommLatency
		if locale != t.Locale && m.fault != nil {
			if m.fault.LocaleDead(locale) {
				m.fault.NoteFallback()
				locale = t.Locale
			} else if out := m.fault.Send(t.Locale, locale); out.ExtraLat > 0 {
				launch += uint64(out.ExtraLat) * m.Cfg.Costs.CommLatency
			}
		}
		child := m.newTask(t, tag, locale)
		m.pushFrame(child, in.Callee, captures, nil)
		g := &joinGroup{pending: 1, waiter: t, barrierSite: in}
		child.join = g
		m.enqueue(child, t)
		t.blockedOn = g
		m.rtCharge(t, m.cost(launch), "chpl_task_spawn")
	}
}

// spawnLoop creates the worker tasks of a forall/coforall.
func (m *VM) spawnLoop(t *Task, in *ir.Instr, tag uint64, captures []Value) {
	sp := in.Spawn
	space, ok := m.iterSpace(t, in)
	if !ok {
		return
	}
	total := space.Size()
	if total <= 0 {
		return
	}
	if space.Dist && m.Cfg.NumLocales > 1 && !m.Cfg.NoOwnerComputes {
		m.spawnLoopOwner(t, in, tag, captures, space, total)
		return
	}
	var numTasks int64
	if sp.Kind == ir.SpawnCoforall {
		numTasks = total
	} else {
		numTasks = int64(m.Cfg.DataParTasksPerLocale)
		if numTasks > total {
			numTasks = total
		}
	}

	g := &joinGroup{pending: int(numTasks), waiter: t, barrierSite: in}
	chunk := total / numTasks
	rem := total % numTasks
	var pos int64
	for k := int64(0); k < numTasks; k++ {
		n := chunk
		if k < rem {
			n++
		}
		child := m.newTask(t, tag, t.Locale)
		child.iter = &iterState{
			body:     in.Callee,
			captures: captures,
			space:    space,
			pos:      pos,
			end:      pos + n,
			start:    pos,
			site:     in,
		}
		child.join = g
		pos += n
		m.enqueue(child, t)
		// Zippered iterator construction per task per iterand.
		if nf := len(sp.Followers); nf > 0 {
			m.rtCharge(t, uint64(nf+1)*m.cost(m.Cfg.Costs.ZipSetup), "chpl_task_spawn")
		}
	}
	t.blockedOn = g
	m.rtCharge(t, uint64(numTasks)*m.cost(m.Cfg.Costs.SpawnPerTask), "chpl_task_spawn")
	m.Stats.TasksSpawned += uint64(numTasks)
}

// spawnLoopOwner creates the worker tasks of a forall/coforall over a
// Block-dmapped iteration space: owner-computes scheduling. The linear
// space is partitioned by the owning locale of each dim-0 block (the
// same decomposition ArrayVal.ElemHome uses), DataParTasksPerLocale
// workers (or one per index, for coforall) are minted per locale, and
// each chunk is enqueued on its owner's cores. Remote children cost an
// active-message launch (SpawnPerTask + CommLatency), mirroring `on`.
func (m *VM) spawnLoopOwner(t *Task, in *ir.Instr, tag uint64, captures []Value, space DomainVal, total int64) {
	sp := in.Spawn
	n0 := space.Dims[0].Size()
	rowSize := total / n0 // linear positions per dim-0 index
	nl := int64(m.Cfg.NumLocales)

	g := &joinGroup{waiter: t, barrierSite: in}
	var spawned int64
	var spawnCycles uint64
	for loc := int64(0); loc < nl; loc++ {
		// Locale loc owns dim-0 positions [ceil(loc*n0/nl), ceil((loc+1)*n0/nl)):
		// exactly the set where ElemHome's floor(pos*nl/n0) == loc.
		lo := (loc*n0 + nl - 1) / nl
		hi := ((loc+1)*n0 + nl - 1) / nl
		cnt := (hi - lo) * rowSize
		if cnt <= 0 {
			continue
		}
		var numTasks int64
		if sp.Kind == ir.SpawnCoforall {
			numTasks = cnt
		} else {
			numTasks = int64(m.Cfg.DataParTasksPerLocale)
			if numTasks > cnt {
				numTasks = cnt
			}
		}
		// Graceful degradation: chunks owned by a failed locale run on the
		// spawner's locale instead (paying remote element access for them,
		// but completing with correct output).
		target := int(loc)
		if target != t.Locale && m.fault.LocaleDead(target) {
			target = t.Locale
			for k := int64(0); k < numTasks; k++ {
				m.fault.NoteFallback()
			}
		}
		chunk := cnt / numTasks
		rem := cnt % numTasks
		pos := lo * rowSize
		for k := int64(0); k < numTasks; k++ {
			n := chunk
			if k < rem {
				n++
			}
			child := m.newTask(t, tag, target)
			child.iter = &iterState{
				body:     in.Callee,
				captures: captures,
				space:    space,
				pos:      pos,
				end:      pos + n,
				start:    pos,
				site:     in,
			}
			child.join = g
			g.pending++
			pos += n
			m.enqueue(child, t)
			if nf := len(sp.Followers); nf > 0 {
				m.rtCharge(t, uint64(nf+1)*m.cost(m.Cfg.Costs.ZipSetup), "chpl_task_spawn")
			}
		}
		launch := m.Cfg.Costs.SpawnPerTask
		if target != t.Locale {
			launch += m.Cfg.Costs.CommLatency
			m.Stats.RemoteSpawns += uint64(numTasks)
			if m.fault != nil {
				// One launch message per remote worker runs through the
				// injector; lost/delayed launches add modeled latency.
				var extra uint64
				for k := int64(0); k < numTasks; k++ {
					if out := m.fault.Send(t.Locale, target); out.ExtraLat > 0 {
						extra += uint64(out.ExtraLat) * m.Cfg.Costs.CommLatency
					}
				}
				spawnCycles += m.cost(extra)
			}
		}
		spawnCycles += uint64(numTasks) * m.cost(launch)
		spawned += numTasks
		m.Stats.OwnerChunks += uint64(numTasks)
	}
	t.blockedOn = g
	m.rtCharge(t, spawnCycles, "chpl_task_spawn")
	m.Stats.TasksSpawned += uint64(spawned)
}

// iterSpace derives the iteration domain of a spawn from its Iter operand.
func (m *VM) iterSpace(t *Task, in *ir.Instr) (DomainVal, bool) {
	sp := in.Spawn
	if sp.Iter == nil {
		return DomainVal{}, false
	}
	v := m.readVal(t, sp.Iter)
	switch v.K {
	case KRange:
		return DomainVal{Rank: 1, Dims: [3]RangeVal{v.Rng}}, true
	case KDomain:
		return v.Dom, true
	case KArray:
		return v.Arr.Dom, true
	}
	m.fail(t, in, "cannot iterate over %s", v)
	return DomainVal{}, false
}

// newTask mints a worker task.
func (m *VM) newTask(parent *Task, tag uint64, locale int) *Task {
	m.nextTaskID++
	return &Task{
		ID:     m.nextTaskID,
		Tag:    tag,
		Parent: parent,
		Locale: locale,
	}
}

// enqueue places a task on a core of its locale (round-robin) and models
// the worker thread that accepts it: if that core's clock is behind the
// spawner's, the gap was idle spin in the scheduler.
func (m *VM) enqueue(child *Task, parent *Task) {
	base := child.Locale * m.Cfg.NumCores
	core := base + m.spawnRR%m.Cfg.NumCores
	m.spawnRR++
	child.Core = core
	// The worker thread idling on this core since its previous task
	// spun in the scheduler until now; attribute that spin to the stale
	// context (its old spawn tag), as a real monitor would observe.
	spinCtx := child
	if prev := m.cores[core].lastTask; prev != nil {
		spinCtx = prev
	}
	m.spinTo(spinCtx, m.coreOf(parent).clock)
	m.cores[core].queue = append(m.cores[core].queue, child)
}

// startIterCall pushes the outlined body frame for the task's next index.
// Index and argument scratch live in the iterState and are reused across
// iterations (pushFrame copies the values into the frame).
func (m *VM) startIterCall(t *Task) {
	it := t.iter
	idx := it.idxBuf[:it.space.Rank]
	it.space.Unlinear(it.pos, idx)
	it.pos++

	body := it.body
	if need := it.space.Rank + len(it.captures); cap(it.argBuf) < need {
		it.argBuf = make([]Value, 0, need)
	}
	args := it.argBuf[:0]
	for i := 0; i < len(idx) && i < len(body.Params); i++ {
		args = append(args, IntVal(idx[i]))
	}
	args = append(args, it.captures...)
	m.rtCharge(t, m.cost(m.Cfg.Costs.IterPerCall+m.Cfg.Costs.CallOverhead), "chpl_task_callTaskFunction")
	na := m.pushFrame(t, body, args, nil)
	na.CallSite = it.site
}
