package vm

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/token"
)

// CostModel assigns cycle costs to IR operations. The constants are
// calibrated so the paper's qualitative findings hold on the MiniChapel
// ports: zippered iteration and domain remapping inside hot loops are
// expensive (§V.A), repeated dynamic allocation of local arrays is
// expensive (LULESH's determ/dvdx, fixed by Variable Globalization),
// nested tuple construction/destruction is expensive (fixed by CENN),
// and nested-structure element access is slower than flat 2-D indexing
// (CLOMP).
type CostModel struct {
	IntALU      uint64 // integer add/sub/logic/compare
	RealALU     uint64 // fp add/sub/mul
	Div         uint64 // divide/modulus
	Pow         uint64 // exponentiation
	MathBuiltin uint64 // sqrt/cbrt/exp/...

	ConstLoad  uint64 // literal materialization
	MoveScalar uint64 // scalar register move
	PerElem    uint64 // per-element cost of bulk copies / whole-array ops

	IndexAddr   uint64 // address arithmetic per dimension
	BoundsCheck uint64 // per-access bounds check (elided by --no-checks)
	FieldAccess uint64 // record field offset access
	TupleBase   uint64 // tuple construction base cost
	TuplePerEl  uint64 // tuple construction per element

	MakeRange  uint64
	MakeDomain uint64
	DomMethod  uint64
	Query      uint64

	SliceCreate uint64 // view descriptor construction ("domain remapping")
	RefElem     uint64 // element alias binding

	AllocBase  uint64 // heap allocation base cost
	AllocPerEl uint64 // per-element initialization
	ClassAlloc uint64
	ClassDeref uint64 // pointer chase through a class handle
	AtomicOp   uint64 // LOCK-prefixed read-modify-write

	CallOverhead uint64 // frame setup + argument passing
	RetOverhead  uint64

	SpawnBase    uint64 // tasking-layer spawn cost
	SpawnPerTask uint64
	Barrier      uint64 // join barrier
	IterPerCall  uint64 // per-iteration body invocation (iterator advance)
	ZipSetup     uint64 // zippered iterator construction per iterand
	ZipAdvance   uint64 // zippered follower advance per iteration

	WriteBuiltin uint64 // writeln formatting
	YieldSpin    uint64 // one idle-spin quantum in the scheduler

	CommLatency uint64 // remote get/put base (multi-locale)
	CommPerByte uint64

	// FastScaleNum/Den scale all costs when the program was compiled with
	// --fast, modeling -O3 codegen quality beyond the IR-level folding the
	// compile package performs (documented substitution in DESIGN.md).
	FastScaleNum, FastScaleDen uint64

	// IcacheThreshold/IcacheDen model instruction-cache pressure: a
	// function whose body exceeds IcacheThreshold instructions pays an
	// extra (n - threshold)/IcacheDen fraction per instruction (capped at
	// 2x). This is what makes aggressive loop unrolling counterproductive
	// (paper Table VII: "sometimes it would be counterproductive since it
	// enlarges the code size").
	IcacheThreshold uint64
	IcacheDen       uint64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		IntALU:      1,
		RealALU:     2,
		Div:         12,
		Pow:         24,
		MathBuiltin: 22,

		ConstLoad:  1,
		MoveScalar: 1,
		PerElem:    2,

		IndexAddr:   2,
		BoundsCheck: 3,
		FieldAccess: 3,
		TupleBase:   12,
		TuplePerEl:  4,

		MakeRange:  4,
		MakeDomain: 10,
		DomMethod:  14,
		Query:      2,

		SliceCreate: 320,
		RefElem:     3,

		AllocBase:  200,
		AllocPerEl: 10,
		ClassAlloc: 120,
		ClassDeref: 9,
		AtomicOp:   28,

		CallOverhead: 14,
		RetOverhead:  6,

		SpawnBase:    900,
		SpawnPerTask: 150,
		Barrier:      400,
		IterPerCall:  6,
		ZipSetup:     130,
		ZipAdvance:   34,

		WriteBuiltin: 40,
		YieldSpin:    50,

		CommLatency: 1200,
		CommPerByte: 1,

		FastScaleNum: 2,
		FastScaleDen: 5, // --fast runs at 40% of the unoptimized cycle cost

		IcacheThreshold: 160,
		IcacheDen:       1200,
	}
}

// scale applies the --fast codegen factor.
func (c *CostModel) scale(fast bool, cycles uint64) uint64 {
	if !fast {
		return cycles
	}
	s := cycles * c.FastScaleNum / c.FastScaleDen
	if s == 0 && cycles > 0 {
		s = 1
	}
	return s
}

// costTabKey identifies a precomputed per-instruction cost table.
// CostModel has only uint64 fields, so it is comparable and usable as a
// map key directly; Optimized/NoChecks ride along with the program
// identity.
type costTabKey struct {
	prog  *ir.Program
	costs CostModel
}

var (
	costTabMu    sync.Mutex
	costTabCache = make(map[costTabKey][]uint64)
)

// costTable returns the per-instruction static cost, indexed by the dense
// Instr.Addr that Program.Finalize assigns. The table folds in the --fast
// scale and the per-function i-cache surcharge, so the interpreter's hot
// loop replaces an instrCost switch plus a map lookup with one slice
// load. Tables are immutable and shared across all VMs of the same
// (program, cost model) — dozens per experiment suite.
func costTable(prog *ir.Program, c CostModel) []uint64 {
	k := costTabKey{prog: prog, costs: c}
	costTabMu.Lock()
	defer costTabMu.Unlock()
	if tab, ok := costTabCache[k]; ok {
		return tab
	}
	// Per-function i-cache pressure surcharge (same arithmetic as the
	// previous per-step computation, applied per instruction).
	surcharge := make(map[*ir.Func]uint64)
	if c.IcacheDen > 0 {
		for _, f := range prog.Funcs {
			n := uint64(0)
			for _, b := range f.Blocks {
				n += uint64(len(b.Instrs))
			}
			if n > c.IcacheThreshold {
				extra := n - c.IcacheThreshold
				if extra > c.IcacheDen {
					extra = c.IcacheDen
				}
				surcharge[f] = extra
			}
		}
	}
	tab := make([]uint64, len(prog.Instrs))
	for _, in := range prog.Instrs {
		cycles := c.scale(prog.Optimized, c.instrCost(in, prog.NoChecks))
		if in.Block != nil {
			if ex := surcharge[in.Block.Func]; ex > 0 {
				cycles += cycles * ex / c.IcacheDen
			}
		}
		tab[in.Addr] = cycles
	}
	costTabCache[k] = tab
	return tab
}

// instrCost computes the cycle cost of one executed instruction. Costs
// that depend on runtime values (bulk copy sizes, allocation sizes) are
// added by the executor on top of this static part.
func (c *CostModel) instrCost(in *ir.Instr, noChecks bool) uint64 {
	switch in.Op {
	case ir.OpConst:
		return c.ConstLoad
	case ir.OpMove:
		return c.MoveScalar
	case ir.OpBin:
		switch in.BinOp {
		case token.SLASH, token.PERCENT:
			return c.Div
		case token.POW:
			return c.Pow
		case token.PLUS, token.MINUS, token.STAR:
			return c.RealALU
		default:
			return c.IntALU
		}
	case ir.OpUn:
		return c.IntALU
	case ir.OpMakeTuple:
		return c.TupleBase + uint64(len(in.Args))*c.TuplePerEl
	case ir.OpTupleGet, ir.OpTupleSet:
		return c.FieldAccess
	case ir.OpField, ir.OpFieldStore:
		return c.FieldAccess
	case ir.OpIndex, ir.OpIndexStore:
		n := uint64(len(in.Args))
		if n == 0 {
			n = 1
		}
		cost := n * c.IndexAddr
		if !noChecks {
			cost += c.BoundsCheck
		}
		return cost
	case ir.OpSlice:
		return c.SliceCreate
	case ir.OpRefElem:
		n := uint64(len(in.Args))
		cost := c.RefElem + n*c.IndexAddr
		if !noChecks {
			cost += c.BoundsCheck
		}
		return cost
	case ir.OpRefField:
		return c.FieldAccess
	case ir.OpMakeRange:
		return c.MakeRange
	case ir.OpMakeDomain:
		return c.MakeDomain
	case ir.OpDomMethod:
		return c.DomMethod
	case ir.OpQuery:
		return c.Query
	case ir.OpAllocArray:
		return c.AllocBase
	case ir.OpAllocRec:
		return c.ClassAlloc
	case ir.OpCall:
		return c.CallOverhead
	case ir.OpBuiltin:
		return c.IntALU // refined by the executor per builtin
	case ir.OpRet:
		return c.RetOverhead
	case ir.OpJmp:
		return 1
	case ir.OpBr:
		return 2
	case ir.OpSpawn:
		return c.SpawnBase
	case ir.OpZipSetup:
		return c.ZipSetup
	case ir.OpZipAdvance:
		return c.ZipAdvance
	case ir.OpYield:
		return c.YieldSpin
	}
	return 1
}

// StaticCostTable exposes the per-instruction cost table (indexed by
// Instr.Addr, --fast scale and i-cache surcharge folded in) to static
// analyses: the symbolic cost engine (internal/analyze/cost) prices its
// predicted executions with exactly the cycles the interpreter would
// charge. The returned slice is shared and must not be mutated.
func StaticCostTable(prog *ir.Program, c CostModel) []uint64 {
	return costTable(prog, c)
}

// ScaleCost applies the --fast codegen factor the same way the executor
// does for its dynamic extra charges (bulk copies, allocations, comm).
func (c CostModel) ScaleCost(optimized bool, cycles uint64) uint64 {
	return c.scale(optimized, cycles)
}
