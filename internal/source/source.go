// Package source manages MiniChapel source files and positions.
//
// It plays the role of the DWARF file/line table in the paper's pipeline:
// every IR instruction carries a Pos that resolves back to a file, line and
// column, and the post-mortem step uses this mapping to convert raw sampled
// addresses into source coordinates.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a compact reference to a location in some registered file.
// The zero Pos is "no position".
type Pos struct {
	// FileID indexes into a FileSet; 0 means no file.
	FileID int32
	Line   int32
	Col    int32
}

// NoPos is the zero position.
var NoPos = Pos{}

// IsValid reports whether p refers to an actual location.
func (p Pos) IsValid() bool { return p.FileID != 0 && p.Line > 0 }

// Before reports whether p is strictly before q in the same file.
func (p Pos) Before(q Pos) bool {
	if p.FileID != q.FileID {
		return p.FileID < q.FileID
	}
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// File is a single registered source file.
type File struct {
	ID   int32
	Name string
	Src  string

	lineOffsets []int // byte offset of the start of each line (0-based line index)
}

// NewFile builds a File with the given name and content. Files are normally
// created through a FileSet; NewFile exists for tests that need a loose file.
func NewFile(id int32, name, src string) *File {
	f := &File{ID: id, Name: name, Src: src}
	f.lineOffsets = append(f.lineOffsets, 0)
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			f.lineOffsets = append(f.lineOffsets, i+1)
		}
	}
	return f
}

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lineOffsets) }

// PosFor converts a byte offset into a Pos.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Src) {
		offset = len(f.Src)
	}
	// Find the last line start <= offset.
	i := sort.Search(len(f.lineOffsets), func(i int) bool { return f.lineOffsets[i] > offset }) - 1
	return Pos{FileID: f.ID, Line: int32(i + 1), Col: int32(offset - f.lineOffsets[i] + 1)}
}

// Line returns the text of the 1-based line n, without the trailing newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lineOffsets) {
		return ""
	}
	start := f.lineOffsets[n-1]
	end := len(f.Src)
	if n < len(f.lineOffsets) {
		end = f.lineOffsets[n] - 1
	}
	return strings.TrimRight(f.Src[start:end], "\r")
}

// FileSet registers files and renders positions.
type FileSet struct {
	files []*File // files[i] has ID i+1
}

// NewFileSet returns an empty file set.
func NewFileSet() *FileSet { return &FileSet{} }

// Add registers a new file and returns it.
func (s *FileSet) Add(name, src string) *File {
	f := NewFile(int32(len(s.files)+1), name, src)
	s.files = append(s.files, f)
	return f
}

// File returns the file with the given ID, or nil.
func (s *FileSet) File(id int32) *File {
	if id < 1 || int(id) > len(s.files) {
		return nil
	}
	return s.files[id-1]
}

// FileOf returns the file containing p, or nil.
func (s *FileSet) FileOf(p Pos) *File { return s.File(p.FileID) }

// Position renders p as "name:line:col". Invalid positions render as "-".
func (s *FileSet) Position(p Pos) string {
	if !p.IsValid() {
		return "-"
	}
	f := s.File(p.FileID)
	if f == nil {
		return fmt.Sprintf("?:%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", f.Name, p.Line, p.Col)
}

// Span is a half-open range of source text within one file.
type Span struct {
	Start, End Pos
}

// IsValid reports whether the span has a valid start.
func (s Span) IsValid() bool { return s.Start.IsValid() }

// Contains reports whether p lies within the span (line granularity).
func (s Span) Contains(p Pos) bool {
	if !s.IsValid() || !p.IsValid() || s.Start.FileID != p.FileID {
		return false
	}
	return !p.Before(s.Start) && (p.Before(s.End) || p == s.End)
}
