package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPosForLinesAndCols(t *testing.T) {
	fs := NewFileSet()
	f := fs.Add("a.mchpl", "ab\ncd\n\nxyz")
	cases := []struct {
		off  int
		line int32
		col  int32
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // '\n' belongs to line 1
		{3, 2, 1}, {5, 2, 3},
		{6, 3, 1},
		{7, 4, 1}, {9, 4, 3}, {10, 4, 4},
	}
	for _, c := range cases {
		p := f.PosFor(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("PosFor(%d) = %d:%d, want %d:%d", c.off, p.Line, p.Col, c.line, c.col)
		}
	}
}

func TestPosForClamping(t *testing.T) {
	f := NewFile(1, "x", "hello")
	if p := f.PosFor(-5); p.Line != 1 || p.Col != 1 {
		t.Errorf("negative offset not clamped: %+v", p)
	}
	if p := f.PosFor(999); p.Line != 1 || p.Col != 6 {
		t.Errorf("oversized offset not clamped: %+v", p)
	}
}

func TestLineText(t *testing.T) {
	f := NewFile(1, "x", "first\nsecond\r\nthird")
	if got := f.Line(1); got != "first" {
		t.Errorf("Line(1) = %q", got)
	}
	if got := f.Line(2); got != "second" {
		t.Errorf("Line(2) = %q (CR should be trimmed)", got)
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("Line(3) = %q", got)
	}
	if got := f.Line(0); got != "" {
		t.Errorf("Line(0) = %q, want empty", got)
	}
	if got := f.Line(4); got != "" {
		t.Errorf("Line(4) = %q, want empty", got)
	}
}

func TestFileSetPosition(t *testing.T) {
	fs := NewFileSet()
	f := fs.Add("bench.mchpl", "var x = 1;\n")
	p := f.PosFor(4)
	if got := fs.Position(p); got != "bench.mchpl:1:5" {
		t.Errorf("Position = %q", got)
	}
	if got := fs.Position(NoPos); got != "-" {
		t.Errorf("Position(NoPos) = %q", got)
	}
}

func TestFileSetLookup(t *testing.T) {
	fs := NewFileSet()
	a := fs.Add("a", "")
	b := fs.Add("b", "")
	if fs.File(a.ID) != a || fs.File(b.ID) != b {
		t.Fatal("File lookup by ID failed")
	}
	if fs.File(0) != nil || fs.File(99) != nil {
		t.Fatal("out-of-range ID should return nil")
	}
	if fs.FileOf(Pos{FileID: b.ID, Line: 1, Col: 1}) != b {
		t.Fatal("FileOf failed")
	}
}

func TestPosBefore(t *testing.T) {
	a := Pos{FileID: 1, Line: 2, Col: 3}
	b := Pos{FileID: 1, Line: 2, Col: 4}
	c := Pos{FileID: 1, Line: 3, Col: 1}
	d := Pos{FileID: 2, Line: 1, Col: 1}
	if !a.Before(b) || !b.Before(c) || !a.Before(c) || !c.Before(d) {
		t.Error("Before ordering wrong")
	}
	if b.Before(a) || a.Before(a) {
		t.Error("Before not strict")
	}
}

func TestSpanContains(t *testing.T) {
	s := Span{Start: Pos{FileID: 1, Line: 2, Col: 1}, End: Pos{FileID: 1, Line: 4, Col: 10}}
	in := Pos{FileID: 1, Line: 3, Col: 5}
	out := Pos{FileID: 1, Line: 5, Col: 1}
	otherFile := Pos{FileID: 2, Line: 3, Col: 5}
	if !s.Contains(in) {
		t.Error("span should contain interior pos")
	}
	if !s.Contains(s.Start) || !s.Contains(s.End) {
		t.Error("span should contain endpoints")
	}
	if s.Contains(out) || s.Contains(otherFile) {
		t.Error("span should exclude outside positions")
	}
	if (Span{}).Contains(in) {
		t.Error("invalid span contains nothing")
	}
}

// Property: for any generated content, PosFor round-trips through the line
// offset table: offset(line start) + (col-1) == original offset.
func TestPosForRoundTripProperty(t *testing.T) {
	check := func(raw []byte) bool {
		// Restrict to printable + newlines to keep the property readable.
		src := strings.Map(func(r rune) rune {
			if r == '\n' || (r >= ' ' && r < 127) {
				return r
			}
			return 'x'
		}, string(raw))
		f := NewFile(1, "p", src)
		for off := 0; off <= len(src); off++ {
			p := f.PosFor(off)
			lineStart := 0
			for i := 0; i < off; i++ {
				if src[i] == '\n' {
					lineStart = i + 1
				}
			}
			if int(p.Col)-1+lineStart != off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: line numbers are monotone in offset.
func TestPosMonotoneProperty(t *testing.T) {
	check := func(raw []byte) bool {
		f := NewFile(1, "p", string(raw))
		prev := f.PosFor(0)
		for off := 1; off <= len(raw); off++ {
			p := f.PosFor(off)
			if p.Line < prev.Line {
				return false
			}
			if p.Line == prev.Line && p.Col < prev.Col {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
