package types

import (
	"testing"
	"testing/quick"
)

func TestDisplayStrings(t *testing.T) {
	cases := []struct {
		t    Type
		want string
	}{
		{IntType, "int"},
		{Int32Type, "int(32)"},
		{RealType, "real"},
		{BoolType, "bool"},
		{&TupleType{Count: 8, Elem: RealType}, "8*real"},
		{&TupleType{Count: 3, Elem: RealType, Alias: "v3"}, "v3"},
		{&TupleType{Count: 8, Elem: &TupleType{Count: 4, Elem: RealType}}, "8*4*real"},
		{&ArrayType{Rank: 1, Elem: RealType, DomName: "DistSpace"}, "[DistSpace] real"},
		{&ArrayType{Rank: 1, Elem: &TupleType{Count: 3, Elem: RealType, Alias: "v3"}, DomName: "binSpace"}, "[binSpace] v3"},
		{&DomainType{Rank: 2}, "domain"},
		{RangeVal, "range"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSizes(t *testing.T) {
	if IntType.Size() != 8 || Int32Type.Size() != 4 || BoolType.Size() != 1 {
		t.Error("scalar sizes wrong")
	}
	v3 := &TupleType{Count: 3, Elem: RealType}
	if v3.Size() != 24 {
		t.Errorf("3*real size = %d", v3.Size())
	}
	nested := &TupleType{Count: 8, Elem: &TupleType{Count: 4, Elem: RealType}}
	if nested.Size() != 256 {
		t.Errorf("8*(4*real) size = %d", nested.Size())
	}
}

func TestRecordLayout(t *testing.T) {
	r := &RecordType{Name: "atom", Fields: []Field{
		{Name: "v", Type: &TupleType{Count: 3, Elem: RealType}},
		{Name: "f", Type: &TupleType{Count: 3, Elem: RealType}},
		{Name: "n", Type: Int32Type},
	}}
	if r.InstanceSize() != 24+24+4 {
		t.Errorf("record size = %d", r.InstanceSize())
	}
	if r.Fields[1].Offset != 24 {
		t.Errorf("field f offset = %d", r.Fields[1].Offset)
	}
	if r.FieldIndex("f") != 1 || r.FieldIndex("missing") != -1 {
		t.Error("FieldIndex wrong")
	}
	// A class handle is pointer-sized regardless of payload.
	c := &RecordType{Name: "Part", IsClass: true, Fields: r.Fields}
	if c.Size() != 8 {
		t.Errorf("class handle size = %d", c.Size())
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(IntType, Int32Type) {
		t.Error("int widths are display-only")
	}
	if Identical(IntType, RealType) {
		t.Error("int != real")
	}
	a := &TupleType{Count: 3, Elem: RealType}
	b := &TupleType{Count: 3, Elem: RealType, Alias: "v3"}
	if !Identical(a, b) {
		t.Error("alias does not affect identity")
	}
	if Identical(a, &TupleType{Count: 4, Elem: RealType}) {
		t.Error("tuple counts differ")
	}
	r1 := &RecordType{Name: "A"}
	r2 := &RecordType{Name: "A"}
	if Identical(r1, r2) {
		t.Error("records are nominal")
	}
	if !Identical(&ArrayType{Rank: 1, Elem: RealType, DomName: "D"},
		&ArrayType{Rank: 1, Elem: RealType, DomName: "E"}) {
		t.Error("array identity ignores domain names")
	}
}

func TestAssignable(t *testing.T) {
	if !AssignableTo(IntType, RealType) {
		t.Error("int widens to real")
	}
	if AssignableTo(RealType, IntType) {
		t.Error("real must not narrow to int")
	}
	if !AssignableTo(IntType, &TupleType{Count: 3, Elem: RealType}) {
		t.Error("scalar broadcasts to tuple")
	}
	if !AssignableTo(&TupleType{Count: 3, Elem: IntType}, &TupleType{Count: 3, Elem: RealType}) {
		t.Error("int tuple assigns to real tuple")
	}
	if AssignableTo(&TupleType{Count: 2, Elem: IntType}, &TupleType{Count: 3, Elem: RealType}) {
		t.Error("tuple size mismatch must fail")
	}
	cls := &RecordType{Name: "C", IsClass: true}
	if !AssignableTo(NilType, cls) {
		t.Error("nil assigns to class")
	}
	if !AssignableTo(RealType, &ArrayType{Rank: 1, Elem: RealType}) {
		t.Error("scalar broadcasts to array")
	}
}

func TestIdenticalIsEquivalenceProperty(t *testing.T) {
	// Symmetry over a small pool of generated types.
	pool := []Type{
		IntType, RealType, BoolType, StringType,
		&TupleType{Count: 2, Elem: IntType},
		&TupleType{Count: 2, Elem: RealType},
		&ArrayType{Rank: 1, Elem: RealType},
		&ArrayType{Rank: 2, Elem: RealType},
		&DomainType{Rank: 1},
		&DomainType{Rank: 2},
		RangeVal,
	}
	check := func(i, j uint8) bool {
		a := pool[int(i)%len(pool)]
		b := pool[int(j)%len(pool)]
		if Identical(a, b) != Identical(b, a) {
			return false
		}
		return Identical(a, a)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPromotion(t *testing.T) {
	if Common(IntType, IntType) != IntType {
		t.Error("int+int = int")
	}
	if Common(IntType, RealType) != RealType || Common(RealType, IntType) != RealType {
		t.Error("real wins promotion")
	}
}

func TestIsBigValue(t *testing.T) {
	if IsBigValue(IntType) {
		t.Error("int is small")
	}
	if !IsBigValue(&TupleType{Count: 8, Elem: RealType}) {
		t.Error("8*real is big")
	}
	if !IsBigValue(&ArrayType{Rank: 1, Elem: RealType}) {
		t.Error("arrays are big")
	}
	if IsBigValue(&RecordType{Name: "C", IsClass: true}) {
		t.Error("class handles are small")
	}
}
