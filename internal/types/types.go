// Package types implements the MiniChapel type system: primitive scalars,
// homogeneous tuples (k*T), records/classes, ranges, rectangular domains,
// arrays over domains, and array views (slices that alias their parent).
//
// Type display strings are kept compatible with the paper's tables, e.g.
// "[DistSpace][perBinSpace] v3", "8*real", "[binSpace] int(32)".
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates type constructors.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Void
	Int
	Real
	Bool
	String
	Tuple
	Record
	Class
	Range
	Domain
	Array
	LocaleK
	Nil
	Atomic
)

// Type is the interface implemented by all MiniChapel types.
type Type interface {
	Kind() Kind
	// String returns the user-facing display name.
	String() string
	// Size returns the abstract storage size in bytes, used by the
	// HPCToolkit-like baseline's ">= 4 KiB" allocation filter and by the
	// address-space layout of the VM.
	Size() int64
}

// ---------------------------------------------------------------- scalars

// Basic is a primitive scalar type.
type Basic struct {
	K     Kind
	Width int    // display width, e.g. int(32); 0 means default (64)
	Name  string // display name
}

func (b *Basic) Kind() Kind { return b.K }
func (b *Basic) String() string {
	if b.Width != 0 {
		return fmt.Sprintf("%s(%d)", b.Name, b.Width)
	}
	return b.Name
}

// Size returns the storage size of the scalar.
func (b *Basic) Size() int64 {
	switch b.K {
	case Bool:
		return 1
	case String:
		return 16
	case Void:
		return 0
	}
	if b.Width != 0 {
		return int64(b.Width / 8)
	}
	return 8
}

// Predeclared scalar types.
var (
	VoidType   = &Basic{K: Void, Name: "void"}
	IntType    = &Basic{K: Int, Name: "int"}
	Int32Type  = &Basic{K: Int, Width: 32, Name: "int"}
	RealType   = &Basic{K: Real, Name: "real"}
	Real32Type = &Basic{K: Real, Width: 32, Name: "real"}
	BoolType   = &Basic{K: Bool, Name: "bool"}
	StringType = &Basic{K: String, Name: "string"}
	LocaleType = &Basic{K: LocaleK, Name: "locale"}
	NilType    = &Basic{K: Nil, Name: "nil"}
)

// ----------------------------------------------------------------- tuples

// TupleType is a homogeneous tuple k*T (Chapel's 3*real, 8*real...).
type TupleType struct {
	Count int
	Elem  Type
	// Alias, when non-empty, is a user 'type' alias name (e.g. "v3") used
	// for display, matching the paper's Table II.
	Alias string
}

func (t *TupleType) Kind() Kind { return Tuple }
func (t *TupleType) String() string {
	if t.Alias != "" {
		return t.Alias
	}
	return fmt.Sprintf("%d*%s", t.Count, t.Elem)
}

// Size is the summed element size.
func (t *TupleType) Size() int64 { return int64(t.Count) * t.Elem.Size() }

// ---------------------------------------------------------------- records

// Field is a record/class field.
type Field struct {
	Name string
	Type Type
	// Offset is the abstract byte offset within the record.
	Offset int64
}

// RecordType is a record (value semantics) or class (reference semantics).
type RecordType struct {
	Name    string
	IsClass bool
	Fields  []Field
	size    int64
}

func (r *RecordType) Kind() Kind {
	if r.IsClass {
		return Class
	}
	return Record
}

func (r *RecordType) String() string { return r.Name }

// Size lays out fields on first use and returns the total size. A class
// handle itself is pointer-sized; InstanceSize gives the allocation size.
func (r *RecordType) Size() int64 {
	if r.IsClass {
		return 8
	}
	return r.InstanceSize()
}

// InstanceSize returns the size of the record payload (heap block size for
// classes).
func (r *RecordType) InstanceSize() int64 {
	if r.size == 0 {
		var off int64
		for i := range r.Fields {
			r.Fields[i].Offset = off
			off += r.Fields[i].Type.Size()
		}
		r.size = off
	}
	return r.size
}

// FieldIndex returns the index of the named field, or -1.
func (r *RecordType) FieldIndex(name string) int {
	for i := range r.Fields {
		if r.Fields[i].Name == name {
			return i
		}
	}
	return -1
}

// ----------------------------------------------------------------- ranges

// RangeType is the type of lo..hi expressions.
type RangeType struct{}

func (*RangeType) Kind() Kind     { return Range }
func (*RangeType) String() string { return "range" }

// Size is the descriptor size (lo, hi, stride).
func (*RangeType) Size() int64 { return 24 }

// RangeVal is the predeclared range type instance.
var RangeVal = &RangeType{}

// ---------------------------------------------------------------- domains

// DomainType is a rectangular domain of the given rank, optionally
// block-distributed across locales.
type DomainType struct {
	Rank int
	// Dist is the distribution name ("Block") or empty for local.
	Dist string
}

func (d *DomainType) Kind() Kind { return Domain }
func (d *DomainType) String() string {
	if d.Dist != "" {
		return "domain dmapped " + d.Dist
	}
	return "domain"
}

// Size is the descriptor size: rank * (lo,hi,stride).
func (d *DomainType) Size() int64 { return int64(d.Rank) * 24 }

// ----------------------------------------------------------------- arrays

// ArrayType is an array over a domain. DomName records the *name* of the
// domain expression it was declared over (e.g. "DistSpace"), which the
// data-centric views print: "[DistSpace][perBinSpace] v3" is an array over
// DistSpace whose elements are arrays over perBinSpace of v3.
type ArrayType struct {
	Rank    int
	Elem    Type
	DomName string
}

func (a *ArrayType) Kind() Kind { return Array }

func (a *ArrayType) String() string {
	name := a.DomName
	if name == "" {
		name = strings.Repeat("D", 1)
	}
	return fmt.Sprintf("[%s] %s", name, a.Elem)
}

// Size is the descriptor size; element storage is heap-allocated and
// accounted per-instance by the VM.
func (a *ArrayType) Size() int64 { return 48 }

// ---------------------------------------------------------------- atomics

// AtomicType is `atomic T` — a scalar with atomic read/write/add/sub/
// fetchAdd operations (Chapel's atomic variables).
type AtomicType struct {
	Elem Type
}

func (a *AtomicType) Kind() Kind     { return Atomic }
func (a *AtomicType) String() string { return "atomic " + a.Elem.String() }

// Size matches the element's storage.
func (a *AtomicType) Size() int64 { return a.Elem.Size() }

// ------------------------------------------------------------- procedures

// ParamInfo describes a formal parameter for signature display.
type ParamInfo struct {
	Name  string
	Type  Type
	IsRef bool // true when writes inside the callee alias the actual
}

// ProcType is a procedure signature.
type ProcType struct {
	Params []ParamInfo
	Ret    Type
}

func (p *ProcType) Kind() Kind { return Invalid }
func (p *ProcType) String() string {
	var b strings.Builder
	b.WriteString("proc(")
	for i, q := range p.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if q.IsRef {
			b.WriteString("ref ")
		}
		b.WriteString(q.Type.String())
	}
	b.WriteString(")")
	if p.Ret != nil && p.Ret.Kind() != Void {
		b.WriteString(": " + p.Ret.String())
	}
	return b.String()
}

// Size of a procedure value (not storable).
func (p *ProcType) Size() int64 { return 8 }

// ------------------------------------------------------------- predicates

// IsNumeric reports whether t is int or real.
func IsNumeric(t Type) bool {
	k := t.Kind()
	return k == Int || k == Real
}

// IsIndexable reports whether t can appear as a loop iterand.
func IsIndexable(t Type) bool {
	switch t.Kind() {
	case Range, Domain, Array:
		return true
	}
	return false
}

// IsBigValue reports whether assignment of t copies bulk data (arrays,
// records, wide tuples) — relevant to the cost model.
func IsBigValue(t Type) bool {
	switch tt := t.(type) {
	case *ArrayType:
		return true
	case *RecordType:
		return !tt.IsClass
	case *TupleType:
		return tt.Count > 2
	}
	return false
}

// Identical reports structural type identity (alias names ignored).
func Identical(a, b Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	switch x := a.(type) {
	case *Basic:
		y, ok := b.(*Basic)
		// Widths are display-only: int(32) and int are interchangeable.
		return ok && x.K == y.K
	case *TupleType:
		y, ok := b.(*TupleType)
		return ok && x.Count == y.Count && Identical(x.Elem, y.Elem)
	case *RecordType:
		y, ok := b.(*RecordType)
		return ok && x == y
	case *RangeType:
		_, ok := b.(*RangeType)
		return ok
	case *DomainType:
		y, ok := b.(*DomainType)
		return ok && x.Rank == y.Rank
	case *ArrayType:
		y, ok := b.(*ArrayType)
		return ok && x.Rank == y.Rank && Identical(x.Elem, y.Elem)
	case *AtomicType:
		y, ok := b.(*AtomicType)
		return ok && Identical(x.Elem, y.Elem)
	}
	return false
}

// AssignableTo reports whether a value of type src can be assigned to dst,
// allowing int→real widening as Chapel does.
func AssignableTo(src, dst Type) bool {
	if Identical(src, dst) {
		return true
	}
	if src.Kind() == Int && dst.Kind() == Real {
		return true
	}
	if src.Kind() == Nil && dst.Kind() == Class {
		return true
	}
	// Tuple of ints assigns to tuple of reals elementwise.
	if s, ok := src.(*TupleType); ok {
		if d, ok := dst.(*TupleType); ok {
			return s.Count == d.Count && AssignableTo(s.Elem, d.Elem)
		}
	}
	// Scalar broadcasts to tuple or array (Chapel promotion on assignment).
	if d, ok := dst.(*TupleType); ok && IsNumeric(src) {
		return AssignableTo(src, d.Elem)
	}
	if d, ok := dst.(*ArrayType); ok {
		if IsNumeric(src) && IsNumeric(d.Elem) {
			return true
		}
		if s, ok := src.(*ArrayType); ok {
			return s.Rank == d.Rank && AssignableTo(s.Elem, d.Elem)
		}
		return AssignableTo(src, d.Elem)
	}
	return false
}

// Common returns the unified numeric type of two operands (real wins).
func Common(a, b Type) Type {
	if a.Kind() == Real || b.Kind() == Real {
		return RealType
	}
	return IntType
}
