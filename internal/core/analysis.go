// Package core implements the paper's primary contribution: variable
// blame for PGAS programs. It computes, statically and per function,
//
//	BlameSet(v, W) = ⋃_{w ∈ W} BackwardsSlice(w)
//
// where W is the set of instructions writing v, v's aliases (array
// slices, element refs) and v's fields (§III). Explicit transfer follows
// def-use chains; implicit transfer follows control dependence computed
// from the post-dominator tree (§IV.A). Exit variables (ref formals,
// return values; globals are blamed directly) form each procedure's
// transfer function for interprocedural bubbling (§IV.A "Transfer
// Function").
//
// Note on the paper's Fig. 1/Table I worked example: we implement the
// published formula, under which variable `a` (written at line 19 as
// a=b+1) also inherits line 17 (the write to b) through the backward
// slice; the paper's Table I omits 17 for `a` while including it for `c`.
// EXPERIMENTS.md records this one-line deviation.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/types"
)

// Options configure the analysis; the default (all true, instruction
// granularity) is the paper's configuration. The flags are the ablation
// knobs listed in DESIGN.md §4.
type Options struct {
	// ImplicitTransfer enables control-dependence blame (loop indices,
	// branch conditions). Paper default: on.
	ImplicitTransfer bool
	// Interprocedural enables transfer functions (exit-variable
	// bubbling). Paper default: on.
	Interprocedural bool
	// LineGranularity attributes at source-line instead of instruction
	// granularity (the paper argues instruction granularity is needed
	// when multiple statements share a line).
	LineGranularity bool
	// TrackPaths enables field/element access-path blame
	// (->partArray[i].zoneArray[j].value rows of Table IV).
	TrackPaths bool
}

// DefaultOptions is the paper's configuration.
func DefaultOptions() Options {
	return Options{ImplicitTransfer: true, Interprocedural: true, TrackPaths: true}
}

// PathBlame is the blame set of one field/element access path.
type PathBlame struct {
	Root *ir.Var
	Path string
	set  *bitset
	line map[int32]bool
}

// FuncAnalysis holds the per-function static blame information.
type FuncAnalysis struct {
	Fn     *ir.Func
	instrs []*ir.Instr
	index  map[*ir.Instr]int

	// blame maps alias-class representative vars to instruction sets.
	blame map[*ir.Var]*bitset
	// blameLines is the line-granularity projection.
	blameLines map[*ir.Var]map[int32]bool
	// Exits are the function's exit variables (ref formals + return).
	Exits []*ir.Var
	// Paths maps access paths to their blame.
	Paths map[string]*PathBlame

	// vars lists all variables that appear in the function (including
	// globals it touches).
	vars []*ir.Var
}

// Analysis is the whole-program static blame result (paper step 1).
type Analysis struct {
	Prog  *ir.Program
	Opts  Options
	Funcs map[*ir.Func]*FuncAnalysis

	aliasParent map[*ir.Var]*ir.Var
	// writes is the per-function written-variables analysis.
	writes *writeInfo
	// globalMembers lists the displayable global variables of each alias
	// class (keyed by representative): an alias like RealPos is blamed
	// wherever Pos's class is blamed, since their W sets coincide (§III
	// "the aliases of v").
	globalMembers map[*ir.Var][]*ir.Var
}

// Analyze runs static blame analysis over prog.
func Analyze(prog *ir.Program, opts Options) *Analysis {
	a := &Analysis{
		Prog:        prog,
		Opts:        opts,
		Funcs:       make(map[*ir.Func]*FuncAnalysis),
		aliasParent: make(map[*ir.Var]*ir.Var),
	}
	// Program-wide alias classes: slices, element refs, field refs and
	// ref-bindings union their operands (the paper's "aliases of v"), and
	// ref formals union with their actuals (a ref formal aliases the
	// caller's variable).
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.IsAliasDef() && in.Dst != nil && in.A != nil {
					a.union(in.Dst, in.A)
				}
				// Class handle copies alias the same heap instance
				// (`var p = partArray[pi];` — writes through p are
				// writes to partArray's region).
				if isClassVar(in.Dst) && in.A != nil {
					switch in.Op {
					case ir.OpMove, ir.OpIndex, ir.OpField, ir.OpTupleGet:
						a.union(in.Dst, in.A)
					}
				}
				if in.Op == ir.OpCall || in.Op == ir.OpSpawn {
					for _, pr := range callRefArgs(in) {
						if pr.param.IsRef && pr.arg != nil {
							a.union(pr.param, pr.arg)
						}
					}
				}
			}
		}
	}
	a.writes = newWriteInfo(prog)
	a.globalMembers = make(map[*ir.Var][]*ir.Var)
	for _, g := range prog.Globals {
		if g.Sym != nil && !g.IsTemp {
			rep := a.find(g)
			a.globalMembers[rep] = append(a.globalMembers[rep], g)
		}
	}
	for _, f := range prog.Funcs {
		if f.IsRuntime {
			continue
		}
		a.Funcs[f] = a.analyzeFunc(f)
	}
	// Fully path-compress the union-find so post-build find() calls are
	// pure reads: the Analysis can then be shared across goroutines
	// (AnalyzeCached) without racing on lazy compression.
	for v := range a.aliasParent {
		a.find(v)
	}
	return a
}

// ------------------------------------------------------------ alias sets

func (a *Analysis) find(v *ir.Var) *ir.Var {
	p, ok := a.aliasParent[v]
	if !ok || p == v {
		return v
	}
	r := a.find(p)
	// Path-compress only when the stored parent is stale. After the full
	// compression at the end of Analyze this branch never fires, keeping
	// post-build lookups write-free (safe for concurrent readers).
	if r != p {
		a.aliasParent[v] = r
	}
	return r
}

func (a *Analysis) union(x, y *ir.Var) {
	rx, ry := a.find(x), a.find(y)
	if rx == ry {
		return
	}
	// Prefer a named, non-temp representative so classes read well; among
	// named ones prefer globals (RealPos unions into Pos).
	better := func(p, q *ir.Var) bool {
		if p.IsTemp != q.IsTemp {
			return !p.IsTemp
		}
		if p.IsGlobal != q.IsGlobal {
			return p.IsGlobal
		}
		return false
	}
	if better(ry, rx) {
		rx, ry = ry, rx
	}
	a.aliasParent[ry] = rx
}

// AliasClass returns the representative of v's alias class.
func (a *Analysis) AliasClass(v *ir.Var) *ir.Var { return a.find(v) }

// CalleeWritesParam reports whether fn writes the given formal — directly
// or transitively through further calls. It exposes the written-vars
// analysis call-site blame uses, so static diagnostics (internal/analyze)
// can tell a callee that mutates a ref argument from one that only reads
// it.
func (a *Analysis) CalleeWritesParam(fn *ir.Func, p *ir.Var) bool {
	return a.writes.WritesParam(fn, p)
}

// ------------------------------------------------------- per-function

func (a *Analysis) analyzeFunc(f *ir.Func) *FuncAnalysis {
	fa := &FuncAnalysis{
		Fn:         f,
		index:      make(map[*ir.Instr]int),
		blame:      make(map[*ir.Var]*bitset),
		blameLines: make(map[*ir.Var]map[int32]bool),
		Paths:      make(map[string]*PathBlame),
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fa.index[in] = len(fa.instrs)
			fa.instrs = append(fa.instrs, in)
		}
	}
	n := len(fa.instrs)

	// Collect variables and defs (per alias class).
	seen := make(map[*ir.Var]bool)
	defs := make(map[*ir.Var][]int) // class rep → instr indices
	addVar := func(v *ir.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			fa.vars = append(fa.vars, v)
		}
	}
	addDef := func(v *ir.Var, idx int) {
		if v == nil {
			return
		}
		r := a.find(v)
		defs[r] = append(defs[r], idx)
	}
	// shallowDefs are "descriptor writes": the paper's footnote on the
	// MiniMD Count/binSpace rows observes that domain remapping writes
	// these variables "not at the source code level, but at the llvm
	// instruction level". Slice construction touches its domain operand's
	// runtime descriptor; we record it as a write whose slice is just the
	// instruction itself (no operand closure).
	shallowDefs := make(map[*ir.Var][]int)
	// classHasGlobal: module-level arrays travel through the runtime's
	// wide descriptors, which every binding/bundling touches — the
	// paper's footnote that such variables are "written, not at the
	// source code level, but at the llvm instruction level".
	classHasGlobal := func(v *ir.Var) bool {
		return len(a.globalMembers[a.find(v)]) > 0
	}
	for idx, in := range fa.instrs {
		addVar(in.Dst)
		addVar(in.A)
		addVar(in.B)
		for _, q := range in.Args {
			addVar(q)
		}
		switch {
		case in.Op == ir.OpBuiltin && isAtomicWrite(in.Method):
			// Atomic write/add/sub/fetchAdd store through the receiver.
			if in.A != nil {
				addDef(in.A, idx)
			}
		case in.IsAliasDef() || in.Op == ir.OpZipSetup || in.Op == ir.OpZipAdvance:
			// Ref bindings are descriptor touches: writes only for
			// global-classed variables.
			if in.Dst != nil && classHasGlobal(in.Dst) {
				addDef(in.Dst, idx)
			}
		case in.Op == ir.OpCall || in.Op == ir.OpSpawn:
			if in.Dst != nil {
				addDef(in.Dst, idx)
			}
			// A call writes the ref arguments its callee actually
			// mutates, plus the wide descriptors of global-classed
			// *arrays* it bundles (scalars and domains pass by value;
			// domains get descriptor blame at slice sites instead).
			for _, pr := range callRefArgs(in) {
				if pr.arg == nil {
					continue
				}
				isGlobalArray := classHasGlobal(pr.arg) && pr.arg.Type != nil && pr.arg.Type.Kind() == types.Array
				if (pr.param.IsRef && a.writes.WritesParam(in.Callee, pr.param)) || isGlobalArray {
					addDef(pr.arg, idx)
				}
			}
		default:
			if d := in.Def(); d != nil {
				addDef(d, idx)
			}
		}
		if in.Op == ir.OpSlice && in.B != nil {
			r := a.find(in.B)
			shallowDefs[r] = append(shallowDefs[r], idx)
		}
		if in.Spawn != nil && in.Spawn.Iter != nil {
			r := a.find(in.Spawn.Iter)
			shallowDefs[r] = append(shallowDefs[r], idx)
		}
	}

	// Control dependences (implicit transfer).
	var cdeps map[int][]*ir.Instr
	if a.Opts.ImplicitTransfer {
		cdeps = cfg.ControlDeps(f)
	}

	// Exit variables: ref formals and the return slot.
	for _, p := range f.Params {
		if p.IsRef {
			fa.Exits = append(fa.Exits, p)
		}
	}
	if f.RetVar != nil {
		fa.Exits = append(fa.Exits, f.RetVar)
	}

	// Fixpoint over blame sets: BlameSet(v) = ⋃ defs' backward slices.
	getSet := func(v *ir.Var) *bitset {
		r := a.find(v)
		s, ok := fa.blame[r]
		if !ok {
			s = newBitset(n)
			fa.blame[r] = s
		}
		return s
	}
	// sliceInto accumulates the backward slice of one def instruction.
	sliceInto := func(dst *bitset, idx int) bool {
		in := fa.instrs[idx]
		changed := false
		if !dst.has(idx) {
			dst.set(idx)
			changed = true
		}
		for _, u := range in.Uses() {
			if dst.union(getSet(u)) {
				changed = true
			}
		}
		if cdeps != nil && in.Block != nil {
			for _, br := range cdeps[in.Block.ID] {
				bi, ok := fa.index[br]
				if !ok {
					continue
				}
				if !dst.has(bi) {
					dst.set(bi)
					changed = true
				}
				for _, cu := range br.Uses() {
					if dst.union(getSet(cu)) {
						changed = true
					}
				}
			}
		}
		return changed
	}
	for changed := true; changed; {
		changed = false
		for rep, dlist := range defs {
			set := getSet(rep)
			for _, idx := range dlist {
				if sliceInto(set, idx) {
					changed = true
				}
			}
		}
		for rep, dlist := range shallowDefs {
			set := getSet(rep)
			for _, idx := range dlist {
				if !set.has(idx) {
					set.set(idx)
					changed = true
				}
			}
		}
	}

	// Line-granularity projection.
	for rep, set := range fa.blame {
		lines := make(map[int32]bool)
		set.each(func(i int) {
			if p := fa.instrs[i].Pos; p.IsValid() {
				lines[p.Line] = true
			}
		})
		fa.blameLines[rep] = lines
	}

	// Access-path blame (field/element rows of Table IV).
	if a.Opts.TrackPaths {
		a.buildPaths(fa, cdeps)
	}
	return fa
}

// buildPaths assigns blame to static access paths rooted at named
// variables: every store-through instruction's backward slice blames the
// path it writes.
func (a *Analysis) buildPaths(fa *FuncAnalysis, cdeps map[int][]*ir.Instr) {
	n := len(fa.instrs)
	pathMemo := make(map[*ir.Var]string)
	rootMemo := make(map[*ir.Var]*ir.Var)
	// aliasDefOf finds the (first) alias-def of a ref temp; class-handle
	// vars also trace through their initializing copy (`var p =
	// partArray[pi]` names the same instance).
	aliasDefOf := func(v *ir.Var) *ir.Instr {
		for _, in := range fa.instrs {
			if in.Dst != v {
				continue
			}
			if in.IsAliasDef() {
				return in
			}
			if isClassVar(v) {
				switch in.Op {
				case ir.OpIndex, ir.OpMove, ir.OpField:
					return in
				}
			}
		}
		return nil
	}
	var pathOf func(v *ir.Var) (string, *ir.Var)
	pathOf = func(v *ir.Var) (string, *ir.Var) {
		if p, ok := pathMemo[v]; ok {
			return p, rootMemo[v]
		}
		pathMemo[v] = "" // cycle guard
		var path string
		var root *ir.Var
		named := v.Sym != nil && !v.IsTemp
		if named && !isClassVar(v) {
			path, root = v.Name, v
		} else if def := aliasDefOf(v); def != nil && def.A != nil {
			base, r := pathOf(def.A)
			root = r
			switch def.Op {
			case ir.OpRefElem, ir.OpIndex:
				path = base + "[" + indexNames(def.Args) + "]"
			case ir.OpRefField, ir.OpField:
				path = base + "." + fieldName(def)
			case ir.OpSlice, ir.OpMove:
				path = base
			}
		}
		if path == "" && named {
			path, root = v.Name, v
		}
		pathMemo[v] = path
		rootMemo[v] = root
		return path, root
	}

	addPathBlame := func(path string, root *ir.Var, idx int) {
		pb, ok := fa.Paths[path]
		if !ok {
			pb = &PathBlame{Root: root, Path: path, set: newBitset(n), line: make(map[int32]bool)}
			fa.Paths[path] = pb
		}
		// Slice of this store: the stored value and the indices — not the
		// base chain, whose class-level set covers every write to the
		// whole structure (that set belongs to the root row).
		in := fa.instrs[idx]
		pb.set.set(idx)
		uses := []*ir.Var{in.A, in.B}
		uses = append(uses, in.Args...)
		for _, u := range uses {
			if u == nil {
				continue
			}
			if s, ok := fa.blame[a.find(u)]; ok {
				pb.set.union(s)
			}
		}
		if cdeps != nil && in.Block != nil {
			for _, br := range cdeps[in.Block.ID] {
				if bi, ok := fa.index[br]; ok {
					pb.set.set(bi)
				}
				for _, cu := range br.Uses() {
					if s, ok := fa.blame[a.find(cu)]; ok {
						pb.set.union(s)
					}
				}
			}
		}
	}

	for idx, in := range fa.instrs {
		if !in.IsStoreThrough() || in.Dst == nil {
			continue
		}
		base, root := pathOf(in.Dst)
		if base == "" || root == nil || root.Sym == nil {
			continue
		}
		var p string
		switch in.Op {
		case ir.OpIndexStore:
			p = base + "[" + indexNames(in.Args) + "]"
		case ir.OpFieldStore:
			p = base + "." + fieldName(in)
		case ir.OpTupleSet:
			p = base
		}
		if p == "" || p == root.Name {
			continue
		}
		addPathBlame(p, root, idx)
	}
	// Ancestor prefixes: a write to partArray[i].zoneArray[j].value is
	// also a write to partArray[i].zoneArray[j] and partArray[i]
	// (the paper's hierarchical rows, "all fields of v").
	prefixes := make(map[string]*PathBlame)
	for path, pb := range fa.Paths {
		for p := parentPath(path); p != "" && p != pb.Root.Name; p = parentPath(p) {
			anc, ok := fa.Paths[p]
			if !ok {
				anc, ok = prefixes[p]
			}
			if !ok {
				anc = &PathBlame{Root: pb.Root, Path: p, set: newBitset(n), line: make(map[int32]bool)}
				prefixes[p] = anc
			}
			anc.set.union(pb.set)
		}
	}
	for p, pb := range prefixes {
		fa.Paths[p] = pb
	}
	for _, pb := range fa.Paths {
		pb.set.each(func(i int) {
			if p := fa.instrs[i].Pos; p.IsValid() {
				pb.line[p.Line] = true
			}
		})
	}
}

// parentPath strips the last accessor ("a[i].b" → "a[i]" → "a").
func parentPath(p string) string {
	for i := len(p) - 1; i > 0; i-- {
		switch p[i] {
		case '.':
			return p[:i]
		case '[':
			return p[:i]
		}
	}
	return ""
}

// indexNames renders subscript names from the index operand variables
// (actual loop-variable names when available, generic i/j/k otherwise).
func indexNames(args []*ir.Var) string {
	generic := []string{"i", "j", "k"}
	out := ""
	for d, a := range args {
		if d > 0 {
			out += ","
		}
		if a != nil && !a.IsTemp && a.Sym != nil {
			out += a.Name
		} else if d < len(generic) {
			out += generic[d]
		} else {
			out += "i"
		}
	}
	if out == "" {
		return "i"
	}
	return out
}

// fieldName resolves the field name of a field access instruction from
// the base operand's record type.
func fieldName(in *ir.Instr) string {
	var base *ir.Var
	if in.Op == ir.OpFieldStore {
		base = in.Dst
	} else {
		base = in.A
	}
	if base != nil {
		if rt, ok := baseRecord(base.Type); ok && in.FieldIx >= 0 && in.FieldIx < len(rt.Fields) {
			return rt.Fields[in.FieldIx].Name
		}
	}
	if in.FieldIx >= 0 {
		return fmt.Sprintf("f%d", in.FieldIx)
	}
	return "value"
}

func baseRecord(t types.Type) (*types.RecordType, bool) {
	rt, ok := t.(*types.RecordType)
	return rt, ok
}

// isAtomicWrite reports whether an OpBuiltin method mutates its receiver.
func isAtomicWrite(method string) bool {
	switch method {
	case "atomic:write", "atomic:add", "atomic:sub", "atomic:fetchAdd":
		return true
	}
	return false
}

// isClassVar reports whether v holds a class handle.
func isClassVar(v *ir.Var) bool {
	return v != nil && v.Type != nil && v.Type.Kind() == types.Class
}

// ------------------------------------------------------------- queries

// BlameSetLines returns the source lines in v's blame set within f —
// the "Blame Lines" of the paper's Table I.
func (a *Analysis) BlameSetLines(f *ir.Func, v *ir.Var) []int {
	fa := a.Funcs[f]
	if fa == nil {
		return nil
	}
	lines, ok := fa.blameLines[a.find(v)]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(lines))
	for l := range lines {
		out = append(out, int(l))
	}
	sort.Ints(out)
	return out
}

// blamedAt returns all variables of f whose blame set contains the
// instruction (or its line, at line granularity).
func (fa *FuncAnalysis) blamedAt(a *Analysis, in *ir.Instr) []*ir.Var {
	idx, ok := fa.index[in]
	if !ok {
		return nil
	}
	blamedRep := func(rep *ir.Var) bool {
		if a.Opts.LineGranularity {
			lines := fa.blameLines[rep]
			return lines != nil && in.Pos.IsValid() && lines[in.Pos.Line]
		}
		s := fa.blame[rep]
		return s != nil && s.has(idx)
	}
	var out []*ir.Var
	for _, v := range fa.vars {
		if blamedRep(a.find(v)) {
			out = append(out, v)
		}
	}
	// Global alias-class members share blame even when the alias name
	// does not appear in this function (RealPos/RealCount in MiniMD).
	for rep := range fa.blame {
		if !blamedRep(rep) {
			continue
		}
		out = append(out, a.globalMembers[rep]...)
	}
	return out
}

// pathsAt returns access paths blamed for the instruction.
func (fa *FuncAnalysis) pathsAt(a *Analysis, in *ir.Instr) []*PathBlame {
	idx, ok := fa.index[in]
	if !ok {
		return nil
	}
	var out []*PathBlame
	for _, pb := range fa.Paths {
		if a.Opts.LineGranularity {
			if in.Pos.IsValid() && pb.line[in.Pos.Line] {
				out = append(out, pb)
			}
			continue
		}
		if pb.set.has(idx) {
			out = append(out, pb)
		}
	}
	return out
}
