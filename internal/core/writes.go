package core

import (
	"repro/internal/ir"
)

// writeInfo computes, per function, which variables (by local alias class)
// are actually written — directly or transitively through callees' ref
// formals. It distinguishes a callee that *writes* a ref formal from one
// that only reads it, so call sites blame only arguments the call can
// mutate (plus global-classed descriptors, handled separately).
type writeInfo struct {
	// localRep is a per-function union-find over that function's own
	// alias instructions (refs bind to their bases within one frame).
	localRep map[*ir.Func]map[*ir.Var]*ir.Var
	// written[f] holds the local reps f writes.
	written map[*ir.Func]map[*ir.Var]bool
}

func newWriteInfo(prog *ir.Program) *writeInfo {
	w := &writeInfo{
		localRep: make(map[*ir.Func]map[*ir.Var]*ir.Var),
		written:  make(map[*ir.Func]map[*ir.Var]bool),
	}
	for _, f := range prog.Funcs {
		w.localRep[f] = make(map[*ir.Var]*ir.Var)
		w.written[f] = make(map[*ir.Var]bool)
	}
	// Local alias classes.
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.IsAliasDef() && in.Dst != nil && in.A != nil {
					w.union(f, in.Dst, in.A)
				}
				if isClassVar(in.Dst) && in.A != nil {
					switch in.Op {
					case ir.OpMove, ir.OpIndex, ir.OpField, ir.OpTupleGet:
						w.union(f, in.Dst, in.A)
					}
				}
			}
		}
	}
	// Direct writes.
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if v := directWriteTarget(in); v != nil {
					w.written[f][w.find(f, v)] = true
				}
			}
		}
	}
	// Transitive writes through callee ref formals (fixpoint over the
	// call graph).
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpCall && in.Op != ir.OpSpawn {
						continue
					}
					for k, arg := range callRefArgs(in) {
						_ = k
						if arg.param == nil || arg.arg == nil {
							continue
						}
						if !arg.param.IsRef {
							continue
						}
						if !w.written[in.Callee][w.find(in.Callee, arg.param)] {
							continue
						}
						rep := w.find(f, arg.arg)
						if !w.written[f][rep] {
							w.written[f][rep] = true
							changed = true
						}
					}
				}
			}
		}
	}
	// Fully path-compress every per-function union-find so later find()
	// calls are pure reads (see find).
	for f, m := range w.localRep {
		for v := range m {
			w.find(f, v)
		}
	}
	return w
}

// directWriteTarget returns the variable a non-call instruction truly
// writes (ref bindings and zip markers are not writes).
func directWriteTarget(in *ir.Instr) *ir.Var {
	switch in.Op {
	case ir.OpBuiltin:
		if isAtomicWrite(in.Method) {
			return in.A
		}
		return nil
	case ir.OpRefElem, ir.OpRefField, ir.OpSlice,
		ir.OpZipSetup, ir.OpZipAdvance,
		ir.OpCall, ir.OpSpawn,
		ir.OpRet, ir.OpJmp, ir.OpBr, ir.OpNop, ir.OpYield:
		return nil
	case ir.OpMove:
		if in.Rebind {
			return nil // `ref r = x` binds, it does not write
		}
	}
	if in.IsStoreThrough() {
		return in.Dst
	}
	return in.Dst
}

// argPair couples a callee formal with the caller's actual.
type argPair struct {
	param, arg *ir.Var
}

// callRefArgs aligns a call/spawn's args with the callee's params
// (spawn bodies take index params first).
func callRefArgs(in *ir.Instr) []argPair {
	if in.Callee == nil {
		return nil
	}
	skip := 0
	if in.Op == ir.OpSpawn && in.Spawn != nil {
		skip = in.Spawn.NumIdx
	}
	var out []argPair
	for k, p := range in.Callee.Params {
		if k < skip {
			continue
		}
		if k-skip < len(in.Args) {
			out = append(out, argPair{param: p, arg: in.Args[k-skip]})
		}
	}
	return out
}

// WritesParam reports whether fn writes (directly or transitively) the
// given formal.
func (w *writeInfo) WritesParam(fn *ir.Func, p *ir.Var) bool {
	return w.written[fn][w.find(fn, p)]
}

func (w *writeInfo) find(f *ir.Func, v *ir.Var) *ir.Var {
	m := w.localRep[f]
	p, ok := m[v]
	if !ok || p == v {
		return v
	}
	r := w.find(f, p)
	// Compress only stale entries; after newWriteInfo's full compression
	// pass this is write-free, so WritesParam is safe for concurrent
	// readers of a shared Analysis.
	if r != p {
		m[v] = r
	}
	return r
}

func (w *writeInfo) union(f *ir.Func, x, y *ir.Var) {
	rx, ry := w.find(f, x), w.find(f, y)
	if rx != ry {
		w.localRep[f][rx] = ry
	}
}
