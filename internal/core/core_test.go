package core_test

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/ir"
)

func analyze(t *testing.T, src string, opts core.Options) (*core.Analysis, *ir.Program) {
	t.Helper()
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return core.Analyze(res.Prog, opts), res.Prog
}

func findVar(f *ir.Func, name string) *ir.Var {
	for _, v := range f.AllVars() {
		if v.Name == name && !v.IsTemp {
			return v
		}
	}
	return nil
}

func findGlobal(p *ir.Program, name string) *ir.Var {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func hasLine(lines []int, l int) bool {
	for _, x := range lines {
		if x == l {
			return true
		}
	}
	return false
}

// TestFig1Example reproduces the paper's Fig. 1 / Table I worked example.
// Source lines here: a=2 is line 2, b=3 line 3, if line 4, a=b+1 line 5,
// c=a+b line 6 (paper lines 16..20).
func TestFig1Example(t *testing.T) {
	src := `proc main() {
  var a = 2;
  var b = 3;
  if a < b {
    a = b + 1;
  }
  var c = a + b;
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("main")

	av := findVar(f, "a")
	bv := findVar(f, "b")
	cv := findVar(f, "c")
	if av == nil || bv == nil || cv == nil {
		t.Fatalf("vars not found in:\n%s", f.Dump())
	}

	aLines := a.BlameSetLines(f, av)
	bLines := a.BlameSetLines(f, bv)
	cLines := a.BlameSetLines(f, cv)

	// Paper Table I (translated to our line numbers):
	//   a: {2, 4, 5}   (+3 under the published formula; see package doc)
	//   b: {3}
	//   c: {2, 3, 4, 5, 7}
	for _, l := range []int{2, 4, 5} {
		if !hasLine(aLines, l) {
			t.Errorf("a missing line %d: %v", l, aLines)
		}
	}
	if !hasLine(aLines, 3) {
		t.Errorf("published formula: a's slice of a=b+1 includes b's def (line 3): %v", aLines)
	}
	if len(bLines) != 1 || bLines[0] != 3 {
		t.Errorf("b lines = %v, want [3]", bLines)
	}
	for _, l := range []int{2, 3, 4, 5, 7} {
		if !hasLine(cLines, l) {
			t.Errorf("c missing line %d: %v", l, cLines)
		}
	}
	// c must NOT contain lines it doesn't depend on; there are none here.
	// b must not contain the branch (b doesn't depend on the condition).
	if hasLine(bLines, 4) {
		t.Errorf("b should not include the if line: %v", bLines)
	}
}

// TestImplicitTransferToggle: with implicit transfer off, the branch line
// disappears from a's set.
func TestImplicitTransferToggle(t *testing.T) {
	src := `proc main() {
  var a = 2;
  var b = 3;
  if a < b {
    a = b + 1;
  }
}
`
	opts := core.DefaultOptions()
	opts.ImplicitTransfer = false
	a, p := analyze(t, src, opts)
	f := p.FuncByName("main")
	av := findVar(f, "a")
	aLines := a.BlameSetLines(f, av)
	if hasLine(aLines, 4) {
		t.Errorf("implicit transfer disabled but a includes branch line: %v", aLines)
	}
}

// TestLoopIndexImplicitBlame: all variables written in a loop body
// inherit blame from the loop index (paper §IV.A).
func TestLoopIndexImplicitBlame(t *testing.T) {
	src := `proc main() {
  var s = 0.0;
  for i in 1..10 {
    s += 1.5;
  }
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("main")
	sv := findVar(f, "s")
	sLines := a.BlameSetLines(f, sv)
	// The loop header/increment lines (line 3) must be in s's blame.
	if !hasLine(sLines, 3) {
		t.Errorf("s should inherit the loop index lines: %v", sLines)
	}
}

func TestAliasBlame(t *testing.T) {
	// Writes through a slice alias blame the parent array (MiniMD's
	// RealPos → Pos).
	src := `
config const n = 8;
var D: domain(1) = {0..#n};
var inner: domain(1) = {1..6};
var Pos: [D] real;
ref RealPos = Pos[inner];
proc main() {
  RealPos[2] = 1.0;
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("main")
	pos := findGlobal(p, "Pos")
	rp := findGlobal(p, "RealPos")
	if a.AliasClass(pos) != a.AliasClass(rp) {
		t.Fatal("RealPos and Pos should share an alias class")
	}
	lines := a.BlameSetLines(f, pos)
	if !hasLine(lines, 8) {
		t.Errorf("write through RealPos must blame Pos: %v", lines)
	}
}

func TestExitVariables(t *testing.T) {
	src := `
proc accum(ref acc: real, x: real): real {
  acc += x;
  return acc * 2.0;
}
proc main() {
  var a = 0.0;
  var y = accum(a, 1.5);
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("accum")
	fa := a.Funcs[f]
	if fa == nil {
		t.Fatal("no analysis for accum")
	}
	names := map[string]bool{}
	for _, e := range fa.Exits {
		names[e.Name] = true
	}
	if !names["acc"] {
		t.Errorf("ref param acc should be an exit variable: %v", names)
	}
	if !names["__ret__"] {
		t.Errorf("return slot should be an exit variable: %v", names)
	}
}

func TestCallSiteBlamesCallerVar(t *testing.T) {
	// The call instruction is a def of its ref args, so the caller's
	// variable blame set includes the call line.
	src := `
proc bump(ref x: real) {
  x += 1.0;
}
proc main() {
  var v = 0.0;
  bump(v);
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("main")
	vv := findVar(f, "v")
	lines := a.BlameSetLines(f, vv)
	if !hasLine(lines, 7) {
		t.Errorf("v's blame must include the call at line 7: %v", lines)
	}
}

func TestAttributeSampleLevel0(t *testing.T) {
	src := `proc main() {
  var a = 2;
  var b = 3;
  var c = a + b;
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("main")
	// Find the instruction for line 4 (c = a + b).
	var target *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Pos.Line == 4 && in.Op == ir.OpBin {
				target = in
			}
		}
	}
	if target == nil {
		t.Fatalf("no bin op at line 4\n%s", f.Dump())
	}
	blamed := a.AttributeSample([]core.Frame{{Fn: f, Instr: target}})
	names := map[string]bool{}
	for _, b := range blamed {
		if b.Sym != nil && b.Path == "" {
			names[b.Sym.Name] = true
		}
	}
	if !names["c"] {
		t.Errorf("sample on c=a+b must blame c: %v", names)
	}
	if names["a"] || names["b"] {
		// The bin-op instruction is in c's slice only; a and b's sets
		// contain their own defs.
		t.Errorf("sample on c=a+b must not blame a or b directly: %v", names)
	}
}

func TestInterproceduralBubbling(t *testing.T) {
	src := `
proc work(ref result0: real) {
  var local1 = 0.0;
  local1 = 2.5;
  result0 = local1 * 2.0;
}
proc main() {
  var result = 0.0;
  work(result);
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	work := p.FuncByName("work")
	main := p.FuncByName("main")
	// Sample inside work at the write to local1 (line 4) — in local1's
	// blame set directly and in result0's via the backward slice of the
	// write at line 5.
	var target *ir.Instr
	for _, b := range work.Blocks {
		for _, in := range b.Instrs {
			if in.Pos.Line == 4 && in.Op == ir.OpMove {
				target = in
			}
		}
	}
	if target == nil {
		t.Fatalf("no target\n%s", work.Dump())
	}
	// Call site in main.
	var callsite *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == work {
				callsite = in
			}
		}
	}
	if callsite == nil {
		t.Fatal("no call site")
	}
	blamed := a.AttributeSample([]core.Frame{
		{Fn: work, Instr: target},
		{Fn: main, Instr: callsite},
	})
	names := map[string]bool{}
	for _, b := range blamed {
		if b.Sym != nil {
			names[b.Sym.Name] = true
		}
	}
	if !names["result"] {
		t.Errorf("blame must bubble to result in main: %v", names)
	}
	if !names["local1"] {
		t.Errorf("local1 should be blamed at level 0: %v", names)
	}
}

func TestNoInterproceduralOption(t *testing.T) {
	src := `
proc work(ref result0: real) {
  result0 = 2.5;
}
proc main() {
  var result = 0.0;
  work(result);
}
`
	opts := core.DefaultOptions()
	opts.Interprocedural = false
	a, p := analyze(t, src, opts)
	work := p.FuncByName("work")
	main := p.FuncByName("main")
	var target, callsite *ir.Instr
	for _, b := range work.Blocks {
		for _, in := range b.Instrs {
			if in.Pos.Line == 3 {
				target = in
			}
		}
	}
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				callsite = in
			}
		}
	}
	blamed := a.AttributeSample([]core.Frame{
		{Fn: work, Instr: target},
		{Fn: main, Instr: callsite},
	})
	for _, b := range blamed {
		if b.Sym != nil && b.Sym.Name == "result" {
			t.Error("interprocedural disabled but blame bubbled to result")
		}
	}
}

func TestGlobalBlamedDirectly(t *testing.T) {
	src := `
var G = 0.0;
proc work() {
  G = G + 1.0;
}
proc main() { work(); }
`
	a, p := analyze(t, src, core.DefaultOptions())
	work := p.FuncByName("work")
	var target *ir.Instr
	for _, b := range work.Blocks {
		for _, in := range b.Instrs {
			if in.Pos.Line == 4 && in.Op == ir.OpBin {
				target = in
			}
		}
	}
	blamed := a.AttributeSample([]core.Frame{{Fn: work, Instr: target}})
	found := false
	for _, b := range blamed {
		if b.Sym != nil && b.Sym.Name == "G" {
			found = true
		}
	}
	if !found {
		t.Error("global G must be blamed directly without transfer")
	}
}

func TestPathBlame(t *testing.T) {
	src := `
config const nz = 4;
var zoneSpace: domain(1) = {0..#nz};
record Zone { var value: real; }
class Part {
  var zoneArray: [zoneSpace] Zone;
  var residue: real;
}
config const np = 2;
var partSpace: domain(1) = {0..#np};
var partArray: [partSpace] Part;
proc main() {
  partArray[0] = new Part();
  partArray[0].zoneArray[1].value = 3.5;
  partArray[0].residue = 0.25;
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("main")
	fa := a.Funcs[f]
	want := []string{
		"partArray[i].zoneArray[i].value",
		"partArray[i].residue",
	}
	for _, w := range want {
		if _, ok := fa.Paths[w]; !ok {
			keys := make([]string, 0, len(fa.Paths))
			for k := range fa.Paths {
				keys = append(keys, k)
			}
			t.Errorf("missing path %q; have %v", w, keys)
		}
	}
}

func TestTempsExcludedFromAttribution(t *testing.T) {
	src := `proc main() {
  var x = 1 + 2 * 3;
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	f := p.FuncByName("main")
	var target *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin {
				target = in
			}
		}
	}
	blamed := a.AttributeSample([]core.Frame{{Fn: f, Instr: target}})
	for _, bl := range blamed {
		if bl.Sym == nil {
			t.Errorf("blamed entity without symbol: %+v", bl)
		}
		if bl.Path == "" && bl.Sym.Name != "x" {
			t.Errorf("only x should be blamed, got %s", bl.Sym.Name)
		}
	}
}

func TestLineGranularityOption(t *testing.T) {
	// At line granularity two statements on one line share blame.
	src := `proc main() {
  var a = 0; var b = 0.0;
  a = 5; b = 2.5;
}
`
	opts := core.DefaultOptions()
	opts.LineGranularity = true
	a, p := analyze(t, src, opts)
	f := p.FuncByName("main")
	// Sample on the write to a (line 3) blames b too at line granularity.
	var target *ir.Instr
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Pos.Line == 3 && in.Op == ir.OpConst {
				target = in
				break
			}
		}
	}
	if target == nil {
		t.Fatalf("no const at line 3\n%s", f.Dump())
	}
	blamed := a.AttributeSample([]core.Frame{{Fn: f, Instr: target}})
	names := map[string]bool{}
	for _, bl := range blamed {
		if bl.Sym != nil {
			names[bl.Sym.Name] = true
		}
	}
	if !names["a"] || !names["b"] {
		t.Errorf("line granularity should blame both a and b: %v", names)
	}
}

func TestSpawnTransfersToCaptures(t *testing.T) {
	src := `
config const n = 16;
var D: domain(1) = {0..#n};
proc main() {
  var A: [D] real;
  forall i in D {
    A[i] = i * 2.0;
  }
}
`
	a, p := analyze(t, src, core.DefaultOptions())
	main := p.FuncByName("main")
	var spawn *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSpawn {
				spawn = in
			}
		}
	}
	if spawn == nil {
		t.Fatal("no spawn")
	}
	body := spawn.Callee
	// Sample on the element store inside the body.
	var target *ir.Instr
	for _, b := range body.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpIndexStore {
				target = in
			}
		}
	}
	if target == nil {
		t.Fatalf("no store in body\n%s", body.Dump())
	}
	blamed := a.AttributeSample([]core.Frame{
		{Fn: body, Instr: target},
		{Fn: main, Instr: spawn},
	})
	names := map[string]bool{}
	for _, bl := range blamed {
		if bl.Sym != nil {
			names[bl.Sym.Name] = true
		}
	}
	if !names["A"] {
		t.Errorf("worker sample must bubble to A in main: %v", names)
	}
	// The iteration domain D receives descriptor-write blame at the
	// spawn site (the MiniMD binSpace mechanism).
	blamedAtSpawn := a.AttributeSample([]core.Frame{{Fn: main, Instr: spawn}})
	foundD := false
	for _, bl := range blamedAtSpawn {
		if bl.Sym != nil && bl.Sym.Name == "D" {
			foundD = true
		}
	}
	if !foundD {
		t.Errorf("iteration domain D should be blamed at the spawn site")
	}
}
