package core

import (
	"repro/internal/ir"
	"repro/internal/sem"
	"repro/internal/types"
)

// Frame is one level of a resolved, glued call path: the function and the
// instruction within it (the sampled instruction at level 0, the call or
// spawn site at outer levels).
type Frame struct {
	Fn    *ir.Func
	Instr *ir.Instr
}

// Blamed is one entity a sample is attributed to: a source variable or a
// field/element access path rooted at one.
type Blamed struct {
	// Sym is the variable's semantic symbol (variable rows).
	Sym *sem.Symbol
	// Var is the IR variable blamed.
	Var *ir.Var
	// Path is the access path for field rows
	// ("partArray[i].zoneArray[j].value"); empty for plain variables.
	Path string
	// Root is the path's root variable.
	Root *ir.Var
}

// aggregateArg limits caller-side call transfer to memory aggregates
// (the tuple/record/array inputs whose production the callee's work
// represents); scalar config values are not blame carriers.
func aggregateArg(v *ir.Var) bool {
	if v == nil || v.Type == nil {
		return false
	}
	switch v.Type.Kind() {
	case types.Tuple, types.Record, types.Array, types.Class:
		return true
	}
	return false
}

// displayable reports whether v appears in user-facing views: named
// source variables that are not compiler temps and not ref formals
// (ref-formal blame bubbles to the caller's variable instead; §IV.C).
func displayable(v *ir.Var) bool {
	if v.Sym == nil || v.IsTemp {
		return false
	}
	if v.IsParam && v.IsRef {
		return false
	}
	return true
}

// isExit reports whether v (or its alias class) is one of fa's exit
// variables.
func (a *Analysis) blamedExits(fa *FuncAnalysis, in *ir.Instr) []*ir.Var {
	idx, ok := fa.index[in]
	if !ok {
		return nil
	}
	var out []*ir.Var
	for _, e := range fa.Exits {
		rep := a.find(e)
		if a.Opts.LineGranularity {
			if lines := fa.blameLines[rep]; lines != nil && in.Pos.IsValid() && lines[in.Pos.Line] {
				out = append(out, e)
			}
			continue
		}
		if s := fa.blame[rep]; s != nil && s.has(idx) {
			out = append(out, e)
		}
	}
	return out
}

// AttributeSample maps one sample (as a resolved call path, innermost
// first) to the set of blamed variables and access paths — the paper's
// step 3: level-0 blame from the sampled instruction's membership in
// blame sets, then exit-variable bubbling through each call/spawn site
// using the transfer functions.
func (a *Analysis) AttributeSample(path []Frame) []Blamed {
	var out []Blamed
	seenSym := make(map[*sem.Symbol]bool)
	seenPath := make(map[string]bool)

	record := func(v *ir.Var) {
		if !displayable(v) || seenSym[v.Sym] {
			return
		}
		seenSym[v.Sym] = true
		out = append(out, Blamed{Sym: v.Sym, Var: v})
	}
	recordPath := func(pb *PathBlame) {
		if seenPath[pb.Path] {
			return
		}
		seenPath[pb.Path] = true
		out = append(out, Blamed{Path: pb.Path, Root: pb.Root, Sym: pb.Root.Sym})
	}

	for level := 0; level < len(path); level++ {
		fr := path[level]
		fa := a.Funcs[fr.Fn]
		if fa == nil || fr.Instr == nil {
			break
		}
		for _, v := range fa.blamedAt(a, fr.Instr) {
			record(v)
		}
		// Caller-side transfer at a call site reached through a blamed
		// exit: "establish a blame relationship between the blamed
		// parameter(s) and the parameter(s) that are not blamed in the
		// caller" (§IV.A) — the other arguments fed the blamed work.
		if level > 0 && (fr.Instr.Op == ir.OpCall || fr.Instr.Op == ir.OpSpawn) {
			for _, arg := range fr.Instr.Args {
				if !aggregateArg(arg) {
					continue
				}
				record(arg)
				for _, g := range a.globalMembers[a.find(arg)] {
					record(g)
				}
			}
		}
		if a.Opts.TrackPaths {
			for _, pb := range fa.pathsAt(a, fr.Instr) {
				recordPath(pb)
			}
		}
		if !a.Opts.Interprocedural {
			break
		}
		// Bubble only while an exit variable carries the blame upward.
		if len(a.blamedExits(fa, fr.Instr)) == 0 {
			break
		}
	}
	return out
}
