package core

import "math/bits"

// bitset is a fixed-capacity bit set over per-function instruction
// indices.
type bitset struct {
	words []uint64
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64)}
}

func (b *bitset) set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

func (b *bitset) has(i int) bool {
	w := i >> 6
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(i)&63)) != 0
}

// union merges o into b, reporting whether b changed.
func (b *bitset) union(o *bitset) bool {
	changed := false
	for i, w := range o.words {
		if b.words[i]|w != b.words[i] {
			b.words[i] |= w
			changed = true
		}
	}
	return changed
}

func (b *bitset) clone() *bitset {
	out := &bitset{words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

func (b *bitset) count() int {
	n := 0
	for _, w := range b.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// each calls fn for every set index.
func (b *bitset) each(fn func(int)) {
	for wi, w := range b.words {
		for w != 0 {
			idx := wi<<6 + bits.TrailingZeros64(w)
			fn(idx)
			w &= w - 1
		}
	}
}
