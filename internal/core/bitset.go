package core

import "math/bits"

// bitset is a growable bit set over per-function instruction indices.
// Reads past the current capacity answer false; writes grow the word
// array, so sets built against different instruction counts (e.g. when a
// function is extended mid-analysis) still combine safely.
type bitset struct {
	words []uint64
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64)}
}

// grow ensures capacity for at least nWords words.
func (b *bitset) grow(nWords int) {
	if nWords <= len(b.words) {
		return
	}
	w := make([]uint64, nWords)
	copy(w, b.words)
	b.words = w
}

func (b *bitset) set(i int) {
	if i < 0 {
		return
	}
	w := i >> 6
	b.grow(w + 1)
	b.words[w] |= 1 << (uint(i) & 63)
}

func (b *bitset) has(i int) bool {
	if i < 0 {
		return false
	}
	w := i >> 6
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(uint(i)&63)) != 0
}

// union merges o into b, reporting whether b changed. b grows as needed
// when o has more words.
func (b *bitset) union(o *bitset) bool {
	changed := false
	for i, w := range o.words {
		if w == 0 {
			continue
		}
		if i >= len(b.words) {
			b.grow(len(o.words))
		}
		if b.words[i]|w != b.words[i] {
			b.words[i] |= w
			changed = true
		}
	}
	return changed
}

// intersect keeps only the bits also set in o, reporting whether b
// changed. Bits beyond o's capacity are cleared.
func (b *bitset) intersect(o *bitset) bool {
	changed := false
	for i := range b.words {
		var w uint64
		if i < len(o.words) {
			w = o.words[i]
		}
		if b.words[i]&w != b.words[i] {
			b.words[i] &= w
			changed = true
		}
	}
	return changed
}

func (b *bitset) clone() *bitset {
	out := &bitset{words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

func (b *bitset) count() int {
	n := 0
	for _, w := range b.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// each calls fn for every set index, in ascending order.
func (b *bitset) each(fn func(int)) {
	for wi, w := range b.words {
		for w != 0 {
			idx := wi<<6 + bits.TrailingZeros64(w)
			fn(idx)
			w &= w - 1
		}
	}
}
