package core_test

import (
	"sync"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
)

const cacheSrc = `
var a: real;
var b: real;
for i in 1..8 {
  a = a + i;
  b = a * 2.0;
}
writeln(b);
`

func compileFor(t testing.TB) *compile.Result {
	t.Helper()
	res, err := compile.Source("core_cache.mchpl", cacheSrc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAnalyzeCachedHitIsIdentical: same (program, options) returns the
// identical *Analysis, so the profiler and the diagnostics passes share
// one immutable result.
func TestAnalyzeCachedHitIsIdentical(t *testing.T) {
	core.ResetCache()
	res := compileFor(t)
	a := core.AnalyzeCached(res.Prog, core.DefaultOptions())
	b := core.AnalyzeCached(res.Prog, core.DefaultOptions())
	if a != b {
		t.Fatalf("cache hit returned a different *Analysis: %p vs %p", a, b)
	}
}

// TestAnalyzeCachedOptionsMiss: differing core.Options must not share an
// entry — implicit transfer changes the blame graph.
func TestAnalyzeCachedOptionsMiss(t *testing.T) {
	core.ResetCache()
	res := compileFor(t)
	def := core.AnalyzeCached(res.Prog, core.DefaultOptions())
	opts := core.DefaultOptions()
	opts.ImplicitTransfer = !opts.ImplicitTransfer
	flipped := core.AnalyzeCached(res.Prog, opts)
	if def == flipped {
		t.Fatal("different Options shared a cache entry")
	}
}

// TestAnalyzeCachedProgramMiss: distinct program identities (even from
// identical source) are distinct keys — the cache keys on the *ir.Program
// pointer, matching the VM's own identity-keyed cost table.
func TestAnalyzeCachedProgramMiss(t *testing.T) {
	core.ResetCache()
	res1 := compileFor(t)
	res2 := compileFor(t)
	if res1.Prog == res2.Prog {
		t.Fatal("test setup: expected distinct program identities")
	}
	a1 := core.AnalyzeCached(res1.Prog, core.DefaultOptions())
	a2 := core.AnalyzeCached(res2.Prog, core.DefaultOptions())
	if a1 == a2 {
		t.Fatal("distinct programs shared a cache entry")
	}
}

// TestAnalyzeCachedConcurrent hammers one key from many goroutines (run
// under -race in CI): exactly one analysis, same pointer for all.
func TestAnalyzeCachedConcurrent(t *testing.T) {
	core.ResetCache()
	res := compileFor(t)
	const goroutines = 16
	results := make([]*core.Analysis, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = core.AnalyzeCached(res.Prog, core.DefaultOptions())
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw a different *Analysis", g)
		}
	}
}

// TestAnalyzeCachedConcurrentMixedOptions interleaves callers with
// different core.Options over the same program (run under -race in CI):
// pointer stability within an option set, distinctness across sets.
func TestAnalyzeCachedConcurrentMixedOptions(t *testing.T) {
	core.ResetCache()
	res := compileFor(t)
	mk := func(f func(*core.Options)) core.Options {
		o := core.DefaultOptions()
		f(&o)
		return o
	}
	optSets := []core.Options{
		core.DefaultOptions(),
		mk(func(o *core.Options) { o.ImplicitTransfer = !o.ImplicitTransfer }),
		mk(func(o *core.Options) { o.Interprocedural = !o.Interprocedural }),
		mk(func(o *core.Options) { o.LineGranularity = !o.LineGranularity }),
	}
	const rounds = 8
	results := make([][]*core.Analysis, len(optSets))
	for i := range results {
		results[i] = make([]*core.Analysis, rounds)
	}
	var wg sync.WaitGroup
	for i, opts := range optSets {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(i, r int, opts core.Options) {
				defer wg.Done()
				results[i][r] = core.AnalyzeCached(res.Prog, opts)
			}(i, r, opts)
		}
	}
	wg.Wait()
	for i := range optSets {
		for r := 1; r < rounds; r++ {
			if results[i][r] != results[i][0] {
				t.Fatalf("option set %d: round %d saw a different *Analysis", i, r)
			}
		}
		for j := 0; j < i; j++ {
			if results[i][0] == results[j][0] {
				t.Fatalf("option sets %d and %d aliased one cache entry", i, j)
			}
		}
	}
}
