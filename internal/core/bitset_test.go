package core

import "testing"

func TestBitsetSetGrowsCapacity(t *testing.T) {
	b := newBitset(4) // one word
	if len(b.words) != 1 {
		t.Fatalf("newBitset(4): %d words, want 1", len(b.words))
	}
	b.set(3)
	b.set(200) // far past the initial capacity
	if !b.has(3) || !b.has(200) {
		t.Fatalf("bits lost after growth: has(3)=%v has(200)=%v", b.has(3), b.has(200))
	}
	if b.has(199) || b.has(201) {
		t.Fatalf("neighbor bits leaked: has(199)=%v has(201)=%v", b.has(199), b.has(201))
	}
	if got := b.count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestBitsetOutOfRangeQueries(t *testing.T) {
	b := newBitset(64)
	b.set(0)
	if b.has(-1) {
		t.Fatal("has(-1) = true")
	}
	if b.has(1 << 20) {
		t.Fatal("has far past capacity = true")
	}
	b.set(-5) // must not panic, must not record anything
	if got := b.count(); got != 1 {
		t.Fatalf("count after set(-5) = %d, want 1", got)
	}
}

func TestBitsetUnionGrowth(t *testing.T) {
	small := newBitset(8)
	small.set(1)
	big := newBitset(512)
	big.set(500)

	// Union a longer set into a shorter one: the shorter must grow.
	if !small.union(big) {
		t.Fatal("union reported no change")
	}
	if !small.has(1) || !small.has(500) {
		t.Fatalf("union lost bits: has(1)=%v has(500)=%v", small.has(1), small.has(500))
	}
	// Union a shorter set into a longer one.
	big2 := newBitset(512)
	big2.set(500)
	short := newBitset(8)
	short.set(1)
	if !big2.union(short) {
		t.Fatal("union(short) reported no change")
	}
	if !big2.has(1) || !big2.has(500) {
		t.Fatal("union(short) lost bits")
	}
	// Idempotent re-union reports no change.
	if small.union(big) {
		t.Fatal("repeated union reported a change")
	}
}

func TestBitsetIntersect(t *testing.T) {
	a := newBitset(512)
	a.set(1)
	a.set(100)
	a.set(500)
	o := newBitset(128) // shorter than a
	o.set(1)
	o.set(100)
	if !a.intersect(o) {
		t.Fatal("intersect reported no change")
	}
	if !a.has(1) || !a.has(100) {
		t.Fatal("intersect dropped common bits")
	}
	if a.has(500) {
		t.Fatal("intersect kept a bit beyond o's capacity")
	}
	if a.intersect(o) {
		t.Fatal("repeated intersect reported a change")
	}
	if got := a.count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestBitsetIterationOrder(t *testing.T) {
	b := newBitset(256)
	want := []int{0, 63, 64, 65, 130, 255}
	for i := len(want) - 1; i >= 0; i-- { // insert in reverse
		b.set(want[i])
	}
	var got []int
	b.each(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("each yielded %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("each order: got %v, want %v (ascending)", got, want)
		}
	}
}

func TestBitsetCloneIndependence(t *testing.T) {
	b := newBitset(64)
	b.set(5)
	c := b.clone()
	c.set(6)
	if b.has(6) {
		t.Fatal("clone shares storage with original")
	}
	if !c.has(5) || !c.has(6) {
		t.Fatal("clone lost bits")
	}
}
