package core

import (
	"sync"

	"repro/internal/ir"
)

// Static blame analysis is a pure function of (program, options), and an
// Analysis is read-only once built (the union-find is fully path-
// compressed at the end of Analyze, so even lookups no longer write).
// The profiler, the diagnostics passes and every experiment driver can
// therefore share one Analysis per program instead of re-running the
// slice fixpoint — the dominant static cost on LULESH.

type analyzeKey struct {
	prog *ir.Program
	opts Options
}

type analyzeEntry struct {
	once sync.Once
	an   *Analysis
}

var (
	analyzeMu    sync.Mutex
	analyzeCache = make(map[analyzeKey]*analyzeEntry)
)

// AnalyzeCached memoizes Analyze keyed by (program identity, options).
// Cache hits return the identical *Analysis; concurrent lookups of the
// same key analyze exactly once.
func AnalyzeCached(prog *ir.Program, opts Options) *Analysis {
	k := analyzeKey{prog: prog, opts: opts}
	analyzeMu.Lock()
	e, ok := analyzeCache[k]
	if !ok {
		e = &analyzeEntry{}
		analyzeCache[k] = e
	}
	analyzeMu.Unlock()
	e.once.Do(func() { e.an = Analyze(prog, opts) })
	return e.an
}

// ResetCache drops all memoized analyses (tests).
func ResetCache() {
	analyzeMu.Lock()
	analyzeCache = make(map[analyzeKey]*analyzeEntry)
	analyzeMu.Unlock()
}
