package irgen_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/ir"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Prog
}

func fn(t *testing.T, p *ir.Program, name string) *ir.Func {
	t.Helper()
	f := p.FuncByName(name)
	if f == nil {
		t.Fatalf("function %s not found; have:\n%s", name, p.Dump())
	}
	return f
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestSimpleAssignLowering(t *testing.T) {
	p := build(t, `
proc main() {
  var a = 2;
  var b = 3;
  var c = 0;
  if a < b {
    a = b + 1;
  }
  c = a + b;
}
`)
	f := fn(t, p, "main")
	if countOps(f, ir.OpBr) != 1 {
		t.Errorf("expected 1 branch, got %d\n%s", countOps(f, ir.OpBr), f.Dump())
	}
	if countOps(f, ir.OpBin) < 3 {
		t.Errorf("expected at least 3 bin ops")
	}
	// Blocks must all be terminated and finalized with addresses.
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			t.Errorf("block b%d unterminated", b.ID)
		}
	}
	if len(p.Instrs) == 0 {
		t.Error("no instruction addresses assigned")
	}
}

func TestInstrAddressesAreDense(t *testing.T) {
	p := build(t, `
proc f(a: int): int { return a * 2; }
proc main() { var x = f(21); }
`)
	for i, in := range p.Instrs {
		if int(in.Addr) != i {
			t.Fatalf("instr %d has addr %d", i, in.Addr)
		}
		if p.InstrAt(in.Addr) != in {
			t.Fatalf("InstrAt roundtrip failed at %d", i)
		}
	}
	if p.InstrAt(uint64(len(p.Instrs))) != nil {
		t.Error("InstrAt out of range should be nil")
	}
}

func TestDebugLineInfo(t *testing.T) {
	p := build(t, `proc main() {
  var a = 2;
  var b = 3;
}
`)
	f := fn(t, p, "main")
	lines := map[int32]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Pos.IsValid() {
				lines[in.Pos.Line] = true
			}
		}
	}
	if !lines[2] || !lines[3] {
		t.Errorf("line info missing: %v", lines)
	}
}

func TestGlobalsAndModuleInit(t *testing.T) {
	p := build(t, `
var g = 1.5;
config const n = 8;
proc main() { }
`)
	if len(p.Globals) != 2 {
		t.Fatalf("globals = %d", len(p.Globals))
	}
	mi := p.ModuleInit
	if mi == nil {
		t.Fatal("no module init")
	}
	// config const lowering uses the config builtin.
	found := false
	for _, b := range mi.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBuiltin && strings.HasPrefix(in.Method, "config:") {
				found = true
			}
		}
	}
	if !found {
		t.Error("config const not lowered via config builtin")
	}
	if p.ConfigConsts["n"] == nil {
		t.Error("config const var not registered")
	}
}

func TestArrayAllocationLowering(t *testing.T) {
	p := build(t, `
config const n = 4;
var D: domain(1) = {0..#n};
var A: [D] real;
proc main() { A[0] = 1.0; }
`)
	mi := p.ModuleInit
	if countOps(mi, ir.OpAllocArray) != 1 {
		t.Errorf("expected 1 array allocation in module init\n%s", mi.Dump())
	}
	f := fn(t, p, "main")
	if countOps(f, ir.OpIndexStore) != 1 {
		t.Errorf("expected 1 index store\n%s", f.Dump())
	}
}

func TestNestedArrayAllocation(t *testing.T) {
	p := build(t, `
config const n = 2;
var DistSpace: domain(1) = {0..#n};
var perBinSpace: domain(1) = {0..#8};
type v3 = 3*real;
var Pos: [DistSpace] [perBinSpace] v3;
proc main() { }
`)
	mi := p.ModuleInit
	var alloc *ir.Instr
	for _, b := range mi.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAllocArray && in.Dst.Name == "Pos" {
				alloc = in
			}
		}
	}
	if alloc == nil {
		t.Fatalf("Pos allocation missing\n%s", mi.Dump())
	}
	if alloc.B == nil {
		t.Error("nested allocation must carry the inner domain")
	}
}

func TestSliceLoweringAndRefAlias(t *testing.T) {
	p := build(t, `
config const n = 8;
var D: domain(1) = {0..#n};
var inner: domain(1) = {1..6};
var A: [D] real;
ref R = A[inner];
proc main() { R[2] = 1.0; }
`)
	mi := p.ModuleInit
	var slice *ir.Instr
	for _, b := range mi.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSlice {
				slice = in
			}
		}
	}
	if slice == nil {
		t.Fatalf("no slice op\n%s", mi.Dump())
	}
	if slice.Dst.Name != "R" || slice.A.Name != "A" {
		t.Errorf("slice %s should alias R = A[...]", slice)
	}
	if !slice.IsAliasDef() {
		t.Error("slice must be an alias def")
	}
}

func TestFieldChainStore(t *testing.T) {
	p := build(t, `
config const nz = 4;
var zoneSpace: domain(1) = {0..#nz};
record Zone { var value: real; }
class Part {
  var zoneArray: [zoneSpace] Zone;
  var residue: real;
}
config const np = 2;
var partSpace: domain(1) = {0..#np};
var partArray: [partSpace] Part;
proc main() {
  partArray[0] = new Part();
  partArray[0].zoneArray[1].value = 3.5;
  partArray[0].residue = 0.25;
}
`)
	f := fn(t, p, "main")
	if countOps(f, ir.OpFieldStore) != 2 {
		t.Errorf("expected 2 field stores\n%s", f.Dump())
	}
	if countOps(f, ir.OpRefElem) < 2 {
		t.Errorf("expected ref-elem chain\n%s", f.Dump())
	}
	if countOps(f, ir.OpAllocRec) != 1 {
		t.Errorf("expected 1 class allocation")
	}
	// FieldDomains must record zoneArray's domain for default init.
	found := false
	for _, m := range p.FieldDomains {
		for _, v := range m {
			if v.Name == "zoneSpace" {
				found = true
			}
		}
	}
	if !found {
		t.Error("FieldDomains missing zoneSpace mapping")
	}
}

func TestSerialLoopCFG(t *testing.T) {
	p := build(t, `
proc main() {
  var s = 0;
  for i in 1..10 {
    s += i;
  }
}
`)
	f := fn(t, p, "main")
	// header, body, incr, exit blocks at minimum.
	if len(f.Blocks) < 4 {
		t.Errorf("expected loop CFG, got %d blocks\n%s", len(f.Blocks), f.Dump())
	}
	hasBackedge := false
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if s.ID < b.ID {
				hasBackedge = true
			}
		}
	}
	if !hasBackedge {
		t.Error("no back edge in loop CFG")
	}
}

func TestParamForUnrolled(t *testing.T) {
	p := build(t, `
proc main() {
  var s = 0;
  for param i in 1..4 {
    s += i;
  }
}
`)
	f := fn(t, p, "main")
	// Unrolled: no branches, 4 copies of the body add.
	if countOps(f, ir.OpBr) != 0 {
		t.Errorf("param for must unroll (no branches)\n%s", f.Dump())
	}
	adds := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin && in.BinOp.String() == "+" {
				adds++
			}
		}
	}
	if adds != 4 {
		t.Errorf("expected 4 unrolled adds, got %d", adds)
	}
}

func TestForallOutlining(t *testing.T) {
	p := build(t, `
config const n = 8;
var D: domain(1) = {0..#n};
proc main() {
  var A: [D] real;
  forall i in D {
    A[i] = i * 2.0;
  }
}
`)
	f := fn(t, p, "main")
	if countOps(f, ir.OpSpawn) != 1 {
		t.Fatalf("expected 1 spawn\n%s", f.Dump())
	}
	var spawn *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSpawn {
				spawn = in
			}
		}
	}
	body := spawn.Callee
	if !body.Outlined || body.OutlinedFrom != f {
		t.Error("body not marked outlined from main")
	}
	if !strings.HasPrefix(body.Name, "forall_fn_chpl") {
		t.Errorf("outlined name = %q", body.Name)
	}
	if spawn.Spawn.Kind != ir.SpawnForall || spawn.Spawn.NumIdx != 1 {
		t.Errorf("spawn info: %+v", spawn.Spawn)
	}
	// A must be captured as a trailing ref param.
	if len(body.Params) < 2 {
		t.Fatalf("body params: %v", body.Params)
	}
	foundA := false
	for _, q := range body.Params[1:] {
		if q.Name == "A" && q.IsRef {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("A not captured by the outlined body\n%s", body.Dump())
	}
	// The spawn must pass A for that capture.
	if len(spawn.Args) != len(body.Params)-spawn.Spawn.NumIdx {
		t.Errorf("spawn args %d vs body captures %d", len(spawn.Args), len(body.Params)-1)
	}
}

func TestCoforallOutlining(t *testing.T) {
	p := build(t, `
config const nTasks = 4;
proc main() {
  var total = 0;
  coforall tid in 0..#nTasks {
    total += tid;
  }
}
`)
	f := fn(t, p, "main")
	var spawn *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSpawn {
				spawn = in
			}
		}
	}
	if spawn == nil || spawn.Spawn.Kind != ir.SpawnCoforall {
		t.Fatalf("missing coforall spawn")
	}
	if !strings.HasPrefix(spawn.Callee.Name, "coforall_fn_chpl") {
		t.Errorf("name = %q", spawn.Callee.Name)
	}
}

func TestZipForallLowering(t *testing.T) {
	p := build(t, `
config const n = 8;
var D: domain(1) = {0..#n};
var Bins: [D] real;
var Pos: [D] real;
proc main() {
  forall (b, q) in zip(Bins, Pos) {
    b = q * 2.0;
  }
}
`)
	f := fn(t, p, "main")
	var spawn *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSpawn {
				spawn = in
			}
		}
	}
	if spawn == nil {
		t.Fatal("no spawn")
	}
	if len(spawn.Spawn.Followers) != 1 {
		t.Fatalf("followers = %d", len(spawn.Spawn.Followers))
	}
	body := spawn.Callee
	if countOps(body, ir.OpZipAdvance) != 1 {
		t.Errorf("follower must pay zip advance\n%s", body.Dump())
	}
	if countOps(body, ir.OpRefElem) != 2 {
		t.Errorf("both zip vars must bind via refelem\n%s", body.Dump())
	}
}

func TestSerialZipLowering(t *testing.T) {
	p := build(t, `
config const n = 8;
var D: domain(1) = {0..#n};
var A: [D] real;
var B: [D] real;
proc main() {
  for (a, b) in zip(A, B) {
    a = b + 1.0;
  }
}
`)
	f := fn(t, p, "main")
	if countOps(f, ir.OpZipSetup) != 2 {
		t.Errorf("expected 2 zip setups\n%s", f.Dump())
	}
	if countOps(f, ir.OpZipAdvance) != 1 {
		t.Errorf("expected 1 zip advance per iteration")
	}
}

func TestNestedProcCapturesLifted(t *testing.T) {
	p := build(t, `
proc outer(ref bx: 8*real) {
  var partial = 0.0;
  proc inner(k: int) {
    partial += k * 1.0;
    bx(1) = partial;
  }
  inner(1);
  inner(2);
}
proc main() {
  var b: 8*real;
  outer(b);
}
`)
	inner := fn(t, p, "inner")
	// inner's params: k + captures (partial, bx).
	if len(inner.Params) != 3 {
		t.Fatalf("inner params = %d, want 3 (k + 2 captures)\n%s", len(inner.Params), inner.Dump())
	}
	outer := fn(t, p, "outer")
	var call *ir.Instr
	for _, b := range outer.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == inner {
				call = in
			}
		}
	}
	if call == nil {
		t.Fatal("call to inner missing")
	}
	if len(call.Args) != 3 {
		t.Errorf("call args = %d, want 3", len(call.Args))
	}
}

func TestMethodLowering(t *testing.T) {
	p := build(t, `
record counter {
  var n: int;
  proc bump() { n += 1; }
}
var c: counter;
proc main() { c.bump(); }
`)
	bump := fn(t, p, "bump")
	if len(bump.Params) == 0 || bump.Params[0].Name != "this" {
		t.Fatalf("method must take this:\n%s", bump.Dump())
	}
	if countOps(bump, ir.OpFieldStore) != 1 {
		t.Errorf("field store through this missing\n%s", bump.Dump())
	}
}

func TestSelectLowering(t *testing.T) {
	p := build(t, `
proc main() {
  var x = 2;
  var y = 0;
  select x {
    when 1 { y = 1; }
    when 2, 3 { y = 2; }
    otherwise { y = 9; }
  }
}
`)
	f := fn(t, p, "main")
	if countOps(f, ir.OpBr) != 2 {
		t.Errorf("select should lower to 2 branches, got %d\n%s", countOps(f, ir.OpBr), f.Dump())
	}
}

func TestTupleOps(t *testing.T) {
	p := build(t, `
type v3 = 3*real;
proc main() {
  var p: v3 = (1.0, 2.0, 3.0);
  p(1) = 5.0;
  var x = p(1) + p(2);
}
`)
	f := fn(t, p, "main")
	if countOps(f, ir.OpMakeTuple) != 1 {
		t.Errorf("tuple construction missing")
	}
	if countOps(f, ir.OpTupleSet) != 1 {
		t.Errorf("tuple set missing\n%s", f.Dump())
	}
	if countOps(f, ir.OpTupleGet) != 2 {
		t.Errorf("tuple gets = %d", countOps(f, ir.OpTupleGet))
	}
}

func TestRuntimeFuncsPresent(t *testing.T) {
	p := build(t, `proc main() { }`)
	for _, name := range []string{"__sched_yield", "chpl_thread_yield"} {
		f := p.FuncByName(name)
		if f == nil || !f.IsRuntime {
			t.Errorf("runtime func %s missing", name)
		}
	}
}

func TestReturnThroughRetVar(t *testing.T) {
	p := build(t, `
proc sq(x: real): real { return x * x; }
proc main() { var y = sq(3.0); }
`)
	sq := fn(t, p, "sq")
	if sq.RetVar == nil {
		t.Fatal("no ret var")
	}
	// The return value must be moved into RetVar before ret.
	found := false
	for _, b := range sq.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMove && in.Dst == sq.RetVar {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("return value not staged through RetVar\n%s", sq.Dump())
	}
}

func TestValidateCatchesMalformed(t *testing.T) {
	p := build(t, `proc main() { var x = 1; }`)
	f := fn(t, p, "main")
	// Break the function and confirm Validate notices.
	f.Blocks[len(f.Blocks)-1].Instrs = f.Blocks[len(f.Blocks)-1].Instrs[:0]
	f.Blocks[len(f.Blocks)-1].Instrs = append(f.Blocks[len(f.Blocks)-1].Instrs, &ir.Instr{Op: ir.OpNop})
	if err := p.Validate(); err == nil {
		t.Error("Validate should reject unterminated block")
	}
}

func TestFastPipelineFoldsAndPrunes(t *testing.T) {
	src := `
proc main() {
  var x = 2 * 3 + 1;
  var unused = 4 * 5;
  writeln(x);
}
`
	slow, err := compile.Source("t", src, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := compile.Source("t", src, compile.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Prog.Optimized {
		t.Error("fast program not marked optimized")
	}
	nSlow := len(slow.Prog.Instrs)
	nFast := len(fast.Prog.Instrs)
	if nFast >= nSlow {
		t.Errorf("--fast should shrink the program: %d vs %d", nFast, nSlow)
	}
}

func TestWhileAndBreakContinue(t *testing.T) {
	p := build(t, `
proc main() {
  var i = 0;
  while true {
    i += 1;
    if i > 10 { break; }
    if i % 2 == 0 { continue; }
  }
}
`)
	f := fn(t, p, "main")
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid IR: %v\n%s", err, f.Dump())
	}
}

func TestOnBeginLowering(t *testing.T) {
	p := build(t, `
proc main() {
  sync {
    begin { var x = 1; }
  }
  on Locales[0] { var y = 2; }
}
`)
	f := fn(t, p, "main")
	if countOps(f, ir.OpSpawn) != 2 {
		t.Errorf("expected 2 spawns (begin + on)\n%s", f.Dump())
	}
}

func TestIteratorInlineExpansion(t *testing.T) {
	p := build(t, `
iter pair(): int {
  yield 1;
  yield 2;
}
proc main() {
  var s = 0;
  for x in pair() { s += x; }
}
`)
	// The iterator never exists as a standalone function.
	if p.FuncByName("pair") != nil {
		t.Error("iterator lowered as a standalone function")
	}
	// main contains two inlined consumer bodies (two adds).
	f := fn(t, p, "main")
	adds := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin && in.BinOp.String() == "+" {
				adds++
			}
		}
	}
	if adds != 2 {
		t.Errorf("adds = %d, want 2 (one per yield)", adds)
	}
	if countOps(f, ir.OpCall) != 0 {
		t.Error("iterator loop must not emit calls")
	}
}

func TestAtomicLowering(t *testing.T) {
	p := build(t, `
var c: atomic int;
proc main() {
  c.add(2);
  var v = c.read();
  writeln(v);
}
`)
	f := fn(t, p, "main")
	ops := map[string]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBuiltin {
				ops[in.Method]++
			}
		}
	}
	if ops["atomic:add"] != 1 || ops["atomic:read"] != 1 {
		t.Errorf("atomic ops = %v", ops)
	}
}

func TestDmappedDomainLowering(t *testing.T) {
	p := build(t, `
config const n = 8;
var D: domain(1) dmapped Block = {0..#n};
var A: [D] real;
proc main() { A[0] = 1.0; }
`)
	mi := p.ModuleInit
	found := false
	for _, b := range mi.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBuiltin && in.Method == "distribute:block" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("distribute:block marker missing\n%s", mi.Dump())
	}
}

func TestIteratorReduceLowering(t *testing.T) {
	p := build(t, `
iter ones(n: int): int {
  for i in 1..n { yield 1; }
}
proc main() {
  var s = + reduce ones(5);
  writeln(s);
}
`)
	f := fn(t, p, "main")
	// No reduce builtin: the fold is expanded inline.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBuiltin && in.Method == "reduce:+" {
				t.Error("iterator reduce must expand inline, not call the array builtin")
			}
		}
	}
	if countOps(f, ir.OpCall) != 0 {
		t.Error("no calls expected")
	}
}
