// Package irgen lowers the type-checked MiniChapel AST to IR.
//
// The lowering mirrors the Chapel compiler behaviors the paper depends on:
//
//   - forall/coforall/begin bodies are outlined into synthetic functions
//     (named like Chapel's coforall_fn_chplNN), so worker-thread samples
//     need spawn-tag stack gluing to recover their full calling context;
//   - zippered iteration lowers to per-iterand iterator setup and
//     per-iteration follower advances (OpZipSetup/OpZipAdvance) — the
//     overhead the MiniMD optimization removes;
//   - array slices (A[D]) lower to OpSlice view construction, allocated
//     descriptors whose repeated construction inside loops is the "domain
//     remapping" cost of §V.A;
//   - `for param` loops are unrolled at compile time (Table VII);
//   - compiler temporaries are real IR variables flagged IsTemp, tracked
//     through blame analysis but hidden from user views (§IV.A).
package irgen

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/types"
)

// generator holds program-wide lowering state.
type generator struct {
	info *sem.Info
	prog *ir.Program

	// varOf maps semantic symbols to IR vars (globals and, per-function,
	// locals — function-local entries are scoped by fnGen).
	globalOf map[*sem.Symbol]*ir.Var
	// funcOf maps proc symbols to IR functions.
	funcOf map[*sem.Symbol]*ir.Func

	outlineCount int
	errs         []error
}

// Generate lowers a checked program to IR. The returned program is
// finalized (addresses assigned, CFG edges computed) and validated.
func Generate(info *sem.Info, prog *ast.Program) (*ir.Program, error) {
	g := &generator{
		info:     info,
		prog:     ir.NewProgram(info.FileSet, prog.FileName),
		globalOf: make(map[*sem.Symbol]*ir.Var),
		funcOf:   make(map[*sem.Symbol]*ir.Func),
	}

	g.declareGlobals()
	g.declareFuncs(prog)
	g.emitRuntimeFuncs()
	g.lowerModuleInit(prog)
	g.lowerBodies(prog)

	if len(g.errs) > 0 {
		return nil, g.errs[0]
	}
	g.prog.Finalize()
	if err := g.prog.Validate(); err != nil {
		return nil, err
	}
	return g.prog, nil
}

func (g *generator) errorf(pos source.Pos, format string, args ...any) {
	g.errs = append(g.errs, fmt.Errorf("irgen: line %d: %s", pos.Line, fmt.Sprintf(format, args...)))
}

func (g *generator) declareGlobals() {
	for _, s := range g.info.Globals {
		v := &ir.Var{
			Name:     s.Name,
			Sym:      s,
			Type:     s.Type,
			IsGlobal: true,
			IsRef:    s.IsRefAlias,
			Slot:     len(g.prog.Globals),
		}
		g.prog.Globals = append(g.prog.Globals, v)
		g.globalOf[s] = v
		if s.VarKind == ast.VarConfigConst {
			g.prog.ConfigConsts[s.Name] = v
		}
	}
}

func (g *generator) declareFuncs(prog *ast.Program) {
	for _, p := range g.info.Procs {
		if p == g.info.ModuleInit {
			continue
		}
		// Iterators never exist as standalone functions: they are
		// inline-expanded at each loop site.
		if p.Proc != nil && p.Proc.IsIter {
			continue
		}
		f := g.prog.NewFunc(p.Name, p, p.Pos)
		g.funcOf[p] = f
	}
	mi := g.prog.NewFunc("__module_init__", g.info.ModuleInit, source.NoPos)
	g.funcOf[g.info.ModuleInit] = mi
	g.prog.ModuleInit = mi
	if g.info.Main != nil {
		g.prog.Main = g.funcOf[g.info.Main]
	}
	// Record the field → domain mapping for array-typed record fields so
	// the VM can default-initialize instances (CLOMP's zoneArray).
	for _, d := range prog.Decls {
		rd, ok := d.(*ast.RecordDecl)
		if !ok {
			continue
		}
		rt := g.info.Records[rd.Name.Name]
		for i, fd := range rd.Fields {
			at, ok := fd.Type.(*ast.ArrayType)
			if !ok || len(at.Dom) != 1 {
				continue
			}
			id, ok := at.Dom[0].(*ast.Ident)
			if !ok {
				continue
			}
			sym := g.info.SymOf(id)
			if sym == nil {
				continue
			}
			gv := g.globalOf[sym]
			if gv == nil {
				continue
			}
			if g.prog.FieldDomains[rt] == nil {
				g.prog.FieldDomains[rt] = make(map[int]*ir.Var)
			}
			g.prog.FieldDomains[rt][i] = gv
		}
	}
}

// emitRuntimeFuncs creates the synthetic Chapel-runtime functions visible
// to the code-centric baseline (paper Fig. 4). Their bodies are markers;
// the VM attributes idle-spin cycles to them.
func (g *generator) emitRuntimeFuncs() {
	for _, name := range []string{
		"__sched_yield", "chpl_thread_yield", "__pthread_setcancelstate",
		"atomic_fetch_add_explicit__real64", "_init",
		"chpl_task_spawn", "chpl_task_callTaskFunction", "chpl_task_barrier",
	} {
		f := g.prog.NewFunc(name, nil, source.NoPos)
		f.IsRuntime = true
		b := f.NewBlock()
		b.Instrs = append(b.Instrs,
			&ir.Instr{Op: ir.OpYield},
			&ir.Instr{Op: ir.OpRet})
	}
}

// lowerModuleInit emits global initializers (in declaration order) and the
// module-level statements into __module_init__.
func (g *generator) lowerModuleInit(prog *ast.Program) {
	fg := newFnGen(g, g.prog.ModuleInit, nil)
	for _, d := range prog.Decls {
		gd, ok := d.(*ast.GlobalVarDecl)
		if !ok {
			continue
		}
		fg.globalInit(gd.V)
	}
	for _, s := range prog.TopStmts {
		fg.stmt(s)
	}
	fg.finish()
}

func (g *generator) lowerBodies(prog *ast.Program) {
	for _, d := range prog.Decls {
		switch dd := d.(type) {
		case *ast.ProcDecl:
			g.lowerProc(dd, nil)
		case *ast.RecordDecl:
			rt := g.info.Records[dd.Name.Name]
			for _, m := range dd.Methods {
				g.lowerProc(m, rt)
			}
		}
	}
}

// lowerProc lowers one procedure (or method, with receiver rt).
func (g *generator) lowerProc(d *ast.ProcDecl, rt *types.RecordType) {
	if d.IsIter {
		return // inline-expanded at loop sites
	}
	sym := g.info.Defs[d.Name]
	f := g.funcOf[sym]
	if f == nil {
		return
	}
	fg := newFnGen(g, f, sym)

	// Implicit receiver.
	if rt != nil {
		thisVar := &ir.Var{Name: "this", Type: rt, IsParam: true, IsRef: true, Func: f}
		f.Params = append(f.Params, thisVar)
		fg.thisVar = thisVar
		// Bind the "this" semantic symbol if present.
		for _, s := range g.info.AllSyms {
			if s.Name == "this" && s.Owner == sym {
				fg.vars[s] = thisVar
			}
		}
	}
	pt := sym.Type.(*types.ProcType)
	for i, q := range d.Params {
		psym := g.info.Defs[q.Name]
		v := &ir.Var{
			Name:    q.Name.Name,
			Sym:     psym,
			Type:    pt.Params[i].Type,
			IsParam: true,
			IsRef:   pt.Params[i].IsRef,
			Func:    f,
		}
		f.Params = append(f.Params, v)
		fg.vars[psym] = v
	}
	// Capture params for nested procedures (lambda lifting: captured
	// enclosing locals become trailing ref params).
	for _, capSym := range g.info.Captures[sym] {
		v := &ir.Var{
			Name:    capSym.Name,
			Sym:     capSym,
			Type:    capSym.Type,
			IsParam: true,
			IsRef:   true,
			Func:    f,
		}
		f.Params = append(f.Params, v)
		fg.vars[capSym] = v
		fg.captureParams = append(fg.captureParams, capSym)
	}
	if pt.Ret != nil && pt.Ret.Kind() != types.Void {
		f.RetVar = &ir.Var{Name: "__ret__", Type: pt.Ret, Func: f, IsTemp: true}
	}
	fg.blockStmt(d.Body)
	fg.finish()
	g.assignSlots(f)
}

// assignSlots numbers params and locals into frame slots.
func (g *generator) assignSlots(f *ir.Func) {
	slot := 0
	for _, v := range f.Params {
		v.Slot = slot
		slot++
	}
	if f.RetVar != nil {
		f.RetVar.Slot = slot
		slot++
	}
	for _, v := range f.Locals {
		v.Slot = slot
		slot++
	}
}
