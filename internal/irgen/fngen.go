package irgen

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/token"
	"repro/internal/types"
)

// fnGen lowers one function body.
type fnGen struct {
	g   *generator
	f   *ir.Func
	sym *sem.Symbol

	cur  *ir.Block
	vars map[*sem.Symbol]*ir.Var
	// thisVar is the receiver for methods.
	thisVar *ir.Var
	// captureParams lists the semantic symbols lifted into trailing ref
	// params (nested procs and outlined bodies).
	captureParams []*sem.Symbol
	// parent is the enclosing fnGen for outlined loop bodies; symbol
	// resolution falls back to it, adding capture params on demand.
	parent *fnGen
	// captureSrc maps each capture param (by order) to the parent's var
	// to pass at the spawn site.
	captureSrc []*ir.Var

	tempCount int
	loops     []loopCtx
	// pendingTuplePack carries a multi-D tuple index binding down to the
	// innermost generated loop.
	pendingTuplePack *tuplePack
	// iterCtx is active while an iterator body is being inline-expanded
	// at a for-loop site (yield → bind loop var + run the consumer body).
	iterCtx *iterInlineCtx
	// iterStack guards against recursive iterator inlining.
	iterStack []*sem.Symbol
}

// iterInlineCtx carries the state of one iterator inline expansion.
type iterInlineCtx struct {
	loopVar *ir.Var
	body    *ast.BlockStmt
	// emit, when non-nil, replaces body with generator-side consumer
	// code (reduce-over-iterator).
	emit func()
	exit *ir.Block
	// outer restores iterator composition: yields in the consumer body
	// belong to the enclosing expansion.
	outer *iterInlineCtx
}

type loopCtx struct {
	brk, cont *ir.Block
}

func newFnGen(g *generator, f *ir.Func, sym *sem.Symbol) *fnGen {
	fg := &fnGen{g: g, f: f, sym: sym, vars: make(map[*sem.Symbol]*ir.Var)}
	fg.cur = f.NewBlock()
	return fg
}

// emit appends an instruction to the current block.
func (fg *fnGen) emit(in *ir.Instr) *ir.Instr {
	if fg.cur == nil {
		// Unreachable code after a terminator: keep it in a detached block
		// so downstream passes still see it.
		fg.cur = fg.f.NewBlock()
	}
	fg.cur.Instrs = append(fg.cur.Instrs, in)
	if in.Op == ir.OpRet || in.Op == ir.OpJmp || in.Op == ir.OpBr {
		fg.cur = nil
	}
	return in
}

func (fg *fnGen) startBlock(b *ir.Block) {
	if fg.cur != nil {
		fg.emit(&ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{b}})
	}
	fg.cur = b
}

func (fg *fnGen) temp(t types.Type) *ir.Var {
	fg.tempCount++
	v := &ir.Var{Name: fmt.Sprintf("tmp%d", fg.tempCount), Type: t, IsTemp: true, Func: fg.f}
	fg.f.Locals = append(fg.f.Locals, v)
	return v
}

// finish seals the function: terminate the trailing block and drop empty
// blocks, then renumber.
func (fg *fnGen) finish() {
	if fg.cur != nil {
		fg.emit(&ir.Instr{Op: ir.OpRet, A: fg.f.RetVar})
	}
	// Terminate any stray unterminated blocks (e.g. detached ones).
	for _, b := range fg.f.Blocks {
		if len(b.Instrs) == 0 {
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpNop})
		}
		last := b.Instrs[len(b.Instrs)-1]
		switch last.Op {
		case ir.OpRet, ir.OpJmp, ir.OpBr:
		default:
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet, A: fg.f.RetVar})
		}
	}
	for i, b := range fg.f.Blocks {
		b.ID = i
	}
	fg.g.assignSlots(fg.f)
}

// resolveVar maps a semantic symbol to an IR var, lifting captures for
// outlined bodies.
func (fg *fnGen) resolveVar(sym *sem.Symbol, pos source.Pos) *ir.Var {
	if v, ok := fg.vars[sym]; ok {
		return v
	}
	if v, ok := fg.g.globalOf[sym]; ok {
		// Outlined loop bodies receive every referenced variable through
		// the Chapel argument bundle — including module-level globals.
		// This makes the spawn site a write-site of the captured arrays,
		// which is how runtime-only samples resolved to the spawn
		// statement blame the loop's data (paper §IV.C).
		if fg.parent != nil && sym.Pos.IsValid() {
			cap := &ir.Var{Name: sym.Name, Sym: sym, Type: sym.Type, IsParam: true, IsRef: bundleByRef(sym.Type), Func: fg.f}
			fg.f.Params = append(fg.f.Params, cap)
			fg.vars[sym] = cap
			fg.captureParams = append(fg.captureParams, sym)
			fg.captureSrc = append(fg.captureSrc, v)
			return cap
		}
		return v
	}
	// Predeclared universe values (Locales, here, numLocales, nil) become
	// synthetic globals the VM initializes by name.
	if sym.Owner == nil && sym.Storage == sem.StorageGlobal || sym.Name == "nil" {
		v := &ir.Var{Name: sym.Name, Sym: sym, Type: sym.Type, IsGlobal: true, Slot: len(fg.g.prog.Globals)}
		fg.g.prog.Globals = append(fg.g.prog.Globals, v)
		fg.g.globalOf[sym] = v
		return v
	}
	if fg.parent != nil {
		src := fg.parent.resolveVar(sym, pos)
		if src != nil {
			v := &ir.Var{Name: sym.Name, Sym: sym, Type: sym.Type, IsParam: true, IsRef: true, Func: fg.f}
			fg.f.Params = append(fg.f.Params, v)
			fg.vars[sym] = v
			fg.captureParams = append(fg.captureParams, sym)
			fg.captureSrc = append(fg.captureSrc, src)
			return v
		}
	}
	fg.g.errorf(pos, "internal: no IR var for %s", sym.Name)
	return fg.temp(types.IntType)
}

// bundleByRef reports whether a bundled global of this type is passed by
// reference (memory regions) or by value (scalars) — by-value bundle
// entries are not write-sites of the spawn, so read-only config consts do
// not pick up spawn blame.
func bundleByRef(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Kind() {
	case types.Array, types.Domain, types.Record, types.Class:
		return true
	}
	return false
}

// declareLocal creates the IR var for a declared local symbol.
func (fg *fnGen) declareLocal(sym *sem.Symbol) *ir.Var {
	v := &ir.Var{Name: sym.Name, Sym: sym, Type: sym.Type, Func: fg.f, IsRef: sym.IsRefAlias}
	fg.f.Locals = append(fg.f.Locals, v)
	fg.vars[sym] = v
	return v
}

// constInt emits an int literal into a temp.
func (fg *fnGen) constInt(v int64, pos source.Pos) *ir.Var {
	t := fg.temp(types.IntType)
	fg.emit(&ir.Instr{Op: ir.OpConst, Dst: t, Lit: &ir.Lit{T: types.IntType, I: v}, Pos: pos})
	return t
}

// ---------------------------------------------------------------- decls

// globalInit lowers one global declaration's initialization into the
// module-init function.
func (fg *fnGen) globalInit(d *ast.VarDecl) {
	for _, name := range d.Names {
		sym := fg.g.info.Defs[name]
		if sym == nil {
			continue
		}
		v := fg.g.globalOf[sym]
		if v == nil {
			continue
		}
		fg.initVar(v, d, name.NamePos)
	}
}

// initVar emits initialization code for v according to its declaration.
func (fg *fnGen) initVar(v *ir.Var, d *ast.VarDecl, pos source.Pos) {
	// ref aliases: `ref R = A[D]` / `ref r = A[i]` / `ref r = x.f`.
	if d.IsRef {
		if d.Init == nil {
			return
		}
		fg.genRefInto(v, d.Init)
		return
	}
	// Config consts: default expression, overridable from the command line.
	if d.Kind == ast.VarConfigConst {
		var def *ir.Var
		if d.Init != nil {
			def = fg.genExpr(d.Init)
		} else {
			def = fg.constInt(0, pos)
		}
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Dst: v, Method: "config:" + v.Name, Args: []*ir.Var{def}, Pos: pos})
		return
	}
	// Arrays declared over a domain must be allocated. Inferred-type
	// array declarations (`var B = A;`) clone from the initializer via
	// Move semantics instead.
	if at, ok := v.Type.(*types.ArrayType); ok {
		astAT, _ := d.Type.(*ast.ArrayType)
		if astAT != nil {
			fg.allocArray(v, at, astAT, pos)
		}
		if d.Init != nil {
			iv := fg.genExpr(d.Init)
			fg.emit(&ir.Instr{Op: ir.OpMove, Dst: v, A: iv, Pos: d.Init.Pos()})
		} else if astAT == nil {
			fg.g.errorf(pos, "array %s needs a domain or initializer", v.Name)
		}
		return
	}
	if d.Init != nil {
		fg.genExprInto(v, d.Init)
		// Declared-distributed domains mark their value (arrays allocated
		// over them become block-distributed across locales).
		if dt, ok := v.Type.(*types.DomainType); ok && dt.Dist == "Block" {
			fg.emit(&ir.Instr{Op: ir.OpBuiltin, Dst: v, A: v, Method: "distribute:block", Pos: pos})
		}
		return
	}
	// Records without initializers are default-constructed here so
	// array-typed fields allocate over the domains' *current* values
	// (scalars/tuples are zeroed by frame/global setup).
	if rt, ok := v.Type.(*types.RecordType); ok && !rt.IsClass {
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Dst: v, Method: "definit", Pos: pos})
	}
}

// allocArray emits the allocation of an array var over its declared domain.
func (fg *fnGen) allocArray(v *ir.Var, at *types.ArrayType, astAT *ast.ArrayType, pos source.Pos) {
	var domVar *ir.Var
	if astAT != nil {
		domVar = fg.domainOperand(astAT.Dom, pos)
	} else {
		fg.g.errorf(pos, "array %s needs an explicit domain", v.Name)
		return
	}
	in := &ir.Instr{Op: ir.OpAllocArray, Dst: v, A: domVar, Pos: pos}
	// Nested arrays ([D1] [D2] T): pass the inner domain so the VM can
	// allocate per-element inner arrays.
	if inner, ok := astAT.Elem.(*ast.ArrayType); ok {
		in.B = fg.domainOperand(inner.Dom, pos)
	}
	fg.emit(in)
	_ = at
}

// domainOperand evaluates an array-type domain spec (an identifier,
// domain-valued expression, or list of ranges) into a domain var.
func (fg *fnGen) domainOperand(dims []ast.Expr, pos source.Pos) *ir.Var {
	if len(dims) == 1 {
		t := fg.g.info.TypeOf(dims[0])
		if t != nil && t.Kind() == types.Domain {
			return fg.genExpr(dims[0])
		}
	}
	// Ranges: build a domain literal.
	var rangeVars []*ir.Var
	for _, dim := range dims {
		rangeVars = append(rangeVars, fg.genExpr(dim))
	}
	dv := fg.temp(&types.DomainType{Rank: len(dims)})
	fg.emit(&ir.Instr{Op: ir.OpMakeDomain, Dst: dv, Args: rangeVars, Pos: pos})
	return dv
}

// genRefInto lowers a `ref` alias initializer.
func (fg *fnGen) genRefInto(dst *ir.Var, init ast.Expr) {
	switch x := init.(type) {
	case *ast.IndexExpr:
		base := fg.genRefBase(x.X)
		if len(x.Index) == 1 {
			it := fg.g.info.TypeOf(x.Index[0])
			if it != nil && (it.Kind() == types.Domain || it.Kind() == types.Range) {
				iv := fg.genExpr(x.Index[0])
				fg.emit(&ir.Instr{Op: ir.OpSlice, Dst: dst, A: base, B: iv, Pos: x.Pos()})
				return
			}
		}
		idx := fg.genIndexList(x.Index)
		fg.emit(&ir.Instr{Op: ir.OpRefElem, Dst: dst, A: base, Args: idx, Pos: x.Pos()})
	case *ast.FieldExpr:
		base := fg.genRefBase(x.X)
		ix := fg.fieldIndexOf(x)
		fg.emit(&ir.Instr{Op: ir.OpRefField, Dst: dst, A: base, FieldIx: ix, Pos: x.Pos()})
	case *ast.Ident:
		src := fg.genExpr(x)
		fg.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, A: src, Rebind: true, Pos: x.Pos()})
	default:
		// General expression: alias of a temp (degenerates to a copy).
		src := fg.genExpr(init)
		fg.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, A: src, Rebind: true, Pos: init.Pos()})
	}
}

// ---------------------------------------------------------------- stmts

func (fg *fnGen) blockStmt(b *ast.BlockStmt) {
	for _, s := range b.Stmts {
		fg.stmt(s)
	}
}

func (fg *fnGen) stmt(s ast.Stmt) {
	switch ss := s.(type) {
	case *ast.VarDecl:
		for _, name := range ss.Names {
			sym := fg.g.info.Defs[name]
			if sym == nil {
				continue
			}
			v := fg.declareLocal(sym)
			var astType ast.TypeExpr = ss.Type
			_ = astType
			fg.initVar(v, ss, name.NamePos)
		}
	case *ast.DeclStmt:
		if pd, ok := ss.D.(*ast.ProcDecl); ok {
			fg.g.lowerProc(pd, nil)
		}
	case *ast.AssignStmt:
		fg.assign(ss)
	case *ast.ExprStmt:
		fg.genExpr(ss.X)
	case *ast.BlockStmt:
		fg.blockStmt(ss)
	case *ast.IfStmt:
		fg.ifStmt(ss)
	case *ast.WhileStmt:
		fg.whileStmt(ss)
	case *ast.DoWhileStmt:
		fg.doWhileStmt(ss)
	case *ast.ForStmt:
		fg.forStmt(ss)
	case *ast.SelectStmt:
		fg.selectStmt(ss)
	case *ast.ReturnStmt:
		if fg.iterCtx != nil {
			// `return;` inside an inlined iterator ends the iteration.
			fg.emit(&ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{fg.iterCtx.exit}, Pos: ss.RetPos})
			return
		}
		if ss.X != nil && fg.f.RetVar != nil {
			fg.genExprInto(fg.f.RetVar, ss.X)
		}
		fg.emit(&ir.Instr{Op: ir.OpRet, A: fg.f.RetVar, Pos: ss.RetPos})
	case *ast.YieldStmt:
		fg.yieldStmt(ss)
	case *ast.BreakStmt:
		if n := len(fg.loops); n > 0 {
			fg.emit(&ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{fg.loops[n-1].brk}, Pos: ss.BrkPos})
		}
	case *ast.ContinueStmt:
		if n := len(fg.loops); n > 0 {
			fg.emit(&ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{fg.loops[n-1].cont}, Pos: ss.ContPos})
		}
	case *ast.OnStmt:
		fg.spawnBlock(ir.SpawnOn, ss.Body, ss.Target, ss.OnPos)
	case *ast.BeginStmt:
		fg.spawnBlock(ir.SpawnBegin, ss.Body, nil, ss.BeginPos)
	case *ast.CobeginStmt:
		fg.cobegin(ss)
	case *ast.SyncStmt:
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Method: "sync_begin", Pos: ss.SyncPos})
		fg.blockStmt(ss.Body)
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Method: "sync_end", Pos: ss.SyncPos})
	}
}

func (fg *fnGen) ifStmt(s *ast.IfStmt) {
	cond := fg.genExpr(s.Cond)
	thenB := fg.f.NewBlock()
	exitB := fg.f.NewBlock()
	elseB := exitB
	if s.Else != nil {
		elseB = fg.f.NewBlock()
	}
	fg.emit(&ir.Instr{Op: ir.OpBr, A: cond, Targets: [2]*ir.Block{thenB, elseB}, Pos: s.Cond.Pos()})
	fg.cur = thenB
	fg.blockStmt(s.Then)
	fg.startBlock(exitB)
	if s.Else != nil {
		fg.cur = elseB
		fg.stmt(s.Else)
		fg.startBlock(exitB)
	}
	fg.cur = exitB
}

func (fg *fnGen) whileStmt(s *ast.WhileStmt) {
	head := fg.f.NewBlock()
	body := fg.f.NewBlock()
	exit := fg.f.NewBlock()
	fg.startBlock(head)
	cond := fg.genExpr(s.Cond)
	fg.emit(&ir.Instr{Op: ir.OpBr, A: cond, Targets: [2]*ir.Block{body, exit}, Pos: s.Cond.Pos()})
	fg.cur = body
	fg.loops = append(fg.loops, loopCtx{brk: exit, cont: head})
	fg.blockStmt(s.Body)
	fg.loops = fg.loops[:len(fg.loops)-1]
	fg.startBlock(head)
	fg.cur = exit
}

func (fg *fnGen) doWhileStmt(s *ast.DoWhileStmt) {
	body := fg.f.NewBlock()
	check := fg.f.NewBlock()
	exit := fg.f.NewBlock()
	fg.startBlock(body)
	fg.loops = append(fg.loops, loopCtx{brk: exit, cont: check})
	fg.blockStmt(s.Body)
	fg.loops = fg.loops[:len(fg.loops)-1]
	fg.startBlock(check)
	cond := fg.genExpr(s.Cond)
	fg.emit(&ir.Instr{Op: ir.OpBr, A: cond, Targets: [2]*ir.Block{body, exit}, Pos: s.Cond.Pos()})
	fg.cur = exit
}

func (fg *fnGen) selectStmt(s *ast.SelectStmt) {
	subj := fg.genExpr(s.Subject)
	exit := fg.f.NewBlock()
	for _, w := range s.Whens {
		bodyB := fg.f.NewBlock()
		nextB := fg.f.NewBlock()
		// subj == v1 || subj == v2 ...
		var matched *ir.Var
		for _, val := range w.Values {
			vv := fg.genExpr(val)
			eq := fg.temp(types.BoolType)
			fg.emit(&ir.Instr{Op: ir.OpBin, Dst: eq, BinOp: token.EQ, A: subj, B: vv, Pos: val.Pos()})
			if matched == nil {
				matched = eq
			} else {
				or := fg.temp(types.BoolType)
				fg.emit(&ir.Instr{Op: ir.OpBin, Dst: or, BinOp: token.OR, A: matched, B: eq, Pos: val.Pos()})
				matched = or
			}
		}
		fg.emit(&ir.Instr{Op: ir.OpBr, A: matched, Targets: [2]*ir.Block{bodyB, nextB}, Pos: w.WhenPos})
		fg.cur = bodyB
		fg.blockStmt(w.Body)
		fg.startBlock(exit)
		fg.cur = nextB
	}
	if s.Otherwise != nil {
		fg.blockStmt(s.Otherwise)
	}
	fg.startBlock(exit)
	fg.cur = exit
}

// ----------------------------------------------------------- assignment

func (fg *fnGen) assign(s *ast.AssignStmt) {
	if s.Op == token.SWAP {
		fg.swap(s)
		return
	}
	var rhs *ir.Var
	if s.Op == token.ASSIGN {
		rhs = fg.genExpr(s.Rhs)
	} else {
		// Compound: load, combine, store.
		cur := fg.genExpr(s.Lhs)
		rv := fg.genExpr(s.Rhs)
		var op token.Kind
		switch s.Op {
		case token.PLUS_ASSIGN:
			op = token.PLUS
		case token.MINUS_ASSIGN:
			op = token.MINUS
		case token.STAR_ASSIGN:
			op = token.STAR
		case token.SLASH_ASSIGN:
			op = token.SLASH
		}
		t := fg.temp(fg.typeOf(s.Lhs))
		fg.emit(&ir.Instr{Op: ir.OpBin, Dst: t, BinOp: op, A: cur, B: rv, Pos: s.Lhs.Pos()})
		rhs = t
	}
	fg.store(s.Lhs, rhs)
}

func (fg *fnGen) swap(s *ast.AssignStmt) {
	a := fg.genExpr(s.Lhs)
	b := fg.genExpr(s.Rhs)
	t := fg.temp(fg.typeOf(s.Lhs))
	fg.emit(&ir.Instr{Op: ir.OpMove, Dst: t, A: a, Pos: s.Lhs.Pos()})
	fg.store(s.Lhs, b)
	fg.store(s.Rhs, t)
}

// store writes value into the location denoted by lhs.
func (fg *fnGen) store(lhs ast.Expr, val *ir.Var) {
	switch x := lhs.(type) {
	case *ast.Ident:
		dst := fg.identPlaceVar(x)
		if dst == nil {
			return
		}
		if fld, base := fg.fieldOfThis(x); fld >= 0 {
			fg.emit(&ir.Instr{Op: ir.OpFieldStore, Dst: base, FieldIx: fld, A: val, Pos: x.Pos()})
			return
		}
		fg.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, A: val, Pos: x.Pos()})
	case *ast.IndexExpr:
		// Slice assignment A[D] = v writes through a view.
		if len(x.Index) == 1 {
			it := fg.g.info.TypeOf(x.Index[0])
			if it != nil && (it.Kind() == types.Domain || it.Kind() == types.Range) {
				view := fg.genExpr(x) // OpSlice
				fg.emit(&ir.Instr{Op: ir.OpMove, Dst: view, A: val, Pos: x.Pos()})
				return
			}
		}
		base := fg.genRefBase(x.X)
		idx := fg.genIndexList(x.Index)
		fg.emit(&ir.Instr{Op: ir.OpIndexStore, Dst: base, Args: idx, A: val, Pos: x.Pos()})
	case *ast.FieldExpr:
		base := fg.genRefBase(x.X)
		ix := fg.fieldIndexOf(x)
		fg.emit(&ir.Instr{Op: ir.OpFieldStore, Dst: base, FieldIx: ix, A: val, Pos: x.Pos()})
	case *ast.CallExpr:
		// Tuple element store t(i) = v.
		if ci := fg.g.info.Calls[x]; ci != nil && ci.TupleIndex {
			base := fg.genRefBase(x.Fun)
			iv := fg.genExpr(x.Args[0])
			fg.emit(&ir.Instr{Op: ir.OpTupleSet, Dst: base, B: iv, FieldIx: -1, A: val, Pos: x.Pos()})
			return
		}
		if ci := fg.g.info.Calls[x]; ci != nil && ci.TypeMethod == "index" {
			base := fg.genRefBase(x.Fun)
			idx := fg.genIndexList(x.Args)
			fg.emit(&ir.Instr{Op: ir.OpIndexStore, Dst: base, Args: idx, A: val, Pos: x.Pos()})
			return
		}
		fg.g.errorf(x.Pos(), "cannot assign to this expression")
	default:
		fg.g.errorf(lhs.Pos(), "cannot assign to this expression")
	}
}

// identPlaceVar resolves an identifier lvalue to its var.
func (fg *fnGen) identPlaceVar(x *ast.Ident) *ir.Var {
	sym := fg.g.info.SymOf(x)
	if sym == nil {
		return nil
	}
	if sym.Storage == sem.StorageField {
		// handled by fieldOfThis in store
		return fg.thisVar
	}
	return fg.resolveVar(sym, x.NamePos)
}

// fieldOfThis reports whether ident x is an implicit this.field access in
// a method, returning the field index and the receiver var.
func (fg *fnGen) fieldOfThis(x *ast.Ident) (int, *ir.Var) {
	sym := fg.g.info.SymOf(x)
	if sym == nil || sym.Storage != sem.StorageField || fg.thisVar == nil {
		return -1, nil
	}
	rt, ok := fg.thisVar.Type.(*types.RecordType)
	if !ok {
		return -1, nil
	}
	if ix := rt.FieldIndex(sym.Name); ix >= 0 {
		return ix, fg.thisVar
	}
	return -1, nil
}

// fieldIndexOf resolves the field index of a FieldExpr against its base's
// record type. Returns -1 for pseudo-fields (handled as queries).
func (fg *fnGen) fieldIndexOf(x *ast.FieldExpr) int {
	bt := fg.g.info.TypeOf(x.X)
	if rt, ok := bt.(*types.RecordType); ok {
		return rt.FieldIndex(x.Name.Name)
	}
	return -1
}
