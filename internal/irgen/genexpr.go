package irgen

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/types"
)

func (fg *fnGen) typeOf(e ast.Expr) types.Type {
	t := fg.g.info.TypeOf(e)
	if t == nil {
		return types.IntType
	}
	return t
}

// genExpr evaluates e into a var (existing var for simple idents, a fresh
// temp otherwise).
func (fg *fnGen) genExpr(e ast.Expr) *ir.Var {
	switch x := e.(type) {
	case *ast.Ident:
		sym := fg.g.info.SymOf(x)
		if sym == nil {
			return fg.constInt(0, x.NamePos)
		}
		if sym.Storage == sem.StorageField && fg.thisVar != nil {
			if ix, base := fg.fieldOfThis(x); ix >= 0 {
				t := fg.temp(sym.Type)
				fg.emit(&ir.Instr{Op: ir.OpField, Dst: t, A: base, FieldIx: ix, Pos: x.NamePos})
				return t
			}
		}
		return fg.resolveVar(sym, x.NamePos)
	case *ast.IntLit:
		t := fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpConst, Dst: t, Lit: &ir.Lit{T: types.IntType, I: x.Value}, Pos: x.LitPos})
		return t
	case *ast.RealLit:
		t := fg.temp(types.RealType)
		fg.emit(&ir.Instr{Op: ir.OpConst, Dst: t, Lit: &ir.Lit{T: types.RealType, F: x.Value}, Pos: x.LitPos})
		return t
	case *ast.BoolLit:
		t := fg.temp(types.BoolType)
		fg.emit(&ir.Instr{Op: ir.OpConst, Dst: t, Lit: &ir.Lit{T: types.BoolType, B: x.Value}, Pos: x.LitPos})
		return t
	case *ast.StringLit:
		t := fg.temp(types.StringType)
		fg.emit(&ir.Instr{Op: ir.OpConst, Dst: t, Lit: &ir.Lit{T: types.StringType, S: x.Value}, Pos: x.LitPos})
		return t
	case *ast.BinaryExpr:
		a := fg.genExpr(x.X)
		b := fg.genExpr(x.Y)
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpBin, Dst: t, BinOp: x.Op, A: a, B: b, Pos: x.Pos()})
		return t
	case *ast.UnaryExpr:
		a := fg.genExpr(x.X)
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpUn, Dst: t, BinOp: x.Op, A: a, Pos: x.OpPos})
		return t
	case *ast.RangeExpr:
		return fg.genRange(x)
	case *ast.DomainLit:
		var rs []*ir.Var
		for _, d := range x.Dims {
			rs = append(rs, fg.genExpr(d))
		}
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpMakeDomain, Dst: t, Args: rs, Pos: x.Lbrace})
		return t
	case *ast.TupleExpr:
		var elems []*ir.Var
		for _, el := range x.Elems {
			elems = append(elems, fg.genExpr(el))
		}
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpMakeTuple, Dst: t, Args: elems, Pos: x.Lparen})
		return t
	case *ast.IndexExpr:
		return fg.genIndex(x)
	case *ast.FieldExpr:
		return fg.genField(x)
	case *ast.CallExpr:
		return fg.genCall(x)
	case *ast.IfExpr:
		return fg.genIfExpr(x)
	case *ast.NewExpr:
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpAllocRec, Dst: t, Pos: x.NewPos})
		return t
	case *ast.ReduceExpr:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if ci := fg.g.info.Calls[call]; ci != nil && ci.Iterator {
				return fg.inlineIterReduce(x, call, ci.Target)
			}
		}
		a := fg.genExpr(x.X)
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Dst: t, Method: "reduce:" + x.Op.String(), Args: []*ir.Var{a}, Pos: x.OpPos})
		return t
	}
	fg.g.errorf(e.Pos(), "cannot lower expression %T", e)
	return fg.constInt(0, e.Pos())
}

// genExprInto evaluates e directly into dst (used for declarations with
// initializers and returns, so the write blames the declared variable).
func (fg *fnGen) genExprInto(dst *ir.Var, e ast.Expr) {
	v := fg.genExpr(e)
	fg.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, A: v, Pos: e.Pos()})
}

func (fg *fnGen) genRange(x *ast.RangeExpr) *ir.Var {
	lo := fg.genExpr(x.Lo)
	var hi *ir.Var
	counted := false
	if x.Hi != nil {
		hi = fg.genExpr(x.Hi)
	} else if x.Count != nil {
		hi = fg.genExpr(x.Count)
		counted = true
	} else {
		hi = lo
	}
	t := fg.temp(types.RangeVal)
	in := &ir.Instr{Op: ir.OpMakeRange, Dst: t, A: lo, B: hi, Pos: x.RangePos}
	if counted {
		in.Method = "counted"
	}
	if x.By != nil {
		in.Args = []*ir.Var{fg.genExpr(x.By)}
	}
	fg.emit(in)
	return t
}

func (fg *fnGen) genIndexList(idx []ast.Expr) []*ir.Var {
	var out []*ir.Var
	for _, i := range idx {
		out = append(out, fg.genExpr(i))
	}
	return out
}

// genRefBase evaluates an access-chain base into a var that can be stored
// through: plain vars are returned directly, intermediate element/field
// accesses become ref temps (alias defs the blame analysis follows).
func (fg *fnGen) genRefBase(e ast.Expr) *ir.Var {
	switch x := e.(type) {
	case *ast.Ident:
		sym := fg.g.info.SymOf(x)
		if sym == nil {
			return fg.constInt(0, x.NamePos)
		}
		if sym.Storage == sem.StorageField && fg.thisVar != nil {
			if ix, base := fg.fieldOfThis(x); ix >= 0 {
				rt := fg.temp(sym.Type)
				rt.IsRef = true
				fg.emit(&ir.Instr{Op: ir.OpRefField, Dst: rt, A: base, FieldIx: ix, Pos: x.NamePos})
				return rt
			}
		}
		return fg.resolveVar(sym, x.NamePos)
	case *ast.IndexExpr:
		base := fg.genRefBase(x.X)
		// Slice base: materialize the view, then continue through it.
		if len(x.Index) == 1 {
			it := fg.g.info.TypeOf(x.Index[0])
			if it != nil && (it.Kind() == types.Domain || it.Kind() == types.Range) {
				iv := fg.genExpr(x.Index[0])
				t := fg.temp(fg.typeOf(x))
				t.IsRef = true
				fg.emit(&ir.Instr{Op: ir.OpSlice, Dst: t, A: base, B: iv, Pos: x.Pos()})
				return t
			}
		}
		idx := fg.genIndexList(x.Index)
		t := fg.temp(fg.typeOf(x))
		t.IsRef = true
		fg.emit(&ir.Instr{Op: ir.OpRefElem, Dst: t, A: base, Args: idx, Pos: x.Pos()})
		return t
	case *ast.FieldExpr:
		base := fg.genRefBase(x.X)
		ix := fg.fieldIndexOf(x)
		t := fg.temp(fg.typeOf(x))
		t.IsRef = true
		fg.emit(&ir.Instr{Op: ir.OpRefField, Dst: t, A: base, FieldIx: ix, Pos: x.Pos()})
		return t
	case *ast.CallExpr:
		// Tuple element ref t(i) or array call-indexing a(i).
		if ci := fg.g.info.Calls[x]; ci != nil && ci.TupleIndex {
			base := fg.genRefBase(x.Fun)
			iv := fg.genExpr(x.Args[0])
			t := fg.temp(fg.typeOf(x))
			t.IsRef = true
			fg.emit(&ir.Instr{Op: ir.OpRefField, Dst: t, A: base, B: iv, FieldIx: -1, Pos: x.Pos()})
			return t
		}
		if ci := fg.g.info.Calls[x]; ci != nil && ci.TypeMethod == "index" {
			base := fg.genRefBase(x.Fun)
			idx := fg.genIndexList(x.Args)
			t := fg.temp(fg.typeOf(x))
			t.IsRef = true
			fg.emit(&ir.Instr{Op: ir.OpRefElem, Dst: t, A: base, Args: idx, Pos: x.Pos()})
			return t
		}
	}
	return fg.genExpr(e)
}

func (fg *fnGen) genIndex(x *ast.IndexExpr) *ir.Var {
	base := fg.genRefBase(x.X)
	bt := fg.g.info.TypeOf(x.X)
	// Tuple indexing with [].
	if bt != nil && bt.Kind() == types.Tuple {
		iv := fg.genExpr(x.Index[0])
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpTupleGet, Dst: t, A: base, B: iv, FieldIx: -1, Pos: x.Pos()})
		return t
	}
	// Slice: A[D] or A[lo..hi] — builds an aliasing view (costed: this is
	// the "domain remapping" overhead of §V.A).
	if len(x.Index) == 1 {
		it := fg.g.info.TypeOf(x.Index[0])
		if it != nil && (it.Kind() == types.Domain || it.Kind() == types.Range) {
			iv := fg.genExpr(x.Index[0])
			t := fg.temp(fg.typeOf(x))
			t.IsRef = true
			fg.emit(&ir.Instr{Op: ir.OpSlice, Dst: t, A: base, B: iv, Pos: x.Pos()})
			return t
		}
	}
	idx := fg.genIndexList(x.Index)
	t := fg.temp(fg.typeOf(x))
	fg.emit(&ir.Instr{Op: ir.OpIndex, Dst: t, A: base, Args: idx, Pos: x.Pos()})
	return t
}

func (fg *fnGen) genField(x *ast.FieldExpr) *ir.Var {
	bt := fg.g.info.TypeOf(x.X)
	name := x.Name.Name
	// Record field access.
	if rt, ok := bt.(*types.RecordType); ok {
		base := fg.genRefBase(x.X)
		ix := rt.FieldIndex(name)
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpField, Dst: t, A: base, FieldIx: ix, Pos: x.Pos()})
		return t
	}
	// Built-in queries: size/low/high/domain/...
	base := fg.genExpr(x.X)
	t := fg.temp(fg.typeOf(x))
	fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: t, A: base, Method: name, Pos: x.Pos()})
	return t
}

func (fg *fnGen) genIfExpr(x *ast.IfExpr) *ir.Var {
	cond := fg.genExpr(x.Cond)
	t := fg.temp(fg.typeOf(x))
	thenB := fg.f.NewBlock()
	elseB := fg.f.NewBlock()
	exitB := fg.f.NewBlock()
	fg.emit(&ir.Instr{Op: ir.OpBr, A: cond, Targets: [2]*ir.Block{thenB, elseB}, Pos: x.IfPos})
	fg.cur = thenB
	av := fg.genExpr(x.Then)
	fg.emit(&ir.Instr{Op: ir.OpMove, Dst: t, A: av, Pos: x.Then.Pos()})
	fg.startBlock(exitB)
	fg.cur = elseB
	bv := fg.genExpr(x.Else)
	fg.emit(&ir.Instr{Op: ir.OpMove, Dst: t, A: bv, Pos: x.Else.Pos()})
	fg.startBlock(exitB)
	fg.cur = exitB
	return t
}

// ------------------------------------------------------------------ calls

func (fg *fnGen) genCall(x *ast.CallExpr) *ir.Var {
	ci := fg.g.info.Calls[x]
	if ci == nil {
		fg.g.errorf(x.Pos(), "unresolved call")
		return fg.constInt(0, x.Pos())
	}
	switch {
	case ci.TupleIndex:
		base := fg.genRefBase(x.Fun)
		iv := fg.genExpr(x.Args[0])
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpTupleGet, Dst: t, A: base, B: iv, FieldIx: -1, Pos: x.Pos()})
		return t
	case ci.TypeMethod == "index":
		base := fg.genRefBase(x.Fun)
		idx := fg.genIndexList(x.Args)
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpIndex, Dst: t, A: base, Args: idx, Pos: x.Pos()})
		return t
	case strings.HasPrefix(ci.TypeMethod, "atomic:"):
		// Atomic ops mutate through the receiver: take its cell.
		fe := x.Fun.(*ast.FieldExpr)
		base := fg.genRefBase(fe.X)
		args := fg.genIndexList(x.Args)
		var dst *ir.Var
		if rt := fg.typeOf(x); rt != nil && rt.Kind() != types.Void {
			dst = fg.temp(rt)
		}
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Dst: dst, A: base, Args: args, Method: ci.TypeMethod, Pos: x.Pos()})
		if dst == nil {
			dst = fg.constInt(0, x.Pos())
		}
		return dst
	case ci.TypeMethod != "":
		// Domain/array/range methods: expand, dim, size, reindex...
		fe := x.Fun.(*ast.FieldExpr)
		base := fg.genExpr(fe.X)
		args := fg.genIndexList(x.Args)
		t := fg.temp(fg.typeOf(x))
		fg.emit(&ir.Instr{Op: ir.OpDomMethod, Dst: t, A: base, Args: args, Method: ci.TypeMethod, Pos: x.Pos()})
		return t
	case ci.Builtin != "":
		args := fg.genIndexList(x.Args)
		var dst *ir.Var
		rt := fg.typeOf(x)
		if rt != nil && rt.Kind() != types.Void {
			dst = fg.temp(rt)
		}
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Dst: dst, Method: ci.Builtin, Args: args, Pos: x.Pos()})
		if dst == nil {
			dst = fg.constInt(0, x.Pos())
		}
		return dst
	case ci.Method:
		fe := x.Fun.(*ast.FieldExpr)
		recv := fg.genRefBase(fe.X)
		return fg.emitCall(ci.Target, append([]*ir.Var{recv}, fg.callArgs(ci.Target, x.Args, 1)...), x.Pos(), fg.typeOf(x))
	case ci.Target != nil:
		return fg.emitCall(ci.Target, fg.callArgs(ci.Target, x.Args, 0), x.Pos(), fg.typeOf(x))
	}
	fg.g.errorf(x.Pos(), "cannot lower call")
	return fg.constInt(0, x.Pos())
}

// callArgs lowers call arguments; args passed to ref formals are lowered
// as places (ref temps for elements/fields) so the callee writes through.
func (fg *fnGen) callArgs(target *sem.Symbol, args []ast.Expr, skip int) []*ir.Var {
	pt, _ := target.Type.(*types.ProcType)
	var out []*ir.Var
	for i, a := range args {
		isRef := false
		if pt != nil && i+skip < len(pt.Params) {
			isRef = pt.Params[i+skip].IsRef
		}
		if isRef {
			out = append(out, fg.genRefBase(a))
		} else {
			out = append(out, fg.genExpr(a))
		}
	}
	return out
}

// emitCall emits the OpCall, appending capture args for nested procs.
func (fg *fnGen) emitCall(target *sem.Symbol, args []*ir.Var, pos source.Pos, retT types.Type) *ir.Var {
	callee := fg.g.funcOf[target]
	if callee == nil {
		fg.g.errorf(pos, "no IR function for %s", target.Name)
		return fg.constInt(0, pos)
	}
	// Nested procedures take their captured enclosing locals as trailing
	// ref params; the caller supplies them from its own frame.
	for _, capSym := range fg.g.info.Captures[target] {
		args = append(args, fg.resolveVar(capSym, pos))
	}
	var dst *ir.Var
	if retT != nil && retT.Kind() != types.Void {
		dst = fg.temp(retT)
	}
	fg.emit(&ir.Instr{Op: ir.OpCall, Dst: dst, Callee: callee, Args: args, Pos: pos})
	if dst == nil {
		dst = fg.constInt(0, pos)
	}
	return dst
}
