package irgen

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/token"
	"repro/internal/types"
)

// forStmt dispatches loop lowering.
func (fg *fnGen) forStmt(s *ast.ForStmt) {
	switch s.Kind {
	case ast.LoopParamFor:
		fg.paramFor(s)
	case ast.LoopFor:
		fg.serialFor(s)
	case ast.LoopForall, ast.LoopCoforall:
		fg.parallelFor(s)
	}
}

// paramFor unrolls a `for param` loop at compile time (paper Table VII).
func (fg *fnGen) paramFor(s *ast.ForStmt) {
	r, ok := s.Iter.(*ast.RangeExpr)
	if !ok {
		fg.g.errorf(s.ForPos, "param for requires a range")
		return
	}
	lo := fg.g.info.ConstOf(r.Lo)
	count := fg.g.info.ConstOf(r)
	if lo == nil || count == nil {
		fg.g.errorf(s.ForPos, "param for bounds not constant")
		return
	}
	sym := fg.g.info.Defs[s.Idx[0]]
	v := fg.declareLocal(sym)
	for i := int64(0); i < count.Int(); i++ {
		fg.emit(&ir.Instr{Op: ir.OpConst, Dst: v, Lit: &ir.Lit{T: types.IntType, I: lo.Int() + i}, Pos: s.ForPos})
		fg.blockStmt(s.Body)
	}
}

// loopBounds computes (lo, hi, step) vars for a range expression,
// handling the counted (lo..#n) form.
func (fg *fnGen) rangeBounds(r *ast.RangeExpr) (lo, hi, step *ir.Var) {
	lo = fg.genExpr(r.Lo)
	if r.Hi != nil {
		hi = fg.genExpr(r.Hi)
	} else if r.Count != nil {
		n := fg.genExpr(r.Count)
		t1 := fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpBin, Dst: t1, BinOp: token.PLUS, A: lo, B: n, Pos: r.RangePos})
		one := fg.constInt(1, r.RangePos)
		hi = fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpBin, Dst: hi, BinOp: token.MINUS, A: t1, B: one, Pos: r.RangePos})
	} else {
		hi = lo
	}
	if r.By != nil {
		step = fg.genExpr(r.By)
		// Positive-stride guard (negative/zero strides are rejected at
		// runtime, matching OpMakeRange's check).
		fg.emit(&ir.Instr{Op: ir.OpBuiltin, Method: "stride_check", Args: []*ir.Var{step}, Pos: r.RangePos})
	}
	return lo, hi, step
}

// iterBounds returns per-dimension (lo, hi) bounds of an iterand that is a
// range expr, range var, or domain var.
func (fg *fnGen) iterBounds(iter ast.Expr, rank int) (los, his []*ir.Var, step *ir.Var) {
	if r, ok := iter.(*ast.RangeExpr); ok {
		lo, hi, st := fg.rangeBounds(r)
		return []*ir.Var{lo}, []*ir.Var{hi}, st
	}
	v := fg.genExpr(iter)
	t := fg.typeOf(iter)
	switch t.Kind() {
	case types.Range:
		lo := fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: lo, A: v, Method: "low", Pos: iter.Pos()})
		hi := fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: hi, A: v, Method: "high", Pos: iter.Pos()})
		return []*ir.Var{lo}, []*ir.Var{hi}, nil
	case types.Domain:
		for d := 0; d < rank; d++ {
			lo := fg.temp(types.IntType)
			fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: lo, A: v, Method: "dimlow", FieldIx: d, Pos: iter.Pos()})
			hi := fg.temp(types.IntType)
			fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: hi, A: v, Method: "dimhigh", FieldIx: d, Pos: iter.Pos()})
			los = append(los, lo)
			his = append(his, hi)
		}
		return los, his, nil
	}
	fg.g.errorf(iter.Pos(), "cannot compute loop bounds for %s", t)
	z := fg.constInt(0, iter.Pos())
	return []*ir.Var{z}, []*ir.Var{z}, nil
}

// rankOf returns the iteration rank of an iterand type.
func rankOf(t types.Type) int {
	switch tt := t.(type) {
	case *types.DomainType:
		return tt.Rank
	case *types.ArrayType:
		return tt.Rank
	}
	return 1
}

// serialFor lowers for-loops over ranges, domains, arrays, zips and
// user-defined iterators.
func (fg *fnGen) serialFor(s *ast.ForStmt) {
	if z, ok := s.Iter.(*ast.ZipExpr); ok {
		fg.serialZip(s, z)
		return
	}
	if call, ok := s.Iter.(*ast.CallExpr); ok {
		if ci := fg.g.info.Calls[call]; ci != nil && ci.Iterator {
			fg.inlineIterLoop(s, call, ci.Target)
			return
		}
	}
	t := fg.typeOf(s.Iter)
	switch t.Kind() {
	case types.Array:
		fg.serialOverArray(s)
	case types.Domain:
		rank := rankOf(t)
		los, his, _ := fg.iterBounds(s.Iter, rank)
		idxVars := fg.bindIndexVars(s, rank)
		fg.nestedCountedLoops(los, his, nil, idxVars, func() { fg.blockStmt(s.Body) }, s.ForPos)
	default: // range
		los, his, step := fg.iterBounds(s.Iter, 1)
		idxVars := fg.bindIndexVars(s, 1)
		fg.nestedCountedLoops(los, his, step, idxVars, func() { fg.blockStmt(s.Body) }, s.ForPos)
	}
}

// bindIndexVars declares the loop index variables (one per dimension).
func (fg *fnGen) bindIndexVars(s *ast.ForStmt, rank int) []*ir.Var {
	var out []*ir.Var
	if len(s.Idx) == rank {
		for _, id := range s.Idx {
			sym := fg.g.info.Defs[id]
			out = append(out, fg.declareLocal(sym))
		}
		return out
	}
	// Single tuple-valued index over a multi-D domain: bind a tuple var
	// and fill it per-iteration from hidden per-dim ints.
	sym := fg.g.info.Defs[s.Idx[0]]
	v := fg.declareLocal(sym)
	if rank == 1 {
		return []*ir.Var{v}
	}
	// Hidden scalars per dim, packed into the tuple at loop body entry.
	var hidden []*ir.Var
	for d := 0; d < rank; d++ {
		hidden = append(hidden, fg.temp(types.IntType))
	}
	fg.pendingTuplePack = &tuplePack{tuple: v, elems: hidden}
	return hidden
}

// tuplePack describes a multi-D index packed into a user tuple var.
type tuplePack struct {
	tuple *ir.Var
	elems []*ir.Var
}

// nestedCountedLoops emits rank nested counted loops with the given
// per-dimension bounds, invoking body() in the innermost.
func (fg *fnGen) nestedCountedLoops(los, his []*ir.Var, step *ir.Var, idxVars []*ir.Var, body func(), pos source.Pos) {
	if len(los) == 0 {
		body()
		return
	}
	lo, hi := los[0], his[0]
	iv := idxVars[0]
	fg.emit(&ir.Instr{Op: ir.OpMove, Dst: iv, A: lo, Pos: pos})
	head := fg.f.NewBlock()
	bodyB := fg.f.NewBlock()
	incr := fg.f.NewBlock()
	exit := fg.f.NewBlock()
	fg.startBlock(head)
	cond := fg.temp(types.BoolType)
	fg.emit(&ir.Instr{Op: ir.OpBin, Dst: cond, BinOp: token.LE, A: iv, B: hi, Pos: pos})
	fg.emit(&ir.Instr{Op: ir.OpBr, A: cond, Targets: [2]*ir.Block{bodyB, exit}, Pos: pos})
	fg.cur = bodyB
	fg.loops = append(fg.loops, loopCtx{brk: exit, cont: incr})
	if len(los) == 1 {
		// Innermost: pack tuple index if needed, then the body.
		if tp := fg.pendingTuplePack; tp != nil {
			fg.pendingTuplePack = nil
			fg.emit(&ir.Instr{Op: ir.OpMakeTuple, Dst: tp.tuple, Args: tp.elems, Pos: pos})
			body()
			fg.pendingTuplePack = tp
		} else {
			body()
		}
	} else {
		fg.nestedCountedLoops(los[1:], his[1:], nil, idxVars[1:], body, pos)
	}
	fg.loops = fg.loops[:len(fg.loops)-1]
	fg.startBlock(incr)
	var stepVar *ir.Var
	if step != nil && len(los) == 1 {
		stepVar = step
	} else {
		stepVar = fg.constInt(1, pos)
	}
	next := fg.temp(types.IntType)
	fg.emit(&ir.Instr{Op: ir.OpBin, Dst: next, BinOp: token.PLUS, A: iv, B: stepVar, Pos: pos})
	fg.emit(&ir.Instr{Op: ir.OpMove, Dst: iv, A: next, Pos: pos})
	fg.emit(&ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{head}, Pos: pos})
	fg.cur = exit
	if fg.pendingTuplePack != nil && len(los) == len(idxVars) {
		fg.pendingTuplePack = nil
	}
}

// serialOverArray lowers `for a in A` — the loop var is a ref alias to
// each element.
func (fg *fnGen) serialOverArray(s *ast.ForStmt) {
	arr := fg.genRefBase(s.Iter)
	at := fg.typeOf(s.Iter).(*types.ArrayType)
	dom := fg.temp(&types.DomainType{Rank: at.Rank})
	fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: dom, A: arr, Method: "domain", Pos: s.Iter.Pos()})
	var los, his []*ir.Var
	for d := 0; d < at.Rank; d++ {
		lo := fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: lo, A: dom, Method: "dimlow", FieldIx: d, Pos: s.Iter.Pos()})
		hi := fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: hi, A: dom, Method: "dimhigh", FieldIx: d, Pos: s.Iter.Pos()})
		los = append(los, lo)
		his = append(his, hi)
	}
	var hidden []*ir.Var
	for d := 0; d < at.Rank; d++ {
		hidden = append(hidden, fg.temp(types.IntType))
	}
	sym := fg.g.info.Defs[s.Idx[0]]
	elemVar := fg.declareLocal(sym)
	elemVar.IsRef = true
	fg.nestedCountedLoops(los, his, nil, hidden, func() {
		fg.emit(&ir.Instr{Op: ir.OpRefElem, Dst: elemVar, A: arr, Args: hidden, Pos: s.ForPos})
		fg.blockStmt(s.Body)
	}, s.ForPos)
}

// inlineIterLoop expands a user-defined iterator at its loop site: the
// iterator body is inlined with each `yield e` becoming "bind the loop
// variable to e, then run the consumer body" — the same inline expansion
// the Chapel compiler performs for serial iterators (paper §VI lists
// iterator support as future work).
func (fg *fnGen) inlineIterLoop(s *ast.ForStmt, call *ast.CallExpr, iterSym *sem.Symbol) {
	for _, onStack := range fg.iterStack {
		if onStack == iterSym {
			fg.g.errorf(s.ForPos, "recursive iterator %s cannot be inline-expanded", iterSym.Name)
			return
		}
	}
	d := iterSym.Proc
	// Bind the iterator's formals as locals initialized from the
	// arguments (value intents only; sem enforces that).
	for i, q := range d.Params {
		psym := fg.g.info.Defs[q.Name]
		if psym == nil {
			continue
		}
		v := fg.declareLocal(psym)
		if i < len(call.Args) {
			fg.genExprInto(v, call.Args[i])
		}
	}
	lvSym := fg.g.info.Defs[s.Idx[0]]
	lv := fg.declareLocal(lvSym)

	exit := fg.f.NewBlock()
	ctx := &iterInlineCtx{loopVar: lv, body: s.Body, exit: exit, outer: fg.iterCtx}
	fg.iterCtx = ctx
	fg.iterStack = append(fg.iterStack, iterSym)
	fg.blockStmt(d.Body)
	fg.iterStack = fg.iterStack[:len(fg.iterStack)-1]
	fg.iterCtx = ctx.outer
	fg.startBlock(exit)
	fg.cur = exit
}

// yieldStmt lowers one yield inside an inlined iterator body.
func (fg *fnGen) yieldStmt(s *ast.YieldStmt) {
	ctx := fg.iterCtx
	if ctx == nil {
		fg.g.errorf(s.YieldPos, "yield outside an inlined iterator")
		return
	}
	fg.genExprInto(ctx.loopVar, s.X)
	contB := fg.f.NewBlock()
	// break in the consumer body exits the whole loop; continue skips to
	// the next yield.
	fg.loops = append(fg.loops, loopCtx{brk: ctx.exit, cont: contB})
	fg.iterCtx = ctx.outer
	if ctx.emit != nil {
		ctx.emit()
	} else {
		fg.blockStmt(ctx.body)
	}
	fg.iterCtx = ctx
	fg.loops = fg.loops[:len(fg.loops)-1]
	fg.startBlock(contB)
	fg.cur = contB
}

// inlineIterReduce expands `op reduce iter()` — the iterator stream is
// folded into an accumulator.
func (fg *fnGen) inlineIterReduce(x *ast.ReduceExpr, call *ast.CallExpr, iterSym *sem.Symbol) *ir.Var {
	for _, onStack := range fg.iterStack {
		if onStack == iterSym {
			fg.g.errorf(x.OpPos, "recursive iterator %s cannot be inline-expanded", iterSym.Name)
			return fg.constInt(0, x.OpPos)
		}
	}
	d := iterSym.Proc
	for i, q := range d.Params {
		psym := fg.g.info.Defs[q.Name]
		if psym == nil {
			continue
		}
		v := fg.declareLocal(psym)
		if i < len(call.Args) {
			fg.genExprInto(v, call.Args[i])
		}
	}
	elemT := fg.typeOf(x)
	acc := fg.temp(elemT)
	cur := fg.temp(elemT)
	first := fg.temp(types.BoolType)
	// acc starts at the operator identity (min/max seed from the first
	// element via the `first` flag).
	var init ir.Lit
	switch x.Op {
	case token.STAR:
		init = ir.Lit{T: elemT, I: 1, F: 1}
	default:
		init = ir.Lit{T: elemT, I: 0, F: 0}
	}
	if elemT.Kind() == types.Real {
		init.T = types.RealType
	} else {
		init.T = types.IntType
	}
	fg.emit(&ir.Instr{Op: ir.OpConst, Dst: acc, Lit: &init, Pos: x.OpPos})
	fg.emit(&ir.Instr{Op: ir.OpConst, Dst: first, Lit: &ir.Lit{T: types.BoolType, B: true}, Pos: x.OpPos})

	exit := fg.f.NewBlock()
	ctx := &iterInlineCtx{loopVar: cur, exit: exit, outer: fg.iterCtx}
	ctx.emit = func() {
		switch x.Op {
		case token.PLUS, token.STAR:
			op := token.PLUS
			if x.Op == token.STAR {
				op = token.STAR
			}
			t := fg.temp(elemT)
			fg.emit(&ir.Instr{Op: ir.OpBin, Dst: t, BinOp: op, A: acc, B: cur, Pos: x.OpPos})
			fg.emit(&ir.Instr{Op: ir.OpMove, Dst: acc, A: t, Pos: x.OpPos})
		case token.LT, token.GT: // min reduce / max reduce
			cmp := fg.temp(types.BoolType)
			fg.emit(&ir.Instr{Op: ir.OpBin, Dst: cmp, BinOp: x.Op, A: cur, B: acc, Pos: x.OpPos})
			better := fg.temp(types.BoolType)
			fg.emit(&ir.Instr{Op: ir.OpBin, Dst: better, BinOp: token.OR, A: cmp, B: first, Pos: x.OpPos})
			takeB := fg.f.NewBlock()
			skipB := fg.f.NewBlock()
			fg.emit(&ir.Instr{Op: ir.OpBr, A: better, Targets: [2]*ir.Block{takeB, skipB}, Pos: x.OpPos})
			fg.cur = takeB
			fg.emit(&ir.Instr{Op: ir.OpMove, Dst: acc, A: cur, Pos: x.OpPos})
			fg.startBlock(skipB)
			fg.cur = skipB
		}
		f := fg.temp(types.BoolType)
		fg.emit(&ir.Instr{Op: ir.OpConst, Dst: f, Lit: &ir.Lit{T: types.BoolType, B: false}, Pos: x.OpPos})
		fg.emit(&ir.Instr{Op: ir.OpMove, Dst: first, A: f, Pos: x.OpPos})
	}
	fg.iterCtx = ctx
	fg.iterStack = append(fg.iterStack, iterSym)
	fg.blockStmt(d.Body)
	fg.iterStack = fg.iterStack[:len(fg.iterStack)-1]
	fg.iterCtx = ctx.outer
	fg.startBlock(exit)
	fg.cur = exit
	return acc
}

// serialZip lowers zippered serial iteration: the leader drives a
// position loop; every follower pays a per-iteration advance
// (OpZipAdvance) plus its element binding — the cost §V.A attributes to
// zippered iteration.
func (fg *fnGen) serialZip(s *ast.ForStmt, z *ast.ZipExpr) {
	fg.zipLoop(s, z, func(bindings func()) {
		bindings()
		fg.blockStmt(s.Body)
	})
}

// zipLoop factors the common zip lowering; runBody is called in the
// innermost loop with a callback that emits the per-iteration bindings.
func (fg *fnGen) zipLoop(s *ast.ForStmt, z *ast.ZipExpr, runBody func(bindings func())) {
	type iterand struct {
		expr  ast.Expr
		t     types.Type
		arr   *ir.Var // array var (nil for ranges/domains)
		lo    *ir.Var // first index
		v     *ir.Var // user loop var
		isArr bool
	}
	var iters []iterand
	for k, arg := range z.Args {
		it := iterand{expr: arg, t: fg.typeOf(arg)}
		switch it.t.Kind() {
		case types.Array:
			it.isArr = true
			it.arr = fg.genRefBase(arg)
			d := fg.temp(&types.DomainType{Rank: 1})
			fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: d, A: it.arr, Method: "domain", Pos: arg.Pos()})
			it.lo = fg.temp(types.IntType)
			fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: it.lo, A: d, Method: "dimlow", FieldIx: 0, Pos: arg.Pos()})
		case types.Domain, types.Range:
			los, _, _ := fg.iterBounds(arg, 1)
			it.lo = los[0]
		default:
			fg.g.errorf(arg.Pos(), "cannot zip over %s", it.t)
			it.lo = fg.constInt(0, arg.Pos())
		}
		if k < len(s.Idx) {
			sym := fg.g.info.Defs[s.Idx[k]]
			it.v = fg.declareLocal(sym)
			if it.isArr {
				it.v.IsRef = true
			}
		}
		// Iterator construction cost, charged once per loop entry (per
		// task for parallel loops).
		setup := &ir.Instr{Op: ir.OpZipSetup, Pos: arg.Pos()}
		if it.isArr {
			setup.A = it.arr
			setup.Dst = it.v
		} else {
			setup.A = it.lo
		}
		fg.emit(setup)
		iters = append(iters, it)
	}

	// Leader bounds define the trip count.
	leader := iters[0]
	var size *ir.Var
	switch leader.t.Kind() {
	case types.Array:
		size = fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpQuery, Dst: size, A: leader.arr, Method: "size", Pos: z.ZipPos})
	default:
		_, his, _ := fg.iterBounds(leader.expr, 1)
		t1 := fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpBin, Dst: t1, BinOp: token.MINUS, A: his[0], B: leader.lo, Pos: z.ZipPos})
		one := fg.constInt(1, z.ZipPos)
		size = fg.temp(types.IntType)
		fg.emit(&ir.Instr{Op: ir.OpBin, Dst: size, BinOp: token.PLUS, A: t1, B: one, Pos: z.ZipPos})
	}

	p := fg.temp(types.IntType) // position 0..size-1
	zero := fg.constInt(0, z.ZipPos)
	one := fg.constInt(1, z.ZipPos)
	last := fg.temp(types.IntType)
	fg.emit(&ir.Instr{Op: ir.OpBin, Dst: last, BinOp: token.MINUS, A: size, B: one, Pos: z.ZipPos})

	fg.nestedCountedLoops([]*ir.Var{zero}, []*ir.Var{last}, nil, []*ir.Var{p}, func() {
		runBody(func() {
			for k := range iters {
				it := &iters[k]
				if it.v == nil {
					continue
				}
				if k > 0 {
					// Follower advance overhead, blamed through the
					// follower binding to its array.
					adv := &ir.Instr{Op: ir.OpZipAdvance, Pos: it.expr.Pos()}
					if it.isArr {
						adv.Dst = it.v
						adv.A = it.arr
					} else {
						adv.A = it.lo
					}
					fg.emit(adv)
				}
				idx := fg.temp(types.IntType)
				fg.emit(&ir.Instr{Op: ir.OpBin, Dst: idx, BinOp: token.PLUS, A: p, B: it.lo, Pos: it.expr.Pos()})
				if it.isArr {
					fg.emit(&ir.Instr{Op: ir.OpRefElem, Dst: it.v, A: it.arr, Args: []*ir.Var{idx}, Pos: it.expr.Pos()})
				} else {
					fg.emit(&ir.Instr{Op: ir.OpMove, Dst: it.v, A: idx, Pos: it.expr.Pos()})
				}
			}
		})
	}, s.ForPos)
}

// ------------------------------------------------------------- parallel

// parallelFor outlines a forall/coforall body (as the Chapel compiler
// outlines coforall_fn_chplNN functions) and emits an OpSpawn.
func (fg *fnGen) parallelFor(s *ast.ForStmt) {
	kind := ir.SpawnForall
	prefix := "forall_fn_chpl"
	if s.Kind == ast.LoopCoforall {
		kind = ir.SpawnCoforall
		prefix = "coforall_fn_chpl"
	}
	fg.g.outlineCount++
	name := fmt.Sprintf("%s%d", prefix, fg.g.outlineCount)

	// Iteration source (evaluated in the caller).
	var iterVar *ir.Var
	var followers []*ir.Var
	rank := 1
	var zipArgs []ast.Expr
	overArray := false
	if z, ok := s.Iter.(*ast.ZipExpr); ok {
		zipArgs = z.Args
		lt := fg.typeOf(z.Args[0])
		overArray = lt.Kind() == types.Array
		iterVar = fg.iterSource(z.Args[0])
		for _, a := range z.Args[1:] {
			followers = append(followers, fg.iterSource(a))
		}
	} else {
		t := fg.typeOf(s.Iter)
		rank = rankOf(t)
		overArray = t.Kind() == types.Array
		iterVar = fg.iterSource(s.Iter)
	}

	// Outline the body.
	bodyFn := fg.g.prog.NewFunc(name, nil, s.ForPos)
	bodyFn.Outlined = true
	bodyFn.OutlinedFrom = fg.f
	bfg := newFnGen(fg.g, bodyFn, fg.sym)
	bfg.parent = fg
	bfg.thisVar = fg.thisVar

	// Index parameters.
	var idxParams []*ir.Var
	for d := 0; d < rank; d++ {
		p := &ir.Var{Name: fmt.Sprintf("__idx%d", d), Type: types.IntType, IsParam: true, IsTemp: true, Func: bodyFn}
		bodyFn.Params = append(bodyFn.Params, p)
		idxParams = append(idxParams, p)
	}

	// Bind user loop variables in the body prologue.
	if zipArgs != nil {
		for k, arg := range zipArgs {
			if k >= len(s.Idx) {
				break
			}
			sym := fg.g.info.Defs[s.Idx[k]]
			v := bfg.declareLocal(sym)
			at := fg.g.info.TypeOf(arg)
			isArr := at != nil && at.Kind() == types.Array
			if isArr {
				v.IsRef = true
			}
			// The iterand reaches the body as a capture param.
			src := iterVar
			if k > 0 {
				src = followers[k-1]
			}
			// Array iterands are written through their bindings (ref);
			// range/domain iterands are read-only position sources.
			cap := &ir.Var{Name: fmt.Sprintf("__zip%d", k), Type: fg.typeOf(arg), IsParam: true, IsRef: isArr, IsTemp: true, Func: bodyFn}
			bodyFn.Params = append(bodyFn.Params, cap)
			bfg.captureSrc = append(bfg.captureSrc, src)
			if k > 0 {
				adv := &ir.Instr{Op: ir.OpZipAdvance, Pos: arg.Pos()}
				if isArr {
					adv.Dst = v
					adv.A = cap
				} else {
					adv.A = cap
				}
				bfg.emit(adv)
			}
			if isArr {
				bfg.emit(&ir.Instr{Op: ir.OpRefElem, Dst: v, A: cap, Args: idxParams, Pos: arg.Pos()})
			} else {
				// Range/domain value: translate position to index space.
				loT := bfg.temp(types.IntType)
				bfg.emit(&ir.Instr{Op: ir.OpQuery, Dst: loT, A: cap, Method: "ziplow", Pos: arg.Pos()})
				bfg.emit(&ir.Instr{Op: ir.OpBin, Dst: v, BinOp: token.PLUS, A: idxParams[0], B: loT, Pos: arg.Pos()})
			}
		}
	} else if overArray {
		sym := fg.g.info.Defs[s.Idx[0]]
		v := bfg.declareLocal(sym)
		v.IsRef = true
		cap := &ir.Var{Name: "__arr", Type: fg.typeOf(s.Iter), IsParam: true, IsRef: true, IsTemp: true, Func: bodyFn}
		bodyFn.Params = append(bodyFn.Params, cap)
		bfg.captureSrc = append(bfg.captureSrc, iterVar)
		bfg.emit(&ir.Instr{Op: ir.OpRefElem, Dst: v, A: cap, Args: idxParams, Pos: s.ForPos})
	} else {
		// Range/domain: loop vars are the index params themselves.
		if len(s.Idx) == rank {
			for d, id := range s.Idx {
				sym := fg.g.info.Defs[id]
				idxParams[d].Name = id.Name
				idxParams[d].Sym = sym
				idxParams[d].IsTemp = false
				bfg.vars[sym] = idxParams[d]
			}
		} else if len(s.Idx) == 1 {
			// Tuple-valued index.
			sym := fg.g.info.Defs[s.Idx[0]]
			v := bfg.declareLocal(sym)
			bfg.emit(&ir.Instr{Op: ir.OpMakeTuple, Dst: v, Args: idxParams, Pos: s.ForPos})
		}
	}

	bfg.blockStmt(s.Body)
	bfg.finish()

	// Zip iterator setup cost is charged per task by the VM via the
	// spawn's follower count.
	fg.emit(&ir.Instr{
		Op:     ir.OpSpawn,
		Callee: bodyFn,
		Args:   bfg.captureSrc,
		Spawn: &ir.SpawnInfo{
			Kind:      kind,
			Iter:      iterVar,
			NumIdx:    rank,
			Followers: followers,
		},
		Pos: s.ForPos,
	})
}

// iterSource evaluates a loop iterand to a var usable as a spawn
// iteration source (range/domain/array value).
func (fg *fnGen) iterSource(e ast.Expr) *ir.Var {
	t := fg.typeOf(e)
	if t.Kind() == types.Array {
		return fg.genRefBase(e)
	}
	return fg.genExpr(e)
}

// spawnBlock outlines begin/on bodies.
func (fg *fnGen) spawnBlock(kind ir.SpawnKind, body *ast.BlockStmt, target ast.Expr, pos source.Pos) {
	fg.g.outlineCount++
	var name string
	switch kind {
	case ir.SpawnBegin:
		name = fmt.Sprintf("begin_fn_chpl%d", fg.g.outlineCount)
	case ir.SpawnOn:
		name = fmt.Sprintf("on_fn_chpl%d", fg.g.outlineCount)
	default:
		name = fmt.Sprintf("task_fn_chpl%d", fg.g.outlineCount)
	}
	var iterVar *ir.Var
	if target != nil {
		iterVar = fg.genExpr(target)
	}
	bodyFn := fg.g.prog.NewFunc(name, nil, pos)
	bodyFn.Outlined = true
	bodyFn.OutlinedFrom = fg.f
	bfg := newFnGen(fg.g, bodyFn, fg.sym)
	bfg.parent = fg
	bfg.thisVar = fg.thisVar
	bfg.blockStmt(body)
	bfg.finish()
	fg.emit(&ir.Instr{
		Op:     ir.OpSpawn,
		Callee: bodyFn,
		Args:   bfg.captureSrc,
		Spawn:  &ir.SpawnInfo{Kind: kind, Iter: iterVar},
		Pos:    pos,
	})
}

// cobegin outlines each child statement as its own task.
func (fg *fnGen) cobegin(s *ast.CobeginStmt) {
	var first *ir.Func
	var extra []*ir.Func
	var args []*ir.Var
	var extraArgs [][]*ir.Var
	for i, child := range s.Body.Stmts {
		fg.g.outlineCount++
		name := fmt.Sprintf("cobegin_fn_chpl%d", fg.g.outlineCount)
		bodyFn := fg.g.prog.NewFunc(name, nil, s.CoPos)
		bodyFn.Outlined = true
		bodyFn.OutlinedFrom = fg.f
		bfg := newFnGen(fg.g, bodyFn, fg.sym)
		bfg.parent = fg
		bfg.thisVar = fg.thisVar
		bfg.stmt(child)
		bfg.finish()
		if i == 0 {
			first = bodyFn
			args = bfg.captureSrc
		} else {
			extra = append(extra, bodyFn)
			extraArgs = append(extraArgs, bfg.captureSrc)
		}
	}
	if first == nil {
		return
	}
	fg.emit(&ir.Instr{
		Op:     ir.OpSpawn,
		Callee: first,
		Args:   args,
		Spawn:  &ir.SpawnInfo{Kind: ir.SpawnCobegin, Extra: extra, ExtraArgs: extraArgs},
		Pos:    s.CoPos,
	})
}
