package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/postmortem"
	"repro/internal/views"
	"repro/internal/vm"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the scheduler pool (0 = 4).
	Workers int
	// CacheBytes bounds the outcome cache (0 = 256 MiB).
	CacheBytes int64
	// CacheShards is the shard count (0 = 16, rounded up to a power of
	// two).
	CacheShards int
	// MaxSessions bounds retained session metadata; the oldest finished
	// sessions are forgotten beyond it (0 = 4096).
	MaxSessions int
	// DefaultDeadline applies to submissions that set no deadline_ms
	// (0 = none).
	DefaultDeadline time.Duration
	// RankEvery is the sample interval for incremental blame-rank
	// streaming (0 = 2000).
	RankEvery int
}

// Server is the blame-as-a-service front end: sessions, scheduler,
// cache, metrics, and the HTTP handlers tying them together.
type Server struct {
	opts    Options
	cache   *Cache
	sched   *Scheduler
	metrics *Metrics

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // insertion order, for bounded retention
	nextID   uint64
}

// New builds a Server and starts its scheduler workers.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 4096
	}
	s := &Server{
		opts:     opts,
		cache:    NewCache(opts.CacheBytes, opts.CacheShards),
		metrics:  NewMetrics(),
		sessions: make(map[string]*Session),
	}
	s.sched = NewScheduler(opts.Workers, func(req *Request, ctl *RunControl) (*Outcome, error) {
		ctl.RankEvery = opts.RankEvery
		return Execute(req, ctl)
	})
	s.sched.onDone = func(j *job, out *Outcome, err error, wall time.Duration) {
		s.metrics.Executed(wall)
		if err == nil && out != nil && !j.req.NoCache {
			s.cache.Put(j.key, out)
		}
	}
	s.sched.Start()
	return s
}

// Close drains the scheduler.
func (s *Server) Close() { s.sched.Close() }

// Cache exposes the outcome cache (loadtest reporting).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/sessions/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// register adds a session under a fresh ID and prunes old finished
// sessions beyond the retention bound.
func (s *Server) register(sess *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess.ID = fmt.Sprintf("s-%06d", s.nextID)
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	for len(s.sessions) > s.opts.MaxSessions {
		pruned := false
		for i, id := range s.order {
			old := s.sessions[id]
			if old == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
			if old.State().Terminal() {
				delete(s.sessions, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything is still live; let it grow
		}
	}
}

func (s *Server) session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// submitResponse is the POST /v1/submit reply.
type submitResponse struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	Shared bool   `json:"shared,omitempty"`
}

// resultResponse is the full result payload.
type resultResponse struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Cached    bool            `json:"cached"`
	Text      string          `json:"text,omitempty"`
	Output    string          `json:"output,omitempty"`
	Profile   json.RawMessage `json:"profile,omitempty"`
	Stats     *vm.Stats       `json:"stats,omitempty"`
	Threshold uint64          `json:"threshold,omitempty"`
	Samples   int             `json:"samples,omitempty"`
	Error     string          `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("submit")
	req, ok := s.decodeRequest(w, r, "submit")
	if !ok {
		return
	}
	if req.DeadlineMs == 0 && s.opts.DefaultDeadline > 0 {
		req.DeadlineMs = s.opts.DefaultDeadline.Milliseconds()
	}
	sess := newSession("", req)
	s.register(sess)
	go s.watchDone(sess)

	if !req.NoCache {
		if out, hit := s.cache.Get(sess.Key); hit {
			sess.finish(StateDone, out, nil, true)
			s.respondSubmit(w, r, sess)
			return
		}
	}
	s.sched.Submit(sess)
	s.respondSubmit(w, r, sess)
}

// watchDone feeds the per-session end-to-end latency and state counters
// once the session terminates.
func (s *Server) watchDone(sess *Session) {
	<-sess.Done()
	out, _ := sess.Result()
	sess.mu.Lock()
	e2e := sess.finished.Sub(sess.created)
	sess.mu.Unlock()
	s.metrics.SessionDone(sess.State(), out, e2e)
}

func (s *Server) respondSubmit(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-sess.Done():
			s.writeResult(w, r, sess)
		case <-r.Context().Done():
			// Client went away: the session keeps running (it may be
			// shared); nothing to write.
		}
		return
	}
	st := sess.Status()
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: sess.ID, State: st.State, Cached: st.Cached, Shared: st.Shared,
	})
}

// decodeRequest parses and normalizes the JSON request body shared by
// submit and predict.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, endpoint string) (*Request, bool) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, MaxSourceBytes+(64<<10))
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.IncError(endpoint)
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return nil, false
	}
	if err := req.Normalize(); err != nil {
		s.metrics.IncError(endpoint)
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return &req, true
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("sessions")
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if sess := s.session(id); sess != nil {
			out = append(out, sess.Status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("status")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("result")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-sess.Done():
		case <-r.Context().Done():
			return
		}
	}
	if !sess.State().Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("session %s is %s", sess.ID, sess.State()))
		return
	}
	s.writeResult(w, r, sess)
}

func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, sess *Session) {
	out, err := sess.Result()
	switch r.URL.Query().Get("format") {
	case "text":
		if out == nil {
			writeError(w, http.StatusUnprocessableEntity, resultErr(sess, err))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(out.Text))
		return
	case "profile":
		if out == nil || out.ProfileJSON == nil {
			writeError(w, http.StatusUnprocessableEntity, resultErr(sess, err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out.ProfileJSON)
		return
	case "output":
		if out == nil {
			writeError(w, http.StatusUnprocessableEntity, resultErr(sess, err))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(out.Output))
		return
	}
	resp := resultResponse{ID: sess.ID, State: sess.State()}
	sess.mu.Lock()
	resp.Cached = sess.cached
	sess.mu.Unlock()
	if err != nil {
		resp.Error = err.Error()
	}
	if out != nil {
		resp.Text = out.Text
		resp.Output = out.Output
		resp.Profile = json.RawMessage(out.ProfileJSON)
		resp.Stats = &out.Stats
		resp.Threshold = out.Threshold
		resp.Samples = out.Samples
	}
	writeJSON(w, http.StatusOK, resp)
}

func resultErr(sess *Session, err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("session %s (%s) has no result payload", sess.ID, sess.State())
}

// handleStream streams session events as SSE (default) or NDJSON
// (?format=ndjson): phase transitions, sampler progress, incremental
// blame ranks, and a final done event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("stream")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	fl, canFlush := w.(http.Flusher)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)

	ch, cancel := sess.Subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ndjson {
				if enc.Encode(ev) != nil {
					return
				}
			} else {
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
					return
				}
			}
			if canFlush {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("cancel")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	cancelled := sess.Cancel()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": sess.ID, "state": sess.State(), "cancelled": cancelled,
	})
}

// handlePredict runs the static cost engine only — no calibration run,
// no profiled run — so it executes inline (no queue) and still goes
// through the outcome cache.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("predict")
	req, ok := s.decodeRequest(w, r, "predict")
	if !ok {
		return
	}
	if req.View != "static" && req.View != "lint-json" {
		// Submit decoded a default view; predict is execution-free by
		// definition.
		req.View = "static"
	}
	key := req.Key()
	start := time.Now()
	out, hit := (*Outcome)(nil), false
	if !req.NoCache {
		out, hit = s.cache.Get(key)
	}
	if !hit {
		var err error
		out, err = Execute(req, nil)
		if err != nil {
			s.metrics.IncError("predict")
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		if !req.NoCache {
			s.cache.Put(key, out)
		}
		s.metrics.Executed(time.Since(start))
	}
	s.metrics.SessionDone(StateDone, out, time.Since(start))
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(out.Text))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"text": out.Text, "cached": hit, "view": req.View,
	})
}

// diffRequest points at two finished sessions.
type diffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	// Limit bounds the rendered rows (0 = 20).
	Limit int `json:"limit,omitempty"`
}

// handleDiff renders the cross-run blame delta between two finished
// sessions' profiles.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("diff")
	var dreq diffRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&dreq); err != nil {
		s.metrics.IncError("diff")
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return
	}
	if dreq.Limit <= 0 {
		dreq.Limit = 20
	}
	load := func(id string) (*postmortem.Profile, error) {
		sess := s.session(id)
		if sess == nil {
			return nil, fmt.Errorf("no such session %q", id)
		}
		out, err := sess.Result()
		if err != nil {
			return nil, fmt.Errorf("session %s failed: %w", id, err)
		}
		if out == nil || out.ProfileJSON == nil {
			return nil, fmt.Errorf("session %s (%s) has no profile", id, sess.State())
		}
		return postmortem.ReadJSON(bytes.NewReader(out.ProfileJSON))
	}
	pa, err := load(dreq.A)
	if err != nil {
		s.metrics.IncError("diff")
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	pb, err := load(dreq.B)
	if err != nil {
		s.metrics.IncError("diff")
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	rows := postmortem.Diff(pa, pb)
	writeJSON(w, http.StatusOK, map[string]any{
		"a": dreq.A, "b": dreq.B,
		"text": views.Diff(rows, dreq.Limit),
		"rows": rows,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cache, sched := s.cache.Stats(), s.sched.Stats()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.metrics.Snapshot(cache, sched))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(s.metrics.Render(cache, sched)))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "sessions": n})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
