package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/postmortem"
	"repro/internal/views"
	"repro/internal/vm"
)

// RunFunc executes one normalized request (the scheduler's work
// function). The default is Execute; cmd/blamed substitutes the runner
// supervisor's ServeRun for the compiled backend.
type RunFunc func(*Request, *RunControl) (*Outcome, error)

// Options configures a Server.
type Options struct {
	// Workers sizes the scheduler pool (0 = 4).
	Workers int
	// CacheBytes bounds the outcome cache (0 = 256 MiB).
	CacheBytes int64
	// CacheShards is the shard count (0 = 16, rounded up to a power of
	// two).
	CacheShards int
	// MaxSessions bounds retained session metadata; the oldest finished
	// sessions are forgotten beyond it (0 = 4096).
	MaxSessions int
	// DefaultDeadline applies to submissions that set no deadline_ms
	// (0 = none).
	DefaultDeadline time.Duration
	// RankEvery is the sample interval for incremental blame-rank
	// streaming (0 = 2000).
	RankEvery int
	// Run substitutes the pipeline execution function (nil = Execute).
	Run RunFunc
	// MaxQueue bounds distinct queued jobs; beyond it new submissions
	// are shed with a 503 (0 = unbounded).
	MaxQueue int
	// Journal is the path of the append-only outcome journal; outcomes
	// are replayed into the cache at boot and appended as they are
	// produced ("" = disabled).
	Journal string
	// AuxMetrics supplies extra gauges for /metrics (rendered as
	// blamed_<key>, sorted); nil = none.
	AuxMetrics func() map[string]float64
}

// Server is the blame-as-a-service front end: sessions, scheduler,
// cache, metrics, and the HTTP handlers tying them together.
type Server struct {
	opts    Options
	cache   *Cache
	sched   *Scheduler
	metrics *Metrics
	journal *Journal

	// draining rejects new submissions (503 + Retry-After) while
	// in-flight sessions finish; set by BeginDrain/Shutdown.
	draining atomic.Bool

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // insertion order, for bounded retention
	nextID   uint64
}

// New builds a Server and starts its scheduler workers. If a journal is
// configured, every intact record is replayed into the outcome cache
// first, so the server boots warm; a journal that cannot be opened is
// reported on stderr and disabled rather than failing the boot.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 4096
	}
	run := opts.Run
	if run == nil {
		run = Execute
	}
	s := &Server{
		opts:     opts,
		cache:    NewCache(opts.CacheBytes, opts.CacheShards),
		metrics:  NewMetrics(),
		sessions: make(map[string]*Session),
	}
	if opts.Journal != "" {
		j, err := OpenJournal(opts.Journal, func(key string, out *Outcome) {
			s.cache.Put(key, out)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: outcome journal disabled: %v\n", err)
		} else {
			s.journal = j
		}
	}
	s.sched = NewScheduler(opts.Workers, func(req *Request, ctl *RunControl) (*Outcome, error) {
		ctl.RankEvery = opts.RankEvery
		return run(req, ctl)
	})
	s.sched.SetMaxQueue(opts.MaxQueue)
	s.sched.onDone = func(j *job, out *Outcome, err error, wall time.Duration) {
		s.metrics.Executed(wall)
		if err == nil && out != nil && !j.req.NoCache {
			s.putOutcome(j.key, out)
		}
	}
	s.sched.Start()
	return s
}

// putOutcome inserts into the cache and appends to the journal (the
// journal is the cache's durable shadow: same key, same bytes).
func (s *Server) putOutcome(key string, out *Outcome) {
	s.cache.Put(key, out)
	if err := s.journal.Append(key, out); err != nil {
		fmt.Fprintf(os.Stderr, "serve: journal append: %v\n", err)
	}
}

// BeginDrain flips the server into drain mode: new submissions get 503
// + Retry-After while everything already admitted keeps running.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether the server is refusing new submissions.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown is the ordered graceful stop: (1) drain — refuse new
// submissions, (2) close the scheduler — queued and running jobs finish
// and their sessions terminate, (3) flush and close the outcome
// journal. The context bounds the scheduler drain; on expiry the
// journal is still flushed before returning the context's error.
//
// The caller sequences the HTTP listener around this: stop accepting
// connections and let in-flight handlers (which may be streaming
// sessions the scheduler is still executing) complete between (1) and
// (2) — see cmd/blamed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.sched.Close()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if jerr := s.journal.Close(); err == nil {
		err = jerr
	}
	return err
}

// Close drains the scheduler and closes the journal (Shutdown without
// a deadline).
func (s *Server) Close() {
	s.BeginDrain()
	s.sched.Close()
	s.journal.Close()
}

// Cache exposes the outcome cache (loadtest reporting).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/sessions/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// register adds a session under a fresh ID and prunes old finished
// sessions beyond the retention bound.
func (s *Server) register(sess *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess.ID = fmt.Sprintf("s-%06d", s.nextID)
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	for len(s.sessions) > s.opts.MaxSessions {
		pruned := false
		for i, id := range s.order {
			old := s.sessions[id]
			if old == nil {
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
			if old.State().Terminal() {
				delete(s.sessions, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything is still live; let it grow
		}
	}
}

func (s *Server) session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// submitResponse is the POST /v1/submit reply.
type submitResponse struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Cached bool   `json:"cached"`
	Shared bool   `json:"shared,omitempty"`
}

// resultResponse is the full result payload.
type resultResponse struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Cached    bool            `json:"cached"`
	Text      string          `json:"text,omitempty"`
	Output    string          `json:"output,omitempty"`
	Profile   json.RawMessage `json:"profile,omitempty"`
	Stats     *vm.Stats       `json:"stats,omitempty"`
	Threshold uint64          `json:"threshold,omitempty"`
	Samples   int             `json:"samples,omitempty"`
	Error     string          `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("submit")
	req, ok := s.decodeRequest(w, r, "submit")
	if !ok {
		return
	}
	if req.DeadlineMs == 0 && s.opts.DefaultDeadline > 0 {
		req.DeadlineMs = s.opts.DefaultDeadline.Milliseconds()
	}
	if s.draining.Load() {
		s.metrics.Shed("draining")
		s.metrics.IncError("submit")
		w.Header().Set("Retry-After", "5")
		writeAPIError(w, http.StatusServiceUnavailable, "draining",
			"server is draining; retry against a fresh instance")
		return
	}
	sess := newSession("", req)
	s.register(sess)
	go s.watchDone(sess)

	if !req.NoCache {
		if out, hit := s.cache.Get(sess.Key); hit {
			sess.finish(StateDone, out, nil, true)
			s.respondSubmit(w, r, sess)
			return
		}
	}
	if err := s.sched.Submit(sess); err != nil {
		// The session is already finished with err; report why it was
		// refused. Both causes are transient capacity conditions → 503.
		s.metrics.IncError("submit")
		w.Header().Set("Retry-After", "1")
		if errors.Is(err, errQueueFull) {
			s.metrics.Shed("queue_full")
			writeAPIError(w, http.StatusServiceUnavailable, "overloaded", err.Error())
		} else {
			s.metrics.Shed("closed")
			writeAPIError(w, http.StatusServiceUnavailable, "draining", err.Error())
		}
		return
	}
	s.respondSubmit(w, r, sess)
}

// watchDone feeds the per-session end-to-end latency and state counters
// once the session terminates.
func (s *Server) watchDone(sess *Session) {
	<-sess.Done()
	out, _ := sess.Result()
	sess.mu.Lock()
	e2e := sess.finished.Sub(sess.created)
	sess.mu.Unlock()
	s.metrics.SessionDone(sess.State(), out, e2e)
}

func (s *Server) respondSubmit(w http.ResponseWriter, r *http.Request, sess *Session) {
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-sess.Done():
			s.writeResult(w, r, sess)
		case <-r.Context().Done():
			// Client went away: the session keeps running (it may be
			// shared); nothing to write.
		}
		return
	}
	st := sess.Status()
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: sess.ID, State: st.State, Cached: st.Cached, Shared: st.Shared,
	})
}

// decodeRequest parses and normalizes the JSON request body shared by
// submit and predict.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, endpoint string) (*Request, bool) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, MaxSourceBytes+(64<<10))
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.IncError(endpoint)
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return nil, false
	}
	if err := req.Normalize(); err != nil {
		s.metrics.IncError(endpoint)
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return &req, true
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("sessions")
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if sess := s.session(id); sess != nil {
			out = append(out, sess.Status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("status")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("result")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-sess.Done():
		case <-r.Context().Done():
			return
		}
	}
	if !sess.State().Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("session %s is %s", sess.ID, sess.State()))
		return
	}
	s.writeResult(w, r, sess)
}

func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, sess *Session) {
	out, err := sess.Result()
	switch r.URL.Query().Get("format") {
	case "text":
		if out == nil {
			writeError(w, http.StatusUnprocessableEntity, resultErr(sess, err))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(out.Text))
		return
	case "profile":
		if out == nil || out.ProfileJSON == nil {
			writeError(w, http.StatusUnprocessableEntity, resultErr(sess, err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out.ProfileJSON)
		return
	case "output":
		if out == nil {
			writeError(w, http.StatusUnprocessableEntity, resultErr(sess, err))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(out.Output))
		return
	}
	resp := resultResponse{ID: sess.ID, State: sess.State()}
	sess.mu.Lock()
	resp.Cached = sess.cached
	sess.mu.Unlock()
	if err != nil {
		resp.Error = err.Error()
	}
	if out != nil {
		resp.Text = out.Text
		resp.Output = out.Output
		resp.Profile = json.RawMessage(out.ProfileJSON)
		resp.Stats = &out.Stats
		resp.Threshold = out.Threshold
		resp.Samples = out.Samples
	}
	writeJSON(w, http.StatusOK, resp)
}

func resultErr(sess *Session, err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("session %s (%s) has no result payload", sess.ID, sess.State())
}

// handleStream streams session events as SSE (default) or NDJSON
// (?format=ndjson): phase transitions, sampler progress, incremental
// blame ranks, and a final done event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("stream")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	fl, canFlush := w.(http.Flusher)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)

	ch, cancel := sess.Subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ndjson {
				if enc.Encode(ev) != nil {
					return
				}
			} else {
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
					return
				}
			}
			if canFlush {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("cancel")
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such session"))
		return
	}
	cancelled := sess.Cancel()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": sess.ID, "state": sess.State(), "cancelled": cancelled,
	})
}

// handlePredict runs the static cost engine only — no calibration run,
// no profiled run — so it executes inline (no queue) and still goes
// through the outcome cache.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("predict")
	req, ok := s.decodeRequest(w, r, "predict")
	if !ok {
		return
	}
	if req.View != "static" && req.View != "lint-json" {
		// Submit decoded a default view; predict is execution-free by
		// definition.
		req.View = "static"
	}
	key := req.Key()
	start := time.Now()
	out, hit := (*Outcome)(nil), false
	if !req.NoCache {
		out, hit = s.cache.Get(key)
	}
	if !hit {
		var err error
		out, err = Execute(req, nil)
		if err != nil {
			s.metrics.IncError("predict")
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		if !req.NoCache {
			s.putOutcome(key, out)
		}
		s.metrics.Executed(time.Since(start))
	}
	s.metrics.SessionDone(StateDone, out, time.Since(start))
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(out.Text))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"text": out.Text, "cached": hit, "view": req.View,
	})
}

// diffRequest points at two finished sessions.
type diffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	// Limit bounds the rendered rows (0 = 20).
	Limit int `json:"limit,omitempty"`
}

// handleDiff renders the cross-run blame delta between two finished
// sessions' profiles.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("diff")
	var dreq diffRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&dreq); err != nil {
		s.metrics.IncError("diff")
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return
	}
	if dreq.Limit <= 0 {
		dreq.Limit = 20
	}
	load := func(id string) (*postmortem.Profile, error) {
		sess := s.session(id)
		if sess == nil {
			return nil, fmt.Errorf("no such session %q", id)
		}
		out, err := sess.Result()
		if err != nil {
			return nil, fmt.Errorf("session %s failed: %w", id, err)
		}
		if out == nil || out.ProfileJSON == nil {
			return nil, fmt.Errorf("session %s (%s) has no profile", id, sess.State())
		}
		return postmortem.ReadJSON(bytes.NewReader(out.ProfileJSON))
	}
	pa, err := load(dreq.A)
	if err != nil {
		s.metrics.IncError("diff")
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	pb, err := load(dreq.B)
	if err != nil {
		s.metrics.IncError("diff")
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	rows := postmortem.Diff(pa, pb)
	writeJSON(w, http.StatusOK, map[string]any{
		"a": dreq.A, "b": dreq.B,
		"text": views.Diff(rows, dreq.Limit),
		"rows": rows,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cache, sched := s.cache.Stats(), s.sched.Stats()
	aux := MetricsAux{Draining: s.draining.Load(), Journal: s.journal.Stats()}
	if s.opts.AuxMetrics != nil {
		aux.Extra = s.opts.AuxMetrics()
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.metrics.Snapshot(cache, sched, aux))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(s.metrics.Render(cache, sched, aux)))
}

// handleHealth is liveness: the process is up and serving HTTP. It
// stays 200 through a drain — a draining server is alive, just not
// accepting new work (that distinction is /readyz's job).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "sessions": n})
}

// handleReady is readiness: 200 only while the server accepts new
// submissions (not draining, scheduler open). Load balancers and the
// loadtest harness poll this before sending traffic.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	accepting := s.sched.Accepting()
	if draining || !accepting {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "draining": draining, "accepting": accepting,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the uniform error envelope every endpoint returns:
//
//	{"error": {"code": "<machine-readable>", "message": "<human-readable>"}}
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// codeForStatus maps an HTTP status to the default machine-readable
// error code; handlers that need a more specific code (drain/shed) use
// writeAPIError directly.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeAPIError(w, code, codeForStatus(code), err.Error())
}

func writeAPIError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, apiError{Error: apiErrorBody{Code: code, Message: message}})
}
