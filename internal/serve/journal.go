package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The outcome journal is an append-only on-disk log of every outcome
// the server caches, so a restarted daemon starts warm instead of cold.
// Each record is one CRC-framed JSON payload:
//
//	[4B magic "BJL1"] [4B payload length, LE] [4B CRC-32 (IEEE) of payload] [payload]
//
// Appends are unbuffered — one write syscall per record — so at SIGKILL
// granularity the file holds some prefix of complete frames plus at
// most one torn tail. Replay stops at the first bad frame (bad magic,
// implausible length, short payload, CRC mismatch) and truncates the
// file there, so subsequent appends never land after garbage. Records
// are content-keyed by Request.Key(): replaying a record restores
// exactly the cache entry the original execution produced, byte for
// byte, which is what the crash harness pins.

const (
	journalMagic     = 0x314c4a42 // "BJL1" little-endian
	journalHeaderLen = 12
	// maxJournalRecord bounds a frame's claimed payload length; anything
	// larger is corruption (outcomes are cache-bounded well below this).
	maxJournalRecord = 1 << 30
)

// journalRecord is the persisted form of one cache insertion. Profile
// is carried separately because Outcome.ProfileJSON is excluded from
// the envelope (json:"-") everywhere else in the protocol.
type journalRecord struct {
	Key     string          `json:"key"`
	Outcome *Outcome        `json:"outcome"`
	Profile json.RawMessage `json:"profile,omitempty"`
}

// JournalStats is the journal's observable state.
type JournalStats struct {
	Enabled   bool   `json:"enabled"`
	Path      string `json:"path,omitempty"`
	Appended  uint64 `json:"appended,omitempty"`
	Replayed  uint64 `json:"replayed,omitempty"`
	Truncated uint64 `json:"truncated_bytes,omitempty"`
	Bytes     int64  `json:"bytes,omitempty"`
}

// Journal is the append-only outcome log. Safe for concurrent use.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	appended  uint64
	replayed  uint64
	truncated uint64
	bytes     int64
}

// OpenJournal opens (creating if needed) the journal at path, replays
// every intact record into restore, truncates any torn tail, and leaves
// the file positioned for appends.
func OpenJournal(path string, restore func(key string, out *Outcome)) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path}
	if err := j.replay(restore); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans frames from the start, feeding intact records to restore
// and truncating the file at the first damaged frame.
func (j *Journal) replay(restore func(string, *Outcome)) error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	fi, err := j.f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	var off int64
	hdr := make([]byte, journalHeaderLen)
	for {
		if size-off < journalHeaderLen {
			break
		}
		if _, err := io.ReadFull(j.f, hdr); err != nil {
			break
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != journalMagic {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(n) > maxJournalRecord || size-off-journalHeaderLen < int64(n) {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[8:12]) {
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		off += journalHeaderLen + int64(n)
		if rec.Outcome != nil && rec.Key != "" {
			rec.Outcome.ProfileJSON = rec.Profile
			j.replayed++
			if restore != nil {
				restore(rec.Key, rec.Outcome)
			}
		}
	}
	if off < size {
		j.truncated = uint64(size - off)
		if err := j.f.Truncate(off); err != nil {
			return fmt.Errorf("truncating damaged journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	j.bytes = off
	return nil
}

// Append persists one cache insertion: a single unbuffered write, so a
// crash can tear at most the final record (which replay drops).
func (j *Journal) Append(key string, out *Outcome) error {
	if j == nil {
		return nil
	}
	payload, err := json.Marshal(&journalRecord{Key: key, Outcome: out, Profile: out.ProfileJSON})
	if err != nil {
		return err
	}
	frame := make([]byte, journalHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], journalMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[journalHeaderLen:], payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil // closed: drop silently (shutdown race)
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	j.appended++
	j.bytes += int64(len(frame))
	return nil
}

// Stats snapshots the journal counters; safe on a nil journal (reports
// Enabled: false).
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Enabled:   true,
		Path:      j.path,
		Appended:  j.appended,
		Replayed:  j.replayed,
		Truncated: j.truncated,
		Bytes:     j.bytes,
	}
}

// Close syncs and closes the file; later Appends become no-ops.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
