package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vm"
)

// stubReq builds a unique minimal request (the scheduler never executes
// it in these tests; only its Key and Priority matter).
func stubReq(tag string, prio int) *Request {
	return &Request{Source: "stub:" + tag, Name: tag, View: "data", Priority: prio}
}

func waitDone(t *testing.T, sess *Session) {
	t.Helper()
	select {
	case <-sess.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("session %s (%s) never terminated", sess.ID, sess.State())
	}
}

// TestSchedulerPriorityOrdering preloads the queue before starting any
// worker: jobs must run highest priority first, FIFO within a class.
func TestSchedulerPriorityOrdering(t *testing.T) {
	var mu sync.Mutex
	var order []string
	s := NewScheduler(1, func(req *Request, ctl *RunControl) (*Outcome, error) {
		mu.Lock()
		order = append(order, req.Name)
		mu.Unlock()
		return &Outcome{Text: req.Name}, nil
	})

	// Submission order: low, high, mid, and a second low (FIFO tiebreak).
	reqs := []*Request{
		stubReq("low-a", 0), stubReq("high", 9), stubReq("mid", 5), stubReq("low-b", 0),
	}
	sessions := make([]*Session, len(reqs))
	for i, r := range reqs {
		sessions[i] = newSession(fmt.Sprintf("s%d", i), r)
		s.Submit(sessions[i])
	}
	s.Start()
	for _, sess := range sessions {
		waitDone(t, sess)
	}
	s.Close()

	want := []string{"high", "mid", "low-a", "low-b"}
	if len(order) != len(want) {
		t.Fatalf("ran %d jobs, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestSchedulerCoalescing: N identical submissions become one pipeline
// execution whose outcome fans out to every session.
func TestSchedulerCoalescing(t *testing.T) {
	var executions int
	var mu sync.Mutex
	s := NewScheduler(1, func(req *Request, ctl *RunControl) (*Outcome, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return &Outcome{Text: "shared"}, nil
	})

	const n = 6
	sessions := make([]*Session, n)
	for i := range sessions {
		sessions[i] = newSession(fmt.Sprintf("s%d", i), stubReq("same", 0))
		s.Submit(sessions[i])
	}
	s.Start()
	var first *Outcome
	for i, sess := range sessions {
		waitDone(t, sess)
		out, err := sess.Result()
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if first == nil {
			first = out
		} else if out != first {
			t.Fatalf("session %d got a different *Outcome than session 0", i)
		}
		if i > 0 && !sess.Status().Shared {
			t.Fatalf("session %d did not report shared", i)
		}
	}
	s.Close()

	if executions != 1 {
		t.Fatalf("%d identical submissions ran %d times, want 1", n, executions)
	}
	st := s.Stats()
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
	if st.Executed != 1 {
		t.Fatalf("executed = %d, want 1", st.Executed)
	}
}

// TestSchedulerDeadlineExpiry: a queued session whose deadline passes
// while an earlier job hogs the only worker expires without running.
func TestSchedulerDeadlineExpiry(t *testing.T) {
	release := make(chan struct{})
	s := NewScheduler(1, func(req *Request, ctl *RunControl) (*Outcome, error) {
		if req.Name == "blocker" {
			<-release
		}
		return &Outcome{Text: req.Name}, nil
	})
	s.Start()
	defer s.Close()

	blocker := newSession("blocker", stubReq("blocker", 0))
	s.Submit(blocker)

	victimReq := stubReq("victim", 0)
	victimReq.DeadlineMs = 30
	victim := newSession("victim", victimReq)
	s.Submit(victim)

	waitDone(t, victim)
	if st := victim.State(); st != StateExpired {
		t.Fatalf("victim state = %s, want %s", st, StateExpired)
	}
	if _, err := victim.Result(); !errors.Is(err, errDeadline) {
		t.Fatalf("victim error = %v, want %v", err, errDeadline)
	}

	close(release)
	waitDone(t, blocker)
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	// The victim's job must have been dropped from the queue, not run.
	if out, _ := victim.Result(); out != nil {
		t.Fatal("expired session still received an outcome")
	}
}

// TestSchedulerCancelMidRun: cancelling the only session of a running
// job flips the job's cancel flag, which the run function (in
// production: the VM quantum loop) observes.
func TestSchedulerCancelMidRun(t *testing.T) {
	started := make(chan struct{})
	s := NewScheduler(1, func(req *Request, ctl *RunControl) (*Outcome, error) {
		if req.Name != "long" {
			return &Outcome{Text: req.Name}, nil
		}
		close(started)
		for i := 0; i < 500; i++ {
			if ctl.Cancel.Load() {
				return nil, errors.New(vm.ErrCancelled)
			}
			time.Sleep(5 * time.Millisecond)
		}
		return nil, errors.New("cancel flag never set")
	})
	s.Start()
	defer s.Close()

	sess := newSession("victim", stubReq("long", 0))
	s.Submit(sess)
	<-started
	if !sess.Cancel() {
		t.Fatal("Cancel returned false on a running session")
	}
	if st := sess.State(); st != StateCancelled {
		t.Fatalf("state = %s, want %s", st, StateCancelled)
	}

	// The worker must come back (the stub returns once it sees the flag)
	// and be available for new work.
	probe := newSession("probe", stubReq("probe", 0))
	s.Submit(probe)
	waitDone(t, probe)
	if out, err := probe.Result(); err != nil || out == nil {
		t.Fatalf("worker unavailable after cancel: out=%v err=%v", out, err)
	}
}

// TestSchedulerCancelSharedKeepsRunning: cancelling one of two coalesced
// sessions must NOT cancel the shared job — the survivor still gets its
// result.
func TestSchedulerCancelSharedKeepsRunning(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := NewScheduler(1, func(req *Request, ctl *RunControl) (*Outcome, error) {
		close(started)
		<-release
		if ctl.Cancel.Load() {
			return nil, errors.New(vm.ErrCancelled)
		}
		return &Outcome{Text: "survived"}, nil
	})

	a := newSession("a", stubReq("shared", 0))
	b := newSession("b", stubReq("shared", 0))
	s.Submit(a)
	s.Submit(b)
	s.Start()
	defer s.Close()

	<-started
	a.Cancel()
	close(release)
	waitDone(t, b)
	out, err := b.Result()
	if err != nil {
		t.Fatalf("survivor failed: %v", err)
	}
	if out == nil || out.Text != "survived" {
		t.Fatalf("survivor outcome = %+v", out)
	}
}

// TestExecuteCancelMidRun drives the real pipeline: the VM's quantum
// loop must observe the cancellation flag and abort a long run.
func TestExecuteCancelMidRun(t *testing.T) {
	req := &Request{Bench: "halo", Configs: map[string]string{"n": "2048", "reps": "64"}}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	ctl := &RunControl{Cancel: new(atomic.Bool)}
	errc := make(chan error, 1)
	go func() {
		_, err := Execute(req, ctl)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	ctl.Cancel.Store(true)
	select {
	case err := <-errc:
		if err == nil {
			// The run legitimately finished before the flag was set on a
			// fast machine; nothing to assert.
			t.Skip("run finished before cancellation")
		}
		if !strings.Contains(err.Error(), vm.ErrCancelled) {
			t.Fatalf("error = %v, want it to contain %q", err, vm.ErrCancelled)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}
