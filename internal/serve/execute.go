package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/analyze"
	"repro/internal/analyze/cost"
	"repro/internal/blame"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hpctk"
	"repro/internal/sampler"
	"repro/internal/views"
	"repro/internal/vm"
)

// Event is one streaming progress record of a profiling session.
type Event struct {
	Type    string    `json:"type"` // phase | progress | ranks | done
	Phase   string    `json:"phase,omitempty"`
	Samples int       `json:"samples,omitempty"`
	Cycles  uint64    `json:"cycles,omitempty"`
	Ranks   []RankRow `json:"ranks,omitempty"`
	Session string    `json:"session,omitempty"`
	State   string    `json:"state,omitempty"`
	Err     string    `json:"error,omitempty"`
}

// RankRow is one entry of an incremental data-centric blame ranking,
// computed mid-run from the samples observed so far.
type RankRow struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	Blame   float64 `json:"blame"`
}

// RunControl carries the scheduler's hooks into one pipeline execution.
// All fields are optional; Execute(req, nil) runs uncontrolled, exactly
// like the CLI.
type RunControl struct {
	// Cancel aborts the run at the next VM scheduling quantum once set.
	Cancel *atomic.Bool
	// Emit receives streaming events. It is called from the pipeline
	// goroutine and must not block.
	Emit func(Event)
	// RankEvery is the sample interval between incremental blame-rank
	// snapshots (0 = default 2000).
	RankEvery int
}

func (c *RunControl) emit(ev Event) {
	if c != nil && c.Emit != nil {
		c.Emit(ev)
	}
}

func (c *RunControl) cancelled() bool {
	return c != nil && c.Cancel != nil && c.Cancel.Load()
}

// Outcome is everything one profiling request produces. For a given
// normalized Request it is deterministic down to the byte (the VM is a
// fixed-scheduler simulator), which is what makes whole outcomes
// content-addressable in the server cache.
type Outcome struct {
	// Text is exactly what cmd/blame prints to stdout for the equivalent
	// flag set.
	Text string `json:"text"`
	// ProfileJSON is the stable profile serialization
	// (postmortem.Profile.WriteJSON); nil for the execution-free views
	// (static, lint-json).
	ProfileJSON []byte `json:"-"`
	// Output is the profiled program's own stdout (writeln output). The
	// CLI discards it; the server keeps it so chaos studies can pin that
	// faults never change program output.
	Output string `json:"output,omitempty"`
	// Stats are the run's VM statistics (zero for execution-free views).
	Stats vm.Stats `json:"stats"`
	// Threshold is the PMU threshold used (after auto-scaling).
	Threshold uint64 `json:"threshold,omitempty"`
	// Samples is the profile's sample count.
	Samples int `json:"samples,omitempty"`
}

// sizeBytes approximates the outcome's memory footprint for cache
// accounting.
func (o *Outcome) sizeBytes() int64 {
	return int64(len(o.Text) + len(o.ProfileJSON) + len(o.Output) + 512)
}

// Execute runs one normalized request through the full pipeline and
// renders it. cmd/blame calls this with ctl == nil; the server calls it
// from scheduler workers with cancellation, deadline and streaming
// hooks attached. The logic — calibration before the fault injector is
// armed, the view switch, per-locale rendering — matches the historical
// CLI behaviour exactly, which is what the HTTP-vs-CLI golden test
// pins.
func Execute(req *Request, ctl *RunControl) (*Outcome, error) {
	if req.View == "" { // allow callers that skipped Normalize
		if err := req.Normalize(); err != nil {
			return nil, err
		}
	}
	if ctl.cancelled() {
		return nil, errors.New(vm.ErrCancelled)
	}
	lim := req.Limit
	if lim < 0 {
		lim = 0 // -1 in the schema means unlimited; the views use 0 for that
	}

	ctl.emit(Event{Type: "phase", Phase: "compile"})
	res, err := compile.SourceCached(req.Name, req.Source, compile.Options{})
	if err != nil {
		return nil, err
	}

	if req.View == "lint-json" {
		ctl.emit(Event{Type: "phase", Phase: "analyze"})
		var buf bytes.Buffer
		if err := analyze.Run(res.Prog).WriteJSON(&buf); err != nil {
			return nil, err
		}
		return &Outcome{Text: buf.String()}, nil
	}

	var progOut bytes.Buffer
	cfg := blame.DefaultConfig()
	cfg.VM.NumCores = req.Cores
	cfg.VM.NumLocales = req.Locales
	cfg.VM.Stdout = &progOut
	cfg.VM.MaxCycles = 10_000_000_000
	cfg.VM.Configs = req.Configs
	cfg.Skid = req.Skid
	cfg.PerLocale = req.PerLocale
	cfg.Core = core.Options{
		ImplicitTransfer: !req.NoImplicit,
		Interprocedural:  !req.NoInterproc,
		LineGranularity:  req.Lines,
		TrackPaths:       true,
	}
	cfg.VM.NoOwnerComputes = req.NoOwnerComputes
	if req.CommAggregate {
		cfg.VM.CommAggregate = true
		cfg.VM.CommCacheCap = req.CommCache
		cfg.VM.CommInspector = req.CommInspector
	}
	if req.CommAggregate || req.Locales > 1 {
		// The plan also powers the owner-computes violation counter, so
		// derive it for any multi-locale run, not just aggregated ones.
		cfg.VM.CommPlan = analyze.CommPlan(res.Prog)
	}
	if ctl != nil {
		cfg.VM.Cancel = ctl.Cancel
	}

	if req.View == "static" {
		// Predict without executing anything: no calibration run, no
		// profiled run.
		ctl.emit(Event{Type: "phase", Phase: "predict"})
		opts := cost.DefaultOptions()
		opts.VM = cfg.VM
		opts.Core = cfg.Core
		pred := cost.Predict(res.Prog, opts)
		text := views.Predicted(pred, lim)
		if req.Lint {
			text += "\n" + analyze.Run(res.Prog).Text()
		}
		return &Outcome{Text: text}, nil
	}

	if req.Threshold != 0 {
		cfg.Threshold = req.Threshold
	} else {
		// Auto-scale: one calibration run, then target a few thousand
		// samples (the paper's fixed large prime assumes multi-second
		// wall times).
		ctl.emit(Event{Type: "phase", Phase: "calibrate"})
		st, err := vm.New(res.Prog, cfg.VM).Run()
		if err != nil {
			return nil, err
		}
		progOut.Reset() // the profiled run re-prints everything
		th := st.TotalCycles / 4001
		if th < 101 {
			th = 101
		}
		cfg.Threshold = th | 1
	}
	// The injector is attached after the calibration run: the calibration
	// must not consume PRNG draws, or the profiled run's fault schedule
	// would depend on whether an explicit threshold was given.
	if req.FaultSpec != "" {
		spec, err := fault.ParseSpec(req.FaultSpec)
		if err != nil {
			return nil, err
		}
		cfg.VM.Fault = fault.NewInjector(spec, req.FaultSeed)
	}
	cfg.SampleBuffer = req.SampleBuffer
	if ctl != nil && (ctl.Emit != nil) {
		rankEvery := ctl.RankEvery
		if rankEvery <= 0 {
			rankEvery = 2000
		}
		threshold := cfg.Threshold
		emit := ctl.Emit
		cfg.Wrap = func(smp *sampler.Sampler, analysis *core.Analysis) vm.Listener {
			return newMonitor(res.Prog, analysis, smp, threshold, rankEvery, emit)
		}
	}

	ctl.emit(Event{Type: "phase", Phase: "run"})
	r, err := blame.Profile(res.Prog, cfg)
	if err != nil {
		return nil, err
	}
	prof := r.Profile
	ctl.emit(Event{Type: "phase", Phase: "render", Samples: prof.TotalSamples, Cycles: r.Stats.TotalCycles})

	var text strings.Builder
	if req.Lint {
		rep := analyze.Run(res.Prog)
		text.WriteString(rep.Text())
		text.WriteString("\n")
		opts := cost.DefaultOptions()
		opts.VM = cfg.VM
		opts.Core = cfg.Core
		text.WriteString(views.Advisor(prof, rep, cost.Predict(res.Prog, opts), lim))
	} else {
		switch req.View {
		case "data":
			text.WriteString(views.DataCentric(prof, lim))
		case "code":
			text.WriteString(views.CodeCentric(prof, lim))
		case "hybrid":
			text.WriteString(views.Hybrid(prof, lim))
		case "baseline":
			text.WriteString(views.Baseline(hpctk.Attribute(r.Sampler.Samples, r.Sampler.Allocs), lim))
		case "comm":
			text.WriteString(views.CommCentric(r.CommBlame(), lim))
		case "all":
			text.WriteString(views.DataCentric(prof, lim))
			text.WriteString("\n")
			text.WriteString(views.CodeCentric(prof, lim))
			text.WriteString("\n")
			text.WriteString(views.Hybrid(prof, lim))
			text.WriteString("\n")
			text.WriteString(views.Baseline(hpctk.Attribute(r.Sampler.Samples, r.Sampler.Allocs), lim))
			text.WriteString("\n")
			text.WriteString(views.Overhead(prof, r.Sampler.StackWalks, r.Sampler.DataSetBytes(), cfg.VM.ClockHz))
		}
	}
	if !req.Lint && req.PerLocale && prof.PerLocale != nil {
		// Locale order is pinned (the CLI historically ranged over the
		// map): deterministic bytes are what make outcomes cacheable.
		locs := make([]int, 0, len(prof.PerLocale))
		for loc := range prof.PerLocale {
			locs = append(locs, loc)
		}
		sort.Ints(locs)
		for _, loc := range locs {
			fmt.Fprintf(&text, "\n--- locale %d ---\n", loc)
			text.WriteString(views.DataCentric(prof.PerLocale[loc], lim))
		}
	}

	var profJSON bytes.Buffer
	if err := prof.WriteJSON(&profJSON); err != nil {
		return nil, err
	}
	return &Outcome{
		Text:        text.String(),
		ProfileJSON: profJSON.Bytes(),
		Output:      progOut.String(),
		Stats:       r.Stats,
		Threshold:   cfg.Threshold,
		Samples:     prof.TotalSamples,
	}, nil
}
