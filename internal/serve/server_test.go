package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/vm"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSubmitWaitServesAndCaches: the basic round trip, then a repeat
// submission served straight from the outcome cache.
func TestSubmitWaitServesAndCaches(t *testing.T) {
	_, ts := testServer(t)
	req := Request{Bench: "fig1"}

	resp := postJSON(t, ts.URL+"/v1/submit?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	first := decode[resultResponse](t, resp)
	if first.State != StateDone || first.Text == "" {
		t.Fatalf("first result: state=%s text=%d bytes", first.State, len(first.Text))
	}
	if first.Cached {
		t.Fatal("first submission claims a cache hit")
	}

	second := decode[resultResponse](t, postJSON(t, ts.URL+"/v1/submit?wait=1", req))
	if !second.Cached {
		t.Fatal("identical resubmission missed the cache")
	}
	if second.Text != first.Text {
		t.Fatal("cached text differs from the executed text")
	}

	// Status and listing endpoints know both sessions.
	st := decode[Status](t, mustGet(t, ts.URL+"/v1/sessions/"+first.ID))
	if st.State != StateDone {
		t.Fatalf("status state = %s", st.State)
	}
	list := decode[[]Status](t, mustGet(t, ts.URL+"/v1/sessions"))
	if len(list) != 2 {
		t.Fatalf("listed %d sessions, want 2", len(list))
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGoldenHTTPMatchesCLI pins the acceptance criterion: the profile
// fetched over HTTP is byte-identical to what cmd/blame prints (both are
// serve.Execute), for the text view and the JSON profile, on first
// execution AND on the cache-hit path.
func TestGoldenHTTPMatchesCLI(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []Request{
		{Bench: "fig1"},
		{Bench: "fig1", View: "all"},
		{Bench: "halo", Locales: 2, View: "comm", CommAggregate: true},
		{Bench: "wavefront", Lint: true},
	} {
		cli := tc // Normalize mutates
		if err := cli.Normalize(); err != nil {
			t.Fatal(err)
		}
		want, err := Execute(&cli, nil)
		if err != nil {
			t.Fatal(err)
		}

		for round := 0; round < 2; round++ { // miss, then hit
			sub := decode[resultResponse](t, postJSON(t, ts.URL+"/v1/submit?wait=1", tc))
			if sub.State != StateDone {
				t.Fatalf("%+v round %d: state %s (%s)", tc, round, sub.State, sub.Error)
			}
			resp := mustGet(t, ts.URL+"/v1/sessions/"+sub.ID+"/result?format=text")
			text, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(text) != want.Text {
				t.Fatalf("%+v round %d: HTTP text differs from CLI (%d vs %d bytes)",
					tc, round, len(text), len(want.Text))
			}
			resp = mustGet(t, ts.URL+"/v1/sessions/"+sub.ID+"/result?format=profile")
			prof, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !bytes.Equal(prof, want.ProfileJSON) {
				t.Fatalf("%+v round %d: HTTP profile differs from CLI", tc, round)
			}
		}
	}
}

// TestStreamDeliversEvents: the NDJSON stream ends with a done event
// after phase/progress events, and late subscribers still see history.
func TestStreamDeliversEvents(t *testing.T) {
	_, ts := testServer(t)
	sub := decode[resultResponse](t, postJSON(t, ts.URL+"/v1/submit?wait=1", Request{Bench: "fig1", NoCache: true}))

	resp := mustGet(t, ts.URL+"/v1/sessions/"+sub.ID+"/stream?format=ndjson")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []Event
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			break
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != string(StateDone) {
		t.Fatalf("last event = %+v, want done", last)
	}
	sawPhase := false
	for _, ev := range events {
		if ev.Type == "phase" {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Fatal("no phase events in the stream")
	}
}

// TestStreamSSEFormat: the default stream speaks text/event-stream.
func TestStreamSSEFormat(t *testing.T) {
	_, ts := testServer(t)
	sub := decode[resultResponse](t, postJSON(t, ts.URL+"/v1/submit?wait=1", Request{Bench: "fig1"}))
	resp := mustGet(t, ts.URL+"/v1/sessions/"+sub.ID+"/stream")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "event: done") {
		t.Fatal("SSE stream has no done event")
	}
}

// TestPredictInline: the execution-free endpoint returns the static view
// and caches it.
func TestPredictInline(t *testing.T) {
	_, ts := testServer(t)
	req := Request{Bench: "fig1"}
	first := decode[map[string]any](t, postJSON(t, ts.URL+"/v1/predict", req))
	if first["text"] == "" || first["cached"] == true {
		t.Fatalf("first predict: %+v", first)
	}
	second := decode[map[string]any](t, postJSON(t, ts.URL+"/v1/predict", req))
	if second["cached"] != true {
		t.Fatal("repeat predict missed the cache")
	}
	if second["text"] != first["text"] {
		t.Fatal("cached predict text differs")
	}
}

// TestDiffEndpoint: profile two configurations of the same program and
// diff them.
func TestDiffEndpoint(t *testing.T) {
	_, ts := testServer(t)
	a := decode[resultResponse](t, postJSON(t, ts.URL+"/v1/submit?wait=1", Request{Bench: "halo"}))
	b := decode[resultResponse](t, postJSON(t, ts.URL+"/v1/submit?wait=1",
		Request{Bench: "halo", Configs: map[string]string{"n": "256", "reps": "4"}}))
	resp := postJSON(t, ts.URL+"/v1/diff", map[string]any{"a": a.ID, "b": b.ID})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("diff: HTTP %d: %s", resp.StatusCode, body)
	}
	out := decode[map[string]any](t, resp)
	text, _ := out["text"].(string)
	if !strings.Contains(text, "Cross-run blame delta") {
		t.Fatalf("diff text: %q", text)
	}
}

// TestMetricsEndpoint: after a miss and a hit, both expositions report a
// positive cache hit rate and the served totals.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	req := Request{Bench: "fig1"}
	postJSON(t, ts.URL+"/v1/submit?wait=1", req).Body.Close()
	postJSON(t, ts.URL+"/v1/submit?wait=1", req).Body.Close()

	snap := decode[MetricsSnapshot](t, mustGet(t, ts.URL+"/metrics?format=json"))
	if snap.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %f after a repeat submission", snap.CacheHitRate)
	}
	if snap.Served < 2 || snap.Executed != 1 {
		t.Fatalf("served=%d executed=%d, want >=2 / 1", snap.Served, snap.Executed)
	}
	if snap.Cycles == 0 {
		t.Fatal("no cycles served")
	}

	resp := mustGet(t, ts.URL+"/metrics")
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"blamed_cache_hit_rate", "blamed_queue_depth", "blamed_requests_total",
		"blamed_session_cycles_total", "blamed_request_seconds_bucket",
	} {
		if !strings.Contains(string(text), metric) {
			t.Fatalf("metrics exposition missing %s", metric)
		}
	}
}

// TestSubmitRejectsBadRequests: malformed bodies and invalid requests
// are 400s, unknown sessions 404s.
func TestSubmitRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/submit", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/submit", Request{Bench: "no-such-bench"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown bench: HTTP %d", resp.StatusCode)
	}
	resp = mustGet(t, ts.URL+"/v1/sessions/s-999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: HTTP %d", resp.StatusCode)
	}
}

// TestChaosUnderLoad is the per-session fault-injection criterion under
// concurrency: many sessions with different fault specs run at once;
// faults change the comm counters but NEVER the program's own output
// bytes (the runtime retries/reroutes transparently).
func TestChaosUnderLoad(t *testing.T) {
	_, ts := testServer(t)
	base := Request{Bench: "halo", Locales: 4, CommAggregate: true,
		Configs: map[string]string{"n": "128", "reps": "3"}}

	clean := decode[resultResponse](t, postJSON(t, ts.URL+"/v1/submit?wait=1", base))
	if clean.State != StateDone {
		t.Fatalf("clean run: %s (%s)", clean.State, clean.Error)
	}
	if clean.Output == "" {
		t.Fatal("clean run produced no program output to compare")
	}

	specs := []struct {
		spec string
		seed uint64
	}{
		{"loss=0.05", 1},
		{"loss=0.02,dup=0.02", 2},
		{"delay=0.2:3xCommLatency", 3},
		{"locale-slow=2:4x", 4},
		{"loss=0.05", 9}, // same spec, different seed: distinct session
	}
	var wg sync.WaitGroup
	results := make([]resultResponse, len(specs))
	errs := make([]error, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, spec string, seed uint64) {
			defer wg.Done()
			req := base
			req.FaultSpec, req.FaultSeed = spec, seed
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/submit?wait=1", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i, sp.spec, sp.seed)
	}
	wg.Wait()

	for i, sp := range specs {
		if errs[i] != nil {
			t.Fatalf("fault %q: %v", sp.spec, errs[i])
		}
		r := results[i]
		if r.State != StateDone {
			t.Fatalf("fault %q: state %s (%s)", sp.spec, r.State, r.Error)
		}
		if r.Output != clean.Output {
			t.Errorf("fault %q seed %d: program output CHANGED under faults (%d vs %d bytes)",
				sp.spec, sp.seed, len(r.Output), len(clean.Output))
		}
		if r.Stats == nil || r.Stats.Fault == nil {
			t.Fatalf("fault %q: no fault counters in stats", sp.spec)
		}
		if r.Stats.Fault.Sends == 0 {
			t.Errorf("fault %q: injector examined no messages", sp.spec)
		}
	}
	// The two loss=0.05 runs with different seeds must be distinct cache
	// entries (seed is semantic), yet identical program output.
	if results[0].Cached || results[4].Cached {
		t.Error("different fault seeds aliased a cache entry")
	}
}

// TestCancelEndpointMidRun cancels a slow real run over HTTP and checks
// the session lands in cancelled without an outcome.
func TestCancelEndpointMidRun(t *testing.T) {
	_, ts := testServer(t)
	req := Request{Bench: "halo", NoCache: true,
		Configs: map[string]string{"n": "2048", "reps": "64"}}
	sub := decode[submitResponse](t, postJSON(t, ts.URL+"/v1/submit", req))
	if sub.ID == "" {
		t.Fatal("no session id")
	}
	resp := postJSON(t, ts.URL+"/v1/sessions/"+sub.ID+"/cancel", struct{}{})
	out := decode[map[string]any](t, resp)
	if out["cancelled"] != true {
		t.Fatalf("cancel reply: %+v", out)
	}
	resp = mustGet(t, ts.URL+fmt.Sprintf("/v1/sessions/%s", sub.ID))
	st := decode[Status](t, resp)
	if st.State != StateCancelled {
		t.Fatalf("state after cancel = %s", st.State)
	}
	_ = vm.ErrCancelled // the VM-level abort is asserted in TestExecuteCancelMidRun
}
