package serve

import (
	"testing"
)

func normalized(t *testing.T, mutate func(*Request)) *Request {
	t.Helper()
	r := &Request{Bench: "fig1"}
	if mutate != nil {
		mutate(r)
	}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRequestKeyCoversSemantics is the cache-key audit as a test: every
// knob that changes the outcome must change the key, so no two requests
// with different semantics can alias one cache entry.
func TestRequestKeyCoversSemantics(t *testing.T) {
	base := normalized(t, nil).Key()
	variants := map[string]func(*Request){
		"locales":        func(r *Request) { r.Locales = 4 },
		"cores":          func(r *Request) { r.Cores = 2 },
		"view":           func(r *Request) { r.View = "code" },
		"lint":           func(r *Request) { r.Lint = true },
		"limit":          func(r *Request) { r.Limit = 5 },
		"threshold":      func(r *Request) { r.Threshold = 1001 },
		"skid":           func(r *Request) { r.Skid = 3 },
		"per-locale":     func(r *Request) { r.PerLocale = true },
		"sample-buffer":  func(r *Request) { r.SampleBuffer = 64 },
		"no-implicit":    func(r *Request) { r.NoImplicit = true },
		"no-interproc":   func(r *Request) { r.NoInterproc = true },
		"lines":          func(r *Request) { r.Lines = true },
		"comm-aggregate": func(r *Request) { r.CommAggregate = true },
		"comm-cache":     func(r *Request) { r.CommAggregate = true; r.CommCache = 7 },
		"no-owner":       func(r *Request) { r.NoOwnerComputes = true },
		"fault-spec":     func(r *Request) { r.FaultSpec = "loss=0.01" },
		"fault-seed":     func(r *Request) { r.FaultSpec = "loss=0.01"; r.FaultSeed = 42 },
		"configs":        func(r *Request) { r.Configs = map[string]string{"n": "8"} },
		"bench":          func(r *Request) { r.Bench = "wavefront" },
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range variants {
		k := normalized(t, mutate).Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q aliased %q", name, prev)
		}
		seen[k] = name
	}
}

// TestRequestKeyIgnoresScheduling: priority, deadline and no-cache steer
// scheduling only — they must NOT change the content-addressed key, or
// identical work would stop coalescing.
func TestRequestKeyIgnoresScheduling(t *testing.T) {
	base := normalized(t, nil).Key()
	sched := normalized(t, func(r *Request) {
		r.Priority = 9
		r.DeadlineMs = 5000
		r.NoCache = true
	}).Key()
	if base != sched {
		t.Fatal("scheduling-only fields changed the cache key")
	}
}

// TestRequestKeyConfigOrder: config maps are canonicalized, so insertion
// order cannot split the cache.
func TestRequestKeyConfigOrder(t *testing.T) {
	a := normalized(t, func(r *Request) { r.Configs = map[string]string{"a": "1", "b": "2", "c": "3"} })
	b := normalized(t, func(r *Request) { r.Configs = map[string]string{"c": "3", "b": "2", "a": "1"} })
	if a.Key() != b.Key() {
		t.Fatal("config insertion order changed the key")
	}
}

// TestNormalizeValidation pins the request guards.
func TestNormalizeValidation(t *testing.T) {
	bad := []Request{
		{},                                  // neither bench nor source
		{Bench: "fig1", Source: "var x;"},   // both
		{Bench: "no-such-bench"},            // unknown bench
		{Bench: "fig1", Locales: 1000},      // locales over the cap
		{Bench: "fig1", Cores: -1},          // negative cores
		{Bench: "fig1", View: "bogus"},      // unknown view
		{Bench: "fig1", Limit: -2},          // only -1 is the unlimited form
		{Bench: "fig1", Skid: -1},           // negative skid
		{Bench: "fig1", FaultSpec: "nope="}, // unparsable fault spec
		{Bench: "fig1", DeadlineMs: -5},     // negative deadline
	}
	for i, r := range bad {
		if err := r.Normalize(); err == nil {
			t.Errorf("bad request %d normalized without error: %+v", i, r)
		}
	}

	r := Request{Bench: "fig1"}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Source == "" || r.Name == "" {
		t.Fatal("bench was not resolved to source")
	}
	if r.Locales != 1 || r.Cores != 12 || r.View != "data" || r.Limit != 20 {
		t.Fatalf("defaults not applied: %+v", r)
	}
}
