package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func sizedOutcome(n int) *Outcome {
	return &Outcome{Text: strings.Repeat("x", n)}
}

// TestCacheLRUEviction: a single-shard cache over its byte budget evicts
// from the cold end, and the counters record it.
func TestCacheLRUEviction(t *testing.T) {
	// Each outcome is 512 bytes of overhead + text; budget fits ~3.
	c := NewCache(3*(512+1000), 1)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), sizedOutcome(1000))
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 (coldest) survived an over-budget insert")
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s was evicted out of LRU order", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceeds budget %d", st.Bytes, st.MaxBytes)
	}

	// Touching k1 makes k2 the coldest; the next insert evicts k2, not k1.
	c.Get("k1")
	c.Put("k4", sizedOutcome(1000))
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently-used k1 was evicted")
	}
	if _, ok := c.Get("k2"); ok {
		t.Fatal("cold k2 survived")
	}
}

// TestCacheRejectsOversized: an outcome larger than a whole shard budget
// is not cached (it would evict everything for one entry).
func TestCacheRejectsOversized(t *testing.T) {
	c := NewCache(2048, 1)
	c.Put("big", sizedOutcome(1<<20))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized outcome was cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after rejected insert: %+v", st)
	}
}

// TestCacheCounters pins hit/miss accounting.
func TestCacheCounters(t *testing.T) {
	c := NewCache(1<<20, 4)
	c.Get("absent")
	c.Put("present", sizedOutcome(10))
	c.Get("present")
	c.Get("present")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %f, want 2/3", got)
	}
}

// TestCachePutRefreshes: re-putting a key updates size accounting
// instead of duplicating the entry.
func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(1<<20, 1)
	c.Put("k", sizedOutcome(100))
	c.Put("k", sizedOutcome(500))
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if want := int64(500 + 512); st.Bytes != want {
		t.Fatalf("bytes = %d, want %d", st.Bytes, want)
	}
}

// TestCacheConcurrent hammers all shards from many goroutines (run
// under -race in CI).
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(1<<20, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				if i%3 == 0 {
					c.Put(key, sizedOutcome(64))
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceeds budget %d", st.Bytes, st.MaxBytes)
	}
}
