package serve

import (
	"sync"
	"time"
)

// State is a session's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StateExpired   State = "expired"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateExpired
}

// maxHistory bounds the replayed event backlog per session; a streaming
// client that attaches late sees at most this many buffered events
// before the live feed.
const maxHistory = 256

// Session is one profiling submission: the per-request state machine
// the scheduler drives and the HTTP layer observes. Identical
// submissions may share one underlying job (batching); each still gets
// its own Session, deadline and event stream.
type Session struct {
	ID  string
	Req *Request
	Key string

	mu       sync.Mutex
	state    State
	cached   bool // served straight from the outcome cache
	shared   bool // coalesced onto an already-pending identical job
	outcome  *Outcome
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	deadline time.Time // zero = none
	timer    *time.Timer
	subs     map[chan Event]bool
	history  []Event
	done     chan struct{}

	// detach unhooks the session from its job on cancel/expiry; set by
	// the scheduler at submit time.
	detach func(*Session)
}

func newSession(id string, req *Request) *Session {
	s := &Session{
		ID:      id,
		Req:     req,
		Key:     req.Key(),
		state:   StateQueued,
		created: time.Now(),
		subs:    make(map[chan Event]bool),
		done:    make(chan struct{}),
	}
	if req.DeadlineMs > 0 {
		s.deadline = s.created.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	return s
}

// Done is closed once the session reaches a terminal state.
func (s *Session) Done() <-chan struct{} { return s.done }

// State returns the current state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Result returns the outcome and error once terminal (nil, nil before).
func (s *Session) Result() (*Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.outcome, s.err
}

// Status is the JSON shape of a session's observable state.
type Status struct {
	ID       string  `json:"id"`
	State    State   `json:"state"`
	Request  string  `json:"request"`
	Cached   bool    `json:"cached,omitempty"`
	Shared   bool    `json:"shared,omitempty"`
	Error    string  `json:"error,omitempty"`
	QueuedMs float64 `json:"queued_ms"`
	RunMs    float64 `json:"run_ms,omitempty"`
	Samples  int     `json:"samples,omitempty"`
	Cycles   uint64  `json:"cycles,omitempty"`
	CommMsgs uint64  `json:"comm_messages,omitempty"`
}

// Status snapshots the session for the HTTP status endpoint.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID: s.ID, State: s.state, Request: s.Req.Summary(),
		Cached: s.cached, Shared: s.shared,
	}
	if s.err != nil {
		st.Error = s.err.Error()
	}
	switch {
	case !s.started.IsZero():
		st.QueuedMs = s.started.Sub(s.created).Seconds() * 1000
	case !s.finished.IsZero():
		st.QueuedMs = s.finished.Sub(s.created).Seconds() * 1000
	default:
		st.QueuedMs = time.Since(s.created).Seconds() * 1000
	}
	if !s.started.IsZero() {
		end := s.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMs = end.Sub(s.started).Seconds() * 1000
	}
	if s.outcome != nil {
		st.Samples = s.outcome.Samples
		st.Cycles = s.outcome.Stats.TotalCycles
		st.CommMsgs = s.outcome.Stats.CommMessages
	}
	return st
}

// Subscribe attaches an event stream: buffered history first, then live
// events. The returned cancel func detaches the subscriber.
func (s *Session) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, maxHistory+16)
	s.mu.Lock()
	for _, ev := range s.history {
		ch <- ev // buffered: history fits by construction
	}
	terminal := s.state.Terminal()
	if !terminal {
		s.subs[ch] = true
	}
	s.mu.Unlock()
	if terminal {
		close(ch)
		return ch, func() {}
	}
	return ch, func() {
		s.mu.Lock()
		if s.subs[ch] {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}
}

// publish fans an event out to subscribers without blocking: a consumer
// that stopped draining loses events rather than stalling the pipeline
// goroutine.
func (s *Session) publish(ev Event) {
	ev.Session = s.ID
	s.mu.Lock()
	if len(s.history) < maxHistory {
		s.history = append(s.history, ev)
	}
	for ch := range s.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	s.mu.Unlock()
}

// markShared records that the session coalesced onto an existing job.
func (s *Session) markShared() {
	s.mu.Lock()
	s.shared = true
	s.mu.Unlock()
}

// markRunning transitions queued → running (no-op in any other state).
func (s *Session) markRunning() {
	s.mu.Lock()
	if s.state == StateQueued {
		s.state = StateRunning
		s.started = time.Now()
	}
	s.mu.Unlock()
	s.publish(Event{Type: "phase", Phase: "scheduled", State: string(StateRunning)})
}

// finish moves the session to a terminal state, records the outcome,
// stops the deadline timer, notifies subscribers and closes Done. Only
// the first terminal transition wins.
func (s *Session) finish(state State, out *Outcome, err error, cached bool) bool {
	s.mu.Lock()
	if s.state.Terminal() {
		s.mu.Unlock()
		return false
	}
	s.state = state
	s.outcome = out
	s.err = err
	s.cached = cached
	s.finished = time.Now()
	if s.timer != nil {
		s.timer.Stop()
	}
	s.mu.Unlock()

	ev := Event{Type: "done", State: string(state)}
	if err != nil {
		ev.Err = err.Error()
	}
	if out != nil {
		ev.Samples = out.Samples
		ev.Cycles = out.Stats.TotalCycles
	}
	s.publish(ev)

	s.mu.Lock()
	for ch := range s.subs {
		delete(s.subs, ch)
		close(ch)
	}
	s.mu.Unlock()
	close(s.done)
	return true
}

// Cancel terminates the session from the client side. Work shared with
// other sessions keeps running; a job this session held alone is
// cancelled mid-run through the VM's cancellation hook.
func (s *Session) Cancel() bool {
	if !s.finish(StateCancelled, nil, nil, false) {
		return false
	}
	if s.detach != nil {
		s.detach(s)
	}
	return true
}

// expire enforces the session's deadline.
func (s *Session) expire() {
	if !s.finish(StateExpired, nil, errDeadline, false) {
		return
	}
	if s.detach != nil {
		s.detach(s)
	}
}
