package serve

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// Cache is the sharded, content-addressed outcome cache: the server-wide
// generalization of compile.SourceCached / core.AnalyzeCached. Where
// those memoize one pipeline stage keyed by (source, stage options),
// this caches whole rendered Outcomes keyed by Request.Key() — a hash
// over the source text and every semantic knob (locales, comm mode,
// fault spec/seed, analysis options, view), so no two requests with
// different semantics can alias an entry.
//
// Unlike the process-lifetime memos, a serving cache must bound memory:
// each shard keeps an LRU list and evicts from the cold end once its
// byte budget is exceeded. Sharding keeps lock hold times short under
// concurrent sessions; a key's shard is fixed by its hash, so per-shard
// LRU order is still exact for the keys it owns.
type Cache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	out  *Outcome
	size int64
}

// CacheStats is the aggregated counter snapshot across shards.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate is hits / (hits + misses), 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewCache builds a cache bounded at totalBytes split over shards
// (rounded up to a power of two; 0 picks 16). totalBytes <= 0 selects a
// 256 MiB default.
func NewCache(totalBytes int64, shards int) *Cache {
	if totalBytes <= 0 {
		totalBytes = 256 << 20
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	per := totalBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.maxBytes = per
		s.ll = list.New()
		s.entries = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&c.mask]
}

// Get returns the cached outcome for key and marks it most recently
// used.
func (c *Cache) Get(key string) (*Outcome, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Put inserts (or refreshes) an outcome and evicts cold entries until
// the shard fits its byte budget again. An outcome larger than the
// whole shard budget is not cached.
func (c *Cache) Put(key string, out *Outcome) {
	size := out.sizeBytes()
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.maxBytes {
		return
	}
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += size - e.size
		e.out, e.size = out, size
		s.ll.MoveToFront(el)
	} else {
		s.entries[key] = s.ll.PushFront(&cacheEntry{key: key, out: out, size: size})
		s.bytes += size
	}
	for s.bytes > s.maxBytes {
		cold := s.ll.Back()
		if cold == nil {
			break
		}
		e := cold.Value.(*cacheEntry)
		s.ll.Remove(cold)
		delete(s.entries, e.key)
		s.bytes -= e.size
		s.evictions++
	}
}

// Stats aggregates the shard counters.
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Entries += len(s.entries)
		out.Bytes += s.bytes
		out.MaxBytes += s.maxBytes
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		s.mu.Unlock()
	}
	return out
}
