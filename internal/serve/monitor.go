package serve

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/postmortem"
	"repro/internal/sampler"
	"repro/internal/vm"
)

// monitor is the streaming wrapper the server interposes between the VM
// and the sampler (blame.Config.Wrap). It delegates every callback to
// the real sampler, so the final profile is untouched, and additionally
//
//   - emits coarse progress events (cycles executed, samples collected)
//     every progressEvery cycles, and
//   - every rankEvery samples, runs the post-mortem processor over a
//     snapshot of the samples observed so far and emits the current
//     top-k data-centric blame ranking — the "incremental blame ranks"
//     a streaming client renders while the run is still going.
//
// The VM is a single-goroutine simulator, so all callbacks arrive on
// one goroutine and the monitor needs no locking of its own; emit must
// be non-blocking (the session fan-out drops events on slow consumers).
type monitor struct {
	prog      *ir.Program
	analysis  *core.Analysis
	smp       *sampler.Sampler
	threshold uint64
	rankEvery int
	emit      func(Event)

	cycles       uint64
	nextProgress uint64
	nextRank     int
}

// progressEvery is the cycle interval between progress events: large
// enough to be negligible next to instruction dispatch, small enough
// for tens of events on the multi-second simulated runs.
const progressEvery = 10_000_000

// rankTop is how many rows an incremental ranking carries.
const rankTop = 5

func newMonitor(prog *ir.Program, analysis *core.Analysis, smp *sampler.Sampler, threshold uint64, rankEvery int, emit func(Event)) *monitor {
	return &monitor{
		prog: prog, analysis: analysis, smp: smp,
		threshold: threshold, rankEvery: rankEvery, emit: emit,
		nextProgress: progressEvery, nextRank: rankEvery,
	}
}

func (m *monitor) tick(cycles uint64) {
	m.cycles += cycles
	if m.cycles >= m.nextProgress {
		m.emit(Event{Type: "progress", Samples: len(m.smp.Samples), Cycles: m.cycles})
		for m.nextProgress <= m.cycles {
			m.nextProgress += progressEvery
		}
	}
	if n := len(m.smp.Samples); n >= m.nextRank {
		m.snapshotRanks(n)
		for m.nextRank <= n {
			m.nextRank += m.rankEvery
		}
	}
}

// snapshotRanks runs the post-mortem pipeline over a copy of the first n
// samples and emits the interim top-k. Copies are taken on the VM
// goroutine, so the sampler's slices and spawn map are quiescent.
func (m *monitor) snapshotRanks(n int) {
	samples := make([]sampler.RawSample, n)
	copy(samples, m.smp.Samples[:n])
	spawns := make(map[uint64]sampler.SpawnRecord, len(m.smp.Spawns))
	for tag, rec := range m.smp.Spawns {
		spawns[tag] = rec
	}
	prof := postmortem.New(m.prog, m.analysis, spawns).Process(samples, m.threshold, vm.Stats{})
	rows := prof.DataCentric
	if len(rows) > rankTop {
		rows = rows[:rankTop]
	}
	ranks := make([]RankRow, len(rows))
	for i, r := range rows {
		ranks[i] = RankRow{Name: r.Name, Samples: r.Samples, Blame: r.Blame}
	}
	m.emit(Event{Type: "ranks", Samples: n, Cycles: m.cycles, Ranks: ranks})
}

func (m *monitor) Exec(cycles uint64, t *vm.Task, in *ir.Instr, acc *vm.ArrayVal) {
	m.smp.Exec(cycles, t, in, acc)
	m.tick(cycles)
}

func (m *monitor) Spin(cycles uint64, t *vm.Task, fn *ir.Func) {
	m.smp.Spin(cycles, t, fn)
	m.tick(cycles)
}

func (m *monitor) PreSpawn(parent *vm.Task, tag uint64, site *ir.Instr) {
	m.smp.PreSpawn(parent, tag, site)
}

func (m *monitor) Alloc(addr uint64, size int64, v *ir.Var, site *ir.Instr) {
	m.smp.Alloc(addr, size, v, site)
}

func (m *monitor) Comm(bytes int64, from, to int, owner *ir.Var, t *vm.Task, in *ir.Instr) {
	m.smp.Comm(bytes, from, to, owner, t, in)
}

func (m *monitor) CommAgg(ev comm.Event, t *vm.Task) {
	m.smp.CommAgg(ev, t)
}
