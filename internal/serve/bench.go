package serve

import (
	"fmt"
	"sort"

	"repro/internal/benchprog"
)

// ResolveBench maps a built-in benchmark name to its embedded source.
// Shared by cmd/blame (-bench) and the server's request schema, so both
// paths profile the identical program text.
func ResolveBench(name string) (src, progName string, err error) {
	switch name {
	case "minimd":
		p := benchprog.MiniMD(false)
		return p.Source, p.Name, nil
	case "minimd_opt":
		p := benchprog.MiniMD(true)
		return p.Source, p.Name, nil
	case "clomp":
		p := benchprog.CLOMP(false)
		return p.Source, p.Name, nil
	case "clomp_opt":
		p := benchprog.CLOMP(true)
		return p.Source, p.Name, nil
	case "lulesh":
		p := benchprog.LULESH(benchprog.LuleshOriginal)
		return p.Source, p.Name, nil
	case "lulesh_best":
		p := benchprog.LULESH(benchprog.LuleshBest)
		return p.Source, p.Name, nil
	case "halo":
		p := benchprog.Halo()
		return p.Source, p.Name, nil
	case "wavefront":
		p := benchprog.Wavefront()
		return p.Source, p.Name, nil
	case "gather":
		p := benchprog.Gather()
		return p.Source, p.Name, nil
	case "spmv":
		p := benchprog.SpMV()
		return p.Source, p.Name, nil
	case "fig1":
		return benchprog.Fig1Example, "fig1", nil
	}
	return "", "", fmt.Errorf("unknown benchmark %q", name)
}

// Benches lists the accepted -bench / "bench" names.
func Benches() []string {
	names := []string{
		"minimd", "minimd_opt", "clomp", "clomp_opt",
		"lulesh", "lulesh_best", "halo", "wavefront", "fig1",
		"gather", "spmv",
	}
	sort.Strings(names)
	return names
}
