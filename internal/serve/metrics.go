package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds (a decade
// ladder from 1 ms to 60 s; +Inf is implicit).
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram with quantile
// estimation by linear interpolation inside the hit bucket.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	inf    uint64
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram over latencyBuckets.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(latencyBuckets))}
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	h.mu.Lock()
	h.sum += s
	h.n++
	placed := false
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.mu.Unlock()
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds; 0 when
// empty. Samples beyond the last bucket report the last upper bound.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := q * float64(h.n)
	var cum uint64
	lower := 0.0
	for i, c := range h.counts {
		if c == 0 {
			lower = latencyBuckets[i]
			continue
		}
		next := cum + c
		if float64(next) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(latencyBuckets[i]-lower)
		}
		cum = next
		lower = latencyBuckets[i]
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// snapshot returns (bucket counts, inf count, sum, n) under the lock.
func (h *Histogram) snapshot() ([]uint64, uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.inf, h.sum, h.n
}

// Metrics is the server's observability state: per-endpoint request
// counters, request latency histograms (end-to-end and pipeline
// execution), and running totals of the work served per session
// (cycles, comm messages, samples).
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64 // by endpoint
	errors    map[string]uint64
	sheds     map[string]uint64 // load-shedding, by reason (draining | queue_full | closed)
	Latency   *Histogram        // end-to-end submit→done
	RunTime   *Histogram        // pipeline execution only (cache misses)
	cycles    uint64            // total simulated cycles served (incl. cached replays)
	commMsgs  uint64
	samples   uint64
	executed  uint64
	served    uint64
	byState   map[State]uint64
	startedAt time.Time

	// Inspector–executor totals (comm.Stats counters, summed over served
	// sessions that ran with the inspector enabled).
	inspBuilds   uint64
	schedHits    uint64
	replicatedVs uint64
}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:  make(map[string]uint64),
		errors:    make(map[string]uint64),
		sheds:     make(map[string]uint64),
		Latency:   NewHistogram(),
		RunTime:   NewHistogram(),
		byState:   make(map[State]uint64),
		startedAt: time.Now(),
	}
}

// IncRequest counts one HTTP request against an endpoint label.
func (m *Metrics) IncRequest(endpoint string) {
	m.mu.Lock()
	m.requests[endpoint]++
	m.mu.Unlock()
}

// IncError counts one failed HTTP request.
func (m *Metrics) IncError(endpoint string) {
	m.mu.Lock()
	m.errors[endpoint]++
	m.mu.Unlock()
}

// Shed counts one load-shed submission by reason.
func (m *Metrics) Shed(reason string) {
	m.mu.Lock()
	m.sheds[reason]++
	m.mu.Unlock()
}

// SessionDone records a finished session and the outcome it was served
// (cached replays count toward the served totals too: the point is how
// much simulated work clients received).
func (m *Metrics) SessionDone(state State, out *Outcome, e2e time.Duration) {
	m.mu.Lock()
	m.byState[state]++
	m.served++
	if out != nil {
		m.cycles += out.Stats.TotalCycles
		m.commMsgs += out.Stats.CommMessages
		m.samples += uint64(out.Samples)
		if agg := out.Stats.Agg; agg != nil {
			m.inspBuilds += uint64(agg.InspectorBuilds)
			m.schedHits += uint64(agg.ScheduleHits)
			m.replicatedVs += uint64(agg.ReplicatedVars)
		}
	}
	m.mu.Unlock()
	m.Latency.Observe(e2e)
}

// Executed records one pipeline execution (a cache miss that ran).
func (m *Metrics) Executed(wall time.Duration) {
	m.mu.Lock()
	m.executed++
	m.mu.Unlock()
	m.RunTime.Observe(wall)
}

// MetricsSnapshot is the JSON form of /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Requests      map[string]uint64  `json:"requests"`
	Errors        map[string]uint64  `json:"errors,omitempty"`
	Sessions      map[string]uint64  `json:"sessions"`
	Served        uint64             `json:"served"`
	Executed      uint64             `json:"executed"`
	LatencyP50Ms  float64            `json:"latency_p50_ms"`
	LatencyP95Ms  float64            `json:"latency_p95_ms"`
	LatencyP99Ms  float64            `json:"latency_p99_ms"`
	RunP99Ms      float64            `json:"run_p99_ms"`
	Cycles        uint64             `json:"cycles_total"`
	CommMessages  uint64             `json:"comm_messages_total"`
	Samples       uint64             `json:"samples_total"`
	InspBuilds    uint64             `json:"inspector_builds_total"`
	SchedHits     uint64             `json:"schedule_hits_total"`
	ReplicatedVs  uint64             `json:"replicated_vars_total"`
	Cache         CacheStats         `json:"cache"`
	CacheHitRate  float64            `json:"cache_hit_rate"`
	Sched         SchedStats         `json:"scheduler"`
	Shed          map[string]uint64  `json:"shed,omitempty"`
	Draining      bool               `json:"draining"`
	Journal       JournalStats       `json:"journal"`
	Aux           map[string]float64 `json:"aux,omitempty"`
}

// MetricsAux carries server-level resilience state into the rendering:
// the drain flag, the journal counters, and any extra gauges the host
// process registers (the runner supervisor's counters in cmd/blamed).
type MetricsAux struct {
	Draining bool
	Journal  JournalStats
	Extra    map[string]float64
}

// Snapshot assembles the JSON metrics view.
func (m *Metrics) Snapshot(cache CacheStats, sched SchedStats, aux MetricsAux) MetricsSnapshot {
	m.mu.Lock()
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.startedAt).Seconds(),
		Requests:      make(map[string]uint64, len(m.requests)),
		Errors:        make(map[string]uint64, len(m.errors)),
		Shed:          make(map[string]uint64, len(m.sheds)),
		Sessions:      make(map[string]uint64, len(m.byState)),
		Served:        m.served,
		Executed:      m.executed,
		Cycles:        m.cycles,
		CommMessages:  m.commMsgs,
		Samples:       m.samples,
		InspBuilds:    m.inspBuilds,
		SchedHits:     m.schedHits,
		ReplicatedVs:  m.replicatedVs,
	}
	for k, v := range m.requests {
		snap.Requests[k] = v
	}
	for k, v := range m.errors {
		snap.Errors[k] = v
	}
	for k, v := range m.sheds {
		snap.Shed[k] = v
	}
	for k, v := range m.byState {
		snap.Sessions[string(k)] = v
	}
	m.mu.Unlock()
	snap.LatencyP50Ms = m.Latency.Quantile(0.50) * 1000
	snap.LatencyP95Ms = m.Latency.Quantile(0.95) * 1000
	snap.LatencyP99Ms = m.Latency.Quantile(0.99) * 1000
	snap.RunP99Ms = m.RunTime.Quantile(0.99) * 1000
	snap.Cache = cache
	snap.CacheHitRate = cache.HitRate()
	snap.Sched = sched
	snap.Draining = aux.Draining
	snap.Journal = aux.Journal
	snap.Aux = aux.Extra
	return snap
}

// Render writes the Prometheus-style text exposition of /metrics.
func (m *Metrics) Render(cache CacheStats, sched SchedStats, aux MetricsAux) string {
	snap := m.Snapshot(cache, sched, aux)
	var b strings.Builder
	fmt.Fprintf(&b, "blamed_uptime_seconds %.3f\n", snap.UptimeSeconds)
	writeLabeled(&b, "blamed_requests_total", "endpoint", snap.Requests)
	writeLabeled(&b, "blamed_request_errors_total", "endpoint", snap.Errors)
	writeLabeled(&b, "blamed_sessions_total", "state", snap.Sessions)
	fmt.Fprintf(&b, "blamed_sessions_served_total %d\n", snap.Served)
	fmt.Fprintf(&b, "blamed_pipeline_executions_total %d\n", snap.Executed)
	fmt.Fprintf(&b, "blamed_queue_depth %d\n", sched.QueueDepth)
	fmt.Fprintf(&b, "blamed_jobs_running %d\n", sched.Running)
	fmt.Fprintf(&b, "blamed_workers %d\n", sched.Workers)
	fmt.Fprintf(&b, "blamed_jobs_coalesced_total %d\n", sched.Coalesced)
	fmt.Fprintf(&b, "blamed_sessions_expired_total %d\n", sched.Expired)
	fmt.Fprintf(&b, "blamed_queue_cap %d\n", sched.QueueCap)
	writeLabeled(&b, "blamed_shed_total", "reason", snap.Shed)
	draining := 0
	if snap.Draining {
		draining = 1
	}
	fmt.Fprintf(&b, "blamed_draining %d\n", draining)
	journalOn := 0
	if snap.Journal.Enabled {
		journalOn = 1
	}
	fmt.Fprintf(&b, "blamed_journal_enabled %d\n", journalOn)
	fmt.Fprintf(&b, "blamed_journal_appended_total %d\n", snap.Journal.Appended)
	fmt.Fprintf(&b, "blamed_journal_replayed_total %d\n", snap.Journal.Replayed)
	fmt.Fprintf(&b, "blamed_journal_truncated_bytes %d\n", snap.Journal.Truncated)
	fmt.Fprintf(&b, "blamed_journal_bytes %d\n", snap.Journal.Bytes)
	fmt.Fprintf(&b, "blamed_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(&b, "blamed_cache_bytes %d\n", cache.Bytes)
	fmt.Fprintf(&b, "blamed_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(&b, "blamed_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(&b, "blamed_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(&b, "blamed_cache_hit_rate %.4f\n", snap.CacheHitRate)
	fmt.Fprintf(&b, "blamed_session_cycles_total %d\n", snap.Cycles)
	fmt.Fprintf(&b, "blamed_session_comm_messages_total %d\n", snap.CommMessages)
	fmt.Fprintf(&b, "blamed_session_samples_total %d\n", snap.Samples)
	fmt.Fprintf(&b, "blamed_session_inspector_builds_total %d\n", snap.InspBuilds)
	fmt.Fprintf(&b, "blamed_session_schedule_hits_total %d\n", snap.SchedHits)
	fmt.Fprintf(&b, "blamed_session_replicated_vars_total %d\n", snap.ReplicatedVs)
	auxKeys := make([]string, 0, len(snap.Aux))
	for k := range snap.Aux {
		auxKeys = append(auxKeys, k)
	}
	sort.Strings(auxKeys)
	for _, k := range auxKeys {
		fmt.Fprintf(&b, "blamed_%s %g\n", k, snap.Aux[k])
	}
	renderHist(&b, "blamed_request_seconds", m.Latency)
	renderHist(&b, "blamed_run_seconds", m.RunTime)
	return b.String()
}

func writeLabeled(b *strings.Builder, name, label string, vals map[string]uint64) {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

func renderHist(b *strings.Builder, name string, h *Histogram) {
	counts, inf, sum, n := h.snapshot()
	var cum uint64
	for i, c := range counts {
		cum += c
		fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, latencyBuckets[i], cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum+inf)
	fmt.Fprintf(b, "%s_sum %.6f\n", name, sum)
	fmt.Fprintf(b, "%s_count %d\n", name, n)
}
