// Package serve is the blame-as-a-service layer: it exposes the full
// compile → analyze → run → sample → postmortem pipeline as concurrent
// profiling sessions behind an HTTP/JSON API (cmd/blamed). The package
// is organized as
//
//   - Request / Execute   the one profiling code path, shared byte-for-
//     byte with cmd/blame (the CLI is a thin shell over Execute)
//   - Cache               a sharded, content-addressed, bounded LRU over
//     finished Outcomes, generalizing compile.SourceCached /
//     core.AnalyzeCached to whole pipeline results
//   - Scheduler           a priority job queue with per-session
//     deadlines, cancellation, and request batching (identical
//     submissions coalesce into one pipeline execution)
//   - Session             the per-submission state machine with
//     streaming progress events (sampler progress, incremental blame
//     ranks)
//   - Server              the HTTP handlers, SSE/NDJSON streaming and
//     the /metrics observability surface
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/comm"
	"repro/internal/fault"
)

// Byte/size bounds protecting a long-running server from abusive
// requests. They are generous for every embedded benchmark.
const (
	MaxSourceBytes = 1 << 20 // 1 MiB of MiniChapel source
	MaxLocales     = 64
	MaxCores       = 512
	MaxLimit       = 10_000
)

// Request is the profiling request schema — the knobs of cmd/blame,
// JSON-addressable. Exactly one of Bench or Source selects the program.
// Priority, DeadlineMs and NoCache steer scheduling only and are
// excluded from the content-addressed cache key.
type Request struct {
	// Bench names a built-in benchmark (see Benches). Mutually exclusive
	// with Source.
	Bench string `json:"bench,omitempty"`
	// Source is inline MiniChapel source text.
	Source string `json:"source,omitempty"`
	// Name is the display name for inline source (default "prog.mchpl").
	Name string `json:"name,omitempty"`
	// Configs overrides `config const` values (./prog --name=value).
	Configs map[string]string `json:"configs,omitempty"`

	// Locales / Cores shape the simulated machine (defaults 1 / 12).
	Locales int `json:"locales,omitempty"`
	Cores   int `json:"cores,omitempty"`

	// View selects the rendering: data | code | hybrid | all | baseline |
	// comm | static | lint-json (default data). Lint mirrors the CLI's
	// -lint: it runs the static diagnostics and prints the blame-guided
	// advisor instead of View (or appends the report under View "static").
	View  string `json:"view,omitempty"`
	Lint  bool   `json:"lint,omitempty"`
	Limit int    `json:"limit,omitempty"`

	// Threshold is the PMU overflow threshold (0 = auto-scale via a
	// calibration run, like the CLI).
	Threshold uint64 `json:"threshold,omitempty"`
	// Skid injects PMU interrupt skid (instructions).
	Skid int `json:"skid,omitempty"`
	// PerLocale additionally renders per-locale profiles.
	PerLocale bool `json:"per_locale,omitempty"`
	// SampleBuffer bounds the monitor's sample ring buffer (0 =
	// unbounded).
	SampleBuffer int `json:"sample_buffer,omitempty"`

	// Analysis ablation knobs (CLI -no-implicit / -no-interproc / -lines).
	NoImplicit  bool `json:"no_implicit,omitempty"`
	NoInterproc bool `json:"no_interproc,omitempty"`
	Lines       bool `json:"lines,omitempty"`

	// Modeled communication runtime knobs.
	CommAggregate bool `json:"comm_aggregate,omitempty"`
	// CommCache is the per-locale software-cache capacity in elements:
	// 0 selects comm.DefaultCacheCap, negative disables caching. Only
	// meaningful with CommAggregate.
	CommCache int `json:"comm_cache,omitempty"`
	// CommInspector enables the inspector–executor path for irregular
	// (data-dependent subscript) sites; implies CommAggregate.
	CommInspector   bool `json:"comm_inspector,omitempty"`
	NoOwnerComputes bool `json:"no_owner_computes,omitempty"`

	// Per-session fault injection (CLI -fault-spec / -fault-seed).
	FaultSpec string `json:"fault_spec,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`

	// Scheduling-only fields (not cache-keyed).
	Priority   int   `json:"priority,omitempty"`
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	NoCache    bool  `json:"no_cache,omitempty"`
}

// Views the server accepts (CLI -view values plus the execution-free
// modes).
var validViews = map[string]bool{
	"data": true, "code": true, "hybrid": true, "all": true,
	"baseline": true, "comm": true, "static": true, "lint-json": true,
}

// Normalize validates the request, resolves a bench name to its source
// text, and fills defaults, so that two requests meaning the same thing
// produce the same Key. It mutates the receiver.
func (r *Request) Normalize() error {
	if (r.Bench == "") == (r.Source == "") {
		return fmt.Errorf("exactly one of bench or source must be set")
	}
	if r.Bench != "" {
		src, name, err := ResolveBench(r.Bench)
		if err != nil {
			return err
		}
		r.Source, r.Name = src, name
	}
	if len(r.Source) > MaxSourceBytes {
		return fmt.Errorf("source too large (%d bytes, max %d)", len(r.Source), MaxSourceBytes)
	}
	if r.Name == "" {
		r.Name = "prog.mchpl"
	}
	if r.Locales == 0 {
		r.Locales = 1
	}
	if r.Locales < 1 || r.Locales > MaxLocales {
		return fmt.Errorf("locales %d out of range [1, %d]", r.Locales, MaxLocales)
	}
	if r.Cores == 0 {
		r.Cores = 12
	}
	if r.Cores < 1 || r.Cores > MaxCores {
		return fmt.Errorf("cores %d out of range [1, %d]", r.Cores, MaxCores)
	}
	if r.View == "" {
		r.View = "data"
	}
	if !validViews[r.View] {
		return fmt.Errorf("unknown view %q", r.View)
	}
	// Limit 0 selects the default; -1 means unlimited (the CLI's
	// historical `-limit 0`).
	if r.Limit == 0 {
		r.Limit = 20
	}
	if r.Limit != -1 && (r.Limit < 1 || r.Limit > MaxLimit) {
		return fmt.Errorf("limit %d out of range [1, %d] (or -1 for unlimited)", r.Limit, MaxLimit)
	}
	if r.Skid < 0 || r.SampleBuffer < 0 {
		return fmt.Errorf("skid and sample_buffer must be non-negative")
	}
	if r.CommInspector {
		r.CommAggregate = true
	}
	if r.CommAggregate && r.CommCache == 0 {
		r.CommCache = comm.DefaultCacheCap
	}
	if r.FaultSpec != "" {
		if _, err := fault.ParseSpec(r.FaultSpec); err != nil {
			return err
		}
		if r.FaultSeed == 0 {
			r.FaultSeed = 1
		}
	}
	if r.DeadlineMs < 0 {
		return fmt.Errorf("deadline_ms must be non-negative")
	}
	return nil
}

// Key returns the content-addressed cache key of a normalized request:
// a hash over the source text and every knob that can change the
// outcome. Comm mode, fault spec/seed, locale count, analysis options
// and the view all feed the key, so no two requests with different
// semantics can ever alias one cache entry (the server-level analogue of
// the compile.SourceCached / core.AnalyzeCached key audit).
func (r *Request) Key() string {
	h := sha256.New()
	put := func(parts ...string) {
		for _, p := range parts {
			var n [8]byte
			binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
			h.Write(n[:])
			h.Write([]byte(p))
		}
	}
	put("v1", r.Name, r.Source, r.View, r.FaultSpec)
	put(fmt.Sprintf("%d|%d|%d|%d|%d|%d|%d|%d",
		r.Locales, r.Cores, r.Limit, r.Threshold, r.Skid,
		r.SampleBuffer, r.CommCache, r.FaultSeed))
	put(fmt.Sprintf("%t|%t|%t|%t|%t|%t|%t|%t|%t",
		r.Lint, r.PerLocale, r.NoImplicit, r.NoInterproc, r.Lines,
		r.CommAggregate, r.NoOwnerComputes, r.FaultSpec != "",
		r.CommInspector))
	// Canonical config order: maps iterate randomly.
	keys := make([]string, 0, len(r.Configs))
	for k := range r.Configs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		put(k, r.Configs[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Summary is a short human-readable request descriptor for listings and
// logs.
func (r *Request) Summary() string {
	var b strings.Builder
	b.WriteString(r.Name)
	fmt.Fprintf(&b, " view=%s", r.View)
	if r.Lint {
		b.WriteString(" lint")
	}
	if r.Locales > 1 {
		fmt.Fprintf(&b, " locales=%d", r.Locales)
	}
	if r.CommAggregate {
		b.WriteString(" comm-aggregate")
	}
	if r.CommInspector {
		b.WriteString(" comm-inspector")
	}
	if r.FaultSpec != "" {
		fmt.Fprintf(&b, " fault=%s", r.FaultSpec)
	}
	return b.String()
}
