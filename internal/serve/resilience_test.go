package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- journal unit layer ---------------------------------------------

func journalOutcome(i int) *Outcome {
	return &Outcome{
		Text:        fmt.Sprintf("blame table %d", i),
		Output:      fmt.Sprintf("out %d\n", i),
		ProfileJSON: []byte(fmt.Sprintf(`{"i":%d}`, i)),
		Threshold:   uint64(i),
		Samples:     i,
	}
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jnl")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), journalOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got := map[string]*Outcome{}
	j2, err := OpenJournal(path, func(key string, out *Outcome) { got[key] = out })
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Replayed != n || st.Truncated != 0 {
		t.Fatalf("replayed=%d truncated=%d, want %d/0", st.Replayed, st.Truncated, n)
	}
	for i := 0; i < n; i++ {
		out := got[fmt.Sprintf("k%d", i)]
		want := journalOutcome(i)
		if out == nil {
			t.Fatalf("k%d missing after replay", i)
		}
		if out.Text != want.Text || out.Output != want.Output ||
			string(out.ProfileJSON) != string(want.ProfileJSON) ||
			out.Threshold != want.Threshold || out.Samples != want.Samples {
			t.Fatalf("k%d replayed differently: %+v", i, out)
		}
	}
}

// TestJournalTornTailTruncated simulates a SIGKILL mid-append: the last
// frame is cut short. Replay must keep every whole frame, drop the torn
// one, and truncate so the next append lands on a clean boundary.
func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jnl")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), journalOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: keep its header + half its payload. Find
	// the offset of the third frame by walking the first two.
	off := 0
	for i := 0; i < 2; i++ {
		n := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		off += journalHeaderLen + n
	}
	torn := data[:off+journalHeaderLen+5]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var keys []string
	j2, err := OpenJournal(path, func(key string, _ *Outcome) { keys = append(keys, key) })
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Stats()
	if st.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2 (torn tail dropped)", st.Replayed)
	}
	if st.Truncated == 0 {
		t.Fatal("expected nonzero truncated byte count")
	}
	// Appends after the truncation must replay cleanly next time.
	if err := j2.Append("k3", journalOutcome(3)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	keys = nil
	j3, err := OpenJournal(path, func(key string, _ *Outcome) { keys = append(keys, key) })
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if want := []string{"k0", "k1", "k3"}; strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("keys after tear+append = %v, want %v", keys, want)
	}
}

// TestJournalCorruptMiddleStops: damage inside an early frame stops the
// replay there — nothing after a bad CRC is trusted, even intact-looking
// frames.
func TestJournalCorruptMiddleStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jnl")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(fmt.Sprintf("k%d", i), journalOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in frame 0.
	data[journalHeaderLen+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Replayed != 0 || st.Truncated != uint64(len(data)) {
		t.Fatalf("replayed=%d truncated=%d, want 0/%d", st.Replayed, st.Truncated, len(data))
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Append("k", journalOutcome(0)); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Enabled {
		t.Fatal("nil journal reports Enabled")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- journal through the server -------------------------------------

// TestServerJournalWarmBoot: run a server with a journal, kill it (no
// graceful flush needed — appends are unbuffered), boot a second server
// on the same journal, and check the first server's outcome is served
// as a cache hit with identical bytes.
func TestServerJournalWarmBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jnl")
	srv1 := New(Options{Workers: 2, Journal: path})
	ts1 := httptest.NewServer(srv1.Handler())
	req := Request{Bench: "fig1"}
	first := decode[resultResponse](t, postJSON(t, ts1.URL+"/v1/submit?wait=1", req))
	if first.State != StateDone || first.Cached {
		t.Fatalf("first run: state=%s cached=%v", first.State, first.Cached)
	}
	ts1.Close()
	srv1.Close()

	srv2 := New(Options{Workers: 2, Journal: path})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close() }()
	second := decode[resultResponse](t, postJSON(t, ts2.URL+"/v1/submit?wait=1", req))
	if !second.Cached {
		t.Fatal("restarted server missed the journaled outcome")
	}
	if second.Text != first.Text || second.Output != first.Output ||
		string(second.Profile) != string(first.Profile) {
		t.Fatal("replayed outcome differs from the original bytes")
	}
	snap := decode[MetricsSnapshot](t, mustGet(t, ts2.URL+"/metrics?format=json"))
	if !snap.Journal.Enabled || snap.Journal.Replayed == 0 {
		t.Fatalf("journal stats after warm boot: %+v", snap.Journal)
	}
}

// --- drain, readiness, shedding -------------------------------------

func TestReadyzFlipsOnDrain(t *testing.T) {
	srv, ts := testServer(t)

	resp := mustGet(t, ts.URL+"/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server /readyz: HTTP %d", resp.StatusCode)
	}
	resp = mustGet(t, ts.URL+"/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server /healthz: HTTP %d", resp.StatusCode)
	}

	srv.BeginDrain()
	resp = mustGet(t, ts.URL+"/readyz")
	body := decode[map[string]any](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("draining /readyz: HTTP %d body %v", resp.StatusCode, body)
	}
	// Liveness is unaffected by draining.
	resp = mustGet(t, ts.URL+"/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz: HTTP %d", resp.StatusCode)
	}
}

func TestDrainRejectsNewSubmitsServesInFlight(t *testing.T) {
	srv := New(Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Occupy the single worker with a long run, then queue one more.
	slow := Request{Bench: "halo", Locales: 4,
		Configs: map[string]string{"n": "256", "reps": "4"}}
	sub := decode[submitResponse](t, postJSON(t, ts.URL+"/v1/submit", slow))

	srv.BeginDrain()

	// New submissions are refused with the drain envelope + Retry-After.
	resp := postJSON(t, ts.URL+"/v1/submit", Request{Bench: "fig1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 missing Retry-After")
	}
	e := decode[apiError](t, resp)
	if e.Error.Code != "draining" {
		t.Fatalf("drain error code = %q", e.Error.Code)
	}

	// The in-flight session still completes normally.
	res := decode[resultResponse](t, mustGet(t, ts.URL+"/v1/sessions/"+sub.ID+"/result?wait=1"))
	if res.State != StateDone || res.Output == "" {
		t.Fatalf("in-flight session after drain: %s (%s)", res.State, res.Error)
	}

	snap := decode[MetricsSnapshot](t, mustGet(t, ts.URL+"/metrics?format=json"))
	if snap.Shed["draining"] != 1 {
		t.Fatalf("shed counters = %v, want draining:1", snap.Shed)
	}
	if !snap.Draining {
		t.Fatal("metrics snapshot does not report draining")
	}
}

// TestQueueFullSheds: with a single busy worker and MaxQueue 1, the
// second distinct queued job is shed with 503/overloaded, while
// coalesced attaches to the queued job still get in free.
func TestQueueFullSheds(t *testing.T) {
	srv := New(Options{Workers: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	busy := Request{Bench: "halo", Locales: 4,
		Configs: map[string]string{"n": "256", "reps": "4"}}
	queued := Request{Bench: "fig1"}
	// First fills the worker (it may briefly sit in the queue); second
	// is a distinct job that occupies the single queue slot.
	postJSON(t, ts.URL+"/v1/submit", busy).Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/v1/submit", queued)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued job never accepted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A third DISTINCT job must be shed...
	var shedResp *http.Response
	for {
		shedResp = postJSON(t, ts.URL+"/v1/submit",
			Request{Bench: "fig1", Configs: map[string]string{"n": "640"}})
		if shedResp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		shedResp.Body.Close()
		if time.Now().After(deadline) {
			t.Skip("workers drained the queue too fast to observe shedding")
		}
	}
	if shedResp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	e := decode[apiError](t, shedResp)
	if e.Error.Code != "overloaded" {
		t.Fatalf("shed error code = %q", e.Error.Code)
	}

	// ...but an identical resubmission of the queued job coalesces.
	resp := postJSON(t, ts.URL+"/v1/submit", queued)
	sub := decode[submitResponse](t, resp)
	if resp.StatusCode != http.StatusAccepted || !sub.Shared {
		t.Fatalf("coalesced attach: HTTP %d shared=%v", resp.StatusCode, sub.Shared)
	}

	snap := decode[MetricsSnapshot](t, mustGet(t, ts.URL+"/metrics?format=json"))
	if snap.Shed["queue_full"] == 0 {
		t.Fatalf("shed counters = %v, want queue_full>0", snap.Shed)
	}
	if snap.Sched.QueueCap != 1 {
		t.Fatalf("queue cap = %d, want 1", snap.Sched.QueueCap)
	}
}

// --- error envelope goldens -----------------------------------------

// TestErrorEnvelopeGolden pins the exact JSON shape of writeError /
// writeAPIError across representative endpoints: every error is
// {"error":{"code","message"}} and nothing else.
func TestErrorEnvelopeGolden(t *testing.T) {
	srv, ts := testServer(t)

	check := func(name string, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: HTTP %d, want %d", name, resp.StatusCode, wantStatus)
		}
		var raw map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			t.Fatalf("%s: body not JSON: %v", name, err)
		}
		if len(raw) != 1 || raw["error"] == nil {
			t.Fatalf("%s: envelope keys = %v, want exactly {error}", name, raw)
		}
		var body map[string]json.RawMessage
		if err := json.Unmarshal(raw["error"], &body); err != nil {
			t.Fatalf("%s: error value not an object: %v", name, err)
		}
		if len(body) != 2 || body["code"] == nil || body["message"] == nil {
			t.Fatalf("%s: error keys = %v, want exactly {code,message}", name, body)
		}
		var code string
		json.Unmarshal(body["code"], &code)
		if code != wantCode {
			t.Fatalf("%s: code = %q, want %q", name, code, wantCode)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/submit", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	check("malformed body", resp, http.StatusBadRequest, "bad_request")

	check("unknown bench", postJSON(t, ts.URL+"/v1/submit", Request{Bench: "nope"}),
		http.StatusBadRequest, "bad_request")

	check("unknown session", mustGet(t, ts.URL+"/v1/sessions/s-999999"),
		http.StatusNotFound, "not_found")

	check("diff without sessions", postJSON(t, ts.URL+"/v1/diff", diffRequest{A: "s-1", B: "s-2"}),
		http.StatusUnprocessableEntity, "unprocessable")

	srv.BeginDrain()
	check("submit during drain", postJSON(t, ts.URL+"/v1/submit", Request{Bench: "fig1"}),
		http.StatusServiceUnavailable, "draining")
}

// --- shutdown ordering (satellite 1) --------------------------------

// TestShutdownDrainsBeforeClose is the regression test for the old
// cmd/blamed bug where hs.Shutdown raced Server.Close: Shutdown must
// first refuse new work, then let already-queued sessions FINISH —
// never fail them — and close the journal last (its stats must include
// the final outcome).
func TestShutdownDrainsBeforeClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jnl")
	srv := New(Options{Workers: 1, Journal: path})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Queue several sessions on the single worker so some are still
	// queued when Shutdown begins.
	var subs []submitResponse
	for i := 0; i < 4; i++ {
		req := Request{Bench: "halo", Locales: 2,
			Configs: map[string]string{"n": "128", "reps": fmt.Sprint(i + 1)}}
		subs = append(subs, decode[submitResponse](t, postJSON(t, ts.URL+"/v1/submit", req)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var shutErr error
	go func() {
		defer wg.Done()
		shutErr = srv.Shutdown(ctx)
	}()

	// During/after shutdown every queued session must complete Done.
	for _, sub := range subs {
		sess := srv.session(sub.ID)
		if sess == nil {
			t.Fatalf("session %s vanished", sub.ID)
		}
		<-sess.Done()
		if st := sess.State(); st != StateDone {
			t.Fatalf("session %s ended %s during graceful shutdown", sub.ID, st)
		}
	}
	wg.Wait()
	if shutErr != nil {
		t.Fatalf("Shutdown: %v", shutErr)
	}

	// Journal was closed AFTER the last outcome: a warm boot replays
	// all four.
	replayed := 0
	j, err := OpenJournal(path, func(string, *Outcome) { replayed++ })
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if replayed != len(subs) {
		t.Fatalf("replayed %d of %d outcomes journaled before close", replayed, len(subs))
	}

	// After shutdown the server is not ready and refuses submissions.
	resp := mustGet(t, ts.URL+"/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown /readyz: HTTP %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/submit", Request{Bench: "fig1"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: HTTP %d", resp.StatusCode)
	}
}
