package serve

import (
	"container/heap"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

var (
	errDeadline  = errors.New("deadline exceeded")
	errClosed    = errors.New("scheduler is shut down")
	errQueueFull = errors.New("scheduler queue is full")
)

// job is one pipeline execution. Several sessions that submitted the
// identical request (same content-addressed key) share one job — the
// batching layer: N identical submissions coalesce into 1 run whose
// outcome fans out to every attached session.
type job struct {
	key    string
	req    *Request
	prio   int
	seq    uint64
	cancel atomic.Bool

	// Guarded by the scheduler mutex.
	sessions []*Session
	running  bool
	index    int // heap index; -1 once popped
}

// Scheduler is the server-wide promotion of exp.RunSuite's bounded
// worker pool: a fixed pool of workers draining a priority queue of
// jobs, with per-session deadlines and cancellation layered on top.
// Higher Priority runs first; within a priority class jobs run in
// submission order.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	pq     jobQueue
	byKey  map[string]*job
	seq    uint64
	closed bool

	workers int
	// maxQueue bounds distinct queued jobs; submissions beyond it are
	// shed with errQueueFull (0 = unbounded). Coalesced attaches never
	// shed — they add no work.
	maxQueue int
	run      func(*Request, *RunControl) (*Outcome, error)
	// onDone observes every completed execution (cache insertion,
	// latency metrics); may be nil.
	onDone func(j *job, out *Outcome, err error, wall time.Duration)

	running   int
	executed  uint64
	coalesced uint64
	expired   uint64
	shed      uint64
	wg        sync.WaitGroup
}

// SchedStats is the scheduler's observable state.
type SchedStats struct {
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap,omitempty"`
	Running    int    `json:"running"`
	Workers    int    `json:"workers"`
	Executed   uint64 `json:"executed"`
	Coalesced  uint64 `json:"coalesced"`
	Expired    uint64 `json:"expired"`
	Shed       uint64 `json:"shed,omitempty"`
}

// NewScheduler builds a scheduler over run with the given pool size.
// Start launches the workers; keeping construction separate lets tests
// (and a draining server) preload the queue deterministically.
func NewScheduler(workers int, run func(*Request, *RunControl) (*Outcome, error)) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{
		byKey:   make(map[string]*job),
		workers: workers,
		run:     run,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetMaxQueue bounds the number of distinct queued jobs (explicit
// load-shedding); call before Start. n <= 0 means unbounded.
func (s *Scheduler) SetMaxQueue(n int) {
	s.mu.Lock()
	s.maxQueue = n
	s.mu.Unlock()
}

// Accepting reports whether new submissions can still be enqueued (the
// readiness half of /readyz).
func (s *Scheduler) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close drains the queue and stops the workers. Queued jobs still run;
// new submissions fail.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedStats{
		QueueDepth: len(s.pq),
		QueueCap:   s.maxQueue,
		Running:    s.running,
		Workers:    s.workers,
		Executed:   s.executed,
		Coalesced:  s.coalesced,
		Expired:    s.expired,
		Shed:       s.shed,
	}
}

// Submit enqueues a session. If an identical cacheable request is
// already queued or running, the session attaches to that job instead
// of spawning a second execution; the job inherits the highest attached
// priority. The session's deadline timer is armed here.
//
// A non-nil return (errClosed, errQueueFull) means the session was NOT
// enqueued and has already been finished with that error — the caller
// only decides how to report it (the server turns both into 503s).
func (s *Scheduler) Submit(sess *Session) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sess.finish(StateFailed, nil, errClosed, false)
		return errClosed
	}
	j, ok := s.byKey[sess.Key]
	if ok && !sess.Req.NoCache {
		j.sessions = append(j.sessions, sess)
		s.coalesced++
		sess.markShared()
		if sess.Req.Priority > j.prio && j.index >= 0 {
			j.prio = sess.Req.Priority
			heap.Fix(&s.pq, j.index)
		}
	} else {
		if s.maxQueue > 0 && len(s.pq) >= s.maxQueue {
			s.shed++
			s.mu.Unlock()
			sess.finish(StateFailed, nil, errQueueFull, false)
			return errQueueFull
		}
		j = &job{key: sess.Key, req: sess.Req, prio: sess.Req.Priority, seq: s.seq}
		s.seq++
		j.sessions = []*Session{sess}
		if !sess.Req.NoCache {
			s.byKey[sess.Key] = j
		}
		heap.Push(&s.pq, j)
		s.cond.Signal()
	}
	sess.detach = func(x *Session) { s.detach(j, x) }
	s.mu.Unlock()

	sess.mu.Lock()
	if !sess.deadline.IsZero() && sess.state == StateQueued {
		d := time.Until(sess.deadline)
		sess.timer = time.AfterFunc(d, sess.expire)
	}
	sess.mu.Unlock()
	return nil
}

// detach removes a cancelled/expired session from its job. A queued job
// with no sessions left is dropped from the queue; a running one is
// cancelled through the VM hook — nobody is waiting for it anymore.
func (s *Scheduler) detach(j *job, sess *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, x := range j.sessions {
		if x == sess {
			j.sessions = append(j.sessions[:i], j.sessions[i+1:]...)
			break
		}
	}
	if sess.State() == StateExpired {
		s.expired++
	}
	if len(j.sessions) > 0 {
		return
	}
	if j.index >= 0 { // still queued: drop it
		heap.Remove(&s.pq, j.index)
		if s.byKey[j.key] == j {
			delete(s.byKey, j.key)
		}
	} else if j.running {
		j.cancel.Store(true)
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pq) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pq) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.pq).(*job)
		if len(j.sessions) == 0 {
			// Everyone detached between queueing and dispatch.
			if s.byKey[j.key] == j {
				delete(s.byKey, j.key)
			}
			s.mu.Unlock()
			continue
		}
		j.running = true
		s.running++
		waiters := append([]*Session(nil), j.sessions...)
		s.mu.Unlock()

		for _, x := range waiters {
			x.markRunning()
		}
		ctl := &RunControl{Cancel: &j.cancel, Emit: func(ev Event) { s.broadcast(j, ev) }}
		start := time.Now()
		out, err := s.run(j.req, ctl)
		wall := time.Since(start)

		s.mu.Lock()
		j.running = false
		s.running--
		s.executed++
		if s.byKey[j.key] == j {
			delete(s.byKey, j.key)
		}
		final := j.sessions
		j.sessions = nil
		s.mu.Unlock()

		if s.onDone != nil {
			s.onDone(j, out, err, wall)
		}
		for _, x := range final {
			if err != nil {
				x.finish(StateFailed, nil, err, false)
			} else {
				x.finish(StateDone, out, nil, false)
			}
		}
	}
}

// broadcast fans a pipeline event to every session attached to j at the
// moment of the event.
func (s *Scheduler) broadcast(j *job, ev Event) {
	s.mu.Lock()
	targets := append([]*Session(nil), j.sessions...)
	s.mu.Unlock()
	for _, x := range targets {
		x.publish(ev)
	}
}

// jobQueue is a max-heap by (priority, FIFO within a priority class).
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.index = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*q = old[:n-1]
	return j
}
