//go:build !unix

package super

// killedBySignal has no portable detection off unix; crashes still
// classify as crashes, just without the signal name.
func killedBySignal(err error) (string, bool) { return "", false }
