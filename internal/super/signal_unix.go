//go:build unix

package super

import (
	"os/exec"
	"syscall"
)

// killedBySignal reports the signal name when the process exit error
// says the runner died to an uncaught signal (SIGKILL from the OOM
// killer, the supervisor's own timeout kill, the chaos harness).
func killedBySignal(err error) (string, bool) {
	ee, ok := err.(*exec.ExitError)
	if !ok {
		return "", false
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() {
		return "", false
	}
	sig := ws.Signal()
	if sig == syscall.SIGKILL {
		return "SIGKILL", true
	}
	return sig.String(), true
}
