// Package super is the host-level runner supervisor: it owns every
// gobert runner subprocess the serving stack launches and extends the
// fault model's "faults change counters, never output" invariant from
// the modeled network up to the OS process level.
//
// A supervised execution attempt can end five ways: a valid reply
// (success — program-level RunErr included, since the interpreter
// reports the same one), a deterministic runner rejection (stale
// fingerprint, bad spec — retrying cannot help), a crash (the process
// died mid-write: SIGKILL, OOM, garbage on stdout), a wall-clock
// timeout (the supervisor SIGKILLs the hung runner), or a client
// cancellation. Crashes and timeouts are retried under the same
// bounded-exponential-backoff discipline fault.RetryPolicy codifies for
// the modeled network; when the budget is exhausted — or a per-program
// circuit breaker has tripped after repeated failures — the run falls
// back to the in-process interpreter backend, which is bit-identical to
// the compiled runner by the PR 8 differential guarantee (DESIGN §9).
// A flaky runner therefore degrades throughput, never correctness.
package super

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/gobert"
	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/gobe"
	"repro/internal/serve"
	"repro/internal/vm"
)

// Chaos configures deterministic crash injection: each launch may arm
// the runner's self-SIGKILL timer (MCHPL_RUNNER_CRASH_AFTER_US) with a
// seeded-PRNG delay, so a failing crash-chaos run replays exactly.
type Chaos struct {
	// Seed drives the splitmix64 PRNG choosing kill decisions and delays.
	Seed uint64
	// KillProb is the per-launch probability of arming the kill timer.
	KillProb float64
	// MinDelayUS/MaxDelayUS bound the armed delay in microseconds.
	MinDelayUS int64
	MaxDelayUS int64
	// MaxKills bounds armed launches per Exec call (0 = unlimited), so a
	// chaos run with MaxKills < the retry budget always converges on the
	// compiled backend rather than the fallback.
	MaxKills int
}

// Options configures a Supervisor. The zero value is production-ready.
type Options struct {
	// AttemptTimeout is the per-attempt wall-clock budget; a runner that
	// exceeds it is SIGKILLed and the attempt counts as a timeout
	// (0 = 2 minutes).
	AttemptTimeout time.Duration
	// Retry bounds restarts per execution: MaxRetries restarts after the
	// first attempt, waiting min(BackoffBase<<attempt, BackoffCap) *
	// BackoffUnit between attempts — the same semantics the modeled
	// network applies per message. Zero fields take fault.DefaultRetry;
	// a negative MaxRetries disables restarts entirely.
	Retry fault.RetryPolicy
	// BackoffUnit converts the policy's abstract latency units into wall
	// time (0 = 25ms).
	BackoffUnit time.Duration
	// BreakerThreshold trips a program's circuit breaker after this many
	// consecutive failed executions (0 = 3, negative disables breaking).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// single half-open probe is allowed through (0 = 30s).
	BreakerCooldown time.Duration
	// Chaos enables deterministic crash injection (tests/harness only).
	Chaos *Chaos

	// sleep is the backoff clock (tests stub it); nil = time.Sleep.
	sleep func(time.Duration)
}

// Target is one supervised runner binary plus its interpreter fallback.
type Target struct {
	// Key identifies the program for circuit-breaking (content-derived).
	Key string
	// Bin is the runner binary path.
	Bin string
	// Fallback executes the spec on the in-process interpreter with the
	// exact wire encoding a runner reply uses (gobe.InterpReply). Nil
	// means no fallback: exhausted retries surface as an error.
	Fallback func(*gobert.RunSpec) (*gobert.Reply, error)
}

// ForRunner derives the supervised target for a built runner.
func ForRunner(r *gobe.Runner) Target {
	sum := sha256.Sum256([]byte(r.Source))
	return Target{
		Key: fmt.Sprintf("%s:%x", r.Name, sum[:8]),
		Bin: r.Bin,
		Fallback: func(spec *gobert.RunSpec) (*gobert.Reply, error) {
			return gobe.InterpReply(r.Name, r.Source, r.Opts, spec)
		},
	}
}

// StatsSnapshot is the supervisor's counter state at one instant.
type StatsSnapshot struct {
	Launches             uint64 `json:"launches"`
	Restarts             uint64 `json:"restarts"`
	Crashes              uint64 `json:"crashes"`
	SigKills             uint64 `json:"sigkills"`
	Timeouts             uint64 `json:"timeouts"`
	PermanentFailures    uint64 `json:"permanent_failures"`
	Cancelled            uint64 `json:"cancelled"`
	Fallbacks            uint64 `json:"fallbacks"`
	BuildFallbacks       uint64 `json:"build_fallbacks"`
	ChaosKillsArmed      uint64 `json:"chaos_kills_armed"`
	BreakerTrips         uint64 `json:"breaker_trips"`
	BreakerProbes        uint64 `json:"breaker_probes"`
	BreakerCloses        uint64 `json:"breaker_closes"`
	BreakerShortCircuits uint64 `json:"breaker_short_circuits"`
	BreakersOpen         int    `json:"breakers_open"`
}

// Supervisor owns runner subprocesses: timeouts, restart backoff, and
// per-program circuit breakers. Safe for concurrent use.
type Supervisor struct {
	opts Options

	launches             atomic.Uint64
	restarts             atomic.Uint64
	crashes              atomic.Uint64
	sigKills             atomic.Uint64
	timeouts             atomic.Uint64
	permanent            atomic.Uint64
	cancelled            atomic.Uint64
	fallbacks            atomic.Uint64
	buildFallbacks       atomic.Uint64
	chaosKills           atomic.Uint64
	breakerTrips         atomic.Uint64
	breakerProbes        atomic.Uint64
	breakerCloses        atomic.Uint64
	breakerShortCircuits atomic.Uint64

	mu       sync.Mutex
	breakers map[string]*breaker

	rngMu sync.Mutex
	rng   uint64
}

// New builds a supervisor; zero Options fields take their defaults.
func New(opts Options) *Supervisor {
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 2 * time.Minute
	}
	noRetry := opts.Retry.MaxRetries < 0
	opts.Retry = opts.Retry.Normalized()
	if noRetry {
		opts.Retry.MaxRetries = 0
	}
	if opts.BackoffUnit <= 0 {
		opts.BackoffUnit = 25 * time.Millisecond
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	if opts.sleep == nil {
		opts.sleep = time.Sleep
	}
	s := &Supervisor{opts: opts, breakers: make(map[string]*breaker)}
	if opts.Chaos != nil {
		s.rng = opts.Chaos.Seed
	}
	return s
}

// Stats snapshots the supervisor counters.
func (s *Supervisor) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		Launches:             s.launches.Load(),
		Restarts:             s.restarts.Load(),
		Crashes:              s.crashes.Load(),
		SigKills:             s.sigKills.Load(),
		Timeouts:             s.timeouts.Load(),
		PermanentFailures:    s.permanent.Load(),
		Cancelled:            s.cancelled.Load(),
		Fallbacks:            s.fallbacks.Load(),
		BuildFallbacks:       s.buildFallbacks.Load(),
		ChaosKillsArmed:      s.chaosKills.Load(),
		BreakerTrips:         s.breakerTrips.Load(),
		BreakerProbes:        s.breakerProbes.Load(),
		BreakerCloses:        s.breakerCloses.Load(),
		BreakerShortCircuits: s.breakerShortCircuits.Load(),
	}
	s.mu.Lock()
	for _, b := range s.breakers {
		if b.state == breakerOpen {
			snap.BreakersOpen++
		}
	}
	s.mu.Unlock()
	return snap
}

// AuxMetrics exposes the counters in the shape serve.Options.AuxMetrics
// expects (deterministic key set, rendered sorted).
func (s *Supervisor) AuxMetrics() map[string]float64 {
	snap := s.Stats()
	return map[string]float64{
		"super_launches_total":               float64(snap.Launches),
		"super_restarts_total":               float64(snap.Restarts),
		"super_crashes_total":                float64(snap.Crashes),
		"super_sigkills_total":               float64(snap.SigKills),
		"super_timeouts_total":               float64(snap.Timeouts),
		"super_permanent_failures_total":     float64(snap.PermanentFailures),
		"super_cancelled_total":              float64(snap.Cancelled),
		"super_fallbacks_total":              float64(snap.Fallbacks),
		"super_build_fallbacks_total":        float64(snap.BuildFallbacks),
		"super_chaos_kills_armed_total":      float64(snap.ChaosKillsArmed),
		"super_breaker_trips_total":          float64(snap.BreakerTrips),
		"super_breaker_probes_total":         float64(snap.BreakerProbes),
		"super_breaker_closes_total":         float64(snap.BreakerCloses),
		"super_breaker_short_circuits_total": float64(snap.BreakerShortCircuits),
		"super_breakers_open":                float64(snap.BreakersOpen),
	}
}

// Exec runs one RunSpec on the target under full supervision: timeout,
// crash restarts with backoff, circuit breaking, interpreter fallback.
func (s *Supervisor) Exec(t Target, spec *gobert.RunSpec) (*gobert.Reply, error) {
	return s.exec(t, spec, nil)
}

// Outcome mirrors gobe.Runner.Outcome through supervision: the full
// serve.Execute pipeline inside the runner, with the supervisor's
// recovery ladder around it.
func (s *Supervisor) Outcome(r *gobe.Runner, req *serve.Request) (*gobert.Reply, error) {
	req2 := *req
	req2.Name, req2.Source = r.Name, r.Source
	return s.Exec(ForRunner(r), &gobert.RunSpec{Mode: "outcome", Request: &req2})
}

// ServeRun adapts the supervisor to serve.Options.Run: every scheduled
// job builds (content-hash cached) and executes the compiled runner
// under supervision. A build failure — most commonly a missing Go
// toolchain — degrades to the in-process interpreter, which serves the
// identical bytes. Mid-run cancellation SIGKILLs the runner.
func (s *Supervisor) ServeRun() func(*serve.Request, *serve.RunControl) (*serve.Outcome, error) {
	return func(req *serve.Request, ctl *serve.RunControl) (*serve.Outcome, error) {
		r, err := gobe.Build(req.Name, req.Source, compile.Options{})
		if err != nil {
			s.buildFallbacks.Add(1)
			return serve.Execute(req, ctl)
		}
		req2 := *req
		var cancel *atomic.Bool
		if ctl != nil {
			cancel = ctl.Cancel
		}
		reply, err := s.exec(ForRunner(r), &gobert.RunSpec{Mode: "outcome", Request: &req2}, cancel)
		if err != nil {
			return nil, err
		}
		if reply.RunErr != "" {
			return nil, errors.New(reply.RunErr)
		}
		var out serve.Outcome
		if err := json.Unmarshal(reply.Outcome, &out); err != nil {
			return nil, fmt.Errorf("decoding runner outcome: %v", err)
		}
		out.ProfileJSON = reply.Profile
		return &out, nil
	}
}

func (s *Supervisor) exec(t Target, spec *gobert.RunSpec, cancel *atomic.Bool) (*gobert.Reply, error) {
	in, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	if t.Key == "" {
		t.Key = t.Bin
	}
	if !s.admit(t.Key) {
		s.breakerShortCircuits.Add(1)
		return s.fallback(t, spec, errors.New("circuit breaker open"))
	}
	pol := s.opts.Retry
	kills := 0
	var lastErr error
	for attempt := 0; ; attempt++ {
		reply, v := s.runOnce(t, in, cancel, &kills)
		switch v.class {
		case attemptOK:
			s.noteSuccess(t.Key)
			return reply, nil
		case attemptCancelled:
			// A client cancellation says nothing about the target's
			// health: leave the breaker alone.
			s.cancelled.Add(1)
			return nil, errors.New(vm.ErrCancelled)
		case attemptPermanent:
			// The runner rejected the work deterministically (stale
			// fingerprint, bad spec): restarting cannot help.
			s.permanent.Add(1)
			s.noteFailure(t.Key)
			return s.fallback(t, spec, v.err)
		}
		lastErr = v.err
		if attempt >= pol.MaxRetries {
			s.noteFailure(t.Key)
			return s.fallback(t, spec, lastErr)
		}
		s.restarts.Add(1)
		s.opts.sleep(backoffWait(pol, attempt) * s.opts.BackoffUnit)
	}
}

// backoffWait returns the wait before restart attempt+1 in policy units:
// min(BackoffBase << attempt, BackoffCap).
func backoffWait(pol fault.RetryPolicy, attempt int) time.Duration {
	units := pol.BackoffCap
	if attempt < 30 {
		if u := pol.BackoffBase << attempt; u < units {
			units = u
		}
	}
	return time.Duration(units)
}

type attemptClass int

const (
	attemptOK attemptClass = iota
	attemptPermanent
	attemptCrash
	attemptTimeout
	attemptCancelled
)

type verdict struct {
	class attemptClass
	err   error
}

// runOnce launches the runner binary for one attempt and classifies how
// it ended. The reply on stdout is authoritative: a decodable reply with
// no runner-internal error is success regardless of exit status; an
// undecodable reply means the process died mid-write (crash).
func (s *Supervisor) runOnce(t Target, in []byte, cancel *atomic.Bool, kills *int) (*gobert.Reply, verdict) {
	cmd := exec.Command(t.Bin)
	cmd.Stdin = bytes.NewReader(in)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	// A killed runner can leave grandchildren holding its stdout pipe;
	// force-close the pipes shortly after the process itself exits so
	// Wait can never hang on an orphan.
	cmd.WaitDelay = time.Second
	if c := s.opts.Chaos; c != nil && (c.MaxKills <= 0 || *kills < c.MaxKills) && s.chance(c.KillProb) {
		cmd.Env = append(os.Environ(), fmt.Sprintf("MCHPL_RUNNER_CRASH_AFTER_US=%d", s.chaosDelay()))
		*kills++
		s.chaosKills.Add(1)
	}
	s.launches.Add(1)
	if err := cmd.Start(); err != nil {
		// The binary itself is unlaunchable (deleted, not executable):
		// restarting cannot help.
		return nil, verdict{attemptPermanent, fmt.Errorf("launching runner: %w", err)}
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	timer := time.NewTimer(s.opts.AttemptTimeout)
	defer timer.Stop()
	var pollC <-chan time.Time
	if cancel != nil {
		poll := time.NewTicker(5 * time.Millisecond)
		defer poll.Stop()
		pollC = poll.C
	}
	for {
		select {
		case werr := <-done:
			return s.classify(out.Bytes(), werr)
		case <-timer.C:
			_ = cmd.Process.Kill()
			<-done
			s.timeouts.Add(1)
			return nil, verdict{attemptTimeout, fmt.Errorf("runner exceeded %s wall-clock budget", s.opts.AttemptTimeout)}
		case <-pollC:
			if cancel.Load() {
				_ = cmd.Process.Kill()
				<-done
				return nil, verdict{class: attemptCancelled}
			}
		}
	}
}

func (s *Supervisor) classify(stdout []byte, werr error) (*gobert.Reply, verdict) {
	var reply gobert.Reply
	if err := json.Unmarshal(stdout, &reply); err == nil {
		if reply.Err != "" {
			return nil, verdict{attemptPermanent, fmt.Errorf("runner: %s", reply.Err)}
		}
		return &reply, verdict{class: attemptOK}
	}
	// No decodable reply: the process died before completing the
	// protocol (SIGKILL mid-write, OOM kill, corrupted output).
	s.crashes.Add(1)
	msg := "runner produced no decodable reply"
	if sig, ok := killedBySignal(werr); ok {
		msg = fmt.Sprintf("runner killed by %s", sig)
		if sig == "SIGKILL" {
			s.sigKills.Add(1)
		}
	} else if werr != nil {
		msg = fmt.Sprintf("runner crashed: %v", werr)
	}
	return nil, verdict{attemptCrash, errors.New(msg)}
}

func (s *Supervisor) fallback(t Target, spec *gobert.RunSpec, cause error) (*gobert.Reply, error) {
	if t.Fallback == nil {
		return nil, fmt.Errorf("runner %s failed with no fallback: %w", t.Key, cause)
	}
	s.fallbacks.Add(1)
	return t.Fallback(spec)
}

// Circuit breaker: closed (counting consecutive failed executions) →
// open (every request short-circuits to the fallback) → half-open after
// the cooldown (exactly one probe runs the compiled path; success
// closes, failure reopens).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	state    breakerState
	consec   int
	openedAt time.Time
}

// admit reports whether the compiled path may run for key, performing
// the open → half-open transition when the cooldown has elapsed.
func (s *Supervisor) admit(key string) bool {
	if s.opts.BreakerThreshold < 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[key]
	if b == nil {
		b = &breaker{}
		s.breakers[key] = b
	}
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) >= s.opts.BreakerCooldown {
			b.state = breakerHalfOpen
			s.breakerProbes.Add(1)
			return true
		}
		return false
	case breakerHalfOpen:
		// One probe at a time; everyone else keeps falling back.
		return false
	}
	return true
}

func (s *Supervisor) noteSuccess(key string) {
	if s.opts.BreakerThreshold < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[key]
	if b == nil {
		return
	}
	if b.state == breakerHalfOpen {
		s.breakerCloses.Add(1)
	}
	b.state = breakerClosed
	b.consec = 0
}

func (s *Supervisor) noteFailure(key string) {
	if s.opts.BreakerThreshold < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[key]
	if b == nil {
		b = &breaker{}
		s.breakers[key] = b
	}
	b.consec++
	switch {
	case b.state == breakerHalfOpen:
		// The probe failed: reopen for another cooldown.
		b.state = breakerOpen
		b.openedAt = time.Now()
	case b.state == breakerClosed && b.consec >= s.opts.BreakerThreshold:
		b.state = breakerOpen
		b.openedAt = time.Now()
		s.breakerTrips.Add(1)
	}
}

// chance draws one uniform float in [0,1) from the chaos PRNG
// (splitmix64, the same generator internal/fault uses) and compares
// against p; p <= 0 and p >= 1 short-circuit without consuming state.
func (s *Supervisor) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(s.next()>>11)/(1<<53) < p
}

func (s *Supervisor) next() uint64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *Supervisor) chaosDelay() int64 {
	c := s.opts.Chaos
	lo, hi := c.MinDelayUS, c.MaxDelayUS
	if hi < lo {
		hi = lo
	}
	if hi == lo {
		return lo
	}
	return lo + int64(s.next()%uint64(hi-lo+1))
}
