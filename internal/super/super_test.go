package super

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/gobert"
	"repro/internal/fault"
	"repro/internal/vm"
)

// fakeRunner writes an executable shell script standing in for a gobert
// runner binary and returns a Target for it (no fallback). The script
// body runs with $STATE pointing at a per-test scratch file.
func fakeRunner(t *testing.T, body string) Target {
	t.Helper()
	dir := t.TempDir()
	state := filepath.Join(dir, "state")
	script := fmt.Sprintf("#!/bin/sh\nSTATE=%q\n%s\n", state, body)
	bin := filepath.Join(dir, "runner")
	if err := os.WriteFile(bin, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return Target{Key: "fake:" + t.Name(), Bin: bin}
}

// okReply is a minimal valid runner reply.
const okReply = `printf '{"output":"ok","wall_ns":1,"compiled":true}'`

// crashTimes wraps a script body so the first n invocations SIGKILL
// themselves (counting via $STATE) and later ones run the body.
func crashTimes(n int, body string) string {
	return fmt.Sprintf(`c=$(cat "$STATE" 2>/dev/null || echo 0)
echo $((c+1)) > "$STATE"
if [ "$c" -lt %d ]; then kill -9 $$; fi
%s`, n, body)
}

// fastOpts returns supervisor options with test-speed budgets and a
// recorded (not slept) backoff schedule.
func fastOpts(maxRetries int) (Options, *[]time.Duration) {
	var waits []time.Duration
	o := Options{
		AttemptTimeout: 5 * time.Second,
		Retry:          fault.RetryPolicy{MaxRetries: maxRetries},
		BackoffUnit:    time.Nanosecond,
		sleep:          func(d time.Duration) { waits = append(waits, d) },
	}
	return o, &waits
}

func TestExecSuccessFirstTry(t *testing.T) {
	opts, _ := fastOpts(3)
	s := New(opts)
	reply, err := s.Exec(fakeRunner(t, okReply), &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Output != "ok" || !reply.Compiled {
		t.Fatalf("reply = %+v", reply)
	}
	st := s.Stats()
	if st.Launches != 1 || st.Restarts != 0 || st.Crashes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestExecRestartsAfterSigkill: two SIGKILLs then success — the
// supervisor restarts with the policy's bounded exponential backoff and
// the final reply is served as if nothing happened.
func TestExecRestartsAfterSigkill(t *testing.T) {
	opts, waits := fastOpts(5)
	opts.Retry.BackoffBase, opts.Retry.BackoffCap = 2, 16
	s := New(opts)
	reply, err := s.Exec(fakeRunner(t, crashTimes(2, okReply)), &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Output != "ok" {
		t.Fatalf("reply = %+v", reply)
	}
	st := s.Stats()
	if st.Restarts != 2 || st.Crashes != 2 || st.SigKills != 2 {
		t.Fatalf("restarts=%d crashes=%d sigkills=%d, want 2/2/2", st.Restarts, st.Crashes, st.SigKills)
	}
	if st.Launches != 3 || st.Fallbacks != 0 {
		t.Fatalf("launches=%d fallbacks=%d, want 3/0", st.Launches, st.Fallbacks)
	}
	// Backoff schedule: base 2 then doubled to 4 (units, BackoffUnit=1ns).
	want := []time.Duration{2, 4}
	if len(*waits) != len(want) || (*waits)[0] != want[0] || (*waits)[1] != want[1] {
		t.Fatalf("backoff waits = %v, want %v", *waits, want)
	}
}

// TestExecExhaustedRetriesFallsBack: a runner that always crashes burns
// the whole retry budget, then the interpreter fallback serves.
func TestExecExhaustedRetriesFallsBack(t *testing.T) {
	opts, _ := fastOpts(2)
	s := New(opts)
	tgt := fakeRunner(t, `kill -9 $$`)
	tgt.Fallback = func(spec *gobert.RunSpec) (*gobert.Reply, error) {
		return &gobert.Reply{Output: "interp"}, nil
	}
	reply, err := s.Exec(tgt, &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Output != "interp" {
		t.Fatalf("reply = %+v, want the fallback's", reply)
	}
	st := s.Stats()
	if st.Launches != 3 || st.Restarts != 2 || st.Fallbacks != 1 {
		t.Fatalf("launches=%d restarts=%d fallbacks=%d, want 3/2/1", st.Launches, st.Restarts, st.Fallbacks)
	}
}

// TestExecNoFallbackSurfacesError: exhausted retries without a fallback
// must return the crash cause, not nil-dereference.
func TestExecNoFallbackSurfacesError(t *testing.T) {
	opts, _ := fastOpts(1)
	s := New(opts)
	_, err := s.Exec(fakeRunner(t, `kill -9 $$`), &gobert.RunSpec{Mode: "run"})
	if err == nil || !strings.Contains(err.Error(), "SIGKILL") {
		t.Fatalf("err = %v, want a SIGKILL crash cause", err)
	}
}

// TestExecTimeoutKillsHungRunner: a hung runner is SIGKILLed at the
// wall-clock budget, retried, then falls back.
func TestExecTimeoutKillsHungRunner(t *testing.T) {
	opts, _ := fastOpts(1)
	opts.AttemptTimeout = 50 * time.Millisecond
	s := New(opts)
	tgt := fakeRunner(t, `sleep 60`)
	tgt.Fallback = func(spec *gobert.RunSpec) (*gobert.Reply, error) {
		return &gobert.Reply{Output: "interp"}, nil
	}
	start := time.Now()
	reply, err := s.Exec(tgt, &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Output != "interp" {
		t.Fatalf("reply = %+v", reply)
	}
	if st := s.Stats(); st.Timeouts != 2 {
		t.Fatalf("timeouts = %d, want 2 (initial + one retry)", st.Timeouts)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("supervisor waited %s on a hung runner", el)
	}
}

// TestExecPermanentErrorSkipsRetries: a deterministic runner rejection
// (Reply.Err, e.g. a stale fingerprint) goes straight to the fallback —
// no restarts, since rerunning cannot change the answer.
func TestExecPermanentErrorSkipsRetries(t *testing.T) {
	opts, _ := fastOpts(5)
	s := New(opts)
	tgt := fakeRunner(t, `printf '{"err":"IR fingerprint mismatch (stale runner?)"}'; exit 1`)
	tgt.Fallback = func(spec *gobert.RunSpec) (*gobert.Reply, error) {
		return &gobert.Reply{Output: "interp"}, nil
	}
	reply, err := s.Exec(tgt, &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Output != "interp" {
		t.Fatalf("reply = %+v", reply)
	}
	st := s.Stats()
	if st.Restarts != 0 || st.PermanentFailures != 1 || st.Launches != 1 {
		t.Fatalf("restarts=%d permanent=%d launches=%d, want 0/1/1", st.Restarts, st.PermanentFailures, st.Launches)
	}
}

// TestExecRunErrIsSuccess: a program-level runtime error inside a valid
// reply is a successful supervision (the interpreter would report the
// same error); it must not burn retries or trip the breaker.
func TestExecRunErrIsSuccess(t *testing.T) {
	opts, _ := fastOpts(3)
	s := New(opts)
	reply, err := s.Exec(fakeRunner(t, `printf '{"run_err":"halt: boom"}'`), &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.RunErr != "halt: boom" {
		t.Fatalf("reply = %+v", reply)
	}
	if st := s.Stats(); st.Restarts != 0 || st.Crashes != 0 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want a clean success", st)
	}
}

// TestBreakerTripsAndShortCircuits: after BreakerThreshold consecutive
// failed executions the breaker opens and later requests skip the
// compiled path entirely (zero launches) while still serving via the
// fallback.
func TestBreakerTripsAndShortCircuits(t *testing.T) {
	opts, _ := fastOpts(-1) // no retries: each exec = one attempt
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Hour
	s := New(opts)
	tgt := fakeRunner(t, `kill -9 $$`)
	tgt.Fallback = func(spec *gobert.RunSpec) (*gobert.Reply, error) {
		return &gobert.Reply{Output: "interp"}, nil
	}
	for i := 0; i < 4; i++ {
		reply, err := s.Exec(tgt, &gobert.RunSpec{Mode: "run"})
		if err != nil || reply.Output != "interp" {
			t.Fatalf("exec %d: reply=%+v err=%v", i, reply, err)
		}
	}
	st := s.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", st.BreakerTrips)
	}
	// Execs 1 and 2 launch (and fail); 3 and 4 short-circuit.
	if st.Launches != 2 || st.BreakerShortCircuits != 2 {
		t.Fatalf("launches=%d shortcircuits=%d, want 2/2", st.Launches, st.BreakerShortCircuits)
	}
	if st.BreakersOpen != 1 {
		t.Fatalf("breakers open = %d, want 1", st.BreakersOpen)
	}
}

// TestBreakerHalfOpenRecovery: after the cooldown one probe runs the
// compiled path; a healthy runner closes the breaker again.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	opts, _ := fastOpts(-1)
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = 30 * time.Millisecond
	s := New(opts)

	// Crash while the marker file exists, then recover.
	tgt := fakeRunner(t, `if [ -e "$STATE.bad" ]; then kill -9 $$; fi
`+okReply)
	marker := filepath.Join(filepath.Dir(tgt.Bin), "state.bad")
	if err := os.WriteFile(marker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	tgt.Fallback = func(spec *gobert.RunSpec) (*gobert.Reply, error) {
		return &gobert.Reply{Output: "interp"}, nil
	}

	if reply, _ := s.Exec(tgt, &gobert.RunSpec{Mode: "run"}); reply.Output != "interp" {
		t.Fatalf("tripping exec got %+v", reply)
	}
	if st := s.Stats(); st.BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", st.BreakerTrips)
	}
	// Still open: short-circuit.
	if reply, _ := s.Exec(tgt, &gobert.RunSpec{Mode: "run"}); reply.Output != "interp" {
		t.Fatalf("open exec got %+v", reply)
	}

	os.Remove(marker)
	time.Sleep(40 * time.Millisecond) // cooldown elapses

	reply, err := s.Exec(tgt, &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Output != "ok" {
		t.Fatalf("probe reply = %+v, want the compiled path again", reply)
	}
	st := s.Stats()
	if st.BreakerProbes != 1 || st.BreakerCloses != 1 || st.BreakersOpen != 0 {
		t.Fatalf("probes=%d closes=%d open=%d, want 1/1/0", st.BreakerProbes, st.BreakerCloses, st.BreakersOpen)
	}
}

// TestBreakerReopensOnFailedProbe: a probe that crashes reopens the
// breaker for another cooldown instead of resetting it.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	opts, _ := fastOpts(-1)
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = 20 * time.Millisecond
	s := New(opts)
	tgt := fakeRunner(t, `kill -9 $$`)
	tgt.Fallback = func(spec *gobert.RunSpec) (*gobert.Reply, error) {
		return &gobert.Reply{Output: "interp"}, nil
	}
	s.Exec(tgt, &gobert.RunSpec{Mode: "run"}) // trips
	time.Sleep(30 * time.Millisecond)
	s.Exec(tgt, &gobert.RunSpec{Mode: "run"}) // probe, fails, reopens
	st := s.Stats()
	if st.BreakerProbes != 1 || st.BreakerCloses != 0 || st.BreakersOpen != 1 {
		t.Fatalf("probes=%d closes=%d open=%d, want 1/0/1", st.BreakerProbes, st.BreakerCloses, st.BreakersOpen)
	}
	if st.BreakerTrips != 1 {
		t.Fatalf("reopen counted as a fresh trip: trips = %d", st.BreakerTrips)
	}
}

// TestCancelKillsRunner: setting the cancel flag mid-run SIGKILLs the
// runner and reports cancellation without retrying or falling back.
func TestCancelKillsRunner(t *testing.T) {
	opts, _ := fastOpts(3)
	s := New(opts)
	tgt := fakeRunner(t, `sleep 60`)
	tgt.Fallback = func(spec *gobert.RunSpec) (*gobert.Reply, error) {
		t.Error("cancelled run must not fall back")
		return nil, nil
	}
	var cancel atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := s.exec(tgt, &gobert.RunSpec{Mode: "run"}, &cancel)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel.Store(true)
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), vm.ErrCancelled) {
			t.Fatalf("err = %v, want cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled exec never returned")
	}
	if st := s.Stats(); st.Cancelled != 1 || st.Restarts != 0 {
		t.Fatalf("cancelled=%d restarts=%d, want 1/0", st.Cancelled, st.Restarts)
	}
}

// TestChaosArmsKillEnv: with KillProb=1 the supervisor arms the
// runner's self-kill env var; MaxKills bounds how many attempts are
// armed, so the run converges on an unarmed attempt.
func TestChaosArmsKillEnv(t *testing.T) {
	opts, _ := fastOpts(4)
	opts.Chaos = &Chaos{Seed: 1, KillProb: 1, MinDelayUS: 10, MaxDelayUS: 20, MaxKills: 2}
	s := New(opts)
	// The fake runner honors the env var the way gobert.Main does
	// (immediately, since it has no real work to stretch over).
	tgt := fakeRunner(t, `if [ -n "$MCHPL_RUNNER_CRASH_AFTER_US" ]; then kill -9 $$; fi
`+okReply)
	reply, err := s.Exec(tgt, &gobert.RunSpec{Mode: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Output != "ok" {
		t.Fatalf("reply = %+v", reply)
	}
	st := s.Stats()
	if st.ChaosKillsArmed != 2 || st.Restarts != 2 || st.Fallbacks != 0 {
		t.Fatalf("armed=%d restarts=%d fallbacks=%d, want 2/2/0", st.ChaosKillsArmed, st.Restarts, st.Fallbacks)
	}
}

// TestChaosDeterministicDelays: the same seed yields the same armed
// delays (the harness's replayability guarantee).
func TestChaosDeterministicDelays(t *testing.T) {
	draw := func() []int64 {
		s := New(Options{Chaos: &Chaos{Seed: 99, MinDelayUS: 1000, MaxDelayUS: 9000}})
		var out []int64
		for i := 0; i < 8; i++ {
			out = append(out, s.chaosDelay())
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d diverged: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 1000 || a[i] > 9000 {
			t.Fatalf("delay %d out of range: %d", i, a[i])
		}
	}
}

// TestBackoffWait pins the unit schedule against the policy semantics.
func TestBackoffWait(t *testing.T) {
	pol := fault.RetryPolicy{MaxRetries: 9, BackoffBase: 1, BackoffCap: 16, TimeoutUnits: 32}
	want := []time.Duration{1, 2, 4, 8, 16, 16, 16}
	for attempt, w := range want {
		if got := backoffWait(pol, attempt); got != w {
			t.Fatalf("backoffWait(attempt=%d) = %d, want %d", attempt, got, w)
		}
	}
	if got := backoffWait(pol, 40); got != 16 {
		t.Fatalf("large attempt must clamp to cap, got %d", got)
	}
}

// TestAuxMetricsShape: the aux metric keys are stable and the values
// reflect the counters (serve renders these into /metrics).
func TestAuxMetricsShape(t *testing.T) {
	opts, _ := fastOpts(-1)
	s := New(opts)
	if _, err := s.Exec(fakeRunner(t, okReply), &gobert.RunSpec{Mode: "run"}); err != nil {
		t.Fatal(err)
	}
	m := s.AuxMetrics()
	if m["super_launches_total"] != 1 {
		t.Fatalf("launches metric = %v", m["super_launches_total"])
	}
	for _, k := range []string{"super_restarts_total", "super_fallbacks_total", "super_breaker_trips_total", "super_breakers_open"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("missing aux metric %s", k)
		}
	}
	if b, err := json.Marshal(s.Stats()); err != nil || len(b) == 0 {
		t.Fatalf("stats snapshot must be JSON-encodable: %v", err)
	}
}
