package absint

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Domain is the lattice + transfer interface a concrete abstract domain
// implements. States S are treated as immutable by the engine: Transfer
// and Refine must copy-on-write (Copy is provided for that), and Join /
// Widen must return a fresh state (or one of their operands unchanged).
type Domain[S any] interface {
	// Entry is the state at function entry.
	Entry(f *ir.Func) S
	// Copy returns an independent copy of s.
	Copy(s S) S
	// Join returns the least upper bound and whether it differs from a.
	Join(a, b S) (S, bool)
	// Widen is Join with extrapolation, applied at loop headers to force
	// termination; it also reports change relative to a.
	Widen(a, b S) (S, bool)
	// Transfer applies one instruction.
	Transfer(s S, in *ir.Instr) S
	// Refine sharpens s with the knowledge that branch in went the taken
	// (then) or not-taken (else) way. Return s unchanged when nothing is
	// known.
	Refine(s S, in *ir.Instr, taken bool) S
}

// widenAfter is how many times a loop header is re-joined before the
// engine switches from Join to Widen there. A couple of plain joins first
// lets short ascending chains (constant → small interval) stabilize
// exactly before extrapolation throws bounds away.
const widenAfter = 3

// maxPasses bounds full RPO sweeps; with widening the fixpoint converges
// in a handful of passes, this is a hard backstop for hostile CFGs.
const maxPasses = 64

// Result holds the fixpoint: the abstract state at entry to each block.
type Result[S any] struct {
	Fn      *ir.Func
	In      []S    // indexed by block ID; valid only where Reached
	Reached []bool // block reachable under the abstraction
}

// Run computes the forward dataflow fixpoint of d over f: reverse
// postorder sweeps with Join at merge points and Widen at natural-loop
// headers once a header has been visited widenAfter times.
func Run[S any](f *ir.Func, d Domain[S]) *Result[S] {
	n := len(f.Blocks)
	res := &Result[S]{
		Fn:      f,
		In:      make([]S, n),
		Reached: make([]bool, n),
	}
	if n == 0 {
		return res
	}
	rpo := cfg.ReversePostorder(f)
	heads := cfg.LoopHeads(f)
	visits := make([]int, n)

	entry := f.Blocks[0]
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, b := range rpo {
			var s S
			have := false
			if b == entry {
				s = d.Entry(f)
				have = true
			}
			for _, p := range b.Preds {
				if !res.Reached[p.ID] {
					continue
				}
				ps := outState(d, res.In[p.ID], p, b)
				if !have {
					s, have = ps, true
				} else {
					s, _ = d.Join(s, ps)
				}
			}
			if !have {
				continue
			}
			if !res.Reached[b.ID] {
				res.In[b.ID] = s
				res.Reached[b.ID] = true
				changed = true
			} else if heads[b.ID] && visits[b.ID] >= widenAfter {
				var ch bool
				res.In[b.ID], ch = d.Widen(res.In[b.ID], s)
				changed = changed || ch
			} else {
				var ch bool
				res.In[b.ID], ch = d.Join(res.In[b.ID], s)
				changed = changed || ch
			}
			visits[b.ID]++
		}
		if !changed {
			break
		}
	}
	return res
}

// outState transfers p's entry state through its body and refines along
// the edge p → succ when p ends in a branch.
func outState[S any](d Domain[S], in S, p, succ *ir.Block) S {
	s := d.Copy(in)
	for _, instr := range p.Instrs {
		s = d.Transfer(s, instr)
	}
	if t := p.Terminator(); t != nil && t.Op == ir.OpBr && len(t.Targets) == 2 {
		if t.Targets[0] == succ && t.Targets[1] != succ {
			s = d.Refine(s, t, true)
		} else if t.Targets[1] == succ && t.Targets[0] != succ {
			s = d.Refine(s, t, false)
		}
	}
	return s
}

// At replays the block prefix to produce the abstract state immediately
// before instr. Returns the zero S and false when instr's block was not
// reached.
func (r *Result[S]) At(d Domain[S], instr *ir.Instr) (S, bool) {
	b := instr.Block
	if b == nil || b.ID >= len(r.Reached) || !r.Reached[b.ID] {
		var zero S
		return zero, false
	}
	s := d.Copy(r.In[b.ID])
	for _, in := range b.Instrs {
		if in == instr {
			return s, true
		}
		s = d.Transfer(s, in)
	}
	return s, true
}

// Out replays the whole block to produce the abstract state at its end.
func (r *Result[S]) Out(d Domain[S], b *ir.Block) (S, bool) {
	if b == nil || b.ID >= len(r.Reached) || !r.Reached[b.ID] {
		var zero S
		return zero, false
	}
	s := d.Copy(r.In[b.ID])
	for _, in := range b.Instrs {
		s = d.Transfer(s, in)
	}
	return s, true
}
