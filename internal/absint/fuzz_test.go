package absint_test

import (
	"math"
	"testing"

	"repro/internal/absint"
)

// FuzzIntervalWiden exercises the widening operator on adversarial loop
// bounds: the properties fuzzed are exactly what the cost engine's
// fixpoint termination and soundness rest on.
//
//   - Widen is an upper-bound operator: the result contains both the
//     previous and the next interval.
//   - Widening stabilizes: once a bound has widened, re-widening with
//     any contained interval is the identity (the engine's loop-head
//     chain terminates).
//   - Saturation: endpoints never escape [-Inf, Inf] even when seeded
//     with math.MinInt64/MaxInt64, so downstream arithmetic cannot
//     overflow.
func FuzzIntervalWiden(f *testing.F) {
	// Adversarial loop bounds: the saturation bound itself, its
	// neighborhood, machine-integer extremes, empty intervals, and the
	// halo/wavefront-style bounds the cost engine actually sees.
	seeds := [][4]int64{
		{0, 9, 0, 10},                                             // classic unstable upper bound
		{0, 1023, -absint.Inf, absint.Inf},                        // widen straight to top
		{absint.Inf, absint.Inf, 0, 0},                            // saturated constant vs zero
		{-absint.Inf, -absint.Inf, 1, 0},                          // saturated low vs empty
		{1, 0, 5, 7},                                              // empty prev adopts next
		{math.MinInt64, math.MaxInt64, -1, 1},                     // beyond the saturation bound
		{absint.Inf - 1, absint.Inf, -absint.Inf, absint.Inf - 1}, // fencepost at Inf
		{0, 255, 256, 1023},                                       // wavefront chunk bounds
		{-3, 3, -4, 4},                                            // both bounds unstable
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3])
	}
	f.Fuzz(func(t *testing.T, pl, ph, nl, nh int64) {
		prev := absint.MakeInterval(pl, ph)
		next := absint.MakeInterval(nl, nh)
		w := prev.Widen(next)

		inBounds := func(i absint.Interval) bool {
			return i.Lo >= -absint.Inf && i.Lo <= absint.Inf &&
				i.Hi >= -absint.Inf && i.Hi <= absint.Inf
		}
		if !inBounds(w) {
			t.Fatalf("widen(%v, %v) = %v escapes saturation bounds", prev, next, w)
		}
		contains := func(outer, inner absint.Interval) bool {
			return inner.IsEmpty() || (!outer.IsEmpty() && outer.Lo <= inner.Lo && outer.Hi >= inner.Hi)
		}
		if !contains(w, prev) || !contains(w, next) {
			t.Fatalf("widen(%v, %v) = %v is not an upper bound", prev, next, w)
		}
		// Stabilization: re-widening with anything w already contains is
		// the identity, so the engine's widening chain terminates.
		if w2 := w.Widen(w); w2 != w {
			t.Fatalf("widen not idempotent at fixpoint: %v -> %v", w, w2)
		}
		if !next.IsEmpty() {
			if w2 := w.Widen(next); w2 != w {
				t.Fatalf("re-widening with contained %v moved %v -> %v", next, w, w2)
			}
		}
		// Join is bounded by widen (widen over-approximates join).
		j := prev.Join(next)
		if !contains(w, j) {
			t.Fatalf("join %v not contained in widen %v", j, w)
		}
	})
}
