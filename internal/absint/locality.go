package absint

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
)

// LocKind classifies a scalar's relationship to the sweep index of the
// enclosing parallel body — the locality lattice. Under owner-computes
// scheduling a task's chunk is aligned with ArrayVal.ElemHome's block
// decomposition, so an access at (Scale·i + Off)/Div lands on:
//
//	Scale=1, Div=1, Off=0   the task's own locale (SiteOwner)
//	Scale=1, Div=1, Off=±k  own locale except a k-wide fringe (SiteHalo)
//	Scale=s>1, Div=1        every s-th home block (SiteStrided)
//	Div=d>1                 a compressed image of the chunk (SiteBlocked)
//	LTop                    statically unknown (fine-grained)
type LocKind uint8

// Locality lattice points, least to greatest.
const (
	LBot       LocKind = iota // unreached
	LConst                    // compile-time constant (V)
	LInvariant                // sweep-invariant, value unknown
	LIndex                    // (Scale·i + Off) / Div of the sweep index i
	LTop                      // no relation known
)

// LocVal is one point of the locality lattice.
type LocVal struct {
	K          LocKind
	V          int64 // for LConst
	Scale, Off int64 // for LIndex: value = (Scale·i + Off) / Div
	Div        int64
}

// LocTop is the unknown locality value.
func LocTop() LocVal { return LocVal{K: LTop} }

// LocConst is a compile-time constant.
func LocConst(v int64) LocVal { return LocVal{K: LConst, V: v} }

// LocIdx is the sweep index itself.
func LocIdx() LocVal { return LocVal{K: LIndex, Scale: 1, Div: 1} }

func (l LocVal) String() string {
	switch l.K {
	case LBot:
		return "⊥"
	case LConst:
		return fmt.Sprintf("%d", l.V)
	case LInvariant:
		return "inv"
	case LIndex:
		s := "i"
		if l.Scale != 1 {
			s = fmt.Sprintf("%d·i", l.Scale)
		}
		if l.Off != 0 {
			s += fmt.Sprintf("%+d", l.Off)
		}
		if l.Div != 1 {
			s = "(" + s + fmt.Sprintf(")/%d", l.Div)
		}
		return s
	}
	return "⊤"
}

func (l LocVal) join(o LocVal) LocVal {
	if l.K == LBot {
		return o
	}
	if o.K == LBot || l == o {
		return l
	}
	// Two different constants are still sweep-invariant.
	if (l.K == LConst || l.K == LInvariant) && (o.K == LConst || o.K == LInvariant) {
		return LocVal{K: LInvariant}
	}
	return LocTop()
}

// SiteClass names the CommPlan class a LocVal implies for an access.
type SiteClass uint8

// Access classes mirroring analyze's CommPlan site kinds.
const (
	ClassUnknown SiteClass = iota // fine-grained remote access
	ClassLocal                    // sweep-invariant (same element every iter)
	ClassOwner                    // own chunk, offset 0
	ClassHalo                     // own chunk ± a constant fringe
	ClassStrided
	ClassBlocked
)

func (c SiteClass) String() string {
	switch c {
	case ClassLocal:
		return "local"
	case ClassOwner:
		return "owner"
	case ClassHalo:
		return "halo"
	case ClassStrided:
		return "strided"
	case ClassBlocked:
		return "blocked"
	}
	return "fine-grained"
}

// Classify maps a locality value to its CommPlan site class.
func (l LocVal) Classify() SiteClass {
	switch l.K {
	case LConst, LInvariant:
		return ClassLocal
	case LIndex:
		if l.Div > 1 {
			return ClassBlocked
		}
		if l.Scale > 1 || l.Scale < -1 {
			return ClassStrided
		}
		if l.Off == 0 {
			return ClassOwner
		}
		return ClassHalo
	}
	return ClassUnknown
}

// LocEnv is the locality domain's store.
type LocEnv struct {
	Vars map[*ir.Var]LocVal
	Dead bool
}

// Get returns the locality of v (LTop when untracked).
func (e *LocEnv) Get(v *ir.Var) LocVal {
	if v == nil {
		return LocTop()
	}
	if x, ok := e.Vars[v]; ok {
		return x
	}
	return LocTop()
}

func (e *LocEnv) set(v *ir.Var, x LocVal) {
	if v == nil {
		return
	}
	if x.K == LTop {
		delete(e.Vars, v)
		return
	}
	e.Vars[v] = x
}

// LocDomain runs the locality lattice over a forall body: Index holds
// the body's index parameters (seeded LIndex), and every other parameter
// is sweep-invariant.
type LocDomain struct {
	Fn    *ir.Func
	Index map[*ir.Var]bool
}

var _ Domain[*LocEnv] = (*LocDomain)(nil)

// Entry seeds index parameters as the sweep index and the remaining
// parameters (captures) as sweep-invariant.
func (d *LocDomain) Entry(f *ir.Func) *LocEnv {
	e := &LocEnv{Vars: make(map[*ir.Var]LocVal)}
	for _, p := range f.Params {
		if d.Index[p] {
			e.set(p, LocIdx())
		} else {
			e.set(p, LocVal{K: LInvariant})
		}
	}
	return e
}

// Copy clones the store.
func (d *LocDomain) Copy(s *LocEnv) *LocEnv {
	out := &LocEnv{Vars: make(map[*ir.Var]LocVal, len(s.Vars)), Dead: s.Dead}
	for v, x := range s.Vars {
		out.Vars[v] = x
	}
	return out
}

// Join merges b into a.
func (d *LocDomain) Join(a, b *LocEnv) (*LocEnv, bool) {
	if b == nil || b.Dead {
		return a, false
	}
	if a == nil || a.Dead {
		return d.Copy(b), true
	}
	changed := false
	for v, av := range a.Vars {
		bv, ok := b.Vars[v]
		if !ok {
			bv = LocTop()
		}
		nv := av.join(bv)
		if nv != av {
			changed = true
			a.set(v, nv)
		}
	}
	return a, changed
}

// Widen is Join: the lattice is finite in height per variable.
func (d *LocDomain) Widen(a, b *LocEnv) (*LocEnv, bool) { return d.Join(a, b) }

// Transfer applies one instruction.
func (d *LocDomain) Transfer(s *LocEnv, in *ir.Instr) *LocEnv {
	if s.Dead {
		return s
	}
	switch in.Op {
	case ir.OpConst:
		if in.Lit != nil && in.Lit.T != nil && in.Lit.T.Kind() == types.Int {
			s.set(in.Dst, LocConst(in.Lit.I))
			return s
		}
		s.set(in.Dst, LocVal{K: LInvariant})

	case ir.OpMove:
		s.set(in.Dst, s.Get(in.A))

	case ir.OpBin:
		s.set(in.Dst, locBin(in.BinOp, s.Get(in.A), s.Get(in.B)))

	case ir.OpUn:
		a := s.Get(in.A)
		if in.BinOp == token.MINUS {
			switch a.K {
			case LConst:
				s.set(in.Dst, LocConst(-a.V))
				return s
			case LIndex:
				s.set(in.Dst, LocVal{K: LIndex, Scale: -a.Scale, Off: -a.Off, Div: a.Div})
				return s
			case LInvariant:
				s.set(in.Dst, a)
				return s
			}
		}
		s.set(in.Dst, LocTop())

	case ir.OpCall:
		s.set(in.Dst, LocTop())
		if in.Callee != nil {
			for i, p := range in.Callee.Params {
				if p.IsRef && i < len(in.Args) {
					s.set(in.Args[i], LocTop())
				}
			}
		}

	case ir.OpSpawn:
		for _, a := range in.Args {
			s.set(a, LocTop())
		}

	default:
		if dst := in.Def(); dst != nil {
			s.set(dst, LocTop())
		}
	}
	return s
}

func locBin(op token.Kind, a, b LocVal) LocVal {
	if a.K == LConst && b.K == LConst {
		switch op {
		case token.PLUS:
			return LocConst(a.V + b.V)
		case token.MINUS:
			return LocConst(a.V - b.V)
		case token.STAR:
			return LocConst(a.V * b.V)
		case token.SLASH:
			if b.V != 0 {
				return LocConst(a.V / b.V)
			}
		}
		return LocVal{K: LInvariant}
	}
	inv := func(v LocVal) bool { return v.K == LConst || v.K == LInvariant }
	if inv(a) && inv(b) {
		switch op {
		case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
			return LocVal{K: LInvariant}
		}
		return LocTop()
	}
	// Index combined with a constant.
	idx, c, swapped := a, b, false
	if b.K == LIndex {
		idx, c, swapped = b, a, true
	}
	if idx.K != LIndex || c.K != LConst {
		return LocTop()
	}
	switch op {
	case token.PLUS:
		if idx.Div == 1 {
			return LocVal{K: LIndex, Scale: idx.Scale, Off: idx.Off + c.V, Div: 1}
		}
	case token.MINUS:
		if idx.Div == 1 {
			if swapped { // c - idx
				return LocVal{K: LIndex, Scale: -idx.Scale, Off: c.V - idx.Off, Div: 1}
			}
			return LocVal{K: LIndex, Scale: idx.Scale, Off: idx.Off - c.V, Div: 1}
		}
	case token.STAR:
		if idx.Div == 1 {
			return LocVal{K: LIndex, Scale: idx.Scale * c.V, Off: idx.Off * c.V, Div: 1}
		}
	case token.SLASH:
		if !swapped && c.V > 1 && idx.Div == 1 {
			return LocVal{K: LIndex, Scale: idx.Scale, Off: idx.Off, Div: c.V}
		}
	}
	return LocTop()
}

// Refine is a no-op: branch conditions carry no locality information.
func (d *LocDomain) Refine(s *LocEnv, in *ir.Instr, taken bool) *LocEnv { return s }
