package absint

import (
	"strings"

	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
)

// Env is the abstract store of the interval/affine domain: a map from IR
// variables to abstract values. Variables absent from Vars are Top.
// Dead marks a state flowing along a statically-infeasible branch edge;
// dead states are identities of Join, so blocks whose every incoming
// edge is infeasible keep a dead entry state.
type Env struct {
	Vars map[*ir.Var]Val
	Dead bool
}

// NewEnv returns an empty (all-Top) environment.
func NewEnv() *Env { return &Env{Vars: make(map[*ir.Var]Val)} }

// Get returns the abstract value of v (Top when untracked).
func (e *Env) Get(v *ir.Var) Val {
	if v == nil {
		return Top()
	}
	if x, ok := e.Vars[v]; ok {
		return x
	}
	return Top()
}

// Set binds v; binding Top removes the entry.
func (e *Env) Set(v *ir.Var, x Val) {
	if v == nil {
		return
	}
	if x.Kind == VTop {
		delete(e.Vars, v)
		return
	}
	e.Vars[v] = x
}

func (e *Env) clone() *Env {
	out := &Env{Vars: make(map[*ir.Var]Val, len(e.Vars)), Dead: e.Dead}
	for v, x := range e.Vars {
		out.Vars[v] = x
	}
	return out
}

// IntDomain is the interval/affine abstract domain over Env. Seed binds
// parameters and globals at function entry; Pins holds variables frozen
// to a symbolic value — loop induction variables and forall body index
// parameters — which any write re-pins, so `i = i + 1` leaves i as the
// symbol i with its precomputed range instead of diverging through the
// fixpoint. Configs resolves `config const` builtins; NumCores answers
// locale.maxTaskPar queries (0 = unknown).
type IntDomain struct {
	Fn       *ir.Func
	Seed     map[*ir.Var]Val
	Pins     map[*ir.Var]Val
	Configs  map[string]Val
	NumCores int64
	// RebindsParam, when set, reports whether callee may rebind its
	// i-th parameter (directly or transitively through ref passing).
	// nil is conservative: every ref argument is clobbered at calls
	// and every capture at spawns.
	RebindsParam func(callee *ir.Func, i int) bool
}

var _ Domain[*Env] = (*IntDomain)(nil)

func (d *IntDomain) mayRebind(callee *ir.Func, i int) bool {
	if callee == nil {
		return true
	}
	if d.RebindsParam == nil {
		return true
	}
	return d.RebindsParam(callee, i)
}

// Entry seeds parameters, globals and pins.
func (d *IntDomain) Entry(f *ir.Func) *Env {
	e := NewEnv()
	for v, x := range d.Seed {
		e.Set(v, x)
	}
	for v, x := range d.Pins {
		e.Set(v, x)
	}
	return e
}

// Copy clones the store.
func (d *IntDomain) Copy(s *Env) *Env { return s.clone() }

// Join merges b into a (a may be mutated and returned).
func (d *IntDomain) Join(a, b *Env) (*Env, bool) { return d.merge(a, b, false) }

// Widen merges with interval extrapolation on unstable bounds.
func (d *IntDomain) Widen(a, b *Env) (*Env, bool) { return d.merge(a, b, true) }

func (d *IntDomain) merge(a, b *Env, widen bool) (*Env, bool) {
	if b == nil || b.Dead {
		return a, false
	}
	if a == nil || a.Dead {
		return b.clone(), true
	}
	changed := false
	for v, av := range a.Vars {
		bv, ok := b.Vars[v]
		if !ok {
			bv = Top()
		}
		var nv Val
		if widen {
			nv = av.widen(bv)
		} else {
			nv = av.Join(bv)
		}
		if !nv.equal(av) {
			changed = true
			a.Set(v, nv)
		}
	}
	return a, changed
}

// Transfer applies one instruction to s in place (the engine hands it an
// owned copy).
func (d *IntDomain) Transfer(s *Env, in *ir.Instr) *Env {
	if s.Dead {
		return s
	}
	set := func(x Val) {
		if in.Dst == nil {
			return
		}
		if pin, ok := d.Pins[in.Dst]; ok {
			s.Set(in.Dst, pin)
			return
		}
		s.Set(in.Dst, x)
	}

	switch in.Op {
	case ir.OpConst:
		set(litVal(in.Lit))

	case ir.OpMove:
		set(s.Get(in.A))

	case ir.OpBin:
		set(d.evalBin(s, in))

	case ir.OpUn:
		a := s.Get(in.A)
		switch in.BinOp {
		case token.MINUS:
			set(NumV(a.AsNum().Neg()))
		case token.NOT:
			switch a.B {
			case BTrue:
				set(BoolV(BFalse))
			case BFalse:
				set(BoolV(BTrue))
			default:
				set(BoolV(BUnknown))
			}
		default:
			set(Top())
		}

	case ir.OpMakeRange:
		lo := s.Get(in.A).AsNum()
		hiOrN := s.Get(in.B).AsNum()
		r := RangeInfo{Lo: lo, Hi: hiOrN, Stride: 1}
		if in.Method == "counted" {
			r.Hi = lo.Add(hiOrN).Sub(ConstNum(1))
		}
		if len(in.Args) > 0 {
			if st, ok := s.Get(in.Args[0]).AsNum().IsConst(); ok && st > 0 {
				r.Stride = st
			} else {
				r.Stride = 0
			}
		}
		set(Val{Kind: VRange, Dims: [3]RangeInfo{r}})

	case ir.OpMakeDomain:
		v := Val{Kind: VDomain, Rank: len(in.Args)}
		ok := len(in.Args) > 0 && len(in.Args) <= 3
		for i, a := range in.Args {
			av := s.Get(a)
			if av.Kind != VRange {
				ok = false
				break
			}
			v.Dims[i] = av.Dims[0]
		}
		if ok {
			set(v)
		} else {
			set(Top())
		}

	case ir.OpDomMethod:
		set(d.evalDomMethod(s, in))

	case ir.OpQuery:
		set(d.evalQuery(s, in))

	case ir.OpAllocArray:
		av := s.Get(in.A)
		if av.Kind == VDomain {
			out := av
			out.Kind = VArray
			if at, ok := in.Dst.Type.(*types.ArrayType); ok && at.Elem != nil {
				out.ElemSz = at.Elem.Size()
			}
			set(out)
		} else {
			set(Top())
		}

	case ir.OpBuiltin:
		set(d.evalBuiltin(s, in))

	case ir.OpCall:
		// Intraprocedural: the return value is unknown, and arguments
		// bound to ref parameters may be written by the callee.
		set(Top())
		if in.Callee != nil {
			for i, p := range in.Callee.Params {
				if p.IsRef && i < len(in.Args) && d.mayRebind(in.Callee, i) {
					s.Set(in.Args[i], Top())
				}
			}
		}

	case ir.OpSpawn:
		// Task bodies capture outer vars by reference; clobber the
		// captures the body (or anything it calls) may rebind. Index
		// parameters precede captures in the body's signature.
		havoc := func(body *ir.Func, args []*ir.Var, off int) {
			for j, a := range args {
				if d.mayRebind(body, off+j) {
					s.Set(a, Top())
				}
			}
		}
		off := 0
		if in.Spawn != nil {
			switch in.Spawn.Kind {
			case ir.SpawnForall, ir.SpawnCoforall:
				off = in.Spawn.NumIdx
			}
		}
		havoc(in.Callee, in.Args, off)
		if in.Spawn != nil {
			for k, bf := range in.Spawn.Extra {
				if k < len(in.Spawn.ExtraArgs) {
					havoc(bf, in.Spawn.ExtraArgs[k], 0)
				}
			}
		}
		// Re-pin any pinned captures (the pin is the summary).
		for _, a := range in.Args {
			if pin, ok := d.Pins[a]; ok {
				s.Set(a, pin)
			}
		}

	case ir.OpIndex:
		if s.Get(in.A).Kind == VLocales && len(in.Args) == 1 {
			set(Val{Kind: VLocale, Num: s.Get(in.Args[0]).AsNum()})
		} else {
			set(Top())
		}

	case ir.OpSlice, ir.OpRefElem, ir.OpRefField, ir.OpField,
		ir.OpTupleGet, ir.OpMakeTuple, ir.OpAllocRec,
		ir.OpZipSetup, ir.OpZipAdvance:
		set(Top())

	case ir.OpIndexStore, ir.OpFieldStore, ir.OpTupleSet,
		ir.OpRet, ir.OpJmp, ir.OpBr, ir.OpYield, ir.OpNop:
		// No scalar binding changes.
	}
	return s
}

func litVal(l *ir.Lit) Val {
	if l == nil || l.T == nil {
		return Top()
	}
	switch l.T.Kind() {
	case types.Int:
		return ConstV(l.I)
	case types.Bool:
		return BoolV(boolOf(l.B))
	}
	return Top()
}

func (d *IntDomain) evalBin(s *Env, in *ir.Instr) Val {
	a, b := s.Get(in.A), s.Get(in.B)
	switch in.BinOp {
	case token.AND, token.OR:
		ab, bb := a.B, b.B
		if a.Kind != VBool {
			ab = BUnknown
		}
		if b.Kind != VBool {
			bb = BUnknown
		}
		if in.BinOp == token.AND {
			if ab == BFalse || bb == BFalse {
				return BoolV(BFalse)
			}
			if ab == BTrue && bb == BTrue {
				return BoolV(BTrue)
			}
		} else {
			if ab == BTrue || bb == BTrue {
				return BoolV(BTrue)
			}
			if ab == BFalse && bb == BFalse {
				return BoolV(BFalse)
			}
		}
		return BoolV(BUnknown)
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		if numeric(a) && numeric(b) {
			return BoolV(Compare(in.BinOp, a.AsNum(), b.AsNum()))
		}
		return BoolV(BUnknown)
	}
	if !numeric(a) || !numeric(b) {
		return Top()
	}
	// Real-typed arithmetic has no integer abstraction.
	if realTyped(in.Dst) {
		return Top()
	}
	an, bn := a.AsNum(), b.AsNum()
	switch in.BinOp {
	case token.PLUS:
		return NumV(an.Add(bn))
	case token.MINUS:
		return NumV(an.Sub(bn))
	case token.STAR:
		return NumV(an.Mul(bn))
	case token.SLASH:
		return NumV(an.Div(bn))
	case token.PERCENT:
		return NumV(an.Mod(bn))
	}
	return Top()
}

func numeric(v Val) bool { return v.Kind == VNum || v.Kind == VTop || v.Kind == VBool }

func realTyped(v *ir.Var) bool {
	if v == nil || v.Type == nil {
		return false
	}
	return v.Type.Kind() == types.Real || v.Type.Kind() == types.String
}

// Compare decides a comparison over the affine difference a-b, so
// correlated symbols cancel ((i+1) > i is BTrue, not BUnknown).
func Compare(op token.Kind, a, b NumVal) Bool {
	diff := a.Sub(b).Rng
	if diff.IsEmpty() {
		return BBot
	}
	decide := func(t, f bool) Bool {
		if t {
			return BTrue
		}
		if f {
			return BFalse
		}
		return BUnknown
	}
	switch op {
	case token.LT:
		return decide(diff.Hi < 0, diff.Lo >= 0)
	case token.LE:
		return decide(diff.Hi <= 0, diff.Lo > 0)
	case token.GT:
		return decide(diff.Lo > 0, diff.Hi <= 0)
	case token.GE:
		return decide(diff.Lo >= 0, diff.Hi < 0)
	case token.EQ:
		return decide(diff.Lo == 0 && diff.Hi == 0, !diff.Contains(0))
	case token.NEQ:
		return decide(!diff.Contains(0), diff.Lo == 0 && diff.Hi == 0)
	}
	return BUnknown
}

func (d *IntDomain) evalDomMethod(s *Env, in *ir.Instr) Val {
	v := s.Get(in.A)
	argNum := func(i int) NumVal {
		if i < len(in.Args) {
			return s.Get(in.Args[i]).AsNum()
		}
		return ConstNum(0)
	}
	switch in.Method {
	case "expand":
		if v.Kind == VDomain {
			k := argNum(0)
			out := v
			for i := 0; i < v.Rank; i++ {
				out.Dims[i].Lo = v.Dims[i].Lo.Sub(k)
				out.Dims[i].Hi = v.Dims[i].Hi.Add(k)
			}
			return out
		}
	case "translate":
		if v.Kind == VDomain {
			k := argNum(0)
			out := v
			for i := 0; i < v.Rank; i++ {
				out.Dims[i].Lo = v.Dims[i].Lo.Add(k)
				out.Dims[i].Hi = v.Dims[i].Hi.Add(k)
			}
			return out
		}
	case "interior", "exterior":
		if v.Kind == VDomain {
			// Mirrors the VM's simplification: shrink by |k| on the high side.
			k := argNum(0)
			if k.Rng.Hi < 0 {
				k = k.Neg()
			} else if k.Rng.Lo < 0 {
				k = NumVal{Rng: MakeInterval(0, maxAbs(k.Rng))}
			}
			out := v
			for i := 0; i < v.Rank; i++ {
				out.Dims[i].Hi = v.Dims[i].Hi.Sub(k)
			}
			return out
		}
	case "dim":
		if dims, ok := asDims(v); ok {
			if i, c := argNum(0).IsConst(); c && i >= 1 && int(i) <= len(dims) {
				return Val{Kind: VRange, Dims: [3]RangeInfo{dims[i-1]}}
			}
		}
	case "size":
		if _, ok := asDims(v); ok {
			return NumV(v.TripCount())
		}
	case "reindex":
		if v.Kind == VArray {
			return v
		}
	}
	return Top()
}

func maxAbs(i Interval) int64 {
	a, b := i.Lo, i.Hi
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func asDims(v Val) ([]RangeInfo, bool) { return v.Space() }

func (d *IntDomain) evalQuery(s *Env, in *ir.Instr) Val {
	v := s.Get(in.A)
	switch in.Method {
	case "size", "length", "numIndices", "numElements":
		if _, ok := v.Space(); ok {
			return NumV(v.TripCount())
		}
	case "low", "first", "ziplow":
		if dims, ok := v.Space(); ok && (len(dims) == 1 || in.Method == "ziplow") {
			return NumV(dims[0].Lo)
		}
	case "high", "last":
		if dims, ok := v.Space(); ok && len(dims) == 1 {
			return NumV(dims[0].Hi)
		}
	case "domain":
		if v.Kind == VArray {
			out := v
			out.Kind = VDomain
			out.ElemSz = 0
			return out
		}
	case "dimlow":
		if dims, ok := v.Space(); ok && in.FieldIx < len(dims) {
			return NumV(dims[in.FieldIx].Lo)
		}
	case "dimhigh":
		if dims, ok := v.Space(); ok && in.FieldIx < len(dims) {
			return NumV(dims[in.FieldIx].Hi)
		}
	case "id":
		if v.Kind == VLocale {
			return NumV(v.Num)
		}
	case "maxTaskPar", "numCores":
		if d.NumCores > 0 {
			return ConstV(d.NumCores)
		}
	}
	return Top()
}

func (d *IntDomain) evalBuiltin(s *Env, in *ir.Instr) Val {
	name := in.Method
	if cfg, ok := strings.CutPrefix(name, "config:"); ok {
		if v, ok := d.Configs[cfg]; ok {
			return v
		}
		// Fall back to the compiled default.
		if len(in.Args) > 0 {
			return s.Get(in.Args[0])
		}
		return Top()
	}
	argNum := func(i int) NumVal {
		if i < len(in.Args) {
			return s.Get(in.Args[i]).AsNum()
		}
		return TopNum()
	}
	switch name {
	case "distribute:block":
		v := s.Get(in.A)
		if v.Kind == VDomain {
			v.Dist = true
			return v
		}
	case "abs":
		if realTyped(in.Dst) {
			return Top()
		}
		a := argNum(0).Rng
		if a.IsEmpty() {
			return Top()
		}
		lo, hi := a.Lo, a.Hi
		if lo < 0 && hi < 0 {
			return NumV(NumVal{Rng: MakeInterval(-hi, -lo)})
		}
		if lo < 0 {
			return NumV(NumVal{Rng: MakeInterval(0, maxAbs(a))})
		}
		return NumV(NumVal{Rng: a})
	case "min", "max":
		if realTyped(in.Dst) || len(in.Args) == 0 {
			return Top()
		}
		out := argNum(0)
		for i := 1; i < len(in.Args); i++ {
			b := argNum(i)
			if name == "min" {
				out = NumVal{Rng: MakeInterval(minI(out.Rng.Lo, b.Rng.Lo), minI(out.Rng.Hi, b.Rng.Hi))}
			} else {
				out = NumVal{Rng: MakeInterval(maxI(out.Rng.Lo, b.Rng.Lo), maxI(out.Rng.Hi, b.Rng.Hi))}
			}
		}
		return NumV(out)
	case "sgn":
		return NumV(NumVal{Rng: MakeInterval(-1, 1)})
	}
	return Top()
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Refine sharpens s along a branch edge. When the branch condition is a
// comparison defined in the same block, the operand intervals are met
// with the implied bound; a condition statically decided the other way
// marks the state dead (the edge is infeasible).
// pinnedCmp reports whether def is a comparison reading a pinned
// variable — its outcome varies per iteration even when the abstract
// evaluation over the pinned range is definite.
func (d *IntDomain) pinnedCmp(def *ir.Instr) bool {
	if def == nil || def.Op != ir.OpBin {
		return false
	}
	if _, ok := d.Pins[def.A]; ok {
		return true
	}
	if _, ok := d.Pins[def.B]; ok {
		return true
	}
	return false
}

func (d *IntDomain) Refine(s *Env, in *ir.Instr, taken bool) *Env {
	if s.Dead || in.A == nil {
		return s
	}
	def := defInBlock(in.Block, in.A, in)
	cv := s.Get(in.A)
	if cv.Kind == VBool && !d.pinnedCmp(def) {
		if (cv.B == BTrue && !taken) || (cv.B == BFalse && taken) {
			s.Dead = true
			return s
		}
	}
	if def == nil || def.Op != ir.OpBin || d.pinnedCmp(def) {
		// A comparison on a pinned variable holds on some iterations and
		// fails on others; neither edge constrains anything.
		return s
	}
	op := def.BinOp
	if !taken {
		op = negateCmp(op)
	}
	switch op {
	case token.LT, token.LE, token.GT, token.GE, token.EQ, token.NEQ:
	default:
		return s
	}
	a, b := s.Get(def.A), s.Get(def.B)
	if !numeric(a) || !numeric(b) || realTyped(def.A) || realTyped(def.B) {
		return s
	}
	an, bn := a.AsNum(), b.AsNum()
	refineVar := func(v *ir.Var, cur NumVal, bound Interval) {
		if v == nil {
			return
		}
		if _, pinned := d.Pins[v]; pinned {
			// A pinned variable summarizes every iteration of its loop at
			// once; a branch edge contradicting the pinned range (e.g. the
			// exit test of the pinned loop) is still feasible for the
			// final iteration, so neither narrow the pin nor kill the
			// state.
			return
		}
		met := cur.Rng.Meet(bound)
		if met.IsEmpty() {
			s.Dead = true
			return
		}
		if met == cur.Rng {
			return
		}
		nv := NumVal{Rng: met, Aff: cur.Aff}
		s.Set(v, NumV(nv))
	}
	switch op {
	case token.LT:
		refineVar(def.A, an, MakeInterval(-inf, satAdd(bn.Rng.Hi, -1)))
		refineVar(def.B, bn, MakeInterval(satAdd(an.Rng.Lo, 1), inf))
	case token.LE:
		refineVar(def.A, an, MakeInterval(-inf, bn.Rng.Hi))
		refineVar(def.B, bn, MakeInterval(an.Rng.Lo, inf))
	case token.GT:
		refineVar(def.A, an, MakeInterval(satAdd(bn.Rng.Lo, 1), inf))
		refineVar(def.B, bn, MakeInterval(-inf, satAdd(an.Rng.Hi, -1)))
	case token.GE:
		refineVar(def.A, an, MakeInterval(bn.Rng.Lo, inf))
		refineVar(def.B, bn, MakeInterval(-inf, an.Rng.Hi))
	case token.EQ:
		refineVar(def.A, an, bn.Rng)
		refineVar(def.B, bn, an.Rng)
	case token.NEQ:
		// Only point-exclusion at the ends is expressible.
		if bn.Rng.IsConst() {
			r := an.Rng
			if r.Lo == bn.Rng.Lo {
				r.Lo++
			}
			if r.Hi == bn.Rng.Lo {
				r.Hi--
			}
			refineVar(def.A, an, r)
		}
	}
	return s
}

func negateCmp(op token.Kind) token.Kind {
	switch op {
	case token.LT:
		return token.GE
	case token.LE:
		return token.GT
	case token.GT:
		return token.LE
	case token.GE:
		return token.LT
	case token.EQ:
		return token.NEQ
	case token.NEQ:
		return token.EQ
	}
	return op
}

// defInBlock finds the defining instruction of v within b before stop.
func defInBlock(b *ir.Block, v *ir.Var, stop *ir.Instr) *ir.Instr {
	if b == nil {
		return nil
	}
	var def *ir.Instr
	for _, in := range b.Instrs {
		if in == stop {
			break
		}
		if in.Def() == v {
			def = in
		}
	}
	return def
}
