package absint_test

import (
	"strings"
	"testing"

	"repro/internal/absint"
	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/token"
)

// --- interval lattice ------------------------------------------------------

func TestIntervalAlgebra(t *testing.T) {
	mk := absint.MakeInterval
	cases := []struct {
		name string
		got  absint.Interval
		want absint.Interval
	}{
		{"join", mk(0, 3).Join(mk(5, 9)), mk(0, 9)},
		{"join-empty", absint.EmptyInterval().Join(mk(1, 2)), mk(1, 2)},
		{"meet", mk(0, 7).Meet(mk(4, 9)), mk(4, 7)},
		{"add", mk(1, 2).Add(mk(10, 20)), mk(11, 22)},
		{"sub", mk(1, 2).Sub(mk(10, 20)), mk(-19, -8)},
		{"mul-sign", mk(-2, 3).Mul(mk(4, 4)), mk(-8, 12)},
		{"div-trunc", mk(7, 9).Div(mk(2, 2)), mk(3, 4)},
		{"mod-exact", mk(0, 5).Mod(mk(8, 8)), mk(0, 5)},
		{"sat-add", mk(absint.Inf, absint.Inf).Add(mk(1, 1)), mk(absint.Inf, absint.Inf)},
		{"sat-mul", mk(1<<40, 1<<40).Mul(mk(1<<40, 1<<40)), mk(absint.Inf, absint.Inf)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
	if got := mk(3, 9).Meet(mk(10, 12)); !got.IsEmpty() {
		t.Errorf("disjoint meet not empty: %v", got)
	}
	if got := mk(1, 10).Div(mk(-1, 1)); !got.IsTop() {
		t.Errorf("division by interval containing zero must go top, got %v", got)
	}
}

func TestIntervalWidenProperties(t *testing.T) {
	mk := absint.MakeInterval
	a, b := mk(0, 9), mk(0, 10)
	w := a.Widen(b)
	if w.Lo != 0 || w.Hi < absint.Inf {
		t.Errorf("unstable upper bound must widen to +inf, got %v", w)
	}
	// A second widening with anything already contained is a no-op: the
	// chain stabilizes.
	if w2 := w.Widen(mk(5, 1<<50)); w2 != w {
		t.Errorf("widening chain did not stabilize: %v -> %v", w, w2)
	}
	// Stable bounds are kept exact.
	if got := mk(0, 100).Widen(mk(10, 50)); got != mk(0, 100) {
		t.Errorf("stable widen changed bounds: %v", got)
	}
}

func TestCompareLattice(t *testing.T) {
	c5, c7 := absint.ConstNum(5), absint.ConstNum(7)
	rng := absint.NumVal{Rng: absint.MakeInterval(0, 9)}
	if got := absint.Compare(token.LT, c5, c7); got != absint.BTrue {
		t.Errorf("5 < 7 = %v, want true", got)
	}
	if got := absint.Compare(token.GE, c5, c7); got != absint.BFalse {
		t.Errorf("5 >= 7 = %v, want false", got)
	}
	if got := absint.Compare(token.LT, rng, c7); got != absint.BUnknown {
		t.Errorf("[0,9] < 7 = %v, want both", got)
	}
	if got := absint.Compare(token.LE, rng, absint.ConstNum(9)); got != absint.BTrue {
		t.Errorf("[0,9] <= 9 = %v, want true", got)
	}
}

// --- engine over compiled IR ----------------------------------------------

func mainOf(t *testing.T, src string) (*ir.Program, *ir.Func) {
	t.Helper()
	res, err := compile.Source("absint_test.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Prog, res.Prog.Main
}

func findVar(f *ir.Func, name string) *ir.Var {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != nil && in.Dst.Name == name {
				return in.Dst
			}
		}
	}
	return nil
}

// TestEngineLoopFixpoint runs the interval domain over a counted loop
// and checks the three contract points: the fixpoint terminates with
// every block reached, the accumulator's interval at the return block is
// a sound superset of the concrete value (10), and widening kept its
// lower bound exact while the upper bound went unbounded.
func TestEngineLoopFixpoint(t *testing.T) {
	_, main := mainOf(t, `
proc main() {
  var s = 0;
  for i in 0..9 {
    s = s + 1;
  }
  writeln(s);
}
`)
	d := &absint.IntDomain{Fn: main}
	r := absint.Run(main, d)
	for _, b := range main.Blocks {
		if !r.Reached[b.ID] {
			t.Fatalf("block b%d not reached", b.ID)
		}
	}
	s := findVar(main, "s")
	if s == nil {
		t.Fatal("no var s in compiled main")
	}
	last := main.Blocks[len(main.Blocks)-1]
	env, ok := r.Out(d, last)
	if !ok {
		t.Fatalf("no out state for b%d", last.ID)
	}
	rng := env.Get(s).AsNum().Rng
	if !rng.Contains(10) {
		t.Errorf("s at exit = %v, must contain the concrete value 10", rng)
	}
	if rng.Lo != 0 {
		t.Errorf("s lower bound = %d, widening should keep the stable 0", rng.Lo)
	}
}

// TestEnginePinnedInduction pins the loop induction variable to a
// symbolic value over its bound interval — the cost engine's second
// analysis round — and checks the body sees the exact range instead of
// a widened one, and that branch refinement on the pinned comparison
// does not deaden the back edge (the halo r-loop regression).
func TestEnginePinnedInduction(t *testing.T) {
	_, main := mainOf(t, `
proc main() {
  var s = 0;
  for i in 0..9 {
    s = s + i;
  }
  writeln(s);
}
`)
	iv := findVar(main, "i")
	if iv == nil {
		t.Fatal("no induction variable i")
	}
	d := &absint.IntDomain{
		Fn:   main,
		Pins: map[*ir.Var]absint.Val{iv: absint.NumV(absint.SymNum(iv, absint.MakeInterval(0, 9)))},
	}
	r := absint.Run(main, d)
	for _, b := range main.Blocks {
		if !r.Reached[b.ID] {
			t.Fatalf("block b%d not reached with pinned induction variable", b.ID)
		}
		env, ok := r.Out(d, b)
		if !ok {
			continue
		}
		got := env.Get(iv).AsNum()
		if got.Rng != absint.MakeInterval(0, 9) {
			t.Errorf("b%d: pinned i = %v, want range [0,9] everywhere", b.ID, got)
		}
	}
}

// TestLocalityDomain classifies the access sites of a stencil forall
// body: A[i] must come out owner-local, A[i+1] as a halo access, and a
// captured scalar as sweep-invariant.
func TestLocalityDomain(t *testing.T) {
	prog, _ := mainOf(t, `
config const n = 64;
var D: domain(1) = {0..#n};
var A: [D] real;
var B: [D] real;
proc main() {
  forall i in D {
    B[i] = A[i] + A[i+1];
  }
  writeln(B[0]);
}
`)
	var body *ir.Func
	for _, f := range prog.Funcs {
		if strings.Contains(f.Name, "forall_fn") {
			body = f
			break
		}
	}
	if body == nil || len(body.Params) == 0 {
		t.Fatal("no outlined forall body")
	}
	d := &absint.LocDomain{Fn: body, Index: map[*ir.Var]bool{body.Params[0]: true}}
	r := absint.Run(body, d)
	seen := make(map[absint.SiteClass]bool)
	for _, b := range body.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpIndex {
				continue
			}
			env, ok := r.At(d, in)
			if !ok {
				continue
			}
			for _, u := range in.Uses() {
				lv := env.Get(u)
				if lv.K == absint.LIndex {
					seen[lv.Classify()] = true
				}
			}
		}
	}
	if !seen[absint.ClassOwner] {
		t.Errorf("no owner-local access classified; saw %v", seen)
	}
	if !seen[absint.ClassHalo] {
		t.Errorf("no halo access classified; saw %v", seen)
	}
}
