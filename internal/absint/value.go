package absint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Affine is a symbolic linear form  Const + Σ Terms[v]·v  over pinned
// symbolic variables (loop induction variables, body index parameters,
// config constants). Keeping index expressions affine lets correlated
// terms cancel exactly — (i+1) - (i-1) is the constant 2, not a width-2
// interval — which is what makes trip counts and halo offsets precise.
type Affine struct {
	Const int64
	Terms map[*ir.Var]int64
}

// ConstAffine builds a constant form.
func ConstAffine(c int64) *Affine { return &Affine{Const: c} }

// VarAffine builds the form 1·v.
func VarAffine(v *ir.Var) *Affine {
	return &Affine{Terms: map[*ir.Var]int64{v: 1}}
}

// IsConst reports a form with no symbolic terms.
func (a *Affine) IsConst() bool { return a != nil && len(a.Terms) == 0 }

func (a *Affine) clone() *Affine {
	out := &Affine{Const: a.Const}
	if len(a.Terms) > 0 {
		out.Terms = make(map[*ir.Var]int64, len(a.Terms))
		for v, c := range a.Terms {
			out.Terms[v] = c
		}
	}
	return out
}

func (a *Affine) add(b *Affine, sign int64) *Affine {
	out := a.clone()
	out.Const = satAdd(out.Const, satMul(sign, b.Const))
	for v, c := range b.Terms {
		if out.Terms == nil {
			out.Terms = make(map[*ir.Var]int64)
		}
		n := satAdd(out.Terms[v], satMul(sign, c))
		if n == 0 {
			delete(out.Terms, v)
		} else {
			out.Terms[v] = n
		}
	}
	return out
}

func (a *Affine) scale(k int64) *Affine {
	if k == 0 {
		return ConstAffine(0)
	}
	out := &Affine{Const: satMul(a.Const, k)}
	if len(a.Terms) > 0 {
		out.Terms = make(map[*ir.Var]int64, len(a.Terms))
		for v, c := range a.Terms {
			out.Terms[v] = satMul(c, k)
		}
	}
	return out
}

// divExact divides by k when every coefficient is divisible; ok=false
// otherwise (the caller falls back to interval division).
func (a *Affine) divExact(k int64) (*Affine, bool) {
	if k == 0 {
		return nil, false
	}
	if a.Const%k != 0 {
		return nil, false
	}
	out := &Affine{Const: a.Const / k}
	if len(a.Terms) > 0 {
		out.Terms = make(map[*ir.Var]int64, len(a.Terms))
		for v, c := range a.Terms {
			if c%k != 0 {
				return nil, false
			}
			out.Terms[v] = c / k
		}
	}
	return out, true
}

// equal reports structural equality.
func (a *Affine) equal(b *Affine) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Const != b.Const || len(a.Terms) != len(b.Terms) {
		return false
	}
	for v, c := range a.Terms {
		if b.Terms[v] != c {
			return false
		}
	}
	return true
}

func (a *Affine) String() string {
	if a == nil {
		return "<nil>"
	}
	type term struct {
		name string
		c    int64
	}
	ts := make([]term, 0, len(a.Terms))
	for v, c := range a.Terms {
		ts = append(ts, term{v.Name, c})
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	var b strings.Builder
	fmt.Fprintf(&b, "%d", a.Const)
	for _, t := range ts {
		fmt.Fprintf(&b, "%+d·%s", t.c, t.name)
	}
	return b.String()
}

// NumVal is the numeric abstract value: an interval plus an optional
// exact affine form over pinned symbols.
type NumVal struct {
	Rng Interval
	Aff *Affine // nil when no exact symbolic form is known
}

// TopNum is the unconstrained numeric value.
func TopNum() NumVal { return NumVal{Rng: TopInterval()} }

// ConstNum is an exactly-known integer.
func ConstNum(v int64) NumVal {
	return NumVal{Rng: ConstInterval(v), Aff: ConstAffine(v)}
}

// SymNum is the pinned symbolic value 1·v ranging over rng.
func SymNum(v *ir.Var, rng Interval) NumVal {
	return NumVal{Rng: rng, Aff: VarAffine(v)}
}

// IsConst reports an exactly-known value.
func (n NumVal) IsConst() (int64, bool) {
	if n.Rng.IsConst() {
		return n.Rng.Lo, true
	}
	if n.Aff.IsConst() {
		return n.Aff.Const, true
	}
	return 0, false
}

func (n NumVal) String() string {
	if n.Aff != nil && !n.Rng.IsConst() {
		return n.Aff.String() + "∈" + n.Rng.String()
	}
	if n.Aff.IsConst() {
		return fmt.Sprintf("%d", n.Aff.Const)
	}
	return n.Rng.String()
}

func (n NumVal) join(o NumVal) NumVal {
	out := NumVal{Rng: n.Rng.Join(o.Rng)}
	if n.Aff.equal(o.Aff) {
		out.Aff = n.Aff
	}
	return out
}

func (n NumVal) widen(o NumVal) NumVal {
	out := NumVal{Rng: n.Rng.Widen(o.Rng)}
	if n.Aff.equal(o.Aff) {
		out.Aff = n.Aff
	}
	return out
}

// Add returns n + o, keeping the affine form when both sides have one.
func (n NumVal) Add(o NumVal) NumVal {
	out := NumVal{Rng: n.Rng.Add(o.Rng)}
	if n.Aff != nil && o.Aff != nil {
		out.Aff = n.Aff.add(o.Aff, 1)
	}
	return out
}

// Sub returns n - o.
func (n NumVal) Sub(o NumVal) NumVal {
	out := NumVal{Rng: n.Rng.Sub(o.Rng)}
	if n.Aff != nil && o.Aff != nil {
		out.Aff = n.Aff.add(o.Aff, -1)
		// Correlated symbols cancel: tighten the interval to the exact
		// constant when the difference is symbol-free.
		if out.Aff.IsConst() {
			out.Rng = ConstInterval(out.Aff.Const)
		}
	}
	return out
}

// Mul returns n * o; the affine form survives multiplication by a
// constant on either side.
func (n NumVal) Mul(o NumVal) NumVal {
	out := NumVal{Rng: n.Rng.Mul(o.Rng)}
	if k, ok := o.IsConst(); ok && n.Aff != nil {
		out.Aff = n.Aff.scale(k)
	} else if k, ok := n.IsConst(); ok && o.Aff != nil {
		out.Aff = o.Aff.scale(k)
	}
	return out
}

// Div returns n / o; the affine form survives exact constant division.
func (n NumVal) Div(o NumVal) NumVal {
	out := NumVal{Rng: n.Rng.Div(o.Rng)}
	if k, ok := o.IsConst(); ok && n.Aff != nil {
		if d, exact := n.Aff.divExact(k); exact {
			out.Aff = d
		}
	}
	return out
}

// Mod returns n % o.
func (n NumVal) Mod(o NumVal) NumVal {
	out := NumVal{Rng: n.Rng.Mod(o.Rng)}
	if a, okA := n.IsConst(); okA {
		if b, okB := o.IsConst(); okB && b != 0 {
			return ConstNum(a % b)
		}
	}
	return out
}

// Neg returns -n.
func (n NumVal) Neg() NumVal {
	out := NumVal{Rng: n.Rng.Neg()}
	if n.Aff != nil {
		out.Aff = n.Aff.scale(-1)
	}
	return out
}

// Eval substitutes concrete symbol values (missing symbols evaluate at
// their interval is unknown → ok=false) and returns the resulting
// constant.
func (n NumVal) Eval(sub map[*ir.Var]int64) (int64, bool) {
	if v, ok := n.IsConst(); ok {
		return v, true
	}
	if n.Aff == nil {
		return 0, false
	}
	out := n.Aff.Const
	for v, c := range n.Aff.Terms {
		x, ok := sub[v]
		if !ok {
			return 0, false
		}
		out = satAdd(out, satMul(c, x))
	}
	return out, true
}

// Bool is the three-point boolean lattice.
type Bool uint8

// Bool lattice points.
const (
	BBot     Bool = iota // unreached
	BFalse               // definitely false
	BTrue                // definitely true
	BUnknown             // either
)

func boolOf(b bool) Bool {
	if b {
		return BTrue
	}
	return BFalse
}

func (b Bool) join(o Bool) Bool {
	if b == BBot {
		return o
	}
	if o == BBot || b == o {
		return b
	}
	return BUnknown
}

func (b Bool) String() string {
	switch b {
	case BFalse:
		return "false"
	case BTrue:
		return "true"
	case BUnknown:
		return "⊤"
	}
	return "⊥"
}

// VKind tags abstract values.
type VKind uint8

// Abstract value kinds, mirroring the VM's value kinds that the cost
// engine needs to reason about.
const (
	VTop     VKind = iota // anything (also: reals, strings, records...)
	VNum                  // integer: NumVal
	VBool                 // boolean: B
	VRange                // range: Dims[0]
	VDomain               // domain: Dims[:Rank], Dist
	VArray                // array over Dims[:Rank], Dist
	VLocale               // locale handle; Num is its index
	VLocales              // the Locales array
)

// RangeInfo is the abstract lo..hi by stride of one dimension.
type RangeInfo struct {
	Lo, Hi NumVal
	Stride int64 // 0 = unknown, otherwise exact
}

// Size returns the abstract index count (hi-lo)/stride + 1.
func (r RangeInfo) Size() NumVal {
	st := r.Stride
	if st == 0 {
		return TopNum()
	}
	n := r.Hi.Sub(r.Lo)
	if st != 1 {
		n = n.Div(ConstNum(st))
	}
	n = n.Add(ConstNum(1))
	// An empty range (hi < lo) iterates zero times.
	if n.Rng.Lo < 0 {
		n.Rng.Lo = 0
		n.Aff = nil
	}
	return n
}

// Val is an abstract value.
type Val struct {
	Kind   VKind
	Num    NumVal
	B      Bool
	Rank   int
	Dims   [3]RangeInfo
	Dist   bool  // Block-distributed (domains/arrays)
	ElemSz int64 // array element size in bytes (0 = unknown)
}

// Top is the unconstrained abstract value.
func Top() Val { return Val{Kind: VTop} }

// NumV wraps a NumVal.
func NumV(n NumVal) Val { return Val{Kind: VNum, Num: n} }

// ConstV is an exactly-known integer value.
func ConstV(v int64) Val { return NumV(ConstNum(v)) }

// BoolV wraps a boolean lattice point.
func BoolV(b Bool) Val { return Val{Kind: VBool, B: b} }

// AsNum views v as a numeric value (Top for non-numerics).
func (v Val) AsNum() NumVal {
	switch v.Kind {
	case VNum, VLocale:
		return v.Num
	case VBool:
		switch v.B {
		case BTrue:
			return ConstNum(1)
		case BFalse:
			return ConstNum(0)
		}
		return NumVal{Rng: MakeInterval(0, 1)}
	}
	return TopNum()
}

// Space returns the iteration dimensions of a range/domain/array value.
func (v Val) Space() ([]RangeInfo, bool) {
	switch v.Kind {
	case VRange:
		return v.Dims[:1], true
	case VDomain, VArray:
		if v.Rank > 0 {
			return v.Dims[:v.Rank], true
		}
	}
	return nil, false
}

// TripCount returns the abstract total index count of a range/domain/
// array value.
func (v Val) TripCount() NumVal {
	dims, ok := v.Space()
	if !ok {
		return TopNum()
	}
	n := ConstNum(1)
	for _, d := range dims {
		n = n.Mul(d.Size())
	}
	return n
}

func (r RangeInfo) join(o RangeInfo) RangeInfo {
	st := r.Stride
	if st != o.Stride {
		st = 0
	}
	return RangeInfo{Lo: r.Lo.join(o.Lo), Hi: r.Hi.join(o.Hi), Stride: st}
}

func (r RangeInfo) widen(o RangeInfo) RangeInfo {
	st := r.Stride
	if st != o.Stride {
		st = 0
	}
	return RangeInfo{Lo: r.Lo.widen(o.Lo), Hi: r.Hi.widen(o.Hi), Stride: st}
}

// Join returns the least upper bound of two abstract values.
func (v Val) Join(o Val) Val {
	return v.merge(o, false)
}

func (v Val) widen(o Val) Val {
	return v.merge(o, true)
}

func (v Val) merge(o Val, widen bool) Val {
	if v.Kind != o.Kind {
		return Top()
	}
	out := Val{Kind: v.Kind}
	switch v.Kind {
	case VNum, VLocale:
		if widen {
			out.Num = v.Num.widen(o.Num)
		} else {
			out.Num = v.Num.join(o.Num)
		}
	case VBool:
		out.B = v.B.join(o.B)
	case VRange, VDomain, VArray:
		if v.Rank != o.Rank || v.Dist != o.Dist {
			return Top()
		}
		out.Rank, out.Dist, out.ElemSz = v.Rank, v.Dist, v.ElemSz
		if v.ElemSz != o.ElemSz {
			out.ElemSz = 0
		}
		nd := v.Rank
		if v.Kind == VRange {
			nd = 1
		}
		for i := 0; i < nd; i++ {
			if widen {
				out.Dims[i] = v.Dims[i].widen(o.Dims[i])
			} else {
				out.Dims[i] = v.Dims[i].join(o.Dims[i])
			}
		}
	}
	return out
}

// Equal reports structural equality — used by interprocedural seeding to
// detect when a callee's parameter summary has stabilized.
func (v Val) Equal(o Val) bool { return v.equal(o) }

func (v Val) equal(o Val) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case VNum, VLocale:
		return v.Num.Rng == o.Num.Rng && v.Num.Aff.equal(o.Num.Aff)
	case VBool:
		return v.B == o.B
	case VRange, VDomain, VArray:
		if v.Rank != o.Rank || v.Dist != o.Dist || v.ElemSz != o.ElemSz {
			return false
		}
		nd := v.Rank
		if v.Kind == VRange {
			nd = 1
		}
		for i := 0; i < nd; i++ {
			a, b := v.Dims[i], o.Dims[i]
			if a.Stride != b.Stride ||
				a.Lo.Rng != b.Lo.Rng || !a.Lo.Aff.equal(b.Lo.Aff) ||
				a.Hi.Rng != b.Hi.Rng || !a.Hi.Aff.equal(b.Hi.Aff) {
				return false
			}
		}
	}
	return true
}

func (v Val) String() string {
	switch v.Kind {
	case VNum:
		return v.Num.String()
	case VBool:
		return v.B.String()
	case VLocale:
		return "locale(" + v.Num.String() + ")"
	case VLocales:
		return "Locales"
	case VRange:
		return rangeString(v.Dims[0])
	case VDomain, VArray:
		var b strings.Builder
		if v.Kind == VArray {
			b.WriteString("arr")
		}
		b.WriteByte('{')
		for i := 0; i < v.Rank; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(rangeString(v.Dims[i]))
		}
		b.WriteByte('}')
		if v.Dist {
			b.WriteString(" dmapped")
		}
		return b.String()
	}
	return "⊤"
}

func rangeString(r RangeInfo) string {
	s := r.Lo.String() + ".." + r.Hi.String()
	if r.Stride != 1 {
		s += fmt.Sprintf(" by %d", r.Stride)
	}
	return s
}
