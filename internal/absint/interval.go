// Package absint is a small abstract-interpretation framework over the
// repo's IR + CFG: a generic forward dataflow engine (worklist over
// reverse postorder, lattice interface, widening at loop heads) with two
// concrete domains — an interval/affine domain for loop bounds and index
// expressions (interval.go, value.go, domain.go) and a locality domain
// tracking index-relative ownership of array accesses (locality.go).
//
// The static cost engine (internal/analyze/cost) runs these domains to
// predict per-variable blame and comm-message volume without executing
// the program; see DESIGN.md "Static cost model".
package absint

import "fmt"

// inf is the saturation bound for interval endpoints. All arithmetic
// clamps into [-inf, inf] so that +/- cannot overflow int64 even after
// repeated widening; endpoints at the bound mean "unbounded".
const inf = int64(1) << 62

// Inf is the exported saturation bound: interval endpoints at ±Inf are
// unbounded, and clients must not treat them as ordinary integers.
const Inf = inf

// Interval is a machine-integer interval [Lo, Hi] with saturation at
// +/-inf standing for unbounded ends. The zero value is the empty
// interval (Lo > Hi is empty; the canonical empty is {1, 0}).
type Interval struct {
	Lo, Hi int64
}

// Canonical intervals.
func TopInterval() Interval   { return Interval{-inf, inf} }
func EmptyInterval() Interval { return Interval{1, 0} }
func ConstInterval(v int64) Interval {
	return Interval{clamp(v), clamp(v)}
}

// MakeInterval builds [lo, hi], clamping into the saturation range.
func MakeInterval(lo, hi int64) Interval {
	return Interval{clamp(lo), clamp(hi)}
}

func clamp(v int64) int64 {
	if v > inf {
		return inf
	}
	if v < -inf {
		return -inf
	}
	return v
}

// IsEmpty reports Lo > Hi.
func (i Interval) IsEmpty() bool { return i.Lo > i.Hi }

// IsConst reports a single-point interval.
func (i Interval) IsConst() bool { return i.Lo == i.Hi && i.Lo > -inf && i.Hi < inf }

// IsTop reports both ends unbounded.
func (i Interval) IsTop() bool { return i.Lo <= -inf && i.Hi >= inf }

// Bounded reports both ends finite.
func (i Interval) Bounded() bool { return i.Lo > -inf && i.Hi < inf }

// Contains reports v in [Lo, Hi].
func (i Interval) Contains(v int64) bool { return v >= i.Lo && v <= i.Hi }

// Width returns Hi-Lo+1 for bounded non-empty intervals and -1 otherwise.
func (i Interval) Width() int64 {
	if i.IsEmpty() || !i.Bounded() {
		return -1
	}
	return i.Hi - i.Lo + 1
}

func (i Interval) String() string {
	if i.IsEmpty() {
		return "⊥"
	}
	lo, hi := "-inf", "+inf"
	if i.Lo > -inf {
		lo = fmt.Sprintf("%d", i.Lo)
	}
	if i.Hi < inf {
		hi = fmt.Sprintf("%d", i.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// satAdd adds with saturation; an unbounded operand dominates.
func satAdd(a, b int64) int64 {
	if a >= inf || b >= inf {
		if a <= -inf || b <= -inf { // inf + -inf: unknown, saturate up
			return inf
		}
		return inf
	}
	if a <= -inf || b <= -inf {
		return -inf
	}
	return clamp(a + b)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	aa, bb := a, b
	if aa < 0 {
		aa = -aa
	}
	if bb < 0 {
		bb = -bb
	}
	if aa >= inf || bb >= inf || aa > inf/bb {
		if neg {
			return -inf
		}
		return inf
	}
	return clamp(a * b)
}

// Join returns the smallest interval containing both.
func (i Interval) Join(o Interval) Interval {
	if i.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return i
	}
	lo, hi := i.Lo, i.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Interval{lo, hi}
}

// Meet intersects.
func (i Interval) Meet(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	lo, hi := i.Lo, i.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return EmptyInterval()
	}
	return Interval{lo, hi}
}

// Widen jumps any unstable bound of i (relative to prev) to infinity,
// guaranteeing termination of the fixpoint regardless of loop bounds.
func (prev Interval) Widen(next Interval) Interval {
	if prev.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return prev
	}
	out := prev
	if next.Lo < prev.Lo {
		out.Lo = -inf
	}
	if next.Hi > prev.Hi {
		out.Hi = inf
	}
	return out
}

// Add returns i + o.
func (i Interval) Add(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	return Interval{satAdd(i.Lo, o.Lo), satAdd(i.Hi, o.Hi)}
}

// Sub returns i - o.
func (i Interval) Sub(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	return Interval{satAdd(i.Lo, -o.Hi), satAdd(i.Hi, -o.Lo)}
}

// Neg returns -i.
func (i Interval) Neg() Interval {
	if i.IsEmpty() {
		return i
	}
	return Interval{-i.Hi, -i.Lo}
}

// Mul returns i * o (min/max over endpoint products).
func (i Interval) Mul(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	c := [4]int64{
		satMul(i.Lo, o.Lo), satMul(i.Lo, o.Hi),
		satMul(i.Hi, o.Lo), satMul(i.Hi, o.Hi),
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Interval{lo, hi}
}

// Div returns i / o using Go's truncated integer division. Division by an
// interval containing 0 goes to Top on that side (the VM would fail at
// run time; statically we stay sound).
func (i Interval) Div(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	if o.Contains(0) {
		return TopInterval()
	}
	div := func(a, b int64) int64 {
		if a >= inf || a <= -inf {
			if (a > 0) != (b > 0) {
				return -inf
			}
			return inf
		}
		if b >= inf || b <= -inf {
			return 0
		}
		return a / b
	}
	c := [4]int64{
		div(i.Lo, o.Lo), div(i.Lo, o.Hi),
		div(i.Hi, o.Lo), div(i.Hi, o.Hi),
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Interval{lo, hi}
}

// Mod returns i % o conservatively: result magnitude is below |o|max and
// shares the sign behavior of Go's % (sign of the dividend).
func (i Interval) Mod(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	m := o.Hi
	if -o.Lo > m {
		m = -o.Lo
	}
	if m >= inf || m <= 0 {
		return TopInterval()
	}
	lo, hi := -(m - 1), m-1
	if i.Lo >= 0 {
		lo = 0
	}
	if i.Hi <= 0 {
		hi = 0
	}
	// A bounded non-negative dividend smaller than the divisor is exact.
	if i.Lo >= 0 && o.IsConst() && i.Hi < o.Lo {
		return i
	}
	return Interval{lo, hi}
}
