package exp

import (
	"fmt"
	"sync"
)

// Experiment is one named table/figure generator of the evaluation suite.
// Fn returns the rendered text exactly as cmd/paperbench prints it (for
// figures that includes the header line), so serial and parallel drivers
// produce byte-identical output.
type Experiment struct {
	Name string
	Fn   func() (string, error)
}

// Outcome is one experiment's rendered result.
type Outcome struct {
	Name string
	Text string
	Err  error
}

func tableExp(name string, fn func() (*Table, error)) Experiment {
	return Experiment{Name: name, Fn: func() (string, error) {
		t, err := fn()
		if err != nil {
			return "", err
		}
		return t.String(), nil
	}}
}

// Experiments returns the full suite in presentation order (the order
// cmd/paperbench prints them).
func Experiments() []Experiment {
	return []Experiment{
		tableExp("t1", Table1),
		tableExp("t2", Table2),
		tableExp("t3", Table3),
		tableExp("t4", Table4),
		tableExp("t5", Table5),
		tableExp("t6", Table6),
		tableExp("t7", Table7),
		tableExp("t8", Table8),
		tableExp("t9", Table9),
		tableExp("agg", TableAgg),
		tableExp("locales", TableLocales),
		tableExp("chaos", TableChaos),
		tableExp("sparse", TableSparse),
		tableExp("static", TableStaticAccuracy),
		tableExp("baseline", UnknownData),
		tableExp("overhead", Overhead),
		{Name: "fig4", Fn: func() (string, error) {
			text, _, err := Fig4()
			if err != nil {
				return "", err
			}
			return "Fig. 4 — LULESH code-centric profile (pprof format)\n" + text, nil
		}},
		{Name: "fig3", Fn: func() (string, error) {
			text, err := Fig3()
			if err != nil {
				return "", err
			}
			return "Fig. 3 — the three tool views for a MiniMD run\n" + text, nil
		}},
	}
}

// Select filters the suite by name, preserving presentation order; an
// empty name list selects everything. Unknown names error.
func Select(names []string) ([]Experiment, error) {
	all := Experiments()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []Experiment
	for _, e := range all {
		if want[e.Name] {
			out = append(out, e)
			delete(want, e.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("unknown experiment %q", n)
	}
	return out, nil
}

// RunSuite executes the given experiments over a bounded worker pool and
// returns the outcomes in input order. workers <= 1 runs serially; the
// output is byte-identical either way (pinned by TestSuiteParallelMatchesSerial):
// every experiment is deterministic, the shared compile/analysis/profile
// memos are concurrency-safe, and ordering is by slot, not completion.
func RunSuite(exps []Experiment, workers int) []Outcome {
	out := make([]Outcome, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			out[i] = runOne(e)
		}
		return out
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = runOne(exps[i])
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// runOne executes a single experiment, recovering a panic into a failed
// outcome: one exploding table must not take down the whole suite (or,
// in the parallel driver, the whole process via an unrecovered goroutine
// panic).
func runOne(e Experiment) (o Outcome) {
	defer func() {
		if r := recover(); r != nil {
			o = Outcome{Name: e.Name, Err: fmt.Errorf("experiment %s panicked: %v", e.Name, r)}
		}
	}()
	text, err := e.Fn()
	return Outcome{Name: e.Name, Text: text, Err: err}
}
