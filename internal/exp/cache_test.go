package exp

import (
	"sync"
	"testing"

	"repro/internal/benchprog"
)

// TestProfiledShapeNoAlias pins the profKey audit: a shaped run (multi-
// locale, comm aggregation, faults) must never alias the default-shape
// cache entry for the same (program, configs).
func TestProfiledShapeNoAlias(t *testing.T) {
	ResetMemos()
	prog := benchprog.Halo()
	cfgs := benchprog.HaloConfig{N: 64, Reps: 2}.Configs()

	base, err := profiled(prog, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	shaped, err := profiledShaped(prog, cfgs, runShape{locales: 4, commAgg: true})
	if err != nil {
		t.Fatal(err)
	}
	if base == shaped {
		t.Fatal("shaped run aliased the default-shape cache entry")
	}
	if base.Stats.CommMessages != 0 {
		t.Fatalf("default shape is single-locale; saw %d comm messages", base.Stats.CommMessages)
	}
	if shaped.Stats.CommMessages == 0 {
		t.Fatal("4-locale shaped run produced no comm messages")
	}

	faulted, err := profiledShaped(prog, cfgs, runShape{locales: 4, commAgg: true, faultSpec: "loss=0.05", faultSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if faulted == shaped {
		t.Fatal("faulted run aliased the fault-free shaped entry")
	}
	if faulted.Stats.Fault == nil || faulted.Stats.Fault.Sends == 0 {
		t.Fatal("faulted shape ran without the injector examining any messages")
	}
}

// TestProfiledShapeConcurrent interleaves default and shaped lookups
// (run under -race in CI): each shape computes once and every caller of
// a shape sees the same pointer.
func TestProfiledShapeConcurrent(t *testing.T) {
	ResetMemos()
	prog := benchprog.Halo()
	cfgs := benchprog.HaloConfig{N: 64, Reps: 2}.Configs()
	shapes := []runShape{
		defaultShape(),
		{locales: 2},
		{locales: 2, commAgg: true},
	}
	const rounds = 4
	results := make([][]interface{}, len(shapes))
	for i := range results {
		results[i] = make([]interface{}, rounds)
	}
	var wg sync.WaitGroup
	for i, sh := range shapes {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(i, r int, sh runShape) {
				defer wg.Done()
				res, err := profiledShaped(prog, cfgs, sh)
				if err != nil {
					t.Error(err)
					return
				}
				results[i][r] = res
			}(i, r, sh)
		}
	}
	wg.Wait()
	for i := range shapes {
		for r := 1; r < rounds; r++ {
			if results[i][r] != results[i][0] {
				t.Fatalf("shape %d: round %d saw a different *blame.Result", i, r)
			}
		}
		for j := 0; j < i; j++ {
			if results[i][0] == results[j][0] {
				t.Fatalf("shapes %d and %d aliased one cache entry", i, j)
			}
		}
	}
}
