package exp

import (
	"fmt"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/vm"
)

// TableLocales is the locale-scaling study for the owner-computes forall
// scheduler: halo and wavefront at 1/2/4/8 locales, measured under
// spawn-locale scheduling (PR 2 baseline) and owner-computes scheduling
// (default), both with the modeled aggregation runtime. Columns report
// charged network messages and modeled wall time; each benchmark row
// cites the static comm-pattern finding that predicted its traffic, so
// the table closes the same predict -> transform -> measure loop as
// Table Agg, one axis over.
func TableLocales() (*Table, error) {
	cases := []struct {
		prog benchprog.Program
		cfgs map[string]string
	}{
		{benchprog.Halo(), benchprog.DefaultHalo.Configs()},
		{benchprog.Wavefront(), benchprog.DefaultWavefront.Configs()},
	}
	locales := []int{1, 2, 4, 8}

	t := &Table{
		ID:    "Table Locales",
		Title: "Owner-computes forall scheduling vs spawn-locale baseline (modeled aggregation on)",
		Header: []string{"Benchmark", "Locales", "Msgs (baseline)", "Msgs (owner)",
			"Time s (baseline)", "Time s (owner)", "Violations (baseline)", "Violations (owner)"},
	}

	for _, c := range cases {
		res, err := c.prog.Compile(compile.Options{})
		if err != nil {
			return nil, err
		}
		plan := commPlanFor(res.Prog)

		run := func(nl int, ownerComputes bool) (vm.Stats, string, error) {
			var out strings.Builder
			cfg := runConfig(c.cfgs)
			cfg.Stdout = &out
			cfg.NumLocales = nl
			cfg.CommAggregate = true
			cfg.CommPlan = plan
			cfg.NoOwnerComputes = !ownerComputes
			stats, err := vm.New(res.Prog, cfg).Run()
			return stats, out.String(), err
		}

		var refOut string
		identical := true
		for _, nl := range locales {
			bs, bout, err := run(nl, false)
			if err != nil {
				return nil, fmt.Errorf("%s at %d locales (baseline): %w", c.prog.Name, nl, err)
			}
			os, oout, err := run(nl, true)
			if err != nil {
				return nil, fmt.Errorf("%s at %d locales (owner): %w", c.prog.Name, nl, err)
			}
			if refOut == "" {
				refOut = bout
			}
			identical = identical && bout == refOut && oout == refOut
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s/%dL", c.prog.Name, nl), fmt.Sprint(nl),
				fmt.Sprint(bs.CommMessages), fmt.Sprint(os.CommMessages),
				secs(bs.Seconds(bcClockHz)), secs(os.Seconds(bcClockHz)),
				fmt.Sprint(bs.OwnerSiteRemote), fmt.Sprint(os.OwnerSiteRemote),
			})
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("%s: output identical across all locale counts and both schedulers: %v; predicted by %s",
				c.prog.Name, identical, predictedBy(c.prog, "comm-pattern")))
	}

	t.Notes = append(t.Notes,
		"baseline = spawn-locale scheduling (-no-owner-computes); owner = owner-computes forall distribution (default)",
		"violations = remote element accesses at statically owner-computes sites (must be 0 under owner scheduling)")
	return t, nil
}
