package exp

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/analyze/cost"
	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/views"
)

// TestStaticAccuracyGates pins the ISSUE 6 acceptance criteria: on the
// affine comm benchmarks the predicted message count must land within
// 10% of the measured comm.Stats (it is currently exact), and the
// predicted top-3 blame variables must match the dynamic top-3 (ties
// within blameTieEps of rank 3 accepted) on at least 4 of the 5
// benchmarks. The known miss is halo's rank-3 domain variable D, whose
// dynamic blame is idle-spin attribution the static engine does not
// model (DESIGN.md, "Static cost model").
func TestStaticAccuracyGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full accuracy study")
	}
	scores, err := StaticScores()
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	for _, s := range scores {
		t.Logf("%s: msgs pred=%d meas=%d err=%.3f top3 pred=%v meas=%v match=%v rho=%.2f (n=%d) walk=%v",
			s.Name, s.PredMsgs, s.MeasMsgs, s.MsgErr, s.PredTop, s.MeasTop, s.Top3Match, s.Rho, s.Shared, s.WalkOK)
		if !math.IsNaN(s.MsgErr) && s.MsgErr > 0.10 {
			t.Errorf("%s: comm prediction off by %.1f%% (gate: 10%%): pred %d vs meas %d",
				s.Name, s.MsgErr*100, s.PredMsgs, s.MeasMsgs)
		}
		if s.Top3Match {
			matches++
		}
		if !math.IsNaN(s.Rho) && s.Rho <= 0 {
			t.Errorf("%s: rank correlation %.2f not positive over %d shared vars", s.Name, s.Rho, s.Shared)
		}
	}
	if matches < 4 {
		t.Errorf("top-3 blame matched on %d/%d benchmarks, gate requires >= 4", matches, len(scores))
	}
	// The affine benchmarks must both be checked (a silently skipped comm
	// gate would pass vacuously).
	checked := 0
	for _, s := range scores {
		if !math.IsNaN(s.MsgErr) {
			checked++
		}
	}
	if checked < 2 {
		t.Errorf("comm gate covered %d benchmarks, want >= 2 (halo, wavefront)", checked)
	}
}

// TestStaticPredictionDeterministic pins `blame -static` output: the
// rendered prediction must be byte-identical across repeated runs and
// independent of driver parallelism (-j): concurrent predictions of the
// same program from multiple goroutines must all render the same bytes.
func TestStaticPredictionDeterministic(t *testing.T) {
	res, err := benchprog.Halo().Compile(compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		opts := cost.DefaultOptions()
		opts.VM = runConfig(benchprog.DefaultHalo.Configs())
		opts.VM.NumLocales = 4
		opts.VM.CommAggregate = true
		return views.Predicted(cost.Predict(res.Prog, opts), 20)
	}
	want := render()
	if !strings.Contains(want, "Grid") {
		t.Fatalf("rendered prediction does not mention Grid:\n%s", want)
	}
	for i := 0; i < 3; i++ {
		if got := render(); got != want {
			t.Fatalf("serial run %d differs:\n--- want\n%s\n--- got\n%s", i, want, got)
		}
	}
	var wg sync.WaitGroup
	got := make([]string, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = render()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("concurrent run %d differs:\n--- want\n%s\n--- got\n%s", i, want, g)
		}
	}
}
