package exp

import (
	"strings"
	"sync"
	"testing"
)

// lightSubset is the part of the suite cheap enough to run twice in a
// unit test (the t5/t7/t8/t9 sweeps re-execute LULESH many times and
// belong to the benchmark suite, not here). It still covers every kind
// of experiment: plain tables, the aggregation/locale drivers, and both
// figures.
var lightSubset = []string{
	"t1", "t2", "t3", "t4", "agg", "locales", "baseline", "overhead", "fig4", "fig3",
}

// TestSuiteParallelMatchesSerial pins the acceptance criterion for the
// parallel experiment driver: running over the worker pool must produce
// byte-identical text per experiment, in the same order, as the serial
// path.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	exps, err := Select(lightSubset)
	if err != nil {
		t.Fatal(err)
	}
	serial := RunSuite(exps, 1)
	parallel := RunSuite(exps, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("outcome count: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v", s.Name, s.Err, p.Err)
		}
		if s.Name != p.Name {
			t.Fatalf("outcome %d: name %q (serial) vs %q (parallel)", i, s.Name, p.Name)
		}
		if s.Text != p.Text {
			t.Errorf("%s: parallel text differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				s.Name, s.Text, p.Text)
		}
	}
}

// TestSuiteParallelRepeatable runs the parallel driver twice: memo hits
// on the second pass must not change the rendered bytes.
func TestSuiteParallelRepeatable(t *testing.T) {
	exps, err := Select([]string{"t2", "agg", "fig3"})
	if err != nil {
		t.Fatal(err)
	}
	first := RunSuite(exps, 3)
	second := RunSuite(exps, 3)
	for i := range first {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("%s: err first=%v second=%v", first[i].Name, first[i].Err, second[i].Err)
		}
		if first[i].Text != second[i].Text {
			t.Errorf("%s: second (memoized) run differs from first", first[i].Name)
		}
	}
}

// TestSelect covers ordering, filtering, and unknown-name errors.
func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("empty suite")
	}
	// Selection preserves presentation order regardless of request order.
	got, err := Select([]string{"t2", "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "t1" || got[1].Name != "t2" {
		t.Fatalf("Select order: got %v", []string{got[0].Name, got[1].Name})
	}
	if _, err := Select([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown name: got err %v", err)
	}
}

// TestRunSuiteOrderUnderContention floods a 2-worker pool with quick
// jobs finishing out of order; outcomes must still land by input slot.
func TestRunSuiteOrderUnderContention(t *testing.T) {
	const n = 64
	var mu sync.Mutex
	started := 0
	exps := make([]Experiment, n)
	for i := range exps {
		name := string(rune('a' + i%26))
		exps[i] = Experiment{Name: name, Fn: func() (string, error) {
			mu.Lock()
			started++
			mu.Unlock()
			return name, nil
		}}
	}
	out := RunSuite(exps, 2)
	if started != n {
		t.Fatalf("ran %d of %d experiments", started, n)
	}
	for i, o := range out {
		if o.Name != exps[i].Name || o.Text != exps[i].Name {
			t.Fatalf("slot %d: got %q/%q, want %q", i, o.Name, o.Text, exps[i].Name)
		}
	}
}

// TestRunSuiteRecoversPanic: an exploding experiment becomes a failed
// outcome, not a dead suite — in both the serial and the parallel
// driver (an unrecovered goroutine panic would kill the whole process).
func TestRunSuiteRecoversPanic(t *testing.T) {
	exps := []Experiment{
		{Name: "ok1", Fn: func() (string, error) { return "fine", nil }},
		{Name: "boom", Fn: func() (string, error) { panic("table exploded") }},
		{Name: "ok2", Fn: func() (string, error) { return "also fine", nil }},
	}
	for _, workers := range []int{1, 2} {
		out := RunSuite(exps, workers)
		if len(out) != 3 {
			t.Fatalf("workers=%d: %d outcomes", workers, len(out))
		}
		if out[0].Err != nil || out[0].Text != "fine" || out[2].Err != nil || out[2].Text != "also fine" {
			t.Errorf("workers=%d: healthy experiments affected: %+v", workers, out)
		}
		if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "table exploded") {
			t.Errorf("workers=%d: panic not captured: %+v", workers, out[1])
		}
	}
}
