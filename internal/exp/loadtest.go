package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// LoadTestOptions shapes one load test against a blamed server.
type LoadTestOptions struct {
	// Addr is the server base URL (e.g. "http://127.0.0.1:8091"). Empty
	// boots an in-process server on a loopback port for the duration of
	// the test.
	Addr string
	// Requests is the total submissions across both phases (0 = 240).
	Requests int
	// Concurrency is the storm-phase client count (0 = 64).
	Concurrency int
	// Workers sizes the in-process server's scheduler pool when Addr is
	// empty (0 = 4).
	Workers int
}

// LoadTestResult is what one load test measured.
type LoadTestResult struct {
	Requests       int     `json:"requests"`
	Unique         int     `json:"unique"`
	Concurrency    int     `json:"concurrency"`
	PeakInFlight   int     `json:"peak_in_flight"`
	WallSeconds    float64 `json:"wall_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	Executed       uint64  `json:"executed"`
	Verified       int     `json:"verified"`
}

// Text renders the result for paperbench's report.
func (r *LoadTestResult) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Load test: %d requests (%d unique), %d clients, peak in-flight %d\n",
		r.Requests, r.Unique, r.Concurrency, r.PeakInFlight)
	fmt.Fprintf(&b, "  throughput: %.1f req/s over %.2fs\n", r.RequestsPerSec, r.WallSeconds)
	fmt.Fprintf(&b, "  latency: p50 %.1fms, p99 %.1fms\n", r.P50Ms, r.P99Ms)
	fmt.Fprintf(&b, "  cache: %.1f%% hit rate, %d pipeline executions\n", r.CacheHitRate*100, r.Executed)
	fmt.Fprintf(&b, "  verified: %d responses byte-identical to the CLI path\n", r.Verified)
	return b.String()
}

// WaitReady polls the server's /readyz until it answers 200 — the
// replacement for sleep-and-hope startup loops: readiness is an explicit
// server-side predicate (not draining, scheduler accepting), so the
// verifier starts the instant the server can actually take work.
func WaitReady(client *http.Client, base string, timeout time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("/readyz: HTTP %d", resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("server not ready after %s: %w", timeout, last)
}

// loadMix is the unique request set a load test cycles through: cheap
// programs across views, locales, comm modes and fault injection, so the
// storm exercises every cache-key dimension.
func loadMix() []*serve.Request {
	return []*serve.Request{
		{Bench: "fig1", View: "data"},
		{Bench: "fig1", View: "code"},
		{Bench: "fig1", View: "hybrid"},
		{Bench: "fig1", View: "static"},
		{Bench: "wavefront", View: "data"},
		{Bench: "halo", View: "data", Locales: 2},
		{Bench: "halo", View: "comm", Locales: 2, CommAggregate: true},
		{Bench: "fig1", View: "data", FaultSpec: "delay=0.05:2xCommLatency", FaultSeed: 7},
	}
}

// LoadTest drives a blamed server with a warm phase (every unique
// request once, sequentially — these are the cache misses) and a storm
// phase (the rest of the budget over Concurrency concurrent clients —
// nearly all cache hits), verifying each unique request's text against a
// direct in-process serve.Execute, then reads the server's /metrics. It
// is both paperbench's -loadtest mode and the CI serve job's workload.
func LoadTest(opts LoadTestOptions) (*LoadTestResult, error) {
	if opts.Requests <= 0 {
		opts.Requests = 240
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 64
	}

	base := opts.Addr
	if base == "" {
		srv := serve.New(serve.Options{Workers: opts.Workers})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.Concurrency * 2,
		MaxIdleConnsPerHost: opts.Concurrency * 2,
	}}
	if err := WaitReady(client, base, 15*time.Second); err != nil {
		return nil, err
	}

	mix := loadMix()
	if opts.Requests < len(mix) {
		mix = mix[:opts.Requests]
	}

	// Expected bytes for each unique request, computed through the same
	// code path the CLI uses (Execute with no control hooks).
	expected := make([]string, len(mix))
	for i, m := range mix {
		req := *m // Normalize mutates; keep the mix JSON-clean for resubmission
		if err := req.Normalize(); err != nil {
			return nil, fmt.Errorf("load mix %d: %w", i, err)
		}
		out, err := serve.Execute(&req, nil)
		if err != nil {
			return nil, fmt.Errorf("load mix %d: %w", i, err)
		}
		expected[i] = out.Text
	}

	res := &LoadTestResult{
		Requests:    opts.Requests,
		Unique:      len(mix),
		Concurrency: opts.Concurrency,
	}
	var verified atomic.Int64
	submit := func(i int) (time.Duration, error) {
		body, err := json.Marshal(mix[i%len(mix)])
		if err != nil {
			return 0, err
		}
		start := time.Now()
		resp, err := client.Post(base+"/v1/submit?wait=1&format=text", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		text, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		d := time.Since(start)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("submit %d: HTTP %d: %s", i, resp.StatusCode, text)
		}
		if want := expected[i%len(mix)]; string(text) != want {
			return 0, fmt.Errorf("submit %d: response differs from the CLI path (%d vs %d bytes)", i, len(text), len(want))
		}
		verified.Add(1)
		return d, nil
	}

	// Warm phase: each unique request once, sequentially. These populate
	// the outcome cache (the only pipeline executions of the test).
	lats := make([]time.Duration, 0, opts.Requests)
	wallStart := time.Now()
	for i := range mix {
		d, err := submit(i)
		if err != nil {
			return nil, err
		}
		lats = append(lats, d)
	}

	// Storm phase: the remaining budget over Concurrency clients, all
	// started through one gate so the server really sees that many
	// concurrent sessions.
	storm := opts.Requests - len(mix)
	var (
		next     atomic.Int64
		inFlight atomic.Int64
		peak     atomic.Int64
		firstErr atomic.Value
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	start := make(chan struct{})
	for c := 0; c < opts.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				i := next.Add(1) - 1
				if i >= int64(storm) || firstErr.Load() != nil {
					return
				}
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				d, err := submit(len(mix) + int(i))
				inFlight.Add(-1)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				mu.Lock()
				lats = append(lats, d)
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	wall := time.Since(wallStart)

	res.WallSeconds = wall.Seconds()
	res.RequestsPerSec = float64(len(lats)) / wall.Seconds()
	res.PeakInFlight = int(peak.Load())
	res.Verified = int(verified.Load())
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		res.P50Ms = lats[n/2].Seconds() * 1000
		res.P99Ms = lats[n*99/100].Seconds() * 1000
	}

	// Read the server's own view of the test.
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap serve.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	res.CacheHitRate = snap.Cache.HitRate()
	res.Executed = snap.Executed
	return res, nil
}
