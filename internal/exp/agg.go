package exp

import (
	"fmt"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/blame"
	"repro/internal/compile"
	"repro/internal/postmortem"
	"repro/internal/vm"
)

// TableAgg regenerates the communication-aggregation study (§VI
// extension): the halo-exchange stencil at 4 locales, measured once with
// per-element remote access and once under the modeled aggregation
// runtime (-comm-aggregate). Every per-variable reduction row cites the
// static comm-pattern finding that predicted it — the advisor join, now
// closing the predict -> transform -> measure loop.
func TableAgg() (*Table, error) {
	prog := benchprog.Halo()
	cfgs := benchprog.DefaultHalo.Configs()
	res, err := prog.Compile(compile.Options{})
	if err != nil {
		return nil, err
	}

	// The static side of the join: the comm-pattern findings per variable.
	rep := analysisReport(res.Prog)
	predicted := make(map[string][]string)
	for _, d := range rep.ByPass("comm-pattern") {
		if d.Var == "" || strings.Contains(d.Message, "communication summary") {
			continue
		}
		kind := "remote access"
		for _, k := range []string{"halo access", "wavefront access", "strided access",
			"blocked access", "sweep access", "fine-grained remote access"} {
			if strings.Contains(d.Message, k) {
				kind = k
				break
			}
		}
		predicted[d.Var] = append(predicted[d.Var],
			fmt.Sprintf("%s at %s", kind, rep.Prog.FileSet.Position(d.Pos)))
	}
	cite := func(name string) string {
		cs := predicted[name]
		if len(cs) == 0 {
			return "-"
		}
		if len(cs) > 2 {
			return strings.Join(cs[:2], "; ") + fmt.Sprintf(" (+%d more)", len(cs)-2)
		}
		return strings.Join(cs, "; ")
	}

	run := func(aggregate, ownerComputes bool) (*postmortem.CommProfile, vm.Stats, string, error) {
		var out strings.Builder
		bc := blame.DefaultConfig()
		bc.VM = runConfig(cfgs)
		bc.VM.NumLocales = 4
		bc.VM.Stdout = &out
		bc.VM.CommAggregate = aggregate
		bc.VM.NoOwnerComputes = !ownerComputes
		r, err := blame.Profile(res.Prog, bc)
		if err != nil {
			return nil, vm.Stats{}, "", err
		}
		return r.CommBlame(), r.Stats, out.String(), nil
	}
	// The aggregation study keeps PR 2's spawn-locale scheduling so the
	// before/after pair isolates the runtime transform; the owner-computes
	// scheduler's effect rides along as a note (and TableLocales).
	dp, ds, dout, err := run(false, false)
	if err != nil {
		return nil, err
	}
	ap, as, aout, err := run(true, false)
	if err != nil {
		return nil, err
	}
	_, ws, wout, err := run(true, true)
	if err != nil {
		return nil, err
	}

	aggMsgs := func(name string) int {
		for _, r := range ap.Rows {
			if r.Name == name {
				return r.Messages
			}
		}
		return 0
	}
	iratio := func(a, b int) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(a)/float64(b))
	}

	t := &Table{
		ID:     "Table Agg",
		Title:  "Halo exchange w/ and w/o modeled aggregation (4 locales)",
		Header: []string{"Variable", "Msgs (direct)", "Msgs (aggregated)", "Reduction", "Predicted by"},
	}
	for _, r := range dp.Rows {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprint(r.Messages), fmt.Sprint(aggMsgs(r.Name)),
			iratio(r.Messages, aggMsgs(r.Name)), cite(r.Name),
		})
	}
	t.Rows = append(t.Rows, []string{
		"(total)", fmt.Sprint(ds.CommMessages), fmt.Sprint(as.CommMessages),
		iratio(int(ds.CommMessages), int(as.CommMessages)), "-",
	})

	t.Notes = append(t.Notes,
		fmt.Sprintf("output identical: %v", dout == aout),
		fmt.Sprintf("bytes on the wire: %d direct vs %d aggregated", ds.CommBytes, as.CommBytes),
		fmt.Sprintf("wall time: %s s direct vs %s s aggregated (%s speedup)",
			secs(ds.Seconds(bcClockHz)), secs(as.Seconds(bcClockHz)),
			ratio(ds.Seconds(bcClockHz), as.Seconds(bcClockHz))),
	)
	if a := as.Agg; a != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"aggregation runtime: %.1f%% cache hit rate, %d prefetches (%d elems), %d streams (%d elems), %d flushes (%d elems)",
			a.HitRate()*100, a.Prefetches, a.PrefetchedElems, a.Streams, a.StreamedElems, a.Flushes, a.FlushedElems))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"owner-computes scheduling (default) cuts this further: %d messages, %d owner-site violations, output identical: %v (see Table Locales)",
		ws.CommMessages, ws.OwnerSiteRemote, wout == aout))
	return t, nil
}

// bcClockHz is the experiment clock (paper testbed: 2.53 GHz).
const bcClockHz = 2.53e9

// predictedBy renders the advisor join for a §V speedup row: the named
// passes' findings on the program the optimization started from. Cited
// strings are memoized per (program, pass list).
func predictedBy(p benchprog.Program, passes ...string) string {
	key := p.Name + "|" + strings.Join(passes, ",")
	s, _ := predMemo.get(key, func() (string, error) {
		res, err := p.Compile(compile.Options{})
		if err != nil {
			return "-", nil
		}
		rep := analysisReport(res.Prog)
		var cites []string
		for _, pass := range passes {
			ds := rep.ByPass(pass)
			if len(ds) == 0 {
				continue
			}
			c := fmt.Sprintf("%s at %s", pass, rep.Prog.FileSet.Position(ds[0].Pos))
			if len(ds) > 1 {
				c += fmt.Sprintf(" (+%d more)", len(ds)-1)
			}
			cites = append(cites, c)
		}
		if len(cites) == 0 {
			return "-", nil
		}
		return strings.Join(cites, "; "), nil
	})
	return s
}
