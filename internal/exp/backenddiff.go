package exp

import (
	"encoding/json"
	"fmt"

	"repro/gobert"
	"repro/internal/benchprog"
	"repro/internal/comm"
	"repro/internal/compile"
	"repro/internal/gobe"
	"repro/internal/serve"
	"repro/internal/vm"
)

// This file is the backend-differential harness behind `paperbench
// -diffbe`: every benchmark × 1/2/4 locales × the four comm modes ×
// fault injection, each run on the interpreter and the native-compiled
// Go backend, pinning bit-identical program output, identical stats
// (including comm message counts) and identical blame profiles. Any
// nonzero diff count fails the experiment.

// diffWorkload is one benchmark at its harness problem size (small
// enough that the full matrix stays fast, large enough that every
// runtime subsystem is exercised).
type diffWorkload struct {
	prog benchprog.Program
	cfgs map[string]string
}

func diffWorkloads() []diffWorkload {
	return []diffWorkload{
		{benchprog.Halo(), benchprog.HaloConfig{N: 256, Reps: 4}.Configs()},
		{benchprog.Wavefront(), benchprog.DefaultWavefront.Configs()},
		{benchprog.CLOMP(false), benchprog.CLOMPConfig{NumParts: 8, ZonesPerPart: 16, FlopScale: 1, TimeScale: 1}.Configs()},
		{benchprog.MiniMD(false), benchprog.DefaultMiniMD.Configs()},
		{benchprog.LULESH(benchprog.LuleshOriginal), benchprog.LuleshConfig{NumElems: 24, NSteps: 2}.Configs()},
		{benchprog.Gather(), benchprog.GatherConfig{N: 256, Reps: 3}.Configs()},
		{benchprog.SpMV(), benchprog.SpMVConfig{N: 64, NnzPerRow: 4, Reps: 3}.Configs()},
	}
}

// commModes are the four communication configurations of the harness:
// the direct runtime, the aggregation runtime with its software cache,
// the aggregation runtime with the cache disabled, and the aggregation
// runtime with the inspector–executor path on top.
type commMode struct {
	name      string
	agg       bool
	cacheCap  int
	inspector bool
}

func commModes4() []commMode {
	return []commMode{
		{"direct", false, 0, false},
		{"agg", true, comm.DefaultCacheCap, false},
		{"agg/nocache", true, -1, false},
		{"agg/inspector", true, comm.DefaultCacheCap, true},
	}
}

// diffFaultSpec is the deterministic fault schedule every workload also
// runs under (at 2 locales, where comm faults have something to hit).
const diffFaultSpec = "loss=0.01,dup=0.005,delay=0.1:3xCommLatency"

// TableBackendDiff runs the full differential matrix and renders one
// row per cell. The diffs column must be 0 everywhere; the experiment
// errors out on the first divergence so CI fails loudly.
func TableBackendDiff() (*Table, error) {
	t := &Table{
		ID:     "diffbe",
		Title:  "backend differential — interpreter vs native-compiled Go backend (diffs must be 0)",
		Header: []string{"workload", "locales", "comm", "fault", "diffs", "comm msgs", "interp ms", "go ms", "speedup"},
	}
	for _, w := range diffWorkloads() {
		for _, locales := range []int{1, 2, 4} {
			for _, m := range commModes4() {
				spec := &gobert.RunSpec{
					Mode: "run", Cores: 4, Locales: locales, Configs: w.cfgs,
					MaxCycles: 20_000_000_000, CommAggregate: m.agg, CommCacheCap: m.cacheCap,
					CommInspector: m.inspector,
				}
				row, err := diffRunRow(w, spec, m.name, "none")
				if err != nil {
					return nil, fmt.Errorf("%s locales=%d comm=%s: %w", w.prog.Name, locales, m.name, err)
				}
				t.Rows = append(t.Rows, row)
			}
		}
		// Fault injection: deterministic schedule, 2 locales, direct comm.
		spec := &gobert.RunSpec{
			Mode: "run", Cores: 4, Locales: 2, Configs: w.cfgs,
			MaxCycles: 20_000_000_000, FaultSpec: diffFaultSpec, FaultSeed: 7,
		}
		row, err := diffRunRow(w, spec, "direct", "loss+dup+delay")
		if err != nil {
			return nil, fmt.Errorf("%s fault: %w", w.prog.Name, err)
		}
		t.Rows = append(t.Rows, row)

		// Blame profile agreement: the full serve pipeline (sampling,
		// post-mortem attribution, rendered views) must come back byte
		// identical — which subsumes blame-percentage and rank agreement.
		row, err = diffOutcomeRow(w)
		if err != nil {
			return nil, fmt.Errorf("%s blame: %w", w.prog.Name, err)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"diffs compares program output, stats JSON (incl. comm message counts), outcome and profile bytes",
		"blame rows run the full profiling pipeline on both backends and compare the rendered profile byte-for-byte",
	)
	return t, nil
}

// diffRunRow executes one run-mode cell on both backends.
func diffRunRow(w diffWorkload, spec *gobert.RunSpec, commName, faultName string) ([]string, error) {
	interp, compiled, err := gobe.RunBoth(w.prog.Name+".mchpl", w.prog.Source, compile.Options{}, spec)
	if err != nil {
		return nil, err
	}
	diffs := gobe.Diff(interp, compiled)
	if len(diffs) > 0 {
		return nil, fmt.Errorf("backends diverged:\n%s", diffs[0])
	}
	var st vm.Stats
	if interp.Stats != nil {
		if err := json.Unmarshal(interp.Stats, &st); err != nil {
			return nil, err
		}
	}
	return []string{
		w.prog.Name, fmt.Sprint(spec.Locales), commName, faultName,
		fmt.Sprint(len(diffs)), fmt.Sprint(st.CommMessages),
		fmt.Sprintf("%.1f", float64(interp.WallNs)/1e6),
		fmt.Sprintf("%.1f", float64(compiled.WallNs)/1e6),
		fmt.Sprintf("%.2fx", float64(interp.WallNs)/float64(max64(1, uint64(compiled.WallNs)))),
	}, nil
}

// diffOutcomeRow executes the serve pipeline (blame profiling) on both
// backends and compares the full outcome envelope.
func diffOutcomeRow(w diffWorkload) ([]string, error) {
	req := &serve.Request{
		Source: w.prog.Source, Name: w.prog.Name + ".mchpl",
		Configs: w.cfgs, Cores: 4, Locales: 1, View: "data", Limit: 10,
	}
	spec := &gobert.RunSpec{Mode: "outcome", Request: req}
	interp, compiled, err := gobe.RunBoth(w.prog.Name+".mchpl", w.prog.Source, compile.Options{}, spec)
	if err != nil {
		return nil, err
	}
	diffs := gobe.Diff(interp, compiled)
	if len(diffs) > 0 {
		return nil, fmt.Errorf("blame outcomes diverged:\n%s", diffs[0])
	}
	return []string{
		w.prog.Name, "1", "direct", "none (blame)",
		fmt.Sprint(len(diffs)), "-",
		fmt.Sprintf("%.1f", float64(interp.WallNs)/1e6),
		fmt.Sprintf("%.1f", float64(compiled.WallNs)/1e6),
		fmt.Sprintf("%.2fx", float64(interp.WallNs)/float64(max64(1, uint64(compiled.WallNs)))),
	}, nil
}

// BackendSpeedup is one Table VII-class workload timed on both backends
// (the BENCH_PR8.json material).
type BackendSpeedup struct {
	Name      string  `json:"name"`
	InterpMs  float64 `json:"interp_ms"`
	GoMs      float64 `json:"go_ms"`
	SpeedupX  float64 `json:"speedup_x"`
	Identical bool    `json:"identical"`
}

// BackendSpeedups times the Table VII hourglass-kernel variants (the
// Fig. 5 loop nest the paper's unrolling study measures) on both
// backends at a compute-dominated problem size, verifying bit-identical
// results while measuring wall clock.
func BackendSpeedups() ([]BackendSpeedup, error) {
	variants := []benchprog.LuleshVariant{
		benchprog.LuleshOriginal,
		{P1: true},
		{P1: true, U2: true},
		{P1: true, U2: true, U3: true},
	}
	cfgs := map[string]string{"numElems": "3000", "nSteps": "8"}
	var out []BackendSpeedup
	for _, v := range variants {
		p := benchprog.LULESHKernel(v)
		spec := &gobert.RunSpec{Mode: "run", Cores: 4, Locales: 1, MaxCycles: 200_000_000_000, Configs: cfgs}
		interp, compiled, err := gobe.RunBoth(p.Name+".mchpl", p.Source, compile.Options{}, spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		diffs := gobe.Diff(interp, compiled)
		out = append(out, BackendSpeedup{
			Name:      p.Name,
			InterpMs:  float64(interp.WallNs) / 1e6,
			GoMs:      float64(compiled.WallNs) / 1e6,
			SpeedupX:  float64(interp.WallNs) / float64(max64(1, uint64(compiled.WallNs))),
			Identical: len(diffs) == 0,
		})
	}
	return out, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
