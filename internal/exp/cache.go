package exp

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/analyze"
	"repro/internal/benchprog"
	"repro/internal/blame"
	"repro/internal/comm"
	"repro/internal/compile"
	"repro/internal/ir"
)

// The table functions re-derive the same deterministic quantities many
// times: profileProgram(LULESH original) alone backs Fig4, Table6,
// Table8's first column, the baseline comparison and the overhead table.
// Every VM run here is bit-reproducible (fixed scheduler, fixed cost
// model, no host time), so run results are pure functions of
// (program, config) and safe to share — including across the parallel
// suite driver's goroutines.

// memo is a tiny generic singleflight cache: concurrent lookups of the
// same key compute once, losers block on the winner.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
	err  error
}

func (c *memo[K, V]) get(k K, f func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[k]
	if !ok {
		e = &memoEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v, e.err = f() })
	return e.v, e.err
}

// cfgKey canonicalizes a config-const override map for cache keys.
func cfgKey(cfgs map[string]string) string {
	if len(cfgs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(cfgs))
	for k := range cfgs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(cfgs[k])
		b.WriteByte(';')
	}
	return b.String()
}

type timeKey struct {
	name string
	fast bool
	cfgs string
}

// runShape captures the execution-shape knobs that change a profile
// beyond (program, config consts): locale count, comm runtime mode and
// fault injection. It is part of profKey so a shaped run can never
// alias the default-shape cache entry — the experiment-level analogue
// of the full-Options keys in compile.SourceCached / core.AnalyzeCached
// (and of serve.Request.Key, which hashes the same dimensions).
type runShape struct {
	locales   int
	commAgg   bool
	commInsp  bool
	commCache int
	noOwner   bool
	faultSpec string
	faultSeed uint64
}

// defaultShape is the single-locale, comm-off, fault-free shape every
// table experiment uses.
func defaultShape() runShape { return runShape{locales: 1} }

type profKey struct {
	name  string
	cfgs  string
	shape runShape
}

var (
	timeMemo   memo[timeKey, float64]
	profMemo   memo[profKey, *blame.Result]
	reportMemo memo[*ir.Program, *analyze.Report]
	commMemo   memo[*ir.Program, *comm.Plan]
	predMemo   memo[string, string]
)

// analysisReport memoizes the default diagnostics report per program
// (reports are immutable once built).
func analysisReport(prog *ir.Program) *analyze.Report {
	rep, _ := reportMemo.get(prog, func() (*analyze.Report, error) {
		return analyze.Run(prog), nil
	})
	return rep
}

// commPlanFor memoizes the static comm-pattern plan per program (the VM
// and the aggregation runtime only read it).
func commPlanFor(prog *ir.Program) *comm.Plan {
	plan, _ := commMemo.get(prog, func() (*comm.Plan, error) {
		return analyze.CommPlan(prog), nil
	})
	return plan
}

// timedSeconds memoizes timeProgram results: unmonitored runs are
// deterministic, so one (program, fast, configs) run serves Table3,
// Table5, Table7 and Table9 alike.
func timedSeconds(p benchprog.Program, fast bool, cfgs map[string]string) (float64, error) {
	return timeMemo.get(timeKey{p.Name, fast, cfgKey(cfgs)}, func() (float64, error) {
		res, err := p.Compile(compile.Options{Fast: fast})
		if err != nil {
			return 0, err
		}
		return timeRun(res, cfgs)
	})
}

// profiled memoizes profileProgram results. The *blame.Result (profile,
// analysis, sampler) is read-only for every consumer, so the LULESH
// profile runs once and feeds Fig4, Table6, Table8, the baseline and the
// overhead tables.
func profiled(p benchprog.Program, cfgs map[string]string) (*blame.Result, error) {
	return profiledShaped(p, cfgs, defaultShape())
}

// profiledShaped is profiled with an explicit run shape; distinct shapes
// get distinct cache entries.
func profiledShaped(p benchprog.Program, cfgs map[string]string, shape runShape) (*blame.Result, error) {
	return profMemo.get(profKey{p.Name, cfgKey(cfgs), shape}, func() (*blame.Result, error) {
		return profileUncached(p, cfgs, shape)
	})
}

// ResetMemos drops all experiment-level caches (tests).
func ResetMemos() {
	timeMemo = memo[timeKey, float64]{}
	profMemo = memo[profKey, *blame.Result]{}
	reportMemo = memo[*ir.Program, *analyze.Report]{}
	commMemo = memo[*ir.Program, *comm.Plan]{}
	predMemo = memo[string, string]{}
}
