package exp

import (
	"strings"
	"testing"
)

// The toolchain-free crash phases (journal reboot, graceful drain) run
// in the regular test suite; the supervised phases A/B need the Go
// toolchain and run in the crash-chaos CI job via paperbench -crashtest.

func TestCrashPhaseCJournalReboot(t *testing.T) {
	res := &CrashResult{}
	p, err := crashPhaseC(res, CrashTestOptions{Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) > 0 {
		t.Fatalf("phase C gates failed:\n%s", strings.Join(res.Failures, "\n"))
	}
	if p.Runs == 0 {
		t.Fatal("phase C ran nothing")
	}
}

func TestCrashPhaseDDrain(t *testing.T) {
	res := &CrashResult{}
	p, err := crashPhaseD(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) > 0 {
		t.Fatalf("phase D gates failed:\n%s", strings.Join(res.Failures, "\n"))
	}
	if p.Runs == 0 {
		t.Fatal("phase D observed no submissions")
	}
}
