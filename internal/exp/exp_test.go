package exp_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/exp"
)

// pct parses a "12.3%" cell.
func pct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad pct cell %q", cell)
	}
	return v
}

func ratio(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q", cell)
	}
	return v
}

func TestTable1MatchesPaperLines(t *testing.T) {
	tab, err := exp.Table1()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tab.Cell("b", 1)
	if b != "17" {
		t.Errorf("b lines = %q, want 17", b)
	}
	c, _ := tab.Cell("c", 1)
	if c != "16,17,18,19,20" {
		t.Errorf("c lines = %q", c)
	}
	a, _ := tab.Cell("a", 1)
	// Formula result: paper's set plus line 17 (documented deviation).
	if a != "16,17,18,19" {
		t.Errorf("a lines = %q", a)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := exp.Table2()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		c, ok := tab.Cell(name, 2)
		if !ok {
			t.Fatalf("row %s missing", name)
		}
		return pct(t, c)
	}
	pos, bins, count, binSpace := get("Pos"), get("Bins"), get("Count"), get("binSpace")
	if pos < 85 || bins < 75 {
		t.Errorf("Pos/Bins must be dominant: %.1f / %.1f", pos, bins)
	}
	if count < 25 || count > 75 {
		t.Errorf("Count should be mid-tier: %.1f", count)
	}
	if binSpace >= pos {
		t.Errorf("binSpace (%.1f) must rank below Pos (%.1f)", binSpace, pos)
	}
}

func TestTable3MiniMDSpeedups(t *testing.T) {
	tab, err := exp.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		s := ratio(t, row[3])
		if s < 1.2 {
			t.Errorf("%s: speedup %.2f < 1.2 (paper: >= 2.26)", row[0], s)
		}
		if !strings.Contains(row[5], "zip-overhead") || !strings.Contains(row[5], "domain-remap") {
			t.Errorf("%s: speedup row does not cite its predicting findings: %q", row[0], row[5])
		}
	}
}

func TestTable4CLOMPShape(t *testing.T) {
	tab, err := exp.Table4()
	if err != nil {
		t.Fatal(err)
	}
	pa, ok := tab.Cell("partArray", 2)
	if !ok {
		t.Fatal("partArray row missing")
	}
	if pct(t, pa) < 90 {
		t.Errorf("partArray = %s, want > 90%%", pa)
	}
	rd, ok := tab.Cell("remaining_deposit", 2)
	if !ok || pct(t, rd) > 30 {
		t.Errorf("remaining_deposit = %s, want minor", rd)
	}
	val, ok := tab.Cell("partArray[pi].zoneArray[z].value", 2)
	if !ok || pct(t, val) < 30 {
		t.Errorf("value path = %s, want major", val)
	}
	res, _ := tab.Cell("partArray[pi].residue", 2)
	if pct(t, res) >= pct(t, val) {
		t.Errorf("residue (%s) must rank below value (%s)", res, val)
	}
}

func TestTable5CrossoverShape(t *testing.T) {
	tab, err := exp.Table5()
	if err != nil {
		t.Fatal(err)
	}
	// The parts-dominated point (65536/10) gains least; the
	// zones-dominated points gain most (paper's crossover shape).
	var s [4]float64
	for i := 0; i < 4; i++ {
		s[i] = ratio(t, tab.Rows[i][3])
	}
	if !(s[1] < s[0] && s[1] < s[2]) {
		t.Errorf("65536/10 (%.2f) must gain least among %v", s[1], s)
	}
	if s[2] < 1.4 {
		t.Errorf("12/640,000 should gain strongly: %.2f", s[2])
	}
	if !strings.Contains(tab.Rows[0][5], "nested-structure") {
		t.Errorf("speedup rows do not cite the nested-structure finding: %q", tab.Rows[0][5])
	}
}

func TestTable6LULESHShape(t *testing.T) {
	tab, err := exp.Table6()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		c, ok := tab.Cell(name, 2)
		if !ok {
			t.Fatalf("row %s missing", name)
		}
		return pct(t, c)
	}
	hgfx, hourgam, determ := get("hgfx"), get("hourgam"), get("determ")
	bx, dvdx, hourmodx := get("b_x"), get("dvdx"), get("hourmodx")
	if hgfx < 15 {
		t.Errorf("hgfx = %.1f, want top-tier", hgfx)
	}
	if hourgam < 15 {
		t.Errorf("hourgam = %.1f, want top-tier", hourgam)
	}
	if !(determ > bx && bx > hourmodx) {
		t.Errorf("ordering determ(%.1f) > b_x(%.1f) > hourmodx(%.1f) broken", determ, bx, hourmodx)
	}
	if dvdx > determ {
		t.Errorf("dvdx (%.1f) must rank below determ (%.1f)", dvdx, determ)
	}
}

func TestTable7UnrollingShape(t *testing.T) {
	tab, err := exp.Table7()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		c, ok := tab.Cell(name, 2)
		if !ok {
			t.Fatalf("row %q missing", name)
		}
		return ratio(t, c)
	}
	if get("Original") != 1.0 {
		t.Error("original must normalize to 1.0")
	}
	p1 := get("P 1")
	if p1 < 1.02 {
		t.Errorf("P 1 should beat original: %.2f (paper 1.07)", p1)
	}
	full := get("P1+U2+U3")
	if full >= p1 {
		t.Errorf("full manual unroll (%.2f) must be counterproductive vs P1 (%.2f)", full, p1)
	}
}

func TestTable9OptimizationStack(t *testing.T) {
	tab, err := exp.Table9()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, col int) float64 {
		c, ok := tab.Cell(name, col)
		if !ok {
			t.Fatalf("row %q missing", name)
		}
		return ratio(t, c)
	}
	best := get("Best Case", 2)
	vg := get("VG", 2)
	p1 := get("P 1", 2)
	if best < 1.2 {
		t.Errorf("best case %.2f, want >= 1.2 (paper 1.38)", best)
	}
	if !(best > vg && vg > p1) {
		t.Errorf("ordering Best(%.2f) > VG(%.2f) > P1(%.2f) broken", best, vg, p1)
	}
	if orig := get("Original", 2); orig != 1.0 {
		t.Error("original must normalize to 1.0")
	}
	cell := func(name string) string {
		c, ok := tab.Cell(name, 7)
		if !ok {
			t.Fatalf("row %q missing predicted-by cell", name)
		}
		return c
	}
	if !strings.Contains(cell("VG"), "var-globalization") {
		t.Errorf("VG row does not cite var-globalization: %q", cell("VG"))
	}
	if !strings.Contains(cell("P 1"), "param-unroll") {
		t.Errorf("P 1 row does not cite param-unroll: %q", cell("P 1"))
	}
	if bc := cell("Best Case"); !strings.Contains(bc, "var-globalization") || !strings.Contains(bc, "param-unroll") {
		t.Errorf("Best Case row does not cite both findings: %q", bc)
	}
}

// TestTableAggReduction drives the §VI aggregation study: the modeled
// runtime must cut halo-exchange messages >= 10x with identical output,
// and every per-variable reduction row must cite the static comm-pattern
// finding that predicted it.
func TestTableAggReduction(t *testing.T) {
	tab, err := exp.TableAgg()
	if err != nil {
		t.Fatal(err)
	}
	total, ok := tab.Cell("(total)", 3)
	if !ok {
		t.Fatal("(total) row missing")
	}
	if r := ratio(t, total); r < 10 {
		t.Errorf("total message reduction %.2f, want >= 10", r)
	}
	for _, row := range tab.Rows {
		if row[0] == "(total)" {
			continue
		}
		if row[4] == "-" || row[4] == "" {
			t.Errorf("variable %s reduction row cites no static finding", row[0])
		}
	}
	var identical bool
	for _, n := range tab.Notes {
		if n == "output identical: true" {
			identical = true
		}
	}
	if !identical {
		t.Errorf("aggregation changed program output; notes: %v", tab.Notes)
	}
}

func TestFig4RuntimeDominates(t *testing.T) {
	_, tab, err := exp.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty Fig4")
	}
	if tab.Rows[0][0] != "__sched_yield" {
		t.Errorf("top code-centric entry = %s, want __sched_yield (paper: 79%%)", tab.Rows[0][0])
	}
	top := pct(t, tab.Rows[0][1])
	if top < 25 {
		t.Errorf("sched_yield share %.1f too low", top)
	}
}

func TestUnknownDataBaseline(t *testing.T) {
	tab, err := exp.UnknownData()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		u := pct(t, row[1])
		if u < 85 {
			t.Errorf("%s: baseline unknown share %.1f, want ~all unknown (paper 95-97%%)", row[0], u)
		}
		top := pct(t, row[4])
		if top < 50 {
			t.Errorf("%s: blame top variable only %.1f%%", row[0], top)
		}
	}
}

func TestOverheadTable(t *testing.T) {
	tab, err := exp.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("overhead rows: %d", len(tab.Rows))
	}
}

func TestTableRendering(t *testing.T) {
	tab, err := exp.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Variable") {
		t.Errorf("rendering broken:\n%s", out)
	}
}

// TestTableLocalesScaling drives the locale-scaling study: both
// benchmarks at every locale count must report zero owner-site
// violations under owner-computes scheduling, strictly fewer messages
// than the spawn-locale baseline once communication exists, and
// identical output everywhere.
func TestTableLocalesScaling(t *testing.T) {
	tab, err := exp.TableLocales()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %d, want 8 (2 benchmarks x 4 locale counts)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		name := row[0]
		baseMsgs, ownMsgs := atoiCell(t, name, row[2]), atoiCell(t, name, row[3])
		baseViol, ownViol := atoiCell(t, name, row[6]), atoiCell(t, name, row[7])
		if ownViol != 0 {
			t.Errorf("%s: %d owner-site violations under owner-computes, want 0", name, ownViol)
		}
		if row[1] == "1" {
			if baseMsgs != 0 || ownMsgs != 0 {
				t.Errorf("%s: single-locale run communicated (%d/%d messages)", name, baseMsgs, ownMsgs)
			}
			continue
		}
		if ownMsgs >= baseMsgs {
			t.Errorf("%s: owner-computes sent %d messages, baseline %d — want strictly fewer", name, ownMsgs, baseMsgs)
		}
		if baseViol == 0 {
			t.Errorf("%s: spawn-locale baseline reports 0 owner-site violations; the comparison is vacuous", name)
		}
	}
	identical := 0
	for _, n := range tab.Notes {
		if strings.Contains(n, "output identical across all locale counts and both schedulers: true") {
			identical++
		}
	}
	if identical != 2 {
		t.Errorf("want 2 output-identical notes, got %d; notes: %v", identical, tab.Notes)
	}
}

func atoiCell(t *testing.T, row, cell string) int {
	t.Helper()
	n, err := strconv.Atoi(cell)
	if err != nil {
		t.Fatalf("row %s: non-numeric cell %q", row, cell)
	}
	return n
}
