package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/analyze/cost"
	"repro/internal/benchprog"
	"repro/internal/blame"
	"repro/internal/compile"
)

// staticCase is one benchmark of the static-accuracy study: the program,
// its config-const overrides, and the run environment (locale count,
// aggregation mode) shared by the dynamic profile and the prediction.
type staticCase struct {
	Prog benchprog.Program
	Cfgs map[string]string
	NL   int
	Agg  bool
	Insp bool
}

// StaticCases returns the benchmarks the static cost engine is scored
// on: the comm benchmarks at 4 locales (where message prediction is
// checked against comm.Stats) — the two affine ones plus the two
// irregular sparse ones under the inspector — and the three §V ports at
// 1 locale (where only the blame ranking is checked).
func StaticCases() []staticCase {
	return []staticCase{
		{benchprog.Halo(), benchprog.DefaultHalo.Configs(), 4, true, false},
		{benchprog.Wavefront(), benchprog.DefaultWavefront.Configs(), 4, true, false},
		{benchprog.MiniMD(false), nil, 1, false, false},
		{benchprog.CLOMP(false), nil, 1, false, false},
		{benchprog.LULESH(benchprog.LuleshOriginal), nil, 1, false, false},
		{benchprog.Gather(), benchprog.DefaultGather.Configs(), 4, true, true},
		{benchprog.SpMV(), benchprog.DefaultSpMV.Configs(), 4, true, true},
	}
}

// staticRun profiles one case dynamically and predicts it statically
// under the same VM configuration.
func staticRun(c staticCase) (*blame.Result, *cost.Prediction, error) {
	res, err := c.Prog.Compile(compile.Options{})
	if err != nil {
		return nil, nil, err
	}
	bc := blame.DefaultConfig()
	bc.VM = runConfig(c.Cfgs)
	bc.VM.NumLocales = c.NL
	bc.VM.CommAggregate = c.Agg
	bc.VM.CommInspector = c.Insp
	bc.VM.Stdout = io.Discard
	r, err := blame.Profile(res.Prog, bc)
	if err != nil {
		return nil, nil, err
	}
	opts := cost.DefaultOptions()
	opts.VM = bc.VM
	return r, cost.Predict(res.Prog, opts), nil
}

// blameTieEps extends the dynamic top-3 with ties: rows whose blame is
// within half a percentage point of the rank-3 row count as rank 3 too.
// The monitor's sampling makes sub-point orderings of equally-hot
// variables (wavefront's A/C/H/S, LULESH's force arrays) a coin flip the
// static engine cannot — and should not — reproduce.
const blameTieEps = 0.005

// dynTop returns the dynamic top-n entity names (variables and access
// paths — both are first-class rows of the data-centric view) and the
// tie-extended acceptance set for rank n.
func dynTop(r *blame.Result, n int) (top []string, accept map[string]bool) {
	accept = make(map[string]bool)
	var cut float64
	for _, row := range r.Profile.DataCentric {
		if len(top) < n {
			top = append(top, row.Name)
			accept[row.Name] = true
			cut = row.Blame
			continue
		}
		if row.Blame >= cut-blameTieEps {
			accept[row.Name] = true
			continue
		}
		break
	}
	return top, accept
}

// dynRanks returns variable name -> dynamic rank (1-based, paths
// excluded).
func dynRanks(r *blame.Result) map[string]int {
	ranks := make(map[string]int)
	n := 0
	for _, row := range r.Profile.DataCentric {
		if row.IsPath {
			continue
		}
		n++
		ranks[row.Name] = n
	}
	return ranks
}

// predRanks returns variable name -> predicted rank (1-based, paths
// excluded).
func predRanks(p *cost.Prediction) map[string]int {
	ranks := make(map[string]int)
	n := 0
	for _, v := range p.Vars {
		if v.IsPath {
			continue
		}
		n++
		ranks[v.Name] = n
	}
	return ranks
}

// spearman computes the Spearman rank correlation over the variables
// both rankings know (re-ranked within the intersection). Returns
// (rho, shared count); rho is NaN when fewer than 3 variables are
// shared.
func spearman(a, b map[string]int) (float64, int) {
	var shared []string
	for name := range a {
		if _, ok := b[name]; ok {
			shared = append(shared, name)
		}
	}
	if len(shared) < 3 {
		return math.NaN(), len(shared)
	}
	rerank := func(m map[string]int) map[string]int {
		sort.Slice(shared, func(i, j int) bool {
			if m[shared[i]] != m[shared[j]] {
				return m[shared[i]] < m[shared[j]]
			}
			return shared[i] < shared[j]
		})
		out := make(map[string]int, len(shared))
		for i, name := range shared {
			out[name] = i + 1
		}
		return out
	}
	ra, rb := rerank(a), rerank(b)
	n := float64(len(shared))
	var d2 float64
	for _, name := range shared {
		d := float64(ra[name] - rb[name])
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1)), len(shared)
}

// StaticScore is the per-benchmark outcome of the accuracy study, shared
// by the table and the CI gate test.
type StaticScore struct {
	Name      string
	PredMsgs  int64
	MeasMsgs  int64
	MsgErr    float64 // |pred-meas|/meas; NaN when meas == 0
	PredTop   []string
	MeasTop   []string
	Top3Match bool
	Rho       float64 // Spearman over shared vars; NaN if < 3 shared
	Shared    int
	WalkOK    bool
}

// StaticScores runs the study over StaticCases.
func StaticScores() ([]StaticScore, error) {
	var out []StaticScore
	for _, c := range StaticCases() {
		r, pred, err := staticRun(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Prog.Name, err)
		}
		s := StaticScore{
			Name:     c.Prog.Name,
			PredMsgs: pred.Msgs,
			MeasMsgs: int64(r.Stats.CommMessages),
			WalkOK:   pred.WalkOK,
		}
		for _, v := range pred.Vars {
			if len(s.PredTop) == 3 {
				break
			}
			s.PredTop = append(s.PredTop, v.Name)
		}
		s.MsgErr = math.NaN()
		if s.MeasMsgs > 0 {
			s.MsgErr = math.Abs(float64(s.PredMsgs-s.MeasMsgs)) / float64(s.MeasMsgs)
		}
		top, accept := dynTop(r, 3)
		s.MeasTop = top
		s.Top3Match = len(s.PredTop) == 3
		for _, name := range s.PredTop {
			if !accept[name] {
				s.Top3Match = false
			}
		}
		s.Rho, s.Shared = spearman(predRanks(pred), dynRanks(r))
		out = append(out, s)
	}
	return out, nil
}

// TableStaticAccuracy scores the symbolic static cost engine
// (internal/analyze/cost) against the dynamic profiles: predicted
// comm-message counts vs comm.Stats on the affine benchmarks, and the
// predicted top-3 blame ranking vs the measured one on all five. The
// acceptance gates (comm error <= 10%, top-3 match on >= 4 of 5) are
// pinned in CI by TestStaticAccuracyGates.
func TableStaticAccuracy() (*Table, error) {
	scores, err := StaticScores()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table Static",
		Title: "Static cost engine vs dynamic profiles (predicted with zero execution)",
		Header: []string{"Benchmark", "Msgs pred", "Msgs meas", "Err",
			"Top-3 predicted", "Top-3 measured", "Match", "Rank corr"},
	}
	matches, commChecked, commOK := 0, 0, 0
	for _, s := range scores {
		errCell, rhoCell := "-", "-"
		if !math.IsNaN(s.MsgErr) {
			errCell = fmt.Sprintf("%.1f%%", s.MsgErr*100)
			commChecked++
			if s.MsgErr <= 0.10 {
				commOK++
			}
		}
		if !math.IsNaN(s.Rho) {
			rhoCell = fmt.Sprintf("%.2f (n=%d)", s.Rho, s.Shared)
		}
		match := "no"
		if s.Top3Match {
			match = "yes"
			matches++
		}
		t.Rows = append(t.Rows, []string{
			s.Name, fmt.Sprint(s.PredMsgs), fmt.Sprint(s.MeasMsgs), errCell,
			strings.Join(s.PredTop, ", "), strings.Join(s.MeasTop, ", "),
			match, rhoCell,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("comm-count gate: %d/%d affine benchmarks within 10%% (gate requires all)", commOK, commChecked),
		fmt.Sprintf("top-3 gate: %d/%d benchmarks match with ties within %.1f points of rank 3 (gate requires >= 4)", matches, len(scores), blameTieEps*100),
		"predictions execute nothing: trip counts and comm volume come from abstract interpretation (internal/absint) and the symbolic chunk walker; idle spin is not modeled (see DESIGN.md)",
	)
	return t, nil
}
