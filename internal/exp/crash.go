package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/gobert"
	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/gobe"
	"repro/internal/serve"
	"repro/internal/super"
)

// This file is the crash-chaos harness behind `paperbench -crashtest`:
// the process-level companion to the comm-fault chaos study. Four
// phases, each pinning one leg of the resilience design (DESIGN §11):
//
//	A  runner chaos      — seeded SIGKILLs at randomized quanta; the
//	                       supervisor restarts and every reply stays
//	                       byte-identical to the interpreter
//	B  breaker fallback  — a runner that always dies trips the circuit
//	                       breaker; served bytes never change
//	C  kill + warm boot  — a blamed server is abandoned without any
//	                       graceful flush; a restart on the same journal
//	                       restores the outcome cache (≥90% hit rate,
//	                       identical bytes)
//	D  graceful drain    — shutdown under live load sheds new submits
//	                       with 503s and loses zero accepted sessions
//
// Every gate failure lands in CrashResult.Failures; paperbench exits
// nonzero if any phase failed.

// CrashTestOptions shapes one crash-chaos run.
type CrashTestOptions struct {
	// Seed drives every PRNG in the harness (kill decisions, delays).
	Seed uint64
	// ChaosRuns is the phase-A supervised execution count (0 = 6).
	ChaosRuns int
	// Dir is the scratch directory for phase C's journal (empty = a
	// fresh temp dir).
	Dir string
}

// CrashPhase is one phase's observable outcome.
type CrashPhase struct {
	Name      string `json:"name"`
	Runs      int    `json:"runs"`
	Kills     uint64 `json:"kills"`
	Restarts  uint64 `json:"restarts"`
	Fallbacks uint64 `json:"fallbacks"`
	Diffs     int    `json:"diffs"`
	Skipped   bool   `json:"skipped,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// CrashResult is what one crash-chaos run measured.
type CrashResult struct {
	Seed     uint64       `json:"seed"`
	Phases   []CrashPhase `json:"phases"`
	Failures []string     `json:"failures,omitempty"`
	// ToolchainSkipped is set when phases A/B could not run because the
	// Go toolchain is unavailable (phases C/D still gate).
	ToolchainSkipped bool `json:"toolchain_skipped,omitempty"`
}

// Text renders the result for paperbench's report.
func (r *CrashResult) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crash chaos (seed %d)\n", r.Seed)
	for _, p := range r.Phases {
		if p.Skipped {
			fmt.Fprintf(&b, "  %-18s SKIPPED — %s\n", p.Name, p.Detail)
			continue
		}
		fmt.Fprintf(&b, "  %-18s runs %-3d kills %-3d restarts %-3d fallbacks %-3d diffs %d   %s\n",
			p.Name, p.Runs, p.Kills, p.Restarts, p.Fallbacks, p.Diffs, p.Detail)
	}
	if len(r.Failures) == 0 {
		b.WriteString("  all gates passed\n")
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL: %s\n", f)
	}
	return b.String()
}

func (r *CrashResult) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// crashWorkload is the small program both supervised phases execute:
// cheap enough that a phase is fast, real enough that the runner spends
// measurable wall time in compile+run (so armed kills actually land).
func crashWorkload() (benchprog.Program, *gobert.RunSpec) {
	prog := benchprog.Halo()
	cfgs := benchprog.HaloConfig{N: 128, Reps: 2}.Configs()
	spec := &gobert.RunSpec{
		Mode: "run", Cores: 4, Locales: 2, Configs: cfgs,
		MaxCycles: 20_000_000_000,
	}
	return prog, spec
}

// CrashTest runs the four-phase crash-chaos harness.
func CrashTest(opts CrashTestOptions) (*CrashResult, error) {
	if opts.ChaosRuns <= 0 {
		opts.ChaosRuns = 6
	}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "crashtest")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
	}
	res := &CrashResult{Seed: opts.Seed}

	prog, spec := crashWorkload()
	r, err := gobe.Build(prog.Name+".mchpl", prog.Source, compile.Options{})
	switch {
	case errors.Is(err, gobe.ErrNoGoToolchain):
		res.ToolchainSkipped = true
		res.Phases = append(res.Phases,
			CrashPhase{Name: "A runner-chaos", Skipped: true, Detail: "no Go toolchain"},
			CrashPhase{Name: "B breaker", Skipped: true, Detail: "no Go toolchain"})
	case err != nil:
		return nil, err
	default:
		interp, err := gobe.InterpReply(r.Name, r.Source, r.Opts, spec)
		if err != nil {
			return nil, err
		}
		res.Phases = append(res.Phases, crashPhaseA(res, opts, r, spec, interp))
		res.Phases = append(res.Phases, crashPhaseB(res, opts, r, spec, interp))
	}

	pc, err := crashPhaseC(res, opts)
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, pc)

	pd, err := crashPhaseD(res)
	if err != nil {
		return nil, err
	}
	res.Phases = append(res.Phases, pd)
	return res, nil
}

// crashPhaseA: every run is interrupted and must still converge on the
// COMPILED path with a reply byte-identical to the interpreter. Two
// legs per supervisor seed: a deterministic one (two guaranteed-lethal
// 0µs kills, so every run restarts exactly twice before succeeding)
// and a randomized one (seeded kill timers at 0–1.2ms quanta, landing
// during startup, compile, or mid-run — or missing entirely, which is
// also a legal interleaving). MaxKills 2 stays inside the default
// retry budget, so the fallback must never engage.
func crashPhaseA(res *CrashResult, opts CrashTestOptions, r *gobe.Runner, spec *gobert.RunSpec, interp *gobert.Reply) CrashPhase {
	deterministic := super.New(super.Options{
		BackoffUnit: time.Millisecond,
		Chaos: &super.Chaos{
			Seed: opts.Seed, KillProb: 1,
			MinDelayUS: 0, MaxDelayUS: 0, MaxKills: 2,
		},
	})
	randomized := super.New(super.Options{
		BackoffUnit: time.Millisecond,
		Chaos: &super.Chaos{
			Seed: opts.Seed, KillProb: 0.7,
			MinDelayUS: 0, MaxDelayUS: 1200, MaxKills: 2,
		},
	})
	p := CrashPhase{Name: "A runner-chaos", Runs: 2 * opts.ChaosRuns}
	run := func(sup *super.Supervisor, leg string, i int) {
		reply, err := sup.Exec(super.ForRunner(r), spec)
		if err != nil {
			res.fail("phase A %s run %d: %v", leg, i, err)
			return
		}
		if diffs := gobe.Diff(interp, reply); len(diffs) > 0 {
			p.Diffs += len(diffs)
			res.fail("phase A %s run %d diverged after restarts:\n%s", leg, i, diffs[0])
		}
	}
	for i := 0; i < opts.ChaosRuns; i++ {
		run(deterministic, "deterministic", i)
		run(randomized, "randomized", i)
	}
	det, rnd := deterministic.Stats(), randomized.Stats()
	p.Kills = det.ChaosKillsArmed + rnd.ChaosKillsArmed
	p.Restarts = det.Restarts + rnd.Restarts
	p.Fallbacks = det.Fallbacks + rnd.Fallbacks
	if want := uint64(2 * opts.ChaosRuns); det.Restarts != want {
		res.fail("phase A deterministic leg restarted %d times, want %d (every run killed twice)", det.Restarts, want)
	}
	if det.SigKills != det.ChaosKillsArmed {
		res.fail("phase A deterministic leg: %d kills armed but only %d SIGKILLs detected", det.ChaosKillsArmed, det.SigKills)
	}
	if p.Fallbacks != 0 {
		res.fail("phase A fell back %d times; MaxKills < retry budget must converge on the compiled path", p.Fallbacks)
	}
	p.Detail = fmt.Sprintf("sigkills %d, byte-identical after every restart", det.SigKills+rnd.SigKills)
	return p
}

// crashPhaseB: a runner that dies on every launch (kill at t=0, no kill
// bound). Retries exhaust, the breaker trips, and every subsequent
// execution short-circuits to the interpreter fallback — whose bytes
// are the same bytes by the PR 8 differential guarantee.
func crashPhaseB(res *CrashResult, opts CrashTestOptions, r *gobe.Runner, spec *gobert.RunSpec, interp *gobert.Reply) CrashPhase {
	sup := super.New(super.Options{
		Retry:            fault.RetryPolicy{MaxRetries: 1, BackoffBase: 1, BackoffCap: 1, TimeoutUnits: 1},
		BackoffUnit:      time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // no half-open probe during the phase
		Chaos: &super.Chaos{
			Seed: opts.Seed + 1, KillProb: 1, MinDelayUS: 0, MaxDelayUS: 0,
		},
	})
	const runs = 3
	p := CrashPhase{Name: "B breaker", Runs: runs}
	for i := 0; i < runs; i++ {
		reply, err := sup.Exec(super.ForRunner(r), spec)
		if err != nil {
			res.fail("phase B run %d: %v", i, err)
			continue
		}
		if diffs := gobe.Diff(interp, reply); len(diffs) > 0 {
			p.Diffs += len(diffs)
			res.fail("phase B run %d: fallback bytes diverged:\n%s", i, diffs[0])
		}
	}
	st := sup.Stats()
	p.Kills, p.Restarts, p.Fallbacks = st.ChaosKillsArmed, st.Restarts, st.Fallbacks
	if st.BreakerTrips == 0 {
		res.fail("phase B never tripped the breaker (trips=0, fallbacks=%d)", st.Fallbacks)
	}
	if st.BreakerShortCircuits == 0 {
		res.fail("phase B breaker never short-circuited")
	}
	if st.Fallbacks != runs {
		res.fail("phase B fallbacks = %d, want %d (every run served by the interpreter)", st.Fallbacks, runs)
	}
	p.Detail = fmt.Sprintf("trips %d, short-circuits %d, fallback byte-identical", st.BreakerTrips, st.BreakerShortCircuits)
	return p
}

// bootServe starts an in-process blamed server on a loopback port.
func bootServe(opts serve.Options) (*serve.Server, *http.Server, string, error) {
	srv := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return srv, hs, "http://" + ln.Addr().String(), nil
}

// crashSubmit posts one request with ?wait=1 and returns (status, body).
func crashSubmit(base string, req *serve.Request) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(base+"/v1/submit?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), err
}

type crashWaitReply struct {
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Text   string `json:"text"`
	Error  string `json:"error"`
}

// crashPhaseC: run the load mix against a journaled server, then
// abandon the server with NO graceful flush — the moral equivalent of
// kill -9, legitimate because journal appends are single unbuffered
// writes (the real-SIGKILL variant runs in CI against the actual
// daemon). A second server booted on the same journal must serve the
// same requests from cache: ≥90% hit rate, byte-identical text.
func crashPhaseC(res *CrashResult, opts CrashTestOptions) (CrashPhase, error) {
	journal := filepath.Join(opts.Dir, "outcomes.jnl")
	mix := loadMix()
	p := CrashPhase{Name: "C journal-reboot", Runs: len(mix) * 2}

	// Reference bytes through the in-process pipeline.
	expected := make([]string, len(mix))
	for i, m := range mix {
		req := *m
		if err := req.Normalize(); err != nil {
			return p, err
		}
		out, err := serve.Execute(&req, nil)
		if err != nil {
			return p, err
		}
		expected[i] = out.Text
	}

	srv1, hs1, base1, err := bootServe(serve.Options{Workers: 4, Journal: journal})
	if err != nil {
		return p, err
	}
	for i, m := range mix {
		code, body, err := crashSubmit(base1, m)
		if err != nil {
			return p, err
		}
		var rep crashWaitReply
		if err := json.Unmarshal(body, &rep); err != nil || code != http.StatusOK || rep.State != "done" {
			res.fail("phase C pre-kill submit %d: HTTP %d %s", i, code, body)
			continue
		}
		if rep.Text != expected[i] {
			res.fail("phase C pre-kill submit %d: bytes differ from the CLI path", i)
		}
	}
	// "kill -9": stop the listener and walk away. srv1 is never Closed,
	// so the journal gets no flush, no sync, no goodbye.
	hs1.Close()
	_ = srv1

	srv2, hs2, base2, err := bootServe(serve.Options{Workers: 4, Journal: journal})
	if err != nil {
		return p, err
	}
	defer func() { hs2.Close(); srv2.Close() }()
	hits := 0
	for i, m := range mix {
		code, body, err := crashSubmit(base2, m)
		if err != nil {
			return p, err
		}
		var rep crashWaitReply
		if err := json.Unmarshal(body, &rep); err != nil || code != http.StatusOK || rep.State != "done" {
			res.fail("phase C post-reboot submit %d: HTTP %d %s", i, code, body)
			continue
		}
		if rep.Cached {
			hits++
		}
		if rep.Text != expected[i] {
			res.fail("phase C post-reboot submit %d: replayed bytes differ", i)
		}
	}
	rate := float64(hits) / float64(len(mix))
	if rate < 0.9 {
		res.fail("phase C replay hit rate %.0f%% below the 90%% floor (%d/%d)", rate*100, hits, len(mix))
	}
	p.Detail = fmt.Sprintf("replay hit rate %d/%d after unflushed kill", hits, len(mix))
	return p, nil
}

// crashPhaseD: graceful drain under live load. Clients hammer a small
// server; mid-storm the server drains and shuts down. Every submission
// either completes with the exact expected bytes (200) or is cleanly
// refused (503 with a Retry-After, or a connection error once the
// listener is gone). Anything else is a lost session.
func crashPhaseD(res *CrashResult) (CrashPhase, error) {
	p := CrashPhase{Name: "D drain"}
	srv, hs, base, err := bootServe(serve.Options{Workers: 2})
	if err != nil {
		return p, err
	}

	// Distinct cheap requests so the 2 workers stay saturated.
	var reqs []*serve.Request
	for n := 96; n <= 160; n += 16 {
		for reps := 1; reps <= 2; reps++ {
			reqs = append(reqs, &serve.Request{
				Bench: "halo", Locales: 2, View: "data",
				Configs: map[string]string{"n": fmt.Sprint(n), "reps": fmt.Sprint(reps)},
			})
		}
	}

	var (
		mu        sync.Mutex
		expected  = map[int]string{} // lazily computed reference bytes
		completed int
		shed      int
		refused   int
		lost      int
	)
	expect := func(i int) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		if s, ok := expected[i]; ok {
			return s, nil
		}
		req := *reqs[i]
		if err := req.Normalize(); err != nil {
			return "", err
		}
		out, err := serve.Execute(&req, nil)
		if err != nil {
			return "", err
		}
		expected[i] = out.Text
		return out.Text, nil
	}

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(reqs); i += 6 {
				code, body, err := crashSubmit(base, reqs[i])
				if err != nil {
					// Listener already gone: the submit was never accepted.
					mu.Lock()
					refused++
					mu.Unlock()
					return
				}
				switch code {
				case http.StatusOK:
					var rep crashWaitReply
					want, werr := expect(i)
					mu.Lock()
					if werr != nil || json.Unmarshal(body, &rep) != nil ||
						rep.State != "done" || rep.Text != want {
						lost++
						res.fail("phase D: accepted session %d did not complete byte-identical: %s", i, body)
					} else {
						completed++
					}
					mu.Unlock()
				case http.StatusServiceUnavailable:
					mu.Lock()
					shed++
					mu.Unlock()
					return // draining: this client gives up, as a real one would
				default:
					mu.Lock()
					lost++
					res.fail("phase D: submission %d got HTTP %d: %s", i, code, body)
					mu.Unlock()
				}
			}
		}(c)
	}

	// Let the storm build, then drain: refuse-new first (clean 503s
	// while the listener is up), then stop the listener and wait for
	// in-flight wait=1 responses, then stop the scheduler.
	time.Sleep(30 * time.Millisecond)
	srv.BeginDrain()
	time.Sleep(20 * time.Millisecond)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelCtx()
	if err := hs.Shutdown(ctx); err != nil {
		res.fail("phase D: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		res.fail("phase D: server drain: %v", err)
	}
	wg.Wait()

	p.Runs = completed + shed + refused + lost
	p.Fallbacks = uint64(shed)
	if lost != 0 {
		res.fail("phase D lost %d accepted sessions", lost)
	}
	if completed == 0 {
		res.fail("phase D completed no sessions before the drain — storm never started")
	}
	p.Detail = fmt.Sprintf("completed %d, shed %d, refused %d, lost %d", completed, shed, refused, lost)
	return p, nil
}

// TableCrash renders the crash-chaos harness as an experiment table.
// It is NOT part of the default suite (its counters are timing-
// dependent, and the suite's serial/parallel byte-identity test demands
// determinism); run it via `paperbench -crashtest`.
func TableCrash() (*Table, error) {
	res, err := CrashTest(CrashTestOptions{Seed: 1})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "crash",
		Title:  "Table Crash — process-level resilience (kills, restarts, byte-identity)",
		Header: []string{"phase", "runs", "kills", "restarts", "fallbacks", "diffs", "detail"},
	}
	for _, p := range res.Phases {
		detail := p.Detail
		if p.Skipped {
			detail = "SKIPPED — " + p.Detail
		}
		t.Rows = append(t.Rows, []string{
			p.Name, fmt.Sprint(p.Runs), fmt.Sprint(p.Kills),
			fmt.Sprint(p.Restarts), fmt.Sprint(p.Fallbacks),
			fmt.Sprint(p.Diffs), detail,
		})
	}
	t.Notes = append(t.Notes,
		"diffs compares supervised replies byte-for-byte against the in-process interpreter",
		"phase C reboots a journaled server with no graceful flush and replays the outcome cache",
	)
	if len(res.Failures) > 0 {
		return t, fmt.Errorf("crash gates failed:\n  %s", strings.Join(res.Failures, "\n  "))
	}
	return t, nil
}
