package exp

import (
	"fmt"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/blame"
	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/vm"
)

// chaosSeed fixes the fault schedule: the injector is deterministic, so
// the table is identical on every run.
const chaosSeed = 42

// TableChaos is the robustness study: the halo-exchange stencil at 4
// locales under the modeled aggregation runtime, re-run under a set of
// deterministic fault specs. Output must stay bit-identical to the
// fault-free run for every spec (the comm model retransmits lost
// messages and falls back when a locale fails); what moves is the fault
// counters and the modeled wall time.
func TableChaos() (*Table, error) {
	prog := benchprog.Halo()
	cfgs := benchprog.HaloConfig{N: 512, Reps: 6}.Configs()
	res, err := prog.Compile(compile.Options{})
	if err != nil {
		return nil, err
	}

	run := func(spec string) (vm.Stats, string, error) {
		var out strings.Builder
		var inj *fault.Injector
		if spec != "" {
			s, err := fault.ParseSpec(spec)
			if err != nil {
				return vm.Stats{}, "", err
			}
			inj = fault.NewInjector(s, chaosSeed)
		}
		cfg := runConfig(cfgs)
		cfg.NumLocales = 4
		cfg.Stdout = &out
		cfg.CommAggregate = true
		cfg.Fault = inj
		stats, err := blame.Run(res.Prog, cfg)
		if err != nil {
			return vm.Stats{}, "", err
		}
		return stats, out.String(), nil
	}

	base, baseOut, err := run("")
	if err != nil {
		return nil, err
	}

	specs := []string{
		"loss=0.05",
		"loss=0.02,dup=0.02,delay=0.2:3xCommLatency",
		"locale-slow=2:4x",
		"locale-fail=3@tick50",
	}
	t := &Table{
		ID:     "Table Chaos",
		Title:  fmt.Sprintf("Halo under injected faults (4 locales, seed %d)", chaosSeed),
		Header: []string{"Fault spec", "Msgs", "Retries", "Timeouts", "Fallbacks", "Slowdown", "Output identical"},
	}
	t.Rows = append(t.Rows, []string{
		"(none)", fmt.Sprint(base.CommMessages), "0", "0", "0", "1.00", "true",
	})
	for _, spec := range specs {
		stats, out, err := run(spec)
		if err != nil {
			return nil, err
		}
		f := stats.Fault
		if f == nil {
			return nil, fmt.Errorf("chaos: no fault stats for spec %q", spec)
		}
		slow := "-"
		if base.WallCycles > 0 {
			slow = fmt.Sprintf("%.2f", float64(stats.WallCycles)/float64(base.WallCycles))
		}
		t.Rows = append(t.Rows, []string{
			spec, fmt.Sprint(stats.CommMessages),
			fmt.Sprint(f.Retries), fmt.Sprint(f.Timeouts), fmt.Sprint(f.FailedLocaleFallbacks),
			slow, fmt.Sprint(out == baseOut),
		})
	}
	t.Notes = append(t.Notes,
		"every spec must print bit-identical program output: faults change only cycles and counters",
		"loss is retransmitted with bounded exponential backoff; a failed locale degrades to spawn-locale execution",
	)
	return t, nil
}
