// Package exp is the evaluation harness: one function per table/figure of
// the paper's §V, each regenerating the same rows/series from the
// MiniChapel ports running on the simulated substrate. Absolute numbers
// differ from the paper's Xeon testbed by design; the harness reports the
// paper's values side by side so the shape (rankings, winners, crossover
// points) can be compared directly. EXPERIMENTS.md records the outcomes.
package exp

import (
	"fmt"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/blame"
	"repro/internal/compile"
	"repro/internal/fault"
	"repro/internal/postmortem"
	"repro/internal/vm"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Cell looks up a row by its first column and returns column col.
func (t *Table) Cell(rowKey string, col int) (string, bool) {
	for _, r := range t.Rows {
		if len(r) > col && r[0] == rowKey {
			return r[col], true
		}
	}
	return "", false
}

// runConfig builds the default experiment VM config (12 cores, 1 locale,
// 2.53 GHz — the paper's testbed).
func runConfig(cfgs map[string]string) vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Configs = cfgs
	cfg.MaxCycles = 5_000_000_000
	return cfg
}

// timeRun executes a compiled program and returns simulated seconds.
func timeRun(res *compile.Result, cfgs map[string]string) (float64, error) {
	cfg := runConfig(cfgs)
	stats, err := vm.New(res.Prog, cfg).Run()
	if err != nil {
		return 0, err
	}
	return stats.Seconds(cfg.ClockHz), nil
}

// timeProgram compiles and times one benchmark program. Results are
// memoized (timedSeconds): the VM is deterministic, so one run per
// (program, fast, configs) serves every table that needs it.
func timeProgram(p benchprog.Program, fast bool, cfgs map[string]string) (float64, error) {
	return timedSeconds(p, fast, cfgs)
}

// profileProgram runs the full blame pipeline on a benchmark with an
// auto-scaled sampling threshold (the paper's fixed large prime assumes
// multi-second runs; we target a few thousand samples). Results are
// memoized (profiled): the LULESH profile backs five tables but runs
// once.
func profileProgram(p benchprog.Program, cfgs map[string]string) (*blame.Result, error) {
	return profiled(p, cfgs)
}

// profileUncached is the memoized body of profileProgram.
func profileUncached(p benchprog.Program, cfgs map[string]string, shape runShape) (*blame.Result, error) {
	res, err := p.Compile(compile.Options{})
	if err != nil {
		return nil, err
	}
	shapeConfig := func() vm.Config {
		cfg := runConfig(cfgs)
		if shape.locales > 1 {
			cfg.NumLocales = shape.locales
		}
		if shape.commAgg {
			cfg.CommAggregate = true
			cfg.CommCacheCap = shape.commCache
		}
		cfg.CommInspector = shape.commInsp
		cfg.NoOwnerComputes = shape.noOwner
		if shape.locales > 1 || shape.commAgg {
			cfg.CommPlan = commPlanFor(res.Prog)
		}
		return cfg
	}
	// Calibration run for the threshold.
	stats, err := vm.New(res.Prog, shapeConfig()).Run()
	if err != nil {
		return nil, err
	}
	threshold := stats.TotalCycles / 4001
	if threshold < 101 {
		threshold = 101
	}
	threshold |= 1 // keep it odd, in the spirit of the paper's prime

	bc := blame.DefaultConfig()
	bc.VM = shapeConfig()
	bc.Threshold = threshold
	// The injector attaches after calibration so the fault schedule does
	// not depend on the calibration run's PRNG draws.
	if shape.faultSpec != "" {
		spec, err := fault.ParseSpec(shape.faultSpec)
		if err != nil {
			return nil, err
		}
		bc.VM.Fault = fault.NewInjector(spec, shape.faultSeed)
	}
	return blame.Profile(res.Prog, bc)
}

// blameRow formats a data-centric profile row for a table.
func blameRow(prof *postmortem.Profile, name, paperPct string) []string {
	r, ok := prof.Row(name)
	if !ok {
		return []string{name, "-", "(missing)", paperPct, "-"}
	}
	return []string{name, r.Type, fmt.Sprintf("%.1f%%", r.Blame*100), paperPct, r.Context}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

func secs(x float64) string { return fmt.Sprintf("%.4f", x) }

func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a/b)
}
