package exp

import (
	"fmt"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/vm"
)

// TableSparse regenerates the inspector–executor study: the two
// irregular-access workloads (A[B[i]] gather/scatter and CSR SpMV) at 4
// locales, measured once under the aggregation runtime alone and once
// with the inspector–executor path on top (-comm-inspector). Output
// must be bit-identical — the inspector is cost-model-only — and the
// message reduction on these sparse workloads is the headline number
// (the smoke test pins >= 5x; EXPERIMENTS.md quotes this table).
func TableSparse() (*Table, error) {
	cases := []struct {
		prog benchprog.Program
		cfgs map[string]string
	}{
		{benchprog.Gather(), benchprog.DefaultGather.Configs()},
		{benchprog.SpMV(), benchprog.DefaultSpMV.Configs()},
	}

	t := &Table{
		ID:    "Table Sparse",
		Title: "Irregular workloads w/ and w/o the inspector-executor (4 locales)",
		Header: []string{"Benchmark", "Msgs (aggregated)", "Msgs (inspector)", "Reduction",
			"Builds", "Hits", "Replicated", "Identical"},
	}

	for _, c := range cases {
		res, err := c.prog.Compile(compile.Options{})
		if err != nil {
			return nil, err
		}
		plan := commPlanFor(res.Prog)

		run := func(inspector bool) (vm.Stats, string, error) {
			var out strings.Builder
			cfg := runConfig(c.cfgs)
			cfg.Stdout = &out
			cfg.NumLocales = 4
			cfg.CommAggregate = true
			cfg.CommInspector = inspector
			cfg.CommPlan = plan
			stats, err := vm.New(res.Prog, cfg).Run()
			return stats, out.String(), err
		}
		base, bout, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.prog.Name, err)
		}
		insp, iout, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.prog.Name, err)
		}

		red := "-"
		if insp.CommMessages > 0 {
			red = fmt.Sprintf("%.1fx", float64(base.CommMessages)/float64(insp.CommMessages))
		}
		builds, hits, reps := int64(0), int64(0), int64(0)
		if a := insp.Agg; a != nil {
			builds, hits, reps = a.InspectorBuilds, a.ScheduleHits, a.ReplicatedVars
		}
		t.Rows = append(t.Rows, []string{
			c.prog.Name, fmt.Sprint(base.CommMessages), fmt.Sprint(insp.CommMessages), red,
			fmt.Sprint(builds), fmt.Sprint(hits), fmt.Sprint(reps),
			fmt.Sprint(bout == iout),
		})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: bytes %d -> %d, wall %s s -> %s s (%s speedup); gathers %d (%d elems), replications %d (%d elems)",
			c.prog.Name, base.CommBytes, insp.CommBytes,
			secs(base.Seconds(bcClockHz)), secs(insp.Seconds(bcClockHz)),
			ratio(base.Seconds(bcClockHz), insp.Seconds(bcClockHz)),
			insp.Agg.Gathers, insp.Agg.GatheredElems,
			insp.Agg.Replications, insp.Agg.ReplicatedElems))
	}
	t.Notes = append(t.Notes,
		"both runs use the aggregation runtime; the inspector adds inspect/schedule/replicate on the sites the analyzer classifies irregular (see DESIGN.md)",
		"the static cost engine models the same protocol: Table Static carries the sparse rows' predicted message counts",
	)
	return t, nil
}
