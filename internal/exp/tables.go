package exp

import (
	"fmt"
	"strings"

	"repro/internal/benchprog"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/hpctk"
	"repro/internal/ir"
	"repro/internal/views"
)

// Table1 regenerates the paper's Table I: the variable→blame-lines map of
// the Fig. 1 example, computed by static analysis alone.
func Table1() (*Table, error) {
	res, err := compile.SourceCached("fig1.mchpl", benchprog.Fig1Example, compile.Options{})
	if err != nil {
		return nil, err
	}
	an := core.AnalyzeCached(res.Prog, core.DefaultOptions())
	main := res.Prog.FuncByName("main")
	find := func(name string) *ir.Var {
		for _, v := range main.AllVars() {
			if v.Name == name && !v.IsTemp {
				return v
			}
		}
		return nil
	}
	t := &Table{
		ID:     "Table I",
		Title:  "Variable-lines map for the Fig. 1 example",
		Header: []string{"Variable", "Blame Lines (measured)", "Blame Lines (paper)"},
		Notes: []string{
			"paper lines 16-20 correspond 1:1 to source lines 16-20 of the embedded example",
			"the published formula includes line 17 in a's set (backward slice of a=b+1 through b); the paper's table omits it — see EXPERIMENTS.md",
		},
	}
	paper := map[string]string{"a": "16,18,19", "b": "17", "c": "16,17,18,19,20"}
	for _, name := range []string{"a", "b", "c"} {
		v := find(name)
		lines := an.BlameSetLines(main, v)
		var hot []string
		for _, l := range lines {
			if l >= 15 && l <= 20 {
				hot = append(hot, fmt.Sprint(l))
			}
		}
		t.Rows = append(t.Rows, []string{name, strings.Join(hot, ","), paper[name]})
	}
	return t, nil
}

// Table2 regenerates the MiniMD blame table (paper Table II).
func Table2() (*Table, error) {
	r, err := profileProgram(benchprog.MiniMD(false), benchprog.DefaultMiniMD.Configs())
	if err != nil {
		return nil, err
	}
	prof := r.Profile
	t := &Table{
		ID:     "Table II",
		Title:  "Variables and their blame for the run of MiniMD",
		Header: []string{"Name", "Type", "Blame", "Paper", "Context"},
	}
	paper := [][2]string{
		{"Pos", "96.3%"}, {"Bins", "84.2%"}, {"RealCount", "80.8%"},
		{"RealPos", "80.8%"}, {"Count", "54.9%"}, {"binSpace", "49.4%"},
	}
	for _, p := range paper {
		t.Rows = append(t.Rows, blameRow(prof, p[0], p[1]))
	}
	return t, nil
}

// Table3 regenerates the MiniMD speedup table (paper Table III).
func Table3() (*Table, error) {
	cfgs := benchprog.DefaultMiniMD.Configs()
	t := &Table{
		ID:     "Table III",
		Title:  "MiniMD results w/ or w/o --fast",
		Header: []string{"Flags", "Original(s)", "Optimized(s)", "Speedup", "Paper speedup", "Predicted by"},
	}
	// Advisor join: the findings on the original source that motivated the
	// optimized variant.
	pred := predictedBy(benchprog.MiniMD(false), "zip-overhead", "domain-remap")
	for _, fast := range []bool{false, true} {
		o, err := timeProgram(benchprog.MiniMD(false), fast, cfgs)
		if err != nil {
			return nil, err
		}
		p, err := timeProgram(benchprog.MiniMD(true), fast, cfgs)
		if err != nil {
			return nil, err
		}
		label, paper := "w/o fast", "2.26"
		if fast {
			label, paper = "w/ fast", "2.56"
		}
		t.Rows = append(t.Rows, []string{label, secs(o), secs(p), ratio(o, p), paper, pred})
	}
	return t, nil
}

// Table4 regenerates the CLOMP blame table (paper Table IV).
func Table4() (*Table, error) {
	cfg := benchprog.CLOMPConfig{NumParts: 32, ZonesPerPart: 64, FlopScale: 1, TimeScale: 2}
	r, err := profileProgram(benchprog.CLOMP(false), cfg.Configs())
	if err != nil {
		return nil, err
	}
	prof := r.Profile
	t := &Table{
		ID:     "Table IV",
		Title:  "Profiling result for the run of CLOMP",
		Header: []string{"Name", "Type", "Blame", "Paper", "Context"},
		Notes:  []string{"'->' rows are field/element access paths (sub-variable blame)"},
	}
	rows := [][2]string{
		{"partArray", "99.5%"},
		{"partArray[pi]", "99.5%"}, // paper: ->partArray[i]
		{"partArray[pi].zoneArray[z]", "99.0%"},
		{"partArray[pi].zoneArray[z].value", "99.0%"},
		{"partArray[pi].residue", "12.3%"},
		{"remaining_deposit", "11.8%"},
	}
	for _, p := range rows {
		t.Rows = append(t.Rows, blameRow(prof, p[0], p[1]))
	}
	return t, nil
}

// Table5 regenerates the CLOMP size sweep (paper Table V).
func Table5() (*Table, error) {
	t := &Table{
		ID:     "Table V",
		Title:  "CLOMP results w/ or w/o --fast across problem sizes",
		Header: []string{"Flags/Size", "Original(s)", "Optimized(s)", "Speedup", "Paper speedup", "Predicted by"},
		Notes:  []string{"sizes are the paper's four points scaled ~1/64 (parts/zones character preserved)"},
	}
	pred := predictedBy(benchprog.CLOMP(false), "nested-structure")
	paper := map[bool][]string{
		false: {"1.84", "1.09", "2.13", "1.10"},
		true:  {"2.59", "2.40", "2.65", "1.96"},
	}
	for _, fast := range []bool{false, true} {
		for i, cfg := range benchprog.CLOMPSizePoints {
			o, err := timeProgram(benchprog.CLOMP(false), fast, cfg.Configs())
			if err != nil {
				return nil, err
			}
			p, err := timeProgram(benchprog.CLOMP(true), fast, cfg.Configs())
			if err != nil {
				return nil, err
			}
			label := "w/o fast " + benchprog.CLOMPSizeLabels[i]
			if fast {
				label = "w/ fast " + benchprog.CLOMPSizeLabels[i]
			}
			t.Rows = append(t.Rows, []string{label, secs(o), secs(p), ratio(o, p), paper[fast][i], pred})
		}
	}
	return t, nil
}

// Fig4 regenerates the pprof-style code-centric profile of LULESH (paper
// Fig. 4): runtime frames dominate, user functions contribute little.
func Fig4() (string, *Table, error) {
	r, err := profileProgram(benchprog.LULESH(benchprog.LuleshOriginal), benchprog.DefaultLulesh.Configs())
	if err != nil {
		return "", nil, err
	}
	prof := r.Profile
	text := views.CodeCentric(prof, 10)
	t := &Table{
		ID:     "Fig. 4",
		Title:  "LULESH code-centric profile (pprof-style)",
		Header: []string{"Function", "Flat", "Cum"},
		Notes: []string{
			"paper: __sched_yield 79.0% flat; outlined coforall_fn_chplNN next; user functions < 1%",
		},
	}
	for i, row := range prof.CodeCentric {
		if i >= 10 {
			break
		}
		t.Rows = append(t.Rows, []string{row.Name, pct(row.FlatPct), pct(row.CumPct)})
	}
	return text, t, nil
}

// Table6 regenerates the LULESH blame table (paper Table VI).
func Table6() (*Table, error) {
	r, err := profileProgram(benchprog.LULESH(benchprog.LuleshOriginal), benchprog.DefaultLulesh.Configs())
	if err != nil {
		return nil, err
	}
	prof := r.Profile
	t := &Table{
		ID:     "Table VI",
		Title:  "Variables and their blame for the run of LULESH",
		Header: []string{"Name", "Type", "Blame", "Paper", "Context"},
	}
	rows := [][2]string{
		{"hgfz", "30.8%"}, {"hgfx", "29.5%"}, {"hgfy", "29.2%"},
		{"shz", "27.9%"}, {"hz", "27.6%"}, {"shx", "26.9%"},
		{"shy", "26.6%"}, {"hx", "26.6%"}, {"hy", "26.6%"},
		{"hourgam", "25.0%"}, {"determ", "15.7%"},
		{"b_x", "9.7%"}, {"b_z", "9.7%"}, {"b_y", "8.7%"},
		{"dvdx", "8.3%"}, {"hourmodx", "5.8%"}, {"hourmody", "5.1%"}, {"hourmodz", "4.8%"},
	}
	for _, p := range rows {
		t.Rows = append(t.Rows, blameRow(prof, p[0], p[1]))
	}
	return t, nil
}

// Table7 regenerates the loop-unrolling study (paper Table VII).
func Table7() (*Table, error) {
	cfgs := benchprog.DefaultLulesh.Configs()
	variants := []struct {
		label string
		v     benchprog.LuleshVariant
		paper string
	}{
		{"Original", benchprog.LuleshOriginal, "1.00"},
		{"0 params", benchprog.LuleshVariant{}, "1.04"},
		{"P 1", benchprog.LuleshVariant{P1: true}, "1.07"},
		{"P 2", benchprog.LuleshVariant{P2: true}, "0.96"},
		{"P 3", benchprog.LuleshVariant{P3: true}, "1.06"},
		{"P1+P2", benchprog.LuleshVariant{P1: true, P2: true}, "0.99"},
		{"P1+P3", benchprog.LuleshVariant{P1: true, P3: true}, "1.05"},
		{"P2+P3", benchprog.LuleshVariant{P2: true, P3: true}, "0.99"},
		{"P1+U2", benchprog.LuleshVariant{P1: true, U2: true}, "1.03"},
		{"P1+U3", benchprog.LuleshVariant{P1: true, U3: true}, "1.01"},
		{"P1+U2+U3", benchprog.LuleshVariant{P1: true, U2: true, U3: true}, "0.98"},
	}
	var base float64
	t := &Table{
		ID:     "Table VII",
		Title:  "LULESH results for loop unrolling methods",
		Header: []string{"Unrolling tag", "Run time (s)", "Speedup", "Paper speedup"},
	}
	for i, v := range variants {
		secsV, err := timeProgram(benchprog.LULESH(v.v), false, cfgs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		if i == 0 {
			base = secsV
		}
		t.Rows = append(t.Rows, []string{v.label, secs(secsV), ratio(base, secsV), v.paper})
	}
	return t, nil
}

// Table8 regenerates the blame-shift comparison across optimizations
// (paper Table VIII): how P1, VG and CENN move blame between variables.
func Table8() (*Table, error) {
	cfgs := benchprog.DefaultLulesh.Configs()
	variants := []struct {
		label string
		v     benchprog.LuleshVariant
	}{
		{"Original", benchprog.LuleshOriginal},
		{"P1", benchprog.LuleshVariant{P1: true}},
		{"VG", benchprog.LuleshVariant{P1: true, P2: true, P3: true, VG: true}},
		{"CENN", benchprog.LuleshVariant{P1: true, P2: true, P3: true, CENN: true}},
	}
	names := []string{
		"hgfx", "hgfy", "hgfz", "shx", "shy", "shz", "hx", "hy", "hz",
		"hourgam", "hourmodx", "hourmody", "hourmodz",
		"dvdx", "determ", "b_x", "b_y", "b_z",
	}
	t := &Table{
		ID:     "Table VIII",
		Title:  "Blame comparison between optimizations (LULESH)",
		Header: []string{"Variable", "Original", "P1", "VG", "CENN"},
	}
	cols := make(map[string][]string)
	for _, n := range names {
		cols[n] = []string{n}
	}
	for _, v := range variants {
		r, err := profileProgram(benchprog.LULESH(v.v), cfgs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		for _, n := range names {
			row, ok := r.Profile.Row(n)
			cell := "-"
			if ok {
				cell = pct(row.Blame)
			}
			cols[n] = append(cols[n], cell)
		}
	}
	for _, n := range names {
		t.Rows = append(t.Rows, cols[n])
	}
	return t, nil
}

// Table9 regenerates the LULESH overall speedups (paper Table IX).
func Table9() (*Table, error) {
	cfgs := benchprog.DefaultLulesh.Configs()
	variants := []struct {
		label     string
		v         benchprog.LuleshVariant
		paperSlow string
		paperFast string
	}{
		{"Best Case", benchprog.LuleshBest, "1.38", "1.47"},
		{"VG", benchprog.LuleshVariant{P1: true, P2: true, P3: true, VG: true}, "1.25", "1.39"},
		{"P 1", benchprog.LuleshVariant{P1: true}, "1.07", "1.04"},
		{"CENN", benchprog.LuleshVariant{P1: true, P2: true, P3: true, CENN: true}, "1.08", "1.02"},
		{"Original", benchprog.LuleshOriginal, "1.00", "1.00"},
	}
	t := &Table{
		ID:     "Table IX",
		Title:  "LULESH results w/ or w/o --fast",
		Header: []string{"Variant", "w/o fast (s)", "Speedup", "Paper", "w/ fast (s)", "Speedup", "Paper", "Predicted by"},
	}
	// Advisor join, per transform: param-unroll fires on the 0-params
	// source (LuleshOriginal already carries P1-P3), var-globalization on
	// the original.
	predPU := predictedBy(benchprog.LULESH(benchprog.LuleshVariant{}), "param-unroll")
	predVG := predictedBy(benchprog.LULESH(benchprog.LuleshOriginal), "var-globalization")
	pred := map[string]string{
		"Best Case": predVG + "; " + predPU,
		"VG":        predVG,
		"P 1":       predPU,
		"CENN":      predPU,
		"Original":  "(baseline)",
	}
	baseSlow, err := timeProgram(benchprog.LULESH(benchprog.LuleshOriginal), false, cfgs)
	if err != nil {
		return nil, err
	}
	baseFast, err := timeProgram(benchprog.LULESH(benchprog.LuleshOriginal), true, cfgs)
	if err != nil {
		return nil, err
	}
	for _, v := range variants {
		slow, err := timeProgram(benchprog.LULESH(v.v), false, cfgs)
		if err != nil {
			return nil, err
		}
		fast, err := timeProgram(benchprog.LULESH(v.v), true, cfgs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.label, secs(slow), ratio(baseSlow, slow), v.paperSlow,
			secs(fast), ratio(baseFast, fast), v.paperFast, pred[v.label],
		})
	}
	return t, nil
}

// UnknownData regenerates the §II.B comparison: the HPCToolkit-like
// baseline leaves almost all samples in "unknown data" (CLOMP 96.88%,
// LULESH 95.1%) while blame attributes them to source variables.
func UnknownData() (*Table, error) {
	t := &Table{
		ID:     "Baseline",
		Title:  "HPCToolkit-like attribution vs blame (share of samples in 'unknown data')",
		Header: []string{"Benchmark", "Unknown (baseline)", "Paper", "Top blame variable", "Blame"},
	}
	cases := []struct {
		name  string
		prog  benchprog.Program
		cfgs  map[string]string
		paper string
	}{
		{"CLOMP", benchprog.CLOMP(false), benchprog.CLOMPConfig{NumParts: 32, ZonesPerPart: 64, FlopScale: 1, TimeScale: 2}.Configs(), "96.88%"},
		{"LULESH", benchprog.LULESH(benchprog.LuleshOriginal), benchprog.DefaultLulesh.Configs(), "95.1%"},
	}
	for _, c := range cases {
		r, err := profileProgram(c.prog, c.cfgs)
		if err != nil {
			return nil, err
		}
		base := hpctk.Attribute(r.Sampler.Samples, r.Sampler.Allocs)
		top := "-"
		topBlame := "-"
		for _, row := range r.Profile.DataCentric {
			if !row.IsPath {
				top = row.Name
				topBlame = pct(row.Blame)
				break
			}
		}
		t.Rows = append(t.Rows, []string{c.name, pct(base.UnknownShare), c.paper, top, topBlame})
	}
	return t, nil
}

// Overhead regenerates the §V overhead paragraph: stack-walk cost vs
// sampling interval, dataset size, and post-processing time per sample.
func Overhead() (*Table, error) {
	r, err := profileProgram(benchprog.LULESH(benchprog.LuleshOriginal), benchprog.DefaultLulesh.Configs())
	if err != nil {
		return nil, err
	}
	prof := r.Profile
	hz := 2.53e9
	wall := prof.Stats.Seconds(hz)
	interval := wall / float64(max(1, prof.TotalSamples))
	t := &Table{
		ID:     "Overhead",
		Title:  "Monitoring overhead (LULESH)",
		Header: []string{"Metric", "Measured", "Paper"},
		Notes:  []string{"paper: 0.051 ms/walk vs 241 ms interval = 0.02% overhead; datasets 6-20 MB; 16 ms/sample post-processing"},
	}
	t.Rows = append(t.Rows,
		[]string{"samples", fmt.Sprint(prof.TotalSamples), "-"},
		[]string{"sampling interval (us, simulated)", fmt.Sprintf("%.3f", interval*1e6), "241000"},
		[]string{"stack walks", fmt.Sprint(r.Sampler.StackWalks), "-"},
		[]string{"raw dataset (MB)", fmt.Sprintf("%.3f", float64(r.Sampler.DataSetBytes())/1e6), "6-20"},
		[]string{"spin share of cycles", pct(float64(prof.Stats.SpinCycles) / float64(prof.Stats.TotalCycles)), "-"},
	)
	return t, nil
}

// Fig3 renders the three GUI windows for a MiniMD run (paper Fig. 3).
func Fig3() (string, error) {
	r, err := profileProgram(benchprog.MiniMD(false), benchprog.DefaultMiniMD.Configs())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(views.DataCentric(r.Profile, 12))
	b.WriteByte('\n')
	b.WriteString(views.CodeCentric(r.Profile, 10))
	b.WriteByte('\n')
	b.WriteString(views.Hybrid(r.Profile, 8))
	return b.String(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
