package ast

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/token"
)

// Print renders a parsed program back to MiniChapel source. The output
// is normalized, not a faithful reproduction of the input bytes:
// comments are gone, nested expressions are parenthesized, and module
// declarations print before top-level statements. What Print guarantees
// is that its output reparses, and that print∘parse is idempotent —
// printing the reparse of a printed program reproduces it byte for
// byte. The frontend fuzz tests lean on both properties.
func Print(p *Program) string {
	var pr printer
	for _, d := range p.Decls {
		pr.decl(d)
	}
	for _, s := range p.TopStmts {
		pr.stmt(s)
	}
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

// ------------------------------------------------------------ declarations

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *ProcDecl:
		p.procDecl(d)
	case *RecordDecl:
		kw := "record"
		if d.IsClass {
			kw = "class"
		}
		p.line("%s %s {", kw, d.Name.Name)
		p.indent++
		for _, f := range d.Fields {
			s := "var " + f.Name.Name
			if f.Type != nil {
				s += ": " + typeStr(f.Type)
			}
			if f.Init != nil {
				s += " = " + exprStr(f.Init)
			}
			p.line("%s;", s)
		}
		for _, m := range d.Methods {
			p.procDecl(m)
		}
		p.indent--
		p.line("}")
	case *TypeAliasDecl:
		p.line("type %s = %s;", d.Name.Name, typeStr(d.Target))
	case *GlobalVarDecl:
		p.varDecl(d.V)
	}
}

func (p *printer) procDecl(d *ProcDecl) {
	kw := "proc"
	if d.IsIter {
		kw = "iter"
	}
	params := make([]string, len(d.Params))
	for i, q := range d.Params {
		s := q.Name.Name
		if in := q.Intent.String(); in != "" {
			s = in + " " + s
		}
		if q.Type != nil {
			s += ": " + typeStr(q.Type)
		}
		params[i] = s
	}
	head := fmt.Sprintf("%s %s(%s)", kw, d.Name.Name, strings.Join(params, ", "))
	if d.RetType != nil {
		head += ": " + typeStr(d.RetType)
	}
	p.line("%s {", head)
	p.body(d.Body)
	p.line("}")
}

func (p *printer) varDecl(d *VarDecl) {
	var s string
	if d.IsRef {
		s = "ref"
	} else {
		s = d.Kind.String()
	}
	names := make([]string, len(d.Names))
	for i, n := range d.Names {
		names[i] = n.Name
	}
	s += " " + strings.Join(names, ", ")
	if d.Type != nil {
		s += ": " + typeStr(d.Type)
	}
	if d.Init != nil {
		s += " = " + exprStr(d.Init)
	}
	p.line("%s;", s)
}

// -------------------------------------------------------------- statements

// body prints a block's statements at one deeper indent (the braces are
// the caller's).
func (p *printer) body(b *BlockStmt) {
	p.indent++
	if b != nil {
		for _, s := range b.Stmts {
			p.stmt(s)
		}
	}
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarDecl:
		p.varDecl(s)
	case *AssignStmt:
		p.line("%s %s %s;", exprStr(s.Lhs), s.Op.String(), exprStr(s.Rhs))
	case *ExprStmt:
		p.line("%s;", exprStr(s.X))
	case *BlockStmt:
		p.line("{")
		p.body(s)
		p.line("}")
	case *IfStmt:
		p.ifStmt(s)
	case *WhileStmt:
		p.line("while %s {", exprStr(s.Cond))
		p.body(s.Body)
		p.line("}")
	case *DoWhileStmt:
		p.line("do {")
		p.body(s.Body)
		p.line("} while %s;", exprStr(s.Cond))
	case *ForStmt:
		idx := make([]string, len(s.Idx))
		for i, n := range s.Idx {
			idx[i] = n.Name
		}
		ix := idx[0]
		if len(idx) > 1 {
			ix = "(" + strings.Join(idx, ", ") + ")"
		}
		p.line("%s %s in %s {", s.Kind.String(), ix, iterStr(s.Iter))
		p.body(s.Body)
		p.line("}")
	case *SelectStmt:
		p.line("select %s {", exprStr(s.Subject))
		p.indent++
		for _, w := range s.Whens {
			vals := make([]string, len(w.Values))
			for i, v := range w.Values {
				vals[i] = exprStr(v)
			}
			p.line("when %s {", strings.Join(vals, ", "))
			p.body(w.Body)
			p.line("}")
		}
		if s.Otherwise != nil {
			p.line("otherwise {")
			p.body(s.Otherwise)
			p.line("}")
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if s.X != nil {
			p.line("return %s;", exprStr(s.X))
		} else {
			p.line("return;")
		}
	case *YieldStmt:
		p.line("yield %s;", exprStr(s.X))
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *OnStmt:
		p.line("on %s {", exprStr(s.Target))
		p.body(s.Body)
		p.line("}")
	case *BeginStmt:
		p.line("begin {")
		p.body(s.Body)
		p.line("}")
	case *CobeginStmt:
		p.line("cobegin {")
		p.body(s.Body)
		p.line("}")
	case *SyncStmt:
		p.line("sync {")
		p.body(s.Body)
		p.line("}")
	case *DeclStmt:
		p.decl(s.D)
	}
}

func (p *printer) ifStmt(s *IfStmt) {
	p.line("if %s {", exprStr(s.Cond))
	p.body(s.Then)
	switch e := s.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		// `} else if ... {`: reprint the chained if on the closing line.
		p.b.WriteString(strings.Repeat("  ", p.indent))
		p.b.WriteString("} else ")
		// Splice: emit the nested if without its leading indent.
		var q printer
		q.indent = p.indent
		q.ifStmt(e)
		nested := q.b.String()
		p.b.WriteString(strings.TrimPrefix(nested, strings.Repeat("  ", p.indent)))
	case *BlockStmt:
		p.line("} else {")
		p.body(e)
		p.line("}")
	default:
		p.line("} else {")
		p.indent++
		p.stmt(e)
		p.indent--
		p.line("}")
	}
}

// ------------------------------------------------------------ expressions

// exprStr renders an expression for any p.expr() context: atoms print
// bare, everything else is wrapped in parentheses so the reparse cannot
// re-associate it.
func exprStr(e Expr) string {
	if s, atom := exprAtom(e); atom {
		return s
	} else {
		return "(" + s + ")"
	}
}

// iterStr renders a loop iterand: like exprStr, but a range prints bare
// (`for i in 0..n by 2`), matching the grammar's expectation.
func iterStr(e Expr) string {
	if r, ok := e.(*RangeExpr); ok {
		s, _ := exprAtom(r)
		return s
	}
	return exprStr(e)
}

// exprAtom renders e and reports whether the rendering is self-delimiting
// (safe to embed in any operand position without parentheses).
func exprAtom(e Expr) (string, bool) {
	switch e := e.(type) {
	case *Ident:
		return e.Name, true
	case *IntLit:
		if e.Value < 0 {
			return fmt.Sprint(e.Value), false
		}
		return fmt.Sprint(e.Value), true
	case *RealLit:
		return realStr(e.Value), true
	case *BoolLit:
		return fmt.Sprint(e.Value), true
	case *StringLit:
		return quoteString(e.Value), true
	case *BinaryExpr:
		return exprStr(e.X) + " " + e.Op.String() + " " + exprStr(e.Y), false
	case *UnaryExpr:
		return e.Op.String() + exprStr(e.X), false
	case *CallExpr:
		return exprStr(e.Fun) + "(" + exprList(e.Args) + ")", true
	case *IndexExpr:
		return exprStr(e.X) + "[" + exprList(e.Index) + "]", true
	case *FieldExpr:
		return exprStr(e.X) + "." + e.Name.Name, true
	case *TupleExpr:
		// A 1-element tuple cannot be spelled; it degrades to parens.
		return "(" + exprList(e.Elems) + ")", true
	case *DomainLit:
		return "{" + exprList(e.Dims) + "}", true
	case *RangeExpr:
		s := exprStr(e.Lo) + ".."
		if e.Count != nil {
			s += "#" + exprStr(e.Count)
		} else if e.Hi != nil {
			s += exprStr(e.Hi)
		}
		if e.By != nil {
			s += " by " + exprStr(e.By)
		}
		return s, false
	case *IfExpr:
		return "if " + exprStr(e.Cond) + " then " + exprStr(e.Then) + " else " + exprStr(e.Else), false
	case *NewExpr:
		s := "new " + typeStr(e.Type)
		s += "(" + exprList(e.Args) + ")"
		return s, false
	case *ReduceExpr:
		op := e.Op.String()
		switch e.Op {
		case token.GT:
			op = "max"
		case token.LT:
			op = "min"
		}
		return op + " reduce " + exprStr(e.X), false
	case *ZipExpr:
		return "zip(" + exprList(e.Args) + ")", true
	}
	return "0", true
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		if r, ok := e.(*RangeExpr); ok {
			// Ranges print bare in list positions (index/domain dims).
			parts[i], _ = exprAtom(r)
		} else {
			parts[i] = exprStr(e)
		}
	}
	return strings.Join(parts, ", ")
}

// realStr formats a float so the lexer reads it back as a REAL token
// (it must keep a '.' or an exponent).
func realStr(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// quoteString escapes the lexer's supported escapes (\n, \t, \\, \");
// other bytes pass through raw, mirroring scanString.
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// ----------------------------------------------------------------- types

func typeStr(t TypeExpr) string {
	switch t := t.(type) {
	case *NamedType:
		if t.Width > 0 {
			return fmt.Sprintf("%s(%d)", t.Name, t.Width)
		}
		return t.Name
	case *TupleType:
		cnt, _ := exprAtom(t.Count)
		return cnt + "*" + parenType(t.Elem)
	case *DomainType:
		s := "domain(" + exprStr(t.Rank) + ")"
		if t.Dist != "" {
			s += " dmapped " + t.Dist
		}
		return s
	case *ArrayType:
		return "[" + exprList(t.Dom) + "] " + typeStr(t.Elem)
	case *RangeType:
		return "range"
	case *AtomicType:
		return "atomic " + parenType(t.Elem)
	}
	return "int"
}

// parenType wraps composite element types so `3*4*real` round-trips as
// `3*(4*real)`.
func parenType(t TypeExpr) string {
	switch t.(type) {
	case *NamedType, *RangeType:
		return typeStr(t)
	}
	return "(" + typeStr(t) + ")"
}
