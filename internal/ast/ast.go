// Package ast defines the abstract syntax tree for MiniChapel.
//
// The tree deliberately mirrors the Chapel constructs the paper's case
// studies depend on: domains and arrays, array slices that alias, zippered
// iteration, forall/coforall data- and task-parallel loops, records,
// homogeneous tuples (k*T), param (compile-time) loops, select/when, and
// config consts that can be set on the command line.
package ast

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// TypeExpr is a syntactic type.
type TypeExpr interface {
	Node
	typeNode()
}

// ---------------------------------------------------------------- Program

// Program is a parsed module: an ordered list of top-level declarations.
// Top-level statements are collected into an implicit module initializer
// that runs before main, matching Chapel's module-level code.
type Program struct {
	FileName string
	Decls    []Decl
	// TopStmts are module-level statements (global initialization order).
	TopStmts []Stmt
}

// Pos returns the position of the first declaration or statement.
func (p *Program) Pos() source.Pos {
	if len(p.Decls) > 0 {
		return p.Decls[0].Pos()
	}
	if len(p.TopStmts) > 0 {
		return p.TopStmts[0].Pos()
	}
	return source.NoPos
}

// ------------------------------------------------------------ Expressions

// Ident is a name reference.
type Ident struct {
	NamePos source.Pos
	Name    string
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Value  int64
}

// RealLit is a floating-point literal.
type RealLit struct {
	LitPos source.Pos
	Value  float64
}

// BoolLit is true/false.
type BoolLit struct {
	LitPos source.Pos
	Value  bool
}

// StringLit is a string literal.
type StringLit struct {
	LitPos source.Pos
	Value  string
}

// BinaryExpr is a binary operation, including ".." range construction.
type BinaryExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X     Expr
}

// CallExpr is f(args) — also used for tuple indexing t(i), disambiguated
// during semantic analysis exactly as Chapel does.
type CallExpr struct {
	Fun    Expr
	Lparen source.Pos
	Args   []Expr
}

// IndexExpr is a[i], a[i,j], or a[dom] / a[lo..hi] (slice, which aliases).
type IndexExpr struct {
	X      Expr
	Lbrack source.Pos
	Index  []Expr
}

// FieldExpr is x.f — also domain/array/range pseudo-methods (.size, .expand
// etc. become MethodCall after resolution).
type FieldExpr struct {
	X    Expr
	Name *Ident
}

// TupleExpr is (a, b, c).
type TupleExpr struct {
	Lparen source.Pos
	Elems  []Expr
}

// DomainLit is {r1, r2, ...} — a rectangular domain literal.
type DomainLit struct {
	Lbrace source.Pos
	Dims   []Expr // each a range expression
}

// RangeExpr is lo..hi or lo..#count. (Also produced from BinaryExpr DOTDOT
// during parsing for clarity.)
type RangeExpr struct {
	Lo       Expr
	Hi       Expr // nil if counted
	Count    Expr // non-nil for lo..#count
	By       Expr // optional stride
	RangePos source.Pos
}

// IfExpr is `if c then a else b`.
type IfExpr struct {
	IfPos source.Pos
	Cond  Expr
	Then  Expr
	Else  Expr
}

// NewExpr is `new T(args)` — class allocation.
type NewExpr struct {
	NewPos source.Pos
	Type   TypeExpr
	Args   []Expr
}

// ReduceExpr is `op reduce expr`, e.g. `+ reduce A`.
type ReduceExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X     Expr
}

// ZipExpr is zip(a, b, ...) used as a loop iterand.
type ZipExpr struct {
	ZipPos source.Pos
	Args   []Expr
}

func (x *Ident) Pos() source.Pos      { return x.NamePos }
func (x *IntLit) Pos() source.Pos     { return x.LitPos }
func (x *RealLit) Pos() source.Pos    { return x.LitPos }
func (x *BoolLit) Pos() source.Pos    { return x.LitPos }
func (x *StringLit) Pos() source.Pos  { return x.LitPos }
func (x *BinaryExpr) Pos() source.Pos { return x.X.Pos() }
func (x *UnaryExpr) Pos() source.Pos  { return x.OpPos }
func (x *CallExpr) Pos() source.Pos   { return x.Fun.Pos() }
func (x *IndexExpr) Pos() source.Pos  { return x.X.Pos() }
func (x *FieldExpr) Pos() source.Pos  { return x.X.Pos() }
func (x *TupleExpr) Pos() source.Pos  { return x.Lparen }
func (x *DomainLit) Pos() source.Pos  { return x.Lbrace }
func (x *RangeExpr) Pos() source.Pos  { return x.RangePos }
func (x *IfExpr) Pos() source.Pos     { return x.IfPos }
func (x *NewExpr) Pos() source.Pos    { return x.NewPos }
func (x *ReduceExpr) Pos() source.Pos { return x.OpPos }
func (x *ZipExpr) Pos() source.Pos    { return x.ZipPos }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*RealLit) exprNode()    {}
func (*BoolLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*FieldExpr) exprNode()  {}
func (*TupleExpr) exprNode()  {}
func (*DomainLit) exprNode()  {}
func (*RangeExpr) exprNode()  {}
func (*IfExpr) exprNode()     {}
func (*NewExpr) exprNode()    {}
func (*ReduceExpr) exprNode() {}
func (*ZipExpr) exprNode()    {}

// ------------------------------------------------------------------ Types

// NamedType references a builtin or declared type: int, real, bool, string,
// or a record/class/type-alias name. int(32) style widths are accepted and
// recorded for display fidelity with the paper's tables.
type NamedType struct {
	NamePos source.Pos
	Name    string
	Width   int // 0 = default; e.g. int(32) has Width 32
}

// TupleType is k*T — a homogeneous tuple like 8*real.
type TupleType struct {
	CountPos source.Pos
	Count    Expr // must be param-evaluable
	Elem     TypeExpr
}

// DomainType is domain(rank), optionally `dmapped Block` (distributed
// block-wise across locales).
type DomainType struct {
	DomPos source.Pos
	Rank   Expr // param-evaluable
	// Dist is the distribution name ("Block") or empty.
	Dist string
}

// ArrayType is [D] T or [lo..hi] T.
type ArrayType struct {
	Lbrack source.Pos
	Dom    []Expr // domain expression(s): an identifier, domain literal, or ranges
	Elem   TypeExpr
}

// RangeType is `range`.
type RangeType struct {
	RangePos source.Pos
}

// AtomicType is `atomic T`.
type AtomicType struct {
	AtomicPos source.Pos
	Elem      TypeExpr
}

func (t *NamedType) Pos() source.Pos  { return t.NamePos }
func (t *TupleType) Pos() source.Pos  { return t.CountPos }
func (t *DomainType) Pos() source.Pos { return t.DomPos }
func (t *ArrayType) Pos() source.Pos  { return t.Lbrack }
func (t *RangeType) Pos() source.Pos  { return t.RangePos }
func (t *AtomicType) Pos() source.Pos { return t.AtomicPos }

func (*NamedType) typeNode()  {}
func (*TupleType) typeNode()  {}
func (*DomainType) typeNode() {}
func (*ArrayType) typeNode()  {}
func (*RangeType) typeNode()  {}
func (*AtomicType) typeNode() {}

// ------------------------------------------------------------- Statements

// VarKind distinguishes var/const/param/config const declarations.
type VarKind int

// Variable declaration kinds.
const (
	VarVar VarKind = iota
	VarConst
	VarParam
	VarConfigConst
)

func (k VarKind) String() string {
	switch k {
	case VarVar:
		return "var"
	case VarConst:
		return "const"
	case VarParam:
		return "param"
	case VarConfigConst:
		return "config const"
	}
	return "?"
}

// VarDecl declares one or more variables: `var x, y: T = init;`.
// A `ref` declaration (IsRef) creates an alias: `ref R = A[D];`.
type VarDecl struct {
	DeclPos source.Pos
	Kind    VarKind
	IsRef   bool
	Names   []*Ident
	Type    TypeExpr // may be nil (inferred)
	Init    Expr     // may be nil (default value)
}

// AssignStmt is lhs op= rhs (op may be plain ASSIGN) or lhs <=> rhs.
type AssignStmt struct {
	Lhs Expr
	Op  token.Kind
	Rhs Expr
}

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X Expr
}

// BlockStmt is { ... }.
type BlockStmt struct {
	Lbrace source.Pos
	Stmts  []Stmt
}

// IfStmt is if/then/else.
type IfStmt struct {
	IfPos source.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt // *BlockStmt or *IfStmt or nil
}

// WhileStmt is while cond { }.
type WhileStmt struct {
	WhilePos source.Pos
	Cond     Expr
	Body     *BlockStmt
}

// DoWhileStmt is do { } while cond;
type DoWhileStmt struct {
	DoPos source.Pos
	Body  *BlockStmt
	Cond  Expr
}

// LoopKind distinguishes serial, param-unrolled, forall and coforall loops.
type LoopKind int

// Loop kinds.
const (
	LoopFor LoopKind = iota
	LoopParamFor
	LoopForall
	LoopCoforall
)

func (k LoopKind) String() string {
	switch k {
	case LoopFor:
		return "for"
	case LoopParamFor:
		return "for param"
	case LoopForall:
		return "forall"
	case LoopCoforall:
		return "coforall"
	}
	return "?"
}

// ForStmt covers for/forall/coforall over an iterand, including zippered
// iteration (`for (a,b) in zip(X,Y)`) and tuple-destructuring indices.
type ForStmt struct {
	ForPos source.Pos
	Kind   LoopKind
	Idx    []*Ident // one or more loop variables
	Iter   Expr     // range, domain, array, or ZipExpr
	Body   *BlockStmt
}

// SelectStmt is select/when/otherwise.
type SelectStmt struct {
	SelPos    source.Pos
	Subject   Expr
	Whens     []WhenClause
	Otherwise *BlockStmt
}

// WhenClause is one `when v1, v2 { ... }` arm.
type WhenClause struct {
	WhenPos source.Pos
	Values  []Expr
	Body    *BlockStmt
}

// ReturnStmt is return [expr];
type ReturnStmt struct {
	RetPos source.Pos
	X      Expr // may be nil
}

// YieldStmt is `yield expr;` inside an iterator.
type YieldStmt struct {
	YieldPos source.Pos
	X        Expr
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ BrkPos source.Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ ContPos source.Pos }

// OnStmt is `on Locales[i] { ... }` — locale placement.
type OnStmt struct {
	OnPos  source.Pos
	Target Expr
	Body   *BlockStmt
}

// BeginStmt is `begin { ... }` — unstructured task spawn.
type BeginStmt struct {
	BeginPos source.Pos
	Body     *BlockStmt
}

// CobeginStmt runs each child statement as a task and joins.
type CobeginStmt struct {
	CoPos source.Pos
	Body  *BlockStmt
}

// SyncStmt waits for tasks spawned within its body.
type SyncStmt struct {
	SyncPos source.Pos
	Body    *BlockStmt
}

// DeclStmt wraps a declaration appearing in statement position
// (nested procs, local records/type aliases).
type DeclStmt struct {
	D Decl
}

func (s *VarDecl) Pos() source.Pos      { return s.DeclPos }
func (s *AssignStmt) Pos() source.Pos   { return s.Lhs.Pos() }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *BlockStmt) Pos() source.Pos    { return s.Lbrace }
func (s *IfStmt) Pos() source.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() source.Pos    { return s.WhilePos }
func (s *DoWhileStmt) Pos() source.Pos  { return s.DoPos }
func (s *ForStmt) Pos() source.Pos      { return s.ForPos }
func (s *SelectStmt) Pos() source.Pos   { return s.SelPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.RetPos }
func (s *YieldStmt) Pos() source.Pos    { return s.YieldPos }
func (s *BreakStmt) Pos() source.Pos    { return s.BrkPos }
func (s *ContinueStmt) Pos() source.Pos { return s.ContPos }
func (s *OnStmt) Pos() source.Pos       { return s.OnPos }
func (s *BeginStmt) Pos() source.Pos    { return s.BeginPos }
func (s *CobeginStmt) Pos() source.Pos  { return s.CoPos }
func (s *SyncStmt) Pos() source.Pos     { return s.SyncPos }
func (s *DeclStmt) Pos() source.Pos     { return s.D.Pos() }

func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*SelectStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()   {}
func (*YieldStmt) stmtNode()    {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*OnStmt) stmtNode()       {}
func (*BeginStmt) stmtNode()    {}
func (*CobeginStmt) stmtNode()  {}
func (*SyncStmt) stmtNode()     {}
func (*DeclStmt) stmtNode()     {}

// ----------------------------------------------------------- Declarations

// Intent is a formal parameter passing intent.
type Intent int

// Parameter intents.
const (
	IntentDefault Intent = iota // const-in for values, ref for arrays/records
	IntentRef
	IntentIn
	IntentOut
	IntentInout
	IntentParam
)

func (i Intent) String() string {
	switch i {
	case IntentDefault:
		return ""
	case IntentRef:
		return "ref"
	case IntentIn:
		return "in"
	case IntentOut:
		return "out"
	case IntentInout:
		return "inout"
	case IntentParam:
		return "param"
	}
	return "?"
}

// Param is one formal parameter.
type Param struct {
	ParamPos source.Pos
	Intent   Intent
	Name     *Ident
	Type     TypeExpr // may be nil (generic)
}

// ProcDecl is a procedure or iterator declaration. Nested procedures are
// kept in the enclosing body as DeclStmt and capture enclosing variables
// by reference, which matters for blame transfer (the paper's CENN case).
type ProcDecl struct {
	ProcPos source.Pos
	IsIter  bool
	Name    *Ident
	Params  []Param
	RetType TypeExpr // may be nil
	Body    *BlockStmt
}

// FieldDecl is one field in a record/class.
type FieldDecl struct {
	FieldPos source.Pos
	Name     *Ident
	Type     TypeExpr
	Init     Expr // optional default
}

// RecordDecl declares a record or class type.
type RecordDecl struct {
	RecPos  source.Pos
	IsClass bool
	Name    *Ident
	Fields  []FieldDecl
	Methods []*ProcDecl
}

// TypeAliasDecl is `type v3 = 3*real;`.
type TypeAliasDecl struct {
	TypePos source.Pos
	Name    *Ident
	Target  TypeExpr
}

// GlobalVarDecl wraps a module-level VarDecl.
type GlobalVarDecl struct {
	V *VarDecl
}

func (d *ProcDecl) Pos() source.Pos      { return d.ProcPos }
func (d *RecordDecl) Pos() source.Pos    { return d.RecPos }
func (d *TypeAliasDecl) Pos() source.Pos { return d.TypePos }
func (d *GlobalVarDecl) Pos() source.Pos { return d.V.DeclPos }

func (*ProcDecl) declNode()      {}
func (*RecordDecl) declNode()    {}
func (*TypeAliasDecl) declNode() {}
func (*GlobalVarDecl) declNode() {}

// Walk traverses the AST in depth-first order, calling fn for every node.
// If fn returns false for a node, its children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		for _, d := range x.Decls {
			Walk(d, fn)
		}
		for _, s := range x.TopStmts {
			Walk(s, fn)
		}
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *CallExpr:
		Walk(x.Fun, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *IndexExpr:
		Walk(x.X, fn)
		for _, i := range x.Index {
			Walk(i, fn)
		}
	case *FieldExpr:
		Walk(x.X, fn)
	case *TupleExpr:
		for _, e := range x.Elems {
			Walk(e, fn)
		}
	case *DomainLit:
		for _, d := range x.Dims {
			Walk(d, fn)
		}
	case *RangeExpr:
		Walk(x.Lo, fn)
		if x.Hi != nil {
			Walk(x.Hi, fn)
		}
		if x.Count != nil {
			Walk(x.Count, fn)
		}
		if x.By != nil {
			Walk(x.By, fn)
		}
	case *IfExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *NewExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *ReduceExpr:
		Walk(x.X, fn)
	case *ZipExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *VarDecl:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *AssignStmt:
		Walk(x.Lhs, fn)
		Walk(x.Rhs, fn)
	case *ExprStmt:
		Walk(x.X, fn)
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *DoWhileStmt:
		Walk(x.Body, fn)
		Walk(x.Cond, fn)
	case *ForStmt:
		Walk(x.Iter, fn)
		Walk(x.Body, fn)
	case *SelectStmt:
		Walk(x.Subject, fn)
		for _, w := range x.Whens {
			for _, v := range w.Values {
				Walk(v, fn)
			}
			Walk(w.Body, fn)
		}
		if x.Otherwise != nil {
			Walk(x.Otherwise, fn)
		}
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *YieldStmt:
		Walk(x.X, fn)
	case *OnStmt:
		Walk(x.Target, fn)
		Walk(x.Body, fn)
	case *BeginStmt:
		Walk(x.Body, fn)
	case *CobeginStmt:
		Walk(x.Body, fn)
	case *SyncStmt:
		Walk(x.Body, fn)
	case *DeclStmt:
		Walk(x.D, fn)
	case *ProcDecl:
		Walk(x.Body, fn)
	case *RecordDecl:
		for _, m := range x.Methods {
			Walk(m, fn)
		}
	case *GlobalVarDecl:
		Walk(x.V, fn)
	}
}
