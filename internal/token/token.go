// Package token defines the lexical tokens of MiniChapel, the small
// Chapel-like PGAS language used as the compilation substrate for the
// blame profiler.
package token

import "strconv"

// Kind identifies a lexical token class.
type Kind int

// The list of tokens.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123
	REAL   // 1.5, 1e9
	STRING // "abc"
	BOOL   // true/false surface as keywords but carry BOOL values

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	POW     // **

	ASSIGN       // =
	PLUS_ASSIGN  // +=
	MINUS_ASSIGN // -=
	STAR_ASSIGN  // *=
	SLASH_ASSIGN // /=
	SWAP         // <=>

	EQ  // ==
	NEQ // !=
	LT  // <
	LE  // <=
	GT  // >
	GE  // >=

	AND // &&
	OR  // ||
	NOT // !

	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }
	COMMA  // ,
	SEMI   // ;
	COLON  // :
	DOT    // .
	DOTDOT // ..
	HASH   // # (count operator in ranges: 0..#n)
	ARROW  // =>

	// Keywords.
	keywordBeg
	VAR
	CONST
	PARAM
	CONFIG
	TYPE
	RECORD
	CLASS
	PROC
	ITER
	RETURN
	IF
	THEN
	ELSE
	FOR
	WHILE
	DO
	IN
	ZIP
	FORALL
	COFORALL
	BEGIN
	COBEGIN
	SYNC
	ON
	SELECT
	WHEN
	OTHERWISE
	BREAK
	CONTINUE
	REF
	INOUT
	OUT
	DOMAIN
	RANGE
	REDUCE
	BY
	YIELD
	TRUE
	FALSE
	NIL
	USE
	LOCALE
	HERE
	NEW
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	IDENT:   "IDENT",
	INT:     "INT",
	REAL:    "REAL",
	STRING:  "STRING",
	BOOL:    "BOOL",

	PLUS:    "+",
	MINUS:   "-",
	STAR:    "*",
	SLASH:   "/",
	PERCENT: "%",
	POW:     "**",

	ASSIGN:       "=",
	PLUS_ASSIGN:  "+=",
	MINUS_ASSIGN: "-=",
	STAR_ASSIGN:  "*=",
	SLASH_ASSIGN: "/=",
	SWAP:         "<=>",

	EQ:  "==",
	NEQ: "!=",
	LT:  "<",
	LE:  "<=",
	GT:  ">",
	GE:  ">=",

	AND: "&&",
	OR:  "||",
	NOT: "!",

	LPAREN: "(",
	RPAREN: ")",
	LBRACK: "[",
	RBRACK: "]",
	LBRACE: "{",
	RBRACE: "}",
	COMMA:  ",",
	SEMI:   ";",
	COLON:  ":",
	DOT:    ".",
	DOTDOT: "..",
	HASH:   "#",
	ARROW:  "=>",

	VAR:       "var",
	CONST:     "const",
	PARAM:     "param",
	CONFIG:    "config",
	TYPE:      "type",
	RECORD:    "record",
	CLASS:     "class",
	PROC:      "proc",
	ITER:      "iter",
	RETURN:    "return",
	IF:        "if",
	THEN:      "then",
	ELSE:      "else",
	FOR:       "for",
	WHILE:     "while",
	DO:        "do",
	IN:        "in",
	ZIP:       "zip",
	FORALL:    "forall",
	COFORALL:  "coforall",
	BEGIN:     "begin",
	COBEGIN:   "cobegin",
	SYNC:      "sync",
	ON:        "on",
	SELECT:    "select",
	WHEN:      "when",
	OTHERWISE: "otherwise",
	BREAK:     "break",
	CONTINUE:  "continue",
	REF:       "ref",
	INOUT:     "inout",
	OUT:       "out",
	DOMAIN:    "domain",
	RANGE:     "range",
	REDUCE:    "reduce",
	YIELD:     "yield",
	BY:        "by",
	TRUE:      "true",
	FALSE:     "false",
	NIL:       "nil",
	USE:       "use",
	LOCALE:    "locale",
	HERE:      "here",
	NEW:       "new",
}

// String returns the token name or its literal spelling.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "token(" + strconv.Itoa(int(k)) + ")"
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

// IsLiteral reports whether k is a literal class.
func (k Kind) IsLiteral() bool {
	switch k {
	case IDENT, INT, REAL, STRING, TRUE, FALSE:
		return true
	}
	return false
}

// IsAssignOp reports whether k is an assignment operator.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, PLUS_ASSIGN, MINUS_ASSIGN, STAR_ASSIGN, SLASH_ASSIGN, SWAP:
		return true
	}
	return false
}

// keywords maps spellings to keyword kinds.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NEQ, LT, LE, GT, GE:
		return 3
	case DOTDOT:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	case POW:
		return 7
	}
	return 0
}
