package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"var": VAR, "forall": FORALL, "coforall": COFORALL, "zip": ZIP,
		"param": PARAM, "config": CONFIG, "record": RECORD, "proc": PROC,
		"select": SELECT, "when": WHEN, "otherwise": OTHERWISE,
		"on": ON, "begin": BEGIN, "cobegin": COBEGIN, "sync": SYNC,
		"notakeyword": IDENT, "Forall": IDENT, "": IDENT,
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// || < && < comparisons < .. < +- < */% < **
	chain := [][]Kind{
		{OR}, {AND}, {EQ, NEQ, LT, LE, GT, GE}, {DOTDOT},
		{PLUS, MINUS}, {STAR, SLASH, PERCENT}, {POW},
	}
	prev := 0
	for _, level := range chain {
		p := level[0].Precedence()
		if p <= prev {
			t.Errorf("%v precedence %d not above %d", level[0], p, prev)
		}
		for _, k := range level {
			if k.Precedence() != p {
				t.Errorf("%v precedence %d != %d", k, k.Precedence(), p)
			}
		}
		prev = p
	}
	if IDENT.Precedence() != 0 || ASSIGN.Precedence() != 0 {
		t.Error("non-operators must have zero precedence")
	}
}

func TestIsAssignOp(t *testing.T) {
	for _, k := range []Kind{ASSIGN, PLUS_ASSIGN, MINUS_ASSIGN, STAR_ASSIGN, SLASH_ASSIGN, SWAP} {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assign op", k)
		}
	}
	for _, k := range []Kind{EQ, PLUS, LE} {
		if k.IsAssignOp() {
			t.Errorf("%v should not be an assign op", k)
		}
	}
}

func TestStringSpellings(t *testing.T) {
	cases := map[Kind]string{
		PLUS: "+", SWAP: "<=>", DOTDOT: "..", POW: "**",
		FORALL: "forall", EOF: "EOF",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(9999).String() != "token(9999)" {
		t.Errorf("unknown token spelling: %q", Kind(9999).String())
	}
}

func TestKeywordClassification(t *testing.T) {
	if !VAR.IsKeyword() || !LOCALE.IsKeyword() {
		t.Error("keyword misclassified")
	}
	if IDENT.IsKeyword() || PLUS.IsKeyword() {
		t.Error("non-keyword misclassified")
	}
	if !IDENT.IsLiteral() || !INT.IsLiteral() || !TRUE.IsLiteral() {
		t.Error("literal misclassified")
	}
	if PLUS.IsLiteral() {
		t.Error("+ is not a literal")
	}
}
