// Package cfg provides control-flow analyses over the IR: dominator and
// post-dominator trees and control-dependence sets. The paper's implicit
// blame transfer (§IV.A) is computed from control dependence: "all
// variables within control dependent basic blocks have a relationship to
// the implicit variables responsible for the control flow".
package cfg

import (
	"sort"

	"repro/internal/ir"
)

// DomTree is a dominator (or post-dominator) tree over one function.
type DomTree struct {
	fn *ir.Func
	// idom[b.ID] is the immediate dominator block ID (-1 for the root and
	// unreachable blocks).
	idom []int
	// children[b.ID] lists dominated block IDs.
	children [][]int
	root     int
}

// Idom returns the immediate dominator of b, or nil. Blocks with IDs
// outside the tree (malformed or from another function) have none.
func (t *DomTree) Idom(b *ir.Block) *ir.Block {
	if b == nil || b.ID < 0 || b.ID >= len(t.idom) {
		return nil
	}
	d := t.idom[b.ID]
	if d < 0 || d >= len(t.fn.Blocks) {
		return nil
	}
	return t.fn.Blocks[d]
}

// Dominates reports whether a dominates b (reflexive). Malformed or
// unreachable block IDs never dominate and are dominated by nothing but
// themselves; the walk bounds-checks every step so a corrupted idom chain
// cannot index out of range.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if a == nil || b == nil {
		return false
	}
	if a.ID == b.ID {
		return true
	}
	for x := b.ID; x >= 0 && x < len(t.idom); {
		if x == a.ID {
			return true
		}
		next := t.idom[x]
		if next == x {
			return false // self-loop guard on corrupted trees
		}
		x = next
	}
	return false
}

// Dominators computes the dominator tree using the iterative algorithm of
// Cooper, Harvey & Kennedy over a reverse-postorder numbering.
func Dominators(f *ir.Func) *DomTree {
	return buildDomTree(f, false)
}

// PostDominators computes the post-dominator tree. Blocks that cannot
// reach an exit (infinite loops) are handled by treating every Ret block
// as a root merged into a virtual exit.
func PostDominators(f *ir.Func) *DomTree {
	return buildDomTree(f, true)
}

// buildDomTree computes (post-)dominators. For post-dominators we run on
// the reverse CFG with a virtual exit joining all Ret blocks.
func buildDomTree(f *ir.Func, post bool) *DomTree {
	n := len(f.Blocks)
	t := &DomTree{fn: f, idom: make([]int, n), children: make([][]int, n)}
	for i := range t.idom {
		t.idom[i] = -1
	}
	if n == 0 {
		return t
	}

	// virtual root = -2 sentinel; real roots attach to it with idom -1.
	succs := func(b *ir.Block) []*ir.Block {
		if post {
			return b.Preds
		}
		return b.Succs
	}
	preds := func(b *ir.Block) []*ir.Block {
		if post {
			return b.Succs
		}
		return b.Preds
	}
	var roots []*ir.Block
	if post {
		for _, b := range f.Blocks {
			if term := b.Terminator(); term != nil && term.Op == ir.OpRet {
				roots = append(roots, b)
			}
		}
		if len(roots) == 0 {
			// No returns (shouldn't happen after irgen); fall back to the
			// last block.
			roots = append(roots, f.Blocks[n-1])
		}
	} else {
		roots = append(roots, f.Blocks[0])
	}

	// Reverse postorder from the roots.
	order := make([]*ir.Block, 0, n)
	visited := make([]bool, n)
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b.ID] = true
		for _, s := range succs(b) {
			if !visited[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	for _, r := range roots {
		if !visited[r.ID] {
			dfs(r)
		}
	}
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b.ID] = i
	}

	idom := make([]int, n) // by block ID; -1 undefined
	for i := range idom {
		idom[i] = -1
	}
	isRoot := make([]bool, n)
	for _, r := range roots {
		isRoot[r.ID] = true
		idom[r.ID] = r.ID // roots self-dominate during iteration
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if isRoot[b.ID] {
				continue
			}
			newIdom := -1
			for _, p := range preds(b) {
				if rpoNum[p.ID] < 0 || idom[p.ID] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p.ID
				} else {
					newIdom = intersect(newIdom, p.ID)
				}
			}
			if newIdom >= 0 && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}

	for i := range idom {
		if isRoot[i] {
			t.idom[i] = -1
		} else {
			t.idom[i] = idom[i]
		}
	}
	for i, d := range t.idom {
		if d >= 0 {
			t.children[d] = append(t.children[d], i)
		}
	}
	if len(roots) > 0 {
		t.root = roots[0].ID
	}
	return t
}

// ControlDeps computes, for every block, the set of branch instructions it
// is control-dependent on (classic Ferrante/Ottenstein/Warren via the
// post-dominance frontier). The result maps block ID → branch instrs.
func ControlDeps(f *ir.Func) map[int][]*ir.Instr {
	pdom := PostDominators(f)
	deps := make(map[int][]*ir.Instr)
	// For each edge (a→b) where b does not post-dominate a, walk up the
	// post-dominator tree from b to pdom(a), marking dependence on a's
	// branch.
	for _, a := range f.Blocks {
		term := a.Terminator()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		for _, b := range a.Succs {
			if pdom.Dominates(b, a) {
				continue
			}
			// Walk b up to (exclusive) ipdom(a).
			stop := -1
			if ip := pdom.Idom(a); ip != nil {
				stop = ip.ID
			}
			for x := b; x != nil && x.ID != stop; {
				deps[x.ID] = appendUniqueInstr(deps[x.ID], term)
				ip := pdom.Idom(x)
				if ip == nil {
					break
				}
				x = ip
			}
		}
	}
	return deps
}

func appendUniqueInstr(list []*ir.Instr, in *ir.Instr) []*ir.Instr {
	for _, x := range list {
		if x == in {
			return list
		}
	}
	return append(list, in)
}

// ReversePostorder returns the blocks of f in reverse postorder from entry.
func ReversePostorder(f *ir.Func) []*ir.Block {
	n := len(f.Blocks)
	visited := make([]bool, n)
	var order []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b.ID] = true
		for _, s := range b.Succs {
			if !visited[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if n > 0 {
		dfs(f.Blocks[0])
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Loop is one natural loop: a header block plus the body blocks that can
// reach a back edge (latch → header) without leaving through the header.
type Loop struct {
	Head   *ir.Block
	Latch  *ir.Block
	Body   map[int]bool // block IDs, header included
	Parent *Loop        // innermost enclosing loop, if any
	Depth  int          // 1 for outermost
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Body[b.ID] }

// NaturalLoops finds the natural loops of f using dominators: an edge
// latch → head is a back edge when head dominates latch; the loop body is
// the set of blocks reaching the latch without passing through the head.
// Loops sharing a header are merged. The result is sorted outermost
// first, and Parent/Depth link the nesting forest. Both the abstract
// interpreter (internal/absint) and the static cost engine consume this.
func NaturalLoops(f *ir.Func) []*Loop {
	dom := Dominators(f)
	byHead := make(map[int]*Loop)
	var heads []int
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !dom.Dominates(s, b) {
				continue
			}
			l := byHead[s.ID]
			if l == nil {
				l = &Loop{Head: s, Latch: b, Body: map[int]bool{s.ID: true}}
				byHead[s.ID] = l
				heads = append(heads, s.ID)
			}
			// Walk predecessors back from the latch, stopping at the head.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Body[x.ID] {
					continue
				}
				l.Body[x.ID] = true
				for _, p := range x.Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	sort.Ints(heads)
	loops := make([]*Loop, 0, len(heads))
	for _, h := range heads {
		loops = append(loops, byHead[h])
	}
	// Nesting: the innermost enclosing loop is the smallest strict
	// superset containing the header.
	for _, l := range loops {
		for _, o := range loops {
			if o == l || !o.Body[l.Head.ID] || len(o.Body) <= len(l.Body) {
				continue
			}
			if l.Parent == nil || len(o.Body) < len(l.Parent.Body) {
				l.Parent = o
			}
		}
	}
	for _, l := range loops {
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
		l.Depth++
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth < loops[j].Depth
		}
		return loops[i].Head.ID < loops[j].Head.ID
	})
	return loops
}

// LoopHeads returns the set of loop-header block IDs of f — the widening
// points of the abstract interpreter.
func LoopHeads(f *ir.Func) map[int]bool {
	heads := make(map[int]bool)
	dom := Dominators(f)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if dom.Dominates(s, b) {
				heads[s.ID] = true
			}
		}
	}
	return heads
}
