package cfg_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/source"
)

func buildFn(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	res, err := compile.Source("t.mchpl", src, compile.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := res.Prog.FuncByName(name)
	if f == nil {
		t.Fatalf("no function %s", name)
	}
	return f
}

func TestDominatorsStraightLine(t *testing.T) {
	f := buildFn(t, `proc main() { var a = 1; var b = a + 2; }`, "main")
	dom := cfg.Dominators(f)
	entry := f.Entry()
	for _, b := range f.Blocks {
		if !dom.Dominates(entry, b) {
			t.Errorf("entry must dominate b%d", b.ID)
		}
	}
	if dom.Idom(entry) != nil {
		t.Error("entry has no idom")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := buildFn(t, `
proc main() {
  var a = 1;
  var b = 0;
  if a > 0 {
    b = 1;
  } else {
    b = 2;
  }
  var c = b;
}
`, "main")
	dom := cfg.Dominators(f)
	// The branch block dominates both arms and the join.
	var brBlock *ir.Block
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpBr {
			brBlock = b
			break
		}
	}
	if brBlock == nil {
		t.Fatal("no branch block")
	}
	for _, s := range brBlock.Succs {
		if !dom.Dominates(brBlock, s) {
			t.Errorf("branch must dominate arm b%d", s.ID)
		}
		if dom.Idom(s) != brBlock {
			t.Errorf("arm b%d idom = %v, want branch block", s.ID, dom.Idom(s))
		}
	}
	// Neither arm dominates the other.
	if len(brBlock.Succs) == 2 {
		a, b := brBlock.Succs[0], brBlock.Succs[1]
		if dom.Dominates(a, b) || dom.Dominates(b, a) {
			t.Error("arms must not dominate each other")
		}
	}
}

func TestPostDominatorsAndControlDeps(t *testing.T) {
	f := buildFn(t, `
proc main() {
  var a = 1;
  var b = 0;
  if a > 0 {
    b = 1;
  }
  var c = b;
}
`, "main")
	deps := cfg.ControlDeps(f)
	// Exactly the then-arm depends on the branch.
	var brInstr *ir.Instr
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpBr {
			brInstr = tm
		}
	}
	if brInstr == nil {
		t.Fatal("no branch")
	}
	depBlocks := 0
	for _, list := range deps {
		for _, in := range list {
			if in == brInstr {
				depBlocks++
			}
		}
	}
	if depBlocks == 0 {
		t.Error("no block is control-dependent on the if")
	}
}

func TestLoopControlDeps(t *testing.T) {
	f := buildFn(t, `
proc main() {
  var s = 0;
  for i in 1..10 {
    s += i;
  }
}
`, "main")
	deps := cfg.ControlDeps(f)
	// The loop body must be control-dependent on the loop condition, and
	// the condition on itself (it re-executes).
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin && in.BinOp.String() == "+" {
				if len(deps[b.ID]) > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("loop body not control-dependent on loop branch")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	f := buildFn(t, `
proc main() {
  var s = 0;
  for i in 1..3 { s += i; }
  if s > 2 { s = 0; }
}
`, "main")
	order := cfg.ReversePostorder(f)
	if len(order) == 0 || order[0] != f.Entry() {
		t.Fatal("RPO must start at entry")
	}
	seen := map[int]bool{}
	for _, b := range order {
		seen[b.ID] = true
	}
	// All blocks reachable from entry appear exactly once.
	if len(seen) != len(order) {
		t.Error("duplicate blocks in RPO")
	}
}

func TestWhileTrueNoReturnPostdom(t *testing.T) {
	// Infinite loops must not crash post-dominance construction.
	res, err := compile.Source("t.mchpl", `
proc spin() {
  while true {
    var x = 1;
  }
}
proc main() { }
`, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Prog.FuncByName("spin")
	_ = cfg.PostDominators(f)
	_ = cfg.ControlDeps(f)
}

func TestDominatesUnreachableAndMalformedBlocks(t *testing.T) {
	// Hand-build a CFG with an unreachable block: entry → exit, plus an
	// orphan block no edge reaches. Its idom stays -1; dominance queries
	// against it (and against blocks with IDs outside the tree entirely)
	// must answer without panicking.
	prog := ir.NewProgram(source.NewFileSet(), "t")
	f := prog.NewFunc("f", nil, source.Pos{})
	entry := f.NewBlock()
	exit := f.NewBlock()
	orphan := f.NewBlock()
	entry.Instrs = append(entry.Instrs, &ir.Instr{Op: ir.OpJmp, Targets: [2]*ir.Block{exit, nil}})
	exit.Instrs = append(exit.Instrs, &ir.Instr{Op: ir.OpRet})
	orphan.Instrs = append(orphan.Instrs, &ir.Instr{Op: ir.OpRet})
	prog.Finalize()

	dom := cfg.Dominators(f)
	if dom.Dominates(entry, orphan) {
		t.Error("entry must not dominate an unreachable block")
	}
	if dom.Dominates(orphan, exit) {
		t.Error("unreachable block must not dominate a reachable one")
	}
	if !dom.Dominates(orphan, orphan) {
		t.Error("Dominates must stay reflexive for unreachable blocks")
	}
	if dom.Idom(orphan) != nil {
		t.Errorf("unreachable block idom = %v, want nil", dom.Idom(orphan))
	}

	// Blocks whose IDs lie outside the tree (malformed input, or a block
	// from another function): previously a mid-walk b.ID >= len(idom)
	// could slip through; now every step is bounds-checked.
	fake := &ir.Block{ID: 99}
	if dom.Dominates(entry, fake) {
		t.Error("out-of-range block must not be dominated")
	}
	if dom.Dominates(fake, exit) {
		t.Error("out-of-range block must not dominate")
	}
	if !dom.Dominates(fake, fake) {
		t.Error("Dominates must stay reflexive for out-of-range IDs")
	}
	if dom.Idom(fake) != nil {
		t.Error("out-of-range block must have no idom")
	}
	neg := &ir.Block{ID: -7}
	if dom.Dominates(neg, entry) || dom.Dominates(entry, neg) {
		t.Error("negative block IDs must not participate in dominance")
	}
	if dom.Dominates(nil, entry) || dom.Dominates(entry, nil) {
		t.Error("nil blocks must not participate in dominance")
	}
}
